// Package siteselect reproduces "Site Selection for Real-Time Client
// Request Handling" (Kanitkar & Delis, ICDCS 1999): a client-server
// real-time database in which transactions, data objects, or both are
// moved to the site most likely to meet each transaction's deadline.
//
// The package simulates three system configurations over a deterministic
// discrete-event kernel:
//
//   - Centralized (CE-RTDBS): the server executes every transaction;
//     clients are terminals.
//   - ClientServer (CS-RTDBS): object shipping with client caching and
//     callback locking.
//   - LoadSharing (LS-CS-RTDBS): the paper's contribution — H1/H2
//     heuristics, transaction shipping and decomposition, and grouped
//     object migration along forward lists.
//
// Quick start:
//
//	cfg := siteselect.DefaultConfig(20, 0.05) // 20 clients, 5% updates
//	res, err := siteselect.Run(siteselect.LoadSharing, cfg)
//	if err != nil { ... }
//	fmt.Printf("%.1f%% of transactions met their deadlines\n", res.SuccessRate())
//
// The experiment entry points (Figure3, Table2, ...) regenerate the
// paper's tables and figures; see EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
package siteselect

import (
	"fmt"

	"siteselect/internal/config"
	"siteselect/internal/experiment"
	"siteselect/internal/rtdbs"
)

// Config parameterizes a simulated system; see the field documentation
// in the type for the paper's Table 1 values.
type Config = config.Config

// Result is the outcome of one simulated run.
type Result = rtdbs.Result

// SystemKind selects one of the paper's three configurations.
type SystemKind int

// System configurations.
const (
	// Centralized is the CE-RTDBS.
	Centralized SystemKind = iota + 1
	// ClientServer is the basic object-shipping CS-RTDBS.
	ClientServer
	// LoadSharing is the LS-CS-RTDBS running the paper's algorithm.
	LoadSharing
	// CentralizedOptimistic is the CE-RTDBS with backward-validation
	// optimistic concurrency control instead of 2PL — the concurrency
	// control study the paper's conclusion names as future work.
	CentralizedOptimistic
)

// String names the system the way the paper does.
func (k SystemKind) String() string {
	switch k {
	case Centralized:
		return "CE-RTDBS"
	case ClientServer:
		return "CS-RTDBS"
	case LoadSharing:
		return "LS-CS-RTDBS"
	case CentralizedOptimistic:
		return "CE-RTDBS/OCC"
	default:
		return fmt.Sprintf("SystemKind(%d)", int(k))
	}
}

// Re-exported configuration enums, so callers can set policy knobs
// without importing internal packages.
const (
	// Access patterns.
	PatternLocalizedRW = config.PatternLocalizedRW
	PatternUniform     = config.PatternUniform
	PatternHotCold     = config.PatternHotCold
	// Deadline policies.
	DeadlineLengthPlusSlack = config.DeadlineLengthPlusSlack
	DeadlineIndependent     = config.DeadlineIndependent
	// Scheduling policies.
	SchedEDF  = config.SchedEDF
	SchedFCFS = config.SchedFCFS
	// Interconnect topologies.
	TopologySharedBus = config.TopologySharedBus
	TopologySwitched  = config.TopologySwitched
)

// DefaultConfig returns the paper's Table 1 parameters for a
// client-server system with n clients and the given update fraction
// (0.01, 0.05 and 0.20 in the paper).
func DefaultConfig(n int, updateFraction float64) Config {
	return config.Default(n, updateFraction)
}

// DefaultCentralizedConfig returns the Table 1 parameters for the
// centralized system (5,000-object server buffer).
func DefaultCentralizedConfig(n int, updateFraction float64) Config {
	return config.DefaultCentralized(n, updateFraction)
}

// Run builds and runs the selected system to completion and returns its
// metrics. The run is deterministic for a given configuration (including
// its Seed).
func Run(kind SystemKind, cfg Config) (*Result, error) {
	switch kind {
	case Centralized:
		return experiment.RunCE(cfg)
	case ClientServer:
		return experiment.RunCS(cfg)
	case LoadSharing:
		return experiment.RunLS(cfg)
	case CentralizedOptimistic:
		oc, err := rtdbs.NewCentralizedOCC(cfg)
		if err != nil {
			return nil, err
		}
		return oc.Run()
	default:
		return nil, fmt.Errorf("siteselect: unknown system kind %d", int(kind))
	}
}

// Experiment types and entry points, re-exported for the benchmark
// harness and the rtbench command.
type (
	// Options tunes experiment runs (scale, seed, client sweep).
	Options = experiment.Options
	// Figure is a reproduction of Figures 3–5.
	Figure = experiment.Figure
	// Table2 is the cache-hit-rate table.
	Table2 = experiment.Table2
	// Table3 is the object-response-time table.
	Table3 = experiment.Table3
	// Table4 is the message-count table.
	Table4 = experiment.Table4
	// Ablation compares LS design-choice variants.
	Ablation = experiment.Ablation
)

// Figure3 reproduces Figure 3 (1% updates).
func Figure3(opts Options) (*Figure, error) { return experiment.RunFigure("Figure 3", 0.01, opts) }

// Figure4 reproduces Figure 4 (5% updates).
func Figure4(opts Options) (*Figure, error) { return experiment.RunFigure("Figure 4", 0.05, opts) }

// Figure5 reproduces Figure 5 (20% updates).
func Figure5(opts Options) (*Figure, error) { return experiment.RunFigure("Figure 5", 0.20, opts) }

// RunTable2 reproduces Table 2 (cache hit rates).
func RunTable2(opts Options) (*Table2, error) { return experiment.RunTable2(opts) }

// RunTable3 reproduces Table 3 (object response times, 1% updates).
func RunTable3(opts Options) (*Table3, error) { return experiment.RunTable3(opts) }

// RunTable4 reproduces Table 4 (message counts, 100 clients, 1%
// updates).
func RunTable4(opts Options) (*Table4, error) { return experiment.RunTable4(opts) }
