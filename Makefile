GO ?= go

.PHONY: build test race fuzz-smoke bench-kernel bench-mem figures scenarios update-scenarios update-scenarios-scale

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -short -race ./...

# fuzz-smoke gives each fuzz target a short randomized budget on top of
# its committed corpus (CI runs the same quintet).
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -fuzz FuzzLockTable -fuzztime $(FUZZTIME) ./internal/lockmgr/
	$(GO) test -fuzz FuzzForwardList -fuzztime $(FUZZTIME) ./internal/forward/
	$(GO) test -fuzz FuzzFaultSchedule -fuzztime $(FUZZTIME) ./internal/netsim/
	$(GO) test -fuzz FuzzScenarioParse -fuzztime $(FUZZTIME) ./internal/scenario/
	$(GO) test -fuzz FuzzBatchSchedule -fuzztime $(FUZZTIME) ./internal/batch/

# scenarios runs the committed .rts corpus and fails on any expect
# violation; update-scenarios reruns it and rewrites the goldens. Both
# cover the everyday tier; the scale tier (scale_1m, >= 100k clients) is
# opt-in via update-scenarios-scale or RTS_SCALE=1.
scenarios:
	$(GO) run ./cmd/rtbench -scenario-dir scenarios

update-scenarios:
	$(GO) test ./internal/scenario -run TestCorpusGoldens -update

update-scenarios-scale:
	$(GO) test ./internal/scenario -run TestCorpusScale -update -timeout 60m

# bench-kernel records the kernel benchmark suite (micro benchmarks plus
# the BenchmarkFigure3, BenchmarkFigure3Batched and BenchmarkScaleSmoke
# macro runs) into
# BENCH_kernel.json under LABEL; BENCH_SCALE=1 adds the million-client
# BenchmarkScale100x (minutes, tens of GB).
LABEL ?= current
bench-kernel:
	sh scripts/bench_kernel.sh $(LABEL)

# bench-mem is the allocation-hunting loop: the two macro benchmarks
# with -benchmem, recorded under LABEL. Besides ns/op, B/op and
# allocs/op this captures the GC metrics the scale harness reports
# (heap-MB high water, B/client, gc-pause-ms, gc-cycles), so a
# benchjson -diff against post-pr shows memory regressions directly.
# See EXPERIMENTS.md, "Hunting allocations".
bench-mem:
	$(GO) test -run '^$$' -bench 'BenchmarkFigure3$$|BenchmarkScaleSmoke$$' -benchtime 1x -benchmem . | \
		$(GO) run ./cmd/benchjson -into BENCH_kernel.json -label $(LABEL)

figures:
	$(GO) run ./cmd/rtbench -exp all
