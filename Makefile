GO ?= go

.PHONY: build test race fuzz-smoke bench-kernel figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -short -race ./...

# fuzz-smoke gives each fuzz target a short randomized budget on top of
# its committed corpus (CI runs the same trio).
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -fuzz FuzzLockTable -fuzztime $(FUZZTIME) ./internal/lockmgr/
	$(GO) test -fuzz FuzzForwardList -fuzztime $(FUZZTIME) ./internal/forward/
	$(GO) test -fuzz FuzzFaultSchedule -fuzztime $(FUZZTIME) ./internal/netsim/

# bench-kernel records the kernel benchmark suite (micro benchmarks plus
# the BenchmarkFigure3 macro run) into BENCH_kernel.json under LABEL.
LABEL ?= current
bench-kernel:
	sh scripts/bench_kernel.sh $(LABEL)

figures:
	$(GO) run ./cmd/rtbench -exp all
