GO ?= go

.PHONY: build test race bench-kernel figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -short -race ./...

# bench-kernel records the kernel benchmark suite (micro benchmarks plus
# the BenchmarkFigure3 macro run) into BENCH_kernel.json under LABEL.
LABEL ?= current
bench-kernel:
	sh scripts/bench_kernel.sh $(LABEL)

figures:
	$(GO) run ./cmd/rtbench -exp all
