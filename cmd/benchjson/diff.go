package main

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// higherIsBetter reports whether a metric improves upward. Rates like
// steps/sec regress by decreasing; everything else recorded here
// (ns/op, B/op, allocs/op, heap-MB, B/client, result percentages)
// regresses by increasing.
func higherIsBetter(metric string) bool { return strings.HasSuffix(metric, "/sec") }

// metricDelta formats the percent delta of one metric shared by both
// records, or "-" when either side lacks it or the baseline is zero
// with nothing to compare against.
func metricDelta(b, c Record, metric string) string {
	bv, okB := b.Metrics[metric]
	cv, okC := c.Metrics[metric]
	if !okB || !okC {
		return "-"
	}
	if bv == 0 {
		if cv == 0 {
			return "0%"
		}
		return fmt.Sprintf("+%g", cv)
	}
	return fmt.Sprintf("%+.1f%%", (cv-bv)/bv*100)
}

// diffLabels compares one label's records against a baseline label in
// the same file and renders a delta table for every benchmark present
// under both: ns/op in full, with B/op and allocs/op deltas alongside
// when recorded (-benchmem runs).
//
// When warnBench is non-empty (a comma-separated list of benchmark
// names), every metric the two records share is checked, not just
// ns/op: B/op, allocs/op, and custom metrics such as heap-MB, B/client
// and steps/sec (whose regressions are decreases) all annotate when
// they regress by more than warnOver percent. A metric pinned at zero
// in the baseline (the zero-alloc kernel benches) warns on any growth.
// Warning lines are GitHub-annotation-style and the function reports
// true; the caller decides what to do with that — CI treats it as
// informational (non-blocking).
func diffLabels(f File, baseline, label, warnBench string, warnOver float64, out io.Writer) (warned bool, err error) {
	base := make(map[string]Record)
	cur := make(map[string]Record)
	for _, r := range f.Records {
		switch r.Label {
		case baseline:
			base[r.Name] = r
		case label:
			cur[r.Name] = r
		}
	}
	if len(base) == 0 {
		return false, fmt.Errorf("no records labeled %q (baseline)", baseline)
	}
	if len(cur) == 0 {
		return false, fmt.Errorf("no records labeled %q", label)
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return false, fmt.Errorf("labels %q and %q share no benchmarks", baseline, label)
	}
	sort.Strings(names)

	fmt.Fprintf(out, "%-40s %15s %15s %8s %9s %11s\n",
		"benchmark", baseline+" ns/op", label+" ns/op", "delta", "B/op", "allocs/op")
	for _, name := range names {
		b, c := base[name], cur[name]
		bn, cn := b.Metrics["ns/op"], c.Metrics["ns/op"]
		if bn == 0 {
			continue
		}
		delta := (cn - bn) / bn * 100
		fmt.Fprintf(out, "%-40s %15.0f %15.0f %+7.1f%% %9s %11s\n",
			name, bn, cn, delta, metricDelta(b, c, "B/op"), metricDelta(b, c, "allocs/op"))
	}

	if warnBench != "" {
		for _, name := range strings.Split(warnBench, ",") {
			name = strings.TrimSpace(name)
			b, okB := base[name]
			c, okC := cur[name]
			if !okB || !okC {
				return false, fmt.Errorf("warn benchmark %q missing from baseline %q or label %q", name, baseline, label)
			}
			metrics := make([]string, 0, len(c.Metrics))
			for metric := range c.Metrics {
				if _, ok := b.Metrics[metric]; ok {
					metrics = append(metrics, metric)
				}
			}
			sort.Strings(metrics)
			for _, metric := range metrics {
				bv, cv := b.Metrics[metric], c.Metrics[metric]
				if bv == 0 {
					// Zero baselines (the alloc-pinned kernel benches)
					// regress by growing at all; rates can't start at 0.
					if cv > 0 && !higherIsBetter(metric) {
						fmt.Fprintf(out, "::warning title=%s regression::%s %s grew from a zero baseline %q to %g\n",
							name, name, metric, baseline, cv)
						warned = true
					}
					continue
				}
				delta := (cv - bv) / bv * 100
				reg := delta
				if higherIsBetter(metric) {
					reg = -delta
				}
				if reg > warnOver {
					fmt.Fprintf(out, "::warning title=%s regression::%s %s regressed %.1f%% vs %q (%g -> %g), over the %.0f%% budget\n",
						name, name, metric, reg, baseline, bv, cv, warnOver)
					warned = true
				}
			}
		}
	}
	return warned, nil
}
