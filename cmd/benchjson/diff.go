package main

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// diffLabels compares one label's records against a baseline label in
// the same file and renders a delta table for every benchmark present
// under both. For each metric the two records share, the delta is
// (current-baseline)/baseline; only ns/op is shown in the table (the
// rest of the metrics ride along in the JSON), but the warn check can
// target any metric.
//
// When warnBench is non-empty (a comma-separated list of benchmark
// names) and any listed benchmark's ns/op regressed by more than
// warnOver percent, a GitHub-annotation-style warning line is written
// per regressed benchmark and the function reports true. The caller
// decides what to do with that — CI treats it as informational
// (non-blocking).
func diffLabels(f File, baseline, label, warnBench string, warnOver float64, out io.Writer) (warned bool, err error) {
	base := make(map[string]Record)
	cur := make(map[string]Record)
	for _, r := range f.Records {
		switch r.Label {
		case baseline:
			base[r.Name] = r
		case label:
			cur[r.Name] = r
		}
	}
	if len(base) == 0 {
		return false, fmt.Errorf("no records labeled %q (baseline)", baseline)
	}
	if len(cur) == 0 {
		return false, fmt.Errorf("no records labeled %q", label)
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return false, fmt.Errorf("labels %q and %q share no benchmarks", baseline, label)
	}
	sort.Strings(names)

	fmt.Fprintf(out, "%-40s %15s %15s %8s\n", "benchmark", baseline+" ns/op", label+" ns/op", "delta")
	for _, name := range names {
		b, c := base[name].Metrics["ns/op"], cur[name].Metrics["ns/op"]
		if b == 0 {
			continue
		}
		delta := (c - b) / b * 100
		fmt.Fprintf(out, "%-40s %15.0f %15.0f %+7.1f%%\n", name, b, c, delta)
	}

	if warnBench != "" {
		for _, name := range strings.Split(warnBench, ",") {
			name = strings.TrimSpace(name)
			b, okB := base[name]
			c, okC := cur[name]
			if !okB || !okC {
				return false, fmt.Errorf("warn benchmark %q missing from baseline %q or label %q", name, baseline, label)
			}
			bn, cn := b.Metrics["ns/op"], c.Metrics["ns/op"]
			if bn > 0 {
				delta := (cn - bn) / bn * 100
				if delta > warnOver {
					fmt.Fprintf(out, "::warning title=%s regression::%s ns/op regressed %.1f%% vs %q (%.0f -> %.0f), over the %.0f%% budget\n",
						name, name, delta, baseline, bn, cn, warnOver)
					warned = true
				}
			}
		}
	}
	return warned, nil
}
