package main

import (
	"strings"
	"testing"
)

func rec(label, name string, nsop float64) Record {
	return Record{Label: label, Name: name, Iterations: 1, Metrics: map[string]float64{"ns/op": nsop}}
}

func TestDiffLabelsTableAndWarning(t *testing.T) {
	f := File{Records: []Record{
		rec("base", "BenchmarkFigure3", 1000),
		rec("base", "BenchmarkMachineSleep", 20),
		rec("ci", "BenchmarkFigure3", 1300),
		rec("ci", "BenchmarkMachineSleep", 19),
		rec("ci", "BenchmarkOnlyInCI", 5),
	}}

	var out strings.Builder
	warned, err := diffLabels(f, "base", "ci", "BenchmarkFigure3", 15, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !warned {
		t.Error("30% regression over a 15% budget should warn")
	}
	s := out.String()
	for _, want := range []string{"BenchmarkFigure3", "+30.0%", "BenchmarkMachineSleep", "-5.0%", "::warning"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "BenchmarkOnlyInCI") {
		t.Errorf("benchmark absent from the baseline should not be in the table:\n%s", s)
	}

	out.Reset()
	warned, err = diffLabels(f, "base", "ci", "BenchmarkMachineSleep", 15, &out)
	if err != nil {
		t.Fatal(err)
	}
	if warned {
		t.Error("an improvement must not warn")
	}
	if strings.Contains(out.String(), "::warning") {
		t.Errorf("no annotation expected:\n%s", out.String())
	}

	// A comma-separated warn list checks every named benchmark; only the
	// regressed one annotates.
	out.Reset()
	warned, err = diffLabels(f, "base", "ci", "BenchmarkMachineSleep,BenchmarkFigure3", 15, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !warned {
		t.Error("regressed benchmark in the warn list should warn")
	}
	if got := strings.Count(out.String(), "::warning"); got != 1 {
		t.Errorf("want exactly one annotation, got %d:\n%s", got, out.String())
	}
}

func TestDiffLabelsErrors(t *testing.T) {
	f := File{Records: []Record{rec("base", "BenchmarkFigure3", 1000)}}
	if _, err := diffLabels(f, "base", "ci", "", 15, &strings.Builder{}); err == nil {
		t.Error("missing label should error")
	}
	if _, err := diffLabels(f, "nope", "base", "", 15, &strings.Builder{}); err == nil {
		t.Error("missing baseline should error")
	}
	f.Records = append(f.Records, rec("base", "BenchmarkOther", 5), rec("ci", "BenchmarkOther", 6))
	if _, err := diffLabels(f, "base", "ci", "BenchmarkFigure3", 15, &strings.Builder{}); err == nil {
		t.Error("warn benchmark absent from one side should error")
	}
}
