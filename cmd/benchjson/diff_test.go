package main

import (
	"strings"
	"testing"
)

func rec(label, name string, nsop float64) Record {
	return Record{Label: label, Name: name, Iterations: 1, Metrics: map[string]float64{"ns/op": nsop}}
}

func TestDiffLabelsTableAndWarning(t *testing.T) {
	f := File{Records: []Record{
		rec("base", "BenchmarkFigure3", 1000),
		rec("base", "BenchmarkMachineSleep", 20),
		rec("ci", "BenchmarkFigure3", 1300),
		rec("ci", "BenchmarkMachineSleep", 19),
		rec("ci", "BenchmarkOnlyInCI", 5),
	}}

	var out strings.Builder
	warned, err := diffLabels(f, "base", "ci", "BenchmarkFigure3", 15, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !warned {
		t.Error("30% regression over a 15% budget should warn")
	}
	s := out.String()
	for _, want := range []string{"BenchmarkFigure3", "+30.0%", "BenchmarkMachineSleep", "-5.0%", "::warning"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "BenchmarkOnlyInCI") {
		t.Errorf("benchmark absent from the baseline should not be in the table:\n%s", s)
	}

	out.Reset()
	warned, err = diffLabels(f, "base", "ci", "BenchmarkMachineSleep", 15, &out)
	if err != nil {
		t.Fatal(err)
	}
	if warned {
		t.Error("an improvement must not warn")
	}
	if strings.Contains(out.String(), "::warning") {
		t.Errorf("no annotation expected:\n%s", out.String())
	}

	// A comma-separated warn list checks every named benchmark; only the
	// regressed one annotates.
	out.Reset()
	warned, err = diffLabels(f, "base", "ci", "BenchmarkMachineSleep,BenchmarkFigure3", 15, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !warned {
		t.Error("regressed benchmark in the warn list should warn")
	}
	if got := strings.Count(out.String(), "::warning"); got != 1 {
		t.Errorf("want exactly one annotation, got %d:\n%s", got, out.String())
	}
}

func recm(label, name string, metrics map[string]float64) Record {
	return Record{Label: label, Name: name, Iterations: 1, Metrics: metrics}
}

func TestDiffLabelsMemoryAndCustomMetrics(t *testing.T) {
	f := File{Records: []Record{
		recm("base", "BenchmarkScaleSmoke", map[string]float64{
			"ns/op": 1000, "B/op": 1 << 20, "allocs/op": 1000,
			"steps/sec": 500000, "B/client": 16000, "heap-MB": 100,
		}),
		recm("ci", "BenchmarkScaleSmoke", map[string]float64{
			"ns/op": 1010, "B/op": 1 << 21, "allocs/op": 1010,
			"steps/sec": 300000, "B/client": 16100, "heap-MB": 101,
		}),
		recm("base", "BenchmarkMachineSleep", map[string]float64{
			"ns/op": 20, "B/op": 0, "allocs/op": 0,
		}),
		recm("ci", "BenchmarkMachineSleep", map[string]float64{
			"ns/op": 21, "B/op": 16, "allocs/op": 1,
		}),
	}}

	// B/op doubled and steps/sec dropped 40%: both annotate even though
	// ns/op moved only 1%.
	var out strings.Builder
	warned, err := diffLabels(f, "base", "ci", "BenchmarkScaleSmoke", 15, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !warned {
		t.Error("memory and throughput regressions should warn")
	}
	s := out.String()
	for _, want := range []string{
		"BenchmarkScaleSmoke B/op regressed 100.0%",
		"BenchmarkScaleSmoke steps/sec regressed 40.0%",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// B/client and heap-MB moved under 1% — inside the budget, silent.
	for _, reject := range []string{"B/client regressed", "heap-MB regressed", "ns/op regressed"} {
		if strings.Contains(s, reject) {
			t.Errorf("output should not contain %q:\n%s", reject, s)
		}
	}
	// The table carries the B/op and allocs/op deltas.
	for _, want := range []string{"+100.0%", "+1.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing delta %q:\n%s", want, s)
		}
	}

	// A zero-alloc benchmark that starts allocating warns on any growth.
	out.Reset()
	warned, err = diffLabels(f, "base", "ci", "BenchmarkMachineSleep", 15, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !warned {
		t.Error("allocs growing from a zero baseline should warn")
	}
	if !strings.Contains(out.String(), "allocs/op grew from a zero baseline") {
		t.Errorf("missing zero-baseline annotation:\n%s", out.String())
	}
}

func TestDiffLabelsErrors(t *testing.T) {
	f := File{Records: []Record{rec("base", "BenchmarkFigure3", 1000)}}
	if _, err := diffLabels(f, "base", "ci", "", 15, &strings.Builder{}); err == nil {
		t.Error("missing label should error")
	}
	if _, err := diffLabels(f, "nope", "base", "", 15, &strings.Builder{}); err == nil {
		t.Error("missing baseline should error")
	}
	f.Records = append(f.Records, rec("base", "BenchmarkOther", 5), rec("ci", "BenchmarkOther", 6))
	if _, err := diffLabels(f, "base", "ci", "BenchmarkFigure3", 15, &strings.Builder{}); err == nil {
		t.Error("warn benchmark absent from one side should error")
	}
}
