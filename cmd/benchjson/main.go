// Command benchjson converts `go test -bench` output into a JSON
// baseline file, so kernel performance can be recorded and compared
// across changes.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/sim/... |
//	    go run ./cmd/benchjson -into BENCH_kernel.json -label post-pr
//
// Records are keyed by (label, benchmark name): re-running with the same
// label replaces that label's records in place, so the file accumulates
// one snapshot per label (e.g. "pre-pr", "post-pr"). Non-benchmark lines
// are ignored; the parsed input is echoed to stdout so the tool can sit
// in a pipe without hiding results.
//
// Diff mode compares two labels already in the file instead of reading
// stdin:
//
//	go run ./cmd/benchjson -into BENCH_kernel.json \
//	    -diff post-pr -label ci \
//	    -warn-bench BenchmarkFigure3,BenchmarkFigure3Batched -warn-over 15
//
// prints a per-benchmark ns/op delta table and, when a named benchmark
// (comma-separated list) regressed past the budget, a `::warning`
// annotation line per regression.
// The exit code stays 0 either way — the diff is informational.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Record is one benchmark result under one label.
type Record struct {
	Label      string             `json:"label"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the on-disk JSON shape.
type File struct {
	Records []Record `json:"records"`
}

var cpuSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	into := flag.String("into", "BENCH_kernel.json", "JSON file to merge records into")
	label := flag.String("label", "current", "label for this snapshot (e.g. pre-pr, post-pr)")
	diffBase := flag.String("diff", "", "compare -label's records in -into against this baseline label instead of reading stdin")
	warnBench := flag.String("warn-bench", "", "with -diff, warn when any of these benchmarks' (comma-separated) ns/op regresses more than -warn-over percent")
	warnOver := flag.Float64("warn-over", 15, "with -diff and -warn-bench, the regression budget in percent")
	flag.Parse()
	if *diffBase != "" {
		data, err := os.ReadFile(*into)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var f File
		if err := json.Unmarshal(data, &f); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", *into, err)
			os.Exit(1)
		}
		// A regression warning is informational, not a failure: the
		// exit code stays 0 so CI treats the diff as non-blocking.
		if _, err := diffLabels(f, *diffBase, *label, *warnBench, *warnOver, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*into, *label); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(into, label string) error {
	var recs []Record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if r, ok := parseLine(line, label); ok {
			recs = append(recs, r)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}

	var f File
	if data, err := os.ReadFile(into); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("parsing %s: %w", into, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	// Replace this label's version of each incoming benchmark.
	incoming := make(map[string]bool, len(recs))
	for _, r := range recs {
		incoming[r.Name] = true
	}
	kept := f.Records[:0]
	for _, r := range f.Records {
		if r.Label == label && incoming[r.Name] {
			continue
		}
		kept = append(kept, r)
	}
	f.Records = append(kept, recs...)
	sort.SliceStable(f.Records, func(i, j int) bool {
		if f.Records[i].Label != f.Records[j].Label {
			return f.Records[i].Label < f.Records[j].Label
		}
		return f.Records[i].Name < f.Records[j].Name
	})

	out, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(into, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d records labeled %q to %s\n", len(recs), label, into)
	return nil
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   100000   11.32 ns/op   0 B/op   0 allocs/op
//
// including custom metrics reported via b.ReportMetric.
func parseLine(line, label string) (Record, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Record{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	r := Record{
		Label:      label,
		Name:       cpuSuffix.ReplaceAllString(fields[0], ""),
		Iterations: iters,
		Metrics:    make(map[string]float64),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
