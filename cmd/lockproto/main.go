// Command lockproto demonstrates the message economics behind Figures 1
// and 2: standard 2PL, callback locking, and the lock-grouping (forward
// list) protocol, both as closed-form counts and as a live two-client
// simulation whose message counters are printed.
package main

import (
	"fmt"
	"os"
	"time"

	"siteselect"
	"siteselect/internal/experiment"
	"siteselect/internal/netsim"
)

func main() {
	experiment.RenderProtocolCounts(os.Stdout, experiment.RunProtocolCounts([]int{1, 2, 3, 5, 10, 20}))

	// Live demonstration: a tiny write-heavy cluster where grouped
	// migration visibly replaces recall/return/ship round trips with
	// client-to-client hops.
	fmt.Println("\nLive two-protocol comparison (20 clients, 30% updates, hot database):")
	base := siteselect.DefaultConfig(20, 0.30)
	base.DBSize = 1000
	base.HotRegionSize = 200
	base.LocalFraction = 0.8
	base.ServerMemory = 1000
	base.Duration = 20 * time.Minute
	base.Warmup = 2 * time.Minute

	cs, err := siteselect.Run(siteselect.ClientServer, base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockproto:", err)
		os.Exit(1)
	}
	ls, err := siteselect.Run(siteselect.LoadSharing, base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockproto:", err)
		os.Exit(1)
	}
	fmt.Printf("%-42s %12s %12s\n", "", "CS-RTDBS", "LS-CS-RTDBS")
	row := func(label string, kind netsim.Kind) {
		fmt.Printf("%-42s %12d %12d\n", label, cs.Messages[kind].Count, ls.Messages[kind].Count)
	}
	row("object requests (client to server)", netsim.KindObjectRequest)
	row("objects sent (server to client)", netsim.KindObjectShip)
	row("recalls (server to client)", netsim.KindRecall)
	row("returns (client to server)", netsim.KindObjectReturn)
	row("forward-list hops (client to client)", netsim.KindClientForward)
	fmt.Printf("%-42s %12d %12d\n", "total messages", cs.TotalMessages, ls.TotalMessages)
	fmt.Printf("\nsuccess: CS %.1f%%  LS %.1f%%\n", cs.SuccessRate(), ls.SuccessRate())
}
