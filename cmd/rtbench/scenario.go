package main

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"siteselect/internal/scenario"
)

// runScenarios executes .rts scenario files (one file, a directory, or
// both) and writes each report to out. When outDir is non-empty every
// report is also written there as <name>.golden — the same bytes the
// corpus goldens pin — so CI can diff a fresh batch against
// scenarios/golden. Directory runs skip scale-tier scenarios
// (population >= scenario.ScaleFloor) unless includeScale is set; a
// -scenario file is always run, whatever its size. The returned error
// is non-nil when any scenario fails to parse, compile, or run, or
// when any expect assertion fails.
func runScenarios(file, dir, outDir string, parallel int, includeScale bool, out io.Writer) error {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	var scens []*scenario.Scenario
	if file != "" {
		s, err := scenario.Load(file)
		if err != nil {
			return err
		}
		scens = append(scens, s)
	}
	if dir != "" {
		batch, err := scenario.LoadDir(dir)
		if err != nil {
			return err
		}
		if !includeScale {
			everyday, scale := scenario.SplitScale(batch)
			for _, s := range scale {
				fmt.Fprintf(os.Stderr, "rtbench: skipping scale-tier scenario %s (%d clients); rerun with -scale-scenarios to include it\n",
					s.Name, s.Population())
			}
			batch = everyday
		}
		scens = append(scens, batch...)
	}
	reports, err := scenario.RunAll(scens, parallel)
	if err != nil {
		return err
	}
	failed := 0
	for i, r := range reports {
		if i > 0 {
			fmt.Fprintln(out)
		}
		io.WriteString(out, r.Format())
		if !r.Passed() {
			failed++
		}
	}
	if outDir != "" {
		if err := scenario.WriteReports(reports, outDir); err != nil {
			return err
		}
	}
	if failed > 0 {
		names := make([]string, 0, failed)
		for _, r := range reports {
			if !r.Passed() {
				names = append(names, r.Compiled.Scenario.Name)
			}
		}
		return fmt.Errorf("%d scenario(s) failed expectations: %s", failed, strings.Join(names, ", "))
	}
	return nil
}
