// Command rtbench regenerates the paper's tables and figures.
//
// Usage:
//
//	rtbench -exp <id> [-scale 0.25] [-seed 1] [-clients 20,40,60,80,100]
//	        [-csv] [-reps N] [-parallel N] [-progress] [-svg dir]
//
// Experiment ids: fig3 fig4 fig5 (the paper's figures), table2 table3
// table4, protocol (Figures 1–2), patterns, occ, speculation, outage,
// faults, batch-sweep, shard-sweep, sensitivity, policies, ablate-heuristics,
// ablate-window, ablate-downgrade, ablate-writethrough, ablate-logging, or all.
//
// -scale shrinks the virtual run length (1 = the full 30-minute runs);
// the shapes survive scaling but small counters get noisier.
//
// -trace-summary re-runs a figure's CS/LS cells with per-transaction
// tracing enabled and reports the aggregate miss-cause table (missed
// transactions classified by the dominant component of their slack
// attribution) instead of the success-rate figure.
//
// -cpuprofile and -memprofile write pprof profiles covering the
// experiment run, for hunting simulator hot spots (see DESIGN.md
// "Kernel internals and performance").
//
// Every experiment fans its simulation cells across a worker pool of
// -parallel goroutines (default: GOMAXPROCS). Each cell's seed is
// derived from the master -seed and the cell's coordinates, so results
// are bit-identical for any -parallel value. -reps replicates every
// cell over derived seeds and reports mean ± 95% CI.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"siteselect/internal/experiment"
	"siteselect/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rtbench:", err)
		os.Exit(1)
	}
}

// params carries the parsed command line into runExperiments, keeping
// the experiment dispatch testable without flag globals.
type params struct {
	exp          string
	csv          bool
	svgDir       string
	ablateN      int
	ablateU      float64
	traceSummary bool
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "experiment id (fig3, fig4, fig5, table2, table3, table4, protocol, patterns, occ, speculation, outage, faults, batch-sweep, shard-sweep, sensitivity, policies, ablate-heuristics, ablate-window, ablate-downgrade, ablate-writethrough, ablate-logging, all)")
		scale    = flag.Float64("scale", 1.0, "run-length scale factor in (0,1]")
		seed     = flag.Int64("seed", 1, "master random seed (per-cell seeds are derived from it)")
		clients  = flag.String("clients", "", "comma-separated client sweep for figures (default 20,40,60,80,100)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text (figures and tables)")
		reps     = flag.Int("reps", 1, "replications per cell over derived seeds, aggregated as mean ± 95% CI")
		parallel = flag.Int("parallel", 0, "worker pool size for experiment cells (0 = GOMAXPROCS)")
		progress = flag.Bool("progress", false, "log per-cell completions with wall-clock timing to stderr")
		svgDir   = flag.String("svg", "", "directory to also write figures as SVG charts")
		ablateN  = flag.Int("ablate-clients", 60, "client count for ablations")
		ablateU  = flag.Float64("ablate-updates", 0.20, "update fraction for ablations")
		traceSum = flag.Bool("trace-summary", false, "for figure experiments, re-run the CS/LS cells with tracing enabled and report the aggregate miss-cause table instead of the figure")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
		scenFile = flag.String("scenario", "", "run one .rts scenario file instead of an experiment")
		scenDir  = flag.String("scenario-dir", "", "run every .rts scenario in a directory instead of an experiment")
		scenOut  = flag.String("scenario-out", "", "also write each scenario report to this directory as <name>.golden")
		scenBig  = flag.Bool("scale-scenarios", false, "include scale-tier scenarios (>= 100k clients) in -scenario-dir runs; these take minutes and tens of GB")
	)
	flag.Parse()

	if *scenFile != "" || *scenDir != "" {
		// Scenario runs carry their own seed (derived from the scenario
		// name and the file's seed stanza), so -seed, -scale, and -reps
		// do not apply here.
		return runScenarios(*scenFile, *scenDir, *scenOut, *parallel, *scenBig, os.Stdout)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rtbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile reflects live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rtbench: memprofile:", err)
			}
		}()
	}

	opts := experiment.Options{Scale: *scale, Seed: *seed, Reps: *reps, Parallel: *parallel}
	if *clients != "" {
		for _, part := range strings.Split(*clients, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad -clients entry %q", part)
			}
			opts.Clients = append(opts.Clients, n)
		}
	}
	var timing *metrics.WallClock
	if *progress {
		timing = &metrics.WallClock{}
		opts.Timing = timing
		opts.Progress = func(c metrics.CellDone) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s (%v)\n", c.Done, c.Total, c.Label, c.Elapsed.Round(time.Millisecond))
		}
	}
	err := runExperiments(params{
		exp: *exp, csv: *csv, svgDir: *svgDir,
		ablateN: *ablateN, ablateU: *ablateU,
		traceSummary: *traceSum,
	}, opts, os.Stdout)
	if timing != nil {
		s := timing.Stats()
		fmt.Fprintf(os.Stderr, "cells: %d, wall clock mean %v, max %v, total %v\n",
			s.Count, s.Mean().Round(time.Millisecond), s.Max.Round(time.Millisecond),
			s.Total.Round(time.Millisecond))
	}
	return err
}

func runExperiments(p params, opts experiment.Options, out io.Writer) error {
	runFigure := func(id string, update float64) error {
		if p.traceSummary {
			ts, err := experiment.RunTraceSummary(id, update, opts)
			if err != nil {
				return err
			}
			if p.csv {
				ts.CSV(out)
			} else {
				ts.Render(out)
			}
			fmt.Fprintln(out)
			return nil
		}
		f, err := experiment.RunFigure(id, update, opts)
		if err != nil {
			return err
		}
		if p.csv {
			f.CSV(out)
		} else {
			f.Render(out)
		}
		if p.svgDir != "" {
			name := strings.ToLower(strings.ReplaceAll(strings.Fields(id)[0]+strings.Fields(id)[1], " ", ""))
			path := filepath.Join(p.svgDir, name+".svg")
			fh, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := f.Chart().SVG(fh); err != nil {
				fh.Close()
				return err
			}
			if err := fh.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", path)
		}
		fmt.Fprintln(out)
		return nil
	}

	all := p.exp == "all"
	ran := false
	if all || p.exp == "fig3" {
		ran = true
		if err := runFigure("Figure 3", 0.01); err != nil {
			return err
		}
	}
	if all || p.exp == "fig4" {
		ran = true
		if err := runFigure("Figure 4", 0.05); err != nil {
			return err
		}
	}
	if all || p.exp == "fig5" {
		ran = true
		if err := runFigure("Figure 5", 0.20); err != nil {
			return err
		}
	}
	if all || p.exp == "table2" {
		ran = true
		t, err := experiment.RunTable2(opts)
		if err != nil {
			return err
		}
		if p.csv {
			t.CSV(out)
		} else {
			t.Render(out)
		}
		fmt.Fprintln(out)
	}
	if all || p.exp == "table3" {
		ran = true
		t, err := experiment.RunTable3(opts)
		if err != nil {
			return err
		}
		if p.csv {
			t.CSV(out)
		} else {
			t.Render(out)
		}
		fmt.Fprintln(out)
	}
	if all || p.exp == "table4" {
		ran = true
		t, err := experiment.RunTable4(opts)
		if err != nil {
			return err
		}
		if p.csv {
			t.CSV(out)
		} else {
			t.Render(out)
		}
		fmt.Fprintln(out)
	}
	if all || p.exp == "protocol" {
		ran = true
		experiment.RenderProtocolCounts(out, experiment.RunProtocolCounts([]int{1, 2, 5, 10, 20}))
		fmt.Fprintln(out)
	}
	if all || p.exp == "patterns" {
		ran = true
		ps, err := experiment.RunPatternSweep(p.ablateN, p.ablateU, opts)
		if err != nil {
			return err
		}
		ps.Render(out)
		fmt.Fprintln(out)
	}
	if all || p.exp == "occ" {
		ran = true
		cc, err := experiment.RunCCComparison(opts)
		if err != nil {
			return err
		}
		cc.Render(out)
		fmt.Fprintln(out)
	}
	if all || p.exp == "speculation" {
		ran = true
		ss, err := experiment.RunSpeculationStudy(opts)
		if err != nil {
			return err
		}
		ss.Render(out)
		fmt.Fprintln(out)
	}
	if all || p.exp == "outage" {
		ran = true
		os, err := experiment.RunOutageStudy(p.ablateN, p.ablateU, opts)
		if err != nil {
			return err
		}
		os.Render(out)
		fmt.Fprintln(out)
	}
	if all || p.exp == "batch-sweep" {
		ran = true
		bs, err := experiment.RunBatchSweep(nil, p.ablateN, p.ablateU, opts)
		if err != nil {
			return err
		}
		if p.csv {
			bs.CSV(out)
		} else {
			bs.Render(out)
		}
		fmt.Fprintln(out)
	}
	if all || p.exp == "shard-sweep" {
		ran = true
		ss, err := experiment.RunShardSweep(nil, p.ablateN, p.ablateU, opts)
		if err != nil {
			return err
		}
		if p.csv {
			ss.CSV(out)
		} else {
			ss.Render(out)
		}
		fmt.Fprintln(out)
	}
	if all || p.exp == "faults" {
		ran = true
		fm, err := experiment.RunFaultMatrix(p.ablateN, p.ablateU, opts)
		if err != nil {
			return err
		}
		fm.Render(out)
		fmt.Fprintln(out)
	}
	if all || p.exp == "policies" {
		ran = true
		ps, err := experiment.RunPolicyStudy(p.ablateN, p.ablateU, opts)
		if err != nil {
			return err
		}
		ps.Render(out)
		fmt.Fprintln(out)
	}
	if all || p.exp == "sensitivity" {
		ran = true
		sv, err := experiment.RunSensitivity(opts)
		if err != nil {
			return err
		}
		sv.Render(out)
		fmt.Fprintln(out)
	}
	if all || p.exp == "ablate-heuristics" {
		ran = true
		a, err := experiment.RunHeuristicAblation(p.ablateN, p.ablateU, opts)
		if err != nil {
			return err
		}
		a.Render(out)
		fmt.Fprintln(out)
	}
	if all || p.exp == "ablate-window" {
		ran = true
		a, err := experiment.RunWindowAblation(p.ablateN, p.ablateU, opts)
		if err != nil {
			return err
		}
		a.Render(out)
		fmt.Fprintln(out)
	}
	if all || p.exp == "ablate-downgrade" {
		ran = true
		a, err := experiment.RunDowngradeAblation(p.ablateN, p.ablateU, opts)
		if err != nil {
			return err
		}
		a.Render(out)
		fmt.Fprintln(out)
	}
	if all || p.exp == "ablate-writethrough" {
		ran = true
		a, err := experiment.RunWriteThroughAblation(p.ablateN, p.ablateU, opts)
		if err != nil {
			return err
		}
		a.Render(out)
		fmt.Fprintln(out)
	}
	if all || p.exp == "ablate-logging" {
		ran = true
		a, err := experiment.RunLoggingAblation(p.ablateN, p.ablateU, opts)
		if err != nil {
			return err
		}
		a.Render(out)
		fmt.Fprintln(out)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", p.exp)
	}
	return nil
}
