package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"siteselect/internal/experiment"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenOpts pins everything that feeds the output: scale, master seed,
// client sweep, and replication count. Parallel is deliberately > 1 —
// the golden file also guards the determinism of the worker pool.
var goldenOpts = experiment.Options{
	Scale: 0.05, Seed: 7, Clients: []int{4, 6}, Reps: 3, Parallel: 4,
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s (run with -update to regenerate):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestGoldenReplicatedFigure locks down the CLI output of a small
// replicated parallel sweep: the text rendering with mean ± 95% CI
// columns and the corresponding CSV. Any change to seed derivation,
// cell ordering, aggregation, or formatting shows up as a diff here.
func TestGoldenReplicatedFigure(t *testing.T) {
	var text strings.Builder
	if err := runExperiments(params{exp: "fig3", ablateN: 4, ablateU: 0.2}, goldenOpts, &text); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig3_replicated.golden", text.String())

	var csv strings.Builder
	if err := runExperiments(params{exp: "fig3", csv: true, ablateN: 4, ablateU: 0.2}, goldenOpts, &csv); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig3_replicated_csv.golden", csv.String())
}

// TestGoldenOutageStudy locks down the generalized outage table: the
// legacy three variants plus the fault-layer partition variants, with
// replicated mean ± CI aggregation. The first three rows must stay
// byte-for-byte what the pre-fault-layer study produced.
func TestGoldenOutageStudy(t *testing.T) {
	var text strings.Builder
	if err := runExperiments(params{exp: "outage", ablateN: 4, ablateU: 0.2}, goldenOpts, &text); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "outage_replicated.golden", text.String())
}

// TestGoldenTraceSummary locks down the aggregate miss-cause table of
// the traced figure sweep — both the low-contention Figure 3 mix and the
// update-heavy Figure 5 mix (which actually populates the cause
// columns), plus the CSV form. Beyond formatting, this pins the
// determinism of the whole trace layer under the parallel worker pool:
// any drift in event emission, attribution bucketing, or dominant-cause
// classification shows up as a diff here.
func TestGoldenTraceSummary(t *testing.T) {
	var fig3 strings.Builder
	if err := runExperiments(params{exp: "fig3", traceSummary: true, ablateN: 4, ablateU: 0.2}, goldenOpts, &fig3); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig3_trace_summary.golden", fig3.String())

	var fig5 strings.Builder
	if err := runExperiments(params{exp: "fig5", traceSummary: true, ablateN: 4, ablateU: 0.2}, goldenOpts, &fig5); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig5_trace_summary.golden", fig5.String())

	var csv strings.Builder
	if err := runExperiments(params{exp: "fig5", traceSummary: true, csv: true, ablateN: 4, ablateU: 0.2}, goldenOpts, &csv); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig5_trace_summary_csv.golden", csv.String())
}

// TestGoldenBatchSweep locks down the batch-window sweep table and CSV:
// the unbatched window-0 baseline row and the windowed rows, replicated
// and run on the parallel worker pool. Any drift in how the batching
// layer perturbs the simulation — or in how the sweep aggregates the
// miss census and the server's batch counters — shows up as a diff
// here.
func TestGoldenBatchSweep(t *testing.T) {
	var text strings.Builder
	if err := runExperiments(params{exp: "batch-sweep", ablateN: 6, ablateU: 0.2}, goldenOpts, &text); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "batch_sweep.golden", text.String())

	var csv strings.Builder
	if err := runExperiments(params{exp: "batch-sweep", csv: true, ablateN: 6, ablateU: 0.2}, goldenOpts, &csv); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "batch_sweep_csv.golden", csv.String())
}

// TestGoldenShardSweep locks down the topology study at ten times the
// paper's largest client population: the static-vs-adaptive placement
// table across shard counts and its CSV. Beyond formatting, this pins
// the sharded server tier end to end — the block-cyclic partition, the
// heat-driven replica install/shed cycle, and the claim the table
// exists to make: adaptive replication beats static placement on a
// drifting hot spot at every multi-shard point.
func TestGoldenShardSweep(t *testing.T) {
	var text strings.Builder
	if err := runExperiments(params{exp: "shard-sweep", ablateN: 400, ablateU: 0}, goldenOpts, &text); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "shard_sweep.golden", text.String())

	var csv strings.Builder
	if err := runExperiments(params{exp: "shard-sweep", csv: true, ablateN: 400, ablateU: 0}, goldenOpts, &csv); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "shard_sweep_csv.golden", csv.String())
}

// TestGoldenFaultMatrix locks down the fault-injection matrix rendering
// and its determinism across the worker pool.
func TestGoldenFaultMatrix(t *testing.T) {
	var text strings.Builder
	if err := runExperiments(params{exp: "faults", ablateN: 4, ablateU: 0.2}, goldenOpts, &text); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "faults_replicated.golden", text.String())
}
