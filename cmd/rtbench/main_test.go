package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"siteselect/internal/experiment"
)

// tiny keeps CLI tests fast.
var tiny = experiment.Options{Scale: 0.05, Seed: 1, Clients: []int{4}}

func TestRunExperimentsFigureText(t *testing.T) {
	var sb strings.Builder
	err := runExperiments(params{exp: "fig3", ablateN: 4, ablateU: 0.2}, tiny, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 3") || !strings.Contains(sb.String(), "LS-CS-RTDBS") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunExperimentsFigureCSVAndSVG(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	err := runExperiments(params{exp: "fig4", csv: true, svgDir: dir, ablateN: 4, ablateU: 0.2}, tiny, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "clients,ce,cs,ls") {
		t.Fatalf("csv output:\n%s", sb.String())
	}
	svg, err := os.ReadFile(filepath.Join(dir, "figure4.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "<svg") {
		t.Fatal("svg file malformed")
	}
}

func TestRunExperimentsReplicated(t *testing.T) {
	opts := tiny
	opts.Reps = 2
	var sb strings.Builder
	err := runExperiments(params{exp: "fig5", ablateN: 4, ablateU: 0.2}, opts, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "±") {
		t.Fatalf("replicated output missing CI:\n%s", sb.String())
	}
}

func TestRunExperimentsProtocol(t *testing.T) {
	var sb strings.Builder
	if err := runExperiments(params{exp: "protocol", ablateN: 4, ablateU: 0.2}, tiny, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2n+1") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunExperimentsAblations(t *testing.T) {
	for _, exp := range []string{
		"ablate-heuristics", "ablate-window", "ablate-downgrade",
		"ablate-writethrough", "ablate-logging", "outage", "policies",
	} {
		var sb strings.Builder
		if err := runExperiments(params{exp: exp, ablateN: 4, ablateU: 0.2}, tiny, &sb); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if sb.Len() == 0 {
			t.Fatalf("%s produced no output", exp)
		}
	}
}

func TestRunExperimentsUnknownID(t *testing.T) {
	var sb strings.Builder
	if err := runExperiments(params{exp: "nope"}, tiny, &sb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
