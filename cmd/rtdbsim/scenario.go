package main

import (
	"fmt"
	"os"

	"siteselect"
	"siteselect/internal/scenario"
)

// runScenario runs one .rts scenario file and prints its report (the
// same bytes rtbench pins in scenarios/golden) followed by the full
// single-run metric dump. The scenario text fixes the system, workload,
// and seed, so the other command-line flags do not apply.
func runScenario(path string) error {
	s, err := scenario.Load(path)
	if err != nil {
		return err
	}
	rep, err := scenario.Run(s)
	if err != nil {
		return err
	}
	os.Stdout.WriteString(rep.Format())
	fmt.Println()

	kind := siteselect.ClientServer
	switch rep.Compiled.System {
	case scenario.SystemCE:
		kind = siteselect.Centralized
	case scenario.SystemCEOCC:
		kind = siteselect.CentralizedOptimistic
	case scenario.SystemLS:
		kind = siteselect.LoadSharing
	}
	dump(kind, rep.Result)
	if !rep.Passed() {
		return fmt.Errorf("scenario %s failed expectations", s.Name)
	}
	return nil
}
