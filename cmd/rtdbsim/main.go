// Command rtdbsim runs a single simulated system configuration and
// prints the full metric dump: success rates, cache behaviour, object
// response times, message counters, and load-sharing activity.
//
// Usage:
//
//	rtdbsim -system ce|cs|ls [-clients 20] [-updates 0.05]
//	        [-duration 30m] [-warmup 10m] [-seed 1]
//	        [-reps 1] [-parallel 0]
//	        [-window 500ms] [-executors 4] [-no-h1] [-no-h2]
//	        [-no-decomposition] [-no-forward-lists] [-no-downgrade]
//	        [-drop-rate 0] [-dup-rate 0] [-spike-rate 0] [-spike-latency 5ms]
//	        [-partition-site -1] [-partition-at 0] [-partition-duration 0]
//	        [-invariants] [-trace out.json] [-msgtrace 0]
//
// With -reps N > 1 the configuration is replicated N times over seeds
// derived from the master -seed, fanned across a -parallel worker pool
// (0 = GOMAXPROCS), and summarized as mean ± 95% CI instead of the full
// single-run dump.
//
// -trace out.json enables the per-transaction event tracer (cs/ls
// only): the run additionally prints a slack-attribution report for the
// missed transactions — per-component queue / lock-wait / network /
// exec / retry / fanout breakdowns that sum exactly to each
// transaction's lifetime — plus the aggregate miss-cause table, and
// writes the full event timeline as Chrome trace-event JSON loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing, one track per site.
// -msgtrace N instead prints the last N raw LAN messages.
//
// The fault flags drive the deterministic fault-injection layer
// (client-server systems only): per-message drop/duplicate/latency-spike
// lotteries and a timed single-site partition, all derived from the
// master seed so a faulty run is exactly reproducible. -invariants
// attaches the continuous invariant monitor, which re-audits the model
// after every simulation event (slow; meant for debugging).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"siteselect"
	"siteselect/internal/experiment"
	"siteselect/internal/netsim"
	"siteselect/internal/rtdbs"
	"siteselect/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rtdbsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		system    = flag.String("system", "ls", "system to run: ce, ce-occ, cs or ls")
		clients   = flag.Int("clients", 20, "number of client sites")
		updates   = flag.Float64("updates", 0.05, "fraction of accesses that update")
		duration  = flag.Duration("duration", 30*time.Minute, "virtual generation time")
		warmup    = flag.Duration("warmup", 10*time.Minute, "virtual warmup excluded from statistics")
		seed      = flag.Int64("seed", 1, "master random seed")
		reps      = flag.Int("reps", 1, "replications over derived seeds, summarized as mean ± 95% CI")
		parallel  = flag.Int("parallel", 0, "worker pool size for replications (0 = GOMAXPROCS)")
		window    = flag.Duration("window", 500*time.Millisecond, "forward-list collection window (ls)")
		executors = flag.Int("executors", 4, "concurrent executor slots per client")
		noH1      = flag.Bool("no-h1", false, "disable heuristic H1")
		noH2      = flag.Bool("no-h2", false, "disable heuristic H2 / shipping")
		noDec     = flag.Bool("no-decomposition", false, "disable transaction decomposition")
		noFwd     = flag.Bool("no-forward-lists", false, "disable forward lists")
		noDown    = flag.Bool("no-downgrade", false, "disable EL->SL callback downgrades")
		traceOut  = flag.String("trace", "", "trace every transaction; write Chrome trace-event JSON to this file and print the slack-attribution report (cs/ls)")
		msgTraceN = flag.Int("msgtrace", 0, "print the last N LAN messages at the end of the run")

		dropRate  = flag.Float64("drop-rate", 0, "per-message drop probability [0,1]")
		dupRate   = flag.Float64("dup-rate", 0, "per-message duplication probability [0,1]")
		spikeRate = flag.Float64("spike-rate", 0, "per-message latency-spike probability [0,1]")
		spikeLat  = flag.Duration("spike-latency", 5*time.Millisecond, "extra latency added by a spike")
		partSite  = flag.Int("partition-site", -1, "site to cut off the LAN (0 = server, -1 = none)")
		partAt    = flag.Duration("partition-at", 0, "virtual time the partition starts")
		partDur   = flag.Duration("partition-duration", 0, "partition length (0 disables the partition)")
		invar     = flag.Bool("invariants", false, "attach the continuous invariant monitor (slow)")
		scenFile  = flag.String("scenario", "", "run one .rts scenario file (its own system, workload, and seed) and dump the result")
	)
	flag.Parse()

	if *scenFile != "" {
		return runScenario(*scenFile)
	}

	var kind siteselect.SystemKind
	var cfg siteselect.Config
	switch *system {
	case "ce":
		kind = siteselect.Centralized
		cfg = siteselect.DefaultCentralizedConfig(*clients, *updates)
	case "ce-occ":
		kind = siteselect.CentralizedOptimistic
		cfg = siteselect.DefaultCentralizedConfig(*clients, *updates)
	case "cs":
		kind = siteselect.ClientServer
		cfg = siteselect.DefaultConfig(*clients, *updates)
	case "ls":
		kind = siteselect.LoadSharing
		cfg = siteselect.DefaultConfig(*clients, *updates)
	default:
		return fmt.Errorf("unknown -system %q (want ce, ce-occ, cs or ls)", *system)
	}
	cfg.Duration = *duration
	cfg.Warmup = *warmup
	cfg.Seed = *seed
	cfg.CollectionWindow = *window
	cfg.ClientExecutors = *executors
	cfg.UseH1 = !*noH1
	cfg.UseH2 = !*noH2
	cfg.UseDecomposition = !*noDec
	cfg.UseForwardLists = !*noFwd
	cfg.UseDowngrade = !*noDown
	cfg.Faults.DropRate = *dropRate
	cfg.Faults.DupRate = *dupRate
	cfg.Faults.SpikeRate = *spikeRate
	cfg.Faults.SpikeLatency = *spikeLat
	if *partSite >= 0 && *partDur > 0 {
		cfg.Faults.PartitionSite = *partSite
		cfg.Faults.PartitionAt = *partAt
		cfg.Faults.PartitionDuration = *partDur
	}
	cfg.CheckInvariants = *invar

	if *traceOut != "" {
		return runTxnTraced(kind, cfg, *traceOut)
	}
	if *msgTraceN > 0 {
		return runMsgTraced(kind, cfg, *msgTraceN)
	}
	if *reps > 1 {
		return runReplicated(kind, cfg, *reps, *parallel)
	}
	res, err := siteselect.Run(kind, cfg)
	if err != nil {
		return err
	}
	dump(kind, res)
	return nil
}

// runReplicated runs the configuration reps times over seeds derived
// from the master seed, in parallel, and prints an aggregate summary
// (mean ± 95% CI) instead of the single-run dump.
func runReplicated(kind siteselect.SystemKind, cfg siteselect.Config, reps, parallel int) error {
	opts := experiment.Options{Seed: cfg.Seed, Reps: reps, Parallel: parallel}
	results, err := experiment.RunReps(opts, cfg, func(c siteselect.Config) (*siteselect.Result, error) {
		return siteselect.Run(kind, c)
	})
	if err != nil {
		return err
	}

	var success, resp, hit stats.Sample
	for _, r := range results {
		success.Add(r.SuccessRate())
		resp.Add(r.M.TxnResponse.Mean().Seconds() * 1e3)
		if r.M.CacheAccesses > 0 {
			hit.Add(r.CacheHitRate())
		}
	}

	fmt.Printf("%s — %d clients, %.0f%% updates, %d replications (master seed %d)\n\n",
		kind, cfg.NumClients, cfg.UpdateFraction*100, reps, cfg.Seed)
	for i, r := range results {
		fmt.Printf("  rep %-2d seed %-20d success %6.2f%%  committed %d/%d\n",
			i, r.Config.Seed, r.SuccessRate(), r.M.Committed, r.M.Submitted)
	}
	fmt.Printf("\n  success rate       %6.2f ± %.2f %% (95%% CI)\n", success.Mean(), success.CI95())
	fmt.Printf("  mean txn response  %6.1f ± %.1f ms\n", resp.Mean(), resp.CI95())
	if hit.N() > 0 {
		fmt.Printf("  cache hit rate     %6.2f ± %.2f %%\n", hit.Mean(), hit.CI95())
	}
	return nil
}

// runTxnTraced runs a client-server system with the per-transaction
// tracer on: after the normal dump it prints the slack-attribution
// report (per missed transaction and the aggregate miss-cause table)
// and writes the event timeline as Chrome trace-event JSON.
func runTxnTraced(kind siteselect.SystemKind, cfg siteselect.Config, path string) error {
	cfg.Trace = true
	var c *rtdbs.Cluster
	var err error
	switch kind {
	case siteselect.ClientServer:
		c, err = rtdbs.NewClientServer(cfg)
	case siteselect.LoadSharing:
		c, err = rtdbs.NewLoadSharing(cfg)
	default:
		return fmt.Errorf("-trace requires -system cs or ls (the centralized systems are untraced)")
	}
	if err != nil {
		return err
	}
	res, err := c.Run()
	if err != nil {
		return err
	}
	dump(kind, res)
	tr := c.Tracer()
	fmt.Println()
	if err := tr.WriteAttribution(os.Stdout, cfg.Warmup, 20); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nChrome trace written to %s (load in Perfetto or chrome://tracing)\n", path)
	return nil
}

// runMsgTraced builds the system directly so a message trace can be
// installed before the run, then prints the tail of the trace ring.
func runMsgTraced(kind siteselect.SystemKind, cfg siteselect.Config, n int) error {
	ring := make([]netsim.Message, 0, n)
	trace := func(m netsim.Message) {
		if len(ring) == n {
			copy(ring, ring[1:])
			ring = ring[:n-1]
		}
		ring = append(ring, m)
	}

	var res *siteselect.Result
	var err error
	switch kind {
	case siteselect.Centralized:
		ce, berr := rtdbs.NewCentralized(cfg)
		if berr != nil {
			return berr
		}
		ce.Net().SetTrace(trace)
		res, err = ce.Run()
	case siteselect.CentralizedOptimistic:
		ce, berr := rtdbs.NewCentralizedOCC(cfg)
		if berr != nil {
			return berr
		}
		ce.Net().SetTrace(trace)
		res, err = ce.Run()
	case siteselect.ClientServer:
		cs, berr := rtdbs.NewClientServer(cfg)
		if berr != nil {
			return berr
		}
		cs.Net().SetTrace(trace)
		res, err = cs.Run()
	default:
		ls, berr := rtdbs.NewLoadSharing(cfg)
		if berr != nil {
			return berr
		}
		ls.Net().SetTrace(trace)
		res, err = ls.Run()
	}
	if err != nil {
		return err
	}
	dump(kind, res)
	fmt.Printf("\nLast %d LAN messages:\n", len(ring))
	for _, m := range ring {
		fmt.Printf("  %-12v %-14v %3d -> %-3d %5dB\n",
			m.SentAt.Round(time.Millisecond), m.Kind, m.From, m.To, m.Size)
	}
	return nil
}

func dump(kind siteselect.SystemKind, r *siteselect.Result) {
	fmt.Printf("%s — %d clients, %.0f%% updates, %v virtual time (seed %d)\n\n",
		kind, r.Config.NumClients, r.Config.UpdateFraction*100, r.Elapsed, r.Config.Seed)

	fmt.Println("Transactions")
	fmt.Printf("  submitted            %10d\n", r.M.Submitted)
	fmt.Printf("  committed            %10d (%.2f%%)\n", r.M.Committed, r.SuccessRate())
	fmt.Printf("  missed               %10d\n", r.M.Missed)
	fmt.Printf("  aborted (deadlock)   %10d\n", r.M.Aborted)
	fmt.Printf("  mean response        %10v\n", r.M.TxnResponse.Mean().Round(time.Millisecond))
	fmt.Printf("  response p50/p95/p99 %10v / %v / %v\n",
		r.M.TxnHisto.P50(), r.M.TxnHisto.P95(), r.M.TxnHisto.P99())

	if r.M.CacheAccesses > 0 {
		fmt.Println("\nClient caching")
		fmt.Printf("  accesses             %10d\n", r.M.CacheAccesses)
		fmt.Printf("  hit rate             %9.2f%%\n", r.CacheHitRate())
		fmt.Printf("  SL response          %10v (n=%d)\n",
			r.M.SharedResponse.Mean().Round(time.Millisecond), r.M.SharedResponse.Count)
		fmt.Printf("  EL response          %10v (n=%d)\n",
			r.M.ExclusiveResponse.Mean().Round(time.Millisecond), r.M.ExclusiveResponse.Count)
		fmt.Printf("  EL p50/p95/p99       %10v / %v / %v\n",
			r.M.ExclusiveHisto.P50(), r.M.ExclusiveHisto.P95(), r.M.ExclusiveHisto.P99())
		fmt.Printf("  refetches            %10d\n", r.M.Refetches)
		fmt.Printf("  recalls deferred     %10d\n", r.M.RecallsDeferred)
	}

	if spread := r.ExecSpread(); spread > 0 {
		fmt.Printf("  exec spread (CV)     %10.3f\n", spread)
	}

	if r.M.ShippedTxns+r.M.DecomposedTxns+r.MigrationsStarted > 0 {
		fmt.Println("\nLoad sharing")
		ss, sc := r.M.ShippedOutcomes()
		fmt.Printf("  transactions shipped %10d (%d committed)\n", ss, sc)
		fmt.Printf("  decomposed           %10d (%d subtasks)\n", r.M.DecomposedTxns, r.M.SubtasksRun)
		fmt.Printf("  H1 rejections        %10d\n", r.M.H1Rejections)
		fmt.Printf("  migrations started   %10d\n", r.MigrationsStarted)
		fmt.Printf("  forward hops (c2c)   %10d\n", r.ForwardHops)
	}

	fmt.Println("\nServer")
	fmt.Printf("  buffer hit rate      %9.2f%%\n", 100*r.ServerBufferHitRate)
	fmt.Printf("  disk reads/writes    %6d / %d\n", r.ServerDiskReads, r.ServerDiskWrites)
	fmt.Printf("  recalls sent         %10d\n", r.RecallsSent)
	fmt.Printf("  grants shipped       %10d\n", r.GrantsShipped)
	fmt.Printf("  denies (late/dlock)  %6d / %d\n", r.DeniesExpired, r.DeniesDeadlock)

	if r.Faults != (netsim.FaultStats{}) || r.Retries > 0 {
		fmt.Println("\nInjected faults")
		fmt.Printf("  dropped              %10d\n", r.Faults.Dropped)
		fmt.Printf("  partition drops      %10d\n", r.Faults.PartitionDrops)
		fmt.Printf("  duplicated           %10d\n", r.Faults.Duplicated)
		fmt.Printf("  latency spikes       %10d\n", r.Faults.Spiked)
		fmt.Printf("  retransmissions      %10d\n", r.Faults.Retransmits)
		fmt.Printf("  client retries       %10d\n", r.Retries)
	}

	fmt.Println("\nNetwork")
	fmt.Printf("  total messages       %10d (%d bytes, %.2f%% bus utilization)\n",
		r.TotalMessages, r.TotalBytes, 100*r.NetUtilization)
	kinds := make([]netsim.Kind, 0, len(r.Messages))
	for k := range r.Messages {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		s := r.Messages[k]
		if s.Count == 0 {
			continue
		}
		fmt.Printf("  %-20s %10d\n", k, s.Count)
	}
}
