package siteselect_test

import (
	"testing"
	"time"

	"siteselect"
)

func quick(n int, upd float64) siteselect.Config {
	cfg := siteselect.DefaultConfig(n, upd)
	cfg.Duration = 3 * time.Minute
	cfg.Warmup = 30 * time.Second
	cfg.Drain = 30 * time.Second
	return cfg
}

func TestRunAllKinds(t *testing.T) {
	for _, kind := range []siteselect.SystemKind{
		siteselect.Centralized, siteselect.ClientServer, siteselect.LoadSharing,
	} {
		cfg := quick(4, 0.05)
		if kind == siteselect.Centralized {
			cfg.ServerMemory = 5000
		}
		res, err := siteselect.Run(kind, cfg)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.M.Submitted == 0 {
			t.Fatalf("%v: no transactions", kind)
		}
		if got := res.SuccessRate(); got < 0 || got > 100 {
			t.Fatalf("%v: success rate %v", kind, got)
		}
	}
}

func TestRunRejectsUnknownKind(t *testing.T) {
	if _, err := siteselect.Run(siteselect.SystemKind(42), quick(2, 0)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := quick(4, 0.05)
	cfg.DBSize = -1
	if _, err := siteselect.Run(siteselect.ClientServer, cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSystemKindString(t *testing.T) {
	if siteselect.Centralized.String() != "CE-RTDBS" ||
		siteselect.ClientServer.String() != "CS-RTDBS" ||
		siteselect.LoadSharing.String() != "LS-CS-RTDBS" {
		t.Fatal("kind names wrong")
	}
	if siteselect.SystemKind(9).String() == "" {
		t.Fatal("unknown kind should still print")
	}
}

func TestFigureEntryPoint(t *testing.T) {
	f, err := siteselect.Figure3(siteselect.Options{Scale: 0.05, Clients: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != 1 || f.Points[0].Clients != 4 {
		t.Fatalf("points = %+v", f.Points)
	}
}
