// Stock trader: a financial-market workload of the kind the paper's
// introduction motivates. Trading desks (clients) work mostly within
// their own books (strong locality) but all reprice against the same
// globally hot symbols, and a sizeable fraction of accesses are updates
// (fills, position changes). Orders are only worth executing within a
// deadline.
//
// The example compares the basic object-shipping system with the
// load-sharing system across a calm and a frantic market, showing where
// shipping transactions to the sites that hold the hot books pays off.
package main

import (
	"fmt"
	"os"
	"time"

	"siteselect"
)

func desk(cfg siteselect.Config) siteselect.Config {
	cfg.DBSize = 4000        // instruments and positions
	cfg.HotRegionSize = 250  // one desk's book
	cfg.LocalFraction = 0.70 // most work is within the book
	cfg.ZipfTheta = 0.95     // index heavyweights are very hot
	cfg.MeanObjects = 8      // instruments touched per order batch
	cfg.MeanLength = 6 * time.Second
	cfg.MeanSlack = 14 * time.Second // fill-or-kill style deadlines
	cfg.MeanInterArrival = 8 * time.Second
	cfg.Duration = 30 * time.Minute
	cfg.Warmup = 8 * time.Minute
	return cfg
}

func main() {
	const desks = 24
	fmt.Printf("stock trader: %d desks, 4000 instruments, hot index symbols\n\n", desks)
	fmt.Printf("%-18s %14s %14s %10s %10s\n", "market", "CS success", "LS success", "shipped", "migrations")

	for _, market := range []struct {
		name    string
		updates float64
	}{
		{"calm (5% fills)", 0.05},
		{"frantic (25% fills)", 0.25},
	} {
		cs, err := siteselect.Run(siteselect.ClientServer, desk(siteselect.DefaultConfig(desks, market.updates)))
		if err != nil {
			fmt.Fprintln(os.Stderr, "stocktrader:", err)
			os.Exit(1)
		}
		ls, err := siteselect.Run(siteselect.LoadSharing, desk(siteselect.DefaultConfig(desks, market.updates)))
		if err != nil {
			fmt.Fprintln(os.Stderr, "stocktrader:", err)
			os.Exit(1)
		}
		fmt.Printf("%-18s %13.1f%% %13.1f%% %10d %10d\n",
			market.name, cs.SuccessRate(), ls.SuccessRate(), ls.M.ShippedTxns, ls.MigrationsStarted)
	}

	fmt.Println("\nLS ships order batches to the desk already holding the contested")
	fmt.Println("book pages and migrates hot symbols along forward lists instead of")
	fmt.Println("bouncing them through the server on every fill.")
}
