// Network monitor: a network-management workload (the paper's third
// motivating domain). Regional monitoring stations poll mostly their own
// region's element state, occasionally correlating against globally
// shared backbone elements. Queries dominate — alarms and
// reconfigurations are rare writes — and stale answers are worthless, so
// every poll carries a deadline.
//
// The example sweeps the station count to show the paper's headline
// architectural result: the centralized manager is excellent small and
// collapses as the network grows, while the client-server systems scale
// almost flat — with load sharing adding a margin on top.
package main

import (
	"fmt"
	"os"
	"time"

	"siteselect"
)

func station(cfg siteselect.Config) siteselect.Config {
	cfg.DBSize = 8000       // managed element state objects
	cfg.HotRegionSize = 400 // one region's elements
	cfg.LocalFraction = 0.8
	cfg.MeanObjects = 12 // elements correlated per poll
	cfg.MeanLength = 8 * time.Second
	cfg.MeanSlack = 18 * time.Second
	cfg.Duration = 25 * time.Minute
	cfg.Warmup = 6 * time.Minute
	return cfg
}

func main() {
	const updates = 0.02 // alarms and reconfigurations

	fmt.Printf("network monitor: regional stations polling 8000 elements, %.0f%% writes\n\n", updates*100)
	fmt.Printf("%-10s %12s %12s %12s\n", "stations", "CE-RTDBS", "CS-RTDBS", "LS-CS-RTDBS")

	for _, n := range []int{10, 40, 80} {
		ce, err := siteselect.Run(siteselect.Centralized, station(siteselect.DefaultCentralizedConfig(n, updates)))
		if err != nil {
			fmt.Fprintln(os.Stderr, "netmonitor:", err)
			os.Exit(1)
		}
		cs, err := siteselect.Run(siteselect.ClientServer, station(siteselect.DefaultConfig(n, updates)))
		if err != nil {
			fmt.Fprintln(os.Stderr, "netmonitor:", err)
			os.Exit(1)
		}
		ls, err := siteselect.Run(siteselect.LoadSharing, station(siteselect.DefaultConfig(n, updates)))
		if err != nil {
			fmt.Fprintln(os.Stderr, "netmonitor:", err)
			os.Exit(1)
		}
		fmt.Printf("%-10d %11.1f%% %11.1f%% %11.1f%%\n",
			n, ce.SuccessRate(), cs.SuccessRate(), ls.SuccessRate())
	}

	fmt.Println("\nA centralized manager answers every poll itself and saturates; the")
	fmt.Println("client-server stations keep their regions cached and scale out.")
}
