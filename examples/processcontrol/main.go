// Process control: a computer-integrated-manufacturing cell, the other
// application domain the paper's introduction names. Station controllers
// (clients) monitor and adjust their own cell's sensors and actuators
// under tight deadlines; supervisory transactions span several cells and
// are decomposable — their per-cell object requests are independent and
// can materialize in parallel where each cell's state is cached
// (Section 3.2).
package main

import (
	"fmt"
	"os"
	"time"

	"siteselect"
)

func cell(cfg siteselect.Config) siteselect.Config {
	cfg.DBSize = 2000       // sensor/actuator state objects
	cfg.HotRegionSize = 125 // one cell's devices
	cfg.LocalFraction = 0.85
	cfg.MeanObjects = 6
	cfg.MeanLength = 4 * time.Second
	cfg.MeanSlack = 9 * time.Second // control-loop deadlines are tight
	cfg.MeanInterArrival = 6 * time.Second
	cfg.DecomposableFraction = 0.30 // supervisory scans span cells
	cfg.Duration = 30 * time.Minute
	cfg.Warmup = 8 * time.Minute
	return cfg
}

func main() {
	const stations = 16
	const updates = 0.15 // setpoint writes

	fmt.Printf("process control: %d station controllers, %.0f%% setpoint writes\n\n", stations, updates*100)

	withDec := cell(siteselect.DefaultConfig(stations, updates))
	noDec := withDec
	noDec.UseDecomposition = false

	on, err := siteselect.Run(siteselect.LoadSharing, withDec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "processcontrol:", err)
		os.Exit(1)
	}
	off, err := siteselect.Run(siteselect.LoadSharing, noDec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "processcontrol:", err)
		os.Exit(1)
	}
	cs, err := siteselect.Run(siteselect.ClientServer, withDec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "processcontrol:", err)
		os.Exit(1)
	}

	fmt.Printf("%-34s %9s %12s %10s\n", "system", "success", "decomposed", "subtasks")
	fmt.Printf("%-34s %8.1f%% %12s %10s\n", "CS-RTDBS", cs.SuccessRate(), "-", "-")
	fmt.Printf("%-34s %8.1f%% %12d %10d\n", "LS-CS-RTDBS (no decomposition)", off.SuccessRate(), off.M.DecomposedTxns, off.M.SubtasksRun)
	fmt.Printf("%-34s %8.1f%% %12d %10d\n", "LS-CS-RTDBS (with decomposition)", on.SuccessRate(), on.M.DecomposedTxns, on.M.SubtasksRun)

	fmt.Println("\nSupervisory scans are disassembled by the cell that caches each")
	fmt.Println("device group; the per-cell subtasks materialize in parallel and the")
	fmt.Println("answers are synthesized at the originating controller.")
}
