// Quickstart: run the paper's three system configurations on a small
// cluster and print the headline real-time metric — the percentage of
// transactions that completed within their deadlines.
package main

import (
	"fmt"
	"os"
	"time"

	"siteselect"
)

func main() {
	const (
		clients = 12
		updates = 0.05 // 5% of accesses write
	)
	fmt.Printf("site-selection quickstart: %d clients, %.0f%% updates\n\n", clients, updates*100)

	for _, kind := range []siteselect.SystemKind{
		siteselect.Centralized,
		siteselect.ClientServer,
		siteselect.LoadSharing,
	} {
		cfg := siteselect.DefaultConfig(clients, updates)
		if kind == siteselect.Centralized {
			cfg = siteselect.DefaultCentralizedConfig(clients, updates)
		}
		cfg.Duration = 20 * time.Minute
		cfg.Warmup = 5 * time.Minute

		res, err := siteselect.Run(kind, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quickstart:", err)
			os.Exit(1)
		}
		fmt.Printf("%-12s  %5.1f%% of %d transactions met their deadlines", kind, res.SuccessRate(), res.M.Submitted)
		if res.M.CacheAccesses > 0 {
			fmt.Printf("  (cache hit %.1f%%)", res.CacheHitRate())
		}
		fmt.Println()
	}

	fmt.Println("\nTry cmd/rtbench to regenerate the paper's figures and tables.")
}
