// Policy lab: a tour of the design-space knobs beyond the paper's
// evaluated configuration. One workload point (40 clients, 10% updates)
// is re-run under each variation so their effects are directly
// comparable:
//
//   - optimistic concurrency control in place of 2PL (centralized)
//   - speculative processing on the load-sharing system
//   - FCFS scheduling instead of Earliest-Deadline-First
//   - a switched interconnect instead of the shared 10 Mbps bus
//   - client-based write-ahead logging (recovery cost)
//   - a mid-run client outage, with and without that log
package main

import (
	"fmt"
	"os"
	"time"

	"siteselect"
)

const (
	clients = 40
	updates = 0.10
)

func base() siteselect.Config {
	cfg := siteselect.DefaultConfig(clients, updates)
	cfg.Duration = 15 * time.Minute
	cfg.Warmup = 4 * time.Minute
	return cfg
}

func must(res *siteselect.Result, err error) *siteselect.Result {
	if err != nil {
		fmt.Fprintln(os.Stderr, "policylab:", err)
		os.Exit(1)
	}
	return res
}

func main() {
	fmt.Printf("policy lab: %d clients, %.0f%% updates\n\n", clients, updates*100)
	fmt.Printf("%-38s %10s\n", "variant", "success")

	row := func(name string, kind siteselect.SystemKind, mod func(*siteselect.Config)) {
		cfg := base()
		if kind == siteselect.Centralized || kind == siteselect.CentralizedOptimistic {
			cfg = siteselect.DefaultCentralizedConfig(clients, updates)
			cfg.Duration = 15 * time.Minute
			cfg.Warmup = 4 * time.Minute
		}
		if mod != nil {
			mod(&cfg)
		}
		res := must(siteselect.Run(kind, cfg))
		fmt.Printf("%-38s %9.1f%%\n", name, res.SuccessRate())
	}

	row("CE-RTDBS (2PL, as in the paper)", siteselect.Centralized, nil)
	row("CE-RTDBS with optimistic CC", siteselect.CentralizedOptimistic, nil)
	row("LS-CS-RTDBS (as in the paper)", siteselect.LoadSharing, nil)
	row("LS + speculative processing", siteselect.LoadSharing, func(c *siteselect.Config) {
		c.UseSpeculation = true
	})
	row("LS with FCFS scheduling", siteselect.LoadSharing, func(c *siteselect.Config) {
		c.Scheduling = siteselect.SchedFCFS
	})
	row("LS on a switched network", siteselect.LoadSharing, func(c *siteselect.Config) {
		c.Topology = siteselect.TopologySwitched
	})
	row("LS with client WAL (group commit)", siteselect.LoadSharing, func(c *siteselect.Config) {
		c.UseLogging = true
	})
	row("LS, 1-min client outage, no log", siteselect.LoadSharing, func(c *siteselect.Config) {
		c.OutageClient = 1
		c.OutageAt = 8 * time.Minute
		c.OutageDuration = time.Minute
	})
	row("LS, same outage, with WAL", siteselect.LoadSharing, func(c *siteselect.Config) {
		c.UseLogging = true
		c.OutageClient = 1
		c.OutageAt = 8 * time.Minute
		c.OutageDuration = time.Minute
	})

	fmt.Println("\nSee EXPERIMENTS.md for the full studies behind each knob.")
}
