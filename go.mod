module siteselect

go 1.22
