#!/bin/sh
# bench_kernel.sh — run the simulation-kernel benchmark suite and record
# the results in BENCH_kernel.json under a label.
#
# Usage: scripts/bench_kernel.sh [label]
#
# The label defaults to "current". Use distinct labels (e.g. "pre-pr",
# "post-pr") to keep before/after snapshots side by side; re-running with
# the same label replaces that snapshot. The macro benchmark
# (BenchmarkFigure3) runs a full scaled experiment and takes a few
# seconds; the micro benchmarks are fast.
set -eu
cd "$(dirname "$0")/.."

label="${1:-current}"

{
	go test -run '^$' -bench . -benchtime 100000x -benchmem \
		./internal/sim/... ./internal/netsim/...
	go test -run '^$' -bench 'BenchmarkFigure3$' -benchtime 1x -benchmem .
} | go run ./cmd/benchjson -into BENCH_kernel.json -label "$label"
