#!/bin/sh
# bench_kernel.sh — run the simulation-kernel benchmark suite and record
# the results in BENCH_kernel.json under a label.
#
# Usage: scripts/bench_kernel.sh [label]
#
# The label defaults to "current". Use distinct labels (e.g. "pre-pr",
# "post-pr") to keep before/after snapshots side by side; re-running with
# the same label replaces that snapshot. The macro benchmarks
# (BenchmarkFigure3, its batched variant, and BenchmarkScaleSmoke) run
# full simulations and take a few seconds each; the micro benchmarks
# are fast.
#
# BenchmarkScaleSmoke reports steps/sec and heap high-water (heap-MB,
# B/client) alongside ns/op, so kernel-throughput and memory-per-client
# regressions land in BENCH_kernel.json with everything else. Set
# BENCH_SCALE=1 to also run BenchmarkScale100x, the million-client run —
# minutes of wall clock and tens of GB of heap, so it is opt-in.
set -eu
cd "$(dirname "$0")/.."

label="${1:-current}"

scale='BenchmarkScaleSmoke$'
if [ "${BENCH_SCALE:-}" = 1 ]; then
	scale='BenchmarkScaleSmoke$|BenchmarkScale100x$'
fi

{
	go test -run '^$' -bench . -benchtime 100000x -benchmem \
		./internal/sim/... ./internal/netsim/...
	go test -run '^$' -bench 'BenchmarkFigure3$|BenchmarkFigure3Batched$' -benchtime 1x -benchmem .
	go test -run '^$' -bench "$scale" -benchtime 1x -benchmem -timeout 60m .
} | go run ./cmd/benchjson -into BENCH_kernel.json -label "$label"
