package siteselect_test

import (
	"fmt"
	"time"

	"siteselect"
)

// ExampleRun runs a small load-sharing cluster and reports the primary
// real-time metric. Runs are deterministic for a fixed seed, so the
// output is stable.
func ExampleRun() {
	cfg := siteselect.DefaultConfig(4, 0.05)
	cfg.Duration = 3 * time.Minute
	cfg.Warmup = 30 * time.Second
	cfg.Drain = 30 * time.Second
	cfg.Seed = 7

	res, err := siteselect.Run(siteselect.LoadSharing, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d transactions submitted\n", res.M.Submitted)
	fmt.Printf("success rate above 50%%: %v\n", res.SuccessRate() > 50)
	// Output:
	// 58 transactions submitted
	// success rate above 50%: true
}

// ExampleSystemKind_String shows the paper's names for the systems.
func ExampleSystemKind_String() {
	fmt.Println(siteselect.Centralized)
	fmt.Println(siteselect.ClientServer)
	fmt.Println(siteselect.LoadSharing)
	fmt.Println(siteselect.CentralizedOptimistic)
	// Output:
	// CE-RTDBS
	// CS-RTDBS
	// LS-CS-RTDBS
	// CE-RTDBS/OCC
}
