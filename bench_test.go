package siteselect_test

import (
	"strings"
	"testing"
	"time"

	"siteselect"
	"siteselect/internal/cache"
	"siteselect/internal/experiment"
	"siteselect/internal/forward"
	"siteselect/internal/lockmgr"
	"siteselect/internal/rng"
	"siteselect/internal/sched"
	"siteselect/internal/sim"
	"siteselect/internal/txn"
)

// benchOpts keeps the table/figure benchmarks affordable: a quarter of
// the full virtual run. Shapes survive scaling; run cmd/rtbench with
// -scale 1 for the full-length numbers recorded in EXPERIMENTS.md.
var benchOpts = experiment.Options{Scale: 0.25, Seed: 1}

// BenchmarkFigure3 regenerates Figure 3: % of transactions completed
// within their deadlines vs client count at 1% updates, for the
// centralized, client-server and load-sharing systems.
func BenchmarkFigure3(b *testing.B) {
	benchFigure(b, "Figure 3", 0.01)
}

// BenchmarkFigure4 regenerates Figure 4 (5% updates).
func BenchmarkFigure4(b *testing.B) {
	benchFigure(b, "Figure 4", 0.05)
}

// BenchmarkFigure5 regenerates Figure 5 (20% updates).
func BenchmarkFigure5(b *testing.B) {
	benchFigure(b, "Figure 5", 0.20)
}

func benchFigure(b *testing.B, id string, update float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		f, err := experiment.RunFigure(id, update, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sb strings.Builder
			f.Render(&sb)
			b.Log("\n" + sb.String())
			last := f.Points[len(f.Points)-1]
			b.ReportMetric(last.LS-last.CS, "LS-CS-gap-pp")
			b.ReportMetric(last.CE, "CE-at-max-clients-%")
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (average cache hit rates).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.RunTable2(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sb strings.Builder
			t.Render(&sb)
			b.Log("\n" + sb.String())
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (average object response times by
// lock mode, 1% updates).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.RunTable3(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sb strings.Builder
			t.Render(&sb)
			b.Log("\n" + sb.String())
			last := t.Rows[len(t.Rows)-1]
			b.ReportMetric(last.CSExclusive.Seconds(), "CS-EL-100c-s")
			b.ReportMetric(last.LSExclusive.Seconds(), "LS-EL-100c-s")
		}
	}
}

// BenchmarkTable4 regenerates Table 4 (message counts at 100 clients,
// 1% updates).
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.RunTable4(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sb strings.Builder
			t.Render(&sb)
			b.Log("\n" + sb.String())
			b.ReportMetric(float64(t.LSForwarded), "forward-hops")
		}
	}
}

// BenchmarkLockProtocolMessages evaluates the Figure 1/2 closed forms.
func BenchmarkLockProtocolMessages(b *testing.B) {
	ns := []int{1, 2, 5, 10, 20}
	for i := 0; i < b.N; i++ {
		counts := experiment.RunProtocolCounts(ns)
		if counts[2].Grouped != 11 {
			b.Fatalf("grouped(5) = %d", counts[2].Grouped)
		}
	}
}

// BenchmarkAblationHeuristics regenerates the design-choice ablation
// called out in DESIGN.md (H1/H2/decomposition/forward lists).
func BenchmarkAblationHeuristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiment.RunHeuristicAblation(60, 0.20, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sb strings.Builder
			a.Render(&sb)
			b.Log("\n" + sb.String())
		}
	}
}

// BenchmarkSingleRunLS measures one load-sharing run end to end (the
// dominant cost of every experiment above).
func BenchmarkSingleRunLS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := siteselect.DefaultConfig(20, 0.05).Scale(0.25)
		res, err := siteselect.Run(siteselect.LoadSharing, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.M.Submitted == 0 {
			b.Fatal("empty run")
		}
	}
}

// --- microbenchmarks of the substrates ---

// BenchmarkSimKernel measures raw event throughput of the DES kernel.
func BenchmarkSimKernel(b *testing.B) {
	env := sim.NewEnv()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			env.Schedule(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	env.Schedule(0, tick)
	env.RunAll()
}

// BenchmarkSimProcessSwitch measures coroutine context switches.
func BenchmarkSimProcessSwitch(b *testing.B) {
	env := sim.NewEnv()
	env.Go("switcher", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	env.RunAll()
}

// BenchmarkLockTable measures uncontended lock/release pairs.
func BenchmarkLockTable(b *testing.B) {
	t := lockmgr.NewTable()
	for i := 0; i < b.N; i++ {
		obj := lockmgr.ObjectID(i % 512)
		t.Lock(&lockmgr.Request{Obj: obj, Owner: 1, Mode: lockmgr.ModeExclusive, Deadline: time.Duration(i)})
		t.Release(obj, 1)
	}
}

// BenchmarkLockTableContended measures conflict handling with queued
// waiters and deadline ordering.
func BenchmarkLockTableContended(b *testing.B) {
	t := lockmgr.NewTable()
	for i := 0; i < b.N; i++ {
		t.Lock(&lockmgr.Request{Obj: 1, Owner: 1, Mode: lockmgr.ModeExclusive, Deadline: time.Duration(i)})
		t.Lock(&lockmgr.Request{Obj: 1, Owner: 2, Mode: lockmgr.ModeShared, Deadline: time.Duration(i + 1)})
		t.Lock(&lockmgr.Request{Obj: 1, Owner: 3, Mode: lockmgr.ModeShared, Deadline: time.Duration(i + 2)})
		t.Release(1, 1)
		t.Release(1, 2)
		t.Release(1, 3)
	}
}

// BenchmarkClientCache measures the two-tier LRU under a skewed access
// stream.
func BenchmarkClientCache(b *testing.B) {
	c := cache.New(500, 500)
	stream := rng.NewStream(1)
	z := rng.NewZipf(stream, 0.9, 4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj := lockmgr.ObjectID(z.Rank())
		if e, _, _ := c.Lookup(obj); e == nil {
			c.Insert(obj, lockmgr.ModeShared, false, 0)
		}
	}
}

// BenchmarkEDFQueue measures push/pop of the deadline queue.
func BenchmarkEDFQueue(b *testing.B) {
	q := sched.NewEDFQueue()
	for i := 0; i < b.N; i++ {
		q.Push(&txn.Transaction{ID: txn.ID(i), Deadline: time.Duration(i % 997)})
		if q.Len() > 64 {
			q.Pop()
		}
	}
}

// BenchmarkForwardListInsert measures deadline-ordered list insertion.
func BenchmarkForwardListInsert(b *testing.B) {
	for i := 0; i < b.N; i += 16 {
		l := forward.NewList(1)
		for j := 0; j < 16; j++ {
			l.Insert(forward.Entry{Client: 1, Deadline: time.Duration((i + j) % 101)})
		}
	}
}

// BenchmarkLocalizedRW measures workload generation.
func BenchmarkLocalizedRW(b *testing.B) {
	g := rng.NewLocalizedRW(rng.NewStream(1), rng.LocalizedRWConfig{
		DBSize: 10000, ClientIndex: 3, NumClients: 100,
		RegionSize: 500, LocalFraction: 0.75, ZipfTheta: 0.9,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

// BenchmarkCCComparison regenerates the future-work concurrency-control
// study: strict 2PL vs backward-validation OCC on the centralized
// system.
func BenchmarkCCComparison(b *testing.B) {
	opts := experiment.Options{Scale: 0.25, Seed: 1, Clients: []int{20, 60, 100}}
	for i := 0; i < b.N; i++ {
		cc, err := experiment.RunCCComparison(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sb strings.Builder
			cc.Render(&sb)
			b.Log("\n" + sb.String())
		}
	}
}

// BenchmarkPatternSweep regenerates the access-pattern robustness sweep.
func BenchmarkPatternSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ps, err := experiment.RunPatternSweep(40, 0.05, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sb strings.Builder
			ps.Render(&sb)
			b.Log("\n" + sb.String())
		}
	}
}
