package siteselect_test

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"siteselect"
	"siteselect/internal/cache"
	"siteselect/internal/config"
	"siteselect/internal/experiment"
	"siteselect/internal/forward"
	"siteselect/internal/lockmgr"
	"siteselect/internal/rng"
	"siteselect/internal/rtdbs"
	"siteselect/internal/sched"
	"siteselect/internal/sim"
	"siteselect/internal/txn"
)

// benchOpts keeps the table/figure benchmarks affordable: a quarter of
// the full virtual run. Shapes survive scaling; run cmd/rtbench with
// -scale 1 for the full-length numbers recorded in EXPERIMENTS.md.
var benchOpts = experiment.Options{Scale: 0.25, Seed: 1}

// BenchmarkFigure3 regenerates Figure 3: % of transactions completed
// within their deadlines vs client count at 1% updates, for the
// centralized, client-server and load-sharing systems.
func BenchmarkFigure3(b *testing.B) {
	benchFigure(b, "Figure 3", 0.01)
}

// BenchmarkFigure3Batched runs the Figure 3 workload with a 250 ms
// server batch window, putting the batching layer's hot path (window
// timers, flush ordering, coalesced ships/recalls, grouped disk reads,
// widened group commit) under the same regression watch as the
// unbatched figure. Recorded in BENCH_kernel.json next to
// BenchmarkFigure3 so benchjson -diff warns on either regressing.
func BenchmarkFigure3Batched(b *testing.B) {
	opts := benchOpts
	opts.BatchWindow = 250 * time.Millisecond
	for i := 0; i < b.N; i++ {
		f, err := experiment.RunFigure("Figure 3 (batched)", 0.01, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := f.Points[len(f.Points)-1]
			b.ReportMetric(last.CS, "CS-at-max-clients-%")
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4 (5% updates).
func BenchmarkFigure4(b *testing.B) {
	benchFigure(b, "Figure 4", 0.05)
}

// BenchmarkFigure5 regenerates Figure 5 (20% updates).
func BenchmarkFigure5(b *testing.B) {
	benchFigure(b, "Figure 5", 0.20)
}

func benchFigure(b *testing.B, id string, update float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		f, err := experiment.RunFigure(id, update, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sb strings.Builder
			f.Render(&sb)
			b.Log("\n" + sb.String())
			last := f.Points[len(f.Points)-1]
			b.ReportMetric(last.LS-last.CS, "LS-CS-gap-pp")
			b.ReportMetric(last.CE, "CE-at-max-clients-%")
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (average cache hit rates).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.RunTable2(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sb strings.Builder
			t.Render(&sb)
			b.Log("\n" + sb.String())
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (average object response times by
// lock mode, 1% updates).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.RunTable3(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sb strings.Builder
			t.Render(&sb)
			b.Log("\n" + sb.String())
			last := t.Rows[len(t.Rows)-1]
			b.ReportMetric(last.CSExclusive.Seconds(), "CS-EL-100c-s")
			b.ReportMetric(last.LSExclusive.Seconds(), "LS-EL-100c-s")
		}
	}
}

// BenchmarkTable4 regenerates Table 4 (message counts at 100 clients,
// 1% updates).
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.RunTable4(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sb strings.Builder
			t.Render(&sb)
			b.Log("\n" + sb.String())
			b.ReportMetric(float64(t.LSForwarded), "forward-hops")
		}
	}
}

// BenchmarkLockProtocolMessages evaluates the Figure 1/2 closed forms.
func BenchmarkLockProtocolMessages(b *testing.B) {
	ns := []int{1, 2, 5, 10, 20}
	for i := 0; i < b.N; i++ {
		counts := experiment.RunProtocolCounts(ns)
		if counts[2].Grouped != 11 {
			b.Fatalf("grouped(5) = %d", counts[2].Grouped)
		}
	}
}

// BenchmarkAblationHeuristics regenerates the design-choice ablation
// called out in DESIGN.md (H1/H2/decomposition/forward lists).
func BenchmarkAblationHeuristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiment.RunHeuristicAblation(60, 0.20, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sb strings.Builder
			a.Render(&sb)
			b.Log("\n" + sb.String())
		}
	}
}

// BenchmarkSingleRunLS measures one load-sharing run end to end (the
// dominant cost of every experiment above).
func BenchmarkSingleRunLS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := siteselect.DefaultConfig(20, 0.05).Scale(0.25)
		res, err := siteselect.Run(siteselect.LoadSharing, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.M.Submitted == 0 {
			b.Fatal("empty run")
		}
	}
}

// --- microbenchmarks of the substrates ---

// BenchmarkSimKernel measures raw event throughput of the DES kernel.
func BenchmarkSimKernel(b *testing.B) {
	env := sim.NewEnv()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			env.Schedule(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	env.Schedule(0, tick)
	env.RunAll()
}

// BenchmarkSimProcessSwitch measures coroutine context switches.
func BenchmarkSimProcessSwitch(b *testing.B) {
	env := sim.NewEnv()
	env.Go("switcher", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	env.RunAll()
}

// BenchmarkLockTable measures uncontended lock/release pairs.
func BenchmarkLockTable(b *testing.B) {
	t := lockmgr.NewTable()
	for i := 0; i < b.N; i++ {
		obj := lockmgr.ObjectID(i % 512)
		t.Lock(&lockmgr.Request{Obj: obj, Owner: 1, Mode: lockmgr.ModeExclusive, Deadline: time.Duration(i)})
		t.Release(obj, 1)
	}
}

// BenchmarkLockTableContended measures conflict handling with queued
// waiters and deadline ordering.
func BenchmarkLockTableContended(b *testing.B) {
	t := lockmgr.NewTable()
	for i := 0; i < b.N; i++ {
		t.Lock(&lockmgr.Request{Obj: 1, Owner: 1, Mode: lockmgr.ModeExclusive, Deadline: time.Duration(i)})
		t.Lock(&lockmgr.Request{Obj: 1, Owner: 2, Mode: lockmgr.ModeShared, Deadline: time.Duration(i + 1)})
		t.Lock(&lockmgr.Request{Obj: 1, Owner: 3, Mode: lockmgr.ModeShared, Deadline: time.Duration(i + 2)})
		t.Release(1, 1)
		t.Release(1, 2)
		t.Release(1, 3)
	}
}

// BenchmarkClientCache measures the two-tier LRU under a skewed access
// stream.
func BenchmarkClientCache(b *testing.B) {
	c := cache.New(500, 500)
	stream := rng.NewStream(1)
	z := rng.NewZipf(stream, 0.9, 4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj := lockmgr.ObjectID(z.Rank())
		if e, _, _ := c.Lookup(obj); e == nil {
			c.Insert(obj, lockmgr.ModeShared, false, 0)
		}
	}
}

// BenchmarkEDFQueue measures push/pop of the deadline queue.
func BenchmarkEDFQueue(b *testing.B) {
	q := sched.NewEDFQueue()
	for i := 0; i < b.N; i++ {
		q.Push(&txn.Transaction{ID: txn.ID(i), Deadline: time.Duration(i % 997)})
		if q.Len() > 64 {
			q.Pop()
		}
	}
}

// BenchmarkForwardListInsert measures deadline-ordered list insertion.
func BenchmarkForwardListInsert(b *testing.B) {
	for i := 0; i < b.N; i += 16 {
		l := forward.NewList(1)
		for j := 0; j < 16; j++ {
			l.Insert(forward.Entry{Client: 1, Deadline: time.Duration((i + j) % 101)})
		}
	}
}

// BenchmarkLocalizedRW measures workload generation.
func BenchmarkLocalizedRW(b *testing.B) {
	g := rng.NewLocalizedRW(rng.NewStream(1), rng.LocalizedRWConfig{
		DBSize: 10000, ClientIndex: 3, NumClients: 100,
		RegionSize: 500, LocalFraction: 0.75, ZipfTheta: 0.9,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

// BenchmarkCCComparison regenerates the future-work concurrency-control
// study: strict 2PL vs backward-validation OCC on the centralized
// system.
func BenchmarkCCComparison(b *testing.B) {
	opts := experiment.Options{Scale: 0.25, Seed: 1, Clients: []int{20, 60, 100}}
	for i := 0; i < b.N; i++ {
		cc, err := experiment.RunCCComparison(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sb strings.Builder
			cc.Render(&sb)
			b.Log("\n" + sb.String())
		}
	}
}

// BenchmarkPatternSweep regenerates the access-pattern robustness sweep.
func BenchmarkPatternSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ps, err := experiment.RunPatternSweep(40, 0.05, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sb strings.Builder
			ps.Render(&sb)
			b.Log("\n" + sb.String())
		}
	}
}

// --- population-scale benchmarks of the state-machine kernel ---

// scaleConfig is a synthetic large-population workload for the scale
// benchmarks: the paper's protocol stack with hardware constants turned
// down to modern values (the 1999 12 ms server op on one CPU would
// saturate long before a million clients could be observed) and loose
// deadlines, so the run measures kernel throughput rather than overload
// behavior. Each client submits ~2 transactions over the horizon.
func scaleConfig(clients int) config.Config {
	return config.Config{
		NumClients:       clients,
		DBSize:           2 * clients,
		ServerMemory:     100_000,
		ClientMemory:     256,
		ClientDisk:       0,
		MeanInterArrival: 200 * time.Second,
		MeanLength:       time.Second,
		MeanSlack:        1000 * time.Second,
		MeanObjects:      4,
		UpdateFraction:   0.01,
		Pattern:          config.PatternLocalizedRW,
		Deadlines:        config.DeadlineLengthPlusSlack,
		Scheduling:       config.SchedEDF,
		HotRegionSize:    200,
		LocalFraction:    0.9,
		ZipfTheta:        0.9,
		DiskRead:         20 * time.Microsecond,
		DiskWrite:        20 * time.Microsecond,
		NetLatency:       200 * time.Microsecond,
		NetBandwidthBps:  1e9,
		Topology:         config.TopologySwitched,
		ServerOpCPU:      5 * time.Microsecond,
		ServerThreads:    100,
		ClientExecutors:  2,
		MaxSubtasks:      2,
		Duration:         400 * time.Second,
		Drain:            60 * time.Second,
		Seed:             1,
	}
}

// benchScale runs one client-server population of the given size and
// reports kernel-level throughput and footprint: executed events per
// wall second, the heap high-water mark, and bytes of heap per
// simulated client. The heap is sampled every few million events, which
// catches the steady-state plateau without perturbing the run.
func benchScale(b *testing.B, clients int) {
	for i := 0; i < b.N; i++ {
		c, err := rtdbs.NewClientServer(scaleConfig(clients))
		if err != nil {
			b.Fatal(err)
		}
		var ms, ms0 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		var heapHW uint64
		var sinceSample int
		c.Env().SetStepHook(func() {
			if sinceSample++; sinceSample >= 4_000_000 {
				sinceSample = 0
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > heapHW {
					heapHW = ms.HeapAlloc
				}
			}
		})
		start := time.Now()
		res, err := c.Run()
		if err != nil {
			b.Fatal(err)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > heapHW {
			heapHW = ms.HeapAlloc
		}
		if res.M.Submitted == 0 {
			b.Fatal("empty run")
		}
		steps := c.Env().Steps()
		b.ReportMetric(float64(steps)/elapsed.Seconds(), "steps/sec")
		b.ReportMetric(float64(heapHW)/(1<<20), "heap-MB")
		b.ReportMetric(float64(heapHW)/float64(clients), "B/client")
		b.ReportMetric(float64(ms.PauseTotalNs-ms0.PauseTotalNs)/1e6, "gc-pause-ms")
		b.ReportMetric(float64(ms.NumGC-ms0.NumGC), "gc-cycles")
		b.ReportMetric(float64(res.M.Submitted), "txns")
	}
}

// BenchmarkScaleSmoke is the CI-sized population run (10k clients), the
// benchmark counterpart of scenarios/scale_smoke.rts.
func BenchmarkScaleSmoke(b *testing.B) {
	benchScale(b, 10_000)
}

// BenchmarkScale100x runs one million simulated clients — 10,000× the
// paper's maximum population — on the state-machine kernel. Feasible at
// all because machines park as a few words of state instead of a
// goroutine stack; see EXPERIMENTS.md "Running at scale".
func BenchmarkScale100x(b *testing.B) {
	benchScale(b, 1_000_000)
}
