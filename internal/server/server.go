// Package server implements the database server of the client-server
// configurations: per-client connection handlers (the paper's
// thread-per-client design), the global SL/EL lock table with callback
// locking and EL→SL downgrades, deadline-ordered object request
// scheduling, the piggybacked load table, and — in load-sharing mode —
// forward-list collection and dispatch for grouped object migration.
package server

import (
	"encoding/binary"
	"fmt"
	"slices"
	"time"

	"siteselect/internal/batch"
	"siteselect/internal/config"
	"siteselect/internal/forward"
	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
	"siteselect/internal/pagefile"
	"siteselect/internal/proto"
	"siteselect/internal/shardmap"
	"siteselect/internal/sim"
	"siteselect/internal/trace"
	"siteselect/internal/txn"
)

// MigrationOwner is the pseudo-owner holding an object's global lock
// while the object hops along a forward list: the server cannot know
// which list client currently has it, only that it is checked out.
const MigrationOwner lockmgr.OwnerID = -1

// Server is one database server shard. In the paper's topology there is
// exactly one (shard 0, site netsim.ServerSite); multi-server
// configurations partition the object space over M shards, each with
// its own lock table, pagefile, buffer pool, and batch scheduler, at
// sites 0, -1, … -(M-1).
type Server struct {
	env *sim.Env
	cfg config.Config
	net *netsim.Network

	// shard is this server's index in the topology; site is its network
	// address (shardmap.ShardSite(shard)); topo is the cluster-shared
	// routing map. multi is true only in multi-server topologies — every
	// sharding code path is gated on it so the single-server simulation
	// is byte-identical to a build without the sharding layer.
	shard    int
	site     netsim.SiteID
	topo     *shardmap.Map
	multi    bool
	adaptive bool

	// Shard-to-shard transport: peerIn is this shard's inbox for
	// messages from other shards, peerOut addresses each shard's inbox.
	// Both are nil in single-server topologies.
	peerIn  *sim.Mailbox[netsim.Message]
	peerOut []*sim.Mailbox[netsim.Message]

	// Replica state. At a home shard: heat tracks per-object shared
	// access counts over the topology's HeatWindow and replicaOut marks
	// objects whose replica is currently provisioned elsewhere. At a
	// replica shard: replicated marks the objects served here, repHeat
	// counts their window accesses (for cold shedding), shedding marks
	// replicas draining back to their home, and repGen invalidates
	// stale heat-check timers across shed/reinstall cycles.
	heat       map[lockmgr.ObjectID]*heatWindow
	replicaOut map[lockmgr.ObjectID]bool
	replicated map[lockmgr.ObjectID]bool
	repHeat    map[lockmgr.ObjectID]int
	shedding   map[lockmgr.ObjectID]bool
	repGen     map[lockmgr.ObjectID]int

	locks    *lockmgr.Table
	disk     *pagefile.Disk
	pool     *pagefile.BufferPool
	versions []int64
	cpu      *sim.Resource

	conns map[netsim.SiteID]*conn
	loads map[netsim.SiteID]proto.LoadReport

	// recalls tracks outstanding callbacks per object so holders are
	// not recalled twice for the same demand. Holder sets are tiny
	// (the readers of one object), so each is a scanned slice recycled
	// through recallSetFree rather than a map.
	recalls       map[lockmgr.ObjectID][]netsim.SiteID
	recallSetFree [][]netsim.SiteID
	// epochs records, per (object, client), the release epoch last
	// reported by that client; grants are stamped with it so releases
	// crossing grants on the wire are detected (see proto.ObjGrant).
	epochs map[epochKey]int64

	collector *forward.Collector
	sealed    map[lockmgr.ObjectID]*forward.List
	inflight  map[lockmgr.ObjectID]*forward.List

	// batcher routes every firm request through the batch-window layer.
	// With BatchWindow == 0 it degenerates to a synchronous inline call
	// of serveFirm (no scheduling, no buffering — byte-identical to the
	// unbatched server); with a positive window requests park until the
	// window closes and the whole batch resolves in one pass.
	batcher *batch.Scheduler
	// batching is true while a window flush is resolving its batch:
	// ship and recall defer into the intent buffers below instead of
	// sending immediately, and endFlush coalesces them per destination.
	batching      bool
	shipIntents   []shipIntent
	recallIntents []recallIntent

	// shipFree recycles completed ship machines.
	shipFree []*shipMachine
	// batchShipFree recycles completed batched-ship machines.
	batchShipFree []*batchShipMachine

	// reqFree recycles lock requests: a request resolved in place
	// (granted or refused) returns to the pool immediately; a queued one
	// is table-owned until it surfaces in an admit batch and is shipped.
	reqFree []*lockmgr.Request
	// siteScratch, countScratch and flushMark are reusable buffers for
	// the per-message aggregations (loadsFor, dataCounts, the flush
	// grouping passes) so steady-state dispatch allocates only the
	// slices that escape into message payloads.
	siteScratch  []netsim.SiteID
	countScratch []proto.SiteCount
	flushMark    []bool

	// tr is the per-run transaction tracer (nil when tracing is off).
	tr *trace.Tracer

	// faulty enables the duplicate-request guard: with fault injection on,
	// clients retransmit requests, and a request already reflected in the
	// lock table or a forward list must be served idempotently rather
	// than registered twice.
	faulty bool

	// Counters surfaced in experiment reports.
	RecallsSent        int64
	GrantsShipped      int64
	MigrationsStarted  int64
	ReadRunsStarted    int64
	ForwardEntriesSent int64
	DeniesExpired      int64
	DeniesDeadlock     int64
	ReplicasInstalled  int64
	ReplicasShed       int64
	RequestsForwarded  int64
}

type epochKey struct {
	obj    lockmgr.ObjectID
	client netsim.SiteID
}

type conn struct {
	id    netsim.SiteID
	inbox *sim.Mailbox[netsim.Message] // server-side, from this client
	out   *sim.Mailbox[netsim.Message] // the client's inbox
}

// New returns the single server of the paper's topology. Call Attach
// for every client, then Start.
func New(env *sim.Env, cfg config.Config, net *netsim.Network) *Server {
	return NewShard(env, cfg, net, 0, shardmap.New(cfg.Sharding))
}

// NewShard returns server shard `shard` of a (possibly multi-server)
// topology sharing the runtime map topo. Call Attach for every client
// — and, in multi-server topologies, SetPeerInbox/AttachPeer for the
// shard-to-shard transport — then Start.
func NewShard(env *sim.Env, cfg config.Config, net *netsim.Network, shard int, topo *shardmap.Map) *Server {
	disk := pagefile.NewDisk(env, cfg.DBSize, pagefile.DiskConfig{
		ReadTime:  cfg.DiskRead,
		WriteTime: cfg.DiskWrite,
	})
	s := &Server{
		env:      env,
		cfg:      cfg,
		net:      net,
		shard:    shard,
		site:     shardmap.ShardSite(shard),
		topo:     topo,
		multi:    topo.Multi(),
		adaptive: cfg.Sharding.Adaptive(),
		locks:    lockmgr.NewTable(),
		disk:     disk,
		pool:     pagefile.NewBufferPool(env, disk, cfg.ServerMemory),
		versions: make([]int64, cfg.DBSize),
		cpu:      sim.NewResource(env, 1),
		conns:    make(map[netsim.SiteID]*conn),
		loads:    make(map[netsim.SiteID]proto.LoadReport),
		recalls:  make(map[lockmgr.ObjectID][]netsim.SiteID),
		epochs:   make(map[epochKey]int64),
		sealed:   make(map[lockmgr.ObjectID]*forward.List),
		inflight: make(map[lockmgr.ObjectID]*forward.List),
	}
	if s.multi {
		s.heat = make(map[lockmgr.ObjectID]*heatWindow)
		s.replicaOut = make(map[lockmgr.ObjectID]bool)
		s.replicated = make(map[lockmgr.ObjectID]bool)
		s.repHeat = make(map[lockmgr.ObjectID]int)
		s.shedding = make(map[lockmgr.ObjectID]bool)
		s.repGen = make(map[lockmgr.ObjectID]int)
	}
	s.locks.Reserve(cfg.DBSize)
	s.faulty = cfg.Faults.Enabled()
	if cfg.UseForwardLists {
		s.collector = forward.NewCollector(env, cfg.CollectionWindow, s.onSeal)
	}
	s.batcher = batch.NewScheduler(env, cfg.BatchWindow, s.serveFirm)
	if cfg.BatchWindow > 0 {
		s.batcher.BeginFlush = s.beginFlush
		s.batcher.EndFlush = s.endFlush
	}
	return s
}

// SetTracer installs the per-run transaction tracer and wires the lock
// table and forward-list hooks that feed it. Call before Start.
func (s *Server) SetTracer(tr *trace.Tracer) {
	s.tr = tr
	if tr == nil {
		return
	}
	s.locks.SetHook(lockmgr.Hook{
		Requested: func(req *lockmgr.Request, out lockmgr.Outcome, blockers []lockmgr.OwnerID) {
			id, ok := req.Tag.(txn.ID)
			if !ok || req.Owner == MigrationOwner {
				return
			}
			now := s.env.Now()
			tr.Point(id, s.site, trace.EvLockRequested, req.Obj, int64(req.Mode), int64(out), now)
			switch out {
			case lockmgr.Queued:
				tr.Point(id, s.site, trace.EvLockBlocked, req.Obj, int64(len(blockers)), 0, now)
			case lockmgr.Deadlock:
				tr.Point(id, s.site, trace.EvLockDenied, req.Obj, int64(proto.DenyDeadlock), 0, now)
			}
		},
		Granted: func(req *lockmgr.Request) {
			id, ok := req.Tag.(txn.ID)
			if !ok || req.Owner == MigrationOwner {
				return
			}
			tr.Point(id, s.site, trace.EvLockGranted, req.Obj, 0, 0, s.env.Now())
		},
	})
	if s.collector != nil {
		s.collector.TraceSeal = func(l *forward.List) {
			now := s.env.Now()
			for _, e := range l.Entries {
				tr.Point(e.Txn, s.site, trace.EvListSealed, l.Obj, int64(l.Len()), 0, now)
			}
		}
	}
}

// Locks exposes the global lock table for audits.
func (s *Server) Locks() *lockmgr.Table { return s.locks }

// Pool exposes the server buffer pool for metrics.
func (s *Server) Pool() *pagefile.BufferPool { return s.pool }

// Disk exposes the server disk for metrics.
func (s *Server) Disk() *pagefile.Disk { return s.disk }

// Version returns the server's current version of obj.
func (s *Server) Version(obj lockmgr.ObjectID) int64 { return s.versions[obj] }

// Loads returns the server's current load table (live map; callers must
// not mutate).
func (s *Server) Loads() map[netsim.SiteID]proto.LoadReport { return s.loads }

// CPUUtilization returns the server CPU's busy fraction.
func (s *Server) CPUUtilization() float64 { return s.cpu.Utilization() }

// Migrating reports whether obj is currently checked out to a forward
// list (its authoritative version is travelling client-to-client).
func (s *Server) Migrating(obj lockmgr.ObjectID) bool { return s.inflight[obj] != nil }

// Attach registers a client connection: inbox receives the client's
// messages at the server; out is the client's own inbox.
func (s *Server) Attach(id netsim.SiteID, inbox, out *sim.Mailbox[netsim.Message]) {
	s.conns[id] = &conn{id: id, inbox: inbox, out: out}
}

// SetPeerInbox installs this shard's inbox for shard-to-shard messages
// (multi-server topologies only); Start spawns a handler for it.
func (s *Server) SetPeerInbox(in *sim.Mailbox[netsim.Message]) { s.peerIn = in }

// AttachPeer wires the outbound route to shard k's peer inbox.
func (s *Server) AttachPeer(k int, in *sim.Mailbox[netsim.Message]) {
	if s.peerOut == nil {
		s.peerOut = make([]*sim.Mailbox[netsim.Message], s.topo.Servers())
	}
	s.peerOut[k] = in
}

// Start spawns one event-driven handler per attached connection, plus
// one for the shard-to-shard inbox when peered.
func (s *Server) Start() {
	for id := netsim.SiteID(1); int(id) <= len(s.conns); id++ {
		c, ok := s.conns[id]
		if !ok {
			continue
		}
		m := &connMachine{s: s, c: c}
		s.env.Spawn(&m.task, m)
	}
	if s.peerIn != nil {
		m := &connMachine{s: s, c: &conn{id: s.site, inbox: s.peerIn}}
		s.env.Spawn(&m.task, m)
	}
}

// connMachine is a connection handler as a state machine: one per
// attached client, looping receive → CPU charge → dispatch. The only
// payload that parks mid-handle is an ObjReturn carrying data (the page
// install goes through the pool), so the machine keeps the pending
// return across resumes.
type connMachine struct {
	task sim.Task
	s    *Server
	c    *conn
	pc   uint8
	msg  netsim.Message
	ret  proto.ObjReturn
	put  pagefile.PutOp
	page []byte // reused install buffer
}

const (
	csRecv uint8 = iota
	csCPUSleep
	csHandle
	csPut
)

func (m *connMachine) Resume() {
	s := m.s
	for {
		switch m.pc {
		case csRecv:
			msg, ok := m.c.inbox.Recv(&m.task)
			if !ok {
				return
			}
			m.msg = msg
			if s.cfg.ServerOpCPU <= 0 {
				m.pc = csHandle
				continue
			}
			m.pc = csCPUSleep
			if !m.task.Acquire(s.cpu, 0) {
				return
			}
		case csCPUSleep:
			m.pc = csHandle
			m.task.Sleep(s.cfg.ServerOpCPU)
			return
		case csHandle:
			if s.cfg.ServerOpCPU > 0 {
				s.cpu.Release()
			}
			m.pc = csRecv
			switch pl := m.msg.Payload.(type) {
			case proto.ObjRequest:
				s.noteLoad(pl.Load)
				s.handleFirm(pl.Client, pl.Txn, pl.Obj, pl.Mode, pl.Deadline)
			case proto.ProbeRequest:
				s.noteLoad(pl.Load)
				s.handleProbe(pl)
			case proto.CommitRequest:
				s.noteLoad(pl.Load)
				s.handleCommitRequest(pl)
			case proto.ObjReturn:
				s.noteLoad(pl.Load)
				if s.returnNeedsWrite(pl) {
					// The page body encodes the version so end-to-end
					// consistency can be audited.
					if m.page == nil {
						m.page = make([]byte, pagefile.PageSize)
					}
					binary.LittleEndian.PutUint64(m.page, uint64(s.versions[pl.Obj]))
					m.ret = pl
					m.put.Init(s.pool, pagefile.PageID(pl.Obj), m.page)
					m.pc = csPut
					continue
				}
				s.finishReturn(pl)
			case proto.LoadQuery:
				s.noteLoad(pl.Load)
				s.handleLoadQuery(pl)
			case proto.ReplicaInstall:
				// Shard-to-shard only: the home shard provisions a read
				// replica here.
				s.installReplica(pl.Obj, pl.Version)
			case proto.Recall:
				// Shard-to-shard only: the home shard recalls a replica
				// served here (a writer arrived) — a forced drain.
				s.shedReplica(pl.Obj, true)
			case proto.BatchRecall:
				for _, r := range pl.Recalls {
					s.shedReplica(r.Obj, true)
				}
			default:
				panic(fmt.Sprintf("server: unexpected payload %T", m.msg.Payload))
			}
			m.msg = netsim.Message{}
		case csPut:
			done, err := m.put.Step(&m.task)
			if !done {
				return
			}
			if err != nil {
				panic(fmt.Sprintf("server: writing object %d: %v", m.ret.Obj, err))
			}
			m.pc = csRecv
			s.finishReturn(m.ret)
			m.ret = proto.ObjReturn{}
			m.msg = netsim.Message{}
		}
	}
}

// newReq returns a zeroed lock request from the pool. Requests resolved
// in place (granted, refused, or panicking on a must-grant path) go
// straight back via freeReq; queued requests stay table-owned and are
// recycled by shipGrants once they surface as grants.
func (s *Server) newReq() *lockmgr.Request {
	if n := len(s.reqFree); n > 0 {
		r := s.reqFree[n-1]
		s.reqFree = s.reqFree[:n-1]
		return r
	}
	return &lockmgr.Request{}
}

func (s *Server) freeReq(r *lockmgr.Request) {
	*r = lockmgr.Request{}
	s.reqFree = append(s.reqFree, r)
}

func (s *Server) noteLoad(l proto.LoadReport) {
	if l.Valid {
		s.loads[l.Client] = l
	}
}

func (s *Server) send(to netsim.SiteID, kind netsim.Kind, size int, payload any) {
	var dest *sim.Mailbox[netsim.Message]
	if shardmap.IsShardSite(to) {
		k := shardmap.ShardIndex(to)
		if s.peerOut == nil || k >= len(s.peerOut) || s.peerOut[k] == nil {
			panic(fmt.Sprintf("server: shard %d send to unattached shard %d", s.shard, k))
		}
		dest = s.peerOut[k]
	} else {
		c, ok := s.conns[to]
		if !ok {
			panic(fmt.Sprintf("server: send to unattached site %d", to))
		}
		dest = c.out
	}
	s.net.Send(netsim.Message{
		Kind:    kind,
		From:    s.site,
		To:      to,
		Size:    size,
		Payload: payload,
	}, dest)
}

// handleProbe implements the all-or-nothing tentative round of the
// Section 4 pseudocode: grant and ship everything, or ship nothing and
// report where the conflicting objects are.
func (s *Server) handleProbe(req proto.ProbeRequest) {
	now := s.env.Now()
	if req.Deadline < now {
		s.DeniesExpired++
		s.send(req.Client, netsim.KindLockReply, netsim.ControlBytes,
			proto.DenyReply{Txn: req.Txn, Reason: proto.DenyExpired})
		return
	}
	var conflicts []proto.ObjConflict
	for i, obj := range req.Objs {
		if s.multi && !s.servesObj(obj, req.Modes[i]) {
			// The object moved off this shard (its replica was recalled
			// or shed after the client routed here). A probe is
			// all-or-nothing and cannot span shards, so report a
			// degenerate "busy" conflict; the client's stay-local
			// fallback re-routes the firm requests freshly.
			conflicts = append(conflicts, proto.ObjConflict{Obj: obj, Holders: []netsim.SiteID{req.Client}})
			continue
		}
		if hs := s.conflictHolders(obj, req.Client, req.Modes[i]); len(hs) > 0 {
			conflicts = append(conflicts, proto.ObjConflict{Obj: obj, Holders: hs})
		}
	}
	if len(conflicts) == 0 {
		for i, obj := range req.Objs {
			lr := s.newReq()
			lr.Obj, lr.Owner = obj, lockmgr.OwnerID(req.Client)
			lr.Mode, lr.Deadline, lr.Tag = req.Modes[i], req.Deadline, req.Txn
			outcome, _ := s.locks.Lock(lr)
			if outcome != lockmgr.Granted {
				panic("server: conflict-free probe request not granted")
			}
			s.freeReq(lr)
			s.ship(obj, req.Client, req.Modes[i], req.Txn, nil)
			if s.multi {
				s.noteServe(obj, req.Modes[i], req.Client)
			}
		}
		return
	}
	s.send(req.Client, netsim.KindLockReply, netsim.ControlBytes, proto.ConflictReply{
		Txn:        req.Txn,
		Conflicts:  conflicts,
		Loads:      s.loadsFor(conflicts),
		DataCounts: s.dataCounts(req.Objs, conflicts),
	})
}

// dataCounts reports, for every candidate holder site, how many of the
// probed objects it caches in any mode — the Section 3.1 "significant
// percentage of the required data" signal for transaction shipping.
func (s *Server) dataCounts(objs []lockmgr.ObjectID, conflicts []proto.ObjConflict) []proto.SiteCount {
	// Accumulate in the reusable scratch (candidate sets are tiny, so
	// linear scans beat maps); only the final slice escapes into the
	// reply payload.
	counts := s.countScratch[:0]
	for _, c := range conflicts {
		for _, h := range c.Holders {
			seen := false
			for i := range counts {
				if counts[i].Site == h {
					seen = true
					break
				}
			}
			if !seen {
				counts = append(counts, proto.SiteCount{Site: h})
			}
		}
	}
	for _, obj := range objs {
		for i, n := 0, s.locks.HolderCount(obj); i < n; i++ {
			h, _ := s.locks.HolderAt(obj, i)
			if h == MigrationOwner {
				continue
			}
			site := siteFor(h)
			for j := range counts {
				if counts[j].Site == site {
					counts[j].Count++
					break
				}
			}
		}
	}
	s.countScratch = counts
	slices.SortFunc(counts, func(a, b proto.SiteCount) int {
		switch {
		case a.Site < b.Site:
			return -1
		case a.Site > b.Site:
			return 1
		}
		return 0
	})
	out := make([]proto.SiteCount, 0, len(counts))
	for _, c := range counts {
		if c.Count > 0 {
			out = append(out, c)
		}
	}
	return out
}

// handleCommitRequest is the "process locally, ship ASAP" follow-up: all
// the transaction's outstanding objects become firm requests in one
// message.
func (s *Server) handleCommitRequest(cr proto.CommitRequest) {
	for i, obj := range cr.Objs {
		s.handleFirm(cr.Client, cr.Txn, obj, cr.Modes[i], cr.Deadline)
	}
}

// handleFirm routes one firm object request through the batching layer:
// with BatchWindow == 0 the request is served inline before handleFirm
// returns (exactly the unbatched server); with a positive window it
// parks until the window closes and serveFirm runs on the whole batch.
func (s *Server) handleFirm(client netsim.SiteID, id txn.ID, obj lockmgr.ObjectID, mode lockmgr.Mode, deadline time.Duration) {
	if s.faulty && s.batcher.Window() > 0 && s.batcher.Pending(client, id, obj) {
		// A retransmit of a request already parked in the open window:
		// the original will be answered when the window closes, so the
		// copy must not enter the window a second time.
		return
	}
	s.batcher.Add(batch.Request{Client: client, Txn: id, Obj: obj, Mode: mode, Deadline: deadline})
}

// serveFirm serves one firm object request: grant and ship, queue with
// callbacks (basic client-server), or join the object's forward list
// (load sharing). It is the batch scheduler's sink — during a window
// flush the ships and recalls it triggers are deferred and coalesced
// per destination (see beginFlush/endFlush).
func (s *Server) serveFirm(r batch.Request) batch.Outcome {
	now := s.env.Now()
	if wait := now - r.Enqueued; wait > 0 {
		s.tr.AddBatchWait(r.Txn, r.Obj, wait, now)
	}
	if r.Deadline < now {
		// The paper's object request scheduling: the server unilaterally
		// refuses to ship to transactions that already missed.
		s.DeniesExpired++
		s.send(r.Client, netsim.KindLockReply, netsim.ControlBytes,
			proto.DenyReply{Txn: r.Txn, Obj: r.Obj, Reason: proto.DenyExpired})
		return batch.OutDeniedExpired
	}
	if s.multi {
		if out, rerouted := s.routeFirm(r); rerouted {
			return out
		}
	}
	if s.faulty && s.dupFirm(r.Client, r.Txn, r.Obj, r.Mode) {
		return batch.OutDupServed
	}
	if s.collector != nil && s.groupable(r.Obj, r.Client, r.Mode) {
		s.tr.Point(r.Txn, s.site, trace.EvListJoined, r.Obj, 0, 0, now)
		s.collector.Add(r.Obj, forward.Entry{Client: r.Client, Mode: r.Mode, Deadline: r.Deadline, Txn: r.Txn})
		s.recallForMigration(r.Obj)
		s.tryDispatch(r.Obj) // the object may already be free
		return batch.OutListed
	}
	lr := s.newReq()
	lr.Obj, lr.Owner = r.Obj, lockmgr.OwnerID(r.Client)
	lr.Mode, lr.Deadline, lr.Tag = r.Mode, r.Deadline, r.Txn
	outcome, _ := s.locks.Lock(lr)
	switch outcome {
	case lockmgr.Granted:
		s.freeReq(lr)
		s.ship(r.Obj, r.Client, r.Mode, r.Txn, nil)
		if s.multi {
			s.noteServe(r.Obj, r.Mode, r.Client)
		}
		return batch.OutGranted
	case lockmgr.Queued:
		s.recallForQueueHead(r.Obj)
		return batch.OutQueued
	default: // lockmgr.Deadlock
		s.freeReq(lr)
		s.DeniesDeadlock++
		s.send(r.Client, netsim.KindLockReply, netsim.ControlBytes,
			proto.DenyReply{Txn: r.Txn, Obj: r.Obj, Reason: proto.DenyDeadlock})
		return batch.OutDeniedDeadlock
	}
}

// dupFirm serves a retransmitted firm request idempotently from the
// server's existing state (fault injection only): a request whose lock
// is already held ships the object again (the original ship may have
// been lost); one already queued or on a forward list just nudges the
// recall machinery. Only a request with no trace in the server's state
// proceeds to normal registration.
func (s *Server) dupFirm(client netsim.SiteID, id txn.ID, obj lockmgr.ObjectID, mode lockmgr.Mode) bool {
	owner := lockmgr.OwnerID(client)
	if held := s.locks.HolderMode(obj, owner); held == mode || held == lockmgr.ModeExclusive {
		s.ship(obj, client, held, id, nil)
		return true
	}
	if s.locks.HasWaiter(obj, owner) {
		s.recallForQueueHead(obj)
		return true
	}
	for _, l := range s.lists(obj) {
		if l.Contains(client, id) {
			s.recallForMigration(obj)
			s.tryDispatch(obj)
			return true
		}
	}
	return false
}

// returnNeedsWrite applies the bookkeeping that precedes a return's page
// install — the release-epoch and version high-water marks — and reports
// whether the return carries data that must be written through the pool
// before finishReturn runs.
func (s *Server) returnNeedsWrite(ret proto.ObjReturn) bool {
	if k := (epochKey{obj: ret.Obj, client: ret.Client}); ret.Epoch > s.epochs[k] {
		s.epochs[k] = ret.Epoch
	}
	if !ret.HasData {
		return false
	}
	if ret.Version > s.versions[ret.Obj] {
		s.versions[ret.Obj] = ret.Version
	}
	return true
}

// finishReturn processes a recall answer, a voluntary dirty eviction, or
// the final hop of a migration, after any carried data has been
// installed.
func (s *Server) finishReturn(ret proto.ObjReturn) {
	obj := ret.Obj
	if ret.UpdateOnly {
		// Write-through push: data only, the client keeps its lock.
		return
	}
	if ret.RunComplete {
		// A parallel read run finished delivering; the object is no
		// longer in flight and waiting writers may now proceed.
		delete(s.inflight, obj)
		s.tryDispatch(obj)
		return
	}
	if set, ok := s.recalls[obj]; ok {
		for i, h := range set {
			if h == ret.Client {
				set[i] = set[len(set)-1]
				set = set[:len(set)-1]
				break
			}
		}
		if len(set) == 0 {
			delete(s.recalls, obj)
			s.recallSetFree = append(s.recallSetFree, set)
		} else {
			s.recalls[obj] = set
		}
	}
	if ret.Migration {
		delete(s.inflight, obj)
		grants := s.locks.Release(obj, MigrationOwner)
		// Register the shared copies retained along the chain so the
		// lock table matches the client caches.
		for _, site := range ret.RetainedSL {
			owner := lockmgr.OwnerID(site)
			free := len(s.locks.ConflictingHolders(obj, owner, lockmgr.ModeShared)) == 0 &&
				s.locks.QueueLen(obj) == 0
			if !free {
				// The release just granted someone else exclusivity;
				// invalidate the stray copy instead of registering it.
				s.recall(obj, site, false, 0)
				continue
			}
			lr := s.newReq()
			lr.Obj, lr.Owner = obj, owner
			lr.Mode, lr.Deadline = lockmgr.ModeShared, s.env.Now()
			if outcome, _ := s.locks.Lock(lr); outcome != lockmgr.Granted {
				panic("server: retained SL registration failed on free object")
			}
			s.freeReq(lr)
		}
		s.shipGrants(grants)
		s.tryDispatch(obj)
		return
	}
	var grants []*lockmgr.Request
	if ret.Downgraded {
		grants = s.locks.Downgrade(obj, ownerFor(ret.Client))
	} else {
		grants = s.locks.Release(obj, ownerFor(ret.Client))
	}
	if s.multi && shardmap.IsShardSite(ret.Client) {
		// A replica shard finished draining: the object may be
		// re-provisioned when it runs hot again.
		delete(s.replicaOut, obj)
	}
	s.shipGrants(grants)
	// Still blocked? Chase the remaining holders.
	s.recallForQueueHead(obj)
	s.tryDispatch(obj)
	if s.multi && len(s.shedding) > 0 {
		// A client release at a replica shard may complete a drain.
		s.finishShedIfDrained(obj)
	}
}

func (s *Server) handleLoadQuery(q proto.LoadQuery) {
	locations := make([]proto.ObjConflict, 0, len(q.Objs))
	for _, obj := range q.Objs {
		hs := s.holdersFor(obj, q.Client)
		if len(hs) > 0 {
			locations = append(locations, proto.ObjConflict{Obj: obj, Holders: hs})
		}
	}
	s.send(q.Client, netsim.KindLoadReply, netsim.ControlBytes, proto.LoadReply{
		Txn:       q.Txn,
		Locations: locations,
		Loads:     s.loadsFor(locations),
	})
}
