package server

import (
	"testing"
	"time"

	"siteselect/internal/config"
	"siteselect/internal/lockmgr"
	"siteselect/internal/txn"
)

// TestGrantDispatchBookkeepingZeroAlloc pins the server's converted
// lock-round bookkeeping at zero allocations in steady state: pooled
// requests, dense entry lookup, pooled wait-edge maps, and the
// generation-stamped deadlock scratch. Message payloads and contended
// grant lists are excluded — those escape to the network by design.
func TestGrantDispatchBookkeepingZeroAlloc(t *testing.T) {
	r := newRig(t, 2, nil)
	defer r.env.Close()
	s := r.srv

	round := func() {
		// Uncontended grant and release — the dominant hot path.
		q := s.newReq()
		q.Obj, q.Owner, q.Mode = 41, 1, lockmgr.ModeExclusive
		q.Deadline, q.Tag = time.Minute, txn.ID(7)
		if out, _ := s.locks.Lock(q); out != lockmgr.Granted {
			panic("free object not granted")
		}
		s.freeReq(q) // granted requests are never retained by the table

		// Contended round: a waiter queues (wait-for edges, deadlock
		// scan) and cancels before the holder releases.
		h := s.newReq()
		h.Obj, h.Owner, h.Mode = 42, 1, lockmgr.ModeExclusive
		h.Deadline, h.Tag = time.Minute, txn.ID(8)
		s.locks.Lock(h)
		s.freeReq(h)
		w := s.newReq()
		w.Obj, w.Owner, w.Mode = 42, 2, lockmgr.ModeExclusive
		w.Deadline, w.Tag = time.Minute, txn.ID(9)
		if out, _ := s.locks.Lock(w); out != lockmgr.Queued {
			panic("conflicting request not queued")
		}
		s.locks.Cancel(w)
		s.freeReq(w)
		s.locks.Release(42, 1)
		s.locks.Release(41, 1)
	}
	round() // warm the pools
	if n := testing.AllocsPerRun(500, round); n != 0 {
		t.Errorf("lock-round bookkeeping allocates %v per run, want 0", n)
	}
}

// scratchBase returns the backing-array address of a scratch slice so
// tests can assert that two flushes shared one buffer.
func scratchBase[T any](s []T) *T {
	if cap(s) == 0 {
		return nil
	}
	return &s[:cap(s)][0]
}

// TestFlushScratchReuse: consecutive batch-window flushes must reuse
// the server's ship/recall intent buffers and the grouping mark — the
// flush bracket allocates its scratch once and recycles it instead of
// rebuilding per-flush maps.
func TestFlushScratchReuse(t *testing.T) {
	r := newRig(t, 2, func(c *config.Config) {
		c.UseForwardLists = false
		c.BatchWindow = 5 * time.Millisecond
	})
	defer r.env.Close()

	// Round one: two grants in one window prime the ship scratch.
	r.request(1, 1, lockmgr.ModeExclusive, time.Minute)
	r.request(1, 2, lockmgr.ModeExclusive, time.Minute)
	r.drain(1, time.Second)
	ships := scratchBase(r.srv.shipIntents)
	mark := scratchBase(r.srv.flushMark)
	if ships == nil || mark == nil {
		t.Fatal("first flush left no ship scratch behind")
	}

	// Round two: same fan-out, different destination; no new scratch
	// may be allocated.
	r.request(2, 3, lockmgr.ModeExclusive, time.Minute)
	r.request(2, 4, lockmgr.ModeExclusive, time.Minute)
	r.drain(2, 2*time.Second)
	if got := scratchBase(r.srv.shipIntents); got != ships {
		t.Error("second flush rebuilt the ship intent buffer")
	}
	if got := scratchBase(r.srv.flushMark); got != mark {
		t.Error("second flush rebuilt the grouping mark")
	}

	// Rounds three and four each demand an object the other client
	// holds, so each flush sends one recall.
	r.request(2, 1, lockmgr.ModeExclusive, time.Minute)
	r.drain(1, 3*time.Second)
	recalls := scratchBase(r.srv.recallIntents)
	if recalls == nil {
		t.Fatal("recall flush left no scratch behind")
	}
	r.request(2, 2, lockmgr.ModeExclusive, time.Minute)
	r.drain(1, 4*time.Second)
	if got := scratchBase(r.srv.recallIntents); got != recalls {
		t.Error("second recall flush rebuilt the recall intent buffer")
	}
}
