package server

import (
	"time"

	"siteselect/internal/batch"
	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
	"siteselect/internal/proto"
	"siteselect/internal/shardmap"
)

// Adaptive replication (multi-server topologies only).
//
// A home shard counts shared-mode grants per object over the topology's
// HeatWindow; an object that crosses ReplicateHot gains a read replica
// on another shard. The replica registers in the home shard's lock
// table as a shared-mode pseudo-owner, so coherence needs no new
// machinery: a writer's firm request finds the pseudo-owner among the
// conflicting holders and the ordinary callback path recalls it — the
// replica shard withdraws its topology registration (new reads route
// home again), recalls its own client holders through the ordinary
// client recall path, and returns the object to the home shard once
// drained, which releases the pseudo-owner and lets the writer proceed.
// The replica's copy can never go stale while registered, because no
// exclusive lock can be granted at the home shard before that drain
// completes.
//
// Cold replicas shed themselves: each adaptive install schedules a
// HeatWindow heartbeat, and a window with fewer than ShedBelow reads
// starts a lame-duck drain — the topology registration is withdrawn so
// new reads route home, but existing client holders are NOT recalled
// (nobody is waiting on a cold shed, and a recall stampede would cost
// one recall/return round-trip per holder). The object goes home once
// the holders drain naturally; a writer arriving mid-drain upgrades it
// to a forced drain. Static placements (Topology.Replicas) get no
// heartbeat — only a writer removes them.

// replicaOwnerBase anchors the pseudo-owner IDs under which replica
// shards register in a home shard's lock table. Shard k registers as
// replicaOwnerBase-k — far from MigrationOwner (-1) and from client
// owners (positive), so the existing pseudo-owner filters cannot
// confuse them.
const replicaOwnerBase lockmgr.OwnerID = -1000

// replicaOwner returns the lock-table pseudo-owner of shard k.
func replicaOwner(k int) lockmgr.OwnerID { return replicaOwnerBase - lockmgr.OwnerID(k) }

// isReplicaOwner reports whether o is a replica pseudo-owner.
func isReplicaOwner(o lockmgr.OwnerID) bool { return o <= replicaOwnerBase }

// ownerFor maps a network site to its lock-table owner: clients own
// under their site ID, replica shards under their pseudo-owner.
func ownerFor(site netsim.SiteID) lockmgr.OwnerID {
	if shardmap.IsShardSite(site) {
		return replicaOwner(shardmap.ShardIndex(site))
	}
	return lockmgr.OwnerID(site)
}

// siteFor is ownerFor's inverse: the network site a lock-table owner
// answers at.
func siteFor(o lockmgr.OwnerID) netsim.SiteID {
	if isReplicaOwner(o) {
		return shardmap.ShardSite(int(replicaOwnerBase - o))
	}
	return netsim.SiteID(o)
}

// heatWindow is one object's access count over the current window.
type heatWindow struct {
	start time.Duration
	n     int
}

// servesObj reports whether this shard is authoritative for a request:
// the home shard always is; a replica shard only for shared-mode
// requests of objects it currently replicates.
func (s *Server) servesObj(obj lockmgr.ObjectID, mode lockmgr.Mode) bool {
	if s.topo.HomeShard(obj) == s.shard {
		return true
	}
	return mode == lockmgr.ModeShared && s.replicated[obj]
}

// routeFirm re-routes a firm request that reached a shard which cannot
// serve it authoritatively (the object's replica was recalled or shed
// after the client routed here) to the object's home shard.
func (s *Server) routeFirm(r batch.Request) (batch.Outcome, bool) {
	if s.servesObj(r.Obj, r.Mode) {
		return 0, false
	}
	s.RequestsForwarded++
	s.send(shardmap.ShardSite(s.topo.HomeShard(r.Obj)), netsim.KindObjectRequest, netsim.ControlBytes,
		proto.ObjRequest{Client: r.Client, Txn: r.Txn, Obj: r.Obj, Mode: r.Mode, Deadline: r.Deadline})
	return batch.OutForwarded, true
}

// noteServe observes one granted request (multi-server topologies
// only). At the home shard it feeds the heat window that triggers
// adaptive replication; at a replica shard it feeds the cold-shed
// counter, and a grant that raced a forced drain is recalled
// immediately (a writer is waiting; a grant racing a lame-duck drain
// just joins the holders and drains naturally).
func (s *Server) noteServe(obj lockmgr.ObjectID, mode lockmgr.Mode, client netsim.SiteID) {
	if s.topo.HomeShard(obj) != s.shard {
		s.repHeat[obj]++
		if s.shedding[obj] {
			s.recall(obj, client, false, 0)
		}
		return
	}
	if !s.adaptive || mode != lockmgr.ModeShared {
		return
	}
	now := s.env.Now()
	w := s.heat[obj]
	if w == nil {
		w = &heatWindow{start: now}
		s.heat[obj] = w
	} else if now-w.start > s.cfg.Sharding.HeatWindow {
		w.start, w.n = now, 0
	}
	w.n++
	if w.n >= s.cfg.Sharding.ReplicateHot {
		s.maybeReplicate(obj)
	}
}

// maybeReplicate provisions a read replica of a hot object if the
// object is quiescent: no replica already out, no forward list forming
// or in flight, no queued writers, and no holder conflicting with a
// shared registration. A hot object that is not quiescent stays hot and
// is retried on its next access.
func (s *Server) maybeReplicate(obj lockmgr.ObjectID) {
	if s.replicaOut[obj] {
		return
	}
	if _, ok := s.topo.Replica(obj); ok {
		return
	}
	if s.inflight[obj] != nil || s.sealed[obj] != nil {
		return
	}
	if s.collector != nil && s.collector.Pending(obj) != nil {
		return
	}
	if s.locks.QueueLen(obj) > 0 {
		return
	}
	target := s.replicaTarget(obj)
	owner := replicaOwner(target)
	if len(s.locks.ConflictingHolders(obj, owner, lockmgr.ModeShared)) > 0 {
		return
	}
	if outcome, _ := s.locks.Lock(&lockmgr.Request{
		Obj: obj, Owner: owner, Mode: lockmgr.ModeShared, Deadline: s.env.Now(),
	}); outcome != lockmgr.Granted {
		panic("server: replica registration failed on quiescent object")
	}
	delete(s.heat, obj)
	s.replicaOut[obj] = true
	s.ReplicasInstalled++
	s.send(shardmap.ShardSite(target), netsim.KindObjectShip, netsim.ObjectBytes,
		proto.ReplicaInstall{Obj: obj, Version: s.versions[obj]})
}

// replicaTarget picks the shard hosting obj's replica: the static
// placement map when it names one, otherwise the home shard's
// neighbour.
func (s *Server) replicaTarget(obj lockmgr.ObjectID) int {
	if k, ok := s.cfg.Sharding.Replicas[int(obj)]; ok && k != s.shard {
		return k
	}
	return (s.shard + 1) % s.topo.Servers()
}

// installReplica activates a replica shipped by the home shard: this
// shard now serves shared-mode requests for obj at version, and a
// heartbeat watches for the replica running cold.
func (s *Server) installReplica(obj lockmgr.ObjectID, version int64) {
	s.replicated[obj] = true
	delete(s.shedding, obj)
	s.versions[obj] = version
	s.repHeat[obj] = 0
	s.topo.SetReplica(obj, s.site)
	s.repGen[obj]++
	s.scheduleHeatCheck(obj, s.repGen[obj])
}

// SeedReplica installs a static replica of obj on shard r before the
// run starts (Topology.Replicas). It reports false when the placement
// is inapplicable (wrong home, replica already out, or the object is
// not free for a shared registration). Static replicas get no cold
// heartbeat — only a writer's recall removes them.
func (s *Server) SeedReplica(obj lockmgr.ObjectID, r *Server) bool {
	if s.topo.HomeShard(obj) != s.shard || r.shard == s.shard || s.replicaOut[obj] {
		return false
	}
	if _, ok := s.topo.Replica(obj); ok {
		return false
	}
	owner := replicaOwner(r.shard)
	if len(s.locks.ConflictingHolders(obj, owner, lockmgr.ModeShared)) > 0 {
		return false
	}
	if outcome, _ := s.locks.Lock(&lockmgr.Request{
		Obj: obj, Owner: owner, Mode: lockmgr.ModeShared, Deadline: s.env.Now(),
	}); outcome != lockmgr.Granted {
		return false
	}
	s.replicaOut[obj] = true
	s.ReplicasInstalled++
	r.replicated[obj] = true
	r.versions[obj] = s.versions[obj]
	s.topo.SetReplica(obj, r.site)
	return true
}

// scheduleHeatCheck arms one HeatWindow heartbeat for a replicated
// object; gen invalidates the timer if the replica is shed and
// reinstalled before it fires.
func (s *Server) scheduleHeatCheck(obj lockmgr.ObjectID, gen int) {
	s.env.Schedule(s.cfg.Sharding.HeatWindow, func() { s.checkReplicaHeat(obj, gen) })
}

// checkReplicaHeat sheds a replica whose last window ran cold, or
// re-arms the heartbeat.
func (s *Server) checkReplicaHeat(obj lockmgr.ObjectID, gen int) {
	_, draining := s.shedding[obj]
	if gen != s.repGen[obj] || !s.replicated[obj] || draining {
		return
	}
	if s.repHeat[obj] < s.cfg.Sharding.EffectiveShedBelow() {
		s.shedReplica(obj, false)
		return
	}
	s.repHeat[obj] = 0
	s.scheduleHeatCheck(obj, gen)
}

// shedReplica starts draining a replica back to its home shard: the
// topology registration is withdrawn first (new reads route home), and
// the object returns home once the last client holder releases. A
// forced drain (a writer is waiting at the home shard) recalls every
// holder; a cold, lame-duck shed lets them drain naturally — in the
// shedding map, presence means "draining", the value means "forced".
func (s *Server) shedReplica(obj lockmgr.ObjectID, force bool) {
	if !s.replicated[obj] {
		return
	}
	if forced, draining := s.shedding[obj]; draining {
		if force && !forced {
			// A writer's recall caught a lame-duck drain in progress:
			// upgrade it so the writer is not stuck behind slow evictions.
			s.shedding[obj] = true
			s.recallReplicaHolders(obj)
		}
		return
	}
	s.shedding[obj] = force
	s.ReplicasShed++
	if site, ok := s.topo.Replica(obj); ok && site == s.site {
		s.topo.ClearReplica(obj)
	}
	if force {
		s.recallReplicaHolders(obj)
	}
	s.finishShedIfDrained(obj)
}

// recallReplicaHolders recalls every client holding the replica's
// object — the forced-drain path only.
func (s *Server) recallReplicaHolders(obj lockmgr.ObjectID) {
	for i, n := 0, s.locks.HolderCount(obj); i < n; i++ {
		if h, _ := s.locks.HolderAt(obj, i); h > 0 {
			s.recall(obj, netsim.SiteID(h), false, 0)
		}
	}
}

// finishShedIfDrained completes a drain once no client holds the
// replica any more: the replica state is dropped and the object is
// returned to its home shard, whose release of the pseudo-owner
// unblocks any waiting writer.
func (s *Server) finishShedIfDrained(obj lockmgr.ObjectID) {
	if _, draining := s.shedding[obj]; !draining {
		return
	}
	for i, n := 0, s.locks.HolderCount(obj); i < n; i++ {
		if h, _ := s.locks.HolderAt(obj, i); h > 0 {
			return
		}
	}
	delete(s.shedding, obj)
	delete(s.replicated, obj)
	delete(s.repHeat, obj)
	s.send(shardmap.ShardSite(s.topo.HomeShard(obj)), netsim.KindObjectReturn, netsim.ControlBytes,
		proto.ObjReturn{Client: s.site, Obj: obj})
}
