package server

import (
	"testing"
	"time"

	"siteselect/internal/config"
	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
	"siteselect/internal/proto"
	"siteselect/internal/sim"
	"siteselect/internal/txn"
)

// rig wires a server with n scripted clients whose inboxes the test
// reads directly.
type rig struct {
	env    *sim.Env
	net    *netsim.Network
	srv    *Server
	to     []*sim.Mailbox[netsim.Message] // per-client connection queue at the server
	inbox  []*sim.Mailbox[netsim.Message] // per-client message queue
	t      *testing.T
	nextTx int64
}

func newRig(t *testing.T, n int, mod func(*config.Config)) *rig {
	t.Helper()
	env := sim.NewEnv()
	cfg := config.Default(n, 0.05)
	cfg.ServerOpCPU = time.Millisecond
	cfg.DiskRead = time.Millisecond
	cfg.DiskWrite = time.Millisecond
	if mod != nil {
		mod(&cfg)
	}
	net := netsim.New(env, netsim.Config{Latency: 100 * time.Microsecond, BandwidthBps: 10e6})
	srv := New(env, cfg, net)
	r := &rig{env: env, net: net, srv: srv, t: t}
	for i := 1; i <= n; i++ {
		to := sim.NewMailbox[netsim.Message](env)
		inbox := sim.NewMailbox[netsim.Message](env)
		srv.Attach(netsim.SiteID(i), to, inbox)
		r.to = append(r.to, to)
		r.inbox = append(r.inbox, inbox)
	}
	srv.Start()
	return r
}

func (r *rig) send(from int, kind netsim.Kind, payload any) {
	r.net.Send(netsim.Message{
		Kind: kind, From: netsim.SiteID(from), To: netsim.ServerSite,
		Size: netsim.ControlBytes, Payload: payload,
	}, r.to[from-1])
}

func (r *rig) request(from int, obj lockmgr.ObjectID, mode lockmgr.Mode, deadline time.Duration) {
	r.nextTx++
	r.send(from, netsim.KindObjectRequest, proto.ObjRequest{
		Client: netsim.SiteID(from), Txn: txn.ID(r.nextTx), Obj: obj,
		Mode: mode, Deadline: deadline,
	})
}

// drain runs the clock forward and returns everything client id
// received.
func (r *rig) drain(id int, until time.Duration) []netsim.Message {
	r.env.Run(until)
	var out []netsim.Message
	for {
		m, ok := r.inbox[id-1].TryGet()
		if !ok {
			return out
		}
		out = append(out, m)
	}
}

func TestServerGrantsFreeObject(t *testing.T) {
	r := newRig(t, 2, nil)
	defer r.env.Close()
	r.request(1, 42, lockmgr.ModeExclusive, time.Minute)
	msgs := r.drain(1, time.Second)
	if len(msgs) != 1 || msgs[0].Kind != netsim.KindObjectShip {
		t.Fatalf("messages = %+v", msgs)
	}
	g := msgs[0].Payload.(proto.ObjGrant)
	if g.Obj != 42 || g.Mode != lockmgr.ModeExclusive {
		t.Fatalf("grant = %+v", g)
	}
	if r.srv.Locks().HolderMode(42, 1) != lockmgr.ModeExclusive {
		t.Fatal("lock not registered")
	}
}

func TestServerDeniesExpiredRequest(t *testing.T) {
	r := newRig(t, 1, nil)
	defer r.env.Close()
	r.env.Run(time.Minute) // advance past the deadline below
	r.request(1, 1, lockmgr.ModeShared, time.Second)
	msgs := r.drain(1, 2*time.Minute)
	if len(msgs) != 1 || msgs[0].Kind != netsim.KindLockReply {
		t.Fatalf("messages = %+v", msgs)
	}
	d := msgs[0].Payload.(proto.DenyReply)
	if d.Reason != proto.DenyExpired {
		t.Fatalf("reason = %v", d.Reason)
	}
	if r.srv.DeniesExpired != 1 {
		t.Fatalf("DeniesExpired = %d", r.srv.DeniesExpired)
	}
}

func TestServerRecallsConflictingHolder(t *testing.T) {
	r := newRig(t, 2, func(c *config.Config) { c.UseForwardLists = false })
	defer r.env.Close()
	r.request(1, 7, lockmgr.ModeExclusive, time.Minute)
	r.drain(1, time.Second)
	// Client 2 wants the object shared: client 1 must get a downgrade
	// recall.
	r.request(2, 7, lockmgr.ModeShared, time.Minute)
	msgs := r.drain(1, 2*time.Second)
	if len(msgs) != 1 || msgs[0].Kind != netsim.KindRecall {
		t.Fatalf("holder messages = %+v", msgs)
	}
	rec := msgs[0].Payload.(proto.Recall)
	if !rec.DowngradeToShared {
		t.Fatal("SL demand should ask for a downgrade")
	}
	// Holder answers with a downgrade; client 2 must then be granted.
	r.send(1, netsim.KindObjectReturn, proto.ObjReturn{
		Client: 1, Obj: 7, Downgraded: true, HasData: true, Version: 1,
	})
	msgs = r.drain(2, 3*time.Second)
	if len(msgs) != 1 || msgs[0].Kind != netsim.KindObjectShip {
		t.Fatalf("waiter messages = %+v", msgs)
	}
	if r.srv.Locks().HolderMode(7, 1) != lockmgr.ModeShared {
		t.Fatal("holder not downgraded in table")
	}
	if r.srv.Locks().HolderMode(7, 2) != lockmgr.ModeShared {
		t.Fatal("waiter not granted")
	}
	if r.srv.Version(7) != 1 {
		t.Fatalf("version = %d", r.srv.Version(7))
	}
}

func TestServerProbeAllOrNothing(t *testing.T) {
	r := newRig(t, 2, nil)
	defer r.env.Close()
	// Client 1 takes object 5 exclusively.
	r.request(1, 5, lockmgr.ModeExclusive, time.Minute)
	r.drain(1, time.Second)
	// Client 2 probes for objects 5 and 6: nothing may ship; the reply
	// must name client 1 as the conflict holder and count its data.
	r.send(2, netsim.KindObjectRequest, proto.ProbeRequest{
		Client: 2, Txn: 99,
		Objs:     []lockmgr.ObjectID{5, 6},
		Modes:    []lockmgr.Mode{lockmgr.ModeShared, lockmgr.ModeShared},
		Deadline: time.Minute,
	})
	msgs := r.drain(2, 2*time.Second)
	if len(msgs) != 1 || msgs[0].Kind != netsim.KindLockReply {
		t.Fatalf("messages = %+v", msgs)
	}
	cr := msgs[0].Payload.(proto.ConflictReply)
	if len(cr.Conflicts) != 1 || cr.Conflicts[0].Obj != 5 {
		t.Fatalf("conflicts = %+v", cr.Conflicts)
	}
	if cr.Conflicts[0].Holders[0] != 1 {
		t.Fatalf("holders = %v", cr.Conflicts[0].Holders)
	}
	if len(cr.DataCounts) != 1 || cr.DataCounts[0].Site != 1 || cr.DataCounts[0].Count != 1 {
		t.Fatalf("data counts = %+v", cr.DataCounts)
	}
	if r.srv.Locks().HolderMode(6, 2) != 0 {
		t.Fatal("probe must not grant the free object when any conflicts")
	}
}

func TestServerProbeGrantsWhenAllFree(t *testing.T) {
	r := newRig(t, 1, nil)
	defer r.env.Close()
	r.send(1, netsim.KindObjectRequest, proto.ProbeRequest{
		Client: 1, Txn: 5,
		Objs:     []lockmgr.ObjectID{10, 11, 12},
		Modes:    []lockmgr.Mode{lockmgr.ModeShared, lockmgr.ModeShared, lockmgr.ModeExclusive},
		Deadline: time.Minute,
	})
	msgs := r.drain(1, 2*time.Second)
	if len(msgs) != 3 {
		t.Fatalf("got %d messages, want 3 ships", len(msgs))
	}
	for _, m := range msgs {
		if m.Kind != netsim.KindObjectShip {
			t.Fatalf("kind = %v", m.Kind)
		}
	}
}

func TestServerForwardListMigration(t *testing.T) {
	r := newRig(t, 3, nil)
	defer r.env.Close()
	// Client 1 holds object 3 exclusively.
	r.request(1, 3, lockmgr.ModeExclusive, time.Minute)
	r.drain(1, time.Second)
	// Clients 2 and 3 both want it exclusively: their requests must be
	// collected and dispatched as one migration after client 1 returns.
	r.request(2, 3, lockmgr.ModeExclusive, time.Minute)
	r.request(3, 3, lockmgr.ModeExclusive, 2*time.Minute)
	// Client 1 receives exactly one recall despite two waiters.
	msgs := r.drain(1, 3*time.Second)
	if len(msgs) != 1 || msgs[0].Kind != netsim.KindRecall {
		t.Fatalf("holder messages = %+v", msgs)
	}
	r.send(1, netsim.KindObjectReturn, proto.ObjReturn{
		Client: 1, Obj: 3, HasData: true, Version: 7,
	})
	// Client 2 (earlier deadline) gets the object with a forward list
	// naming client 3.
	msgs = r.drain(2, 5*time.Second)
	if len(msgs) != 1 || msgs[0].Kind != netsim.KindObjectShip {
		t.Fatalf("head messages = %+v", msgs)
	}
	g := msgs[0].Payload.(proto.ObjGrant)
	if g.Fwd == nil || g.Fwd.Len() != 1 || g.Fwd.Entries[0].Client != 3 {
		t.Fatalf("forward list = %+v", g.Fwd)
	}
	if r.srv.MigrationsStarted != 1 {
		t.Fatalf("migrations = %d", r.srv.MigrationsStarted)
	}
	// The object is now checked out to the migration pseudo-owner.
	if r.srv.Locks().HolderMode(3, MigrationOwner) != lockmgr.ModeExclusive {
		t.Fatal("migration pseudo-owner not holding")
	}
	// Final return releases it.
	r.send(2, netsim.KindObjectReturn, proto.ObjReturn{
		Client: 2, Obj: 3, HasData: true, Version: 9, Migration: true,
	})
	r.env.Run(r.env.Now() + time.Second)
	if r.srv.Locks().HolderMode(3, MigrationOwner) != 0 {
		t.Fatal("migration lock not released on final return")
	}
	if r.srv.Version(3) != 9 {
		t.Fatalf("version = %d", r.srv.Version(3))
	}
}

func TestServerParallelReadRun(t *testing.T) {
	r := newRig(t, 3, nil)
	defer r.env.Close()
	// Client 1 holds EL; clients 2 and 3 want SL.
	r.request(1, 4, lockmgr.ModeExclusive, time.Minute)
	r.drain(1, time.Second)
	r.request(2, 4, lockmgr.ModeShared, time.Minute)
	r.request(3, 4, lockmgr.ModeShared, 2*time.Minute)
	r.drain(1, 2*time.Second)
	r.send(1, netsim.KindObjectReturn, proto.ObjReturn{
		Client: 1, Obj: 4, Downgraded: true, HasData: true, Version: 2,
	})
	// The read run ships once to client 2 with a ReadRun list for 3;
	// both are registered SL holders immediately.
	msgs := r.drain(2, 5*time.Second)
	if len(msgs) != 1 || msgs[0].Kind != netsim.KindObjectShip {
		t.Fatalf("head messages = %+v", msgs)
	}
	g := msgs[0].Payload.(proto.ObjGrant)
	if g.Fwd == nil || !g.Fwd.ReadRun {
		t.Fatalf("expected a read-run list, got %+v", g.Fwd)
	}
	if r.srv.Locks().HolderMode(4, 2) != lockmgr.ModeShared ||
		r.srv.Locks().HolderMode(4, 3) != lockmgr.ModeShared {
		t.Fatal("read-run members not registered as SL holders")
	}
	if r.srv.ReadRunsStarted != 1 {
		t.Fatalf("read runs = %d", r.srv.ReadRunsStarted)
	}
}

func TestServerNotCachedReturnReleasesLock(t *testing.T) {
	r := newRig(t, 2, func(c *config.Config) { c.UseForwardLists = false })
	defer r.env.Close()
	r.request(1, 8, lockmgr.ModeShared, time.Minute)
	r.drain(1, time.Second)
	// Client 2 wants EL; client 1 silently dropped the object earlier
	// and answers NotCached.
	r.request(2, 8, lockmgr.ModeExclusive, time.Minute)
	r.drain(1, 2*time.Second)
	r.send(1, netsim.KindObjectReturn, proto.ObjReturn{Client: 1, Obj: 8, NotCached: true})
	msgs := r.drain(2, 3*time.Second)
	if len(msgs) != 1 || msgs[0].Kind != netsim.KindObjectShip {
		t.Fatalf("waiter messages = %+v", msgs)
	}
	if r.srv.Locks().HolderMode(8, 1) != 0 {
		t.Fatal("NotCached return did not release the lock")
	}
}

func TestServerLoadQueryReportsHoldersAndLoads(t *testing.T) {
	r := newRig(t, 2, nil)
	defer r.env.Close()
	r.request(1, 9, lockmgr.ModeShared, time.Minute)
	r.drain(1, time.Second)
	r.send(2, netsim.KindLoadQuery, proto.LoadQuery{
		Client: 2, Txn: 77,
		Objs:     []lockmgr.ObjectID{9, 10},
		Modes:    []lockmgr.Mode{lockmgr.ModeShared, lockmgr.ModeShared},
		Deadline: time.Minute,
		Load:     proto.LoadReport{Client: 2, QueueLen: 3, ATL: time.Second, Valid: true},
	})
	msgs := r.drain(2, 2*time.Second)
	if len(msgs) != 1 || msgs[0].Kind != netsim.KindLoadReply {
		t.Fatalf("messages = %+v", msgs)
	}
	lr := msgs[0].Payload.(proto.LoadReply)
	if len(lr.Locations) != 1 || lr.Locations[0].Obj != 9 || lr.Locations[0].Holders[0] != 1 {
		t.Fatalf("locations = %+v", lr.Locations)
	}
	// The query's piggybacked load must now be in the load table.
	if got := r.srv.Loads()[2]; !got.Valid || got.QueueLen != 3 {
		t.Fatalf("load table entry = %+v", got)
	}
}

func TestServerSingleWaiterNoMigration(t *testing.T) {
	r := newRig(t, 2, nil)
	defer r.env.Close()
	r.request(1, 6, lockmgr.ModeExclusive, time.Minute)
	r.drain(1, time.Second)
	r.request(2, 6, lockmgr.ModeExclusive, time.Minute)
	r.drain(1, 2*time.Second)
	r.send(1, netsim.KindObjectReturn, proto.ObjReturn{Client: 1, Obj: 6, HasData: true, Version: 1})
	msgs := r.drain(2, 3*time.Second)
	if len(msgs) != 1 || msgs[0].Kind != netsim.KindObjectShip {
		t.Fatalf("messages = %+v", msgs)
	}
	g := msgs[0].Payload.(proto.ObjGrant)
	if g.Fwd != nil {
		t.Fatal("sole waiter should get a plain grant, not a migration")
	}
	if r.srv.MigrationsStarted != 0 {
		t.Fatalf("migrations = %d", r.srv.MigrationsStarted)
	}
}
