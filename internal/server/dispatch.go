package server

import (
	"fmt"
	"slices"

	"siteselect/internal/batch"
	"siteselect/internal/forward"
	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
	"siteselect/internal/pagefile"
	"siteselect/internal/proto"
	"siteselect/internal/sim"
	"siteselect/internal/trace"
	"siteselect/internal/txn"
)

// shipIntent is one decided grant: everything the asynchronous half of
// a ship needs, snapshotted at decision time. The version and epoch are
// captured synchronously with the lock registration the ship delivers —
// a release processed while the page is being read makes the grant
// provably stale at the client.
type shipIntent struct {
	obj     lockmgr.ObjectID
	to      netsim.SiteID
	mode    lockmgr.Mode
	id      txn.ID
	fwd     *forward.List
	version int64
	epoch   int64
}

// ship reads the object through the buffer pool (charging disk time on a
// miss) and sends it to the client. The read runs in its own spawned
// machine so that grants triggered inside another client's connection
// handler do not stall that handler. During a batch-window flush the
// intent is deferred instead and endFlush coalesces every grant bound
// for the same destination into a single batched ship.
func (s *Server) ship(obj lockmgr.ObjectID, to netsim.SiteID, mode lockmgr.Mode, id txn.ID, fwd *forward.List) {
	s.GrantsShipped++
	s.tr.Point(id, s.site, trace.EvObjectShipped, obj, int64(to), 0, s.env.Now())
	in := shipIntent{obj: obj, to: to, mode: mode, id: id, fwd: fwd,
		version: s.versions[obj], epoch: s.epochOf(obj, to)}
	if s.batching {
		s.shipIntents = append(s.shipIntents, in)
		return
	}
	s.shipNow(in)
}

// shipNow spawns the asynchronous half of one unbatched ship.
func (s *Server) shipNow(in shipIntent) {
	var m *shipMachine
	if n := len(s.shipFree); n > 0 {
		m = s.shipFree[n-1]
		s.shipFree = s.shipFree[:n-1]
	} else {
		m = &shipMachine{s: s}
	}
	m.obj, m.to, m.mode, m.id, m.fwd = in.obj, in.to, in.mode, in.id, in.fwd
	m.version = in.version
	m.epoch = in.epoch
	m.get.Init(s.pool, pagefile.PageID(in.obj))
	s.env.Spawn(&m.task, m)
}

// shipMachine is one ship's asynchronous half: read the page through
// the pool, unpin, send the grant, then detach and return itself to the
// server's free list so steady-state ships allocate nothing.
type shipMachine struct {
	task    sim.Task
	s       *Server
	get     pagefile.GetOp
	obj     lockmgr.ObjectID
	to      netsim.SiteID
	mode    lockmgr.Mode
	id      txn.ID
	fwd     *forward.List
	version int64
	epoch   int64
}

func (m *shipMachine) Resume() {
	done, err := m.get.Step(&m.task)
	if !done {
		return
	}
	if err != nil {
		panic(fmt.Sprintf("server: reading object %d: %v", m.obj, err))
	}
	s := m.s
	s.pool.Unpin(m.get.Frame(), false)
	s.send(m.to, netsim.KindObjectShip, netsim.ObjectBytes, proto.ObjGrant{
		Obj: m.obj, Mode: m.mode, Version: m.version, Txn: m.id, Epoch: m.epoch, Fwd: m.fwd,
	})
	m.task.Detach()
	m.fwd = nil
	s.shipFree = append(s.shipFree, m)
}

// epochOf returns the release epoch last reported by client for obj.
func (s *Server) epochOf(obj lockmgr.ObjectID, client netsim.SiteID) int64 {
	return s.epochs[epochKey{obj: obj, client: client}]
}

// shipGrants ships every newly granted queued request. Grants whose
// transactions have already missed their deadlines are not shipped (the
// paper's object request scheduling rule); their locks are released,
// which may cascade into further grants.
func (s *Server) shipGrants(grants []*lockmgr.Request) {
	for _, g := range grants {
		if g.Owner == MigrationOwner || isReplicaOwner(g.Owner) {
			// Replica pseudo-requests are only ever registered on a free
			// object, so they never queue; the guard is defensive.
			continue
		}
		if g.Deadline < s.env.Now() {
			// Don't ship 2 KB to a dead transaction; recall the grant
			// instead (the client answers NotCached or returns the
			// copy it was upgrading, and the release then cascades).
			s.DeniesExpired++
			expired, _ := g.Tag.(txn.ID)
			s.recall(g.Obj, netsim.SiteID(g.Owner), false, expired)
			s.freeReq(g)
			continue
		}
		id, _ := g.Tag.(txn.ID)
		s.ship(g.Obj, netsim.SiteID(g.Owner), g.Mode, id, nil)
		s.freeReq(g)
	}
}

// groupable reports whether a firm request for obj must join the
// object's forward list rather than the plain lock queue: the object is
// conflicted now, mid-migration, or already has a list forming.
func (s *Server) groupable(obj lockmgr.ObjectID, client netsim.SiteID, mode lockmgr.Mode) bool {
	if s.inflight[obj] != nil || s.sealed[obj] != nil {
		return true
	}
	if s.collector != nil && s.collector.Pending(obj) != nil {
		return true
	}
	if len(s.locks.ConflictingHolders(obj, lockmgr.OwnerID(client), mode)) > 0 {
		return true
	}
	return s.locks.QueueLen(obj) > 0
}

// conflictHolders answers the tentative probe: which sites stand between
// this client and obj? For migrating or list-pending objects the paper's
// rule applies — report the last client of the forward list as the
// object's location.
func (s *Server) conflictHolders(obj lockmgr.ObjectID, client netsim.SiteID, mode lockmgr.Mode) []netsim.SiteID {
	now := s.env.Now()
	for _, l := range s.lists(obj) {
		if e, ok := l.Last(now); ok {
			return []netsim.SiteID{e.Client}
		}
	}
	if s.inflight[obj] != nil {
		// List fully dead but object still out; it belongs to nobody the
		// client could use — report no usable location, but it is still
		// a conflict.
		return []netsim.SiteID{client} // degenerate: treated as "busy"
	}
	hs := s.locks.ConflictingHolders(obj, lockmgr.OwnerID(client), mode)
	out := make([]netsim.SiteID, 0, len(hs))
	for _, h := range hs {
		if h != MigrationOwner {
			out = append(out, siteFor(h))
		}
	}
	if len(out) == 0 {
		if w := s.locks.FirstForeignWaiter(obj, lockmgr.OwnerID(client)); w != nil {
			// Compatible with the holders, but an earlier incompatible
			// request is queued: still a conflict. Report the current
			// holders (whoever the queued writer waits on), or the
			// queued requester itself when the object is bare.
			for i, n := 0, s.locks.HolderCount(obj); i < n; i++ {
				h, _ := s.locks.HolderAt(obj, i)
				if h != MigrationOwner && siteFor(h) != client {
					out = append(out, siteFor(h))
				}
			}
			if len(out) == 0 && w.Owner != MigrationOwner {
				out = append(out, siteFor(w.Owner))
			}
		}
	}
	return out
}

// lists returns the object's future-ownership lists in "latest owner
// last" order of authority: the open collector window supersedes the
// sealed list, which supersedes the in-flight list.
func (s *Server) lists(obj lockmgr.ObjectID) []*forward.List {
	var out []*forward.List
	if s.collector != nil {
		if l := s.collector.Pending(obj); l != nil {
			out = append(out, l)
		}
	}
	if l := s.sealed[obj]; l != nil {
		out = append(out, l)
	}
	if l := s.inflight[obj]; l != nil {
		out = append(out, l)
	}
	return out
}

// holdersFor answers location queries: every site currently holding obj
// in any mode (other than the asker), or the forward-list tail for
// objects with queued migrations.
func (s *Server) holdersFor(obj lockmgr.ObjectID, asker netsim.SiteID) []netsim.SiteID {
	now := s.env.Now()
	for _, l := range s.lists(obj) {
		if e, ok := l.Last(now); ok && e.Client != asker {
			return []netsim.SiteID{e.Client}
		}
	}
	var out []netsim.SiteID
	for i, n := 0, s.locks.HolderCount(obj); i < n; i++ {
		h, _ := s.locks.HolderAt(obj, i)
		if h == MigrationOwner || siteFor(h) == asker {
			continue
		}
		out = append(out, siteFor(h))
	}
	return out
}

// loadsFor collects the known load reports of every site mentioned in
// conflicts, sorted by site for determinism. The site set is gathered
// in reusable scratch (conflict fan-outs are small, so a linear dedup
// beats a per-call map); only the report slice escapes into the reply.
func (s *Server) loadsFor(conflicts []proto.ObjConflict) []proto.LoadReport {
	sites := s.siteScratch[:0]
	for _, c := range conflicts {
		for _, h := range c.Holders {
			if !slices.Contains(sites, h) {
				sites = append(sites, h)
			}
		}
	}
	slices.Sort(sites)
	s.siteScratch = sites
	out := make([]proto.LoadReport, 0, len(sites))
	for _, site := range sites {
		if l, ok := s.loads[site]; ok && l.Valid {
			out = append(out, l)
		}
	}
	return out
}

// recallForQueueHead issues callbacks to the holders blocking the
// earliest-deadline queued request (basic client-server path). When that
// request only needs shared access and the modified callback scheme is
// enabled, EL holders are asked to downgrade instead of give up the
// object.
func (s *Server) recallForQueueHead(obj lockmgr.ObjectID) {
	head := s.locks.NextWaiter(obj)
	if head == nil {
		return
	}
	downgrade := head.Mode == lockmgr.ModeShared && s.cfg.UseDowngrade
	forTxn, _ := head.Tag.(txn.ID)
	for _, h := range s.locks.ConflictingHolders(obj, head.Owner, head.Mode) {
		if h == MigrationOwner {
			continue
		}
		s.recall(obj, siteFor(h), downgrade, forTxn)
	}
}

// headEntry returns the next forward-list entry due for obj: the sealed
// list dispatches before the still-collecting one.
func (s *Server) headEntry(obj lockmgr.ObjectID) (forward.Entry, bool) {
	now := s.env.Now()
	if l := s.sealed[obj]; l != nil {
		for _, e := range l.Entries {
			if e.Deadline >= now {
				return e, true
			}
		}
	}
	if s.collector != nil {
		if l := s.collector.Pending(obj); l != nil {
			for _, e := range l.Entries {
				if e.Deadline >= now {
					return e, true
				}
			}
		}
	}
	return forward.Entry{}, false
}

// blockedForHead reports whether any holder other than the head
// requester itself conflicts with the head entry's mode.
func (s *Server) blockedForHead(obj lockmgr.ObjectID, head forward.Entry) bool {
	for i, n := 0, s.locks.HolderCount(obj); i < n; i++ {
		h, mode := s.locks.HolderAt(obj, i)
		if h == MigrationOwner || siteFor(h) == head.Client {
			continue
		}
		if !lockmgr.Compatible(head.Mode, mode) {
			return true
		}
	}
	return false
}

// recallForMigration recalls the holders standing in the way of obj's
// next forward-list entry. A reader at the head only needs EL holders to
// downgrade (existing shared copies can stay); a writer at the head
// needs every other copy back in full. The head requester's own cached
// copy is never recalled — it is about to be served in place.
func (s *Server) recallForMigration(obj lockmgr.ObjectID) {
	head, ok := s.headEntry(obj)
	if !ok {
		return
	}
	downgrade := head.Mode == lockmgr.ModeShared && s.cfg.UseDowngrade
	for i, n := 0, s.locks.HolderCount(obj); i < n; i++ {
		h, mode := s.locks.HolderAt(obj, i)
		if h == MigrationOwner || siteFor(h) == head.Client {
			continue
		}
		if lockmgr.Compatible(head.Mode, mode) {
			continue // compatible with the head; deeper entries recall later
		}
		s.recall(obj, siteFor(h), downgrade, head.Txn)
	}
}

// recall sends a callback to holder for obj; forTxn names the waiting
// transaction the callback serves (zero when none, e.g. stray-copy
// invalidation), recorded on its trace.
func (s *Server) recall(obj lockmgr.ObjectID, holder netsim.SiteID, downgrade bool, forTxn txn.ID) {
	set := s.recalls[obj]
	if slices.Contains(set, holder) {
		return
	}
	if set == nil {
		if n := len(s.recallSetFree); n > 0 {
			set = s.recallSetFree[n-1]
			s.recallSetFree = s.recallSetFree[:n-1]
		}
	}
	s.recalls[obj] = append(set, holder)
	s.RecallsSent++
	s.tr.Point(forTxn, s.site, trace.EvRecall, obj, int64(holder), 0, s.env.Now())
	r := proto.Recall{
		Obj:               obj,
		DowngradeToShared: downgrade,
		HolderMode:        s.locks.HolderMode(obj, ownerFor(holder)),
	}
	if s.batching {
		// Defer the send; endFlush coalesces every callback bound for
		// the same holder into one message. The holder-mode snapshot
		// above is already taken, synchronously with the decision.
		s.recallIntents = append(s.recallIntents, recallIntent{holder: holder, recall: r})
		return
	}
	s.send(holder, netsim.KindRecall, netsim.ControlBytes, r)
}

// recallIntent is one decided callback deferred during a window flush.
type recallIntent struct {
	holder netsim.SiteID
	recall proto.Recall
}

// beginFlush enters deferral mode for the duration of a batch-window
// flush: ship and recall buffer intents instead of sending.
func (s *Server) beginFlush(int) { s.batching = true }

// endFlush leaves deferral mode and sends the flush's coalesced ships
// and recalls, grouped per destination in first-decision order.
func (s *Server) endFlush() {
	s.batching = false
	s.flushShips()
	s.flushRecalls()
}

// flushShips groups the deferred ship intents per destination: a lone
// grant takes the ordinary ship machine; two or more bound for the same
// client ride one batched machine that walks every page through the
// pool (requests for the same page share the read) and sends a single
// BatchGrant message.
func (s *Server) flushShips() {
	intents := s.shipIntents
	if len(intents) == 0 {
		return
	}
	// Group by destination in first-decision order with a mark pass over
	// the intent buffer: the fan-out per flush is small, so the
	// quadratic scan stays cheap and no per-flush map is built. Each
	// multi-grant group is copied into the batch machine's own buffer
	// (it must outlive the flush — the machine parks on page reads), so
	// the intent buffer itself is reusable.
	mark := s.flushMark[:0]
	for range intents {
		mark = append(mark, false)
	}
	for i := range intents {
		if mark[i] {
			continue
		}
		to := intents[i].to
		n := 1
		for j := i + 1; j < len(intents); j++ {
			if intents[j].to == to {
				n++
			}
		}
		if n == 1 {
			s.shipNow(intents[i])
			continue
		}
		var m *batchShipMachine
		if k := len(s.batchShipFree); k > 0 {
			m = s.batchShipFree[k-1]
			s.batchShipFree = s.batchShipFree[:k-1]
		} else {
			m = &batchShipMachine{s: s}
		}
		m.to = to
		m.intents = append(m.intents[:0], intents[i])
		for j := i + 1; j < len(intents); j++ {
			if intents[j].to == to {
				m.intents = append(m.intents, intents[j])
				mark[j] = true
			}
		}
		m.pages = m.pages[:0]
		for _, in := range m.intents {
			m.pages = append(m.pages, pagefile.PageID(in.obj))
		}
		m.get.Init(s.pool, m.pages)
		s.env.Spawn(&m.task, m)
	}
	s.flushMark = mark
	clear(intents) // drop forward-list pointers before reuse
	s.shipIntents = intents[:0]
}

// flushRecalls sends the deferred callbacks, one message per holder.
func (s *Server) flushRecalls() {
	intents := s.recallIntents
	if len(intents) == 0 {
		return
	}
	// Same mark-pass grouping as flushShips. A multi-recall group is
	// allocated fresh — it escapes into the BatchRecall payload — but a
	// lone recall sends by value and the intent buffer is reused.
	mark := s.flushMark[:0]
	for range intents {
		mark = append(mark, false)
	}
	for i := range intents {
		if mark[i] {
			continue
		}
		h := intents[i].holder
		n := 1
		for j := i + 1; j < len(intents); j++ {
			if intents[j].holder == h {
				n++
			}
		}
		if n == 1 {
			s.send(h, netsim.KindRecall, netsim.ControlBytes, intents[i].recall)
			continue
		}
		rs := make([]proto.Recall, 0, n)
		rs = append(rs, intents[i].recall)
		for j := i + 1; j < len(intents); j++ {
			if intents[j].holder == h {
				rs = append(rs, intents[j].recall)
				mark[j] = true
			}
		}
		s.send(h, netsim.KindRecall, len(rs)*netsim.ControlBytes, proto.BatchRecall{Recalls: rs})
	}
	s.flushMark = mark
	s.recallIntents = intents[:0]
}

// batchShipMachine is the asynchronous half of a coalesced ship: read
// every page of the batch through the pool in sequence, then deliver
// all the grants in one message.
type batchShipMachine struct {
	task sim.Task
	s    *Server
	get  pagefile.MultiGetOp
	to   netsim.SiteID
	// intents and pages are machine-owned buffers refilled per batch,
	// so a recycled machine's flush allocates neither.
	intents []shipIntent
	pages   []pagefile.PageID
}

func (m *batchShipMachine) Resume() {
	done, err := m.get.Step(&m.task)
	if !done {
		return
	}
	if err != nil {
		panic(fmt.Sprintf("server: reading batched ships for site %d: %v", m.to, err))
	}
	s := m.s
	grants := make([]proto.ObjGrant, len(m.intents))
	for i, in := range m.intents {
		grants[i] = proto.ObjGrant{
			Obj: in.obj, Mode: in.mode, Version: in.version,
			Txn: in.id, Epoch: in.epoch, Fwd: in.fwd,
		}
	}
	s.send(m.to, netsim.KindObjectShip, len(grants)*netsim.ObjectBytes, proto.BatchGrant{Grants: grants})
	m.task.Detach()
	clear(m.intents) // drop forward-list pointers before reuse
	m.intents = m.intents[:0]
	s.batchShipFree = append(s.batchShipFree, m)
}

// onSeal receives a sealed forward list from the collector: merge it
// with any still-undelivered predecessor and try to dispatch.
func (s *Server) onSeal(l *forward.List) {
	if prev := s.sealed[l.Obj]; prev != nil {
		for _, e := range l.Entries {
			prev.Insert(e)
		}
	} else {
		s.sealed[l.Obj] = l
	}
	s.tryDispatch(l.Obj)
}

// tryDispatch starts the sealed forward list's migration if the object
// is free: lock it for the migration pseudo-owner and ship it to the
// first live entry together with the remaining list. Single-entry lists
// degenerate to a normal grant. When the object is already free but the
// collection window is still open, the window is sealed early — batching
// only pays while the object is out.
func (s *Server) tryDispatch(obj lockmgr.ObjectID) {
	if s.inflight[obj] != nil {
		return
	}
	head, ok := s.headEntry(obj)
	if ok && s.blockedForHead(obj, head) {
		s.recallForMigration(obj)
		return
	}
	if s.sealed[obj] == nil {
		if ok && s.collector != nil && s.collector.Pending(obj) != nil {
			// The head entry can go: seal the window early (re-enters
			// tryDispatch through onSeal with a sealed list).
			s.collector.SealNow(obj)
		}
		return
	}
	l := s.sealed[obj]
	now := s.env.Now()
	run, _ := l.PopRun(now)
	if len(run) == 0 {
		delete(s.sealed, obj)
		return
	}
	if l.Len() == 0 {
		delete(s.sealed, obj)
	}

	if run[0].Mode == lockmgr.ModeShared || len(run) == 1 {
		// A shared run is served in parallel (the forward list's
		// parallel read-only annotation); a lone writer is a plain
		// grant. Either way every recipient becomes an ordinary
		// registered holder immediately.
		for _, e := range run {
			lr := s.newReq()
			lr.Obj, lr.Owner = obj, lockmgr.OwnerID(e.Client)
			lr.Mode, lr.Deadline, lr.Tag = e.Mode, e.Deadline, e.Txn
			outcome, _ := s.locks.Lock(lr)
			if outcome != lockmgr.Granted {
				panic("server: free object grant failed at dispatch")
			}
			s.freeReq(lr)
		}
		if len(run) == 1 {
			s.ship(obj, run[0].Client, run[0].Mode, run[0].Txn, nil)
		} else {
			// One copy leaves the server and hops down the run
			// client-to-client; each reader keeps its copy. The object
			// is marked in flight until the last member acknowledges
			// (the list's final return), so no recall can cross a hop
			// still on the wire.
			s.ReadRunsStarted++
			s.ForwardEntriesSent += int64(len(run))
			hop := forward.NewList(obj)
			hop.ReadRun = true
			for _, e := range run[1:] {
				e.Epoch = s.epochOf(obj, e.Client)
				hop.Insert(e)
			}
			s.inflight[obj] = hop.Clone()
			s.ship(obj, run[0].Client, run[0].Mode, run[0].Txn, hop)
		}
		if s.sealed[obj] != nil {
			// More entries (a writer behind the readers): recall the
			// copies once their transactions finish.
			s.recallForMigration(obj)
		}
		return
	}

	// An exclusive pipeline: the object hops writer to writer and
	// returns to the server after the last one.
	first := run[0]
	chain := forward.NewList(obj)
	for _, e := range run[1:] {
		e.Epoch = s.epochOf(obj, e.Client)
		chain.Insert(e)
	}
	// A shared copy cached by the first writer is superseded by the
	// migration grant it is about to receive.
	s.locks.Release(obj, lockmgr.OwnerID(first.Client))
	lr := s.newReq()
	lr.Obj, lr.Owner = obj, MigrationOwner
	lr.Mode, lr.Deadline, lr.Tag = lockmgr.ModeExclusive, first.Deadline, first.Txn
	outcome, _ := s.locks.Lock(lr)
	if outcome != lockmgr.Granted {
		panic("server: migration lock failed at dispatch")
	}
	s.freeReq(lr)
	s.MigrationsStarted++
	s.ForwardEntriesSent += int64(chain.Len() + 1)
	s.inflight[obj] = chain
	s.ship(obj, first.Client, first.Mode, first.Txn, chain.Clone())
}

// AuditLocks verifies the global lock table invariants.
func (s *Server) AuditLocks() error { return s.locks.Audit() }

// AuditBatch verifies request conservation through the batching layer:
// every firm request that entered a batch window is either still parked
// in the open window or left it as exactly one grant, queue entry,
// forward-list join, or deny.
func (s *Server) AuditBatch() error { return s.batcher.Audit() }

// Batcher exposes the batch scheduler for metrics and audits.
func (s *Server) Batcher() *batch.Scheduler { return s.batcher }

// AuditForward verifies the structural invariants of every forward list
// the server tracks — still collecting, sealed, and in flight.
func (s *Server) AuditForward() error {
	if s.collector != nil {
		for _, l := range s.collector.OpenLists() {
			if err := l.Wellformed(); err != nil {
				return err
			}
		}
	}
	for _, m := range []map[lockmgr.ObjectID]*forward.List{s.sealed, s.inflight} {
		objs := make([]lockmgr.ObjectID, 0, len(m))
		for obj := range m {
			objs = append(objs, obj)
		}
		slices.Sort(objs)
		for _, obj := range objs {
			if err := m[obj].Wellformed(); err != nil {
				return err
			}
		}
	}
	return nil
}
