package forward

import (
	"testing"
	"testing/quick"
	"time"

	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
	"siteselect/internal/sim"
)

func netsimSiteID(i int) netsim.SiteID { return netsim.SiteID(i) }

func TestInsertDeadlineOrder(t *testing.T) {
	l := NewList(1)
	l.Insert(Entry{Client: 1, Deadline: 30 * time.Second})
	l.Insert(Entry{Client: 2, Deadline: 10 * time.Second})
	l.Insert(Entry{Client: 3, Deadline: 20 * time.Second})
	want := []time.Duration{10 * time.Second, 20 * time.Second, 30 * time.Second}
	for i, e := range l.Entries {
		if e.Deadline != want[i] {
			t.Fatalf("order = %v", l.Entries)
		}
	}
}

func TestInsertTieFIFO(t *testing.T) {
	l := NewList(1)
	for i := 1; i <= 4; i++ {
		l.Insert(Entry{Client: netsimSiteID(i), Deadline: time.Second})
	}
	for i, e := range l.Entries {
		if int(e.Client) != i+1 {
			t.Fatalf("tie order = %v", l.Entries)
		}
	}
}

func TestPopLiveSkipsDead(t *testing.T) {
	l := NewList(1)
	l.Insert(Entry{Client: 1, Deadline: 5 * time.Second})
	l.Insert(Entry{Client: 2, Deadline: 15 * time.Second})
	l.Insert(Entry{Client: 3, Deadline: 25 * time.Second})
	e, ok, skipped := l.PopLive(10 * time.Second)
	if !ok || e.Client != 2 {
		t.Fatalf("PopLive = %+v ok=%v", e, ok)
	}
	if len(skipped) != 1 || skipped[0].Client != 1 {
		t.Fatalf("skipped = %v", skipped)
	}
	if l.Len() != 1 {
		t.Fatalf("len = %d", l.Len())
	}
	_, ok, skipped = l.PopLive(100 * time.Second)
	if ok || len(skipped) != 1 {
		t.Fatalf("all-dead pop: ok=%v skipped=%v", ok, skipped)
	}
}

func TestLastLiveEntry(t *testing.T) {
	l := NewList(1)
	l.Insert(Entry{Client: 1, Deadline: 10 * time.Second})
	l.Insert(Entry{Client: 2, Deadline: 20 * time.Second})
	l.Insert(Entry{Client: 3, Deadline: 30 * time.Second})
	e, ok := l.Last(0)
	if !ok || e.Client != 3 {
		t.Fatalf("Last = %+v", e)
	}
	// At t=25s only client 3's entry is live.
	e, ok = l.Last(25 * time.Second)
	if !ok || e.Client != 3 {
		t.Fatalf("Last(25s) = %+v", e)
	}
	if _, ok := l.Last(100 * time.Second); ok {
		t.Fatal("all-dead Last should be !ok")
	}
}

func TestParallelReadRun(t *testing.T) {
	l := NewList(1)
	l.Insert(Entry{Client: 1, Mode: lockmgr.ModeShared, Deadline: 1 * time.Second})
	l.Insert(Entry{Client: 2, Mode: lockmgr.ModeShared, Deadline: 2 * time.Second})
	l.Insert(Entry{Client: 3, Mode: lockmgr.ModeExclusive, Deadline: 3 * time.Second})
	l.Insert(Entry{Client: 4, Mode: lockmgr.ModeShared, Deadline: 4 * time.Second})
	if run := l.ParallelReadRun(); run != 2 {
		t.Fatalf("parallel run = %d, want 2", run)
	}
}

func TestCloneIndependent(t *testing.T) {
	l := NewList(1)
	l.Insert(Entry{Client: 1, Deadline: time.Second})
	c := l.Clone()
	c.Insert(Entry{Client: 2, Deadline: 2 * time.Second})
	if l.Len() != 1 || c.Len() != 2 {
		t.Fatalf("clone not independent: %d vs %d", l.Len(), c.Len())
	}
}

func TestCollectorWindow(t *testing.T) {
	env := sim.NewEnv()
	var sealed []*List
	c := NewCollector(env, time.Second, func(l *List) { sealed = append(sealed, l) })
	env.Schedule(0, func() { c.Add(1, Entry{Client: 1, Deadline: 10 * time.Second}) })
	env.Schedule(500*time.Millisecond, func() { c.Add(1, Entry{Client: 2, Deadline: 5 * time.Second}) })
	// After the window: arrives too late for the first list.
	env.Schedule(1500*time.Millisecond, func() { c.Add(1, Entry{Client: 3, Deadline: 7 * time.Second}) })
	env.Run(5 * time.Second)
	if len(sealed) != 2 {
		t.Fatalf("sealed lists = %d, want 2", len(sealed))
	}
	if sealed[0].Len() != 2 || sealed[0].Entries[0].Client != 2 {
		t.Fatalf("first list = %+v", sealed[0].Entries)
	}
	if sealed[1].Len() != 1 || sealed[1].Entries[0].Client != 3 {
		t.Fatalf("second list = %+v", sealed[1].Entries)
	}
	if c.Sealed != 2 || c.Grouped != 2 {
		t.Fatalf("Sealed=%d Grouped=%d", c.Sealed, c.Grouped)
	}
}

func TestCollectorZeroWindowSealsImmediately(t *testing.T) {
	env := sim.NewEnv()
	var sealed []*List
	c := NewCollector(env, 0, func(l *List) { sealed = append(sealed, l) })
	env.Schedule(0, func() { c.Add(1, Entry{Client: 1, Deadline: time.Second}) })
	env.Schedule(0, func() { c.Add(1, Entry{Client: 2, Deadline: time.Second}) })
	env.Run(time.Second)
	// Both Adds happen at t=0 before the seal event (scheduled after),
	// so they still share one list; a zero window just means no extra
	// waiting.
	if len(sealed) != 1 || sealed[0].Len() != 2 {
		t.Fatalf("sealed = %d lists", len(sealed))
	}
}

func TestMessageCountFormulas(t *testing.T) {
	for n := 1; n <= 20; n++ {
		if Messages2PL(n) != 3*n {
			t.Fatalf("2PL(%d) = %d", n, Messages2PL(n))
		}
		if MessagesCallback(n) != 4*n {
			t.Fatalf("callback(%d) = %d", n, MessagesCallback(n))
		}
		if MessagesGrouped(n) != 2*n+1 {
			t.Fatalf("grouped(%d) = %d", n, MessagesGrouped(n))
		}
		if n >= 1 && MessagesGrouped(n) >= MessagesCallback(n) && n > 1 {
			t.Fatalf("grouping should win for n=%d", n)
		}
	}
}

func TestFigureScenarios(t *testing.T) {
	if got := len(FigureScenarioCallback()); got != 7 {
		t.Fatalf("Figure 1 scenario = %d messages, want 7", got)
	}
	if got := len(FigureScenarioGrouped()); got != 5 {
		t.Fatalf("Figure 2 scenario = %d messages, want 5", got)
	}
}

// Property: PopLive drains the list in nondecreasing deadline order
// among live entries, regardless of insertion order.
func TestPopLiveOrderProperty(t *testing.T) {
	f := func(deadlinesMs []uint16, nowMs uint16) bool {
		l := NewList(1)
		for i, d := range deadlinesMs {
			l.Insert(Entry{Client: netsimSiteID(i), Deadline: time.Duration(d) * time.Millisecond})
		}
		now := time.Duration(nowMs) * time.Millisecond
		last := time.Duration(-1)
		for {
			e, ok, skipped := l.PopLive(now)
			for _, s := range skipped {
				if s.Deadline >= now {
					return false
				}
			}
			if !ok {
				return true
			}
			if e.Deadline < now || e.Deadline < last {
				return false
			}
			last = e.Deadline
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneCopiesReadRunAndRetained(t *testing.T) {
	l := NewList(1)
	l.ReadRun = true
	l.Retained = []netsim.SiteID{3, 4}
	l.Insert(Entry{Client: 1, Deadline: time.Second, Epoch: 7})
	c := l.Clone()
	if !c.ReadRun {
		t.Fatal("ReadRun not cloned")
	}
	if len(c.Retained) != 2 || c.Retained[0] != 3 {
		t.Fatalf("Retained = %v", c.Retained)
	}
	if c.Entries[0].Epoch != 7 {
		t.Fatalf("entry epoch = %d", c.Entries[0].Epoch)
	}
	c.Retained = append(c.Retained, 9)
	if len(l.Retained) != 2 {
		t.Fatal("clone shares Retained backing array state")
	}
}

func TestHasExclusive(t *testing.T) {
	l := NewList(1)
	l.Insert(Entry{Client: 1, Mode: lockmgr.ModeShared, Deadline: time.Second})
	if l.HasExclusive() {
		t.Fatal("all-shared list reported exclusive")
	}
	l.Insert(Entry{Client: 2, Mode: lockmgr.ModeExclusive, Deadline: 2 * time.Second})
	if !l.HasExclusive() {
		t.Fatal("exclusive entry not detected")
	}
}

func TestPopRunStopsAtModeBoundary(t *testing.T) {
	l := NewList(1)
	l.Insert(Entry{Client: 1, Mode: lockmgr.ModeShared, Deadline: 1 * time.Second})
	l.Insert(Entry{Client: 2, Mode: lockmgr.ModeShared, Deadline: 2 * time.Second})
	l.Insert(Entry{Client: 3, Mode: lockmgr.ModeExclusive, Deadline: 3 * time.Second})
	l.Insert(Entry{Client: 4, Mode: lockmgr.ModeShared, Deadline: 4 * time.Second})
	run, skipped := l.PopRun(0)
	if len(run) != 2 || len(skipped) != 0 {
		t.Fatalf("run=%d skipped=%d", len(run), len(skipped))
	}
	run, _ = l.PopRun(0)
	if len(run) != 1 || run[0].Mode != lockmgr.ModeExclusive {
		t.Fatalf("second run = %+v", run)
	}
	run, _ = l.PopRun(0)
	if len(run) != 1 || run[0].Client != 4 {
		t.Fatalf("third run = %+v", run)
	}
}

func TestPopRunSkipsDeadInsideRun(t *testing.T) {
	l := NewList(1)
	l.Insert(Entry{Client: 1, Mode: lockmgr.ModeShared, Deadline: 1 * time.Second})  // dead at now=5s
	l.Insert(Entry{Client: 2, Mode: lockmgr.ModeShared, Deadline: 10 * time.Second}) // live
	l.Insert(Entry{Client: 3, Mode: lockmgr.ModeShared, Deadline: 2 * time.Second})  // dead
	run, skipped := l.PopRun(5 * time.Second)
	if len(run) != 1 || run[0].Client != 2 {
		t.Fatalf("run = %+v", run)
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped = %+v", skipped)
	}
}
