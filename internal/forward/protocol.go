package forward

// Message-count models for Figures 1 and 2: how many LAN messages it
// takes to serve n lock requests on one object under the three protocols
// the paper compares. These close-form counts are asserted against the
// simulated protocols in the integration tests.

// Messages2PL returns the message count for n requests under standard
// strict 2PL without inter-transaction caching: per transaction, n lock
// requests, n grants, and n combined release/returns — 3 messages per
// accessed object (Section 3.4 counts 3n for a transaction accessing n
// objects; by symmetry n single-object requests also cost 3n).
func Messages2PL(n int) int { return 3 * n }

// MessagesCallback returns the worst-case message count when clients
// cache objects and locks: each of the n requests can additionally force
// a callback before the grant — request, recall, return, grant: up to 4n.
func MessagesCallback(n int) int { return 4 * n }

// MessagesGrouped returns the message count with forward lists: n
// requests reach the server, the object+list ships once, hops down the
// remaining n-1 clients, and returns once — n + 1 + (n-1) + 1 = 2n+1.
func MessagesGrouped(n int) int { return 2*n + 1 }

// FigureScenarioCallback reproduces Figure 1's worked example: moving an
// object from Client A (which holds it) to Client B through the server
// takes 7 messages under callback locking.
//
// The returned slice names the messages in order.
func FigureScenarioCallback() []string {
	return []string{
		"1: A requests object from server",
		"2: server ships object to A",
		"3: B requests same object from server",
		"4: server recalls object from A",
		"5: A returns object to server",
		"6: server ships object to B",
		"7: B returns object to server",
	}
}

// FigureScenarioGrouped reproduces Figure 2's worked example: the same
// movement with request grouping takes 5 messages.
func FigureScenarioGrouped() []string {
	return []string{
		"1: A requests object from server",
		"2: B requests same object from server",
		"3: server ships object and forward list to A",
		"4: A forwards object to B",
		"5: B returns object to server",
	}
}
