// Package forward implements the grouped-lock object migration of
// Section 3.4: the server collects the lock requests that arrive for an
// object during a collection window into a deadline-ordered forward
// list, grants the lock to the first entry, and the object then hops
// client-to-client down the list — combining each lock release with the
// next grant. For n grouped requests the protocol needs 2n+1 messages
// where per-request callback locking needs 3n to 4n.
//
// Entries whose transactions have already missed their deadlines are
// skipped at each hop, and a run of consecutive shared-mode entries is
// annotated as a parallel-read group.
package forward

import (
	"fmt"
	"sort"
	"time"

	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
	"siteselect/internal/sim"
	"siteselect/internal/txn"
)

// Entry is one pending request in a forward list.
type Entry struct {
	Client   netsim.SiteID
	Mode     lockmgr.Mode
	Deadline time.Duration
	Txn      txn.ID
	// Epoch is stamped by the server at dispatch: the client's release
	// epoch its registration was made under. The hop delivering this
	// entry carries it so the recipient can detect staleness.
	Epoch int64
}

// List is a deadline-ordered forward list for one object.
type List struct {
	Obj     lockmgr.ObjectID
	Entries []Entry
	// ReadRun marks a parallel read-only list (the Section 3.4
	// annotation): every entry already holds a registered SL, the
	// object hops down the run immediately without waiting for commits,
	// each recipient keeps its copy, and nothing returns to the server.
	ReadRun bool
	// Retained accumulates clients that kept a clean shared copy as the
	// object passed through an exclusive migration (only legal while no
	// exclusive entry remains downstream); the server registers these
	// SLs when the object returns.
	Retained []netsim.SiteID
	seq      []int64
	nextSeq  int64
}

// Contains reports whether an entry for (client, id) is on the list —
// the server's duplicate-request guard under fault injection.
func (l *List) Contains(client netsim.SiteID, id txn.ID) bool {
	for _, e := range l.Entries {
		if e.Client == client && e.Txn == id {
			return true
		}
	}
	return false
}

// Wellformed verifies the list's structural invariants — entries sorted
// by (deadline, insertion order) with parallel seq bookkeeping — and
// returns the first violation. The invariant monitor and the fuzz
// targets run it after every mutation.
func (l *List) Wellformed() error {
	if len(l.seq) != len(l.Entries) {
		return fmt.Errorf("forward: list %d has %d entries but %d seqs", l.Obj, len(l.Entries), len(l.seq))
	}
	for i := 1; i < len(l.Entries); i++ {
		prev, cur := l.Entries[i-1], l.Entries[i]
		if prev.Deadline > cur.Deadline {
			return fmt.Errorf("forward: list %d out of deadline order at %d (%v > %v)", l.Obj, i, prev.Deadline, cur.Deadline)
		}
		if prev.Deadline == cur.Deadline && l.seq[i-1] > l.seq[i] {
			return fmt.Errorf("forward: list %d breaks FIFO tie order at %d", l.Obj, i)
		}
	}
	for i, s := range l.seq {
		if s <= 0 || s > l.nextSeq {
			return fmt.Errorf("forward: list %d has seq %d out of range at %d", l.Obj, s, i)
		}
	}
	return nil
}

// HasExclusive reports whether any remaining entry needs an EL.
func (l *List) HasExclusive() bool {
	for _, e := range l.Entries {
		if e.Mode == lockmgr.ModeExclusive {
			return true
		}
	}
	return false
}

// NewList returns an empty list for obj.
func NewList(obj lockmgr.ObjectID) *List { return &List{Obj: obj} }

// Len returns the number of pending entries.
func (l *List) Len() int { return len(l.Entries) }

// Insert adds e keeping deadline order (ties FIFO).
func (l *List) Insert(e Entry) {
	l.nextSeq++
	seq := l.nextSeq
	i := sort.Search(len(l.Entries), func(i int) bool {
		if l.Entries[i].Deadline != e.Deadline {
			return l.Entries[i].Deadline > e.Deadline
		}
		return l.seq[i] > seq
	})
	l.Entries = append(l.Entries, Entry{})
	l.seq = append(l.seq, 0)
	copy(l.Entries[i+1:], l.Entries[i:])
	copy(l.seq[i+1:], l.seq[i:])
	l.Entries[i] = e
	l.seq[i] = seq
}

// PopLive removes and returns the first entry whose deadline has not
// passed at now, together with the dead entries skipped over (the paper's
// "deadline information ... is used to ignore transactions that have
// missed their deadlines"). ok is false when no live entry remains.
func (l *List) PopLive(now time.Duration) (e Entry, ok bool, skipped []Entry) {
	for len(l.Entries) > 0 {
		head := l.Entries[0]
		l.Entries = l.Entries[1:]
		l.seq = l.seq[1:]
		if head.Deadline < now {
			skipped = append(skipped, head)
			continue
		}
		return head, true, skipped
	}
	return Entry{}, false, skipped
}

// Last returns the final live entry — the client the server reports as
// the object's (future) location when answering location queries.
func (l *List) Last(now time.Duration) (Entry, bool) {
	for i := len(l.Entries) - 1; i >= 0; i-- {
		if l.Entries[i].Deadline >= now {
			return l.Entries[i], true
		}
	}
	return Entry{}, false
}

// ParallelReadRun returns how many leading entries form a shared-mode
// (read-only) run that may access the object in parallel.
func (l *List) ParallelReadRun() int {
	n := 0
	for _, e := range l.Entries {
		if e.Mode != lockmgr.ModeShared {
			break
		}
		n++
	}
	return n
}

// PopRun removes and returns the leading run of live entries that share
// the first live entry's mode, skipping dead entries anywhere in the
// run. A shared run may be served in parallel (the paper's parallel
// read-only annotation); an exclusive run forms a migration pipeline.
func (l *List) PopRun(now time.Duration) (run []Entry, skipped []Entry) {
	var mode lockmgr.Mode
	for len(l.Entries) > 0 {
		head := l.Entries[0]
		if head.Deadline < now {
			skipped = append(skipped, head)
			l.Entries = l.Entries[1:]
			l.seq = l.seq[1:]
			continue
		}
		if mode == 0 {
			mode = head.Mode
		}
		if head.Mode != mode {
			break
		}
		run = append(run, head)
		l.Entries = l.Entries[1:]
		l.seq = l.seq[1:]
	}
	return run, skipped
}

// Clone returns a deep copy (the server ships a copy with the object).
func (l *List) Clone() *List {
	c := &List{Obj: l.Obj, ReadRun: l.ReadRun, nextSeq: l.nextSeq}
	c.Entries = append([]Entry(nil), l.Entries...)
	c.Retained = append([]netsim.SiteID(nil), l.Retained...)
	c.seq = append([]int64(nil), l.seq...)
	return c
}

// Collector batches requests per object over a collection window. The
// first Add for an object opens its window; when the window elapses the
// list is sealed and handed to onSeal. With a zero window the list seals
// immediately (grouping effectively off).
type Collector struct {
	env    *sim.Env
	window time.Duration
	onSeal func(*List)
	open   map[lockmgr.ObjectID]*List

	// Sealed counts lists handed to onSeal; Grouped counts entries that
	// shared a list with at least one other entry.
	Sealed  int64
	Grouped int64

	// TraceSeal, when set, observes every sealed list just before it is
	// handed to onSeal (tracing).
	TraceSeal func(*List)
}

// NewCollector returns a collector sealing lists with onSeal after
// window.
func NewCollector(env *sim.Env, window time.Duration, onSeal func(*List)) *Collector {
	return &Collector{
		env:    env,
		window: window,
		onSeal: onSeal,
		open:   make(map[lockmgr.ObjectID]*List),
	}
}

// Pending returns the open (not yet sealed) list for obj, or nil.
func (c *Collector) Pending(obj lockmgr.ObjectID) *List { return c.open[obj] }

// OpenLists returns the still-collecting lists in ascending object
// order (for audits).
func (c *Collector) OpenLists() []*List {
	objs := make([]lockmgr.ObjectID, 0, len(c.open))
	for obj := range c.open {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	out := make([]*List, len(objs))
	for i, obj := range objs {
		out[i] = c.open[obj]
	}
	return out
}

// SealNow closes obj's window early (the object became available before
// the window elapsed; waiting longer would only add latency). The
// original window timer becomes a no-op.
func (c *Collector) SealNow(obj lockmgr.ObjectID) { c.seal(obj) }

// Add queues e for obj, opening a collection window on first use.
func (c *Collector) Add(obj lockmgr.ObjectID, e Entry) {
	l, ok := c.open[obj]
	if !ok {
		l = NewList(obj)
		c.open[obj] = l
		c.env.Schedule(c.window, func() { c.seal(obj) })
	}
	l.Insert(e)
}

func (c *Collector) seal(obj lockmgr.ObjectID) {
	l, ok := c.open[obj]
	if !ok {
		return
	}
	delete(c.open, obj)
	c.Sealed++
	if l.Len() > 1 {
		c.Grouped += int64(l.Len())
	}
	if c.TraceSeal != nil {
		c.TraceSeal(l)
	}
	c.onSeal(l)
}
