package forward

import (
	"testing"
	"time"

	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
)

// FuzzForwardList checks the list invariants under arbitrary insert and
// pop interleavings: the list stays well-formed (the same check the
// continuous invariant monitor runs) after every mutation, PopLive
// yields nondecreasing deadlines among live entries, PopRun yields a
// single-mode run, and no entry is ever lost (every insert is
// eventually popped or skipped).
func FuzzForwardList(f *testing.F) {
	f.Add([]byte{0x10, 0x22, 0x35, 0xf0}, uint8(3))
	f.Add([]byte{0x01, 0x81, 0x41, 0xc1}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, nowByte uint8) {
		l := NewList(1)
		inserted := 0
		for _, b := range data {
			e := Entry{
				Client:   netsim.SiteID(b&0x0f) + 1,
				Deadline: time.Duration(b>>4) * time.Millisecond,
				Mode:     lockmgr.ModeShared,
			}
			if b&0x01 != 0 {
				e.Mode = lockmgr.ModeExclusive
			}
			l.Insert(e)
			inserted++
			if err := l.Wellformed(); err != nil {
				t.Fatalf("after insert %d: %v", inserted, err)
			}
		}
		now := time.Duration(nowByte%16) * time.Millisecond
		accounted := 0
		last := time.Duration(-1)
		for {
			e, ok, skipped := l.PopLive(now)
			accounted += len(skipped)
			for _, s := range skipped {
				if s.Deadline >= now {
					t.Fatalf("live entry %+v skipped", s)
				}
			}
			if err := l.Wellformed(); err != nil {
				t.Fatalf("after pop: %v", err)
			}
			if !ok {
				break
			}
			accounted++
			if e.Deadline < now {
				t.Fatalf("dead entry %+v popped", e)
			}
			if e.Deadline < last {
				t.Fatalf("deadline order broken: %v after %v", e.Deadline, last)
			}
			last = e.Deadline
		}
		if accounted != inserted {
			t.Fatalf("entries lost: inserted %d, accounted %d", inserted, accounted)
		}

		// PopRun mode purity on a fresh copy.
		l2 := NewList(2)
		for _, b := range data {
			mode := lockmgr.ModeShared
			if b&0x01 != 0 {
				mode = lockmgr.ModeExclusive
			}
			l2.Insert(Entry{
				Client:   netsim.SiteID(b&0x0f) + 1,
				Deadline: time.Duration(b>>4) * time.Millisecond,
				Mode:     mode,
			})
		}
		for {
			run, _ := l2.PopRun(now)
			if len(run) == 0 {
				break
			}
			for _, e := range run {
				if e.Mode != run[0].Mode {
					t.Fatalf("mixed-mode run: %v", run)
				}
			}
		}
	})
}
