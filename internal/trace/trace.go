// Package trace records deterministic per-transaction event traces for
// the client-server systems: every transaction carries a timeline of
// typed events (submission, H1/H2 decisions, lock traffic, object
// shipping, migration hops, retries) and a slack attribution that
// splits the interval from arrival to completion into disjoint
// components — executor queueing, lock wait, network transit,
// execution, retransmission windows, and decomposition fan-out.
//
// Attribution uses closing intervals: each transaction tracks the
// timestamp of its last attributed mark, and every Mark closes the
// interval from that point to now into one component's bucket. The
// intervals tile [Arrival, Finished] with no gaps or overlaps by
// construction, so the per-component buckets always sum exactly to the
// elapsed time — an invariant Verify re-checks for every finished
// transaction (and the cluster's invariant monitor re-checks
// continuously).
//
// A nil *Tracer is valid and inert: every method is a no-op, so
// instrumented call sites need no guards and tracing off costs a nil
// check per emit point.
package trace

import (
	"fmt"
	"time"

	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
	"siteselect/internal/txn"
)

// Component identifies one bucket of a transaction's slack attribution.
type Component uint8

// Attribution components. Every instant of a traced transaction's
// lifetime lands in exactly one.
const (
	// CompQueue is time spent waiting for an executor slot (EDF queue).
	CompQueue Component = iota
	// CompLockWait is time blocked on locks: the remote wait for object
	// grants beyond network transit, and local lock serialization.
	CompLockWait
	// CompNet is message transit time attributable to the transaction's
	// own request/reply exchanges and transaction shipping.
	CompNet
	// CompExec is processing: the prescribed execution length, local
	// disk reads, and the commit log force.
	CompExec
	// CompRetry is time lost to expired retransmission windows under
	// fault injection (the wait segments that ended in a resend).
	CompRetry
	// CompFanout is a decomposed parent's wait for its subtasks.
	CompFanout

	// NumComponents bounds the component enum.
	NumComponents
)

var componentNames = [NumComponents]string{
	"queue", "lock-wait", "network", "exec", "retry", "fanout",
}

// String returns the component's short name.
func (c Component) String() string {
	if int(c) < len(componentNames) {
		return componentNames[c]
	}
	return fmt.Sprintf("Component(%d)", int(c))
}

// EventType classifies trace events.
type EventType uint8

// Event types. Phase events are spans (Dur > 0) produced by the
// attribution marks; the rest are point events.
const (
	// EvSubmitted marks transaction submission at its origin.
	EvSubmitted EventType = iota
	// EvH1 records the H1 admission decision: A is the executor queue
	// length, B is 1 if feasible.
	EvH1
	// EvH2 records an H2 site-selection decision: A is the chosen
	// site, B is 1 when the decision was to ship.
	EvH2
	// EvSlotAcquired marks the grant of an executor slot.
	EvSlotAcquired
	// EvLockRequested records a global lock request: A encodes the
	// mode, B the outcome (see lockmgr.Outcome).
	EvLockRequested
	// EvLockGranted records a lock grant reaching the transaction —
	// immediately, via a delayed grant, or served in place by a
	// migration hop.
	EvLockGranted
	// EvLockBlocked records a request queued behind conflicting
	// holders: A is the number of blockers.
	EvLockBlocked
	// EvLockDenied records a denial: A encodes the reason.
	EvLockDenied
	// EvObjectShipped records the server shipping an object copy: A is
	// the destination site.
	EvObjectShipped
	// EvRecall records a server callback sent on the transaction's
	// behalf: A is the holder being recalled.
	EvRecall
	// EvMigrationHop records a client-to-client forward-list hop: A is
	// the next site.
	EvMigrationHop
	// EvListSealed records the transaction's entry travelling in a
	// sealed forward list: A is the list length.
	EvListSealed
	// EvListJoined records a firm request joining an object's forward
	// list instead of the plain lock queue.
	EvListJoined
	// EvDecomposed records a parent fanning out into A subtasks.
	EvDecomposed
	// EvShippedTxn records the whole transaction shipped to site A.
	EvShippedTxn
	// EvShipArrived marks a shipped transaction starting at its target.
	EvShipArrived
	// EvRetry records an expired retransmission window: A is the
	// attempt number.
	EvRetry
	// EvPhase is an attribution span: Comp names the bucket, T..T+Dur
	// the interval.
	EvPhase
	// EvFinished records the terminal state: A encodes txn.Status.
	EvFinished
	// EvBatchWindow records a request leaving the server's batch window
	// (Config.BatchWindow > 0): A is the wait in nanoseconds. The wait
	// accumulates into the trace's BatchWait sub-bucket.
	EvBatchWindow
)

var eventNames = map[EventType]string{
	EvSubmitted:     "submitted",
	EvH1:            "h1-decision",
	EvH2:            "h2-decision",
	EvSlotAcquired:  "slot-acquired",
	EvLockRequested: "lock-requested",
	EvLockGranted:   "lock-granted",
	EvLockBlocked:   "lock-blocked",
	EvLockDenied:    "lock-denied",
	EvObjectShipped: "object-shipped",
	EvRecall:        "recall",
	EvMigrationHop:  "migration-hop",
	EvListSealed:    "list-sealed",
	EvListJoined:    "list-joined",
	EvDecomposed:    "decomposed",
	EvShippedTxn:    "txn-shipped",
	EvShipArrived:   "txn-arrived",
	EvRetry:         "retry",
	EvPhase:         "phase",
	EvFinished:      "finished",
	EvBatchWindow:   "batch-window",
}

// String returns the event type's name.
func (e EventType) String() string {
	if s, ok := eventNames[e]; ok {
		return s
	}
	return fmt.Sprintf("EventType(%d)", int(e))
}

// Event is one entry of a transaction's timeline, stamped with
// simulated time.
type Event struct {
	// T is the event time; for EvPhase spans it is the interval start
	// and Dur its length.
	T    time.Duration
	Dur  time.Duration
	Type EventType
	// Comp is the attribution bucket of EvPhase spans.
	Comp Component
	// Site is where the event happened (the client site, or
	// netsim.ServerSite for server-side events).
	Site netsim.SiteID
	// Obj is the object involved, when the event concerns one.
	Obj lockmgr.ObjectID
	// A and B carry type-specific arguments (see the EventType docs).
	A, B int64
}

// TxnTrace is one transaction's accumulated trace.
type TxnTrace struct {
	ID       txn.ID
	Origin   netsim.SiteID
	Arrival  time.Duration
	Deadline time.Duration
	// Status and Finished are set when the transaction reaches a
	// terminal state; Done reports that it has.
	Status   txn.Status
	Finished time.Duration
	Done     bool
	// Buckets is the slack attribution: disjoint shares of
	// [Arrival, Finished] per component, summing to Finished−Arrival.
	Buckets [NumComponents]time.Duration
	// BatchWait is a sub-bucket, not a seventh component: the share of
	// the transaction's lifetime its requests spent parked in the
	// server's batch window (Config.BatchWindow > 0). From the client's
	// point of view that time is spent waiting on the grant, so it is
	// already tiled into the lock-wait (or network) bucket by the
	// closing-interval attribution — BatchWait only itemizes it. It is
	// therefore excluded from the sum-to-elapsed identity, and is
	// always zero when batching is off.
	BatchWait time.Duration
	// Events is the timeline in emission order.
	Events []Event

	// lastMark chains the closing intervals; lastComp remembers the
	// bucket the final residue joins.
	lastMark time.Duration
	lastComp Component
}

// Elapsed returns the transaction's traced lifetime.
func (tt *TxnTrace) Elapsed() time.Duration { return tt.Finished - tt.Arrival }

// DominantCause returns the component holding the largest share of the
// transaction's elapsed time (lowest-numbered component on ties).
func (tt *TxnTrace) DominantCause() Component {
	best := Component(0)
	for c := Component(1); c < NumComponents; c++ {
		if tt.Buckets[c] > tt.Buckets[best] {
			best = c
		}
	}
	return best
}

// verify checks the attribution identity for a finished trace.
func (tt *TxnTrace) verify() error {
	var sum time.Duration
	for _, b := range tt.Buckets {
		if b < 0 {
			return fmt.Errorf("trace: txn %d has negative %v bucket %v", tt.ID, tt.DominantCause(), b)
		}
		sum += b
	}
	if sum != tt.Elapsed() {
		return fmt.Errorf("trace: txn %d attribution %v does not sum to elapsed %v (arrival %v, finished %v)",
			tt.ID, sum, tt.Elapsed(), tt.Arrival, tt.Finished)
	}
	return nil
}

// Tracer accumulates per-transaction traces for one simulated run. It
// is single-threaded, like the simulation that feeds it. A nil Tracer
// is inert.
type Tracer struct {
	txns  map[txn.ID]*TxnTrace
	order []*TxnTrace
	// fresh holds traces finished since the last VerifyNewlyClosed
	// drain (the invariant monitor's continuous attribution check).
	fresh []*TxnTrace
}

// New returns an empty tracer.
func New() *Tracer {
	return &Tracer{txns: make(map[txn.ID]*TxnTrace)}
}

// Enabled reports whether tracing is on (the tracer is non-nil).
func (tr *Tracer) Enabled() bool { return tr != nil }

func (tr *Tracer) get(id txn.ID) *TxnTrace {
	if tr == nil {
		return nil
	}
	tt := tr.txns[id]
	if tt == nil || tt.Done {
		return nil
	}
	return tt
}

// Submitted opens a transaction's trace. The attribution chain starts
// at the transaction's scheduled arrival, so submission delay (e.g. an
// outage holding the generator) lands in the first closed bucket.
func (tr *Tracer) Submitted(t *txn.Transaction, site netsim.SiteID, now time.Duration) {
	if tr == nil {
		return
	}
	tt := &TxnTrace{
		ID:       t.ID,
		Origin:   t.Origin,
		Arrival:  t.Arrival,
		Deadline: t.Deadline,
		lastMark: t.Arrival,
		lastComp: CompQueue,
	}
	tr.txns[t.ID] = tt
	tr.order = append(tr.order, tt)
	tt.Events = append(tt.Events, Event{T: now, Type: EvSubmitted, Site: site})
}

// closeInterval attributes [lastMark, now] to comp and advances the
// chain.
func (tt *TxnTrace) closeInterval(site netsim.SiteID, comp Component, now time.Duration) {
	d := now - tt.lastMark
	if d < 0 {
		d = 0
	}
	tt.Buckets[comp] += d
	if d > 0 {
		tt.Events = append(tt.Events, Event{T: tt.lastMark, Dur: d, Type: EvPhase, Comp: comp, Site: site})
	}
	tt.lastMark = now
	tt.lastComp = comp
}

// Mark attributes the interval since the transaction's previous mark to
// comp.
func (tr *Tracer) Mark(id txn.ID, site netsim.SiteID, comp Component, now time.Duration) {
	if tt := tr.get(id); tt != nil {
		tt.closeInterval(site, comp, now)
	}
}

// MarkWait closes a request/reply wait interval, splitting it into the
// measured network transit (clamped to the interval) and a lock-wait
// remainder — the time the request spent queued or callback-blocked at
// the server beyond pure message time.
func (tr *Tracer) MarkWait(id txn.ID, site netsim.SiteID, now, net time.Duration) {
	tt := tr.get(id)
	if tt == nil {
		return
	}
	d := now - tt.lastMark
	if d <= 0 {
		tt.lastMark = now
		return
	}
	if net < 0 {
		net = 0
	}
	if net > d {
		net = d
	}
	if net > 0 {
		tt.closeInterval(site, CompNet, tt.lastMark+net)
	}
	if now > tt.lastMark {
		tt.closeInterval(site, CompLockWait, now)
	}
}

// MarkRetry closes an expired retransmission window into the retry
// bucket and records the resend.
func (tr *Tracer) MarkRetry(id txn.ID, site netsim.SiteID, now time.Duration, attempt int) {
	tt := tr.get(id)
	if tt == nil {
		return
	}
	tt.closeInterval(site, CompRetry, now)
	tt.Events = append(tt.Events, Event{T: now, Type: EvRetry, Site: site, A: int64(attempt)})
}

// MarkShipArrived attributes the transit of a shipped transaction to
// the network bucket as it starts at its target site.
func (tr *Tracer) MarkShipArrived(id txn.ID, site netsim.SiteID, now time.Duration) {
	tt := tr.get(id)
	if tt == nil {
		return
	}
	tt.closeInterval(site, CompNet, now)
	tt.Events = append(tt.Events, Event{T: now, Type: EvShipArrived, Site: site})
}

// Finish closes a transaction's trace: the residue since the last mark
// joins the last-marked component (a continuation of whatever the
// transaction was doing), and the trace becomes immutable.
func (tr *Tracer) Finish(t *txn.Transaction, site netsim.SiteID, now time.Duration) {
	tt := tr.get(t.ID)
	if tt == nil {
		return
	}
	tt.closeInterval(site, tt.lastComp, now)
	tt.Status = t.Status
	tt.Finished = now
	tt.Done = true
	tt.Events = append(tt.Events, Event{T: now, Type: EvFinished, Site: site, A: int64(t.Status)})
	tr.fresh = append(tr.fresh, tt)
}

// Point appends a point event to the transaction's timeline.
func (tr *Tracer) Point(id txn.ID, site netsim.SiteID, typ EventType, obj lockmgr.ObjectID, a, b int64, now time.Duration) {
	if tt := tr.get(id); tt != nil {
		tt.Events = append(tt.Events, Event{T: now, Type: typ, Site: site, Obj: obj, A: a, B: b})
	}
}

// AddBatchWait charges d to the transaction's batch-wait sub-bucket and
// records the window-exit event: one request of id sat in the server's
// batch window for d before being served.
func (tr *Tracer) AddBatchWait(id txn.ID, obj lockmgr.ObjectID, d, now time.Duration) {
	if tt := tr.get(id); tt != nil {
		tt.BatchWait += d
		tt.Events = append(tt.Events, Event{T: now, Type: EvBatchWindow, Site: netsim.ServerSite, Obj: obj, A: int64(d)})
	}
}

// VerifyNewlyClosed checks the attribution identity of every trace
// finished since the previous call. The cluster's invariant monitor
// runs it continuously, so an attribution leak is caught at the step
// that introduced it.
func (tr *Tracer) VerifyNewlyClosed() error {
	if tr == nil {
		return nil
	}
	for _, tt := range tr.fresh {
		if err := tt.verify(); err != nil {
			tr.fresh = nil
			return err
		}
	}
	tr.fresh = tr.fresh[:0]
	return nil
}

// VerifyAll checks the attribution identity of every finished trace.
func (tr *Tracer) VerifyAll() error {
	if tr == nil {
		return nil
	}
	for _, tt := range tr.order {
		if !tt.Done {
			continue
		}
		if err := tt.verify(); err != nil {
			return err
		}
	}
	return nil
}

// Traces returns every trace in submission order (live; callers must
// not mutate).
func (tr *Tracer) Traces() []*TxnTrace {
	if tr == nil {
		return nil
	}
	return tr.order
}

// Trace returns one transaction's trace, or nil.
func (tr *Tracer) Trace(id txn.ID) *TxnTrace {
	if tr == nil {
		return nil
	}
	return tr.txns[id]
}
