package trace

import (
	"fmt"
	"io"
	"strings"
	"time"

	"siteselect/internal/txn"
)

// MissTable aggregates missed transactions by the dominant component of
// their slack attribution — where the deadline budget mostly went.
type MissTable struct {
	// Missed counts the missed transactions attributed.
	Missed int64
	// ByCause counts missed transactions per dominant component.
	ByCause [NumComponents]int64
}

// Add merges o into m.
func (m *MissTable) Add(o *MissTable) {
	if o == nil {
		return
	}
	m.Missed += o.Missed
	for c := range o.ByCause {
		m.ByCause[c] += o.ByCause[c]
	}
}

// Share returns component c's fraction of the missed transactions.
func (m *MissTable) Share(c Component) float64 {
	if m.Missed == 0 {
		return 0
	}
	return float64(m.ByCause[c]) / float64(m.Missed)
}

// String renders the table as "cause count (percent)" rows.
func (m *MissTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "missed transactions by dominant cause (%d total)\n", m.Missed)
	for c := Component(0); c < NumComponents; c++ {
		fmt.Fprintf(&b, "  %-10s %7d  (%5.1f%%)\n", c.String(), m.ByCause[c], 100*m.Share(c))
	}
	return b.String()
}

// MissCauses classifies every finished missed transaction that arrived
// at or after warmup by its dominant attribution component.
func (tr *Tracer) MissCauses(warmup time.Duration) *MissTable {
	if tr == nil {
		return nil
	}
	m := &MissTable{}
	for _, tt := range tr.order {
		if !tt.Done || tt.Status != txn.StatusMissed || tt.Arrival < warmup {
			continue
		}
		m.Missed++
		m.ByCause[tt.DominantCause()]++
	}
	return m
}

// WriteAttribution writes the slack attribution report: one row per
// finished missed transaction (arrival at or after warmup, at most max
// rows; max <= 0 means all), with the per-component breakdown of its
// elapsed time and the aggregate miss-cause table.
func (tr *Tracer) WriteAttribution(w io.Writer, warmup time.Duration, max int) error {
	if tr == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "%-8s %-6s %12s %12s  %-9s  breakdown\n",
		"txn", "origin", "slack", "elapsed", "dominant"); err != nil {
		return err
	}
	rows := 0
	total := 0
	for _, tt := range tr.order {
		if !tt.Done || tt.Status != txn.StatusMissed || tt.Arrival < warmup {
			continue
		}
		total++
		if max > 0 && rows >= max {
			continue
		}
		rows++
		var parts []string
		for c := Component(0); c < NumComponents; c++ {
			if tt.Buckets[c] > 0 {
				parts = append(parts, fmt.Sprintf("%s=%v", c, tt.Buckets[c].Round(time.Microsecond)))
			}
		}
		if tt.BatchWait > 0 {
			// Itemized sub-bucket of lock-wait/network (see
			// TxnTrace.BatchWait); shown only when batching is on so
			// window-0 reports stay byte-identical.
			parts = append(parts, fmt.Sprintf("batch-wait=%v", tt.BatchWait.Round(time.Microsecond)))
		}
		if _, err := fmt.Fprintf(w, "%-8d %-6d %12v %12v  %-9s  %s\n",
			tt.ID, tt.Origin, tt.Deadline-tt.Arrival, tt.Elapsed(),
			tt.DominantCause(), strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	if max > 0 && total > rows {
		if _, err := fmt.Fprintf(w, "... %d more missed transactions\n", total-rows); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, tr.MissCauses(warmup).String())
	return err
}
