package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"siteselect/internal/txn"
)

func mkTxn(id int64, arrival, deadline time.Duration) *txn.Transaction {
	return &txn.Transaction{ID: txn.ID(id), Origin: 1, Arrival: arrival, Deadline: deadline}
}

// The closing-interval chain must tile [Arrival, Finished] exactly.
func TestAttributionSumsToElapsed(t *testing.T) {
	tr := New()
	x := mkTxn(1, 10*time.Millisecond, 100*time.Millisecond)
	tr.Submitted(x, 1, 10*time.Millisecond)
	tr.Mark(x.ID, 1, CompQueue, 25*time.Millisecond)
	tr.MarkWait(x.ID, 1, 55*time.Millisecond, 4*time.Millisecond) // 4ms net + 26ms lock
	tr.Mark(x.ID, 1, CompExec, 80*time.Millisecond)
	x.Status = txn.StatusCommitted
	tr.Finish(x, 1, 83*time.Millisecond) // 3ms residue joins exec
	tt := tr.Trace(x.ID)
	if !tt.Done {
		t.Fatal("trace not closed")
	}
	if err := tt.verify(); err != nil {
		t.Fatal(err)
	}
	want := map[Component]time.Duration{
		CompQueue:    15 * time.Millisecond,
		CompNet:      4 * time.Millisecond,
		CompLockWait: 26 * time.Millisecond,
		CompExec:     28 * time.Millisecond,
	}
	for c, w := range want {
		if tt.Buckets[c] != w {
			t.Errorf("bucket %v = %v, want %v", c, tt.Buckets[c], w)
		}
	}
	if err := tr.VerifyNewlyClosed(); err != nil {
		t.Fatal(err)
	}
	if err := tr.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

// MarkWait must clamp a measured transit larger than the interval, and
// retry segments land in their own bucket.
func TestMarkWaitClampAndRetry(t *testing.T) {
	tr := New()
	x := mkTxn(2, 0, time.Second)
	tr.Submitted(x, 1, 0)
	tr.MarkRetry(x.ID, 1, 20*time.Millisecond, 1)
	tr.MarkWait(x.ID, 1, 30*time.Millisecond, time.Hour) // transit >> interval
	x.Status = txn.StatusMissed
	tr.Finish(x, 1, 30*time.Millisecond)
	tt := tr.Trace(x.ID)
	if tt.Buckets[CompRetry] != 20*time.Millisecond {
		t.Fatalf("retry bucket = %v", tt.Buckets[CompRetry])
	}
	if tt.Buckets[CompNet] != 10*time.Millisecond || tt.Buckets[CompLockWait] != 0 {
		t.Fatalf("net/lock = %v/%v, want clamped 10ms/0", tt.Buckets[CompNet], tt.Buckets[CompLockWait])
	}
	if err := tt.verify(); err != nil {
		t.Fatal(err)
	}
	if tt.DominantCause() != CompRetry {
		t.Fatalf("dominant = %v", tt.DominantCause())
	}
}

// A nil tracer must be inert, and marks after Finish must not corrupt a
// closed trace.
func TestNilAndClosedSafety(t *testing.T) {
	var tr *Tracer
	x := mkTxn(3, 0, time.Second)
	tr.Submitted(x, 1, 0)
	tr.Mark(x.ID, 1, CompExec, time.Millisecond)
	tr.Finish(x, 1, time.Millisecond)
	if tr.Enabled() || tr.Traces() != nil || tr.MissCauses(0) != nil {
		t.Fatal("nil tracer should be inert")
	}
	if err := tr.VerifyAll(); err != nil {
		t.Fatal(err)
	}

	live := New()
	live.Submitted(x, 1, 0)
	x.Status = txn.StatusCommitted
	live.Finish(x, 1, 5*time.Millisecond)
	live.Mark(x.ID, 1, CompExec, 9*time.Millisecond) // late mark: ignored
	live.Finish(x, 1, 9*time.Millisecond)            // double finish: ignored
	tt := live.Trace(x.ID)
	if tt.Finished != 5*time.Millisecond {
		t.Fatalf("finished moved to %v", tt.Finished)
	}
	if err := tt.verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMissCausesWarmupFilter(t *testing.T) {
	tr := New()
	mkMissed := func(id int64, arrival time.Duration, comp Component) {
		x := mkTxn(id, arrival, arrival+10*time.Millisecond)
		tr.Submitted(x, 1, arrival)
		tr.Mark(x.ID, 1, comp, arrival+20*time.Millisecond)
		x.Status = txn.StatusMissed
		tr.Finish(x, 1, arrival+20*time.Millisecond)
	}
	mkMissed(1, 0, CompQueue) // before warmup: excluded
	mkMissed(2, time.Second, CompLockWait)
	mkMissed(3, 2*time.Second, CompLockWait)
	mkMissed(4, 3*time.Second, CompNet)
	// A committed transaction never counts.
	x := mkTxn(5, 4*time.Second, 5*time.Second)
	tr.Submitted(x, 1, 4*time.Second)
	x.Status = txn.StatusCommitted
	tr.Finish(x, 1, 4100*time.Millisecond)

	m := tr.MissCauses(500 * time.Millisecond)
	if m.Missed != 3 {
		t.Fatalf("missed = %d, want 3", m.Missed)
	}
	if m.ByCause[CompLockWait] != 2 || m.ByCause[CompNet] != 1 || m.ByCause[CompQueue] != 0 {
		t.Fatalf("by cause = %v", m.ByCause)
	}
	if !strings.Contains(m.String(), "lock-wait") {
		t.Fatalf("render missing cause name:\n%s", m)
	}
	var buf bytes.Buffer
	if err := tr.WriteAttribution(&buf, 500*time.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1 more missed") {
		t.Fatalf("report missing truncation note:\n%s", buf.String())
	}
}

// The Chrome export must be valid JSON with per-site process metadata
// and phase spans carrying durations.
func TestWriteChrome(t *testing.T) {
	tr := New()
	x := mkTxn(7, 0, 50*time.Millisecond)
	tr.Submitted(x, 1, 0)
	tr.Point(x.ID, 0, EvObjectShipped, 42, 1, 0, 2*time.Millisecond)
	tr.Mark(x.ID, 1, CompQueue, 5*time.Millisecond)
	x.Status = txn.StatusCommitted
	tr.Finish(x, 1, 9*time.Millisecond)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var phases, metas, instants int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			phases++
			if ev["dur"].(float64) <= 0 {
				t.Fatalf("phase span without duration: %v", ev)
			}
		case "M":
			metas++
		case "i":
			instants++
		}
	}
	if phases < 2 || metas != 2 || instants < 3 {
		t.Fatalf("events: %d phases, %d metas, %d instants\n%s", phases, metas, instants, buf.String())
	}
	var nilTr *Tracer
	if err := nilTr.WriteChrome(&buf); err == nil {
		t.Fatal("nil tracer export should error")
	}
}
