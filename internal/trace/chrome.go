package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"siteselect/internal/netsim"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (loadable by chrome://tracing and Perfetto). pid maps to a site track
// and tid to a transaction, so each site shows its transactions'
// attribution spans side by side.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// usOf converts a simulated duration to trace-event microseconds.
func usOf(d int64) float64 { return float64(d) / 1e3 }

// WriteChrome exports every trace as Chrome trace-event JSON: one
// process per site ("server", "client-N"), one thread per transaction,
// "X" complete events for the attribution phases, and instant events
// for the point timeline. Output order is deterministic.
func (tr *Tracer) WriteChrome(w io.Writer) error {
	if tr == nil {
		return fmt.Errorf("trace: tracer is nil (tracing was not enabled)")
	}
	sites := map[netsim.SiteID]bool{}
	var events []chromeEvent
	for _, tt := range tr.order {
		for _, ev := range tt.Events {
			sites[ev.Site] = true
			ce := chromeEvent{
				Name: ev.Type.String(),
				Cat:  "txn",
				Ts:   usOf(int64(ev.T)),
				Pid:  int64(ev.Site),
				Tid:  int64(tt.ID),
			}
			switch ev.Type {
			case EvPhase:
				ce.Ph = "X"
				ce.Name = ev.Comp.String()
				ce.Cat = "phase"
				ce.Dur = usOf(int64(ev.Dur))
			case EvFinished:
				ce.Ph = "i"
				ce.S = "t"
				ce.Args = map[string]any{
					"status":  ev.A,
					"elapsed": tt.Elapsed().String(),
				}
				for c := Component(0); c < NumComponents; c++ {
					if tt.Buckets[c] > 0 {
						ce.Args[c.String()] = tt.Buckets[c].String()
					}
				}
			default:
				ce.Ph = "i"
				ce.S = "t"
				args := map[string]any{}
				if ev.Obj != 0 || ev.Type == EvLockRequested || ev.Type == EvLockGranted {
					args["obj"] = int64(ev.Obj)
				}
				if ev.A != 0 {
					args["a"] = ev.A
				}
				if ev.B != 0 {
					args["b"] = ev.B
				}
				if len(args) > 0 {
					ce.Args = args
				}
			}
			events = append(events, ce)
		}
	}
	var meta []chromeEvent
	ordered := make([]netsim.SiteID, 0, len(sites))
	for s := range sites {
		ordered = append(ordered, s)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, s := range ordered {
		name := fmt.Sprintf("client-%d", s)
		if s == netsim.ServerSite {
			name = "server"
		}
		meta = append(meta, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  int64(s),
			Args: map[string]any{"name": name},
		})
	}
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{
		TraceEvents:     append(meta, events...),
		DisplayTimeUnit: "ms",
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
