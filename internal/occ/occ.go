// Package occ implements the optimistic concurrency control the paper's
// conclusion names as future work ("we intend to study the use of
// optimistic concurrency control and speculative transaction processing
// techniques"): Kung–Robinson style backward validation with version
// checking.
//
// A transaction runs in three phases. In the read phase it snapshots the
// versions of every object it touches and computes speculatively,
// holding no locks. At commit it validates: if any object it read
// changed since the snapshot, the transaction restarts (if its deadline
// still permits); otherwise its writes are installed atomically.
// Validation is serialized, which makes the version check a consistent
// cut.
//
// In a real-time setting the interesting trade is blocking versus wasted
// work: 2PL transactions wait for locks but never redo computation; OCC
// transactions never wait but may burn their slack re-executing. The
// cmd/rtbench "occ" experiment compares the two on the centralized
// system across update mixes.
package occ

import "siteselect/internal/lockmgr"

// Validator is the shared validation state: the committed version of
// every object. Validation calls must be externally serialized (the
// centralized engine runs them in a one-slot critical section).
type Validator struct {
	versions []int64

	// Validations and Conflicts count outcomes; Restarts counts
	// transactions sent back to their read phase.
	Validations int64
	Conflicts   int64
}

// NewValidator returns a validator over dbSize objects at version zero.
func NewValidator(dbSize int) *Validator {
	return &Validator{versions: make([]int64, dbSize)}
}

// Version returns the committed version of obj.
func (v *Validator) Version(obj lockmgr.ObjectID) int64 { return v.versions[obj] }

// ReadSet snapshots the versions of objs for a starting transaction.
func (v *Validator) ReadSet(objs []lockmgr.ObjectID) []int64 {
	out := make([]int64, len(objs))
	for i, obj := range objs {
		out[i] = v.versions[obj]
	}
	return out
}

// Validate checks a transaction's read snapshot against the current
// committed versions and, when valid, installs its writes (bumping their
// versions). It reports whether the transaction committed.
func (v *Validator) Validate(objs []lockmgr.ObjectID, snapshot []int64, writes []bool) bool {
	v.Validations++
	for i, obj := range objs {
		if v.versions[obj] != snapshot[i] {
			v.Conflicts++
			return false
		}
	}
	for i, obj := range objs {
		if writes[i] {
			v.versions[obj]++
		}
	}
	return true
}
