package occ

import (
	"testing"
	"testing/quick"

	"siteselect/internal/lockmgr"
)

func TestValidateCleanCommit(t *testing.T) {
	v := NewValidator(10)
	objs := []lockmgr.ObjectID{1, 2, 3}
	snap := v.ReadSet(objs)
	if !v.Validate(objs, snap, []bool{false, true, false}) {
		t.Fatal("unconflicted transaction failed validation")
	}
	if v.Version(2) != 1 || v.Version(1) != 0 {
		t.Fatalf("versions = %d/%d", v.Version(1), v.Version(2))
	}
	if v.Validations != 1 || v.Conflicts != 0 {
		t.Fatalf("counters = %d/%d", v.Validations, v.Conflicts)
	}
}

func TestValidateDetectsConflict(t *testing.T) {
	v := NewValidator(10)
	objs := []lockmgr.ObjectID{5}
	snapA := v.ReadSet(objs)
	snapB := v.ReadSet(objs)
	if !v.Validate(objs, snapA, []bool{true}) {
		t.Fatal("first writer should commit")
	}
	if v.Validate(objs, snapB, []bool{true}) {
		t.Fatal("second writer read a stale version and must fail")
	}
	if v.Conflicts != 1 {
		t.Fatalf("conflicts = %d", v.Conflicts)
	}
	// After re-reading, the restarted transaction commits.
	snapB2 := v.ReadSet(objs)
	if !v.Validate(objs, snapB2, []bool{true}) {
		t.Fatal("restarted transaction should commit")
	}
	if v.Version(5) != 2 {
		t.Fatalf("version = %d", v.Version(5))
	}
}

func TestReadOnlyTransactionsNeverConflictWithEachOther(t *testing.T) {
	v := NewValidator(4)
	objs := []lockmgr.ObjectID{0, 1, 2, 3}
	reads := []bool{false, false, false, false}
	s1 := v.ReadSet(objs)
	s2 := v.ReadSet(objs)
	if !v.Validate(objs, s1, reads) || !v.Validate(objs, s2, reads) {
		t.Fatal("read-only transactions conflicted")
	}
}

// Property: serial validation order defines a serializable history —
// every committed transaction saw the versions current at its commit
// point, i.e. a snapshot that no committed writer invalidated.
func TestSerialValidationProperty(t *testing.T) {
	type step struct {
		Obj   uint8
		Write bool
		Stale bool // validate against an old snapshot
	}
	f := func(steps []step) bool {
		v := NewValidator(8)
		old := v.ReadSet([]lockmgr.ObjectID{0, 1, 2, 3, 4, 5, 6, 7})
		for _, st := range steps {
			obj := lockmgr.ObjectID(st.Obj % 8)
			objs := []lockmgr.ObjectID{obj}
			var snap []int64
			if st.Stale {
				snap = []int64{old[obj]}
			} else {
				snap = v.ReadSet(objs)
			}
			committed := v.Validate(objs, snap, []bool{st.Write})
			current := v.Version(obj)
			if committed && st.Write && current == snap[0] {
				return false // write committed without bumping
			}
			if !committed && snap[0] == current {
				return false // rejected although the snapshot was current
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
