package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.StdDev() != 0 || s.StdErr() != 0 || s.CI95() != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestKnownValues(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	// Sample (n-1) standard deviation of this classic set is ~2.138.
	if sd := s.StdDev(); math.Abs(sd-2.13809) > 1e-4 {
		t.Fatalf("stddev = %v", sd)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

// TestCI95HandComputed checks the 95% confidence half-width against
// values worked out by hand with the Student-t table.
func TestCI95HandComputed(t *testing.T) {
	cases := []struct {
		vals []float64
		mean float64
		ci   float64
	}{
		// sd = sqrt(10), se = sqrt(2), t(4) = 2.776:
		// ci = 2.776 * 1.4142135... = 3.9258...
		{[]float64{10, 12, 14, 16, 18}, 14, 2.776 * math.Sqrt2},
		// sd = 1, se = 1/sqrt(3), t(2) = 4.303.
		{[]float64{1, 2, 3}, 2, 4.303 / math.Sqrt(3)},
		// Two observations: sd = sqrt(2)/sqrt(1) * |d|/sqrt(2)... simply
		// sd = |5-3|/sqrt(2) = sqrt(2), se = 1, t(1) = 12.706.
		{[]float64{3, 5}, 4, 12.706},
	}
	for _, c := range cases {
		var s Sample
		for _, v := range c.vals {
			s.Add(v)
		}
		if got := s.Mean(); math.Abs(got-c.mean) > 1e-9 {
			t.Fatalf("vals %v: mean = %v, want %v", c.vals, got, c.mean)
		}
		if got := s.CI95(); math.Abs(got-c.ci) > 1e-9 {
			t.Fatalf("vals %v: ci95 = %v, want %v", c.vals, got, c.ci)
		}
	}
}

// A single replication has no spread estimate: the CI half-width must
// degenerate to zero, so Reps=1 renders as a bare mean.
func TestSingleObservation(t *testing.T) {
	var s Sample
	s.Add(3.5)
	if s.Mean() != 3.5 || s.StdDev() != 0 || s.CI95() != 0 {
		t.Fatalf("single-observation stats wrong: %v %v %v", s.Mean(), s.StdDev(), s.CI95())
	}
}

func TestConstantSample(t *testing.T) {
	var s Sample
	for i := 0; i < 10; i++ {
		s.Add(7)
	}
	if s.StdDev() != 0 || s.CI95() != 0 {
		t.Fatalf("constant sample has spread: %v", s.StdDev())
	}
}

func TestTCriticalMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 40; df++ {
		c := tCritical(df)
		if c > prev {
			t.Fatalf("t critical not nonincreasing at df=%d: %v > %v", df, c, prev)
		}
		prev = c
	}
	if tCritical(1000) != 1.96 {
		t.Fatal("large-df critical should be 1.96")
	}
}

// TestTCriticalBoundary pins the handoff from the Student-t table to
// the normal critical value: df 30 is the last tabulated entry (2.042)
// and df 31 falls back to 1.96.
func TestTCriticalBoundary(t *testing.T) {
	if got := tCritical(30); got != 2.042 {
		t.Fatalf("tCritical(30) = %v, want 2.042", got)
	}
	if got := tCritical(31); got != 1.96 {
		t.Fatalf("tCritical(31) = %v, want 1.96", got)
	}
	// A 32-observation sample has df 31 and therefore a plain normal
	// half-width: 1.96 × StdErr.
	var s Sample
	for i := 0; i < 16; i++ {
		s.Add(0)
		s.Add(1)
	}
	if got, want := s.CI95(), 1.96*s.StdErr(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CI95 at df 31 = %v, want %v", got, want)
	}
}

// Property: mean lies within [min, max] and CI95 is non-negative.
func TestSampleBoundsProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-6 && m <= s.Max()+1e-6 && s.CI95() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
