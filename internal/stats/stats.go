// Package stats provides the small-sample statistics used when
// experiments are replicated across seeds: means, standard deviations,
// and Student-t confidence half-widths (the t table falls back to the
// normal critical value 1.96 beyond 30 degrees of freedom).
package stats

import "math"

// Sample accumulates observations of one scalar metric.
type Sample struct {
	n    int
	sum  float64
	sumq float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumq += v * v
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (zero when empty).
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min and Max return the observed extremes.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.max }

// StdDev returns the sample standard deviation (n−1 denominator; zero
// for fewer than two observations).
func (s *Sample) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	mean := s.Mean()
	variance := (s.sumq - float64(s.n)*mean*mean) / float64(s.n-1)
	if variance < 0 {
		variance = 0 // numerical noise
	}
	return math.Sqrt(variance)
}

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if s.n < 2 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of a ~95% confidence interval for the
// mean, using Student-t critical values for small samples.
func (s *Sample) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return tCritical(s.n-1) * s.StdErr()
}

// tCritical returns the two-sided 95% Student-t critical value for the
// given degrees of freedom (normal approximation past the table).
func tCritical(df int) float64 {
	table := []float64{
		0,                                                             // df 0 (unused)
		12.706,                                                        // 1
		4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, // 2..10
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, // 11..20
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042, // 21..30
	}
	if df <= 0 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}
