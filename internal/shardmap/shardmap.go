// Package shardmap is the shared runtime view of the server topology:
// which shard is an object's home, and where its read replica (if any)
// currently lives. One Map instance is shared by reference between the
// clients and every server shard of a cluster — the simulation is
// single-threaded, so shards publish replica registrations and clients
// observe them without any messaging, exactly like the shared peer
// mailbox table.
//
// Shard k occupies site ID -k: shard 0 keeps netsim.ServerSite (0), so
// a single-shard topology is bit-for-bit the paper's client/server
// model, and client sites (1..N) never collide with shard sites.
package shardmap

import (
	"siteselect/internal/config"
	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
)

// ShardSite returns the network site ID of shard k.
func ShardSite(k int) netsim.SiteID { return netsim.SiteID(-k) }

// ShardIndex returns the shard index of a shard site ID.
func ShardIndex(s netsim.SiteID) int { return int(-s) }

// IsShardSite reports whether s addresses a server shard (clients are
// strictly positive).
func IsShardSite(s netsim.SiteID) bool { return s <= netsim.ServerSite }

// Map resolves objects to shards. The replica registry mutates during
// the run as shards gain and shed replicas.
type Map struct {
	topo     config.Topology
	servers  int
	replicas map[lockmgr.ObjectID]netsim.SiteID
}

// New builds the runtime map for a topology.
func New(t config.Topology) *Map {
	return &Map{topo: t, servers: t.NumServers()}
}

// Servers returns the shard count M (at least 1).
func (m *Map) Servers() int { return m.servers }

// Multi reports whether more than one shard exists.
func (m *Map) Multi() bool { return m.servers > 1 }

// HomeShard returns the index of the shard owning obj.
func (m *Map) HomeShard(obj lockmgr.ObjectID) int {
	return m.topo.Shard(int(obj))
}

// HomeSite returns the site ID of the shard owning obj.
func (m *Map) HomeSite(obj lockmgr.ObjectID) netsim.SiteID {
	return ShardSite(m.HomeShard(obj))
}

// RouteSite returns where a client should send a request for obj:
// shared-mode requests are served by the object's active read replica
// when one is registered, everything else goes to the home shard.
func (m *Map) RouteSite(obj lockmgr.ObjectID, shared bool) netsim.SiteID {
	if shared {
		if s, ok := m.replicas[obj]; ok {
			return s
		}
	}
	return m.HomeSite(obj)
}

// Replica returns the site of obj's active read replica, if registered.
func (m *Map) Replica(obj lockmgr.ObjectID) (netsim.SiteID, bool) {
	s, ok := m.replicas[obj]
	return s, ok
}

// SetReplica registers site as obj's read replica.
func (m *Map) SetReplica(obj lockmgr.ObjectID, site netsim.SiteID) {
	if m.replicas == nil {
		m.replicas = make(map[lockmgr.ObjectID]netsim.SiteID)
	}
	m.replicas[obj] = site
}

// ClearReplica withdraws obj's replica registration; subsequent reads
// route to the home shard again.
func (m *Map) ClearReplica(obj lockmgr.ObjectID) { delete(m.replicas, obj) }

// ReplicaCount returns how many objects currently have a registered
// replica.
func (m *Map) ReplicaCount() int { return len(m.replicas) }
