package shardmap

import (
	"testing"

	"siteselect/internal/config"
	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
)

func TestShardSites(t *testing.T) {
	if ShardSite(0) != netsim.ServerSite {
		t.Fatalf("ShardSite(0) = %d, want ServerSite", ShardSite(0))
	}
	for k := 0; k < 5; k++ {
		s := ShardSite(k)
		if !IsShardSite(s) {
			t.Fatalf("IsShardSite(%d) = false for shard %d", s, k)
		}
		if got := ShardIndex(s); got != k {
			t.Fatalf("ShardIndex(ShardSite(%d)) = %d", k, got)
		}
	}
	if IsShardSite(1) {
		t.Fatal("client site 1 must not be a shard site")
	}
}

func TestSingleShardRouting(t *testing.T) {
	m := New(config.Topology{})
	if m.Servers() != 1 || m.Multi() {
		t.Fatalf("single topology: Servers=%d Multi=%v", m.Servers(), m.Multi())
	}
	for obj := lockmgr.ObjectID(0); obj < 20; obj++ {
		if m.HomeSite(obj) != netsim.ServerSite {
			t.Fatalf("HomeSite(%d) = %d, want ServerSite", obj, m.HomeSite(obj))
		}
		if m.RouteSite(obj, true) != netsim.ServerSite {
			t.Fatalf("RouteSite(%d) shifted off the single server", obj)
		}
	}
}

func TestReplicaRouting(t *testing.T) {
	m := New(config.Topology{Servers: 4})
	obj := lockmgr.ObjectID(5)
	home := m.HomeSite(obj)
	if home != ShardSite(1) {
		t.Fatalf("HomeSite(5) = %d, want shard 1 (5 mod 4)", home)
	}
	if got := m.RouteSite(obj, true); got != home {
		t.Fatalf("RouteSite without replica = %d, want home %d", got, home)
	}
	m.SetReplica(obj, ShardSite(3))
	if got := m.RouteSite(obj, true); got != ShardSite(3) {
		t.Fatalf("shared RouteSite with replica = %d, want shard 3", got)
	}
	if got := m.RouteSite(obj, false); got != home {
		t.Fatalf("exclusive RouteSite must ignore the replica, got %d", got)
	}
	if n := m.ReplicaCount(); n != 1 {
		t.Fatalf("ReplicaCount = %d, want 1", n)
	}
	m.ClearReplica(obj)
	if got := m.RouteSite(obj, true); got != home {
		t.Fatalf("RouteSite after ClearReplica = %d, want home %d", got, home)
	}
}
