// Package metrics aggregates the quantities the paper reports: the
// percentage of transactions completing within their deadlines (the key
// real-time measure), object response times split by requested lock
// mode (Table 3), client cache hit rates (Table 2), and the
// protocol-level counters behind Table 4.
package metrics

import (
	"time"

	"siteselect/internal/lockmgr"
	"siteselect/internal/txn"
)

// DurStats accumulates a duration sample.
type DurStats struct {
	Count int64
	Total time.Duration
	Max   time.Duration
}

// Observe adds one sample.
func (d *DurStats) Observe(v time.Duration) {
	d.Count++
	d.Total += v
	if v > d.Max {
		d.Max = v
	}
}

// Mean returns the sample mean (zero when empty).
func (d *DurStats) Mean() time.Duration {
	if d.Count == 0 {
		return 0
	}
	return d.Total / time.Duration(d.Count)
}

// Collector gathers a run's statistics. It is not safe for concurrent
// use; the simulation is single-threaded by construction.
type Collector struct {
	// Transaction outcomes.
	Submitted int64
	Committed int64
	Missed    int64
	Aborted   int64

	// Load sharing activity.
	ShippedTxns    int64
	DecomposedTxns int64
	SubtasksRun    int64
	H1Rejections   int64

	// Cache behaviour at the executing site.
	CacheAccesses int64
	CacheHits     int64

	// Object response times by requested mode: request sent to object
	// available at the client. The histograms add tail percentiles.
	SharedResponse    DurStats
	ExclusiveResponse DurStats
	SharedHisto       Histogram
	ExclusiveHisto    Histogram

	// Transaction response time (arrival to commit) for committed
	// transactions.
	TxnResponse DurStats
	TxnHisto    Histogram

	// Recall handling.
	RecallsDeferred int64
	Refetches       int64

	// Speculation extension counters: attempts that overlapped
	// execution with in-flight upgrades, and how many validated.
	SpeculativeRuns int64
	SpeculationHits int64

	shipped classStats
}

// Per-class outcome counts for shipped transactions, letting experiments
// verify that load sharing helps the transactions it moves.
type classStats struct {
	Submitted int64
	Committed int64
}

// ShippedOutcomes tracks transactions the load-sharing algorithm moved.
func (c *Collector) ShippedOutcomes() (submitted, committed int64) {
	return c.shipped.Submitted, c.shipped.Committed
}

// RecordOutcome tallies a terminal transaction.
func (c *Collector) RecordOutcome(t *txn.Transaction) {
	if t.Shipped {
		c.shipped.Submitted++
		if t.Status == txn.StatusCommitted {
			c.shipped.Committed++
		}
	}
	switch t.Status {
	case txn.StatusCommitted:
		c.Committed++
		c.TxnResponse.Observe(t.Finished - t.Arrival)
		c.TxnHisto.Observe(t.Finished - t.Arrival)
	case txn.StatusMissed:
		c.Missed++
	case txn.StatusAborted:
		c.Aborted++
	}
}

// RecordResponse tallies one satisfied object request.
func (c *Collector) RecordResponse(mode lockmgr.Mode, d time.Duration) {
	if mode == lockmgr.ModeExclusive {
		c.ExclusiveResponse.Observe(d)
		c.ExclusiveHisto.Observe(d)
	} else {
		c.SharedResponse.Observe(d)
		c.SharedHisto.Observe(d)
	}
}

// RecordCacheAccess tallies one object access at the executing site.
func (c *Collector) RecordCacheAccess(hit bool) {
	c.CacheAccesses++
	if hit {
		c.CacheHits++
	}
}

// SuccessRate returns the fraction of submitted transactions that
// committed within their deadlines — the paper's primary metric.
func (c *Collector) SuccessRate() float64 {
	if c.Submitted == 0 {
		return 0
	}
	return float64(c.Committed) / float64(c.Submitted)
}

// CacheHitRate returns the fraction of accesses served locally.
func (c *Collector) CacheHitRate() float64 {
	if c.CacheAccesses == 0 {
		return 0
	}
	return float64(c.CacheHits) / float64(c.CacheAccesses)
}
