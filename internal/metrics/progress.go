package metrics

import (
	"sync"
	"time"
)

// CellDone reports the completion of one experiment cell — a single
// independent simulation in a fanned-out experiment grid.
type CellDone struct {
	// Label identifies the cell (experiment, system, operating point,
	// replication).
	Label string
	// Elapsed is the cell's wall-clock running time.
	Elapsed time.Duration
	// Done and Total are the grid's completion count after this cell
	// and its overall size.
	Done, Total int
}

// ProgressFunc observes cell completions. The experiment harness
// serializes calls, so implementations need no locking of their own.
type ProgressFunc func(CellDone)

// WallClock accumulates per-cell wall-clock timings across a run. It is
// safe for concurrent use by the worker pool.
type WallClock struct {
	mu sync.Mutex
	d  DurStats
}

// Observe records one cell's wall-clock time.
func (w *WallClock) Observe(d time.Duration) {
	w.mu.Lock()
	w.d.Observe(d)
	w.mu.Unlock()
}

// Stats returns a snapshot of the accumulated timings.
func (w *WallClock) Stats() DurStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.d
}
