package metrics

import (
	"math"
	"math/bits"
	"time"
)

// Histogram is a log₂-bucketed latency histogram: bucket i holds
// durations in [2^i, 2^(i+1)) microseconds. Quantiles are answered with
// the upper bound of the containing bucket, i.e. within a factor of two
// — ample for the order-of-magnitude latency comparisons the
// experiments make.
type Histogram struct {
	buckets [40]int64
	count   int64
}

func bucketOf(d time.Duration) int {
	// Negative durations (a clock-skewed or misordered span) clamp to
	// the first bucket; the guard below must stay before the uint64
	// conversion, which would otherwise wrap them to huge bit lengths.
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	b := bits.Len64(uint64(us)) - 1
	if b >= len(Histogram{}.buckets) {
		b = len(Histogram{}.buckets) - 1
	}
	return b
}

// Observe adds one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketOf(d)]++
	h.count++
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1), or
// zero for an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// The q-quantile upper bound is the ceiling rank: with 10 samples,
	// P95 must look at the 10th order statistic, not truncate to the
	// 9th (which is the 90th percentile).
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen >= rank {
			return time.Duration(int64(1)<<(i+1)) * time.Microsecond
		}
	}
	return time.Duration(int64(1)<<len(h.buckets)) * time.Microsecond
}

// P50, P95 and P99 are convenience quantiles.
func (h *Histogram) P50() time.Duration { return h.Quantile(0.50) }

// P95 returns the 95th percentile upper bound.
func (h *Histogram) P95() time.Duration { return h.Quantile(0.95) }

// P99 returns the 99th percentile upper bound.
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }
