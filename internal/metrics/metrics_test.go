package metrics

import (
	"testing"
	"time"

	"siteselect/internal/lockmgr"
	"siteselect/internal/txn"
)

func TestDurStats(t *testing.T) {
	var d DurStats
	if d.Mean() != 0 {
		t.Fatal("empty mean should be zero")
	}
	d.Observe(2 * time.Second)
	d.Observe(4 * time.Second)
	if d.Mean() != 3*time.Second {
		t.Fatalf("mean = %v", d.Mean())
	}
	if d.Max != 4*time.Second || d.Count != 2 {
		t.Fatalf("max=%v count=%d", d.Max, d.Count)
	}
}

func TestRecordOutcome(t *testing.T) {
	c := &Collector{}
	mk := func(status txn.Status, shipped bool) *txn.Transaction {
		return &txn.Transaction{
			Status: status, Shipped: shipped,
			Arrival: time.Second, Finished: 3 * time.Second,
		}
	}
	c.RecordOutcome(mk(txn.StatusCommitted, false))
	c.RecordOutcome(mk(txn.StatusCommitted, true))
	c.RecordOutcome(mk(txn.StatusMissed, true))
	c.RecordOutcome(mk(txn.StatusAborted, false))
	if c.Committed != 2 || c.Missed != 1 || c.Aborted != 1 {
		t.Fatalf("outcomes = %d/%d/%d", c.Committed, c.Missed, c.Aborted)
	}
	ss, sc := c.ShippedOutcomes()
	if ss != 2 || sc != 1 {
		t.Fatalf("shipped outcomes = %d/%d", ss, sc)
	}
	if c.TxnResponse.Count != 2 || c.TxnResponse.Mean() != 2*time.Second {
		t.Fatalf("txn response = %+v", c.TxnResponse)
	}
}

func TestSuccessRate(t *testing.T) {
	c := &Collector{}
	if c.SuccessRate() != 0 {
		t.Fatal("empty success rate should be zero")
	}
	c.Submitted = 4
	c.Committed = 3
	if got := c.SuccessRate(); got != 0.75 {
		t.Fatalf("success = %v", got)
	}
}

func TestResponseByMode(t *testing.T) {
	c := &Collector{}
	c.RecordResponse(lockmgr.ModeShared, 10*time.Millisecond)
	c.RecordResponse(lockmgr.ModeExclusive, 100*time.Millisecond)
	c.RecordResponse(lockmgr.ModeExclusive, 200*time.Millisecond)
	if c.SharedResponse.Count != 1 || c.ExclusiveResponse.Count != 2 {
		t.Fatalf("counts = %d/%d", c.SharedResponse.Count, c.ExclusiveResponse.Count)
	}
	if c.ExclusiveResponse.Mean() != 150*time.Millisecond {
		t.Fatalf("EL mean = %v", c.ExclusiveResponse.Mean())
	}
}

func TestCacheHitRate(t *testing.T) {
	c := &Collector{}
	if c.CacheHitRate() != 0 {
		t.Fatal("empty hit rate should be zero")
	}
	c.RecordCacheAccess(true)
	c.RecordCacheAccess(true)
	c.RecordCacheAccess(false)
	c.RecordCacheAccess(true)
	if got := c.CacheHitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be zero")
	}
	// 90 fast samples (~1ms), 10 slow (~1s).
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Second)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if p50 := h.P50(); p50 > 4*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1-2ms bound", p50)
	}
	if p99 := h.P99(); p99 < 500*time.Millisecond {
		t.Fatalf("p99 = %v, want >= slow bucket", p99)
	}
	// Quantile bounds are monotone.
	last := time.Duration(0)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99, 1} {
		v := h.Quantile(q)
		if v < last {
			t.Fatalf("quantile not monotone at %v", q)
		}
		last = v
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(0)               // below a microsecond
	h.Observe(300 * time.Hour) // beyond the top bucket
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Quantile(1) == 0 {
		t.Fatal("max quantile should be nonzero")
	}
}
