package metrics

import (
	"testing"
	"time"
)

// fill observes fast samples of ~1ms (bucket upper bound 1.024ms) and
// slow samples of ~1s (bucket upper bound ~1.049s) so a quantile answer
// unambiguously identifies which order statistic was consulted.
func fill(h *Histogram, fast, slow int) {
	for i := 0; i < fast; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < slow; i++ {
		h.Observe(time.Second)
	}
}

// TestQuantileCeilingRank pins the upper-bound rank convention: the
// q-quantile of n samples consults order statistic ceil(q·n). The
// pre-fix truncating rank int64(q·n) turned P95 of 10 samples into the
// 9th order statistic (the 90th percentile) — with 9 fast and 1 slow
// sample it reported the fast bucket and this test fails.
func TestQuantileCeilingRank(t *testing.T) {
	fastBound := 1024 * time.Microsecond                 // 1ms rounds up to 2^10 µs
	slowBound := time.Duration(1<<20) * time.Microsecond // 1s rounds up to 2^20 µs
	cases := []struct {
		name       string
		fast, slow int
		q          float64
		want       time.Duration
	}{
		// count 10: ceil(9.5)=10 and ceil(9.9)=10 → both hit the slow
		// sample; truncation gave rank 9 (fast) for both.
		{"p95 of 10", 9, 1, 0.95, slowBound},
		{"p99 of 10", 9, 1, 0.99, slowBound},
		// count 20: ceil(19)=19 stays fast, ceil(19.8)=20 is slow;
		// truncation gave 19 (fast) for both.
		{"p95 of 20", 19, 1, 0.95, fastBound},
		{"p99 of 20", 19, 1, 0.99, slowBound},
		// count 100: exact products — ceil changes nothing and the
		// 95th/99th order statistics are both fast samples.
		{"p95 of 100", 99, 1, 0.95, fastBound},
		{"p99 of 100", 99, 1, 0.99, fastBound},
		{"p100 of 100", 99, 1, 1.0, slowBound},
	}
	for _, c := range cases {
		var h Histogram
		fill(&h, c.fast, c.slow)
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

// The rank must clamp to count even for q slightly above 1 after
// floating-point noise, and to 1 for tiny q.
func TestQuantileRankClamps(t *testing.T) {
	var h Histogram
	fill(&h, 3, 0)
	if got := h.Quantile(1.5); got != 1024*time.Microsecond {
		t.Fatalf("q>1: got %v", got)
	}
	if got := h.Quantile(0.0001); got != 1024*time.Microsecond {
		t.Fatalf("tiny q: got %v", got)
	}
	if got := h.Quantile(-1); got != 1024*time.Microsecond {
		t.Fatalf("negative q: got %v", got)
	}
}

// Negative durations (clock-skewed spans) must clamp into the first
// bucket rather than wrapping through the uint64 conversion.
func TestHistogramNegativeDuration(t *testing.T) {
	if b := bucketOf(-5 * time.Second); b != 0 {
		t.Fatalf("negative duration bucket = %d, want 0", b)
	}
	if b := bucketOf(-time.Nanosecond); b != 0 {
		t.Fatalf("negative nanosecond bucket = %d, want 0", b)
	}
	var h Histogram
	h.Observe(-time.Hour)
	h.Observe(-time.Microsecond)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	// Both land in bucket 0, whose upper bound is 2µs.
	if got := h.Quantile(1); got != 2*time.Microsecond {
		t.Fatalf("quantile of negatives = %v, want 2µs", got)
	}
}
