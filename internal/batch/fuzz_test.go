package batch

import (
	"fmt"
	"testing"
	"time"

	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
	"siteselect/internal/sim"
	"siteselect/internal/txn"
)

// FuzzBatchSchedule drives a Scheduler over a real lock table with a
// fuzzer-chosen collection window and request stream, and checks the
// three properties the batching layer claims:
//
//   - request conservation: every request entered is resolved to
//     exactly one outcome or still pending (Audit, checked after every
//     flush and at the end, when the pending queue must be empty);
//   - grant exactly-once: no (client, txn, object) request is ever
//     granted twice, whether at the sink or by a later queue promotion;
//   - compatibility of simultaneous grants: all locks granted to
//     distinct owners within one flush of one object are mutually
//     compatible.
//
// The input encodes the window in the first byte and one enqueue op per
// following byte pair: the op's arrival offset, client, mode, object,
// and deadline slack all derive from the bytes, so the fuzzer explores
// window boundaries (slack can expire mid-window), write/write
// conflicts, upgrades, and deadline-ordered flushes.
func FuzzBatchSchedule(f *testing.F) {
	f.Add([]byte{0})                                                 // zero window, no ops
	f.Add([]byte{3, 0x11, 0x00, 0x29, 0x41})                         // 75ms window, two conflicting clients
	f.Add([]byte{1, 0x08, 0xf3, 0x08, 0xf3})                         // re-entrant exclusive from one client
	f.Add([]byte{7, 0x01, 0x03, 0x02, 0x03, 0x03, 0x03, 0x04, 0x03}) // shared pile-up on one object
	f.Add([]byte{2, 0x10, 0x02, 0x18, 0x02, 0x11, 0x12, 0x19, 0x12}) // mixed modes, two objects
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		window := time.Duration(data[0]%8) * 25 * time.Millisecond
		ops := data[1:]
		if len(ops) > 128 {
			ops = ops[:128]
		}
		nOps := len(ops) / 2

		env := sim.NewEnv()
		table := lockmgr.NewTable()
		table.Reserve(16)

		// grants counts how often each request key was granted, at the
		// sink or via a Release promotion; flushGrants collects the
		// (owner, obj, mode) grants of the in-progress flush.
		type grant struct {
			owner lockmgr.OwnerID
			obj   lockmgr.ObjectID
			mode  lockmgr.Mode
		}
		type key struct {
			client netsim.SiteID
			id     txn.ID
			obj    lockmgr.ObjectID
		}
		grants := make(map[key]int)
		var flushGrants []grant
		inFlush := false

		const hold = 40 * time.Millisecond
		var release func(obj lockmgr.ObjectID, owner lockmgr.OwnerID)
		release = func(obj lockmgr.ObjectID, owner lockmgr.OwnerID) {
			for _, p := range table.Release(obj, owner) {
				k := p.Tag.(key)
				grants[k]++
				if grants[k] > 1 {
					t.Fatalf("request %+v granted %d times (promotion)", k, grants[k])
				}
				promoted := p
				env.Schedule(hold, func() { release(promoted.Obj, promoted.Owner) })
			}
		}

		var sched *Scheduler
		sink := func(r Request) Outcome {
			now := env.Now()
			if r.Deadline <= now {
				return OutDeniedExpired
			}
			k := key{client: r.Client, id: r.Txn, obj: r.Obj}
			out, _ := table.Lock(&lockmgr.Request{
				Obj:      r.Obj,
				Owner:    lockmgr.OwnerID(r.Client),
				Mode:     r.Mode,
				Deadline: r.Deadline,
				Tag:      k,
			})
			switch out {
			case lockmgr.Granted:
				grants[k]++
				if grants[k] > 1 {
					t.Fatalf("request %+v granted %d times (sink)", k, grants[k])
				}
				if inFlush {
					flushGrants = append(flushGrants, grant{owner: lockmgr.OwnerID(r.Client), obj: r.Obj, mode: r.Mode})
				}
				obj, owner := r.Obj, lockmgr.OwnerID(r.Client)
				env.Schedule(hold, func() { release(obj, owner) })
				return OutGranted
			case lockmgr.Queued:
				return OutQueued
			default:
				return OutDeniedDeadlock
			}
		}
		sched = NewScheduler(env, window, sink)
		sched.BeginFlush = func(int) {
			inFlush = true
			flushGrants = flushGrants[:0]
		}
		sched.EndFlush = func() {
			inFlush = false
			for i, a := range flushGrants {
				for _, b := range flushGrants[:i] {
					if a.obj == b.obj && a.owner != b.owner && !lockmgr.Compatible(a.mode, b.mode) {
						t.Fatalf("flush granted %v to owner %d and %v to owner %d on object %d simultaneously",
							a.mode, a.owner, b.mode, b.owner, a.obj)
					}
				}
			}
			if err := table.Audit(); err != nil {
				t.Fatalf("lock table after flush: %v", err)
			}
			if err := sched.Audit(); err != nil {
				t.Fatal(err)
			}
		}

		at := time.Duration(0)
		for i := 0; i < nOps; i++ {
			b0, b1 := ops[2*i], ops[2*i+1]
			at += time.Duration(b0>>4) * 5 * time.Millisecond
			r := Request{
				Client:   netsim.SiteID(b0&0x07) + 1,
				Txn:      txn.ID(i + 1),
				Obj:      lockmgr.ObjectID(b1 & 0x0f),
				Mode:     lockmgr.ModeShared,
				Deadline: at + time.Duration(b1>>4)*20*time.Millisecond,
			}
			if b0&0x08 != 0 {
				r.Mode = lockmgr.ModeExclusive
			}
			env.Schedule(at, func() { sched.Add(r) })
		}
		env.RunAll()

		if sched.PendingLen() != 0 {
			t.Fatalf("%d requests still pending after the event queue drained", sched.PendingLen())
		}
		if sched.Entered != int64(nOps) {
			t.Fatalf("scheduler entered %d requests, enqueued %d", sched.Entered, nOps)
		}
		if err := sched.Audit(); err != nil {
			t.Fatal(err)
		}
		var resolved int64
		for out, n := range sched.Resolved {
			if n < 0 {
				t.Fatalf("negative count %d for outcome %v", n, Outcome(out))
			}
			resolved += n
		}
		if resolved != int64(nOps) {
			t.Fatalf("resolved %d of %d requests: %v", resolved, nOps, outcomeCounts(sched))
		}
		if err := table.Audit(); err != nil {
			t.Fatalf("final lock table: %v", err)
		}
		for k, n := range grants {
			if n > 1 {
				t.Fatalf("request %+v granted %d times", k, n)
			}
		}
	})
}

func outcomeCounts(s *Scheduler) string {
	out := ""
	for i, n := range s.Resolved {
		if n != 0 {
			out += fmt.Sprintf(" %v=%d", Outcome(i), n)
		}
	}
	return out
}
