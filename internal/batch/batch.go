// Package batch implements the server-side request batching layer
// (Config.BatchWindow): firm object requests arriving at the server
// accumulate for one collection window on the simulated clock, then the
// whole batch is resolved in a single pass — every mutually compatible
// lock is granted together, and the server coalesces the resulting
// ships and recalls per destination into single messages.
//
// The Scheduler is deliberately policy-free: it owns only the window
// timing, the flush ordering, and the conservation accounting. What a
// request *becomes* (grant, queue, forward-list join, deny) is decided
// by the sink callback the server installs, which reports the outcome
// back so the Scheduler can prove that every request entering a window
// leaves it exactly once.
//
// A zero window degenerates to a synchronous inline call of the sink
// from Add: no event is scheduled, no state is buffered, and the
// simulation's event sequence is byte-identical to a build without the
// batching layer. This is the equivalence the differential corpus test
// (TestCorpusBatchWindowZero) pins against the scenario goldens.
package batch

import (
	"fmt"
	"sort"
	"time"

	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
	"siteselect/internal/sim"
	"siteselect/internal/txn"
)

// Request is one firm object request parked in the batch window.
type Request struct {
	Client   netsim.SiteID
	Txn      txn.ID
	Obj      lockmgr.ObjectID
	Mode     lockmgr.Mode
	Deadline time.Duration
	// Enqueued is when the request entered the window (stamped by Add);
	// the sink charges now-Enqueued to the transaction's batch-wait
	// trace sub-bucket.
	Enqueued time.Duration
	seq      uint64
}

// Outcome is the sink's report of what a flushed request became. Every
// request resolves to exactly one outcome; the Scheduler tallies them
// and Audit checks conservation against the entry count.
type Outcome uint8

const (
	// OutDeniedExpired: deadline already passed at service time.
	OutDeniedExpired Outcome = iota
	// OutDupServed: a retransmitted request answered idempotently from
	// existing server state (fault injection only).
	OutDupServed
	// OutListed: joined the object's forward list (load sharing).
	OutListed
	// OutGranted: lock granted, object ship issued.
	OutGranted
	// OutQueued: blocked behind the current holders, callbacks issued.
	OutQueued
	// OutDeniedDeadlock: refused by deadlock avoidance.
	OutDeniedDeadlock
	// OutForwarded: re-routed to the object's home shard — a request
	// reached a shard that no longer (or never) served the object
	// (multi-server topologies only; the home shard resolves it).
	OutForwarded

	numOutcomes
)

var outcomeNames = [numOutcomes]string{
	"denied-expired", "dup-served", "listed", "granted", "queued", "denied-deadlock", "forwarded",
}

// String names the outcome for audit reports.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Scheduler collects firm requests per batch window and hands each
// window's batch to the sink in (deadline, arrival) order.
type Scheduler struct {
	env    *sim.Env
	window time.Duration
	sink   func(Request) Outcome

	// BeginFlush/EndFlush, when non-nil, bracket every window close so
	// the server can defer and coalesce the messages the sink produces.
	// They are never called on the zero-window inline path.
	BeginFlush func(n int)
	EndFlush   func()

	pending []Request
	// parked indexes the open window's requests by identity so the
	// retransmission guard (Pending) is O(1) instead of a scan of the
	// window — under lossy runs with wide windows every retransmit
	// probes here.
	parked map[requestKey]int
	open   bool
	seq    uint64

	// Conservation counters (see Audit).
	Entered  int64
	Resolved [numOutcomes]int64
	// Flushes counts window closes; Batched counts requests that shared
	// a window with at least one other request (the batching win).
	Flushes int64
	Batched int64
}

// NewScheduler returns a scheduler delivering to sink. A zero window
// makes Add call sink synchronously and never touch env.
func NewScheduler(env *sim.Env, window time.Duration, sink func(Request) Outcome) *Scheduler {
	return &Scheduler{env: env, window: window, sink: sink}
}

// Window returns the configured batch window.
func (s *Scheduler) Window() time.Duration { return s.window }

// PendingLen returns how many requests are parked in the open window.
func (s *Scheduler) PendingLen() int { return len(s.pending) }

// Add routes one firm request through the batching layer. With a zero
// window the sink runs inline before Add returns; otherwise the request
// parks until the window closes (the first request of an idle window
// opens it).
func (s *Scheduler) Add(r Request) {
	s.Entered++
	r.Enqueued = s.env.Now()
	if s.window <= 0 {
		s.Resolved[s.sink(r)]++
		return
	}
	r.seq = s.seq
	s.seq++
	s.pending = append(s.pending, r)
	if s.parked == nil {
		s.parked = make(map[requestKey]int)
	}
	s.parked[requestKey{r.Client, r.Txn, r.Obj}]++
	if !s.open {
		s.open = true
		s.env.Schedule(s.window, s.flush)
	}
}

// requestKey is the identity the retransmission guard matches on.
type requestKey struct {
	client netsim.SiteID
	txn    txn.ID
	obj    lockmgr.ObjectID
}

// Pending reports whether an identical request (same client,
// transaction, and object) is already parked in the open window — the
// duplicate-request guard for retransmissions under fault injection:
// the original will be answered when the window closes, so the
// retransmit is dropped instead of entering the window twice.
func (s *Scheduler) Pending(client netsim.SiteID, id txn.ID, obj lockmgr.ObjectID) bool {
	return s.parked[requestKey{client, id, obj}] > 0
}

// flush closes the window: the batch is resolved through the sink in
// (deadline, arrival) order — the same earliest-deadline-first ordering
// forward lists use — bracketed by BeginFlush/EndFlush so the server
// can coalesce the sends.
func (s *Scheduler) flush() {
	s.open = false
	batch := s.pending
	s.pending = nil
	clear(s.parked)
	s.Flushes++
	if len(batch) > 1 {
		s.Batched += int64(len(batch))
	}
	sort.SliceStable(batch, func(i, j int) bool {
		if batch[i].Deadline != batch[j].Deadline {
			return batch[i].Deadline < batch[j].Deadline
		}
		return batch[i].seq < batch[j].seq
	})
	if s.BeginFlush != nil {
		s.BeginFlush(len(batch))
	}
	for i := range batch {
		s.Resolved[s.sink(batch[i])]++
	}
	if s.EndFlush != nil {
		s.EndFlush()
	}
}

// Audit verifies request conservation: every request that entered the
// batching layer is either still parked in the open window or was
// resolved to exactly one outcome.
func (s *Scheduler) Audit() error {
	var resolved int64
	for _, n := range s.Resolved {
		resolved += n
	}
	if got := resolved + int64(len(s.pending)); got != s.Entered {
		return fmt.Errorf("batch: conservation violated: %d entered, %d resolved + %d pending",
			s.Entered, resolved, len(s.pending))
	}
	return nil
}
