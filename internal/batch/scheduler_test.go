package batch

import (
	"strings"
	"testing"
	"time"

	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
	"siteselect/internal/sim"
	"siteselect/internal/txn"
)

func req(client int, id int, obj int, deadline time.Duration) Request {
	return Request{
		Client:   netsim.SiteID(client),
		Txn:      txn.ID(id),
		Obj:      lockmgr.ObjectID(obj),
		Mode:     lockmgr.ModeShared,
		Deadline: deadline,
	}
}

// TestZeroWindowInline pins the equivalence path: with window 0 the sink
// runs synchronously inside Add, nothing is buffered, no event is
// scheduled, and the flush machinery never engages.
func TestZeroWindowInline(t *testing.T) {
	env := sim.NewEnv()
	var served []txn.ID
	s := NewScheduler(env, 0, func(r Request) Outcome {
		served = append(served, r.Txn)
		return OutGranted
	})
	s.BeginFlush = func(int) { t.Fatal("BeginFlush called on the inline path") }
	s.EndFlush = func() { t.Fatal("EndFlush called on the inline path") }
	for i := 1; i <= 3; i++ {
		s.Add(req(1, i, i, time.Second))
		if len(served) != i {
			t.Fatalf("after Add %d the sink ran %d times, want inline", i, len(served))
		}
	}
	env.RunAll()
	if env.Now() != 0 {
		t.Fatalf("inline adds scheduled events: clock at %v", env.Now())
	}
	if s.Flushes != 0 || s.Batched != 0 || s.PendingLen() != 0 {
		t.Fatalf("inline path touched flush state: flushes=%d batched=%d pending=%d",
			s.Flushes, s.Batched, s.PendingLen())
	}
	if err := s.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestWindowedFlushOrder checks that one window's batch reaches the sink
// in (deadline, arrival) order, bracketed by BeginFlush/EndFlush, and
// that a second window opens independently afterwards.
func TestWindowedFlushOrder(t *testing.T) {
	env := sim.NewEnv()
	var served []txn.ID
	var brackets []string
	s := NewScheduler(env, 50*time.Millisecond, func(r Request) Outcome {
		served = append(served, r.Txn)
		return OutQueued
	})
	s.BeginFlush = func(n int) { brackets = append(brackets, "begin") }
	s.EndFlush = func() { brackets = append(brackets, "end") }

	env.Schedule(0, func() {
		s.Add(req(1, 1, 1, 300*time.Millisecond))
		s.Add(req(2, 2, 2, 100*time.Millisecond))
		s.Add(req(3, 3, 3, 100*time.Millisecond)) // ties break by arrival
	})
	env.Schedule(10*time.Millisecond, func() {
		s.Add(req(4, 4, 4, 50*time.Millisecond))
		if !s.Pending(2, 2, 2) {
			t.Error("request 2 not pending inside its window")
		}
		if s.Pending(2, 2, 3) {
			t.Error("Pending matched a different object")
		}
	})
	// Lands after the first window closes at t=50ms: second flush.
	env.Schedule(70*time.Millisecond, func() { s.Add(req(5, 5, 5, time.Second)) })
	env.RunAll()

	want := []txn.ID{4, 2, 3, 1, 5}
	if len(served) != len(want) {
		t.Fatalf("served %v, want %v", served, want)
	}
	for i := range want {
		if served[i] != want[i] {
			t.Fatalf("served %v, want %v", served, want)
		}
	}
	if s.Flushes != 2 {
		t.Fatalf("flushes = %d, want 2", s.Flushes)
	}
	if s.Batched != 4 {
		t.Fatalf("batched = %d, want 4 (the singleton flush does not count)", s.Batched)
	}
	if len(brackets) != 4 || brackets[0] != "begin" || brackets[1] != "end" {
		t.Fatalf("flush brackets = %v", brackets)
	}
	if s.Pending(2, 2, 2) {
		t.Error("request still pending after its window flushed")
	}
	if err := s.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestAuditDetectsLoss corrupts the counters to prove Audit actually
// distinguishes a conserving scheduler from a lossy one.
func TestAuditDetectsLoss(t *testing.T) {
	env := sim.NewEnv()
	s := NewScheduler(env, 0, func(Request) Outcome { return OutGranted })
	s.Add(req(1, 1, 1, time.Second))
	if err := s.Audit(); err != nil {
		t.Fatalf("conserving scheduler failed audit: %v", err)
	}
	s.Entered++ // simulate a request that entered but never resolved
	if err := s.Audit(); err == nil {
		t.Fatal("audit passed with a lost request")
	} else if !strings.Contains(err.Error(), "conservation violated") {
		t.Fatalf("audit error does not name the violation: %v", err)
	}
}

// TestOutcomeStrings keeps the audit report names attached to the enum.
func TestOutcomeStrings(t *testing.T) {
	for o := Outcome(0); o < numOutcomes; o++ {
		if o.String() == "" || o.String()[0] == 'O' {
			t.Fatalf("outcome %d has no name", o)
		}
	}
	if got := Outcome(250).String(); got != "Outcome(250)" {
		t.Fatalf("out-of-range outcome prints %q", got)
	}
}

// TestPendingRetransmitWhileParked drives the retransmission guard
// through a full window lifecycle: a request is Pending from the moment
// it parks until its window flushes, an identically keyed retransmit is
// detectable (and, as the server uses it, suppressed) while parked, and
// the guard resets when the window closes so a genuinely new request
// with the same key enters the next window.
func TestPendingRetransmitWhileParked(t *testing.T) {
	env := sim.NewEnv()
	var served []txn.ID
	var s *Scheduler
	s = NewScheduler(env, 50*time.Millisecond, func(r Request) Outcome {
		served = append(served, r.Txn)
		return OutGranted
	})

	env.Schedule(0, func() { s.Add(req(1, 7, 3, time.Second)) })
	// A retransmit lands mid-window: the guard must see the parked
	// original, and the server-side pattern (drop when Pending) must
	// keep the window at one copy.
	env.Schedule(20*time.Millisecond, func() {
		if !s.Pending(1, 7, 3) {
			t.Error("original not pending at 20ms (retransmit would enter the window twice)")
		}
		if s.Pending(1, 7, 4) || s.Pending(2, 7, 3) || s.Pending(1, 8, 3) {
			t.Error("Pending matched on a partial key")
		}
		if s.Pending(1, 7, 3) {
			return // retransmit suppressed, as the server does
		}
		s.Add(req(1, 7, 3, time.Second))
	})
	// After the flush at 50ms the window is empty again; the same key
	// must not read as parked, and a fresh request re-enters cleanly.
	env.Schedule(60*time.Millisecond, func() {
		if s.Pending(1, 7, 3) {
			t.Error("request still pending after its window flushed")
		}
		s.Add(req(1, 7, 3, time.Second))
		if !s.Pending(1, 7, 3) {
			t.Error("re-added request not pending in the second window")
		}
	})
	env.RunAll()

	if len(served) != 2 || served[0] != 7 || served[1] != 7 {
		t.Fatalf("served %v, want the original and the second-window copy only", served)
	}
	if s.PendingLen() != 0 || s.Pending(1, 7, 3) {
		t.Fatal("guard state left behind after the final flush")
	}
	if err := s.Audit(); err != nil {
		t.Fatal(err)
	}
}
