package rtdbs

import (
	"math"
	"time"

	"siteselect/internal/config"
	"siteselect/internal/netsim"
	"siteselect/internal/rng"
	"siteselect/internal/txn"
)

// newGenerator builds client i's workload generator from the experiment
// seed: its own random stream, its access-pattern generator, and the
// Table 1 timing parameters — or, when the config carries a declarative
// WorkloadSpec, the class-specific parameters, phased arrival process,
// and access-skew generator of client i's class.
func newGenerator(root *rng.Stream, cfg config.Config, i int, newID func() txn.ID) txn.Source {
	stream := root.Derive(int64(i))
	if cfg.Workload != nil {
		return classGenerator(stream, cfg, i, newID)
	}
	return txn.NewGenerator(stream, netsim.SiteID(i), txn.WorkloadConfig{
		MeanInterArrival:     cfg.MeanInterArrival,
		MeanLength:           cfg.MeanLength,
		MeanSlack:            cfg.MeanSlack,
		MeanObjects:          cfg.MeanObjects,
		UpdateFraction:       cfg.UpdateFraction,
		DecomposableFraction: cfg.DecomposableFraction,
		IndependentDeadlines: cfg.Deadlines == config.DeadlineIndependent,
		Access:               defaultAccess(stream.Derive(7), cfg, i),
	}, newID)
}

// defaultAccess builds the run-level access generator (Config.Pattern).
func defaultAccess(stream *rng.Stream, cfg config.Config, i int) rng.AccessGen {
	switch cfg.Pattern {
	case config.PatternUniform:
		return rng.NewUniform(stream, cfg.DBSize)
	case config.PatternHotCold:
		return rng.NewHotCold(stream, cfg.DBSize, cfg.HotRegionSize, cfg.LocalFraction)
	default:
		return rng.NewLocalizedRW(stream, rng.LocalizedRWConfig{
			DBSize:        cfg.DBSize,
			ClientIndex:   i - 1,
			NumClients:    cfg.NumClients,
			RegionSize:    cfg.HotRegionSize,
			LocalFraction: cfg.LocalFraction,
			ZipfTheta:     cfg.ZipfTheta,
		})
	}
}

// phaseSeedTag offsets the per-phase arrival stream tags well away from
// the other per-client derivations (access uses tag 7), so adding a
// phase to one class never perturbs another stream.
const phaseSeedTag int64 = 0x70686173 // "phas"

// classGenerator builds client i's generator from its workload class:
// the class workload parameters (run-level values fill zero fields), a
// phased arrival schedule with one independent stream per phase, and
// the class access spec.
func classGenerator(stream *rng.Stream, cfg config.Config, i int, newID func() txn.ID) txn.Source {
	class := cfg.Workload.Classes[cfg.Workload.ClassOf(i)]
	wc := txn.WorkloadConfig{
		MeanInterArrival:     cfg.MeanInterArrival,
		MeanLength:           orDur(class.MeanLength, cfg.MeanLength),
		MeanSlack:            orDur(class.MeanSlack, cfg.MeanSlack),
		MeanObjects:          orInt(class.MeanObjects, cfg.MeanObjects),
		UpdateFraction:       class.UpdateFraction,
		DecomposableFraction: class.DecomposableFraction,
		IndependentDeadlines: cfg.Deadlines == config.DeadlineIndependent,
		Access:               classAccess(stream.Derive(7), cfg, class, i),
	}
	// The arrival schedule draws from per-phase streams derived from the
	// client stream, so lengthening one phase's activity never shifts
	// the draws of the next phase or of the workload stream.
	phases := make([]txn.Phase, len(class.Phases))
	start := time.Duration(0)
	for pi, ph := range class.Phases {
		end := time.Duration(math.MaxInt64)
		if ph.Duration > 0 {
			end = start + ph.Duration
		}
		phases[pi] = txn.Phase{
			Start: start,
			End:   end,
			Proc:  phaseProcess(stream.Derive(phaseSeedTag+int64(pi)), ph, start),
		}
		start = end
	}
	wc.Arrivals = &txn.PhasedArrivals{Phases: phases}
	return txn.NewGenerator(stream, netsim.SiteID(i), wc, newID)
}

// phaseProcess lowers one declarative phase onto its arrival process.
func phaseProcess(stream *rng.Stream, ph config.ArrivalPhase, start time.Duration) txn.ArrivalProcess {
	switch ph.Kind {
	case config.ArrivalOpen:
		return &txn.OpenLoop{Stream: stream, Rate: ph.Rate}
	case config.ArrivalBurst:
		return &txn.Bursts{
			Stream: stream,
			Start:  start,
			Size:   ph.BurstSize,
			Every:  ph.BurstEvery,
			Spread: ph.BurstSpread,
		}
	case config.ArrivalDiurnal:
		return &txn.VariableRate{
			Stream: stream,
			Peak:   ph.Peak,
			RateAt: txn.DiurnalRate(start, ph.Rate, ph.Peak, ph.Period),
		}
	case config.ArrivalFlash:
		return &txn.VariableRate{
			Stream: stream,
			Peak:   ph.Peak,
			RateAt: txn.FlashRate(start, ph.Rate, ph.Peak, ph.Ramp),
		}
	default: // config.ArrivalClosed (Validate rejects unknown kinds)
		return &txn.ClosedLoop{Stream: stream, Mean: ph.MeanInterArrival}
	}
}

// classAccess builds the access generator for one class.
func classAccess(stream *rng.Stream, cfg config.Config, class config.ClientClass, i int) rng.AccessGen {
	a := class.Access
	if a == nil {
		return defaultAccess(stream, cfg, i)
	}
	switch a.Kind {
	case config.AccessUniform:
		return rng.NewUniform(stream, cfg.DBSize)
	case config.AccessHotCold:
		return rng.NewHotCold(stream, cfg.DBSize, a.HotSize, a.HotFraction)
	case config.AccessSkewed:
		return rng.NewSkewed(stream, rng.SkewedConfig{
			DBSize:      cfg.DBSize,
			ZipfTheta:   a.ZipfTheta,
			HotSize:     a.HotSize,
			HotFraction: a.HotFraction,
			DriftEvery:  a.DriftEvery,
			DriftStep:   a.DriftStep,
		})
	case config.AccessLocalized:
		return rng.NewLocalizedRW(stream, rng.LocalizedRWConfig{
			DBSize:        cfg.DBSize,
			ClientIndex:   i - 1,
			NumClients:    cfg.NumClients,
			RegionSize:    cfg.HotRegionSize,
			LocalFraction: cfg.LocalFraction,
			ZipfTheta:     cfg.ZipfTheta,
		})
	default: // config.AccessDefault
		return defaultAccess(stream, cfg, i)
	}
}

// orDur and orInt apply run-level defaults to unset class fields.
func orDur(v, def time.Duration) time.Duration {
	if v != 0 {
		return v
	}
	return def
}

func orInt(v, def int) int {
	if v != 0 {
		return v
	}
	return def
}
