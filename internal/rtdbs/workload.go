package rtdbs

import (
	"siteselect/internal/config"
	"siteselect/internal/netsim"
	"siteselect/internal/rng"
	"siteselect/internal/txn"
)

// newGenerator builds client i's workload generator from the experiment
// seed: its own random stream, its access-pattern generator, and the
// Table 1 timing parameters.
func newGenerator(root *rng.Stream, cfg config.Config, i int, newID func() txn.ID) *txn.Generator {
	stream := root.Derive(int64(i))
	var access rng.AccessGen
	switch cfg.Pattern {
	case config.PatternUniform:
		access = rng.NewUniform(stream.Derive(7), cfg.DBSize)
	case config.PatternHotCold:
		access = rng.NewHotCold(stream.Derive(7), cfg.DBSize, cfg.HotRegionSize, cfg.LocalFraction)
	default:
		access = rng.NewLocalizedRW(stream.Derive(7), rng.LocalizedRWConfig{
			DBSize:        cfg.DBSize,
			ClientIndex:   i - 1,
			NumClients:    cfg.NumClients,
			RegionSize:    cfg.HotRegionSize,
			LocalFraction: cfg.LocalFraction,
			ZipfTheta:     cfg.ZipfTheta,
		})
	}
	return txn.NewGenerator(stream, netsim.SiteID(i), txn.WorkloadConfig{
		MeanInterArrival:     cfg.MeanInterArrival,
		MeanLength:           cfg.MeanLength,
		MeanSlack:            cfg.MeanSlack,
		MeanObjects:          cfg.MeanObjects,
		UpdateFraction:       cfg.UpdateFraction,
		DecomposableFraction: cfg.DecomposableFraction,
		IndependentDeadlines: cfg.Deadlines == config.DeadlineIndependent,
		Access:               access,
	}, newID)
}
