package rtdbs

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"siteselect/internal/config"
)

// faultyConfig is a small cluster with the invariant monitor on, used by
// the fault-injection tests. The duration is kept short because the
// monitor re-audits the model after every kernel event.
func faultyConfig(n int, update float64) config.Config {
	cfg := config.Default(n, update)
	cfg.Duration = 3 * time.Minute
	cfg.Drain = 40 * time.Second
	cfg.Warmup = 10 * time.Second
	cfg.CheckInvariants = true
	return cfg
}

// fingerprint reduces a result to a comparable summary covering the
// metrics the experiment tables report plus the fault counters.
func fingerprint(r *Result) string {
	return fmt.Sprintf("sub=%d com=%d mis=%d abt=%d msgs=%d bytes=%d retries=%d faults=%+v resp=%v",
		r.M.Submitted, r.M.Committed, r.M.Missed, r.M.Aborted,
		r.TotalMessages, r.TotalBytes, r.Retries, r.Faults, r.M.TxnResponse.Mean())
}

func TestFaultsDropDupSpikeSurvived(t *testing.T) {
	for _, sys := range []string{"cs", "ls"} {
		t.Run(sys, func(t *testing.T) {
			cfg := faultyConfig(6, 0.2)
			cfg.Faults = config.FaultSpec{
				DropRate:     0.1,
				DupRate:      0.08,
				SpikeRate:    0.08,
				SpikeLatency: 5 * time.Millisecond,
			}
			var (
				c   *Cluster
				err error
			)
			if sys == "cs" {
				c, err = NewClientServer(cfg)
			} else {
				c, err = NewLoadSharing(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run()
			if err != nil {
				t.Fatalf("faulty run failed audit: %v", err)
			}
			if res.M.Committed == 0 {
				t.Fatal("nothing committed under moderate faults")
			}
			if res.Faults.Dropped == 0 || res.Faults.Duplicated == 0 || res.Faults.Spiked == 0 {
				t.Fatalf("fault lottery idle: %+v", res.Faults)
			}
			if res.Retries == 0 {
				t.Fatal("no client retries under a 5% drop rate")
			}
			t.Logf("%s: success=%.1f%% retries=%d faults=%+v",
				sys, res.SuccessRate(), res.Retries, res.Faults)
		})
	}
}

// TestFaultsPartitionGracefulAbort cuts one client off for longer than
// any transaction's slack: its in-flight work must miss deadlines and
// abort cleanly (no hang, no invariant violation) while the rest of the
// cluster keeps committing.
func TestFaultsPartitionGracefulAbort(t *testing.T) {
	cfg := faultyConfig(4, 0.1)
	cfg.Faults = config.FaultSpec{
		PartitionSite:     2,
		PartitionAt:       20 * time.Second,
		PartitionDuration: 15 * time.Second,
	}
	ls, err := NewLoadSharing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ls.Run()
	if err != nil {
		t.Fatalf("partition run failed audit: %v", err)
	}
	if res.M.Committed == 0 {
		t.Fatal("nothing committed around a single-client partition")
	}
	if res.Faults.PartitionDrops == 0 {
		t.Fatal("partition never dropped a frame")
	}
	t.Logf("client partition: success=%.1f%% partitionDrops=%d retransmits=%d",
		res.SuccessRate(), res.Faults.PartitionDrops, res.Faults.Retransmits)
}

// TestFaultsServerPartition cuts the server itself off: every client
// loses object service for the window, which is the fault layer's
// generalization of the server-outage study.
func TestFaultsServerPartition(t *testing.T) {
	cfg := faultyConfig(4, 0.1)
	cfg.Faults = config.FaultSpec{
		PartitionSite:     0, // the server
		PartitionAt:       20 * time.Second,
		PartitionDuration: 10 * time.Second,
	}
	cs, err := NewClientServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cs.Run()
	if err != nil {
		t.Fatalf("server-partition run failed audit: %v", err)
	}
	if res.M.Committed == 0 {
		t.Fatal("nothing committed around the server partition")
	}
	if res.Faults.PartitionDrops == 0 {
		t.Fatal("server partition never dropped a frame")
	}
	t.Logf("server partition: success=%.1f%% partitionDrops=%d",
		res.SuccessRate(), res.Faults.PartitionDrops)
}

// TestFaultsDeterministic runs the same faulty configuration twice:
// seed and fault schedule fixed, the two results must be byte-identical.
func TestFaultsDeterministic(t *testing.T) {
	run := func() string {
		cfg := faultyConfig(4, 0.1)
		cfg.Faults = config.FaultSpec{
			DropRate:          0.05,
			DupRate:           0.03,
			SpikeRate:         0.03,
			SpikeLatency:      4 * time.Millisecond,
			PartitionSite:     1,
			PartitionAt:       30 * time.Second,
			PartitionDuration: 5 * time.Second,
		}
		ls, err := NewLoadSharing(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ls.Run()
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint(res)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed and fault schedule, different results:\n%s\n%s", a, b)
	}
}

// TestFaultsZeroRateMatchesCleanRun is the metamorphic identity: a
// config whose fault spec is all zeros must produce byte-identical
// results to one that never mentions faults, on every system.
func TestFaultsZeroRateMatchesCleanRun(t *testing.T) {
	base := smallConfig(4, 0.05)
	zeroed := base
	zeroed.Faults = config.FaultSpec{} // explicit zero spec
	for _, tc := range []struct {
		name  string
		build func(config.Config) (*Cluster, error)
	}{{"cs", NewClientServer}, {"ls", NewLoadSharing}} {
		t.Run(tc.name, func(t *testing.T) {
			c1, err := tc.build(base)
			if err != nil {
				t.Fatal(err)
			}
			r1, err := c1.Run()
			if err != nil {
				t.Fatal(err)
			}
			c2, err := tc.build(zeroed)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := c2.Run()
			if err != nil {
				t.Fatal(err)
			}
			if f1, f2 := fingerprint(r1), fingerprint(r2); f1 != f2 {
				t.Fatalf("zero-rate faults perturbed the run:\n%s\n%s", f1, f2)
			}
		})
	}
}

// TestFaultyRunLeaksNoGoroutines runs a lossy cluster — in-flight
// retries, retransmissions, and a partition pending at shutdown — and
// checks that Run's close path reaps every process goroutine.
func TestFaultyRunLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := faultyConfig(4, 0.1)
	cfg.Faults = config.FaultSpec{
		DropRate:          0.1,
		DupRate:           0.05,
		SpikeRate:         0.05,
		SpikeLatency:      5 * time.Millisecond,
		PartitionSite:     1,
		PartitionAt:       cfg.Duration - 10*time.Second,
		PartitionDuration: time.Minute, // outlasts the run
	}
	ls, err := NewLoadSharing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Run(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Run: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestInvariantMonitorCleanRun runs the monitor over a fault-free run
// of each system: the continuous checks must hold on healthy protocol
// traffic too.
func TestInvariantMonitorCleanRun(t *testing.T) {
	cfg := faultyConfig(4, 0.1)
	for _, tc := range []struct {
		name  string
		build func(config.Config) (*Cluster, error)
	}{{"cs", NewClientServer}, {"ls", NewLoadSharing}} {
		t.Run(tc.name, func(t *testing.T) {
			c, err := tc.build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run()
			if err != nil {
				t.Fatalf("monitored clean run: %v", err)
			}
			if res.M.Committed == 0 {
				t.Fatal("nothing committed")
			}
		})
	}
}
