package rtdbs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"siteselect/internal/config"
	"siteselect/internal/lockmgr"
	"siteselect/internal/metrics"
	"siteselect/internal/netsim"
	"siteselect/internal/pagefile"
	"siteselect/internal/proto"
	"siteselect/internal/rng"
	"siteselect/internal/sim"
	"siteselect/internal/txn"
	"siteselect/internal/wal"
)

// Centralized is the CE-RTDBS: the server performs all transaction
// processing (as many as ServerThreads concurrently, each as a separate
// "thread"), scheduled Earliest-Deadline-First with strict 2PL on a
// central lock table; clients are terminals that submit transactions and
// receive results over the LAN.
type Centralized struct {
	cfg config.Config

	env   *sim.Env
	net   *netsim.Network
	m     *metrics.Collector
	locks *lockmgr.BlockingTable
	disk  *pagefile.Disk
	pool  *pagefile.BufferPool
	slots *sim.Resource
	cpu   *sim.Resource

	versions  []int64
	log       *wal.Log
	inbox     *sim.Mailbox[netsim.Message]
	terminals []*terminal
}

type terminal struct {
	id      netsim.SiteID
	inbox   *sim.Mailbox[netsim.Message]
	gen     txn.Source
	tracked []*txn.Transaction
}

// NewCentralized builds the CE-RTDBS.
func NewCentralized(cfg config.Config) (*Centralized, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	env := sim.NewEnv()
	net := netsim.New(env, netsim.Config{
		Latency:      cfg.NetLatency,
		BandwidthBps: cfg.NetBandwidthBps,
		Switched:     cfg.Topology == config.TopologySwitched,
	})
	disk := pagefile.NewDisk(env, cfg.DBSize, pagefile.DiskConfig{
		ReadTime:  cfg.DiskRead,
		WriteTime: cfg.DiskWrite,
	})
	ce := &Centralized{
		cfg:      cfg,
		env:      env,
		net:      net,
		m:        &metrics.Collector{},
		locks:    lockmgr.NewBlockingTable(env),
		disk:     disk,
		pool:     pagefile.NewBufferPool(env, disk, cfg.ServerMemory),
		slots:    sim.NewResource(env, cfg.ServerThreads),
		cpu:      sim.NewResource(env, 1),
		versions: make([]int64, cfg.DBSize),
		inbox:    sim.NewMailbox[netsim.Message](env),
	}
	if cfg.UseLogging {
		ce.log = wal.New(env, disk.Resource(), cfg.DiskWrite)
	}
	root := rng.NewStream(cfg.Seed)
	var nextID txn.ID
	newID := func() txn.ID { nextID++; return nextID }
	for i := 1; i <= cfg.NumClients; i++ {
		id := netsim.SiteID(i)
		gen := newGenerator(root, cfg, i, newID)
		ce.terminals = append(ce.terminals, &terminal{
			id:    id,
			inbox: sim.NewMailbox[netsim.Message](env),
			gen:   gen,
		})
	}
	return ce, nil
}

// Env exposes the simulation environment.
func (ce *Centralized) Env() *sim.Env { return ce.env }

// Net exposes the simulated LAN.
func (ce *Centralized) Net() *netsim.Network { return ce.net }

// Metrics exposes the live collector.
func (ce *Centralized) Metrics() *metrics.Collector { return ce.m }

// Start spawns the server dispatcher and the terminal processes.
func (ce *Centralized) Start() {
	ce.env.Go("ce-server", ce.serve)
	for _, term := range ce.terminals {
		term := term
		ce.env.Go(fmt.Sprintf("terminal-%d", term.id), func(p *sim.Proc) {
			ce.runTerminal(p, term)
		})
		ce.env.Go(fmt.Sprintf("terminal-%d-drain", term.id), func(p *sim.Proc) {
			for {
				term.inbox.Get(p) // results are displayed to the user
			}
		})
	}
}

// runTerminal submits the terminal's transaction stream to the server.
func (ce *Centralized) runTerminal(p *sim.Proc, term *terminal) {
	for {
		next := term.gen.NextArrival()
		if next > ce.cfg.Duration {
			return
		}
		p.SleepUntil(next)
		t := term.gen.Next()
		term.tracked = append(term.tracked, t)
		ce.net.Send(netsim.Message{
			Kind: netsim.KindTxnSubmit, From: term.id, To: netsim.ServerSite,
			Size: netsim.TxnShipBytes, Payload: proto.TxnSubmit{T: t},
		}, ce.inbox)
	}
}

// serve dispatches arriving transactions, each executing as its own
// process (the paper's thread-per-transaction server).
func (ce *Centralized) serve(p *sim.Proc) {
	for {
		msg := ce.inbox.Get(p)
		sub, ok := msg.Payload.(proto.TxnSubmit)
		if !ok {
			panic(fmt.Sprintf("rtdbs: centralized server got %T", msg.Payload))
		}
		if ce.cfg.ServerOpCPU > 0 {
			p.Acquire(ce.cpu, 0)
			p.Sleep(ce.cfg.ServerOpCPU)
			ce.cpu.Release()
		}
		t := sub.T
		ce.env.Go(fmt.Sprintf("ce-txn-%d", t.ID), func(tp *sim.Proc) {
			ce.runTxn(tp, t)
		})
	}
}

// runTxn executes one transaction at the server: EDF admission to a
// thread slot, strict 2PL lock acquisition in access order (wait-for
// graph refusal aborts), page reads through the buffer pool, the
// prescribed processing delay, updates, release, and the result message.
func (ce *Centralized) runTxn(p *sim.Proc, t *txn.Transaction) {
	finish := func(committed bool) {
		if committed {
			t.Status = txn.StatusCommitted
		} else if t.Status != txn.StatusAborted {
			t.Status = txn.StatusMissed
		}
		t.Finished = p.Now()
		t.ExecSite = netsim.ServerSite
		ce.net.Send(netsim.Message{
			Kind: netsim.KindUserResult, From: netsim.ServerSite, To: t.Origin,
			Size: netsim.ResultBytes,
			Payload: proto.UserResult{
				Txn: t.ID, Committed: committed,
			},
		}, ce.terminals[int(t.Origin)-1].inbox)
	}

	prio := t.Deadline.Seconds()
	if ce.cfg.Scheduling == config.SchedFCFS {
		prio = t.Arrival.Seconds()
	}
	slack := t.Deadline - p.Now()
	if slack <= 0 || !p.AcquireTimeout(ce.slots, prio, slack) {
		finish(false)
		return
	}
	defer ce.slots.Release()
	if p.Now() > t.Deadline {
		finish(false)
		return
	}
	t.Status = txn.StatusRunning

	owner := lockmgr.OwnerID(t.ID)
	defer ce.locks.ReleaseAll(owner)
	for _, op := range t.Ops {
		err := ce.locks.LockWait(p, &lockmgr.Request{
			Obj: op.Obj, Owner: owner, Mode: op.Mode(), Deadline: t.Deadline,
		})
		if err != nil {
			if errors.Is(err, lockmgr.ErrDeadlock) {
				t.Status = txn.StatusAborted
			}
			finish(false)
			return
		}
	}

	// Materialize the pages (buffer hits are free; misses queue on the
	// disk). Every object access additionally costs ServerOpCPU on the
	// server's one CPU — in the centralized system all of every client's
	// low-level database work lands here, which is what saturates the
	// server as clients are added (Figures 3–5).
	frames := make([]*pagefile.Frame, 0, len(t.Ops))
	bail := func() {
		for _, f := range frames {
			ce.pool.Unpin(f, false)
		}
		finish(false)
	}
	for _, op := range t.Ops {
		if p.Now() > t.Deadline {
			// EDF discipline: a late transaction is abandoned rather
			// than allowed to keep consuming the CPU and disk.
			bail()
			return
		}
		if ce.cfg.ServerOpCPU > 0 {
			if !p.AcquireTimeout(ce.cpu, prio, t.Deadline-p.Now()) {
				bail()
				return
			}
			p.Sleep(ce.cfg.ServerOpCPU)
			ce.cpu.Release()
		}
		f, err := ce.pool.Get(p, pagefile.PageID(op.Obj))
		if err != nil {
			panic(fmt.Sprintf("rtdbs: centralized read %d: %v", op.Obj, err))
		}
		frames = append(frames, f)
	}
	if p.Now() > t.Deadline {
		bail()
		return
	}
	p.Sleep(t.Length)
	var lastLSN int64
	for i, op := range t.Ops {
		dirty := op.Write
		if dirty {
			ce.versions[op.Obj]++
			binary.LittleEndian.PutUint64(frames[i].Data, uint64(ce.versions[op.Obj]))
			if ce.log != nil {
				lastLSN = ce.log.Append(int64(t.ID), op.Obj, ce.versions[op.Obj])
			}
		}
		ce.pool.Unpin(frames[i], dirty)
	}
	if ce.log != nil && lastLSN > 0 {
		ce.log.ForceTo(p, int64(t.ID), lastLSN)
	}
	finish(p.Now() <= t.Deadline)
}

// Run executes the full experiment.
func (ce *Centralized) Run() (*Result, error) {
	ce.Start()
	ce.env.Run(ce.cfg.Duration + ce.cfg.Drain)
	res := ce.collect()
	err := ce.locks.Table().Audit()
	ce.env.Close()
	return res, err
}

func (ce *Centralized) collect() *Result {
	now := ce.env.Now()
	for _, term := range ce.terminals {
		for _, t := range term.tracked {
			if !t.Terminal() {
				if t.Deadline >= now {
					continue
				}
				t.Status = txn.StatusMissed
				t.Finished = now
			}
			if t.Arrival < ce.cfg.Warmup {
				continue
			}
			ce.m.Submitted++
			ce.m.RecordOutcome(t)
		}
	}
	return &Result{
		Config:              ce.cfg,
		M:                   ce.m,
		Messages:            messageSnapshot(ce.net),
		TotalMessages:       ce.net.TotalMessages(),
		TotalBytes:          ce.net.TotalBytes(),
		NetUtilization:      ce.net.Utilization(),
		ServerBufferHitRate: ce.pool.HitRate(),
		ServerDiskReads:     ce.disk.Reads,
		ServerDiskWrites:    ce.disk.Writes,
		Elapsed:             now,
	}
}
