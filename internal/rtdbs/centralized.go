package rtdbs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"siteselect/internal/config"
	"siteselect/internal/lockmgr"
	"siteselect/internal/metrics"
	"siteselect/internal/netsim"
	"siteselect/internal/pagefile"
	"siteselect/internal/proto"
	"siteselect/internal/rng"
	"siteselect/internal/sim"
	"siteselect/internal/txn"
	"siteselect/internal/wal"
)

// Centralized is the CE-RTDBS: the server performs all transaction
// processing (as many as ServerThreads concurrently, each as a separate
// "thread"), scheduled Earliest-Deadline-First with strict 2PL on a
// central lock table; clients are terminals that submit transactions and
// receive results over the LAN.
type Centralized struct {
	cfg config.Config

	env   *sim.Env
	net   *netsim.Network
	m     *metrics.Collector
	locks *lockmgr.BlockingTable
	disk  *pagefile.Disk
	pool  *pagefile.BufferPool
	slots *sim.Resource
	cpu   *sim.Resource

	versions  []int64
	log       *wal.Log
	inbox     *sim.Mailbox[netsim.Message]
	terminals []*terminal
	// txnFree recycles finished transaction machines.
	txnFree []*ceTxnMachine
}

type terminal struct {
	id      netsim.SiteID
	inbox   *sim.Mailbox[netsim.Message]
	gen     txn.Source
	tracked []*txn.Transaction
}

// NewCentralized builds the CE-RTDBS.
func NewCentralized(cfg config.Config) (*Centralized, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	env := sim.NewEnv()
	net := netsim.New(env, netsim.Config{
		Latency:      cfg.NetLatency,
		BandwidthBps: cfg.NetBandwidthBps,
		Switched:     cfg.Topology == config.TopologySwitched,
	})
	disk := pagefile.NewDisk(env, cfg.DBSize, pagefile.DiskConfig{
		ReadTime:  cfg.DiskRead,
		WriteTime: cfg.DiskWrite,
	})
	ce := &Centralized{
		cfg:      cfg,
		env:      env,
		net:      net,
		m:        &metrics.Collector{},
		locks:    lockmgr.NewBlockingTable(env),
		disk:     disk,
		pool:     pagefile.NewBufferPool(env, disk, cfg.ServerMemory),
		slots:    sim.NewResource(env, cfg.ServerThreads),
		cpu:      sim.NewResource(env, 1),
		versions: make([]int64, cfg.DBSize),
		inbox:    sim.NewMailbox[netsim.Message](env),
	}
	ce.locks.Reserve(cfg.DBSize)
	if cfg.UseLogging {
		ce.log = wal.New(env, disk.Resource(), cfg.DiskWrite)
	}
	root := rng.NewStream(cfg.Seed)
	var nextID txn.ID
	newID := func() txn.ID { nextID++; return nextID }
	for i := 1; i <= cfg.NumClients; i++ {
		id := netsim.SiteID(i)
		gen := newGenerator(root, cfg, i, newID)
		ce.terminals = append(ce.terminals, &terminal{
			id:    id,
			inbox: sim.NewMailbox[netsim.Message](env),
			gen:   gen,
		})
	}
	return ce, nil
}

// Env exposes the simulation environment.
func (ce *Centralized) Env() *sim.Env { return ce.env }

// Net exposes the simulated LAN.
func (ce *Centralized) Net() *netsim.Network { return ce.net }

// Metrics exposes the live collector.
func (ce *Centralized) Metrics() *metrics.Collector { return ce.m }

// Start spawns the server dispatcher and the terminal machines.
func (ce *Centralized) Start() {
	s := &ceServeMachine{ce: ce}
	ce.env.Spawn(&s.task, s)
	for _, term := range ce.terminals {
		tm := &ceTermMachine{ce: ce, term: term}
		ce.env.Spawn(&tm.task, tm)
		dm := &ceDrainMachine{term: term}
		ce.env.Spawn(&dm.task, dm)
	}
}

// ceTermMachine submits a terminal's transaction stream to the server.
type ceTermMachine struct {
	task sim.Task
	ce   *Centralized
	term *terminal
	pc   uint8
}

const (
	ctNext uint8 = iota
	ctArrived
)

func (m *ceTermMachine) Resume() {
	ce, term := m.ce, m.term
	for {
		switch m.pc {
		case ctNext:
			next := term.gen.NextArrival()
			if next > ce.cfg.Duration {
				m.task.Detach()
				return
			}
			m.pc = ctArrived
			m.task.SleepUntil(next)
			return
		default: // ctArrived
			t := term.gen.Next()
			term.tracked = append(term.tracked, t)
			ce.net.Send(netsim.Message{
				Kind: netsim.KindTxnSubmit, From: term.id, To: netsim.ServerSite,
				Size: netsim.TxnShipBytes, Payload: proto.TxnSubmit{T: t},
			}, ce.inbox)
			m.pc = ctNext
		}
	}
}

// ceDrainMachine consumes result messages (displayed to the user).
type ceDrainMachine struct {
	task sim.Task
	term *terminal
}

func (m *ceDrainMachine) Resume() {
	for {
		if _, ok := m.term.inbox.Recv(&m.task); !ok {
			return
		}
	}
}

// ceServeMachine dispatches arriving transactions, each executing as
// its own machine (the paper's thread-per-transaction server).
type ceServeMachine struct {
	task sim.Task
	ce   *Centralized
	pc   uint8
	t    *txn.Transaction
}

const (
	csIdle uint8 = iota
	csCPUSleep
	csSpawn
)

func (m *ceServeMachine) Resume() {
	ce := m.ce
	for {
		switch m.pc {
		case csIdle:
			msg, ok := ce.inbox.Recv(&m.task)
			if !ok {
				return
			}
			sub, ok := msg.Payload.(proto.TxnSubmit)
			if !ok {
				panic(fmt.Sprintf("rtdbs: centralized server got %T", msg.Payload))
			}
			m.t = sub.T
			if ce.cfg.ServerOpCPU <= 0 {
				m.pc = csSpawn
				continue
			}
			m.pc = csCPUSleep
			if !m.task.Acquire(ce.cpu, 0) {
				return
			}
		case csCPUSleep:
			m.pc = csSpawn
			m.task.Sleep(ce.cfg.ServerOpCPU)
			return
		default: // csSpawn
			if ce.cfg.ServerOpCPU > 0 {
				ce.cpu.Release()
			}
			ce.spawnTxn(m.t)
			m.t = nil
			m.pc = csIdle
		}
	}
}

func (ce *Centralized) spawnTxn(t *txn.Transaction) {
	var x *ceTxnMachine
	if n := len(ce.txnFree); n > 0 {
		x = ce.txnFree[n-1]
		ce.txnFree[n-1] = nil
		ce.txnFree = ce.txnFree[:n-1]
	} else {
		x = &ceTxnMachine{}
	}
	*x = ceTxnMachine{
		ce: ce, t: t,
		frames: x.frames[:0], lockReqs: x.lockReqs[:0],
	}
	ce.env.Spawn(&x.task, x)
}

// ceTxnMachine executes one transaction at the server: EDF admission to
// a thread slot, strict 2PL lock acquisition in access order (wait-for
// graph refusal aborts), page reads through the buffer pool, the
// prescribed processing delay, updates, release, and the result
// message. Each state mirrors one stretch of the earlier blocking
// thread between two park points; the deferred releases become the
// explicit unwind in the same LIFO order.
type ceTxnMachine struct {
	task sim.Task
	ce   *Centralized
	t    *txn.Transaction
	pc   uint8

	prio        float64
	slotHeld    bool
	locksOwned  bool
	lockIdx     int
	lockStarted bool
	lockOp      lockmgr.LockOp
	lockReqs    []lockmgr.Request
	opIdx       int
	frames      []*pagefile.Frame
	get         pagefile.GetOp
	force       wal.ForceOp
}

const (
	xsBegin uint8 = iota
	xsSlotWait
	xsSlot
	xsLock
	xsMat
	xsCPUWait
	xsCPUBusy
	xsCPUDone
	xsPage
	xsPostMat
	xsRan
	xsForce
	xsDone
)

func (m *ceTxnMachine) Resume() {
	for m.pc != xsDone {
		if m.step() {
			return
		}
	}
	m.task.Detach()
	ce := m.ce
	clear(m.frames)
	ce.txnFree = append(ce.txnFree, m)
}

func (m *ceTxnMachine) step() bool {
	ce, t := m.ce, m.t
	switch m.pc {
	case xsBegin:
		m.prio = t.Deadline.Seconds()
		if ce.cfg.Scheduling == config.SchedFCFS {
			m.prio = t.Arrival.Seconds()
		}
		slack := t.Deadline - m.task.Now()
		if slack <= 0 {
			m.finish(false)
			return false
		}
		if m.task.AcquireTimeout(ce.slots, m.prio, slack) == sim.AcquireGranted {
			m.pc = xsSlot
			return false
		}
		m.pc = xsSlotWait
		return true
	case xsSlotWait:
		if m.task.ResTimedOut() {
			m.finish(false)
			return false
		}
		m.pc = xsSlot
	case xsSlot:
		m.slotHeld = true
		if m.task.Now() > t.Deadline {
			m.finish(false)
			return false
		}
		t.Status = txn.StatusRunning
		m.locksOwned = true
		m.pc = xsLock
	case xsLock:
		return m.stepLock()
	case xsMat:
		return m.stepMat()
	case xsCPUWait:
		if m.task.ResTimedOut() {
			m.bail()
			return false
		}
		m.pc = xsCPUBusy
	case xsCPUBusy:
		m.pc = xsCPUDone
		m.task.Sleep(ce.cfg.ServerOpCPU)
		return true
	case xsCPUDone:
		ce.cpu.Release()
		m.get.Init(ce.pool, pagefile.PageID(t.Ops[m.opIdx].Obj))
		m.pc = xsPage
	case xsPage:
		done, err := m.get.Step(&m.task)
		if !done {
			return true
		}
		if err != nil {
			panic(fmt.Sprintf("rtdbs: centralized read %d: %v", t.Ops[m.opIdx].Obj, err))
		}
		m.frames = append(m.frames, m.get.Frame())
		m.opIdx++
		m.pc = xsMat
	case xsPostMat:
		if m.task.Now() > t.Deadline {
			m.bail()
			return false
		}
		m.pc = xsRan
		m.task.Sleep(t.Length)
		return true
	case xsRan:
		var lastLSN int64
		for i, op := range t.Ops {
			dirty := op.Write
			if dirty {
				ce.versions[op.Obj]++
				binary.LittleEndian.PutUint64(m.frames[i].Data, uint64(ce.versions[op.Obj]))
				if ce.log != nil {
					lastLSN = ce.log.Append(int64(t.ID), op.Obj, ce.versions[op.Obj])
				}
			}
			ce.pool.Unpin(m.frames[i], dirty)
		}
		if ce.log != nil && lastLSN > 0 {
			m.force.Init(ce.log, int64(t.ID), lastLSN)
			m.pc = xsForce
			return false
		}
		m.finish(m.task.Now() <= t.Deadline)
	case xsForce:
		if !m.force.Step(&m.task) {
			return true
		}
		m.finish(m.task.Now() <= t.Deadline)
	}
	return false
}

func (m *ceTxnMachine) stepLock() bool {
	ce, t := m.ce, m.t
	owner := lockmgr.OwnerID(t.ID)
	for m.lockIdx < len(t.Ops) {
		var done bool
		var err error
		if !m.lockStarted {
			op := t.Ops[m.lockIdx]
			m.lockStarted = true
			if cap(m.lockReqs) < len(t.Ops) {
				m.lockReqs = make([]lockmgr.Request, len(t.Ops))
			} else {
				m.lockReqs = m.lockReqs[:len(t.Ops)]
			}
			req := &m.lockReqs[m.lockIdx]
			*req = lockmgr.Request{Obj: op.Obj, Owner: owner, Mode: op.Mode(), Deadline: t.Deadline}
			done, err = m.lockOp.Start(ce.locks, &m.task, req)
		} else {
			done, err = m.lockOp.Step(&m.task)
		}
		if !done {
			return true
		}
		m.lockStarted = false
		if err != nil {
			if errors.Is(err, lockmgr.ErrDeadlock) {
				t.Status = txn.StatusAborted
			}
			m.finish(false)
			return false
		}
		m.lockIdx++
	}
	// Materialize the pages (buffer hits are free; misses queue on the
	// disk). Every object access additionally costs ServerOpCPU on the
	// server's one CPU — in the centralized system all of every client's
	// low-level database work lands here, which is what saturates the
	// server as clients are added (Figures 3–5).
	if cap(m.frames) < len(t.Ops) {
		m.frames = make([]*pagefile.Frame, 0, len(t.Ops))
	} else {
		m.frames = m.frames[:0]
	}
	m.opIdx = 0
	m.pc = xsMat
	return false
}

func (m *ceTxnMachine) stepMat() bool {
	ce, t := m.ce, m.t
	if m.opIdx >= len(t.Ops) {
		m.pc = xsPostMat
		return false
	}
	if m.task.Now() > t.Deadline {
		// EDF discipline: a late transaction is abandoned rather than
		// allowed to keep consuming the CPU and disk.
		m.bail()
		return false
	}
	if ce.cfg.ServerOpCPU > 0 {
		switch m.task.AcquireTimeout(ce.cpu, m.prio, t.Deadline-m.task.Now()) {
		case sim.AcquireGranted:
			m.pc = xsCPUBusy
			return false
		case sim.AcquireTimedOut:
			m.bail()
			return false
		default:
			m.pc = xsCPUWait
			return true
		}
	}
	m.get.Init(ce.pool, pagefile.PageID(t.Ops[m.opIdx].Obj))
	m.pc = xsPage
	return false
}

// bail abandons a transaction mid-materialization: unpin what was
// gathered and fail.
func (m *ceTxnMachine) bail() {
	for _, f := range m.frames {
		m.ce.pool.Unpin(f, false)
	}
	clear(m.frames)
	m.frames = m.frames[:0]
	m.finish(false)
}

// finish reports the outcome to the terminal, then unwinds the held
// locks and thread slot in the blocking thread's defer (LIFO) order.
func (m *ceTxnMachine) finish(committed bool) {
	ce, t := m.ce, m.t
	if committed {
		t.Status = txn.StatusCommitted
	} else if t.Status != txn.StatusAborted {
		t.Status = txn.StatusMissed
	}
	t.Finished = m.task.Now()
	t.ExecSite = netsim.ServerSite
	ce.net.Send(netsim.Message{
		Kind: netsim.KindUserResult, From: netsim.ServerSite, To: t.Origin,
		Size: netsim.ResultBytes,
		Payload: proto.UserResult{
			Txn: t.ID, Committed: committed,
		},
	}, ce.terminals[int(t.Origin)-1].inbox)
	if m.locksOwned {
		ce.locks.ReleaseAll(lockmgr.OwnerID(t.ID))
		m.locksOwned = false
	}
	if m.slotHeld {
		ce.slots.Release()
		m.slotHeld = false
	}
	m.pc = xsDone
}

// Run executes the full experiment.
func (ce *Centralized) Run() (*Result, error) {
	ce.Start()
	ce.env.Run(ce.cfg.Duration + ce.cfg.Drain)
	res := ce.collect()
	err := ce.locks.Table().Audit()
	ce.env.Close()
	return res, err
}

func (ce *Centralized) collect() *Result {
	now := ce.env.Now()
	for _, term := range ce.terminals {
		for _, t := range term.tracked {
			if !t.Terminal() {
				if t.Deadline >= now {
					continue
				}
				t.Status = txn.StatusMissed
				t.Finished = now
			}
			if t.Arrival < ce.cfg.Warmup {
				continue
			}
			ce.m.Submitted++
			ce.m.RecordOutcome(t)
		}
	}
	return &Result{
		Config:              ce.cfg,
		M:                   ce.m,
		Messages:            messageSnapshot(ce.net),
		TotalMessages:       ce.net.TotalMessages(),
		TotalBytes:          ce.net.TotalBytes(),
		NetUtilization:      ce.net.Utilization(),
		ServerBufferHitRate: ce.pool.HitRate(),
		ServerDiskReads:     ce.disk.Reads,
		ServerDiskWrites:    ce.disk.Writes,
		Elapsed:             now,
	}
}
