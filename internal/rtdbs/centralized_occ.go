package rtdbs

import (
	"encoding/binary"
	"fmt"

	"siteselect/internal/config"
	"siteselect/internal/metrics"
	"siteselect/internal/netsim"
	"siteselect/internal/occ"
	"siteselect/internal/pagefile"
	"siteselect/internal/proto"
	"siteselect/internal/rng"
	"siteselect/internal/sim"
	"siteselect/internal/txn"
)

// CentralizedOCC is the optimistic variant of the centralized system —
// the concurrency-control study the paper's conclusion defers to future
// work. Transactions execute speculatively without locks and validate
// at commit; a validation conflict restarts the transaction while its
// deadline still permits.
type CentralizedOCC struct {
	cfg config.Config

	env   *sim.Env
	net   *netsim.Network
	m     *metrics.Collector
	disk  *pagefile.Disk
	pool  *pagefile.BufferPool
	slots *sim.Resource
	cpu   *sim.Resource
	valid *occ.Validator

	inbox     *sim.Mailbox[netsim.Message]
	terminals []*terminal

	// Restarts counts read-phase re-executions after failed validation.
	Restarts int64
}

// NewCentralizedOCC builds the optimistic centralized system.
func NewCentralizedOCC(cfg config.Config) (*CentralizedOCC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	env := sim.NewEnv()
	net := netsim.New(env, netsim.Config{
		Latency:      cfg.NetLatency,
		BandwidthBps: cfg.NetBandwidthBps,
		Switched:     cfg.Topology == config.TopologySwitched,
	})
	disk := pagefile.NewDisk(env, cfg.DBSize, pagefile.DiskConfig{
		ReadTime:  cfg.DiskRead,
		WriteTime: cfg.DiskWrite,
	})
	ce := &CentralizedOCC{
		cfg:   cfg,
		env:   env,
		net:   net,
		m:     &metrics.Collector{},
		disk:  disk,
		pool:  pagefile.NewBufferPool(env, disk, cfg.ServerMemory),
		slots: sim.NewResource(env, cfg.ServerThreads),
		cpu:   sim.NewResource(env, 1),
		valid: occ.NewValidator(cfg.DBSize),
		inbox: sim.NewMailbox[netsim.Message](env),
	}
	root := rng.NewStream(cfg.Seed)
	var nextID txn.ID
	newID := func() txn.ID { nextID++; return nextID }
	for i := 1; i <= cfg.NumClients; i++ {
		ce.terminals = append(ce.terminals, &terminal{
			id:    netsim.SiteID(i),
			inbox: sim.NewMailbox[netsim.Message](env),
			gen:   newGenerator(root, cfg, i, newID),
		})
	}
	return ce, nil
}

// Env exposes the simulation environment.
func (ce *CentralizedOCC) Env() *sim.Env { return ce.env }

// Net exposes the simulated LAN.
func (ce *CentralizedOCC) Net() *netsim.Network { return ce.net }

// Metrics exposes the live collector.
func (ce *CentralizedOCC) Metrics() *metrics.Collector { return ce.m }

// Validator exposes the validation counters.
func (ce *CentralizedOCC) Validator() *occ.Validator { return ce.valid }

// Start spawns the server dispatcher and terminal processes.
func (ce *CentralizedOCC) Start() {
	ce.env.Go("ce-occ-server", ce.serve)
	for _, term := range ce.terminals {
		term := term
		ce.env.Go(fmt.Sprintf("terminal-%d", term.id), func(p *sim.Proc) {
			for {
				next := term.gen.NextArrival()
				if next > ce.cfg.Duration {
					return
				}
				p.SleepUntil(next)
				t := term.gen.Next()
				term.tracked = append(term.tracked, t)
				ce.net.Send(netsim.Message{
					Kind: netsim.KindTxnSubmit, From: term.id, To: netsim.ServerSite,
					Size: netsim.TxnShipBytes, Payload: proto.TxnSubmit{T: t},
				}, ce.inbox)
			}
		})
		ce.env.Go(fmt.Sprintf("terminal-%d-drain", term.id), func(p *sim.Proc) {
			for {
				term.inbox.Get(p)
			}
		})
	}
}

func (ce *CentralizedOCC) serve(p *sim.Proc) {
	for {
		msg := ce.inbox.Get(p)
		sub, ok := msg.Payload.(proto.TxnSubmit)
		if !ok {
			panic(fmt.Sprintf("rtdbs: occ server got %T", msg.Payload))
		}
		if ce.cfg.ServerOpCPU > 0 {
			p.Acquire(ce.cpu, 0)
			p.Sleep(ce.cfg.ServerOpCPU)
			ce.cpu.Release()
		}
		t := sub.T
		ce.env.Go(fmt.Sprintf("occ-txn-%d", t.ID), func(tp *sim.Proc) {
			ce.runTxn(tp, t)
		})
	}
}

// runTxn executes one transaction optimistically: speculative read and
// compute phases without any locks, then serialized validation; a
// conflict restarts the read phase while the deadline still allows a
// full re-execution attempt.
func (ce *CentralizedOCC) runTxn(p *sim.Proc, t *txn.Transaction) {
	finish := func(committed bool) {
		if committed {
			t.Status = txn.StatusCommitted
		} else {
			t.Status = txn.StatusMissed
		}
		t.Finished = p.Now()
		t.ExecSite = netsim.ServerSite
		ce.net.Send(netsim.Message{
			Kind: netsim.KindUserResult, From: netsim.ServerSite, To: t.Origin,
			Size:    netsim.ResultBytes,
			Payload: proto.UserResult{Txn: t.ID, Committed: committed},
		}, ce.terminals[int(t.Origin)-1].inbox)
	}

	slack := t.Deadline - p.Now()
	if slack <= 0 || !p.AcquireTimeout(ce.slots, t.Deadline.Seconds(), slack) {
		finish(false)
		return
	}
	defer ce.slots.Release()
	t.Status = txn.StatusRunning

	objs := t.Objects()
	writes := make([]bool, len(t.Ops))
	for i, op := range t.Ops {
		writes[i] = op.Write
	}

	for attempt := 0; ; attempt++ {
		if p.Now() > t.Deadline {
			finish(false)
			return
		}
		// Read phase: snapshot versions, fault pages in, no locks held.
		snapshot := ce.valid.ReadSet(objs)
		frames := make([]*pagefile.Frame, 0, len(objs))
		abort := func() {
			for _, f := range frames {
				ce.pool.Unpin(f, false)
			}
		}
		ok := true
		for _, obj := range objs {
			if p.Now() > t.Deadline {
				ok = false
				break
			}
			if ce.cfg.ServerOpCPU > 0 {
				if !p.AcquireTimeout(ce.cpu, t.Deadline.Seconds(), t.Deadline-p.Now()) {
					ok = false
					break
				}
				p.Sleep(ce.cfg.ServerOpCPU)
				ce.cpu.Release()
			}
			f, err := ce.pool.Get(p, pagefile.PageID(obj))
			if err != nil {
				panic(fmt.Sprintf("rtdbs: occ read %d: %v", obj, err))
			}
			frames = append(frames, f)
		}
		if !ok || p.Now() > t.Deadline {
			abort()
			finish(false)
			return
		}

		// Compute phase (speculative).
		p.Sleep(t.Length)
		if p.Now() > t.Deadline {
			abort()
			finish(false)
			return
		}

		// Validation + write phase (serialized, atomic in virtual time).
		if ce.valid.Validate(objs, snapshot, writes) {
			for i, obj := range objs {
				dirty := writes[i]
				if dirty {
					binary.LittleEndian.PutUint64(frames[i].Data, uint64(ce.valid.Version(obj)))
				}
				ce.pool.Unpin(frames[i], dirty)
			}
			finish(true)
			return
		}
		abort()
		// Restart only while a full re-execution can still fit.
		if p.Now()+t.Length > t.Deadline {
			finish(false)
			return
		}
		ce.Restarts++
	}
}

// Run executes the full experiment.
func (ce *CentralizedOCC) Run() (*Result, error) {
	ce.Start()
	ce.env.Run(ce.cfg.Duration + ce.cfg.Drain)
	res := ce.collect()
	ce.env.Close()
	return res, nil
}

func (ce *CentralizedOCC) collect() *Result {
	now := ce.env.Now()
	for _, term := range ce.terminals {
		for _, t := range term.tracked {
			if !t.Terminal() {
				if t.Deadline >= now {
					continue
				}
				t.Status = txn.StatusMissed
				t.Finished = now
			}
			if t.Arrival < ce.cfg.Warmup {
				continue
			}
			ce.m.Submitted++
			ce.m.RecordOutcome(t)
		}
	}
	return &Result{
		Config:              ce.cfg,
		M:                   ce.m,
		Messages:            messageSnapshot(ce.net),
		TotalMessages:       ce.net.TotalMessages(),
		TotalBytes:          ce.net.TotalBytes(),
		NetUtilization:      ce.net.Utilization(),
		ServerBufferHitRate: ce.pool.HitRate(),
		ServerDiskReads:     ce.disk.Reads,
		ServerDiskWrites:    ce.disk.Writes,
		Elapsed:             now,
	}
}
