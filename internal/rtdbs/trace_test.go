package rtdbs

import (
	"testing"
	"time"

	"siteselect/internal/config"
	"siteselect/internal/trace"
)

// TestTraceZeroPerturbation verifies that turning tracing on does not
// change the simulation: a traced run and an untraced run with the same
// seed produce identical metrics (the tracer only observes).
func TestTraceZeroPerturbation(t *testing.T) {
	for _, sys := range []string{"cs", "ls"} {
		t.Run(sys, func(t *testing.T) {
			run := func(traced bool) string {
				cfg := smallConfig(6, 0.20)
				cfg.Trace = traced
				var (
					c   *Cluster
					err error
				)
				if sys == "cs" {
					c, err = NewClientServer(cfg)
				} else {
					c, err = NewLoadSharing(cfg)
				}
				if err != nil {
					t.Fatal(err)
				}
				res, err := c.Run()
				if err != nil {
					t.Fatal(err)
				}
				return fingerprint(res)
			}
			off, on := run(false), run(true)
			if off != on {
				t.Fatalf("tracing perturbed the run:\n  off=%s\n  on= %s", off, on)
			}
		})
	}
}

// TestTraceAttributionEndToEnd runs a traced load-sharing cluster with
// the continuous invariant monitor (which includes the per-step
// slack-attribution check) and verifies the aggregate properties: every
// finished trace's buckets sum to its elapsed time, and the miss-cause
// table accounts for exactly the missed transactions the metrics report.
func TestTraceAttributionEndToEnd(t *testing.T) {
	cfg := faultyConfig(6, 0.20)
	cfg.Trace = true
	ls, err := NewLoadSharing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ls.Run()
	if err != nil {
		t.Fatalf("traced run failed audit: %v", err)
	}
	tr := ls.Tracer()
	if tr == nil {
		t.Fatal("Tracer() nil on a traced cluster")
	}
	finished := 0
	for _, tt := range tr.Traces() {
		if !tt.Done {
			continue
		}
		finished++
		var sum time.Duration
		for _, b := range tt.Buckets {
			if b < 0 {
				t.Fatalf("txn %d: negative bucket %v", tt.ID, b)
			}
			sum += b
		}
		if sum != tt.Elapsed() {
			t.Fatalf("txn %d: attribution %v != elapsed %v", tt.ID, sum, tt.Elapsed())
		}
	}
	if finished == 0 {
		t.Fatal("no finished traces")
	}
	if res.MissCauses == nil {
		t.Fatal("MissCauses nil on a traced run")
	}
	if res.MissCauses.Missed != res.M.Missed {
		t.Fatalf("miss-cause table counts %d missed, metrics report %d",
			res.MissCauses.Missed, res.M.Missed)
	}
	var byCause int64
	for _, n := range res.MissCauses.ByCause {
		byCause += n
	}
	if byCause != res.MissCauses.Missed {
		t.Fatalf("cause rows sum to %d, want %d", byCause, res.MissCauses.Missed)
	}
}

// TestTraceFaultyRunRetryAttribution verifies that under fault
// injection, client retransmissions show up in the retry bucket — and
// that the attribution identity survives retries, backoff, and shipped
// transactions (Run's VerifyAll plus the continuous monitor enforce it).
func TestTraceFaultyRunRetryAttribution(t *testing.T) {
	cfg := faultyConfig(6, 0.20)
	cfg.Trace = true
	cfg.Faults = config.FaultSpec{
		DropRate:     0.1,
		DupRate:      0.08,
		SpikeRate:    0.08,
		SpikeLatency: 5 * time.Millisecond,
	}
	ls, err := NewLoadSharing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ls.Run()
	if err != nil {
		t.Fatalf("traced faulty run failed audit: %v", err)
	}
	if res.Retries == 0 {
		t.Fatal("fault injection produced no retries; test is vacuous")
	}
	var retryTime time.Duration
	events := 0
	for _, tt := range ls.Tracer().Traces() {
		retryTime += tt.Buckets[trace.CompRetry]
		events += len(tt.Events)
	}
	if retryTime == 0 {
		t.Fatal("retries happened but no trace carries retry-bucket time")
	}
	if events == 0 {
		t.Fatal("no trace events recorded")
	}
}

// TestTraceUntracedClusterInert pins the off state: no tracer object, no
// miss-cause table, and nil-tracer accessors are safe.
func TestTraceUntracedClusterInert(t *testing.T) {
	ls, err := NewLoadSharing(smallConfig(4, 0.20))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ls.Tracer() != nil {
		t.Fatal("untraced cluster has a tracer")
	}
	if res.MissCauses != nil {
		t.Fatal("untraced run produced a miss-cause table")
	}
	if ls.Tracer().Traces() != nil || ls.Tracer().Enabled() {
		t.Fatal("nil tracer not inert")
	}
}
