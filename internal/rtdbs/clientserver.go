package rtdbs

import (
	"fmt"

	"siteselect/internal/client"
	"siteselect/internal/config"
	"siteselect/internal/lockmgr"
	"siteselect/internal/metrics"
	"siteselect/internal/netsim"
	"siteselect/internal/rng"
	"siteselect/internal/server"
	"siteselect/internal/sim"
	"siteselect/internal/txn"
)

// Cluster is a client-server system: one server, N client sites, a
// shared LAN. With loadShare false it is the basic CS-RTDBS
// (object-shipping with callback locking); with loadShare true it is the
// LS-CS-RTDBS running the Section 4 algorithm.
type Cluster struct {
	cfg       config.Config
	loadShare bool

	env     *sim.Env
	net     *netsim.Network
	m       *metrics.Collector
	server  *server.Server
	clients []*client.Client
}

// NewClientServer builds the basic CS-RTDBS. Load-sharing features are
// forced off regardless of the config flags.
func NewClientServer(cfg config.Config) (*Cluster, error) {
	cfg.UseH1 = false
	cfg.UseH2 = false
	cfg.UseDecomposition = false
	cfg.UseForwardLists = false
	return newCluster(cfg, false)
}

// NewLoadSharing builds the LS-CS-RTDBS with the configured feature
// toggles (all on for the paper's system; ablations switch them off
// selectively).
func NewLoadSharing(cfg config.Config) (*Cluster, error) {
	return newCluster(cfg, true)
}

func newCluster(cfg config.Config, loadShare bool) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	env := sim.NewEnv()
	net := netsim.New(env, netsim.Config{
		Latency:      cfg.NetLatency,
		BandwidthBps: cfg.NetBandwidthBps,
		Switched:     cfg.Topology == config.TopologySwitched,
	})
	c := &Cluster{
		cfg:       cfg,
		loadShare: loadShare,
		env:       env,
		net:       net,
		m:         &metrics.Collector{},
		server:    server.New(env, cfg, net),
	}
	root := rng.NewStream(cfg.Seed)
	var nextID txn.ID
	newID := func() txn.ID { nextID++; return nextID }

	inboxes := make(map[netsim.SiteID]*sim.Mailbox[netsim.Message], cfg.NumClients)
	for i := 1; i <= cfg.NumClients; i++ {
		id := netsim.SiteID(i)
		inbox := sim.NewMailbox[netsim.Message](env)
		serverIn := sim.NewMailbox[netsim.Message](env)
		c.server.Attach(id, serverIn, inbox)
		inboxes[id] = inbox

		gen := newGenerator(root, cfg, i, newID)
		c.clients = append(c.clients, client.New(
			env, cfg, id, net, c.m, inbox, serverIn, gen, loadShare))
	}
	for _, cl := range c.clients {
		cl.SetPeers(inboxes)
	}
	return c, nil
}

// Env exposes the simulation environment (tests drive it directly).
func (c *Cluster) Env() *sim.Env { return c.env }

// Server exposes the server actor.
func (c *Cluster) Server() *server.Server { return c.server }

// Net exposes the simulated LAN (e.g. to install a message trace before
// Start).
func (c *Cluster) Net() *netsim.Network { return c.net }

// Clients exposes the client actors.
func (c *Cluster) Clients() []*client.Client { return c.clients }

// Metrics exposes the live metrics collector.
func (c *Cluster) Metrics() *metrics.Collector { return c.m }

// Start spawns all actors without running the clock (tests use this).
func (c *Cluster) Start() {
	c.server.Start()
	for _, cl := range c.clients {
		cl.Start()
	}
}

// Run executes the full experiment: generate work for cfg.Duration, let
// in-flight transactions drain, finalize outcomes, audit invariants, and
// shut the simulation down.
func (c *Cluster) Run() (*Result, error) {
	c.Start()
	c.env.Run(c.cfg.Duration + c.cfg.Drain)
	res := c.collect()
	err := c.Audit()
	c.env.Close()
	if err != nil {
		return res, err
	}
	return res, nil
}

func (c *Cluster) collect() *Result {
	now := c.env.Now()
	for _, cl := range c.clients {
		for _, t := range cl.Tracked {
			if !t.Terminal() {
				if t.Deadline >= now {
					continue // still legitimately in flight; exclude
				}
				t.Status = txn.StatusMissed
				t.Finished = now
			}
			if t.Arrival < c.cfg.Warmup {
				continue // cold-start transactions are excluded
			}
			c.m.Submitted++
			c.m.RecordOutcome(t)
		}
	}
	res := &Result{
		Config:              c.cfg,
		M:                   c.m,
		Messages:            messageSnapshot(c.net),
		TotalMessages:       c.net.TotalMessages(),
		TotalBytes:          c.net.TotalBytes(),
		NetUtilization:      c.net.Utilization(),
		ServerBufferHitRate: c.server.Pool().HitRate(),
		ServerDiskReads:     c.server.Disk().Reads,
		ServerDiskWrites:    c.server.Disk().Writes,
		RecallsSent:         c.server.RecallsSent,
		GrantsShipped:       c.server.GrantsShipped,
		MigrationsStarted:   c.server.MigrationsStarted,
		DeniesExpired:       c.server.DeniesExpired,
		DeniesDeadlock:      c.server.DeniesDeadlock,
		Elapsed:             now,
	}
	res.ExecutedPerSite = make(map[netsim.SiteID]int64, len(c.clients))
	for _, cl := range c.clients {
		res.ForwardHops += cl.ForwardHops
		for _, t := range cl.Tracked {
			if t.Status == txn.StatusCommitted && t.Arrival >= c.cfg.Warmup {
				res.ExecutedPerSite[t.ExecSite]++
			}
		}
	}
	return res
}

// Audit verifies cross-cutting invariants after a run: the global lock
// table is consistent, no client cache holds a dirty object without an
// exclusive lock, and every clean cached copy is current — its version
// matches the server's (a stale clean copy would mean a reader could
// observe a value some committed writer already replaced).
func (c *Cluster) Audit() error {
	if err := c.server.AuditLocks(); err != nil {
		return err
	}
	for _, cl := range c.clients {
		for _, e := range cl.Cache().Entries() {
			if cl.HasDeferredRecall(e.Obj) {
				continue // a pending callback makes any state transitional
			}
			if e.Dirty {
				if e.Mode != lockmgr.ModeExclusive {
					return fmt.Errorf("rtdbs: client %d caches dirty object %d with %v",
						cl.ID(), e.Obj, e.Mode)
				}
				if e.Version <= c.server.Version(e.Obj) {
					return fmt.Errorf("rtdbs: client %d's dirty object %d at version %d not ahead of server's %d",
						cl.ID(), e.Obj, e.Version, c.server.Version(e.Obj))
				}
				continue
			}
			if e.Version > c.server.Version(e.Obj) && c.server.Migrating(e.Obj) {
				continue // retained copy ahead of a still-travelling chain
			}
			if e.Version != c.server.Version(e.Obj) {
				return fmt.Errorf("rtdbs: client %d caches stale clean object %d (version %d, server %d)",
					cl.ID(), e.Obj, e.Version, c.server.Version(e.Obj))
			}
		}
	}
	return nil
}
