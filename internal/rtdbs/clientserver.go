package rtdbs

import (
	"fmt"
	"sort"

	"siteselect/internal/client"
	"siteselect/internal/config"
	"siteselect/internal/invariant"
	"siteselect/internal/lockmgr"
	"siteselect/internal/metrics"
	"siteselect/internal/netsim"
	"siteselect/internal/rng"
	"siteselect/internal/server"
	"siteselect/internal/shardmap"
	"siteselect/internal/sim"
	"siteselect/internal/trace"
	"siteselect/internal/txn"
)

// Cluster is a client-server system: one or more server shards
// (config.Topology), N client sites, a shared LAN. With loadShare false
// it is the basic CS-RTDBS (object-shipping with callback locking);
// with loadShare true it is the LS-CS-RTDBS running the Section 4
// algorithm. servers[0] is shard 0 at netsim.ServerSite; server aliases
// it for the single-server accessors.
type Cluster struct {
	cfg       config.Config
	loadShare bool

	env     *sim.Env
	net     *netsim.Network
	m       *metrics.Collector
	topo    *shardmap.Map
	server  *server.Server
	servers []*server.Server
	clients []*client.Client
	tr      *trace.Tracer
}

// NewClientServer builds the basic CS-RTDBS. Load-sharing features are
// forced off regardless of the config flags.
func NewClientServer(cfg config.Config) (*Cluster, error) {
	cfg.UseH1 = false
	cfg.UseH2 = false
	cfg.UseDecomposition = false
	cfg.UseForwardLists = false
	return newCluster(cfg, false)
}

// NewLoadSharing builds the LS-CS-RTDBS with the configured feature
// toggles (all on for the paper's system; ablations switch them off
// selectively).
func NewLoadSharing(cfg config.Config) (*Cluster, error) {
	return newCluster(cfg, true)
}

func newCluster(cfg config.Config, loadShare bool) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	env := sim.NewEnv()
	net := netsim.New(env, netsim.Config{
		Latency:      cfg.NetLatency,
		BandwidthBps: cfg.NetBandwidthBps,
		Switched:     cfg.Topology == config.TopologySwitched,
	})
	if cfg.Faults.Enabled() {
		net.SetFaults(faultConfig(cfg))
	}
	topo := shardmap.New(cfg.Sharding)
	c := &Cluster{
		cfg:       cfg,
		loadShare: loadShare,
		env:       env,
		net:       net,
		m:         &metrics.Collector{},
		topo:      topo,
	}
	nShards := topo.Servers()
	for k := 0; k < nShards; k++ {
		c.servers = append(c.servers, server.NewShard(env, cfg, net, k, topo))
	}
	c.server = c.servers[0]
	if topo.Multi() {
		// Shard-to-shard mailboxes: every shard gets one peer inbox and
		// every other shard a route to it (replica installs, drains, and
		// forwarded firm requests).
		for k, sv := range c.servers {
			in := sim.NewMailbox[netsim.Message](env)
			sv.SetPeerInbox(in)
			for _, other := range c.servers {
				other.AttachPeer(k, in)
			}
		}
	}
	root := rng.NewStream(cfg.Seed)
	var nextID txn.ID
	newID := func() txn.ID { nextID++; return nextID }

	inboxes := make(map[netsim.SiteID]*sim.Mailbox[netsim.Message], cfg.NumClients)
	for i := 1; i <= cfg.NumClients; i++ {
		id := netsim.SiteID(i)
		inbox := sim.NewMailbox[netsim.Message](env)
		shardIns := make([]*sim.Mailbox[netsim.Message], nShards)
		for k, sv := range c.servers {
			shardIns[k] = sim.NewMailbox[netsim.Message](env)
			sv.Attach(id, shardIns[k], inbox)
		}
		inboxes[id] = inbox

		gen := newGenerator(root, cfg, i, newID)
		cl := client.New(env, cfg, id, net, c.m, inbox, shardIns[0], gen, loadShare)
		if topo.Multi() {
			cl.SetShards(topo, shardIns)
		}
		c.clients = append(c.clients, cl)
	}
	for _, cl := range c.clients {
		cl.SetPeers(inboxes)
	}
	c.seedReplicas()
	if cfg.Trace {
		c.tr = trace.New()
		for _, sv := range c.servers {
			sv.SetTracer(c.tr)
		}
		for _, cl := range c.clients {
			cl.SetTracer(c.tr)
		}
	}
	return c, nil
}

// seedReplicas installs the topology's static replica placements
// (Topology.Replicas) before the run starts, in object order for
// determinism. Placements the home shard cannot honour are skipped —
// validation already bounds them, so the only skip reason here is a
// duplicate.
func (c *Cluster) seedReplicas() {
	if !c.topo.Multi() || len(c.cfg.Sharding.Replicas) == 0 {
		return
	}
	objs := make([]int, 0, len(c.cfg.Sharding.Replicas))
	for obj := range c.cfg.Sharding.Replicas {
		objs = append(objs, obj)
	}
	sort.Ints(objs)
	for _, obj := range objs {
		target := c.cfg.Sharding.Replicas[obj]
		home := c.topo.HomeShard(lockmgr.ObjectID(obj))
		c.servers[home].SeedReplica(lockmgr.ObjectID(obj), c.servers[target])
	}
}

// faultSeedCoord is the coordinate separating the fault lottery stream
// from the workload streams in seed derivation ("fault" in ASCII).
const faultSeedCoord int64 = 0x6661756c74

// faultConfig translates the experiment-level fault spec into the
// network's fault schedule. The fault stream is seeded on a coordinate
// of its own, so enabling faults leaves every workload stream
// untouched, and fault activity stops at the generation horizon so the
// drain window converges.
func faultConfig(cfg config.Config) netsim.FaultConfig {
	fc := netsim.FaultConfig{
		Seed:         config.CellSeed(cfg.Seed, faultSeedCoord),
		DropRate:     cfg.Faults.DropRate,
		DupRate:      cfg.Faults.DupRate,
		SpikeRate:    cfg.Faults.SpikeRate,
		SpikeLatency: cfg.Faults.SpikeLatency,
		Horizon:      cfg.Duration,
	}
	if cfg.Faults.PartitionDuration > 0 {
		window := netsim.Partition{
			Start: cfg.Faults.PartitionAt,
			End:   cfg.Faults.PartitionAt + cfg.Faults.PartitionDuration,
		}
		if cfg.Faults.PartitionShard > 0 {
			// Server-shard partition: the shard's site id is negative;
			// every message to or from it drops for the window, and the
			// clients' retransmission machinery rides it out. It replaces
			// the PartitionSite partition — the zero-valued PartitionSite
			// would otherwise partition shard 0 too.
			window.Site = shardmap.ShardSite(cfg.Faults.PartitionShard)
		} else {
			window.Site = netsim.SiteID(cfg.Faults.PartitionSite)
		}
		fc.Partitions = []netsim.Partition{window}
	}
	return fc
}

// Env exposes the simulation environment (tests drive it directly).
func (c *Cluster) Env() *sim.Env { return c.env }

// Server exposes the server actor for shard 0 (the only shard in
// single-server topologies).
func (c *Cluster) Server() *server.Server { return c.server }

// Servers exposes every server shard.
func (c *Cluster) Servers() []*server.Server { return c.servers }

// home returns the server shard authoritative for obj.
func (c *Cluster) home(obj lockmgr.ObjectID) *server.Server {
	return c.servers[c.topo.HomeShard(obj)]
}

// Net exposes the simulated LAN (e.g. to install a message trace before
// Start).
func (c *Cluster) Net() *netsim.Network { return c.net }

// Clients exposes the client actors.
func (c *Cluster) Clients() []*client.Client { return c.clients }

// Metrics exposes the live metrics collector.
func (c *Cluster) Metrics() *metrics.Collector { return c.m }

// Tracer exposes the per-transaction tracer (nil unless cfg.Trace).
func (c *Cluster) Tracer() *trace.Tracer { return c.tr }

// Start spawns all actors without running the clock (tests use this).
func (c *Cluster) Start() {
	for _, sv := range c.servers {
		sv.Start()
	}
	for _, cl := range c.clients {
		cl.Start()
	}
}

// Run executes the full experiment: generate work for cfg.Duration, let
// in-flight transactions drain, finalize outcomes, audit invariants, and
// shut the simulation down. With cfg.CheckInvariants set, a continuous
// invariant monitor re-checks the model after every executed event and
// a commit tracker verifies at the end that no committed update was
// lost.
func (c *Cluster) Run() (*Result, error) {
	var mon *invariant.Monitor
	var committed *invariant.Committed
	if c.cfg.CheckInvariants {
		mon, committed = c.monitor()
		mon.Attach()
	}
	c.Start()
	c.env.Run(c.cfg.Duration + c.cfg.Drain)
	res := c.collect()
	err := c.Audit()
	if err == nil && mon != nil {
		err = mon.Final()
	}
	if err == nil && committed != nil {
		err = committed.Verify(c.bestVersion)
	}
	if err == nil {
		err = c.tr.VerifyAll()
	}
	c.env.Close()
	if err != nil {
		return res, err
	}
	return res, nil
}

// monitor assembles the continuous check suite: global lock-table
// consistency, forward-list well-formedness, dirty-implies-exclusive on
// every client cache, and request conservation (no transaction waits
// past its deadline plus a small grace). It also installs the commit
// tracker — except when the configured outage is allowed to lose
// updates by design (no recovery log).
func (c *Cluster) monitor() (*invariant.Monitor, *invariant.Committed) {
	var committed *invariant.Committed
	if c.cfg.OutageClient == 0 || c.cfg.UseLogging {
		committed = invariant.NewCommitted()
		for _, cl := range c.clients {
			cl.SetCommitHook(committed.Observe)
		}
	}
	grace := c.cfg.MeanSlack + 2*c.cfg.EffectiveRetryTimeout()
	eachServer := func(fn func(*server.Server) error) func() error {
		return func() error {
			for _, sv := range c.servers {
				if err := fn(sv); err != nil {
					return err
				}
			}
			return nil
		}
	}
	checks := []invariant.Check{
		{Name: "lock-table", Fn: eachServer((*server.Server).AuditLocks)},
		{Name: "forward-lists", Fn: eachServer((*server.Server).AuditForward)},
		{Name: "batch-conservation", Fn: eachServer((*server.Server).AuditBatch)},
		{Name: "dirty-implies-exclusive", Fn: c.auditDirty},
		{Name: "request-conservation", Fn: func() error {
			for _, cl := range c.clients {
				if err := cl.AuditPending(grace); err != nil {
					return err
				}
			}
			return nil
		}},
	}
	if c.tr != nil {
		// Attribution identity: every trace closed since the last step
		// must have buckets summing exactly to its elapsed time.
		checks = append(checks, invariant.Check{Name: "slack-attribution", Fn: c.tr.VerifyNewlyClosed})
	}
	return invariant.New(c.env, 1, checks...), committed
}

// auditDirty is the per-step slice of the end-of-run cache audit: a
// dirty cached object must be held exclusively. (The version
// comparisons of Audit are end-of-run properties — mid-run the server's
// copy legitimately lags committed writers.)
func (c *Cluster) auditDirty() error {
	for _, cl := range c.clients {
		for _, e := range cl.Cache().Entries() {
			if e.Dirty && e.Mode != lockmgr.ModeExclusive && !cl.HasDeferredRecall(e.Obj) {
				return fmt.Errorf("rtdbs: client %d caches dirty object %d with %v",
					cl.ID(), e.Obj, e.Mode)
			}
		}
	}
	return nil
}

// bestVersion returns the highest version of obj any surviving copy
// carries — a server shard's page or a client's cached copy.
func (c *Cluster) bestVersion(obj lockmgr.ObjectID) int64 {
	best := c.home(obj).Version(obj)
	for _, sv := range c.servers {
		if v := sv.Version(obj); v > best {
			best = v
		}
	}
	for _, cl := range c.clients {
		if e := cl.Cache().Peek(obj); e != nil && e.Version > best {
			best = e.Version
		}
	}
	return best
}

func (c *Cluster) collect() *Result {
	now := c.env.Now()
	for _, cl := range c.clients {
		for _, t := range cl.Tracked {
			if !t.Terminal() {
				if t.Deadline >= now {
					continue // still legitimately in flight; exclude
				}
				t.Status = txn.StatusMissed
				t.Finished = now
				// Close the stranded transaction's trace so its wait since
				// the last mark is attributed (it died waiting).
				site := t.ExecSite
				if site == netsim.ServerSite {
					site = t.Origin
				}
				c.tr.Finish(t, site, now)
			}
			if t.Arrival < c.cfg.Warmup {
				continue // cold-start transactions are excluded
			}
			c.m.Submitted++
			c.m.RecordOutcome(t)
		}
	}
	res := &Result{
		Config:              c.cfg,
		M:                   c.m,
		Messages:            messageSnapshot(c.net),
		TotalMessages:       c.net.TotalMessages(),
		TotalBytes:          c.net.TotalBytes(),
		NetUtilization:      c.net.Utilization(),
		ServerBufferHitRate: c.server.Pool().HitRate(),
		Elapsed:             now,
	}
	if len(c.servers) > 1 {
		// Hit rates average across shards; everything else sums.
		var hit float64
		for _, sv := range c.servers {
			hit += sv.Pool().HitRate()
		}
		res.ServerBufferHitRate = hit / float64(len(c.servers))
	}
	for _, sv := range c.servers {
		res.ServerDiskReads += sv.Disk().Reads
		res.ServerDiskWrites += sv.Disk().Writes
		res.RecallsSent += sv.RecallsSent
		res.GrantsShipped += sv.GrantsShipped
		res.MigrationsStarted += sv.MigrationsStarted
		res.DeniesExpired += sv.DeniesExpired
		res.DeniesDeadlock += sv.DeniesDeadlock
		res.BatchFlushes += sv.Batcher().Flushes
		res.BatchedRequests += sv.Batcher().Batched
		res.ReplicasInstalled += sv.ReplicasInstalled
		res.ReplicasShed += sv.ReplicasShed
		res.RequestsForwarded += sv.RequestsForwarded
	}
	res.Faults = c.net.Faults()
	if c.tr != nil {
		res.MissCauses = c.tr.MissCauses(c.cfg.Warmup)
	}
	res.ExecutedPerSite = make(map[netsim.SiteID]int64, len(c.clients))
	for _, cl := range c.clients {
		res.ForwardHops += cl.ForwardHops
		res.Retries += cl.Retries
		for _, t := range cl.Tracked {
			if t.Status == txn.StatusCommitted && t.Arrival >= c.cfg.Warmup {
				res.ExecutedPerSite[t.ExecSite]++
			}
		}
	}
	return res
}

// Audit verifies cross-cutting invariants after a run: the global lock
// table is consistent, no client cache holds a dirty object without an
// exclusive lock, and every clean cached copy is current — its version
// matches the server's (a stale clean copy would mean a reader could
// observe a value some committed writer already replaced).
func (c *Cluster) Audit() error {
	for _, sv := range c.servers {
		if err := sv.AuditLocks(); err != nil {
			return err
		}
	}
	for _, cl := range c.clients {
		for _, e := range cl.Cache().Entries() {
			if cl.HasDeferredRecall(e.Obj) {
				continue // a pending callback makes any state transitional
			}
			home := c.home(e.Obj)
			if e.Dirty {
				if e.Mode != lockmgr.ModeExclusive {
					return fmt.Errorf("rtdbs: client %d caches dirty object %d with %v",
						cl.ID(), e.Obj, e.Mode)
				}
				if e.Version <= home.Version(e.Obj) {
					return fmt.Errorf("rtdbs: client %d's dirty object %d at version %d not ahead of server's %d",
						cl.ID(), e.Obj, e.Version, home.Version(e.Obj))
				}
				continue
			}
			if e.Version > home.Version(e.Obj) && home.Migrating(e.Obj) {
				continue // retained copy ahead of a still-travelling chain
			}
			if e.Version != home.Version(e.Obj) {
				return fmt.Errorf("rtdbs: client %d caches stale clean object %d (version %d, server %d)",
					cl.ID(), e.Obj, e.Version, home.Version(e.Obj))
			}
		}
	}
	return nil
}
