package rtdbs

import (
	"testing"
	"time"

	"siteselect/internal/config"
	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
	"siteselect/internal/txn"
)

// TestDeterminism verifies that two runs with identical configurations
// produce bit-identical metrics — the property every A/B comparison in
// the experiments relies on.
func TestDeterminism(t *testing.T) {
	type summary struct {
		committed, missed, aborted int64
		messages, bytes            int64
		hits, accesses             int64
		shipped, migrations        int64
	}
	run := func() summary {
		ls, err := NewLoadSharing(smallConfig(8, 0.20))
		if err != nil {
			t.Fatal(err)
		}
		res, err := ls.Run()
		if err != nil {
			t.Fatal(err)
		}
		return summary{
			committed:  res.M.Committed,
			missed:     res.M.Missed,
			aborted:    res.M.Aborted,
			messages:   res.TotalMessages,
			bytes:      res.TotalBytes,
			hits:       res.M.CacheHits,
			accesses:   res.M.CacheAccesses,
			shipped:    res.M.ShippedTxns,
			migrations: res.MigrationsStarted,
		}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("runs diverged:\n  a=%+v\n  b=%+v", a, b)
	}
}

// TestSeedSensitivity verifies that different seeds actually change the
// workload (guarding against accidentally fixed sub-seeds).
func TestSeedSensitivity(t *testing.T) {
	run := func(seed int64) int64 {
		cfg := smallConfig(8, 0.05)
		cfg.Seed = seed
		cs, err := NewClientServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cs.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalMessages
	}
	if run(1) == run(2) {
		t.Fatal("seeds 1 and 2 produced identical message counts")
	}
}

// TestOutcomeConservation checks that every counted transaction reached
// exactly one terminal state in all three systems.
func TestOutcomeConservation(t *testing.T) {
	cfg := smallConfig(6, 0.20)
	ce, err := NewCentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rce, err := ce.Run()
	if err != nil {
		t.Fatal(err)
	}
	cs, _ := NewClientServer(cfg)
	rcs, err := cs.Run()
	if err != nil {
		t.Fatal(err)
	}
	ls, _ := NewLoadSharing(cfg)
	rls, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*Result{"CE": rce, "CS": rcs, "LS": rls} {
		if got := r.M.Committed + r.M.Missed + r.M.Aborted; got != r.M.Submitted {
			t.Errorf("%s: outcomes %d != submitted %d", name, got, r.M.Submitted)
		}
	}
}

// TestMessageConservation checks protocol-level pairings: every recall
// is eventually answered by a return, and client-to-client hops only
// appear in the load-sharing system.
func TestMessageConservation(t *testing.T) {
	cfg := smallConfig(8, 0.20)
	cs, _ := NewClientServer(cfg)
	rcs, err := cs.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := rcs.Messages[netsim.KindClientForward].Count; got != 0 {
		t.Errorf("CS produced %d client-to-client forwards", got)
	}
	// Returns answer recalls plus voluntary dirty evictions, so
	// returns >= recalls - (in-flight at shutdown).
	recalls := rcs.Messages[netsim.KindRecall].Count
	returns := rcs.Messages[netsim.KindObjectReturn].Count
	if returns < recalls-10 {
		t.Errorf("returns %d much lower than recalls %d", returns, recalls)
	}
}

// TestLockTableCleanAfterDrain verifies that after a run every global
// lock is either held by a client that still caches the object, or
// nothing (no locks leaked to dead transactions).
func TestLockTableCleanAfterDrain(t *testing.T) {
	cfg := smallConfig(6, 0.20)
	ls, _ := NewLoadSharing(cfg)
	ls.Start()
	ls.Env().Run(cfg.Duration + cfg.Drain)
	defer ls.Env().Close()
	if err := ls.Audit(); err != nil {
		t.Fatal(err)
	}
	// Spot-check holder/cache agreement: for every object a client
	// caches with EL, the server must record that client as EL holder.
	srv := ls.Server()
	for _, cl := range ls.Clients() {
		for _, e := range cl.Cache().Entries() {
			if e.Dirty && srv.Locks().HolderMode(e.Obj, lockmgr.OwnerID(cl.ID())) == 0 {
				t.Fatalf("client %d caches dirty object %d without a server-side lock", cl.ID(), e.Obj)
			}
		}
	}
}

// TestShippedTransactionsExecuteRemotely verifies the shipping path end
// to end: shipped transactions record an ExecSite different from their
// origin and still reach terminal states.
func TestShippedTransactionsExecuteRemotely(t *testing.T) {
	cfg := smallConfig(12, 0.20)
	cfg.Duration = 8 * time.Minute
	cfg.Warmup = time.Minute
	ls, _ := NewLoadSharing(cfg)
	res, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	shipped := 0
	for _, cl := range ls.Clients() {
		for _, tx := range cl.Tracked {
			if !tx.Shipped || !tx.Terminal() {
				continue
			}
			shipped++
			if tx.Status == txn.StatusCommitted && tx.ExecSite == tx.Origin {
				t.Errorf("txn %d marked shipped but committed at its origin", tx.ID)
			}
		}
	}
	if res.M.ShippedTxns > 0 && shipped == 0 {
		t.Error("ShippedTxns counted but no shipped transaction tracked")
	}
}

// TestCSMatchesLSWithEverythingOff checks that the load-sharing system
// with every technique disabled behaves like the basic client-server
// system on the primary metric.
func TestCSMatchesLSWithEverythingOff(t *testing.T) {
	cfg := smallConfig(8, 0.05)
	cs, _ := NewClientServer(cfg)
	rcs, err := cs.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.UseH1 = false
	cfg2.UseH2 = false
	cfg2.UseDecomposition = false
	cfg2.UseForwardLists = false
	ls, _ := NewLoadSharing(cfg2)
	rls, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rcs.M.Committed != rls.M.Committed || rcs.TotalMessages != rls.TotalMessages {
		t.Fatalf("neutered LS differs from CS: committed %d vs %d, messages %d vs %d",
			rcs.M.Committed, rls.M.Committed, rcs.TotalMessages, rls.TotalMessages)
	}
}

// TestTinyCachesStillCorrect stresses eviction paths: one-object memory
// tier, no disk tier.
func TestTinyCachesStillCorrect(t *testing.T) {
	cfg := smallConfig(4, 0.20)
	cfg.ClientMemory = 2
	cfg.ClientDisk = 0
	cfg.Duration = 5 * time.Minute
	cfg.Warmup = time.Minute
	for _, build := range []func(config.Config) (*Cluster, error){NewClientServer, NewLoadSharing} {
		c, err := build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.M.Submitted == 0 {
			t.Fatal("no work")
		}
	}
}

// TestSingleClient exercises the degenerate one-client cluster.
func TestSingleClient(t *testing.T) {
	cfg := smallConfig(1, 0.20)
	cfg.Duration = 5 * time.Minute
	cfg.Warmup = time.Minute
	ls, err := NewLoadSharing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.M.ShippedTxns != 0 {
		t.Fatalf("single client shipped %d transactions", res.M.ShippedTxns)
	}
	if res.M.Committed == 0 {
		t.Fatal("nothing committed")
	}
}

// TestSerialClients runs with one executor per client (the strict
// serial-queue reading of H1).
func TestSerialClients(t *testing.T) {
	cfg := smallConfig(6, 0.05)
	cfg.ClientExecutors = 1
	cfg.Duration = 8 * time.Minute
	cfg.Warmup = time.Minute
	ls, err := NewLoadSharing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Committed == 0 {
		t.Fatal("nothing committed with serial executors")
	}
}

// TestZeroUpdateWorkload runs a read-only workload: no recalls beyond
// cold-start effects should be needed and nothing may abort.
func TestZeroUpdateWorkload(t *testing.T) {
	cfg := smallConfig(6, 0)
	ls, err := NewLoadSharing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Aborted != 0 {
		t.Fatalf("read-only workload aborted %d transactions", res.M.Aborted)
	}
	if res.DeniesDeadlock != 0 {
		t.Fatalf("read-only workload hit %d deadlock denials", res.DeniesDeadlock)
	}
}

// TestAllWritesStress runs a 100%-update workload: maximal lock
// conflict, recall and migration pressure. Audits must stay clean.
func TestAllWritesStress(t *testing.T) {
	cfg := smallConfig(8, 1.0)
	cfg.Duration = 6 * time.Minute
	cfg.Warmup = time.Minute
	ls, err := NewLoadSharing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Submitted == 0 {
		t.Fatal("no work")
	}
	if got := res.M.Committed + res.M.Missed + res.M.Aborted; got != res.M.Submitted {
		t.Fatalf("outcomes %d != submitted %d", got, res.M.Submitted)
	}
}

// TestDecompositionEndToEnd forces heavy decomposition (every
// transaction decomposable over a tightly clustered database) and
// verifies subtasks run and parents terminate exactly once.
func TestDecompositionEndToEnd(t *testing.T) {
	cfg := smallConfig(8, 0.05)
	cfg.DecomposableFraction = 1.0
	cfg.DBSize = 400
	cfg.HotRegionSize = 50
	cfg.Duration = 10 * time.Minute
	cfg.Warmup = time.Minute
	ls, err := NewLoadSharing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.M.DecomposedTxns == 0 {
		t.Skip("workload produced no decomposable groupings (location-dependent)")
	}
	if res.M.SubtasksRun < 2*res.M.DecomposedTxns {
		t.Fatalf("decomposed %d but only %d subtasks", res.M.DecomposedTxns, res.M.SubtasksRun)
	}
	if got := res.M.Committed + res.M.Missed + res.M.Aborted; got != res.M.Submitted {
		t.Fatalf("outcomes %d != submitted %d", got, res.M.Submitted)
	}
}

// TestManyExecutors runs with a wide executor pool per client.
func TestManyExecutors(t *testing.T) {
	cfg := smallConfig(6, 0.20)
	cfg.ClientExecutors = 8
	ls, err := NewLoadSharing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Committed == 0 {
		t.Fatal("nothing committed")
	}
}

// TestImpossibleDeadlines floors the workload at deadlines shorter than
// any transaction can meet once queueing exists: the system must degrade
// gracefully (no hangs, no audit failures), not crash.
func TestImpossibleDeadlines(t *testing.T) {
	cfg := smallConfig(6, 0.20)
	cfg.MeanSlack = 2 * time.Second // below MeanLength: slack fallback kicks in
	cfg.MeanLength = 10 * time.Second
	cfg.Duration = 5 * time.Minute
	cfg.Warmup = time.Minute
	for _, build := range []func(config.Config) (*Cluster, error){NewClientServer, NewLoadSharing} {
		c, err := build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got := res.M.Committed + res.M.Missed + res.M.Aborted; got != res.M.Submitted {
			t.Fatalf("outcomes %d != submitted %d", got, res.M.Submitted)
		}
	}
}

// TestCentralizedOverload drives the centralized server far past its
// CPU capacity: success collapses but accounting stays exact.
func TestCentralizedOverload(t *testing.T) {
	cfg := config.DefaultCentralized(60, 0.05)
	cfg.Duration = 5 * time.Minute
	cfg.Warmup = time.Minute
	cfg.Drain = time.Minute
	cfg.ServerOpCPU = 100 * time.Millisecond // 50x overload
	ce, err := NewCentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ce.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.M.SuccessRate() > 0.2 {
		t.Fatalf("overloaded server succeeded %.1f%%", 100*res.M.SuccessRate())
	}
	if got := res.M.Committed + res.M.Missed + res.M.Aborted; got != res.M.Submitted {
		t.Fatalf("outcomes %d != submitted %d", got, res.M.Submitted)
	}
}

// TestCentralizedOCCSmoke runs the optimistic variant end to end and
// checks outcome conservation plus that low contention favours OCC over
// blocking 2PL.
func TestCentralizedOCCSmoke(t *testing.T) {
	cfg := config.DefaultCentralized(8, 0.20)
	cfg.Duration = 8 * time.Minute
	cfg.Warmup = time.Minute
	cfg.Drain = time.Minute
	oc, err := NewCentralizedOCC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rocc, err := oc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := rocc.M.Committed + rocc.M.Missed + rocc.M.Aborted; got != rocc.M.Submitted {
		t.Fatalf("outcomes %d != submitted %d", got, rocc.M.Submitted)
	}
	if rocc.M.Committed == 0 {
		t.Fatal("nothing committed under OCC")
	}
	pl, err := NewCentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rpl, err := pl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rocc.SuccessRate() < rpl.SuccessRate()-2 {
		t.Fatalf("at low contention OCC (%.1f%%) should not trail 2PL (%.1f%%)",
			rocc.SuccessRate(), rpl.SuccessRate())
	}
}

// TestSpeculationEndToEnd verifies the speculative-processing extension
// fires under contention and keeps the audits clean.
func TestSpeculationEndToEnd(t *testing.T) {
	cfg := smallConfig(10, 0.20)
	cfg.UseSpeculation = true
	cfg.Duration = 8 * time.Minute
	cfg.Warmup = time.Minute
	ls, err := NewLoadSharing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.M.SpeculativeRuns == 0 {
		t.Fatal("speculation never fired")
	}
	if res.M.SpeculationHits > res.M.SpeculativeRuns {
		t.Fatalf("hits %d > runs %d", res.M.SpeculationHits, res.M.SpeculativeRuns)
	}
	if got := res.M.Committed + res.M.Missed + res.M.Aborted; got != res.M.Submitted {
		t.Fatalf("outcomes %d != submitted %d", got, res.M.Submitted)
	}
}

// TestPatternsRunCleanly exercises the alternative access generators
// through a whole system run.
func TestPatternsRunCleanly(t *testing.T) {
	for _, pat := range []config.AccessPattern{config.PatternUniform, config.PatternHotCold} {
		cfg := smallConfig(6, 0.20)
		cfg.Pattern = pat
		ls, err := NewLoadSharing(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ls.Run()
		if err != nil {
			t.Fatalf("%v: %v", pat, err)
		}
		if res.M.Committed == 0 {
			t.Fatalf("%v: nothing committed", pat)
		}
	}
}

// TestWriteThrough verifies the write-through ablation: committed
// updates reach the server immediately, so at the end of the run no
// dirty copies linger anywhere.
func TestWriteThrough(t *testing.T) {
	cfg := smallConfig(6, 0.20)
	cfg.WriteThrough = true
	ls, err := NewLoadSharing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Committed == 0 {
		t.Fatal("nothing committed")
	}
	dirty := 0
	for _, cl := range ls.Clients() {
		for _, e := range cl.Cache().Entries() {
			if e.Dirty && !cl.HasDeferredRecall(e.Obj) {
				dirty++
			}
		}
	}
	if dirty > 2 { // migrating objects may legitimately be in flight
		t.Fatalf("write-through left %d dirty copies", dirty)
	}
}

// TestAuditSweep hammers the full protocol (speculation on, heavy
// updates, many clients) across several seeds; the end-of-run audits
// must stay clean under every interleaving.
func TestAuditSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for seed := int64(1); seed <= 6; seed++ {
		cfg := config.Default(40, 0.20).Scale(0.1)
		cfg.Seed = seed
		cfg.UseSpeculation = seed%2 == 0
		ls, err := NewLoadSharing(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ls.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cs, err := NewClientServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cs.Run(); err != nil {
			t.Fatalf("seed %d CS: %v", seed, err)
		}
	}
}

// TestLoggingEndToEnd runs with client-based WAL enabled: commits force
// log records, group commit batches them, and nothing deadlocks on the
// shared client disks.
func TestLoggingEndToEnd(t *testing.T) {
	cfg := smallConfig(8, 0.20)
	cfg.UseLogging = true
	ls, err := NewLoadSharing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Committed == 0 {
		t.Fatal("nothing committed")
	}
	var appends, forces int64
	for _, cl := range ls.Clients() {
		if l := cl.Log(); l != nil {
			appends += l.Appends
			forces += l.Forces
		}
	}
	if appends == 0 || forces == 0 {
		t.Fatalf("no logging activity: appends=%d forces=%d", appends, forces)
	}
	if forces > appends {
		t.Fatalf("forces %d exceed appends %d", forces, appends)
	}
	// Sanity against the no-logging baseline: logging costs something.
	base, _ := NewLoadSharing(smallConfig(8, 0.20))
	rb, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.M.TxnResponse.Mean() < rb.M.TxnResponse.Mean() {
		t.Logf("note: logging run faster than baseline (%v vs %v) — scheduling noise",
			res.M.TxnResponse.Mean(), rb.M.TxnResponse.Mean())
	}
}

// TestCentralizedLogging runs the CE engine with WAL on the shared data
// spindle.
func TestCentralizedLogging(t *testing.T) {
	cfg := config.DefaultCentralized(8, 0.20)
	cfg.Duration = 5 * time.Minute
	cfg.Warmup = time.Minute
	cfg.Drain = time.Minute
	cfg.UseLogging = true
	ce, err := NewCentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ce.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Committed == 0 {
		t.Fatal("nothing committed")
	}
}

// TestExecSpread verifies per-site execution accounting: counts sum to
// the committed total and the spread metric is sane.
func TestExecSpread(t *testing.T) {
	cfg := smallConfig(8, 0.20)
	ls, _ := NewLoadSharing(cfg)
	res, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, n := range res.ExecutedPerSite {
		sum += n
	}
	if sum != res.M.Committed {
		t.Fatalf("per-site sum %d != committed %d", sum, res.M.Committed)
	}
	if cv := res.ExecSpread(); cv < 0 || cv > 10 {
		t.Fatalf("spread = %v", cv)
	}
}

// TestOutageWithoutLoggingLosesUpdates injects a client outage and
// verifies the durability story: without a recovery log, committed
// dirty copies are lost (and counted); with client-based WAL they
// survive. The cluster keeps running through the outage either way.
func TestOutageWithoutLoggingLosesUpdates(t *testing.T) {
	run := func(logging bool) (*Result, int64) {
		cfg := smallConfig(6, 0.30)
		cfg.Duration = 8 * time.Minute
		cfg.Warmup = time.Minute
		cfg.UseLogging = logging
		cfg.OutageClient = 2
		cfg.OutageAt = 4 * time.Minute
		cfg.OutageDuration = 30 * time.Second
		ls, err := NewLoadSharing(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ls.Run()
		if err != nil {
			t.Fatal(err)
		}
		var lost int64
		for _, cl := range ls.Clients() {
			lost += cl.LostUpdates
		}
		return res, lost
	}
	resNoLog, lostNoLog := run(false)
	resLog, lostLog := run(true)
	if resNoLog.M.Committed == 0 || resLog.M.Committed == 0 {
		t.Fatal("cluster did not survive the outage")
	}
	if lostLog != 0 {
		t.Fatalf("WAL-protected run lost %d updates", lostLog)
	}
	if lostNoLog == 0 {
		t.Skip("no dirty copies at the crashed client at outage time (workload-dependent)")
	}
}

// TestOutageMessagesDrainAfterRestart verifies that traffic queued
// during the partition is processed once the client returns.
func TestOutageMessagesDrainAfterRestart(t *testing.T) {
	cfg := smallConfig(6, 0.20)
	cfg.Duration = 8 * time.Minute
	cfg.Warmup = time.Minute
	cfg.OutageClient = 1
	cfg.OutageAt = 3 * time.Minute
	cfg.OutageDuration = time.Minute
	ls, err := NewLoadSharing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.M.Committed + res.M.Missed + res.M.Aborted; got != res.M.Submitted {
		t.Fatalf("outcomes %d != submitted %d", got, res.M.Submitted)
	}
}
