// Package rtdbs assembles the three systems the paper evaluates —
// CE-RTDBS (centralized), CS-RTDBS (basic object-shipping
// client-server), and LS-CS-RTDBS (client-server with the load-sharing
// algorithm) — and runs them to completion, producing the metrics the
// paper's tables and figures report.
package rtdbs

import (
	"math"
	"time"

	"siteselect/internal/config"
	"siteselect/internal/metrics"
	"siteselect/internal/netsim"
	"siteselect/internal/trace"
)

// Result is the outcome of one simulated run.
type Result struct {
	Config config.Config
	// M holds transaction, cache and response-time statistics.
	M *metrics.Collector

	// Messages maps message kinds to their traffic counters (Table 4).
	Messages map[netsim.Kind]netsim.KindStats
	// TotalMessages and TotalBytes summarize all LAN traffic.
	TotalMessages int64
	TotalBytes    int64
	// NetUtilization is the bus busy fraction.
	NetUtilization float64

	// ServerBufferHitRate is the server pool hit rate; ServerDiskReads
	// and ServerDiskWrites count device operations.
	ServerBufferHitRate float64
	ServerDiskReads     int64
	ServerDiskWrites    int64

	// Server protocol counters.
	RecallsSent       int64
	GrantsShipped     int64
	MigrationsStarted int64
	ForwardHops       int64
	DeniesExpired     int64
	DeniesDeadlock    int64

	// BatchFlushes counts server batch-window closes and
	// BatchedRequests the requests that shared a window with at least
	// one other request; both are zero when Config.BatchWindow is 0.
	BatchFlushes    int64
	BatchedRequests int64

	// Sharding counters, summed over server shards (all zero at a
	// single server): read replicas installed and shed by the adaptive
	// replication layer, and firm requests a shard re-routed to the
	// object's home shard.
	ReplicasInstalled int64
	ReplicasShed      int64
	RequestsForwarded int64

	// Faults holds the injected-fault counters (zero-valued when fault
	// injection is off); Retries counts client request retransmissions.
	Faults  netsim.FaultStats
	Retries int64

	// MissCauses aggregates missed transactions by dominant attribution
	// component (set only when the run traced, i.e. Config.Trace).
	MissCauses *trace.MissTable

	// ExecutedPerSite counts committed transactions by executing site
	// (client-server systems only); Spread is their coefficient of
	// variation — load sharing should push it down.
	ExecutedPerSite map[netsim.SiteID]int64

	// Elapsed is the virtual time simulated.
	Elapsed time.Duration
}

// ExecSpread returns the coefficient of variation (stddev/mean) of the
// per-site executed-transaction counts; zero when unavailable.
func (r *Result) ExecSpread() float64 {
	if len(r.ExecutedPerSite) == 0 {
		return 0
	}
	var sum float64
	for _, n := range r.ExecutedPerSite {
		sum += float64(n)
	}
	mean := sum / float64(len(r.ExecutedPerSite))
	if mean == 0 {
		return 0
	}
	var sq float64
	for _, n := range r.ExecutedPerSite {
		d := float64(n) - mean
		sq += d * d
	}
	return math.Sqrt(sq/float64(len(r.ExecutedPerSite))) / mean
}

// SuccessRate returns the percentage (0–100) of transactions that
// completed within their deadlines.
func (r *Result) SuccessRate() float64 { return 100 * r.M.SuccessRate() }

// CacheHitRate returns the percentage (0–100) of object accesses served
// from the executing site's cache.
func (r *Result) CacheHitRate() float64 { return 100 * r.M.CacheHitRate() }

func messageSnapshot(net *netsim.Network) map[netsim.Kind]netsim.KindStats {
	kinds := []netsim.Kind{
		netsim.KindObjectRequest, netsim.KindObjectShip, netsim.KindRecall,
		netsim.KindObjectReturn, netsim.KindClientForward, netsim.KindLockReply,
		netsim.KindTxnShip, netsim.KindTxnResult, netsim.KindLoadQuery,
		netsim.KindLoadReply, netsim.KindTxnSubmit, netsim.KindUserResult,
	}
	out := make(map[netsim.Kind]netsim.KindStats, len(kinds))
	for _, k := range kinds {
		out[k] = net.Stats(k)
	}
	return out
}
