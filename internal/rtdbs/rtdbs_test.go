package rtdbs

import (
	"testing"
	"time"

	"siteselect/internal/config"
)

func smallConfig(n int, update float64) config.Config {
	cfg := config.Default(n, update)
	cfg.Duration = 3 * time.Minute
	cfg.Drain = 40 * time.Second
	cfg.Warmup = 30 * time.Second
	return cfg
}

func TestCentralizedSmoke(t *testing.T) {
	cfg := smallConfig(4, 0.05)
	cfg.ServerMemory = 5000
	ce, err := NewCentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ce.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Submitted == 0 {
		t.Fatal("no transactions submitted")
	}
	if res.M.Committed == 0 {
		t.Fatal("no transactions committed")
	}
	if got := res.M.Committed + res.M.Missed + res.M.Aborted; got != res.M.Submitted {
		t.Fatalf("outcomes %d != submitted %d", got, res.M.Submitted)
	}
	t.Logf("CE: submitted=%d success=%.1f%% msgs=%d",
		res.M.Submitted, res.SuccessRate(), res.TotalMessages)
}

func TestClientServerSmoke(t *testing.T) {
	cs, err := NewClientServer(smallConfig(4, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cs.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Submitted == 0 || res.M.Committed == 0 {
		t.Fatalf("submitted=%d committed=%d", res.M.Submitted, res.M.Committed)
	}
	if res.M.CacheAccesses == 0 {
		t.Fatal("no cache accesses recorded")
	}
	t.Logf("CS: submitted=%d success=%.1f%% hit=%.1f%% msgs=%d",
		res.M.Submitted, res.SuccessRate(), res.CacheHitRate(), res.TotalMessages)
}

func TestLoadSharingSmoke(t *testing.T) {
	ls, err := NewLoadSharing(smallConfig(4, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Submitted == 0 || res.M.Committed == 0 {
		t.Fatalf("submitted=%d committed=%d", res.M.Submitted, res.M.Committed)
	}
	t.Logf("LS: submitted=%d success=%.1f%% hit=%.1f%% shipped=%d decomposed=%d migrations=%d hops=%d",
		res.M.Submitted, res.SuccessRate(), res.CacheHitRate(),
		res.M.ShippedTxns, res.M.DecomposedTxns, res.MigrationsStarted, res.ForwardHops)
}
