package rtdbs

import (
	"testing"
	"time"

	"siteselect/internal/config"
)

// shardedConfig is a small multi-shard cluster with the invariant
// monitor on.
func shardedConfig(n, servers int, update float64) config.Config {
	cfg := config.Default(n, update)
	cfg.Duration = 3 * time.Minute
	cfg.Drain = 40 * time.Second
	cfg.Warmup = 10 * time.Second
	cfg.CheckInvariants = true
	cfg.Sharding.Servers = servers
	return cfg
}

// TestShardedRunBothSystems runs CS and LS clusters against a 4-shard
// server under the continuous invariant monitor: every shard's lock
// table, forward lists, and batch accounting must stay consistent, no
// committed update may be lost, and work must actually commit.
func TestShardedRunBothSystems(t *testing.T) {
	for _, sys := range []string{"cs", "ls"} {
		t.Run(sys, func(t *testing.T) {
			cfg := shardedConfig(6, 4, 0.2)
			var (
				c   *Cluster
				err error
			)
			if sys == "cs" {
				c, err = NewClientServer(cfg)
			} else {
				c, err = NewLoadSharing(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run()
			if err != nil {
				t.Fatalf("sharded run failed audit: %v", err)
			}
			if res.M.Committed == 0 {
				t.Fatal("nothing committed on a 4-shard server")
			}
			t.Logf("%s: success=%.1f%% committed=%d forwarded=%d",
				sys, res.SuccessRate(), res.M.Committed, res.RequestsForwarded)
		})
	}
}

// TestShardedAdaptiveReplication drives a read-heavy workload at a
// 2-shard server with adaptive replication on: hot objects must gain
// read replicas, and the cold-shed heartbeat must reclaim at least some
// of them over a long run.
func TestShardedAdaptiveReplication(t *testing.T) {
	cfg := shardedConfig(10, 2, 0.2)
	cfg.Duration = 5 * time.Minute
	cfg.ZipfTheta = 1.1 // concentrate accesses on a few hot objects
	cfg.Sharding.ReplicateHot = 2
	cfg.Sharding.HeatWindow = time.Minute
	cfg.Sharding.ShedBelow = 1
	c, err := NewLoadSharing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatalf("adaptive run failed audit: %v", err)
	}
	if res.ReplicasInstalled == 0 {
		t.Fatal("no replica installed under a hot read-mostly workload")
	}
	if res.ReplicasShed == 0 {
		t.Fatal("no replica shed over a long run with ShedBelow set")
	}
	t.Logf("installed=%d shed=%d forwarded=%d success=%.1f%%",
		res.ReplicasInstalled, res.ReplicasShed, res.RequestsForwarded, res.SuccessRate())
}

// TestShardedStaticReplicas pins static replica placements and verifies
// they are seeded before the run and visible in the counters.
func TestShardedStaticReplicas(t *testing.T) {
	cfg := shardedConfig(4, 2, 0.1)
	// Objects homed on shard 0 (even ids), replicated on shard 1.
	cfg.Sharding.Replicas = map[int]int{0: 1, 2: 1, 4: 1}
	c, err := NewClientServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatalf("static-replica run failed audit: %v", err)
	}
	if res.ReplicasInstalled != 3 {
		t.Fatalf("ReplicasInstalled = %d, want 3 static seeds", res.ReplicasInstalled)
	}
	if res.M.Committed == 0 {
		t.Fatal("nothing committed with static replicas")
	}
}

// TestShardedPartitionSurvived cuts shard 1 off the LAN for a window
// longer than any transaction's slack: requests routed there must be
// retried or expire cleanly while the rest of the cluster keeps
// committing, and the run must pass every audit.
func TestShardedPartitionSurvived(t *testing.T) {
	cfg := shardedConfig(4, 4, 0.1)
	cfg.Faults = config.FaultSpec{
		PartitionShard:    1,
		PartitionAt:       60 * time.Second,
		PartitionDuration: 20 * time.Second,
	}
	c, err := NewClientServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatalf("shard-partition run failed audit: %v", err)
	}
	if res.M.Committed == 0 {
		t.Fatal("nothing committed around a shard partition")
	}
	if res.Faults.PartitionDrops == 0 {
		t.Fatal("shard partition dropped no messages")
	}
	t.Logf("success=%.1f%% partitionDrops=%d retries=%d",
		res.SuccessRate(), res.Faults.PartitionDrops, res.Retries)
}
