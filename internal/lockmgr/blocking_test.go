package lockmgr

import (
	"errors"
	"testing"
	"time"

	"siteselect/internal/sim"
)

func TestLockWaitImmediateGrant(t *testing.T) {
	env := sim.NewEnv()
	bt := NewBlockingTable(env)
	var err error
	env.Go("t", func(p *sim.Proc) {
		err = bt.LockWait(p, req(1, 1, ModeExclusive, time.Hour))
	})
	env.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if env.Now() != 0 {
		t.Fatal("uncontended lock took time")
	}
}

func TestLockWaitBlocksUntilRelease(t *testing.T) {
	env := sim.NewEnv()
	bt := NewBlockingTable(env)
	var gotAt time.Duration
	env.Go("holder", func(p *sim.Proc) {
		if err := bt.LockWait(p, req(1, 1, ModeExclusive, time.Hour)); err != nil {
			t.Errorf("holder: %v", err)
		}
		p.Sleep(5 * time.Second)
		bt.Release(1, 1)
	})
	env.Go("waiter", func(p *sim.Proc) {
		p.Sleep(time.Second)
		if err := bt.LockWait(p, req(1, 2, ModeExclusive, time.Hour)); err != nil {
			t.Errorf("waiter: %v", err)
		}
		gotAt = p.Now()
	})
	env.RunAll()
	if gotAt != 5*time.Second {
		t.Fatalf("waiter granted at %v, want 5s", gotAt)
	}
}

func TestLockWaitDeadlineExpires(t *testing.T) {
	env := sim.NewEnv()
	bt := NewBlockingTable(env)
	var err error
	env.Go("holder", func(p *sim.Proc) {
		_ = bt.LockWait(p, req(1, 1, ModeExclusive, time.Hour))
		p.Sleep(time.Hour)
		bt.ReleaseAll(1)
	})
	env.Go("waiter", func(p *sim.Proc) {
		p.Sleep(time.Second)
		err = bt.LockWait(p, req(1, 2, ModeExclusive, 3*time.Second))
	})
	env.Run(10 * time.Second)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if bt.Table().QueueLen(1) != 0 {
		t.Fatal("expired waiter left in queue")
	}
	env.Close()
}

func TestLockWaitDeadlockRefused(t *testing.T) {
	env := sim.NewEnv()
	bt := NewBlockingTable(env)
	var errB error
	env.Go("a", func(p *sim.Proc) {
		_ = bt.LockWait(p, req(1, 1, ModeExclusive, time.Hour))
		p.Sleep(time.Second)
		_ = bt.LockWait(p, req(2, 1, ModeExclusive, time.Hour))
	})
	env.Go("b", func(p *sim.Proc) {
		_ = bt.LockWait(p, req(2, 2, ModeExclusive, time.Hour))
		p.Sleep(2 * time.Second) // let a queue on obj 2 first
		errB = bt.LockWait(p, req(1, 2, ModeExclusive, time.Hour))
	})
	env.Run(5 * time.Second)
	if !errors.Is(errB, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", errB)
	}
	env.Close()
}

func TestDowngradeWakesSharedWaiter(t *testing.T) {
	env := sim.NewEnv()
	bt := NewBlockingTable(env)
	var gotAt time.Duration
	env.Go("holder", func(p *sim.Proc) {
		_ = bt.LockWait(p, req(1, 1, ModeExclusive, time.Hour))
		p.Sleep(2 * time.Second)
		bt.Downgrade(1, 1)
	})
	env.Go("reader", func(p *sim.Proc) {
		p.Sleep(time.Second)
		if err := bt.LockWait(p, req(1, 2, ModeShared, time.Hour)); err != nil {
			t.Errorf("reader: %v", err)
		}
		gotAt = p.Now()
	})
	env.RunAll()
	if gotAt != 2*time.Second {
		t.Fatalf("reader granted at %v, want 2s (on downgrade)", gotAt)
	}
}

func TestManyWaitersServedInDeadlineOrder(t *testing.T) {
	env := sim.NewEnv()
	bt := NewBlockingTable(env)
	var order []OwnerID
	env.Go("holder", func(p *sim.Proc) {
		_ = bt.LockWait(p, req(1, 99, ModeExclusive, time.Hour))
		p.Sleep(time.Second)
		bt.Release(1, 99)
	})
	deadlines := []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second}
	for i, dl := range deadlines {
		owner := OwnerID(i + 1)
		dl := dl
		env.Go("w", func(p *sim.Proc) {
			p.Sleep(time.Duration(i+1) * time.Millisecond)
			if err := bt.LockWait(p, req(1, owner, ModeExclusive, dl)); err != nil {
				t.Errorf("waiter %d: %v", owner, err)
				return
			}
			order = append(order, owner)
			bt.Release(1, owner)
		})
	}
	env.RunAll()
	want := []OwnerID{2, 3, 1}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order = %v, want %v", order, want)
		}
	}
}
