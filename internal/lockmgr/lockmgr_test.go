package lockmgr

import (
	"testing"
	"testing/quick"
	"time"
)

func req(obj ObjectID, owner OwnerID, mode Mode, dl time.Duration) *Request {
	return &Request{Obj: obj, Owner: owner, Mode: mode, Deadline: dl}
}

func TestCompatibility(t *testing.T) {
	cases := []struct {
		a, b Mode
		want bool
	}{
		{ModeShared, ModeShared, true},
		{ModeShared, ModeExclusive, false},
		{ModeExclusive, ModeShared, false},
		{ModeExclusive, ModeExclusive, false},
	}
	for _, c := range cases {
		if got := Compatible(c.a, c.b); got != c.want {
			t.Errorf("Compatible(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeShared.String() != "SL" || ModeExclusive.String() != "EL" {
		t.Fatal("mode names wrong")
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	tab := NewTable()
	for i := OwnerID(1); i <= 3; i++ {
		out, _ := tab.Lock(req(1, i, ModeShared, time.Second))
		if out != Granted {
			t.Fatalf("SL for owner %d: %v", i, out)
		}
	}
	if err := tab.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestExclusiveConflicts(t *testing.T) {
	tab := NewTable()
	tab.Lock(req(1, 1, ModeExclusive, time.Second))
	out, conf := tab.Lock(req(1, 2, ModeShared, 2*time.Second))
	if out != Queued {
		t.Fatalf("outcome = %v, want Queued", out)
	}
	if len(conf) != 1 || conf[0] != 1 {
		t.Fatalf("conflicts = %v", conf)
	}
}

func TestReentrantGrant(t *testing.T) {
	tab := NewTable()
	tab.Lock(req(1, 1, ModeExclusive, time.Second))
	out, _ := tab.Lock(req(1, 1, ModeShared, time.Second))
	if out != Granted {
		t.Fatalf("EL holder re-requesting SL: %v", out)
	}
	out, _ = tab.Lock(req(1, 1, ModeExclusive, time.Second))
	if out != Granted {
		t.Fatalf("EL holder re-requesting EL: %v", out)
	}
}

func TestReleaseGrantsByDeadline(t *testing.T) {
	tab := NewTable()
	tab.Lock(req(1, 1, ModeExclusive, time.Second))
	late := req(1, 2, ModeExclusive, 10*time.Second)
	early := req(1, 3, ModeExclusive, 5*time.Second)
	tab.Lock(late)
	tab.Lock(early)
	grants := tab.Release(1, 1)
	if len(grants) != 1 || grants[0] != early {
		t.Fatalf("grant order wrong: got %d grants", len(grants))
	}
	if tab.HolderMode(1, 3) != ModeExclusive {
		t.Fatal("early waiter not holding")
	}
}

func TestMultipleSharedGrantedTogether(t *testing.T) {
	tab := NewTable()
	tab.Lock(req(1, 1, ModeExclusive, time.Second))
	tab.Lock(req(1, 2, ModeShared, 2*time.Second))
	tab.Lock(req(1, 3, ModeShared, 3*time.Second))
	grants := tab.Release(1, 1)
	if len(grants) != 2 {
		t.Fatalf("grants = %d, want 2 shared together", len(grants))
	}
}

func TestSharedDoesNotStarveQueuedExclusive(t *testing.T) {
	tab := NewTable()
	tab.Lock(req(1, 1, ModeShared, time.Second))
	tab.Lock(req(1, 2, ModeExclusive, 2*time.Second)) // queued
	out, _ := tab.Lock(req(1, 3, ModeShared, 3*time.Second))
	if out != Queued {
		t.Fatalf("late SL should queue behind waiting EL, got %v", out)
	}
	grants := tab.Release(1, 1)
	if len(grants) != 1 || grants[0].Owner != 2 {
		t.Fatal("EL should be granted first")
	}
	grants = tab.Release(1, 2)
	if len(grants) != 1 || grants[0].Owner != 3 {
		t.Fatal("queued SL should follow EL")
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	tab := NewTable()
	tab.Lock(req(1, 1, ModeShared, time.Second))
	out, _ := tab.Lock(req(1, 1, ModeExclusive, time.Second))
	if out != Granted {
		t.Fatalf("sole-holder upgrade: %v", out)
	}
	if tab.HolderMode(1, 1) != ModeExclusive {
		t.Fatal("mode not upgraded")
	}
}

func TestUpgradeWaitsForOtherSharers(t *testing.T) {
	tab := NewTable()
	tab.Lock(req(1, 1, ModeShared, time.Second))
	tab.Lock(req(1, 2, ModeShared, time.Second))
	up := req(1, 1, ModeExclusive, time.Second)
	out, conf := tab.Lock(up)
	if out != Queued || len(conf) != 1 || conf[0] != 2 {
		t.Fatalf("upgrade: out=%v conf=%v", out, conf)
	}
	grants := tab.Release(1, 2)
	if len(grants) != 1 || grants[0] != up {
		t.Fatal("upgrade not granted after sharer left")
	}
	if tab.HolderMode(1, 1) != ModeExclusive {
		t.Fatal("upgrade mode wrong")
	}
}

func TestUpgradeJumpsUnrelatedWaiter(t *testing.T) {
	// A holds SL; B waits for EL; A upgrading must not queue behind B
	// (that would deadlock A against itself).
	tab := NewTable()
	tab.Lock(req(1, 1, ModeShared, time.Second))
	tab.Lock(req(1, 2, ModeExclusive, time.Second))
	out, _ := tab.Lock(req(1, 1, ModeExclusive, time.Second))
	if out != Granted {
		t.Fatalf("upgrade past unrelated waiter: %v", out)
	}
}

func TestUpgradeDeadlockDetected(t *testing.T) {
	tab := NewTable()
	tab.Lock(req(1, 1, ModeShared, time.Second))
	tab.Lock(req(1, 2, ModeShared, time.Second))
	out, _ := tab.Lock(req(1, 1, ModeExclusive, time.Second))
	if out != Queued {
		t.Fatalf("first upgrade: %v", out)
	}
	out, _ = tab.Lock(req(1, 2, ModeExclusive, time.Second))
	if out != Deadlock {
		t.Fatalf("second upgrade should deadlock, got %v", out)
	}
	if tab.DeadlocksRefused != 1 {
		t.Fatalf("DeadlocksRefused = %d", tab.DeadlocksRefused)
	}
}

func TestCrossObjectDeadlockDetected(t *testing.T) {
	tab := NewTable()
	tab.Lock(req(1, 1, ModeExclusive, time.Second))
	tab.Lock(req(2, 2, ModeExclusive, time.Second))
	out, _ := tab.Lock(req(2, 1, ModeExclusive, time.Second))
	if out != Queued {
		t.Fatalf("1 waits for 2: %v", out)
	}
	out, _ = tab.Lock(req(1, 2, ModeExclusive, time.Second))
	if out != Deadlock {
		t.Fatalf("closing the cycle should be refused, got %v", out)
	}
}

func TestThreeWayDeadlockDetected(t *testing.T) {
	tab := NewTable()
	tab.Lock(req(1, 1, ModeExclusive, time.Second))
	tab.Lock(req(2, 2, ModeExclusive, time.Second))
	tab.Lock(req(3, 3, ModeExclusive, time.Second))
	tab.Lock(req(2, 1, ModeExclusive, time.Second)) // 1 -> 2
	tab.Lock(req(3, 2, ModeExclusive, time.Second)) // 2 -> 3
	out, _ := tab.Lock(req(1, 3, ModeExclusive, time.Second))
	if out != Deadlock {
		t.Fatalf("3-cycle should be refused, got %v", out)
	}
}

func TestEdgesClearedAfterGrant(t *testing.T) {
	tab := NewTable()
	tab.Lock(req(1, 1, ModeExclusive, time.Second))
	tab.Lock(req(1, 2, ModeExclusive, time.Second)) // 2 -> 1
	tab.Release(1, 1)                               // grants 2, clears edge
	// Now 1 can wait on 2 without a phantom cycle.
	out, _ := tab.Lock(req(1, 1, ModeExclusive, time.Second))
	if out != Queued {
		t.Fatalf("after edge cleanup: %v, want Queued", out)
	}
}

func TestDowngrade(t *testing.T) {
	tab := NewTable()
	tab.Lock(req(1, 1, ModeExclusive, time.Second))
	sl := req(1, 2, ModeShared, time.Second)
	tab.Lock(sl)
	grants := tab.Downgrade(1, 1)
	if len(grants) != 1 || grants[0] != sl {
		t.Fatal("downgrade did not admit the shared waiter")
	}
	if tab.HolderMode(1, 1) != ModeShared || tab.HolderMode(1, 2) != ModeShared {
		t.Fatal("post-downgrade modes wrong")
	}
	if err := tab.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestDowngradeNoopWhenNotEL(t *testing.T) {
	tab := NewTable()
	tab.Lock(req(1, 1, ModeShared, time.Second))
	if grants := tab.Downgrade(1, 1); grants != nil {
		t.Fatal("downgrade of SL should be a no-op")
	}
}

func TestCancelUnblocksQueue(t *testing.T) {
	tab := NewTable()
	tab.Lock(req(1, 1, ModeShared, time.Second))
	blocked := req(1, 2, ModeExclusive, 2*time.Second)
	tab.Lock(blocked)
	waiting := req(1, 3, ModeShared, 3*time.Second)
	tab.Lock(waiting)
	grants := tab.Cancel(blocked)
	if len(grants) != 1 || grants[0] != waiting {
		t.Fatal("canceling the head EL should admit the SL behind it")
	}
}

func TestReleaseAll(t *testing.T) {
	tab := NewTable()
	tab.Lock(req(1, 1, ModeExclusive, time.Second))
	tab.Lock(req(2, 1, ModeExclusive, time.Second))
	w1 := req(1, 2, ModeShared, time.Second)
	w2 := req(2, 3, ModeShared, time.Second)
	tab.Lock(w1)
	tab.Lock(w2)
	grants := tab.ReleaseAll(1)
	if len(grants) != 2 {
		t.Fatalf("grants = %d, want 2", len(grants))
	}
	if tab.HolderMode(1, 1) != 0 || tab.HolderMode(2, 1) != 0 {
		t.Fatal("owner still holds locks after ReleaseAll")
	}
}

func TestConflictCount(t *testing.T) {
	tab := NewTable()
	tab.Lock(req(1, 1, ModeExclusive, time.Second))
	tab.Lock(req(2, 1, ModeShared, time.Second))
	tab.Lock(req(3, 2, ModeShared, time.Second))
	objs := []ObjectID{1, 2, 3, 4}
	modes := []Mode{ModeShared, ModeShared, ModeExclusive, ModeExclusive}
	// For owner 3: obj1 EL-held (conflict), obj2 SL-SL (ok), obj3 SL
	// vs EL (conflict), obj4 free.
	if n := tab.ConflictCount(3, objs, modes); n != 2 {
		t.Fatalf("ConflictCount = %d, want 2", n)
	}
	// For owner 1 (holder itself): obj1 own EL (ok), obj3 conflicts.
	if n := tab.ConflictCount(1, objs, modes); n != 1 {
		t.Fatalf("ConflictCount for holder = %d, want 1", n)
	}
}

func TestReleaseUnheldIsNoop(t *testing.T) {
	tab := NewTable()
	if g := tab.Release(9, 1); g != nil {
		t.Fatal("release of unheld object returned grants")
	}
}

func TestQueueLenAndHolders(t *testing.T) {
	tab := NewTable()
	tab.Lock(req(1, 1, ModeExclusive, time.Second))
	tab.Lock(req(1, 2, ModeShared, time.Second))
	tab.Lock(req(1, 3, ModeShared, time.Second))
	if tab.QueueLen(1) != 2 {
		t.Fatalf("QueueLen = %d", tab.QueueLen(1))
	}
	hs := tab.SortedHolders(1)
	if len(hs) != 1 || hs[0] != 1 {
		t.Fatalf("holders = %v", hs)
	}
	m := tab.Holders(1)
	if m[1] != ModeExclusive {
		t.Fatalf("Holders map = %v", m)
	}
}

func TestEntryGarbageCollected(t *testing.T) {
	tab := NewTable()
	tab.Lock(req(1, 1, ModeShared, time.Second))
	tab.Release(1, 1)
	if tab.lookup(1) != nil {
		t.Fatal("empty entry not retired")
	}
	if len(tab.free) != 1 {
		t.Fatalf("free list = %d entries, want 1", len(tab.free))
	}
}

// Property: under random lock/release traffic the table never grants
// conflicting holders and Audit stays clean.
func TestNoConflictingHoldersProperty(t *testing.T) {
	type op struct {
		Obj     uint8
		Owner   uint8
		Mode    uint8
		Release bool
	}
	f := func(ops []op) bool {
		tab := NewTable()
		for i, o := range ops {
			obj := ObjectID(o.Obj % 5)
			owner := OwnerID(o.Owner%6) + 1
			if o.Release {
				tab.Release(obj, owner)
			} else {
				mode := ModeShared
				if o.Mode%2 == 0 {
					mode = ModeExclusive
				}
				tab.Lock(req(obj, owner, mode, time.Duration(i)*time.Millisecond))
			}
			if tab.Audit() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property (liveness): if every holder keeps releasing what it holds,
// every queued request is eventually granted — no waiter is stranded by
// the admission policy.
func TestQueueDrainsProperty(t *testing.T) {
	type op struct {
		Obj   uint8
		Owner uint8
		Mode  uint8
	}
	f := func(ops []op) bool {
		tab := NewTable()
		queued := map[*Request]bool{}
		for i, o := range ops {
			mode := ModeShared
			if o.Mode%2 == 0 {
				mode = ModeExclusive
			}
			r := req(ObjectID(o.Obj%4), OwnerID(o.Owner%5)+1, mode, time.Duration(i))
			outcome, _ := tab.Lock(r)
			if outcome == Queued {
				queued[r] = true
			}
		}
		// Drain: release every holder repeatedly, collecting grants.
		for round := 0; round < len(ops)+8; round++ {
			progress := false
			for obj := ObjectID(0); obj < 4; obj++ {
				for _, h := range tab.SortedHolders(obj) {
					for _, g := range tab.Release(obj, h) {
						delete(queued, g)
						progress = true
					}
					progress = true
				}
			}
			if !progress {
				break
			}
		}
		return len(queued) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
