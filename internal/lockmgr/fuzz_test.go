package lockmgr

import (
	"testing"
	"time"
)

// FuzzLockTable drives the lock table with an arbitrary byte-encoded
// operation stream and checks the safety invariants after every step:
// no incompatible holders, no granted request left queued, and a full
// drain always succeeds.
func FuzzLockTable(f *testing.F) {
	f.Add([]byte{0x01, 0x12, 0x23, 0x81, 0x92})
	f.Add([]byte{0x00, 0x10, 0x20, 0x30, 0x80, 0x90, 0xa0})
	f.Add([]byte{0x05, 0x15, 0x05, 0x85})
	f.Fuzz(func(t *testing.T, data []byte) {
		tab := NewTable()
		for i, b := range data {
			obj := ObjectID(b & 0x03)
			owner := OwnerID((b>>2)&0x07) + 1
			release := b&0x80 != 0
			mode := ModeShared
			if b&0x40 != 0 {
				mode = ModeExclusive
			}
			if release {
				tab.Release(obj, owner)
			} else {
				tab.Lock(&Request{
					Obj: obj, Owner: owner, Mode: mode,
					Deadline: time.Duration(i) * time.Millisecond,
				})
			}
			if err := tab.Audit(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			// HasWaiter (the retry path's idempotence probe) must agree
			// with the queue: a reported waiter implies a non-empty queue.
			for o := ObjectID(0); o < 4; o++ {
				for w := OwnerID(1); w <= 8; w++ {
					if tab.HasWaiter(o, w) && tab.QueueLen(o) == 0 {
						t.Fatalf("step %d: HasWaiter(%d,%d) on an empty queue", i, o, w)
					}
				}
			}
		}
		// Drain: repeated releases must eventually empty every queue.
		for round := 0; round < len(data)+8; round++ {
			progress := false
			for obj := ObjectID(0); obj < 4; obj++ {
				for _, h := range tab.SortedHolders(obj) {
					tab.Release(obj, h)
					progress = true
				}
			}
			if !progress {
				break
			}
		}
		for obj := ObjectID(0); obj < 4; obj++ {
			if tab.QueueLen(obj) != 0 {
				t.Fatalf("object %d queue not drained: %d waiters", obj, tab.QueueLen(obj))
			}
			for w := OwnerID(1); w <= 8; w++ {
				if tab.HasWaiter(obj, w) {
					t.Fatalf("drained table still reports waiter %d on object %d", w, obj)
				}
			}
		}
	})
}
