package lockmgr

import (
	"testing"
	"time"
)

// FuzzLockTable drives the lock table with an arbitrary byte-encoded
// operation stream and checks the safety invariants after every step:
// no incompatible holders, no granted request left queued, and a full
// drain always succeeds.
func FuzzLockTable(f *testing.F) {
	f.Add([]byte{0x01, 0x12, 0x23, 0x81, 0x92})
	f.Add([]byte{0x00, 0x10, 0x20, 0x30, 0x80, 0x90, 0xa0})
	f.Add([]byte{0x05, 0x15, 0x05, 0x85})
	f.Fuzz(func(t *testing.T, data []byte) {
		tab := NewTable()
		for i, b := range data {
			obj := ObjectID(b & 0x03)
			owner := OwnerID((b>>2)&0x07) + 1
			release := b&0x80 != 0
			mode := ModeShared
			if b&0x40 != 0 {
				mode = ModeExclusive
			}
			if release {
				tab.Release(obj, owner)
			} else {
				tab.Lock(&Request{
					Obj: obj, Owner: owner, Mode: mode,
					Deadline: time.Duration(i) * time.Millisecond,
				})
			}
			if err := tab.Audit(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
		// Drain: repeated releases must eventually empty every queue.
		for round := 0; round < len(data)+8; round++ {
			progress := false
			for obj := ObjectID(0); obj < 4; obj++ {
				for _, h := range tab.SortedHolders(obj) {
					tab.Release(obj, h)
					progress = true
				}
			}
			if !progress {
				break
			}
		}
		for obj := ObjectID(0); obj < 4; obj++ {
			if tab.QueueLen(obj) != 0 {
				t.Fatalf("object %d queue not drained: %d waiters", obj, tab.QueueLen(obj))
			}
		}
	})
}
