// Package lockmgr implements the paper's locking machinery: Shared (SL)
// and Exclusive (EL) locks under a strict two-phase discipline, wait
// queues ordered by transaction deadline, lock upgrades and the EL→SL
// downgrade used by the modified callback scheme, and wait-for-graph
// deadlock detection (a request that would close a cycle is refused, per
// Section 5.1).
//
// The same Table type serves three roles in the reproduction: the
// centralized server's transaction lock table, the client-server global
// (per-client) lock table, and each client's local lock table.
package lockmgr

import (
	"fmt"
	"slices"
	"sort"
	"time"
)

// ObjectID identifies a database object (page).
type ObjectID int

// OwnerID identifies a lock owner: a transaction in the centralized
// system, a client site in the global table.
type OwnerID int64

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	// ModeShared (SL) permits concurrent readers.
	ModeShared Mode = iota + 1
	// ModeExclusive (EL) is required to update an object.
	ModeExclusive
)

// String returns "SL" or "EL".
func (m Mode) String() string {
	switch m {
	case ModeShared:
		return "SL"
	case ModeExclusive:
		return "EL"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Compatible reports whether two modes may be held simultaneously by
// different owners.
func Compatible(a, b Mode) bool { return a == ModeShared && b == ModeShared }

// Outcome is the result of a lock request.
type Outcome int

// Lock outcomes.
const (
	// Granted means the lock is held on return.
	Granted Outcome = iota + 1
	// Queued means the request waits; the conflicting holders were
	// returned so the caller can issue callbacks or evaluate H2.
	Queued
	// Deadlock means enqueueing the request would have closed a cycle
	// in the wait-for graph; the request was refused.
	Deadlock
)

// Request is one lock request. Deadline orders the wait queue (earlier
// deadlines are served first, matching the paper's deadline-prioritized
// object request scheduling).
type Request struct {
	Obj      ObjectID
	Owner    OwnerID
	Mode     Mode
	Deadline time.Duration

	// Tag carries caller context (e.g. the waiting transaction) through
	// to the grant notification.
	Tag any

	seq     int64
	granted bool
	waiting bool
}

// GrantedNow reports whether the request has been granted.
func (r *Request) GrantedNow() bool { return r.granted }

// Waiting reports whether the request is still queued.
func (r *Request) Waiting() bool { return r.waiting }

// Table is a lock table with deadline-ordered waiting and deadlock
// refusal. Object ids are page numbers — dense and non-negative — so
// entries live in a dense slice indexed by object when the caller
// Reserved the id space (the server's table, which locks the whole
// database), or a sparse map otherwise (per-client tables, which only
// ever lock the few objects the client caches — a dense index sized by
// the database would dwarf the client itself at large populations).
// Spent entries recycle through a free list instead of churning the
// allocator either way.
type Table struct {
	dense   bool
	entries []*entry            // dense: indexed by ObjectID; nil when no locks or waiters
	sparse  map[ObjectID]*entry // sparse: present only while locked or waited on
	free    []*entry
	// waits holds wait-for edges: waits[a][b] > 0 means a waits for b.
	waits map[OwnerID]map[OwnerID]int
	seq   int64

	// heldBy indexes the objects each owner holds, so ReleaseAll is
	// proportional to the owner's locks instead of the whole table.
	// Owner lock sets are tiny, so a slice beats a set.
	heldBy map[OwnerID][]ObjectID
	// waiting indexes the objects each owner has queued requests on
	// (with counts), so wait-for-edge recomputation in dropEdgesFrom
	// visits only the relevant entries instead of scanning the table.
	waiting map[OwnerID][]objCount
	// objsFree and countsFree recycle the per-owner index slices:
	// owners are transient transaction ids, so without reuse every
	// transaction pays two allocations here.
	objsFree   [][]ObjectID
	countsFree [][]objCount
	// waitsFree recycles the per-owner wait-edge maps for the same
	// reason; edge rebuilds clear and refill instead of reallocating.
	waitsFree []map[OwnerID]int

	// confBuf is the shared conflict-scan buffer: conflict queries
	// return slices of it, valid only until the next table call.
	confBuf []OwnerID
	// ddSeen/ddGen/ddStack are deadlock-detection scratch: visited
	// owners are generation-stamped instead of collected in a per-call
	// set, and neighbour sorting runs in segments of one shared stack.
	ddSeen  map[OwnerID]int64
	ddGen   int64
	ddStack []OwnerID

	// DeadlocksRefused counts requests refused by cycle detection.
	DeadlocksRefused int64

	// hook observes lock-table transitions (tracing); zero-valued when
	// tracing is off, costing one nil check per transition.
	hook Hook
}

// objCount is one (object, queued-request count) pair of an owner's
// waiting index.
type objCount struct {
	obj ObjectID
	n   int
}

// Hook observes lock-table transitions. Both fields are optional; a
// zero Hook disables observation. Requested fires for every Lock call
// with its outcome and (for Queued/Deadlock) the conflicting holders;
// Granted fires for every delayed grant admitted from the queue.
type Hook struct {
	Requested func(req *Request, outcome Outcome, blockers []OwnerID)
	Granted   func(req *Request)
}

// SetHook installs h.
func (t *Table) SetHook(h Hook) { t.hook = h }

// holderEntry is one (owner, mode) holder of an object.
type holderEntry struct {
	owner OwnerID
	mode  Mode
}

// entry keeps holders as a small slice sorted by owner: holder sets are
// tiny (readers of one object), so sorted insertion beats a map and
// conflict scans come out pre-sorted for determinism.
type entry struct {
	holders []holderEntry
	queue   []*Request
}

// NewTable returns an empty lock table.
func NewTable() *Table {
	return &Table{
		sparse:  make(map[ObjectID]*entry),
		waits:   make(map[OwnerID]map[OwnerID]int),
		heldBy:  make(map[OwnerID][]ObjectID),
		waiting: make(map[OwnerID][]objCount),
	}
}

// Reserve switches the table to the dense entry index, pre-sized for
// object ids in [0, n). Call it before first use when the table will
// lock a dense id space (the server's whole-database table); leave
// unreserved tables on the sparse map.
func (t *Table) Reserve(n int) {
	t.dense = true
	if n > cap(t.entries) {
		grown := make([]*entry, len(t.entries), n)
		copy(grown, t.entries)
		t.entries = grown
	}
}

// lookup returns obj's entry, or nil when it has no locks or waiters.
func (t *Table) lookup(obj ObjectID) *entry {
	if t.dense {
		if int(obj) < len(t.entries) {
			return t.entries[obj]
		}
		return nil
	}
	return t.sparse[obj]
}

func (t *Table) entryFor(obj ObjectID) *entry {
	if e := t.lookup(obj); e != nil {
		return e
	}
	var e *entry
	if n := len(t.free); n > 0 {
		e = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		e = &entry{}
	}
	if t.dense {
		for int(obj) >= len(t.entries) {
			t.entries = append(t.entries, nil)
		}
		t.entries[obj] = e
	} else {
		t.sparse[obj] = e
	}
	return e
}

// retire returns obj's spent entry to the free list.
func (t *Table) retire(obj ObjectID, e *entry) {
	e.holders = e.holders[:0]
	for i := range e.queue {
		e.queue[i] = nil
	}
	e.queue = e.queue[:0]
	if t.dense {
		t.entries[obj] = nil
	} else {
		delete(t.sparse, obj)
	}
	t.free = append(t.free, e)
}

// find returns the index of owner in the sorted holder slice, or the
// insertion point when absent.
func (e *entry) find(owner OwnerID) (int, bool) {
	for i := range e.holders {
		if e.holders[i].owner == owner {
			return i, true
		}
		if e.holders[i].owner > owner {
			return i, false
		}
	}
	return len(e.holders), false
}

// holderMode returns owner's held mode (0 when not holding).
func (e *entry) holderMode(owner OwnerID) Mode {
	if i, ok := e.find(owner); ok {
		return e.holders[i].mode
	}
	return 0
}

// setHolder grants or updates owner's mode, maintaining sort order and
// the table's held-objects index.
func (t *Table) setHolder(obj ObjectID, e *entry, owner OwnerID, mode Mode) {
	i, ok := e.find(owner)
	if ok {
		e.holders[i].mode = mode
		return
	}
	e.holders = append(e.holders, holderEntry{})
	copy(e.holders[i+1:], e.holders[i:])
	e.holders[i] = holderEntry{owner: owner, mode: mode}
	objs, ok := t.heldBy[owner]
	if !ok {
		if n := len(t.objsFree); n > 0 {
			objs = t.objsFree[n-1]
			t.objsFree = t.objsFree[:n-1]
		}
	}
	t.heldBy[owner] = append(objs, obj)
}

// delHolder removes owner's hold, reporting whether it was held.
func (t *Table) delHolder(obj ObjectID, e *entry, owner OwnerID) bool {
	i, ok := e.find(owner)
	if !ok {
		return false
	}
	e.holders = append(e.holders[:i], e.holders[i+1:]...)
	if objs, ok := t.heldBy[owner]; ok {
		for j, o := range objs {
			if o == obj {
				objs = append(objs[:j], objs[j+1:]...)
				break
			}
		}
		if len(objs) == 0 {
			delete(t.heldBy, owner)
			t.objsFree = append(t.objsFree, objs)
		} else {
			t.heldBy[owner] = objs
		}
	}
	return true
}

// conflictsInto appends the holders of e that conflict with owner
// acquiring mode, sorted for determinism (the holder slice is kept
// sorted). A holder never conflicts with itself; an owner holding SL
// and requesting EL conflicts with every other holder.
func (e *entry) conflictsInto(owner OwnerID, mode Mode, buf []OwnerID) []OwnerID {
	for _, h := range e.holders {
		if h.owner == owner {
			continue
		}
		if !Compatible(mode, h.mode) {
			buf = append(buf, h.owner)
		}
	}
	return buf
}

// conflictCount counts the holders that would conflict, without
// materializing them.
func (e *entry) conflictCount(owner OwnerID, mode Mode) int {
	n := 0
	for _, h := range e.holders {
		if h.owner != owner && !Compatible(mode, h.mode) {
			n++
		}
	}
	return n
}

// Lock requests obj in mode for owner. Re-entrant requests at the same or
// weaker mode are granted immediately. On conflict the request is queued
// in deadline order unless that would create a wait-for cycle, in which
// case it is refused with Deadlock. The returned slice lists the
// conflicting holders (for callbacks / H2) whenever the outcome is Queued;
// it is table-owned scratch, valid only until the next table call.
func (t *Table) Lock(req *Request) (Outcome, []OwnerID) {
	if req.Mode != ModeShared && req.Mode != ModeExclusive {
		panic(fmt.Sprintf("lockmgr: invalid mode %d", req.Mode))
	}
	e := t.entryFor(req.Obj)
	if held := e.holderMode(req.Owner); held == req.Mode || held == ModeExclusive {
		req.granted = true
		return t.requested(req, Granted, nil)
	}
	conf := e.conflictsInto(req.Owner, req.Mode, t.confBuf[:0])
	t.confBuf = conf
	isUpgrade := e.holderMode(req.Owner) != 0
	// Upgrades bypass the queue-behind rule: an SL holder upgrading to
	// EL only needs the other holders gone, and making it queue behind
	// an unrelated waiter would deadlock it against its own held lock.
	if len(conf) == 0 && (isUpgrade || !t.mustQueueBehind(e, req)) {
		t.setHolder(req.Obj, e, req.Owner, req.Mode)
		req.granted = true
		return t.requested(req, Granted, nil)
	}
	if len(conf) > 0 && t.wouldDeadlock(req.Owner, conf) {
		t.DeadlocksRefused++
		return t.requested(req, Deadlock, conf)
	}
	t.enqueue(e, req)
	for _, h := range conf {
		t.addEdge(req.Owner, h)
	}
	return t.requested(req, Queued, conf)
}

// requested funnels every Lock outcome through the hook.
func (t *Table) requested(req *Request, out Outcome, conf []OwnerID) (Outcome, []OwnerID) {
	if t.hook.Requested != nil {
		t.hook.Requested(req, out, conf)
	}
	return out, conf
}

// mustQueueBehind reports whether req, though compatible with current
// holders, must still wait because an earlier-deadline incompatible
// request is already queued (prevents shared readers starving a queued
// writer).
func (t *Table) mustQueueBehind(e *entry, req *Request) bool {
	for _, q := range e.queue {
		if q.Owner == req.Owner {
			continue
		}
		if !Compatible(req.Mode, q.Mode) {
			return true
		}
	}
	return false
}

func (t *Table) enqueue(e *entry, req *Request) {
	t.seq++
	req.seq = t.seq
	req.waiting = true
	i := sort.Search(len(e.queue), func(i int) bool {
		q := e.queue[i]
		if q.Deadline != req.Deadline {
			return q.Deadline > req.Deadline
		}
		return q.seq > req.seq
	})
	e.queue = append(e.queue, nil)
	copy(e.queue[i+1:], e.queue[i:])
	e.queue[i] = req
	counts, ok := t.waiting[req.Owner]
	if ok {
		for j := range counts {
			if counts[j].obj == req.Obj {
				counts[j].n++
				return
			}
		}
	} else if n := len(t.countsFree); n > 0 {
		counts = t.countsFree[n-1]
		t.countsFree = t.countsFree[:n-1]
	}
	t.waiting[req.Owner] = append(counts, objCount{obj: req.Obj, n: 1})
}

// dequeued maintains the waiting index when a queued request leaves the
// queue (granted or canceled).
func (t *Table) dequeued(owner OwnerID, obj ObjectID) {
	counts, ok := t.waiting[owner]
	if !ok {
		return
	}
	for j := range counts {
		if counts[j].obj != obj {
			continue
		}
		if counts[j].n--; counts[j].n <= 0 {
			counts = append(counts[:j], counts[j+1:]...)
			if len(counts) == 0 {
				delete(t.waiting, owner)
				t.countsFree = append(t.countsFree, counts)
			} else {
				t.waiting[owner] = counts
			}
		}
		return
	}
}

// Release drops owner's lock on obj and returns the requests that become
// granted as a result, in service order.
func (t *Table) Release(obj ObjectID, owner OwnerID) []*Request {
	e := t.lookup(obj)
	if e == nil {
		return nil
	}
	if !t.delHolder(obj, e, owner) {
		return nil
	}
	return t.admit(obj, e)
}

// Downgrade weakens owner's EL on obj to SL (the modified callback
// scheme: the holder keeps reading while the requester proceeds in shared
// mode) and returns newly granted requests.
func (t *Table) Downgrade(obj ObjectID, owner OwnerID) []*Request {
	e := t.lookup(obj)
	if e == nil {
		return nil
	}
	if e.holderMode(owner) != ModeExclusive {
		return nil
	}
	t.setHolder(obj, e, owner, ModeShared)
	return t.admit(obj, e)
}

// ReleaseAll drops every lock owner holds (strict 2PL commit/abort) and
// returns all newly granted requests across objects, in ascending object
// order.
func (t *Table) ReleaseAll(owner OwnerID) []*Request {
	held := t.heldBy[owner]
	if len(held) == 0 {
		return nil
	}
	// Release mutates heldBy[owner]; snapshot and order the set first.
	var stack [16]ObjectID
	objs := append(stack[:0], held...)
	slices.Sort(objs)
	var grants []*Request
	for _, obj := range objs {
		grants = append(grants, t.Release(obj, owner)...)
	}
	return grants
}

// Cancel removes a queued request (typically because its transaction
// missed its deadline) and returns any requests that become grantable
// once the canceled one no longer blocks the queue head.
func (t *Table) Cancel(req *Request) []*Request {
	if !req.waiting {
		return nil
	}
	e := t.lookup(req.Obj)
	if e == nil {
		return nil
	}
	for i, q := range e.queue {
		if q == req {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			break
		}
	}
	req.waiting = false
	t.dequeued(req.Owner, req.Obj)
	t.dropEdgesFrom(req.Owner, req.Obj)
	return t.admit(req.Obj, e)
}

// admit grants queued requests in deadline order while they remain
// compatible with the holders, stopping at the first conflict so earlier
// deadlines are never starved by later compatible ones.
func (t *Table) admit(obj ObjectID, e *entry) []*Request {
	var grants []*Request
	for len(e.queue) > 0 {
		req := e.queue[0]
		if e.conflictCount(req.Owner, req.Mode) > 0 {
			break
		}
		e.queue = e.queue[1:]
		t.setHolder(obj, e, req.Owner, req.Mode)
		req.waiting = false
		req.granted = true
		t.dequeued(req.Owner, obj)
		t.dropEdgesFrom(req.Owner, obj)
		if t.hook.Granted != nil {
			t.hook.Granted(req)
		}
		grants = append(grants, req)
	}
	if len(e.holders) == 0 && len(e.queue) == 0 {
		t.retire(obj, e)
	}
	return grants
}

// HolderMode returns the mode owner holds on obj (0 when not held).
func (t *Table) HolderMode(obj ObjectID, owner OwnerID) Mode {
	if e := t.lookup(obj); e != nil {
		return e.holderMode(owner)
	}
	return 0
}

// Holders returns obj's holders and modes (copy).
func (t *Table) Holders(obj ObjectID) map[OwnerID]Mode {
	out := make(map[OwnerID]Mode)
	if e := t.lookup(obj); e != nil {
		for _, h := range e.holders {
			out[h.owner] = h.mode
		}
	}
	return out
}

// SortedHolders returns obj's holders sorted by owner id.
func (t *Table) SortedHolders(obj ObjectID) []OwnerID {
	e := t.lookup(obj)
	if e == nil {
		return nil
	}
	out := make([]OwnerID, 0, len(e.holders))
	for _, h := range e.holders {
		out = append(out, h.owner)
	}
	return out
}

// NextWaiter returns the head of obj's wait queue (the earliest-deadline
// pending request), or nil when nothing waits.
func (t *Table) NextWaiter(obj ObjectID) *Request {
	if e := t.lookup(obj); e != nil && len(e.queue) > 0 {
		return e.queue[0]
	}
	return nil
}

// FirstForeignWaiter returns the earliest queued request on obj not
// owned by owner, or nil.
func (t *Table) FirstForeignWaiter(obj ObjectID, owner OwnerID) *Request {
	if e := t.lookup(obj); e != nil {
		for _, q := range e.queue {
			if q.Owner != owner {
				return q
			}
		}
	}
	return nil
}

// HasWaiter reports whether owner has a request queued on obj — the
// server's duplicate-request guard under fault injection.
func (t *Table) HasWaiter(obj ObjectID, owner OwnerID) bool {
	for _, c := range t.waiting[owner] {
		if c.obj == obj {
			return c.n > 0
		}
	}
	return false
}

// QueueLen returns the number of requests waiting on obj.
func (t *Table) QueueLen(obj ObjectID) int {
	if e := t.lookup(obj); e != nil {
		return len(e.queue)
	}
	return 0
}

// ConflictingHolders returns the holders that would conflict with owner
// acquiring obj in mode right now. The returned slice is table-owned
// scratch, valid only until the next table call.
func (t *Table) ConflictingHolders(obj ObjectID, owner OwnerID, mode Mode) []OwnerID {
	if e := t.lookup(obj); e != nil {
		t.confBuf = e.conflictsInto(owner, mode, t.confBuf[:0])
		return t.confBuf
	}
	return nil
}

// ConflictCount returns how many of the (object, mode) pairs would
// conflict for owner — the quantity heuristic H2 minimizes across sites.
func (t *Table) ConflictCount(owner OwnerID, objs []ObjectID, modes []Mode) int {
	n := 0
	for i, obj := range objs {
		if e := t.lookup(obj); e != nil && e.conflictCount(owner, modes[i]) > 0 {
			n++
		}
	}
	return n
}

// HolderCount returns the number of holders of obj; HolderAt returns
// the i'th holder in ascending owner order. Together they expose the
// holder set without allocating (SortedHolders copies).
func (t *Table) HolderCount(obj ObjectID) int {
	if e := t.lookup(obj); e != nil {
		return len(e.holders)
	}
	return 0
}

// HolderAt returns the i'th holder of obj and its mode, in ascending
// owner order.
func (t *Table) HolderAt(obj ObjectID, i int) (OwnerID, Mode) {
	e := t.lookup(obj)
	return e.holders[i].owner, e.holders[i].mode
}

// wouldDeadlock reports whether adding edges owner→each holder closes a
// cycle, i.e. whether owner is reachable from any holder.
func (t *Table) wouldDeadlock(owner OwnerID, holders []OwnerID) bool {
	if t.ddSeen == nil {
		t.ddSeen = make(map[OwnerID]int64)
	}
	t.ddGen++
	for _, h := range holders {
		if t.ddReach(h, owner) {
			return true
		}
	}
	return false
}

// ddReach is wouldDeadlock's depth-first search. Each level collects
// and sorts its live neighbours in a segment of the shared ddStack
// (indexed, not sliced — deeper levels may grow the backing array) so
// the visit order matches the old per-call sorted-slice implementation.
func (t *Table) ddReach(from, owner OwnerID) bool {
	if from == owner {
		return true
	}
	if t.ddSeen[from] == t.ddGen {
		return false
	}
	t.ddSeen[from] = t.ddGen
	base := len(t.ddStack)
	for to, n := range t.waits[from] {
		if n > 0 {
			t.ddStack = append(t.ddStack, to)
		}
	}
	slices.Sort(t.ddStack[base:])
	for i := base; i < len(t.ddStack); i++ {
		if t.ddReach(t.ddStack[i], owner) {
			t.ddStack = t.ddStack[:base]
			return true
		}
	}
	t.ddStack = t.ddStack[:base]
	return false
}

func (t *Table) addEdge(from, to OwnerID) {
	m, ok := t.waits[from]
	if !ok {
		if n := len(t.waitsFree); n > 0 {
			m = t.waitsFree[n-1]
			t.waitsFree = t.waitsFree[:n-1]
		} else {
			m = make(map[OwnerID]int)
		}
		t.waits[from] = m
	}
	m[to]++
}

// dropEdgesFrom removes the wait edges the request for obj created. Edges
// are reference-counted per (from, to); because holder sets shift while
// queued, we recompute owner's outgoing edges from its remaining queued
// requests' current conflicts. The waiting index names exactly the
// entries holding those requests, so the rebuild touches only them
// instead of scanning the whole table.
func (t *Table) dropEdgesFrom(owner OwnerID, obj ObjectID) {
	counts := t.waiting[owner]
	if len(counts) == 0 {
		t.retireWaits(owner)
		return
	}
	m, ok := t.waits[owner]
	if ok {
		clear(m)
	} else if n := len(t.waitsFree); n > 0 {
		m = t.waitsFree[n-1]
		t.waitsFree = t.waitsFree[:n-1]
	} else {
		m = make(map[OwnerID]int)
	}
	for _, c := range counts {
		e := t.lookup(c.obj)
		if e == nil {
			continue
		}
		for _, q := range e.queue {
			if q.Owner != owner {
				continue
			}
			for _, h := range e.holders {
				if h.owner != owner && !Compatible(q.Mode, h.mode) {
					m[h.owner]++
				}
			}
		}
	}
	if len(m) == 0 {
		delete(t.waits, owner)
		t.waitsFree = append(t.waitsFree, m)
	} else {
		t.waits[owner] = m
	}
}

// retireWaits drops owner's wait-edge map and recycles it.
func (t *Table) retireWaits(owner OwnerID) {
	if m, ok := t.waits[owner]; ok {
		delete(t.waits, owner)
		clear(m)
		t.waitsFree = append(t.waitsFree, m)
	}
}

// Audit verifies internal invariants: no conflicting holders coexist and
// no granted request is still queued. It returns an error describing the
// first violation found.
func (t *Table) Audit() error {
	objs := make([]ObjectID, 0, len(t.sparse))
	if t.dense {
		for obj := ObjectID(0); int(obj) < len(t.entries); obj++ {
			if t.entries[obj] != nil {
				objs = append(objs, obj)
			}
		}
	} else {
		for obj := range t.sparse {
			objs = append(objs, obj)
		}
		slices.Sort(objs)
	}
	for _, obj := range objs {
		e := t.lookup(obj)
		var sharers, exclusives int
		for _, h := range e.holders {
			switch h.mode {
			case ModeShared:
				sharers++
			case ModeExclusive:
				exclusives++
			}
		}
		if exclusives > 1 || (exclusives == 1 && sharers > 0) {
			return fmt.Errorf("lockmgr: object %d held incompatibly (%d SL, %d EL)", obj, sharers, exclusives)
		}
		for _, q := range e.queue {
			if q.granted {
				return fmt.Errorf("lockmgr: object %d has granted request still queued", obj)
			}
		}
	}
	return nil
}
