package lockmgr

import (
	"errors"

	"siteselect/internal/sim"
)

// Blocking-table errors.
var (
	// ErrDeadlock is returned when a request is refused by wait-for
	// cycle detection.
	ErrDeadlock = errors.New("lockmgr: deadlock refused")
	// ErrDeadline is returned when a request's deadline passed while it
	// waited.
	ErrDeadline = errors.New("lockmgr: deadline passed while waiting")
)

// BlockingTable adapts a Table for process-style callers: LockWait blocks
// the simulation process until the lock is granted, the request's
// deadline passes, or the request is refused as a deadlock. All lock
// mutations must go through the wrapper so that waiters are woken.
type BlockingTable struct {
	env     *sim.Env
	table   *Table
	wakeups map[*Request]*sim.Signal
}

// NewBlockingTable returns a wrapper around a fresh Table.
func NewBlockingTable(env *sim.Env) *BlockingTable {
	return &BlockingTable{
		env:     env,
		table:   NewTable(),
		wakeups: make(map[*Request]*sim.Signal),
	}
}

// Table exposes the underlying table for inspection (Audit, holder
// queries). Mutations must use the wrapper methods.
func (bt *BlockingTable) Table() *Table { return bt.table }

// Reserve pre-sizes the underlying table's entry index.
func (bt *BlockingTable) Reserve(n int) { bt.table.Reserve(n) }

// LockWait acquires req, blocking until granted. It fails with
// ErrDeadlock when refused by cycle detection and with ErrDeadline when
// req.Deadline arrives first (the request is then canceled, matching the
// policy that transactions past their deadline are not served).
func (bt *BlockingTable) LockWait(p *sim.Proc, req *Request) error {
	outcome, _ := bt.table.Lock(req)
	switch outcome {
	case Granted:
		return nil
	case Deadlock:
		return ErrDeadlock
	}
	sig := sim.NewSignal(bt.env)
	bt.wakeups[req] = sig
	for !req.GrantedNow() {
		remain := req.Deadline - p.Now()
		if remain <= 0 || !p.WaitTimeout(sig, remain) {
			if req.GrantedNow() { // granted in the same instant as the timeout
				break
			}
			delete(bt.wakeups, req)
			bt.fire(bt.table.Cancel(req))
			return ErrDeadline
		}
	}
	delete(bt.wakeups, req)
	return nil
}

// LockOp is the state-machine counterpart of LockWait: a resumable lock
// acquisition for Machine callers with identical outcomes and park
// points. Call Start once; done=true resolves the request immediately
// (grant, deadlock refusal, or an already-expired deadline). Otherwise
// the task parked: call Step from every following Resume until done.
type LockOp struct {
	bt  *BlockingTable
	req *Request
	sig *sim.Signal
}

// Start issues the request, mirroring LockWait up to the first park.
func (o *LockOp) Start(bt *BlockingTable, t *sim.Task, req *Request) (bool, error) {
	o.bt, o.req = bt, req
	outcome, _ := bt.table.Lock(req)
	switch outcome {
	case Granted:
		return true, nil
	case Deadlock:
		return true, ErrDeadlock
	}
	o.sig = sim.NewSignal(bt.env)
	bt.wakeups[req] = o.sig
	return o.wait(t)
}

// Step continues after a park.
func (o *LockOp) Step(t *sim.Task) (bool, error) {
	if t.TimedOut() {
		if o.req.GrantedNow() { // granted in the same instant as the timeout
			delete(o.bt.wakeups, o.req)
			return true, nil
		}
		return o.expire()
	}
	return o.wait(t)
}

// wait mirrors LockWait's grant-recheck loop: resolve if granted,
// expire if the deadline passed, otherwise park until woken.
func (o *LockOp) wait(t *sim.Task) (bool, error) {
	if o.req.GrantedNow() {
		delete(o.bt.wakeups, o.req)
		return true, nil
	}
	remain := o.req.Deadline - t.Now()
	if remain <= 0 || !t.WaitTimeout(o.sig, remain) {
		return o.expire()
	}
	return false, nil
}

func (o *LockOp) expire() (bool, error) {
	delete(o.bt.wakeups, o.req)
	o.bt.fire(o.bt.table.Cancel(o.req))
	return true, ErrDeadline
}

// Release drops owner's lock on obj and wakes newly granted waiters.
func (bt *BlockingTable) Release(obj ObjectID, owner OwnerID) {
	bt.fire(bt.table.Release(obj, owner))
}

// ReleaseAll drops all of owner's locks and wakes newly granted waiters.
func (bt *BlockingTable) ReleaseAll(owner OwnerID) {
	bt.fire(bt.table.ReleaseAll(owner))
}

// Downgrade weakens owner's EL on obj to SL and wakes newly granted
// waiters.
func (bt *BlockingTable) Downgrade(obj ObjectID, owner OwnerID) {
	bt.fire(bt.table.Downgrade(obj, owner))
}

func (bt *BlockingTable) fire(grants []*Request) {
	for _, g := range grants {
		if sig, ok := bt.wakeups[g]; ok {
			sig.Broadcast()
		}
	}
}
