// Package plot renders the experiment results as standalone SVG line
// charts, so the reproduction produces actual figures comparable to the
// paper's, with no dependencies outside the standard library.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one line on a chart.
type Series struct {
	Name string
	Y    []float64
	// CI holds optional per-point 95% confidence half-widths, drawn as
	// error bars; when non-nil its length must match Y.
	CI []float64
}

// Chart is a line chart over a shared x-axis.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
	// YMin/YMax fix the y-range; when equal the range is derived from
	// the data with a small margin.
	YMin, YMax float64
}

// Geometry and palette of the rendered SVG.
const (
	width   = 640
	height  = 420
	marginL = 70
	marginR = 160
	marginT = 50
	marginB = 60
)

var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// SVG writes the chart as a standalone SVG document.
func (c *Chart) SVG(w io.Writer) error {
	if len(c.X) == 0 || len(c.Series) == 0 {
		return fmt.Errorf("plot: chart %q has no data", c.Title)
	}
	for _, s := range c.Series {
		if len(s.Y) != len(c.X) {
			return fmt.Errorf("plot: series %q has %d points, x-axis has %d", s.Name, len(s.Y), len(c.X))
		}
		if s.CI != nil && len(s.CI) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d CI values, %d points", s.Name, len(s.CI), len(s.Y))
		}
	}

	xmin, xmax := minMax(c.X)
	ymin, ymax := c.YMin, c.YMax
	if ymin == ymax {
		ymin, ymax = math.Inf(1), math.Inf(-1)
		for _, s := range c.Series {
			lo, hi := minMax(s.Y)
			ymin = math.Min(ymin, lo)
			ymax = math.Max(ymax, hi)
		}
		pad := (ymax - ymin) * 0.08
		if pad == 0 {
			pad = 1
		}
		ymin -= pad
		ymax += pad
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	px := func(x float64) float64 { return marginL + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return marginT + plotH - (y-ymin)/(ymax-ymin)*plotH }

	var sb strings.Builder
	sb.WriteString(fmt.Sprintf(
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`,
		width, height, width, height))
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	sb.WriteString(fmt.Sprintf(
		`<text x="%d" y="24" font-size="15" text-anchor="middle" font-weight="bold">%s</text>`,
		(marginL+width-marginR)/2, escape(c.Title)))

	// Axes.
	sb.WriteString(fmt.Sprintf(
		`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, marginT, marginL, height-marginB))
	sb.WriteString(fmt.Sprintf(
		`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, height-marginB, width-marginR, height-marginB))

	// Y ticks and gridlines.
	for i := 0; i <= 5; i++ {
		v := ymin + (ymax-ymin)*float64(i)/5
		y := py(v)
		sb.WriteString(fmt.Sprintf(
			`<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`,
			marginL, y, width-marginR, y))
		sb.WriteString(fmt.Sprintf(
			`<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`,
			marginL-8, y+4, trimFloat(v)))
	}
	// X ticks at the data points.
	for _, x := range c.X {
		sb.WriteString(fmt.Sprintf(
			`<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`,
			px(x), height-marginB+18, trimFloat(x)))
	}
	// Axis labels.
	sb.WriteString(fmt.Sprintf(
		`<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`,
		(marginL+width-marginR)/2, height-16, escape(c.XLabel)))
	sb.WriteString(fmt.Sprintf(
		`<text x="18" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 18 %d)">%s</text>`,
		(marginT+height-marginB)/2, (marginT+height-marginB)/2, escape(c.YLabel)))

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i, y := range s.Y {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(c.X[i]), py(y)))
		}
		sb.WriteString(fmt.Sprintf(
			`<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`,
			strings.Join(pts, " "), color))
		// 95% CI error bars: a vertical whisker with end caps per point.
		for i, ci := range s.CI {
			if ci <= 0 {
				continue
			}
			x := px(c.X[i])
			yLo, yHi := py(s.Y[i]-ci), py(s.Y[i]+ci)
			sb.WriteString(fmt.Sprintf(
				`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1" class="errorbar"/>`,
				x, yLo, x, yHi, color))
			for _, y := range []float64{yLo, yHi} {
				sb.WriteString(fmt.Sprintf(
					`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`,
					x-3, y, x+3, y, color))
			}
		}
		for i, y := range s.Y {
			sb.WriteString(fmt.Sprintf(
				`<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`, px(c.X[i]), py(y), color))
		}
		// Legend entry.
		ly := marginT + 18*si
		sb.WriteString(fmt.Sprintf(
			`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`,
			width-marginR+12, ly, width-marginR+34, ly, color))
		sb.WriteString(fmt.Sprintf(
			`<text x="%d" y="%d" font-size="12">%s</text>`,
			width-marginR+40, ly+4, escape(s.Name)))
	}

	sb.WriteString(`</svg>`)
	_, err := io.WriteString(w, sb.String())
	return err
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range v {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.1f", v)
	s = strings.TrimSuffix(s, ".0")
	return s
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
