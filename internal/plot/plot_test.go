package plot

import (
	"strings"
	"testing"
)

func sample() *Chart {
	return &Chart{
		Title:  "Figure T — test",
		XLabel: "Clients",
		YLabel: "Success %",
		X:      []float64{20, 40, 60},
		Series: []Series{
			{Name: "CE", Y: []float64{90, 70, 10}},
			{Name: "CS", Y: []float64{88, 85, 84}},
		},
		YMin: 0, YMax: 100,
	}
}

func TestSVGWellFormedPieces(t *testing.T) {
	var sb strings.Builder
	if err := sample().SVG(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<svg", "</svg>", "Figure T", "Clients", "Success %",
		"CE", "CS", "polyline",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in SVG output", want)
		}
	}
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Fatalf("polylines = %d, want 2", got)
	}
	if got := strings.Count(out, "<circle"); got != 6 {
		t.Fatalf("markers = %d, want 6", got)
	}
}

func TestSVGEscapesText(t *testing.T) {
	c := sample()
	c.Title = "a < b & c"
	var sb strings.Builder
	if err := c.SVG(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "a < b & c") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(sb.String(), "a &lt; b &amp; c") {
		t.Fatal("escaped title missing")
	}
}

func TestSVGRejectsEmptyAndMismatched(t *testing.T) {
	var sb strings.Builder
	empty := &Chart{Title: "empty"}
	if err := empty.SVG(&sb); err == nil {
		t.Fatal("empty chart accepted")
	}
	bad := sample()
	bad.Series[0].Y = bad.Series[0].Y[:2]
	if err := bad.SVG(&sb); err == nil {
		t.Fatal("mismatched series accepted")
	}
}

func TestSVGAutoRange(t *testing.T) {
	c := sample()
	c.YMin, c.YMax = 0, 0 // derive from data
	var sb strings.Builder
	if err := c.SVG(&sb); err != nil {
		t.Fatal(err)
	}
	// Constant series should not divide by zero either.
	flat := &Chart{
		Title: "flat", X: []float64{1, 2},
		Series: []Series{{Name: "s", Y: []float64{5, 5}}},
	}
	sb.Reset()
	if err := flat.SVG(&sb); err != nil {
		t.Fatal(err)
	}
}
