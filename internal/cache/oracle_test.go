package cache

import (
	"testing"
	"testing/quick"

	"siteselect/internal/lockmgr"
)

// refLRU is a deliberately naive single-tier LRU used as an oracle: the
// two-tier cache, viewed as one combined capacity, must keep exactly the
// same object set as a plain LRU over the same access sequence (while
// nothing is pinned, recency order is all that matters).
type refLRU struct {
	cap   int
	order []lockmgr.ObjectID // front = most recent
}

func (r *refLRU) touch(obj lockmgr.ObjectID) {
	for i, o := range r.order {
		if o == obj {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.order = append([]lockmgr.ObjectID{obj}, r.order...)
	if len(r.order) > r.cap {
		r.order = r.order[:r.cap]
	}
}

func (r *refLRU) contains(obj lockmgr.ObjectID) bool {
	for _, o := range r.order {
		if o == obj {
			return true
		}
	}
	return false
}

// TestTwoTierMatchesLRUOracle drives the two-tier cache and a reference
// LRU with the same access stream and compares residency after every
// step. Demotion to the disk tier must behave exactly like LRU aging in
// the combined cache.
func TestTwoTierMatchesLRUOracle(t *testing.T) {
	f := func(accesses []uint8, memCap, diskCap uint8) bool {
		mc := int(memCap%3) + 1
		dc := int(diskCap % 4)
		c := New(mc, dc)
		ref := &refLRU{cap: mc + dc}
		for _, a := range accesses {
			obj := lockmgr.ObjectID(a % 12)
			if e, _, _ := c.Lookup(obj); e == nil {
				c.Insert(obj, lockmgr.ModeShared, false, 0)
			}
			ref.touch(obj)
			// Residency must agree exactly.
			for id := lockmgr.ObjectID(0); id < 12; id++ {
				if c.Contains(id) != ref.contains(id) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
