// Package cache implements the client-side object cache of the paper's
// object-shipping architecture: a two-tier (main memory + local disk)
// LRU store holding database objects together with the locks cached on
// them for inter-transaction reuse.
//
// The cache tracks which tier served a lookup so the client can charge
// local-disk latency for disk-tier hits, and reports demotions and
// evictions so the client can return dirty objects (and release cached
// locks) to the server.
package cache

import "siteselect/internal/lockmgr"

// Entry is one cached object.
type Entry struct {
	Obj lockmgr.ObjectID
	// Mode is the cached lock mode (SL or EL).
	Mode lockmgr.Mode
	// Dirty marks locally updated objects not yet returned to the
	// server.
	Dirty bool
	// Version is the logical version of the cached copy, used by the
	// consistency audits.
	Version int64

	pins int
	tier Tier
	// Intrusive LRU links: each entry is its own list node, so pin/unpin
	// and touch cycles allocate nothing.
	prev, next *Entry
	inLRU      bool
}

// Pinned reports whether the entry is in use by a running transaction.
func (e *Entry) Pinned() bool { return e.pins > 0 }

// Pins returns the current pin count.
func (e *Entry) Pins() int { return e.pins }

// Tier returns which tier currently holds the entry.
func (e *Entry) Tier() Tier { return e.tier }

// Tier identifies a cache level.
type Tier int

// Cache tiers.
const (
	// TierNone means not cached.
	TierNone Tier = iota
	// TierMemory is the client's in-memory cache.
	TierMemory
	// TierDisk is the client's on-disk cache.
	TierDisk
)

// lruList is an intrusive doubly-linked list of entries; front = most
// recently used. Only unpinned entries are linked.
type lruList struct {
	front, back *Entry
}

func (l *lruList) pushFront(e *Entry) {
	e.prev = nil
	e.next = l.front
	if l.front != nil {
		l.front.prev = e
	} else {
		l.back = e
	}
	l.front = e
	e.inLRU = true
}

func (l *lruList) remove(e *Entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.back = e.prev
	}
	e.prev, e.next = nil, nil
	e.inLRU = false
}

func (l *lruList) moveToFront(e *Entry) {
	if l.front == e {
		return
	}
	l.remove(e)
	l.pushFront(e)
}

// Cache is a two-tier LRU object cache.
type Cache struct {
	memCap, diskCap int
	entries         map[lockmgr.ObjectID]*Entry
	memLRU          lruList // front = most recent; unpinned only
	diskLRU         lruList
	memCount        int // includes pinned entries
	diskCount       int

	// MemoryHits, DiskHits and Misses count Lookup outcomes.
	MemoryHits int64
	DiskHits   int64
	Misses     int64

	// free recycles evicted entries. Eviction and removal results are
	// handed to the caller first (locks must be returned to the server),
	// so entries re-enter the pool only via an explicit Recycle call.
	free []*Entry
}

// New returns a cache with the given per-tier capacities (in objects).
func New(memCap, diskCap int) *Cache {
	if memCap <= 0 {
		panic("cache: memory capacity must be positive")
	}
	if diskCap < 0 {
		diskCap = 0
	}
	return &Cache{
		memCap:  memCap,
		diskCap: diskCap,
		entries: make(map[lockmgr.ObjectID]*Entry),
	}
}

// Len returns the number of cached objects across tiers.
func (c *Cache) Len() int { return len(c.entries) }

// Contains reports whether obj is cached in any tier.
func (c *Cache) Contains(obj lockmgr.ObjectID) bool {
	_, ok := c.entries[obj]
	return ok
}

// Peek returns the entry without touching LRU state or hit counters.
func (c *Cache) Peek(obj lockmgr.ObjectID) *Entry { return c.entries[obj] }

// Lookup finds obj, promotes disk-tier hits to memory, updates recency
// and hit counters, and returns the entry with the tier that served it
// (TierNone on miss). Promotion may demote the memory LRU victim to disk
// and, transitively, evict the disk LRU victim; such fallout is returned
// so the caller can notify the server.
func (c *Cache) Lookup(obj lockmgr.ObjectID) (*Entry, Tier, []*Entry) {
	e, ok := c.entries[obj]
	if !ok {
		c.Misses++
		return nil, TierNone, nil
	}
	served := e.tier
	var evicted []*Entry
	switch e.tier {
	case TierMemory:
		c.MemoryHits++
		c.touch(e)
	case TierDisk:
		c.DiskHits++
		evicted = c.promote(e)
	}
	return e, served, evicted
}

// Insert caches obj in the memory tier, replacing any existing entry's
// mode/dirty/version in place. It returns the entries pushed out of the
// cache entirely (disk-tier evictions), whose locks the caller must
// return to the server.
func (c *Cache) Insert(obj lockmgr.ObjectID, mode lockmgr.Mode, dirty bool, version int64) []*Entry {
	if e, ok := c.entries[obj]; ok {
		e.Mode = mode
		e.Dirty = e.Dirty || dirty
		e.Version = version
		if e.tier == TierDisk {
			return c.promote(e)
		}
		c.touch(e)
		return nil
	}
	var e *Entry
	if n := len(c.free); n > 0 {
		e = c.free[n-1]
		c.free = c.free[:n-1]
		*e = Entry{Obj: obj, Mode: mode, Dirty: dirty, Version: version, tier: TierMemory}
	} else {
		e = &Entry{Obj: obj, Mode: mode, Dirty: dirty, Version: version, tier: TierMemory}
	}
	c.entries[obj] = e
	c.memCount++
	c.memLRU.pushFront(e)
	return c.shrink()
}

// Pin marks the entry in use, excluding it from eviction.
func (c *Cache) Pin(e *Entry) {
	e.pins++
	if e.inLRU {
		c.lruOf(e.tier).remove(e)
	}
}

// Unpin releases one pin; at zero the entry becomes evictable again.
func (c *Cache) Unpin(e *Entry) {
	if e.pins <= 0 {
		panic("cache: Unpin of unpinned entry")
	}
	e.pins--
	if e.pins == 0 {
		c.lruOf(e.tier).pushFront(e)
	}
}

// Remove drops obj from the cache (server callback or voluntary
// release). Removing a pinned entry panics: callbacks must wait for
// local transactions to finish first.
func (c *Cache) Remove(obj lockmgr.ObjectID) *Entry {
	e, ok := c.entries[obj]
	if !ok {
		return nil
	}
	if e.pins > 0 {
		panic("cache: Remove of pinned entry")
	}
	c.drop(e)
	return e
}

// Recycle returns an evicted or removed entry to the cache's free pool.
// Call it only after the entry has been fully processed and no other
// reference to it remains; a still-cached entry panics.
func (c *Cache) Recycle(e *Entry) {
	if e == nil {
		return
	}
	if e.tier != TierNone {
		panic("cache: Recycle of live entry")
	}
	*e = Entry{}
	c.free = append(c.free, e)
}

// Entries returns all cached entries in unspecified order. Callers that
// need determinism must sort.
func (c *Cache) Entries() []*Entry {
	out := make([]*Entry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	return out
}

func (c *Cache) lruOf(t Tier) *lruList {
	if t == TierDisk {
		return &c.diskLRU
	}
	return &c.memLRU
}

func (c *Cache) touch(e *Entry) {
	if e.inLRU {
		c.lruOf(e.tier).moveToFront(e)
	}
}

// promote moves a disk-tier entry to memory, shrinking tiers as needed.
func (c *Cache) promote(e *Entry) []*Entry {
	if e.inLRU {
		c.diskLRU.remove(e)
	}
	c.diskCount--
	e.tier = TierMemory
	c.memCount++
	if e.pins == 0 {
		c.memLRU.pushFront(e)
	}
	return c.shrink()
}

// shrink restores tier capacity invariants: memory overflow demotes the
// memory LRU victim to disk; disk overflow evicts the disk LRU victim.
// Pinned entries are never moved. Returns fully evicted entries.
func (c *Cache) shrink() []*Entry {
	var evicted []*Entry
	for c.memCount > c.memCap {
		v := c.memLRU.back
		if v == nil || v == c.memLRU.front {
			// Everything else is pinned: evicting the sole unpinned
			// entry (the one just inserted/touched) would thrash, so
			// allow transient overflow until pins drop.
			break
		}
		c.memLRU.remove(v)
		c.memCount--
		if c.diskCap == 0 {
			delete(c.entries, v.Obj)
			v.tier = TierNone
			evicted = append(evicted, v)
			continue
		}
		v.tier = TierDisk
		c.diskCount++
		c.diskLRU.pushFront(v)
	}
	for c.diskCount > c.diskCap {
		v := c.diskLRU.back
		if v == nil {
			break
		}
		c.drop(v)
		evicted = append(evicted, v)
	}
	return evicted
}

func (c *Cache) drop(e *Entry) {
	if e.inLRU {
		c.lruOf(e.tier).remove(e)
	}
	switch e.tier {
	case TierMemory:
		c.memCount--
	case TierDisk:
		c.diskCount--
	}
	delete(c.entries, e.Obj)
	e.tier = TierNone
}
