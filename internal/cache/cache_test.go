package cache

import (
	"testing"
	"testing/quick"

	"siteselect/internal/lockmgr"
)

func TestInsertAndLookup(t *testing.T) {
	c := New(2, 2)
	if ev := c.Insert(1, lockmgr.ModeShared, false, 7); ev != nil {
		t.Fatalf("unexpected evictions: %v", ev)
	}
	e, tier, _ := c.Lookup(1)
	if e == nil || tier != TierMemory {
		t.Fatalf("lookup = %v tier %v", e, tier)
	}
	if e.Mode != lockmgr.ModeShared || e.Version != 7 {
		t.Fatalf("entry = %+v", e)
	}
	if _, tier, _ := c.Lookup(9); tier != TierNone {
		t.Fatal("missing object should be TierNone")
	}
	if c.MemoryHits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.MemoryHits, c.Misses)
	}
}

func TestMemoryOverflowDemotesToDisk(t *testing.T) {
	c := New(2, 2)
	c.Insert(1, lockmgr.ModeShared, false, 0)
	c.Insert(2, lockmgr.ModeShared, false, 0)
	c.Insert(3, lockmgr.ModeShared, false, 0) // demotes 1
	e := c.Peek(1)
	if e == nil || e.Tier() != TierDisk {
		t.Fatalf("entry 1 = %+v, want disk tier", e)
	}
	if c.Peek(3).Tier() != TierMemory {
		t.Fatal("entry 3 should be in memory")
	}
}

func TestDiskOverflowEvicts(t *testing.T) {
	c := New(1, 1)
	c.Insert(1, lockmgr.ModeShared, false, 0)
	c.Insert(2, lockmgr.ModeShared, false, 0) // 1 -> disk
	ev := c.Insert(3, lockmgr.ModeExclusive, true, 0)
	// 2 -> disk pushes 1 out entirely.
	if len(ev) != 1 || ev[0].Obj != 1 {
		t.Fatalf("evicted = %v", ev)
	}
	if c.Contains(1) || !c.Contains(2) || !c.Contains(3) {
		t.Fatal("residency wrong after disk eviction")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if ev[0].Tier() != TierNone {
		t.Fatal("evicted entry should report TierNone")
	}
}

func TestZeroDiskCapacityEvictsFromMemory(t *testing.T) {
	c := New(1, 0)
	c.Insert(1, lockmgr.ModeShared, false, 0)
	ev := c.Insert(2, lockmgr.ModeShared, false, 0)
	if len(ev) != 1 || ev[0].Obj != 1 {
		t.Fatalf("evicted = %v", ev)
	}
}

func TestDiskHitPromotes(t *testing.T) {
	c := New(1, 2)
	c.Insert(1, lockmgr.ModeShared, false, 0)
	c.Insert(2, lockmgr.ModeShared, false, 0) // 1 -> disk
	e, tier, _ := c.Lookup(1)
	if tier != TierDisk {
		t.Fatalf("tier = %v, want disk", tier)
	}
	if e.Tier() != TierMemory {
		t.Fatal("disk hit should promote to memory")
	}
	// 2 must now be on disk.
	if c.Peek(2).Tier() != TierDisk {
		t.Fatal("promotion should demote the memory victim")
	}
	if c.DiskHits != 1 {
		t.Fatalf("disk hits = %d", c.DiskHits)
	}
}

func TestLRUOrderRespectsRecency(t *testing.T) {
	c := New(2, 0)
	c.Insert(1, lockmgr.ModeShared, false, 0)
	c.Insert(2, lockmgr.ModeShared, false, 0)
	c.Lookup(1) // 2 becomes LRU
	ev := c.Insert(3, lockmgr.ModeShared, false, 0)
	if len(ev) != 1 || ev[0].Obj != 2 {
		t.Fatalf("evicted = %v, want object 2", ev)
	}
}

func TestPinnedEntriesSurviveEviction(t *testing.T) {
	c := New(1, 0)
	c.Insert(1, lockmgr.ModeShared, false, 0)
	e := c.Peek(1)
	c.Pin(e)
	ev := c.Insert(2, lockmgr.ModeShared, false, 0)
	if len(ev) != 0 {
		t.Fatalf("pinned-era eviction = %v", ev)
	}
	if !c.Contains(1) || !c.Contains(2) {
		t.Fatal("transient overflow should keep both")
	}
	c.Unpin(e)
	ev = c.Insert(3, lockmgr.ModeShared, false, 0)
	if len(ev) == 0 {
		t.Fatal("after unpin, eviction should proceed")
	}
}

func TestUnpinUnderflowPanics(t *testing.T) {
	c := New(1, 0)
	c.Insert(1, lockmgr.ModeShared, false, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Unpin underflow did not panic")
		}
	}()
	c.Unpin(c.Peek(1))
}

func TestRemove(t *testing.T) {
	c := New(2, 2)
	c.Insert(1, lockmgr.ModeExclusive, true, 3)
	e := c.Remove(1)
	if e == nil || e.Obj != 1 || !e.Dirty {
		t.Fatalf("removed = %+v", e)
	}
	if c.Contains(1) {
		t.Fatal("entry still present after Remove")
	}
	if c.Remove(1) != nil {
		t.Fatal("double remove should return nil")
	}
}

func TestRemovePinnedPanics(t *testing.T) {
	c := New(2, 2)
	c.Insert(1, lockmgr.ModeShared, false, 0)
	c.Pin(c.Peek(1))
	defer func() {
		if recover() == nil {
			t.Fatal("Remove of pinned entry did not panic")
		}
	}()
	c.Remove(1)
}

func TestInsertExistingUpgradesInPlace(t *testing.T) {
	c := New(2, 2)
	c.Insert(1, lockmgr.ModeShared, false, 1)
	ev := c.Insert(1, lockmgr.ModeExclusive, true, 2)
	if ev != nil {
		t.Fatalf("in-place update evicted: %v", ev)
	}
	e := c.Peek(1)
	if e.Mode != lockmgr.ModeExclusive || !e.Dirty || e.Version != 2 {
		t.Fatalf("entry = %+v", e)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestDirtyStickyOnReinsert(t *testing.T) {
	c := New(2, 2)
	c.Insert(1, lockmgr.ModeExclusive, true, 1)
	c.Insert(1, lockmgr.ModeShared, false, 1)
	if !c.Peek(1).Dirty {
		t.Fatal("dirty flag lost on reinsert")
	}
}

// Property: tier occupancy never exceeds capacity (without pins) and
// every entry is tracked exactly once.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(objs []uint8, memCap, diskCap uint8) bool {
		mc := int(memCap%4) + 1
		dc := int(diskCap % 4)
		c := New(mc, dc)
		for _, o := range objs {
			obj := lockmgr.ObjectID(o % 16)
			if o%3 == 0 {
				c.Lookup(obj)
			} else {
				c.Insert(obj, lockmgr.ModeShared, o%5 == 0, int64(o))
			}
			mem, disk := 0, 0
			for _, e := range c.Entries() {
				switch e.Tier() {
				case TierMemory:
					mem++
				case TierDisk:
					disk++
				default:
					return false
				}
			}
			if mem > mc || disk > dc {
				return false
			}
			if mem+disk != c.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
