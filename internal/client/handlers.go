package client

import (
	"fmt"

	"siteselect/internal/cache"
	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
	"siteselect/internal/proto"
	"siteselect/internal/trace"
	"siteselect/internal/txn"
)

// onGrant handles an arriving object, whether shipped by the server or
// forwarded by a peer along a forward list.
func (c *Client) onGrant(g proto.ObjGrant) {
	if g.Epoch != c.epochOf(g.Obj, c.grantSource(g.Obj)) {
		// The grant was sent before the server processed one of our
		// releases: the registration it delivers no longer exists and
		// the copy must not be cached or served.
		if g.Fwd != nil && g.Fwd.ReadRun {
			c.hopReadRun(g) // keep the run moving for the others
		} else if c.faulty && g.Fwd != nil {
			// Dropping a migration hop here would strand every downstream
			// entry of the chain: pass the object on without caching it.
			c.hopStaleMigration(g)
		}
		return
	}
	install := true
	if c.faulty && g.Fwd == nil {
		if e := c.objects.Peek(g.Obj); e != nil {
			if e.Version > g.Version {
				// Provably stale duplicate: versions only move forward,
				// so a grant older than the cached copy predates a local
				// commit (e.g. a dupFirm re-ship overtaken by a
				// downgrade). Installing it would clobber the newer
				// version; its mode is equally outdated.
				install = false
				g.Mode = e.Mode
			} else if e.Version == g.Version && modeSufficient(e.Mode, g.Mode) {
				// Duplicate grant from a retried request: the cached
				// copy is already as fresh and as strong. Still run the
				// waiter scan below — the retry that produced this
				// duplicate may itself be the one waiting.
				install = false
				g.Mode = e.Mode
			}
		}
	}
	if install {
		evicted := c.objects.Insert(g.Obj, g.Mode, false, g.Version)
		c.returnEvicted(evicted)
	}
	if g.Fwd != nil && !g.Fwd.ReadRun {
		// Migration hop: hold the object pinned until this site's turn
		// is over, then pass it on.
		c.setMigration(g.Obj, g.Fwd)
		c.objects.Pin(c.objects.Peek(g.Obj))
	}

	// Wake every waiter the grant satisfies, in registration order.
	// Broadcast only schedules the wakeups (sim.Signal defers them to
	// the event queue), so scanning the index in place with shift
	// removal visits exactly the sequence the old defensive copy did —
	// no registration can appear or vanish mid-scan.
	now := c.env.Now()
	satisfied := 0
	for i := 0; i < len(c.waiters); {
		if c.waiters[i].obj != g.Obj {
			i++
			continue
		}
		pt := c.waiters[i].pt
		j := pt.findWait(g.Obj)
		if j < 0 || !modeSufficient(g.Mode, pt.waits[j].mode) {
			i++
			continue
		}
		need, sent := pt.waits[j].mode, pt.waits[j].sent
		pt.removeWait(j)
		c.removeWaiterAt(i) // the next entry shifts into i
		if c.measuring() {
			c.m.RecordResponse(need, now-sent)
		}
		pt.netAccum += c.curTransit
		c.tr.Point(pt.t.ID, c.id, trace.EvLockGranted, g.Obj, 0, 0, now)
		satisfied++
		pt.sig.Broadcast()
	}
	if g.Fwd == nil {
		// A recall deferred against this in-flight grant can be
		// answered as soon as no local transaction is using the copy:
		// immediately if the grant satisfied nobody (its transaction is
		// dead), otherwise when that transaction's pins drop
		// (afterRelease).
		if satisfied == 0 {
			if d, ok := c.takeDeferredIfUnpinned(g.Obj); ok {
				c.answerRecall(c.objects.Peek(g.Obj), d.r, d.from)
			}
		}
		return
	}
	if g.Fwd.ReadRun {
		// Parallel read run: this site keeps its copy and the object
		// hops onward immediately — downstream readers don't wait for
		// our transaction.
		c.hopReadRun(g)
		return
	}
	// A migration hop is claimed by whatever local transaction it
	// satisfies; the hop continues when that transaction's pins drop
	// (afterRelease). With no claimant (the destined transaction is
	// dead), keep the migration moving now.
	if satisfied == 0 {
		c.forwardMigration(g.Obj)
	}
}

// takeDeferredIfUnpinned removes and returns obj's deferred recall only
// when a cached, unpinned copy exists to answer it with.
func (c *Client) takeDeferredIfUnpinned(obj lockmgr.ObjectID) (deferredRecall, bool) {
	if i := c.findDeferred(obj); i >= 0 {
		if e := c.objects.Peek(obj); e != nil && !e.Pinned() {
			return c.takeDeferred(obj)
		}
	}
	return deferredRecall{}, false
}

// hopStaleMigration keeps an exclusive migration chain alive when this
// site must not accept the hop (its epoch shows the registration was
// released while the hop was in flight — possible only under fault
// injection, where extra latency can reorder a hop past a recall
// answer). The object is passed to the next live entry without caching
// it here, or returned to the server when the chain is spent.
func (c *Client) hopStaleMigration(g proto.ObjGrant) {
	l := g.Fwd
	now := c.env.Now()
	for {
		next, ok, _ := l.PopLive(now)
		if !ok {
			home := c.homeSite(g.Obj)
			c.toSite(home, netsim.KindObjectReturn, netsim.ObjectBytes, proto.ObjReturn{
				Client: c.id, Obj: g.Obj, HasData: true, Version: g.Version,
				Migration: true, RetainedSL: l.Retained,
				Epoch: c.epochOf(g.Obj, home), Load: c.loadReport(),
			})
			return
		}
		if next.Client == c.id {
			continue // same stale registration; skip our own entries too
		}
		c.ForwardHops++
		c.tr.Point(next.Txn, c.id, trace.EvMigrationHop, g.Obj, int64(next.Client), 0, now)
		c.toPeer(next.Client, netsim.KindClientForward, netsim.ObjectBytes, proto.ObjGrant{
			Obj: g.Obj, Mode: next.Mode, Version: g.Version, Txn: next.Txn,
			Epoch: next.Epoch, Fwd: l,
		})
		return
	}
}

// hopReadRun forwards a parallel-read object to the next live entry of
// its run; every run member already holds a registered SL and read-only
// data stays current, so only the final acknowledgement travels back.
func (c *Client) hopReadRun(g proto.ObjGrant) {
	for {
		next, ok, _ := g.Fwd.PopLive(c.env.Now())
		if !ok {
			// Last member: acknowledge the run so the server can let
			// writers at the object again (the forward list's final
			// return — the +1 of the 2n+1 message count).
			home := c.homeSite(g.Obj)
			c.toSite(home, netsim.KindObjectReturn, netsim.ControlBytes, proto.ObjReturn{
				Client: c.id, Obj: g.Obj, RunComplete: true,
				Epoch: c.epochOf(g.Obj, home), Load: c.loadReport(),
			})
			return
		}
		if next.Client == c.id {
			// Consecutive entries for this same site: its waiters were
			// already satisfied by the arriving copy.
			continue
		}
		c.ForwardHops++
		c.tr.Point(next.Txn, c.id, trace.EvMigrationHop, g.Obj, int64(next.Client), 0, c.env.Now())
		c.toPeer(next.Client, netsim.KindClientForward, netsim.ObjectBytes, proto.ObjGrant{
			Obj: g.Obj, Mode: next.Mode, Version: g.Version, Txn: next.Txn,
			Epoch: next.Epoch, Fwd: g.Fwd,
		})
		return
	}
}

func (c *Client) onConflictReply(r proto.ConflictReply) {
	pt := c.findPending(r.Txn)
	if pt == nil {
		return
	}
	if c.multiShard {
		c.mergeConflict(pt, r)
	} else {
		pt.gotConflict = true
		pt.conflicts = r.Conflicts
		pt.loads = r.Loads
		pt.dataCounts = r.DataCounts
	}
	pt.netAccum += c.curTransit
	pt.sig.Broadcast()
}

func (c *Client) onDeny(d proto.DenyReply) {
	pt := c.findPending(d.Txn)
	if pt == nil {
		return
	}
	pt.denied = d.Reason
	pt.netAccum += c.curTransit
	c.tr.Point(d.Txn, c.id, trace.EvLockDenied, 0, int64(d.Reason), 0, c.env.Now())
	pt.sig.Broadcast()
}

func (c *Client) onLoadReply(r proto.LoadReply) {
	pt := c.findPending(r.Txn)
	if pt == nil || !pt.wantLoad {
		return
	}
	if c.multiShard {
		dup := false
		for i := range pt.loadFrom {
			if pt.loadFrom[i].from == c.curFrom {
				// Duplicate shard answer (fault retransmission): replace.
				pt.loadFrom[i].reply = r
				dup = true
				break
			}
		}
		if !dup {
			pt.loadFrom = append(pt.loadFrom, shardLoad{from: c.curFrom, reply: r})
		}
		pt.netAccum += c.curTransit
		if len(pt.loadFrom) >= pt.loadWant {
			c.mergeLoadReplies(pt, r.Txn)
			pt.sig.Broadcast()
		}
		return
	}
	pt.loadReply = r
	pt.hasLoad = true
	pt.netAccum += c.curTransit
	pt.sig.Broadcast()
}

// onRecall answers a server callback. Recalls for objects pinned by a
// running transaction are deferred until it finishes (the paper's
// clients finish local work before giving up a lock). A recall whose
// HolderMode does not match the cached state refers to a grant still on
// the wire — answering it now would renounce the lock that grant
// carries, losing an update — so it is deferred until the transaction
// waiting for that grant finishes. Everything else is answered
// immediately.
func (c *Client) onRecall(r proto.Recall) {
	from := c.curFrom
	e := c.objects.Peek(r.Obj)
	wanted := c.hasWaiter(r.Obj)
	if e == nil {
		if wanted && r.HolderMode != 0 {
			// The server believes we hold a lock we have not seen yet:
			// its grant is in flight. Defer until our transaction is
			// done with it.
			c.m.RecallsDeferred++
			c.setDeferred(r.Obj, deferredRecall{r: r, from: from})
			return
		}
		// Silently evicted earlier: release the lock. Bumping the epoch
		// revokes any stray grant already on the wire.
		epoch := c.bumpEpoch(r.Obj, from)
		c.toSite(from, netsim.KindObjectReturn, netsim.ControlBytes, proto.ObjReturn{
			Client: c.id, Obj: r.Obj, NotCached: true, Epoch: epoch,
			Load: c.loadReport(),
		})
		return
	}
	if e.Pinned() || (r.HolderMode != 0 && r.HolderMode != e.Mode) {
		c.m.RecallsDeferred++
		c.setDeferred(r.Obj, deferredRecall{r: r, from: from})
		return
	}
	c.answerRecall(e, r, from)
}

// answerRecall answers a callback issued by the shard at from (always
// netsim.ServerSite in single-server topologies).
func (c *Client) answerRecall(e *cache.Entry, r proto.Recall, from netsim.SiteID) {
	if r.DowngradeToShared && e.Mode == lockmgr.ModeExclusive && c.cfg.UseDowngrade {
		hadData := e.Dirty
		e.Mode = lockmgr.ModeShared
		e.Dirty = false
		size := netsim.ControlBytes
		if hadData {
			size = netsim.ObjectBytes
		}
		c.toSite(from, netsim.KindObjectReturn, size, proto.ObjReturn{
			Client: c.id, Obj: e.Obj, HasData: hadData, Version: e.Version,
			Downgraded: true, Epoch: c.epochOf(e.Obj, from), Load: c.loadReport(),
		})
		return
	}
	c.objects.Remove(e.Obj)
	// Any grant already on the wire refers to the registration this
	// answer renounces; the epoch bump revokes it.
	epoch := c.bumpEpoch(e.Obj, from)
	size := netsim.ControlBytes
	if e.Dirty {
		size = netsim.ObjectBytes
	}
	c.toSite(from, netsim.KindObjectReturn, size, proto.ObjReturn{
		Client: c.id, Obj: e.Obj, HasData: e.Dirty, Version: e.Version,
		Epoch: epoch, Load: c.loadReport(),
	})
	c.objects.Recycle(e)
}

// onTxnShip executes a transaction or subtask shipped to this site.
func (c *Client) onTxnShip(s proto.TxnShip) {
	c.ShippedIn++
	if s.Sub != nil {
		c.spawnTxn(s.T, s.Sub, enShipSub, nil)
		return
	}
	c.spawnTxn(s.T, nil, enShipWhole, nil)
}

func (c *Client) onTxnResult(r proto.TxnResult) {
	key := shipKey{id: r.Txn, sub: -1}
	if r.IsSub {
		key.sub = r.SubIndex
	}
	w := c.shipWaitFor(key)
	if w == nil {
		return
	}
	w.done = true
	w.committed = r.Committed
	w.sig.Broadcast()
}

// returnEvicted handles cache fallout: dirty or exclusively locked
// evictions must go back to the server; clean shared copies are dropped
// silently (the lock release is lazy — a later recall gets a NotCached
// answer).
func (c *Client) returnEvicted(evicted []*cache.Entry) {
	for _, e := range evicted {
		if mig := c.migrationOf(e.Obj); mig != nil {
			panic(fmt.Sprintf("client %d: migrating object %d evicted", c.id, e.Obj))
		}
		d, hadRecall := c.takeDeferred(e.Obj)
		if !hadRecall && !e.Dirty && e.Mode == lockmgr.ModeShared {
			c.objects.Recycle(e)
			continue // lazy release: a later recall gets NotCached
		}
		size := netsim.ControlBytes
		if e.Dirty {
			size = netsim.ObjectBytes
		}
		// A recall names the shard holding our registration; without one
		// the copy is dirty or exclusive, which only the home shard
		// grants.
		dest := c.homeSite(e.Obj)
		if hadRecall {
			dest = d.from
		}
		epoch := c.bumpEpoch(e.Obj, dest) // this return releases the registration
		c.toSite(dest, netsim.KindObjectReturn, size, proto.ObjReturn{
			Client: c.id, Obj: e.Obj, HasData: e.Dirty, Version: e.Version,
			Epoch: epoch, Load: c.loadReport(),
		})
		c.objects.Recycle(e)
	}
}

// afterRelease runs when a transaction's pins drop: forward any
// migrating objects whose turn is over, and answer recalls deferred
// while the objects were pinned.
func (c *Client) afterRelease(ops []txn.Op, id txn.ID) {
	for _, op := range ops {
		if c.migrationOf(op.Obj) != nil {
			e := c.objects.Peek(op.Obj)
			if e != nil && e.Pins() == 1 {
				// Only the migration pin remains: this site's turn is
				// over, pass the object on.
				c.forwardMigration(op.Obj)
			}
			continue
		}
		if i := c.findDeferred(op.Obj); i >= 0 {
			d := c.deferred[i].d
			e := c.objects.Peek(op.Obj)
			switch {
			case e == nil:
				// The grant the recall referred to never materialized
				// (or the copy is gone): release the lock outright.
				c.takeDeferred(op.Obj)
				epoch := c.bumpEpoch(op.Obj, d.from)
				c.toSite(d.from, netsim.KindObjectReturn, netsim.ControlBytes, proto.ObjReturn{
					Client: c.id, Obj: op.Obj, NotCached: true, Epoch: epoch,
					Load: c.loadReport(),
				})
			case !e.Pinned():
				c.takeDeferred(op.Obj)
				c.answerRecall(e, d.r, d.from)
			}
		}
	}
}

// forwardMigration advances a migrating object: hand it to the next
// live forward-list entry. Consecutive entries for this same client are
// served in place (the object never leaves); otherwise the object hops
// to the next client, or returns to the server after the last entry.
func (c *Client) forwardMigration(obj lockmgr.ObjectID) {
	l := c.migrationOf(obj)
	if l == nil {
		return
	}
	e := c.objects.Peek(obj)
	if e == nil {
		panic(fmt.Sprintf("client %d: migrating object %d not cached", c.id, obj))
	}
	if e.Pins() > 1 {
		// Beyond the migration pin, a running local transaction still
		// holds the copy (reachable under fault injection, where a hop
		// can arrive while a transaction satisfied by an earlier grant
		// is still executing). Its afterRelease resumes the hop once
		// the last such pin drops.
		return
	}
	now := c.env.Now()
	for {
		next, ok, _ := l.PopLive(now)
		if ok && next.Client == c.id {
			// Our own next turn: the migration holds the object
			// exclusively at the global level, so the local mode can be
			// raised to whatever this entry needs.
			if next.Mode == lockmgr.ModeExclusive {
				e.Mode = lockmgr.ModeExclusive
			}
			// Same deferred-wakeup argument as the onGrant scan: in-place
			// shift removal visits the registration order unperturbed.
			satisfied := false
			for i := 0; i < len(c.waiters); {
				if c.waiters[i].obj != obj {
					i++
					continue
				}
				pt := c.waiters[i].pt
				j := pt.findWait(obj)
				if j < 0 || !modeSufficient(e.Mode, pt.waits[j].mode) {
					i++
					continue
				}
				need, sent := pt.waits[j].mode, pt.waits[j].sent
				pt.removeWait(j)
				c.removeWaiterAt(i)
				if c.measuring() {
					c.m.RecordResponse(need, now-sent)
				}
				c.tr.Point(pt.t.ID, c.id, trace.EvLockGranted, obj, 0, 0, now)
				satisfied = true
				pt.sig.Broadcast()
			}
			if satisfied {
				return // that transaction's afterRelease resumes the hop
			}
			continue // entry's transaction is gone; try the next one
		}

		c.deleteMigration(obj)
		d, hadRecall := c.takeDeferred(obj)
		c.objects.Unpin(e)
		version := e.Version

		// Keep a clean shared copy when nothing downstream writes (the
		// downgrade idea extended to migration chains); a pending recall
		// or a downstream EL forbids retention.
		retain := c.cfg.UseDowngrade && !hadRecall &&
			(!ok || next.Mode == lockmgr.ModeShared && !l.HasExclusive())
		if retain {
			e.Mode = lockmgr.ModeShared
			e.Dirty = false
			l.Retained = append(l.Retained, c.id)
		} else {
			c.objects.Recycle(c.objects.Remove(obj))
		}
		if ok {
			c.ForwardHops++
			c.tr.Point(next.Txn, c.id, trace.EvMigrationHop, obj, int64(next.Client), 0, now)
			c.toPeer(next.Client, netsim.KindClientForward, netsim.ObjectBytes, proto.ObjGrant{
				Obj: obj, Mode: next.Mode, Version: version, Txn: next.Txn,
				Epoch: next.Epoch, Fwd: l,
			})
		} else {
			home := c.homeSite(obj)
			c.toSite(home, netsim.KindObjectReturn, netsim.ObjectBytes, proto.ObjReturn{
				Client: c.id, Obj: obj, HasData: true, Version: version,
				Migration: true, RetainedSL: l.Retained,
				Epoch: c.epochOf(obj, home), Load: c.loadReport(),
			})
		}
		if hadRecall {
			// The recall that arrived mid-migration is answered with a
			// release: the object has moved on.
			epoch := c.bumpEpoch(obj, d.from)
			c.toSite(d.from, netsim.KindObjectReturn, netsim.ControlBytes, proto.ObjReturn{
				Client: c.id, Obj: obj, NotCached: true, Epoch: epoch,
				Load: c.loadReport(),
			})
		}
		return
	}
}
