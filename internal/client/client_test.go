package client

import (
	"testing"
	"time"

	"siteselect/internal/cache"
	"siteselect/internal/config"
	"siteselect/internal/forward"
	"siteselect/internal/lockmgr"
	"siteselect/internal/metrics"
	"siteselect/internal/netsim"
	"siteselect/internal/proto"
	"siteselect/internal/rng"
	"siteselect/internal/sim"
	"siteselect/internal/txn"
)

// rig wires one client against a scripted "server": the test reads the
// client's outbound messages from the connection queue and injects
// replies into the client's inbox directly.
type rig struct {
	t      *testing.T
	env    *sim.Env
	net    *netsim.Network
	cl     *Client
	inbox  *sim.Mailbox[netsim.Message] // client's inbox
	toSrv  *sim.Mailbox[netsim.Message] // what the client sent to the server
	peer   *sim.Mailbox[netsim.Message] // inbox of peer site 2
	nextID txn.ID
}

func newRig(t *testing.T, mod func(*config.Config)) *rig {
	t.Helper()
	env := sim.NewEnv()
	cfg := config.Default(2, 0.05)
	cfg.ClientMemory = 8
	cfg.ClientDisk = 8
	cfg.DiskRead = time.Millisecond
	if mod != nil {
		mod(&cfg)
	}
	net := netsim.New(env, netsim.Config{Latency: 100 * time.Microsecond, BandwidthBps: 10e6})
	inbox := sim.NewMailbox[netsim.Message](env)
	toSrv := sim.NewMailbox[netsim.Message](env)
	peer := sim.NewMailbox[netsim.Message](env)

	stream := rng.NewStream(1)
	access := rng.NewLocalizedRW(stream.Derive(7), rng.LocalizedRWConfig{
		DBSize: cfg.DBSize, ClientIndex: 0, NumClients: 2,
		RegionSize: cfg.HotRegionSize, LocalFraction: cfg.LocalFraction,
		ZipfTheta: cfg.ZipfTheta,
	})
	var id txn.ID
	gen := txn.NewGenerator(stream, 1, txn.WorkloadConfig{
		MeanInterArrival: cfg.MeanInterArrival,
		MeanLength:       cfg.MeanLength,
		MeanSlack:        cfg.MeanSlack,
		MeanObjects:      cfg.MeanObjects,
		Access:           access,
	}, func() txn.ID { id++; return id })

	cl := New(env, cfg, 1, net, &metrics.Collector{}, inbox, toSrv, gen, true)
	cl.SetPeers(map[netsim.SiteID]*sim.Mailbox[netsim.Message]{2: peer})
	// Only the dispatcher: tests submit transactions explicitly.
	cl.startDispatcher()
	return &rig{t: t, env: env, net: net, cl: cl, inbox: inbox, toSrv: toSrv, peer: peer}
}

// inject delivers a payload to the client as if from the server.
func (r *rig) inject(kind netsim.Kind, payload any) {
	r.net.Send(netsim.Message{
		Kind: kind, From: netsim.ServerSite, To: 1,
		Size: netsim.ControlBytes, Payload: payload,
	}, r.inbox)
}

// sent drains and returns the client's outbound server messages.
func (r *rig) sent(until time.Duration) []netsim.Message {
	r.env.Run(until)
	var out []netsim.Message
	for {
		m, ok := r.toSrv.TryGet()
		if !ok {
			return out
		}
		out = append(out, m)
	}
}

func (r *rig) newTxn(ops []txn.Op, slack time.Duration) *txn.Transaction {
	r.nextID++
	now := r.env.Now()
	return &txn.Transaction{
		ID: r.nextID, Origin: 1, Arrival: now,
		Deadline: now + slack, Length: 100 * time.Millisecond,
		Ops: ops, Status: txn.StatusPending, ExecSite: 1,
	}
}

// seed puts an object straight into the client cache.
func (r *rig) seed(obj lockmgr.ObjectID, mode lockmgr.Mode, dirty bool, version int64) *cache.Entry {
	r.cl.objects.Insert(obj, mode, dirty, version)
	return r.cl.objects.Peek(obj)
}

func TestClientRecallOfIdleEntryAnswersImmediately(t *testing.T) {
	r := newRig(t, nil)
	defer r.env.Close()
	r.seed(5, lockmgr.ModeExclusive, true, 3)
	r.inject(netsim.KindRecall, proto.Recall{Obj: 5})
	msgs := r.sent(time.Second)
	if len(msgs) != 1 || msgs[0].Kind != netsim.KindObjectReturn {
		t.Fatalf("messages = %+v", msgs)
	}
	ret := msgs[0].Payload.(proto.ObjReturn)
	if !ret.HasData || ret.Version != 3 || ret.Downgraded || ret.NotCached {
		t.Fatalf("return = %+v", ret)
	}
	if r.cl.objects.Contains(5) {
		t.Fatal("full recall should drop the entry")
	}
}

func TestClientDowngradeRecallKeepsSharedCopy(t *testing.T) {
	r := newRig(t, nil)
	defer r.env.Close()
	r.seed(5, lockmgr.ModeExclusive, true, 9)
	r.inject(netsim.KindRecall, proto.Recall{Obj: 5, DowngradeToShared: true})
	msgs := r.sent(time.Second)
	ret := msgs[0].Payload.(proto.ObjReturn)
	if !ret.Downgraded || !ret.HasData || ret.Version != 9 {
		t.Fatalf("return = %+v", ret)
	}
	e := r.cl.objects.Peek(5)
	if e == nil || e.Mode != lockmgr.ModeShared || e.Dirty {
		t.Fatalf("entry after downgrade = %+v", e)
	}
}

func TestClientDowngradeDisabledFallsBackToRelease(t *testing.T) {
	r := newRig(t, func(c *config.Config) { c.UseDowngrade = false })
	defer r.env.Close()
	r.seed(5, lockmgr.ModeExclusive, false, 1)
	r.inject(netsim.KindRecall, proto.Recall{Obj: 5, DowngradeToShared: true})
	r.sent(time.Second)
	if r.cl.objects.Contains(5) {
		t.Fatal("with downgrades disabled the entry must be dropped")
	}
}

func TestClientRecallOfMissingEntryAnswersNotCached(t *testing.T) {
	r := newRig(t, nil)
	defer r.env.Close()
	r.inject(netsim.KindRecall, proto.Recall{Obj: 77})
	msgs := r.sent(time.Second)
	ret := msgs[0].Payload.(proto.ObjReturn)
	if !ret.NotCached {
		t.Fatalf("return = %+v", ret)
	}
	if r.cl.epochOf(77, netsim.ServerSite) != 1 || ret.Epoch != 1 {
		t.Fatalf("release epoch not bumped: local=%d sent=%d", r.cl.epochOf(77, netsim.ServerSite), ret.Epoch)
	}
}

func TestClientStaleEpochGrantIsDropped(t *testing.T) {
	r := newRig(t, nil)
	defer r.env.Close()
	// A recall beat two in-flight grants to the wire: our NotCached
	// answer bumps the epoch, so both epoch-0 grants must be dropped.
	r.inject(netsim.KindRecall, proto.Recall{Obj: 8})
	r.sent(time.Second)
	r.inject(netsim.KindObjectShip, proto.ObjGrant{Obj: 8, Mode: lockmgr.ModeShared, Version: 1, Epoch: 0})
	r.sent(2 * time.Second)
	if r.cl.objects.Contains(8) {
		t.Fatal("stale grant was cached")
	}
	r.inject(netsim.KindObjectShip, proto.ObjGrant{Obj: 8, Mode: lockmgr.ModeShared, Version: 1, Epoch: 0})
	r.sent(3 * time.Second)
	if r.cl.objects.Contains(8) {
		t.Fatal("second stale grant was cached")
	}
	// A grant stamped with the current epoch (the server has processed
	// our release) is accepted.
	r.inject(netsim.KindObjectShip, proto.ObjGrant{Obj: 8, Mode: lockmgr.ModeShared, Version: 2, Epoch: 1})
	r.sent(4 * time.Second)
	if !r.cl.objects.Contains(8) {
		t.Fatal("current-epoch grant was dropped")
	}
}

func TestClientRecallDeferredWhilePinned(t *testing.T) {
	r := newRig(t, nil)
	defer r.env.Close()
	e := r.seed(5, lockmgr.ModeExclusive, true, 2)
	r.cl.objects.Pin(e)
	r.inject(netsim.KindRecall, proto.Recall{Obj: 5})
	msgs := r.sent(time.Second)
	if len(msgs) != 0 {
		t.Fatalf("pinned recall answered immediately: %+v", msgs)
	}
	if !r.cl.HasDeferredRecall(5) {
		t.Fatal("recall not deferred")
	}
	// Unpin and run afterRelease as commit would.
	r.cl.objects.Unpin(e)
	r.cl.afterRelease([]txn.Op{{Obj: 5, Write: true}}, 1)
	msgs = r.sent(2 * time.Second)
	if len(msgs) != 1 || !msgs[0].Payload.(proto.ObjReturn).HasData {
		t.Fatalf("deferred recall answer = %+v", msgs)
	}
}

func TestClientExecutesFullyCachedTransaction(t *testing.T) {
	r := newRig(t, nil)
	defer r.env.Close()
	r.seed(1, lockmgr.ModeShared, false, 0)
	r.seed(2, lockmgr.ModeExclusive, false, 0)
	tx := r.newTxn([]txn.Op{{Obj: 1}, {Obj: 2, Write: true}}, time.Minute)
	r.cl.submitAsync(tx)
	msgs := r.sent(10 * time.Second)
	if len(msgs) != 0 {
		t.Fatalf("fully cached txn sent messages: %+v", msgs)
	}
	if tx.Status != txn.StatusCommitted {
		t.Fatalf("status = %v", tx.Status)
	}
	e := r.cl.objects.Peek(2)
	if !e.Dirty || e.Version != 1 {
		t.Fatalf("written entry = %+v", e)
	}
	if r.cl.atl.Count() != 1 {
		t.Fatal("ATL not observed")
	}
}

func TestClientProbeThenGrantFlow(t *testing.T) {
	r := newRig(t, nil)
	defer r.env.Close()
	tx := r.newTxn([]txn.Op{{Obj: 30}, {Obj: 31}}, time.Minute)
	r.cl.submitAsync(tx)
	msgs := r.sent(time.Second)
	if len(msgs) != 1 {
		t.Fatalf("expected one probe, got %+v", msgs)
	}
	probe, ok := msgs[0].Payload.(proto.ProbeRequest)
	if !ok || len(probe.Objs) != 2 {
		t.Fatalf("probe = %+v", msgs[0].Payload)
	}
	// Server grants both.
	r.inject(netsim.KindObjectShip, proto.ObjGrant{Obj: 30, Mode: lockmgr.ModeShared, Version: 1, Txn: tx.ID})
	r.inject(netsim.KindObjectShip, proto.ObjGrant{Obj: 31, Mode: lockmgr.ModeShared, Version: 1, Txn: tx.ID})
	r.sent(30 * time.Second)
	if tx.Status != txn.StatusCommitted {
		t.Fatalf("status = %v", tx.Status)
	}
}

func TestClientConflictReplyShipsToDataRichTarget(t *testing.T) {
	r := newRig(t, nil)
	defer r.env.Close()
	ops := []txn.Op{{Obj: 40}, {Obj: 41}, {Obj: 42}}
	tx := r.newTxn(ops, time.Minute)
	r.cl.submitAsync(tx)
	r.sent(time.Second) // probe out
	// Peer 2 holds everything: strictly better on conflicts and data.
	r.inject(netsim.KindLockReply, proto.ConflictReply{
		Txn: tx.ID,
		Conflicts: []proto.ObjConflict{
			{Obj: 40, Holders: []netsim.SiteID{2}},
		},
		DataCounts: []proto.SiteCount{{Site: 2, Count: 3}},
	})
	r.env.Run(2 * time.Second)
	if !tx.Shipped {
		t.Fatal("transaction not shipped")
	}
	m, ok := r.peer.TryGet()
	if !ok || m.Kind != netsim.KindTxnShip {
		t.Fatalf("peer message = %+v", m)
	}
	if r.cl.ShippedOut != 1 {
		t.Fatalf("ShippedOut = %d", r.cl.ShippedOut)
	}
}

func TestClientConflictReplyStaysWhenTargetDataPoor(t *testing.T) {
	r := newRig(t, nil)
	defer r.env.Close()
	// The origin already caches half the access set; peer 2 resolves
	// the conflict but holds only 1 object — less than the origin — so
	// the MinShipData gate must keep the transaction home, producing
	// one firm commit request.
	r.seed(41, lockmgr.ModeShared, false, 0)
	r.seed(42, lockmgr.ModeShared, false, 0)
	ops := []txn.Op{{Obj: 40}, {Obj: 41}, {Obj: 42}, {Obj: 43}}
	tx := r.newTxn(ops, time.Minute)
	r.cl.submitAsync(tx)
	r.sent(time.Second)
	r.inject(netsim.KindLockReply, proto.ConflictReply{
		Txn:        tx.ID,
		Conflicts:  []proto.ObjConflict{{Obj: 40, Holders: []netsim.SiteID{2}}},
		DataCounts: []proto.SiteCount{{Site: 2, Count: 1}},
	})
	msgs := r.sent(2 * time.Second)
	if tx.Shipped {
		t.Fatal("data-poor target should not receive the transaction")
	}
	if len(msgs) != 1 {
		t.Fatalf("messages = %+v", msgs)
	}
	if _, ok := msgs[0].Payload.(proto.CommitRequest); !ok {
		t.Fatalf("expected CommitRequest, got %T", msgs[0].Payload)
	}
}

func TestClientMigrationForwardOnCommit(t *testing.T) {
	r := newRig(t, nil)
	defer r.env.Close()
	tx := r.newTxn([]txn.Op{{Obj: 50, Write: true}}, time.Minute)
	r.cl.submitAsync(tx)
	r.sent(time.Second) // probe out
	// Grant arrives as a migration hop with peer 2 next in line.
	fwd := forward.NewList(50)
	fwd.Insert(forward.Entry{Client: 2, Mode: lockmgr.ModeExclusive, Deadline: time.Hour, Txn: 99})
	r.inject(netsim.KindObjectShip, proto.ObjGrant{
		Obj: 50, Mode: lockmgr.ModeExclusive, Version: 4, Txn: tx.ID, Fwd: fwd,
	})
	r.env.Run(30 * time.Second)
	if tx.Status != txn.StatusCommitted {
		t.Fatalf("status = %v", tx.Status)
	}
	m, ok := r.peer.TryGet()
	if !ok || m.Kind != netsim.KindClientForward {
		t.Fatalf("peer message = %+v", m)
	}
	g := m.Payload.(proto.ObjGrant)
	if g.Obj != 50 || g.Version != 5 { // committed write bumped it
		t.Fatalf("forwarded grant = %+v", g)
	}
	if r.cl.objects.Contains(50) {
		t.Fatal("exclusive migration must not leave a copy behind")
	}
	if r.cl.ForwardHops != 1 {
		t.Fatalf("hops = %d", r.cl.ForwardHops)
	}
}

func TestClientMigrationFinalReturnRetainsSharedCopy(t *testing.T) {
	r := newRig(t, nil)
	defer r.env.Close()
	tx := r.newTxn([]txn.Op{{Obj: 60, Write: true}}, time.Minute)
	r.cl.submitAsync(tx)
	r.sent(time.Second)
	fwd := forward.NewList(60) // empty: we are the last hop
	r.inject(netsim.KindObjectShip, proto.ObjGrant{
		Obj: 60, Mode: lockmgr.ModeExclusive, Version: 1, Txn: tx.ID, Fwd: fwd,
	})
	msgs := r.sent(30 * time.Second)
	var ret *proto.ObjReturn
	for _, m := range msgs {
		if p, ok := m.Payload.(proto.ObjReturn); ok {
			ret = &p
		}
	}
	if ret == nil || !ret.Migration || !ret.HasData || ret.Version != 2 {
		t.Fatalf("final return = %+v", ret)
	}
	if len(ret.RetainedSL) != 1 || ret.RetainedSL[0] != 1 {
		t.Fatalf("retained = %v", ret.RetainedSL)
	}
	e := r.cl.objects.Peek(60)
	if e == nil || e.Mode != lockmgr.ModeShared || e.Dirty {
		t.Fatalf("retained entry = %+v", e)
	}
}

func TestClientReadRunHopForwardsImmediately(t *testing.T) {
	r := newRig(t, nil)
	defer r.env.Close()
	// No local waiter at all: a read-run hop should still cache the
	// copy (we are a registered SL holder) and forward at once.
	fwd := forward.NewList(70)
	fwd.ReadRun = true
	fwd.Insert(forward.Entry{Client: 2, Mode: lockmgr.ModeShared, Deadline: time.Hour, Txn: 7})
	r.inject(netsim.KindClientForward, proto.ObjGrant{
		Obj: 70, Mode: lockmgr.ModeShared, Version: 3, Fwd: fwd,
	})
	r.env.Run(time.Second)
	if !r.cl.objects.Contains(70) {
		t.Fatal("read-run copy not cached")
	}
	m, ok := r.peer.TryGet()
	if !ok || m.Kind != netsim.KindClientForward {
		t.Fatalf("peer message = %+v", m)
	}
	if r.cl.ForwardHops != 1 {
		t.Fatalf("hops = %d", r.cl.ForwardHops)
	}
}

func TestClientReadRunLastMemberAcknowledges(t *testing.T) {
	r := newRig(t, nil)
	defer r.env.Close()
	fwd := forward.NewList(71)
	fwd.ReadRun = true // empty: we are the last member
	r.inject(netsim.KindClientForward, proto.ObjGrant{
		Obj: 71, Mode: lockmgr.ModeShared, Version: 2, Fwd: fwd,
	})
	msgs := r.sent(time.Second)
	if len(msgs) != 1 {
		t.Fatalf("messages = %+v", msgs)
	}
	ret := msgs[0].Payload.(proto.ObjReturn)
	if !ret.RunComplete {
		t.Fatalf("expected run-complete acknowledgement, got %+v", ret)
	}
	if !r.cl.objects.Contains(71) {
		t.Fatal("last member should keep its copy")
	}
}

func TestClientEvictionReturnsDirtyObjects(t *testing.T) {
	r := newRig(t, func(c *config.Config) {
		c.ClientMemory = 1
		c.ClientDisk = 0
	})
	defer r.env.Close()
	r.seed(1, lockmgr.ModeExclusive, true, 5)
	// Inserting a second object evicts the first; the dirty EL copy
	// must be returned to the server.
	r.inject(netsim.KindObjectShip, proto.ObjGrant{Obj: 2, Mode: lockmgr.ModeShared, Version: 1})
	msgs := r.sent(time.Second)
	if len(msgs) != 1 {
		t.Fatalf("messages = %+v", msgs)
	}
	ret := msgs[0].Payload.(proto.ObjReturn)
	if ret.Obj != 1 || !ret.HasData || ret.Version != 5 {
		t.Fatalf("eviction return = %+v", ret)
	}
}

func TestClientEvictionDropsCleanSharedSilently(t *testing.T) {
	r := newRig(t, func(c *config.Config) {
		c.ClientMemory = 1
		c.ClientDisk = 0
	})
	defer r.env.Close()
	r.seed(1, lockmgr.ModeShared, false, 0)
	r.inject(netsim.KindObjectShip, proto.ObjGrant{Obj: 2, Mode: lockmgr.ModeShared, Version: 1})
	msgs := r.sent(time.Second)
	if len(msgs) != 0 {
		t.Fatalf("clean SL eviction sent messages: %+v", msgs)
	}
}

func TestClientDeniedTransactionAborts(t *testing.T) {
	r := newRig(t, nil)
	defer r.env.Close()
	tx := r.newTxn([]txn.Op{{Obj: 80}}, time.Minute)
	r.cl.submitAsync(tx)
	r.sent(time.Second)
	r.inject(netsim.KindLockReply, proto.DenyReply{Txn: tx.ID, Obj: 80, Reason: proto.DenyDeadlock})
	r.env.Run(5 * time.Second)
	if tx.Status != txn.StatusAborted {
		t.Fatalf("status = %v", tx.Status)
	}
}

func TestClientDeadlineTimeoutWhileFetching(t *testing.T) {
	r := newRig(t, nil)
	defer r.env.Close()
	tx := r.newTxn([]txn.Op{{Obj: 90}}, 2*time.Second)
	r.cl.submitAsync(tx)
	r.sent(time.Second)
	// The server never answers; the transaction must terminate at its
	// deadline.
	r.env.Run(10 * time.Second)
	if tx.Status != txn.StatusMissed {
		t.Fatalf("status = %v", tx.Status)
	}
	if len(r.cl.pending) != 0 {
		t.Fatalf("pending leaked: %d", len(r.cl.pending))
	}
	if len(r.cl.waiters) != 0 {
		t.Fatalf("waiters leaked: %d", len(r.cl.waiters))
	}
}

func TestClientLoadReportShape(t *testing.T) {
	r := newRig(t, nil)
	defer r.env.Close()
	lr := r.cl.loadReport()
	if lr.Client != 1 || !lr.Valid {
		t.Fatalf("report = %+v", lr)
	}
	if lr.ATL != r.cl.cfg.MeanLength {
		t.Fatalf("default ATL = %v", lr.ATL)
	}
}

func TestClientSpeculationOverlapsUpgrade(t *testing.T) {
	r := newRig(t, func(c *config.Config) { c.UseSpeculation = true })
	defer r.env.Close()
	// Both objects cached shared; the transaction writes one, so only
	// the upgrade round trip separates it from running. With
	// speculation the computation overlaps the fetch and the commit
	// completes earlier than length+RTT.
	r.seed(1, lockmgr.ModeShared, false, 4)
	r.seed(2, lockmgr.ModeShared, false, 0)
	tx := r.newTxn([]txn.Op{{Obj: 1, Write: true}, {Obj: 2}}, time.Minute)
	tx.Length = 10 * time.Second
	r.cl.submitAsync(tx)
	r.sent(time.Second) // probe for the upgrade goes out
	// Server takes 5 seconds to grant the EL upgrade.
	r.env.Run(5 * time.Second)
	r.inject(netsim.KindObjectShip, proto.ObjGrant{Obj: 1, Mode: lockmgr.ModeExclusive, Version: 4, Txn: tx.ID})
	r.env.Run(30 * time.Second)
	if tx.Status != txn.StatusCommitted {
		t.Fatalf("status = %v", tx.Status)
	}
	if r.cl.m.SpeculativeRuns != 1 || r.cl.m.SpeculationHits != 1 {
		t.Fatalf("spec runs/hits = %d/%d", r.cl.m.SpeculativeRuns, r.cl.m.SpeculationHits)
	}
	// Finished well before the non-speculative 5s + 10s.
	if tx.Finished >= 14*time.Second {
		t.Fatalf("finished at %v; speculation gave no overlap", tx.Finished)
	}
}

func TestClientSpeculationInvalidatedByNewVersion(t *testing.T) {
	r := newRig(t, func(c *config.Config) { c.UseSpeculation = true })
	defer r.env.Close()
	r.seed(1, lockmgr.ModeShared, false, 4)
	tx := r.newTxn([]txn.Op{{Obj: 1, Write: true}}, time.Minute)
	tx.Length = 10 * time.Second
	r.cl.submitAsync(tx)
	r.sent(time.Second)
	r.env.Run(5 * time.Second)
	// The upgrade arrives with a NEWER version: the speculative work
	// was based on stale data and must be discarded.
	r.inject(netsim.KindObjectShip, proto.ObjGrant{Obj: 1, Mode: lockmgr.ModeExclusive, Version: 9, Txn: tx.ID})
	r.env.Run(40 * time.Second)
	if tx.Status != txn.StatusCommitted {
		t.Fatalf("status = %v", tx.Status)
	}
	if r.cl.m.SpeculationHits != 0 {
		t.Fatalf("stale speculation validated: hits = %d", r.cl.m.SpeculationHits)
	}
	// Full re-execution: commit no earlier than grant + length.
	if tx.Finished < 15*time.Second {
		t.Fatalf("finished at %v; invalid speculation must not shorten execution", tx.Finished)
	}
}

func TestClientSpeculationDisabledByDefault(t *testing.T) {
	r := newRig(t, nil)
	defer r.env.Close()
	r.seed(1, lockmgr.ModeShared, false, 4)
	tx := r.newTxn([]txn.Op{{Obj: 1, Write: true}}, time.Minute)
	r.cl.submitAsync(tx)
	r.sent(time.Second)
	r.inject(netsim.KindObjectShip, proto.ObjGrant{Obj: 1, Mode: lockmgr.ModeExclusive, Version: 4, Txn: tx.ID})
	r.env.Run(30 * time.Second)
	if r.cl.m.SpeculativeRuns != 0 {
		t.Fatalf("speculation ran while disabled: %d", r.cl.m.SpeculativeRuns)
	}
}

func TestClientSequentialFetchFlow(t *testing.T) {
	// Shipped-in transactions (origin=false) fetch firm and
	// sequentially: one request at a time.
	r := newRig(t, nil)
	defer r.env.Close()
	tx := r.newTxn([]txn.Op{{Obj: 100}, {Obj: 101}}, time.Minute)
	tx.Origin = 2 // shipped in from peer 2
	r.inject(netsim.KindTxnShip, proto.TxnShip{T: tx, ReplyTo: 2})
	msgs := r.sent(time.Second)
	if len(msgs) != 1 {
		t.Fatalf("want one sequential request first, got %+v", msgs)
	}
	req := msgs[0].Payload.(proto.ObjRequest)
	if req.Obj != 100 {
		t.Fatalf("first request = %+v", req)
	}
	// Grant the first; the second request follows.
	r.inject(netsim.KindObjectShip, proto.ObjGrant{Obj: 100, Mode: lockmgr.ModeShared, Version: 1, Txn: tx.ID})
	msgs = r.sent(2 * time.Second)
	if len(msgs) != 1 || msgs[0].Payload.(proto.ObjRequest).Obj != 101 {
		t.Fatalf("second round = %+v", msgs)
	}
	r.inject(netsim.KindObjectShip, proto.ObjGrant{Obj: 101, Mode: lockmgr.ModeShared, Version: 1, Txn: tx.ID})
	r.env.Run(30 * time.Second)
	if tx.Status != txn.StatusCommitted {
		t.Fatalf("status = %v", tx.Status)
	}
	// The result is reported to the origin peer.
	found := false
	for {
		m, ok := r.peer.TryGet()
		if !ok {
			break
		}
		if res, isRes := m.Payload.(proto.TxnResult); isRes && res.Committed {
			found = true
		}
	}
	if !found {
		t.Fatal("no TxnResult sent to the origin")
	}
	if r.cl.ShippedIn != 1 {
		t.Fatalf("ShippedIn = %d", r.cl.ShippedIn)
	}
}

func TestClientH1RejectionShipsViaLoadQuery(t *testing.T) {
	r := newRig(t, func(c *config.Config) { c.ClientExecutors = 1 })
	defer r.env.Close()
	// Occupy the single executor with a long transaction so H1 fails
	// for the next ones.
	r.seed(1, lockmgr.ModeShared, false, 0)
	blocker := r.newTxn([]txn.Op{{Obj: 1}}, 10*time.Minute)
	blocker.Length = 3 * time.Minute
	r.cl.submitAsync(blocker)
	r.env.Run(time.Second)
	// Queue several more to build a waiting line.
	for i := 0; i < 3; i++ {
		w := r.newTxn([]txn.Op{{Obj: 1}}, 10*time.Minute)
		w.Length = 3 * time.Minute
		r.cl.submitAsync(w)
	}
	r.sent(2 * time.Second)
	// This one cannot make its short deadline behind the queue: it must
	// query the server for candidate sites.
	tight := r.newTxn([]txn.Op{{Obj: 2}}, 25*time.Second)
	r.cl.submitAsync(tight)
	msgs := r.sent(3 * time.Second)
	var q *proto.LoadQuery
	for _, m := range msgs {
		if lq, ok := m.Payload.(proto.LoadQuery); ok {
			q = &lq
		}
	}
	if q == nil {
		t.Fatalf("no LoadQuery sent; messages = %+v", msgs)
	}
	// Peer 2 holds the data and is idle: the reply ships the txn there.
	r.inject(netsim.KindLoadReply, proto.LoadReply{
		Txn:       tight.ID,
		Locations: []proto.ObjConflict{{Obj: 2, Holders: []netsim.SiteID{2}}},
		Loads:     []proto.LoadReport{{Client: 2, QueueLen: 0, ATL: time.Second, Valid: true}},
	})
	r.env.Run(r.env.Now() + 2*time.Second)
	if !tight.Shipped {
		t.Fatal("H1-rejected transaction was not shipped")
	}
	m, ok := r.peer.TryGet()
	if !ok || m.Kind != netsim.KindTxnShip {
		t.Fatalf("peer message = %+v", m)
	}
}

func TestClientDecomposition(t *testing.T) {
	r := newRig(t, nil)
	defer r.env.Close()
	tx := r.newTxn([]txn.Op{{Obj: 10}, {Obj: 11}, {Obj: 20}, {Obj: 21}}, 5*time.Minute)
	tx.Decomposable = true
	tx.Length = 2 * time.Second
	r.cl.submitAsync(tx)
	msgs := r.sent(time.Second)
	if len(msgs) != 1 {
		t.Fatalf("messages = %+v", msgs)
	}
	if _, ok := msgs[0].Payload.(proto.LoadQuery); !ok {
		t.Fatalf("decomposable txn should query locations, got %T", msgs[0].Payload)
	}
	// Peer 2 solely holds objects 20 and 21: two groups form, the
	// remote one ships as a subtask.
	r.inject(netsim.KindLoadReply, proto.LoadReply{
		Txn: tx.ID,
		Locations: []proto.ObjConflict{
			{Obj: 20, Holders: []netsim.SiteID{2}},
			{Obj: 21, Holders: []netsim.SiteID{2}},
		},
	})
	r.env.Run(r.env.Now() + 2*time.Second)
	m, ok := r.peer.TryGet()
	if !ok || m.Kind != netsim.KindTxnShip {
		t.Fatalf("peer message = %+v", m)
	}
	ship := m.Payload.(proto.TxnShip)
	if ship.Sub == nil || len(ship.Sub.Ops) != 2 {
		t.Fatalf("subtask = %+v", ship.Sub)
	}
	// Local subtask fetches its own objects.
	if r.cl.m.DecomposedTxns != 1 || r.cl.m.SubtasksRun != 2 {
		t.Fatalf("decomposed=%d subtasks=%d", r.cl.m.DecomposedTxns, r.cl.m.SubtasksRun)
	}
	// Answer the local subtask's needs and the remote result; the
	// parent synthesizes.
	r.inject(netsim.KindObjectShip, proto.ObjGrant{Obj: 10, Mode: lockmgr.ModeShared, Version: 0, Txn: tx.ID})
	r.inject(netsim.KindObjectShip, proto.ObjGrant{Obj: 11, Mode: lockmgr.ModeShared, Version: 0, Txn: tx.ID})
	r.env.Run(r.env.Now() + 10*time.Second)
	r.inject(netsim.KindTxnResult, proto.TxnResult{Txn: tx.ID, SubIndex: ship.Sub.Index, IsSub: true, Committed: true})
	r.env.Run(r.env.Now() + 10*time.Second)
	if tx.Status != txn.StatusCommitted {
		t.Fatalf("parent status = %v", tx.Status)
	}
}

func TestClientOutageWipesCleanKeepsLoggedDirty(t *testing.T) {
	r := newRig(t, func(c *config.Config) {
		c.UseLogging = true
		c.OutageClient = 1
		c.OutageAt = time.Minute
		c.OutageDuration = 30 * time.Second
	})
	defer r.env.Close()
	r.seed(1, lockmgr.ModeShared, false, 0)   // clean: wiped
	r.seed(2, lockmgr.ModeExclusive, true, 3) // dirty + WAL: survives
	r.env.At(r.cl.cfg.OutageAt, r.cl.beginOutage)
	r.env.Run(2 * time.Minute)
	if r.cl.objects.Contains(1) {
		t.Fatal("clean copy survived the outage")
	}
	if !r.cl.objects.Contains(2) {
		t.Fatal("logged dirty copy did not survive")
	}
	if r.cl.LostUpdates != 0 {
		t.Fatalf("lost updates = %d with WAL on", r.cl.LostUpdates)
	}
}
