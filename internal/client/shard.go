package client

import (
	"slices"

	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
	"siteselect/internal/proto"
	"siteselect/internal/shardmap"
	"siteselect/internal/sim"
	"siteselect/internal/txn"
)

// Multi-server routing (config.Topology.Servers > 1).
//
// With a sharded server, every piece of client state that used to be
// implicitly "at the server" gains a site coordinate: requests route to
// an object's home shard (or to a read replica for shared-mode
// requests), release epochs count per (object, granting shard), and a
// deferred recall remembers which shard issued it so the eventual
// answer returns there. All of it is gated on multiShard: at a single
// server every site below is netsim.ServerSite and every code path
// collapses to the exact single-server behavior the golden corpus pins.

// deferredRecall is a parked recall plus the shard that issued it — the
// site the eventual answer must be sent to.
type deferredRecall struct {
	r    proto.Recall
	from netsim.SiteID
}

// SetShards installs the cluster's shard routing: the shared topology
// map and this client's connection queue at every shard (ins[0] must be
// the queue passed to New). Call before Start in multi-server
// topologies; without it the client behaves as if facing the single
// server at netsim.ServerSite.
func (c *Client) SetShards(topo *shardmap.Map, ins []*sim.Mailbox[netsim.Message]) {
	c.topo = topo
	c.shardIns = ins
	c.multiShard = topo.Multi()
}

// homeSite returns the shard site authoritative for obj.
func (c *Client) homeSite(obj lockmgr.ObjectID) netsim.SiteID {
	if !c.multiShard {
		return netsim.ServerSite
	}
	return c.topo.HomeSite(obj)
}

// routeSite returns the shard a firm request for obj should be sent
// to: a registered read replica for shared-mode requests, else the home
// shard.
func (c *Client) routeSite(obj lockmgr.ObjectID, mode lockmgr.Mode) netsim.SiteID {
	if !c.multiShard {
		return netsim.ServerSite
	}
	return c.topo.RouteSite(obj, mode == lockmgr.ModeShared)
}

// grantSource returns the shard whose registration the
// currently-dispatched message belongs to: the sending shard when one
// sent it directly, else the object's home shard (peer-forwarded
// migration hops and read runs are always issued by the home shard).
func (c *Client) grantSource(obj lockmgr.ObjectID) netsim.SiteID {
	if shardmap.IsShardSite(c.curFrom) {
		return c.curFrom
	}
	return c.homeSite(obj)
}

// epochOf and bumpEpoch access the release-epoch counter shared with
// one shard for one object. The epoch protocol runs independently per
// (object, granting shard): each shard keeps its own registration for
// this client, so a release sent to one shard must not revoke grants in
// flight from another.
func (c *Client) epochOf(obj lockmgr.ObjectID, site netsim.SiteID) int64 {
	if i, ok := c.epochIdx(obj, site); ok {
		return c.epochs[i].n
	}
	return 0
}

func (c *Client) bumpEpoch(obj lockmgr.ObjectID, site netsim.SiteID) int64 {
	i, ok := c.epochIdx(obj, site)
	if ok {
		c.epochs[i].n++
		return c.epochs[i].n
	}
	c.epochs = append(c.epochs, epochEntry{})
	copy(c.epochs[i+1:], c.epochs[i:])
	c.epochs[i] = epochEntry{obj: obj, site: site, n: 1}
	return 1
}

// shardGroup is one shard's slice of a multi-object request.
type shardGroup struct {
	site  netsim.SiteID
	objs  []lockmgr.ObjectID
	modes []lockmgr.Mode
}

// groupByShard partitions an access list by the shard each entry must
// be sent to, preserving first-appearance order so the split is
// deterministic. byHome groups by home shard (location queries);
// otherwise by routeSite (firm requests, which may prefer a replica).
// keep, when non-nil, drops entries it rejects.
func (c *Client) groupByShard(objs []lockmgr.ObjectID, modes []lockmgr.Mode,
	byHome bool, keep func(lockmgr.ObjectID) bool) []shardGroup {
	// The groups (and their object vectors) escape into message
	// payloads, so they are freshly allocated; only the site lookup is
	// dense — a scan over at most Servers() groups beats a map here.
	var groups []shardGroup
	for i, obj := range objs {
		if keep != nil && !keep(obj) {
			continue
		}
		site := c.homeSite(obj)
		if !byHome {
			site = c.routeSite(obj, modes[i])
		}
		gi := -1
		for k := range groups {
			if groups[k].site == site {
				gi = k
				break
			}
		}
		if gi < 0 {
			gi = len(groups)
			groups = append(groups, shardGroup{site: site})
		}
		groups[gi].objs = append(groups[gi].objs, obj)
		groups[gi].modes = append(groups[gi].modes, modes[i])
	}
	return groups
}

// resendSharded is resend's multi-shard counterpart: multi-object
// exchanges split into one message per shard. Retransmissions of probe
// and commit rounds drop already-granted objects (pt.want tracks them),
// so a shard that served its slice is not asked again.
func (m *txnMachine) resendSharded(attempt int) {
	c, t, pt := m.c, m.t, m.pt
	stillWanted := func(obj lockmgr.ObjectID) bool {
		return pt.findWait(obj) >= 0
	}
	switch m.sendKind {
	case skLoad:
		if attempt == 0 {
			clear(pt.loadFrom)
			pt.loadFrom = pt.loadFrom[:0]
		}
		groups := c.groupByShard(t.Objects(), t.Modes(), true, nil)
		pt.loadWant = len(groups)
		for _, g := range groups {
			pt.netAccum += c.toSite(g.site, netsim.KindLoadQuery, netsim.ControlBytes, proto.LoadQuery{
				Client:   c.id,
				Txn:      t.ID,
				Objs:     g.objs,
				Modes:    g.modes,
				Deadline: t.Deadline,
				Attempt:  attempt,
				Load:     c.loadReport(),
			})
		}
	case skProbe:
		if attempt == 0 {
			clear(pt.confFrom)
			pt.confFrom = pt.confFrom[:0]
		}
		for _, g := range c.groupByShard(m.objs, m.modes, false, stillWanted) {
			pt.netAccum += c.toSite(g.site, netsim.KindObjectRequest, netsim.ControlBytes, proto.ProbeRequest{
				Client:   c.id,
				Txn:      t.ID,
				Objs:     g.objs,
				Modes:    g.modes,
				Deadline: t.Deadline,
				Attempt:  attempt,
				Load:     c.loadReport(),
			})
		}
	case skCommit:
		for _, g := range c.groupByShard(m.objs, m.modes, false, stillWanted) {
			pt.netAccum += c.toSite(g.site, netsim.KindObjectRequest, netsim.ControlBytes, proto.CommitRequest{
				Client:   c.id,
				Txn:      t.ID,
				Deadline: t.Deadline,
				Objs:     g.objs,
				Modes:    g.modes,
				Attempt:  attempt,
				Load:     c.loadReport(),
			})
		}
	default: // skSeq
		pt.netAccum += c.toSite(c.routeSite(m.curObj, m.curMode), netsim.KindObjectRequest, netsim.ControlBytes, proto.ObjRequest{
			Client:   c.id,
			Txn:      t.ID,
			Obj:      m.curObj,
			Mode:     m.curMode,
			Deadline: t.Deadline,
			Attempt:  attempt,
			Load:     c.loadReport(),
		})
	}
}

// mergeConflict folds one shard's ConflictReply into the transaction's
// merged view. Each shard answers for its own slice of the probe;
// replies accumulate keyed by sender (idempotent under retransmission)
// and the merged conflict list, load table (first report per site wins)
// and data counts (summed per site) are rebuilt in shard order so the
// result is deterministic regardless of reply arrival order. The waiter
// wakes on the first conflict: H2 then decides on the conflicts seen so
// far, a deliberate heuristic — waiting for every shard would trade
// deadline slack for information the decision may not need.
func (c *Client) mergeConflict(pt *pendingTxn, r proto.ConflictReply) {
	replaced := false
	for i := range pt.confFrom {
		if pt.confFrom[i].from == c.curFrom {
			pt.confFrom[i].reply = r
			replaced = true
			break
		}
	}
	if !replaced {
		pt.confFrom = append(pt.confFrom, shardConflict{from: c.curFrom, reply: r})
	}
	pt.gotConflict = true
	// In multi-shard mode these vectors are only ever written by this
	// merge, so their capacity is reusable scratch (the single-server
	// path aliases message payloads instead and never reaches here).
	pt.conflicts = pt.conflicts[:0]
	pt.loads = pt.loads[:0]
	pt.dataCounts = pt.dataCounts[:0]
	for k := 0; k < c.topo.Servers(); k++ {
		site := shardmap.ShardSite(k)
		var rep *proto.ConflictReply
		for i := range pt.confFrom {
			if pt.confFrom[i].from == site {
				rep = &pt.confFrom[i].reply
				break
			}
		}
		if rep == nil {
			continue
		}
		pt.conflicts = append(pt.conflicts, rep.Conflicts...)
		for _, l := range rep.Loads {
			dup := false
			for _, have := range pt.loads {
				if have.Client == l.Client {
					dup = true
					break
				}
			}
			if !dup {
				pt.loads = append(pt.loads, l)
			}
		}
		for _, dc := range rep.DataCounts {
			found := false
			for i := range pt.dataCounts {
				if pt.dataCounts[i].Site == dc.Site {
					pt.dataCounts[i].Count += dc.Count
					found = true
					break
				}
			}
			if !found {
				pt.dataCounts = append(pt.dataCounts, proto.SiteCount{Site: dc.Site, Count: dc.Count})
			}
		}
	}
	slices.SortFunc(pt.dataCounts, func(a, b proto.SiteCount) int {
		return int(a.Site) - int(b.Site)
	})
}

// mergeLoadReplies assembles the merged LoadReply once every queried
// shard has answered, in shard order for determinism. Loads dedup per
// reporting site (first wins).
func (c *Client) mergeLoadReplies(pt *pendingTxn, id txn.ID) {
	merged := proto.LoadReply{Txn: id}
	for k := 0; k < c.topo.Servers(); k++ {
		site := shardmap.ShardSite(k)
		var rep *proto.LoadReply
		for i := range pt.loadFrom {
			if pt.loadFrom[i].from == site {
				rep = &pt.loadFrom[i].reply
				break
			}
		}
		if rep == nil {
			continue
		}
		merged.Locations = append(merged.Locations, rep.Locations...)
		for _, l := range rep.Loads {
			dup := false
			for _, have := range merged.Loads {
				if have.Client == l.Client {
					dup = true
					break
				}
			}
			if !dup {
				merged.Loads = append(merged.Loads, l)
			}
		}
	}
	pt.loadReply = merged
	pt.hasLoad = true
}
