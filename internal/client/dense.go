package client

import (
	"sort"
	"time"

	"siteselect/internal/forward"
	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
	"siteselect/internal/proto"
	"siteselect/internal/txn"
)

// Dense, index-addressed replacements for the client's per-transaction
// bookkeeping maps. A client has at most a handful of transactions in
// flight (bounded by its executor slots plus queries), each waiting on
// a few objects, so every lookup below is a short linear scan over a
// compact slice — faster than hashing at these sizes, resident in one
// or two cache lines, and free of per-transaction map garbage. All
// stores are recycled: steady-state request rounds allocate nothing.
//
// Ordering discipline: the waiter index is insertion-ordered and
// scanned front to back, so grant broadcast order is exactly the
// registration order the map-based implementation produced; everything
// else is keyed lookup only, where removal order is unobservable.

// objWait is one outstanding object request of a pending transaction:
// the object, the requested mode, and when the (latest) firm request
// for it was sent — the response-time clock.
type objWait struct {
	obj  lockmgr.ObjectID
	mode lockmgr.Mode
	sent time.Duration
}

// findWait returns the index of obj in the outstanding set, or -1.
func (pt *pendingTxn) findWait(obj lockmgr.ObjectID) int {
	for i := range pt.waits {
		if pt.waits[i].obj == obj {
			return i
		}
	}
	return -1
}

// removeWait drops the wait at index i (order among the remaining
// waits is not observable — they are only ever probed by key).
func (pt *pendingTxn) removeWait(i int) {
	last := len(pt.waits) - 1
	pt.waits[i] = pt.waits[last]
	pt.waits = pt.waits[:last]
}

// addWait registers an outstanding request for obj.
func (pt *pendingTxn) addWait(obj lockmgr.ObjectID, mode lockmgr.Mode, sent time.Duration) {
	pt.waits = append(pt.waits, objWait{obj: obj, mode: mode, sent: sent})
}

// waiterEntry is one (object, transaction) registration in the
// client-wide waiter index.
type waiterEntry struct {
	obj lockmgr.ObjectID
	pt  *pendingTxn
}

// addWaiter appends a registration; arrival grants for obj wake pts in
// exactly this order.
func (c *Client) addWaiter(obj lockmgr.ObjectID, pt *pendingTxn) {
	c.waiters = append(c.waiters, waiterEntry{obj: obj, pt: pt})
}

// removeWaiterAt removes the registration at index i, preserving the
// order of the rest (registration order is the broadcast order).
func (c *Client) removeWaiterAt(i int) {
	copy(c.waiters[i:], c.waiters[i+1:])
	c.waiters[len(c.waiters)-1] = waiterEntry{}
	c.waiters = c.waiters[:len(c.waiters)-1]
}

// dropWaiter removes pt's registration for obj, if present.
func (c *Client) dropWaiter(obj lockmgr.ObjectID, pt *pendingTxn) {
	for i := range c.waiters {
		if c.waiters[i].obj == obj && c.waiters[i].pt == pt {
			c.removeWaiterAt(i)
			return
		}
	}
}

// hasWaiter reports whether any transaction is waiting for obj.
func (c *Client) hasWaiter(obj lockmgr.ObjectID) bool {
	for i := range c.waiters {
		if c.waiters[i].obj == obj {
			return true
		}
	}
	return false
}

// findPending returns the pending transaction with the given id, nil
// if none.
func (c *Client) findPending(id txn.ID) *pendingTxn {
	for _, pt := range c.pending {
		if pt.t.ID == id {
			return pt
		}
	}
	return nil
}

// removePending unregisters pt and recycles it: pointer-bearing reply
// state is dropped, the signal and slice capacities are kept for the
// next transaction.
func (c *Client) removePending(pt *pendingTxn) {
	for i, p := range c.pending {
		if p == pt {
			last := len(c.pending) - 1
			c.pending[i] = c.pending[last]
			c.pending[last] = nil
			c.pending = c.pending[:last]
			break
		}
	}
	clear(pt.confFrom) // drop retained reply payloads before reuse
	clear(pt.loadFrom)
	*pt = pendingTxn{
		sig:      pt.sig,
		waits:    pt.waits[:0],
		confFrom: pt.confFrom[:0],
		loadFrom: pt.loadFrom[:0],
	}
	c.ptFree = append(c.ptFree, pt)
}

// deferredEntry is a parked recall, keyed by object.
type deferredEntry struct {
	obj lockmgr.ObjectID
	d   deferredRecall
}

// findDeferred returns the index of obj's deferred recall, or -1.
func (c *Client) findDeferred(obj lockmgr.ObjectID) int {
	for i := range c.deferred {
		if c.deferred[i].obj == obj {
			return i
		}
	}
	return -1
}

// setDeferred parks (or replaces) the recall deferred against obj.
func (c *Client) setDeferred(obj lockmgr.ObjectID, d deferredRecall) {
	if i := c.findDeferred(obj); i >= 0 {
		c.deferred[i].d = d
		return
	}
	c.deferred = append(c.deferred, deferredEntry{obj: obj, d: d})
}

// takeDeferred removes and returns obj's deferred recall.
func (c *Client) takeDeferred(obj lockmgr.ObjectID) (deferredRecall, bool) {
	if i := c.findDeferred(obj); i >= 0 {
		d := c.deferred[i].d
		last := len(c.deferred) - 1
		c.deferred[i] = c.deferred[last]
		c.deferred[last] = deferredEntry{}
		c.deferred = c.deferred[:last]
		return d, true
	}
	return deferredRecall{}, false
}

// migrationEntry is one in-progress forward-list migration, keyed by
// object.
type migrationEntry struct {
	obj lockmgr.ObjectID
	l   *forward.List
}

// migrationOf returns obj's forward list, nil if none.
func (c *Client) migrationOf(obj lockmgr.ObjectID) *forward.List {
	for i := range c.migrations {
		if c.migrations[i].obj == obj {
			return c.migrations[i].l
		}
	}
	return nil
}

// setMigration records (or replaces) obj's forward list.
func (c *Client) setMigration(obj lockmgr.ObjectID, l *forward.List) {
	for i := range c.migrations {
		if c.migrations[i].obj == obj {
			c.migrations[i].l = l
			return
		}
	}
	c.migrations = append(c.migrations, migrationEntry{obj: obj, l: l})
}

// deleteMigration drops obj's forward list.
func (c *Client) deleteMigration(obj lockmgr.ObjectID) {
	for i := range c.migrations {
		if c.migrations[i].obj == obj {
			last := len(c.migrations) - 1
			c.migrations[i] = c.migrations[last]
			c.migrations[last] = migrationEntry{}
			c.migrations = c.migrations[:last]
			return
		}
	}
}

// shipWaitEntry is one outstanding shipped-work result wait.
type shipWaitEntry struct {
	key shipKey
	w   *shipWait
}

// shipWaitFor returns the wait registered under key, nil if none.
func (c *Client) shipWaitFor(key shipKey) *shipWait {
	for i := range c.shipWaits {
		if c.shipWaits[i].key == key {
			return c.shipWaits[i].w
		}
	}
	return nil
}

// addShipWait registers a result wait.
func (c *Client) addShipWait(key shipKey, w *shipWait) {
	c.shipWaits = append(c.shipWaits, shipWaitEntry{key: key, w: w})
}

// deleteShipWait unregisters a result wait.
func (c *Client) deleteShipWait(key shipKey) {
	for i := range c.shipWaits {
		if c.shipWaits[i].key == key {
			last := len(c.shipWaits) - 1
			c.shipWaits[i] = c.shipWaits[last]
			c.shipWaits[last] = shipWaitEntry{}
			c.shipWaits = c.shipWaits[:last]
			return
		}
	}
}

// epochEntry is one release-epoch counter, sorted by (obj, site).
// Epoch state is the one per-client store that grows with the set of
// objects ever returned rather than with in-flight work, so it gets a
// binary-searchable sorted slice instead of a scan: lookups (every
// grant) are O(log n) over 16-byte-aligned entries, inserts (first
// release of an object — rare) shift the tail.
type epochEntry struct {
	obj  lockmgr.ObjectID
	site netsim.SiteID
	n    int64
}

// epochIdx locates the counter for (obj, site): its index and whether
// it exists; absent counters read as zero and insert at the returned
// index.
func (c *Client) epochIdx(obj lockmgr.ObjectID, site netsim.SiteID) (int, bool) {
	i := sort.Search(len(c.epochs), func(i int) bool {
		e := &c.epochs[i]
		if e.obj != obj {
			return e.obj > obj
		}
		return e.site >= site
	})
	if i < len(c.epochs) && c.epochs[i].obj == obj && c.epochs[i].site == site {
		return i, true
	}
	return i, false
}

// h2Scratch returns the reusable map scratch for loadshare.Params
// (whose API takes maps); clear() keeps the buckets, so steady-state
// H2 decisions allocate nothing.
func (c *Client) h2Scratch() (map[netsim.SiteID]proto.LoadReport, map[netsim.SiteID]int) {
	if c.h2Loads == nil {
		c.h2Loads = make(map[netsim.SiteID]proto.LoadReport)
		c.h2Counts = make(map[netsim.SiteID]int)
	}
	clear(c.h2Loads)
	clear(c.h2Counts)
	return c.h2Loads, c.h2Counts
}
