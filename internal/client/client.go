// Package client implements a client site of the client-server
// configurations: the workload generator, the EDF-scheduled local
// executor, the two-tier object/lock cache with callback handling, and —
// in load-sharing mode — the Section 4 protocol: H1 admission, tentative
// all-or-nothing object probes, H2 site selection with transaction
// shipping, transaction decomposition, and forward-list migration hops.
//
// Messages in the simulation are passed by reference: a shipped
// transaction is the same *txn.Transaction at origin and target, and the
// executing site is the single writer of its status.
package client

import (
	"fmt"
	"time"

	"siteselect/internal/cache"
	"siteselect/internal/config"
	"siteselect/internal/lockmgr"
	"siteselect/internal/metrics"
	"siteselect/internal/netsim"
	"siteselect/internal/proto"
	"siteselect/internal/sched"
	"siteselect/internal/shardmap"
	"siteselect/internal/sim"
	"siteselect/internal/trace"
	"siteselect/internal/txn"
	"siteselect/internal/wal"
)

// Client is one client site.
type Client struct {
	env *sim.Env
	cfg config.Config
	id  netsim.SiteID
	net *netsim.Network
	m   *metrics.Collector

	// inbox receives server and peer messages; serverIn is this
	// client's connection queue at the server; peers holds the other
	// clients' inboxes for forward-list hops and transaction shipping.
	inbox    *sim.Mailbox[netsim.Message]
	serverIn *sim.Mailbox[netsim.Message]
	peers    map[netsim.SiteID]*sim.Mailbox[netsim.Message]

	// topo and shardIns route server traffic per shard in multi-server
	// topologies: shardIns[k] is this client's connection queue at shard
	// k, with shardIns[0] == serverIn. multiShard is set by SetShards;
	// while false (the default, and always at Servers <= 1), every
	// request goes to netsim.ServerSite exactly as before. curFrom is
	// the sender of the message the dispatcher is currently handling —
	// the shard a grant's epoch belongs to and a recall is answered at.
	topo       *shardmap.Map
	shardIns   []*sim.Mailbox[netsim.Message]
	multiShard bool
	curFrom    netsim.SiteID

	objects    *cache.Cache
	localDisk  *sim.Resource
	slots      *sim.Resource
	localLocks *lockmgr.BlockingTable
	log        *wal.Log

	atl *sched.ATL
	gen txn.Source

	loadShare bool

	// faulty and rto configure the retry machinery: both are zero-valued
	// in fault-free runs, where every retry path collapses to the
	// original single-send behavior. rto is the base retransmission
	// timeout, doubled per retry of the same request (capped at 8x) and
	// always bounded by the transaction deadline.
	faulty bool
	rto    time.Duration
	// onCommit, when set, observes every committed write (invariant
	// monitoring: no committed update may be lost).
	onCommit func(lockmgr.ObjectID, int64)

	// tr is the per-run transaction tracer (nil when tracing is off; a
	// nil tracer's methods are no-ops). curTransit is the wire transit
	// of the message the dispatcher is currently handling, accumulated
	// into waiting transactions' network attribution.
	tr         *trace.Tracer
	curTransit time.Duration

	// pending tracks transactions waiting for object replies (a handful
	// at most — executor slots plus queries); waiters indexes their
	// outstanding objects in registration order for grant routing. Both
	// are dense scan-addressed slices, and ptFree recycles pendingTxn
	// records (signal and slice capacities included) so a steady-state
	// request round performs no map operations and no allocation.
	pending []*pendingTxn
	ptFree  []*pendingTxn
	waiters []waiterEntry
	// deferred holds recalls that arrived while the object was pinned,
	// with the shard that issued each.
	deferred []deferredEntry
	// epochs counts this client's releases per object and granting
	// shard, sorted by (object, site). Every return carries the current
	// epoch and every grant the shard sends echoes the epoch it last
	// saw; a mismatch identifies a grant that crossed a release on the
	// wire and must be dropped. At a single server the site key is
	// always netsim.ServerSite.
	epochs []epochEntry
	// migrations maps objects to their remaining forward lists; every
	// migrating object is pinned until forwarded, and forwarded as soon
	// as only the migration pin remains.
	migrations []migrationEntry
	// shipWaits collects results of shipped transactions and subtasks.
	shipWaits []shipWaitEntry
	// txnFree recycles finished transaction machines so steady-state
	// submission allocates nothing but the transaction itself.
	txnFree []*txnMachine
	// h2Loads/h2Counts are reusable scratch for loadshare.Params maps;
	// missing holds probe-wait per-site data counts between uses.
	h2Loads  map[netsim.SiteID]proto.LoadReport
	h2Counts map[netsim.SiteID]int

	// outageEnd is set while the client is partitioned (fault
	// injection): the dispatcher holds all message processing until it
	// passes.
	outageEnd time.Duration

	// Tracked accumulates every transaction generated at this client,
	// for end-of-run finalization.
	Tracked []*txn.Transaction

	// ShippedOut and ShippedIn count whole transactions moved by load
	// sharing; ForwardHops counts forward-list client-to-client sends.
	ShippedOut  int64
	ShippedIn   int64
	ForwardHops int64
	// LostUpdates counts committed-but-unreturned updates wiped by an
	// outage with no recovery log configured.
	LostUpdates int64
	// Retries counts request retransmissions sent under fault injection.
	Retries int64
}

type shipKey struct {
	id  txn.ID
	sub int
}

type shipWait struct {
	sig       *sim.Signal
	done      bool
	committed bool
}

type pendingTxn struct {
	t *txn.Transaction
	// waits is the outstanding object-request set: object, requested
	// mode, and send time in one dense record (the former want and sent
	// maps, which were always written in pairs).
	waits []objWait

	sig         *sim.Signal
	gotConflict bool
	conflicts   []proto.ObjConflict
	loads       []proto.LoadReport
	dataCounts  []proto.SiteCount
	denied      proto.DenyReason
	loadReply   proto.LoadReply
	hasLoad     bool
	wantLoad    bool
	// Multi-shard reply assembly (empty/0 at a single server): each
	// shard answers for its slice of a split exchange, recorded in
	// arrival order with the sender alongside. Conflict replies merge as
	// they arrive (mergeConflict); load replies complete once loadWant
	// shards have answered (mergeLoadReplies). Duplicate senders (fault
	// retransmissions) are detected by scanning the recorded senders.
	confFrom []shardConflict
	loadFrom []shardLoad
	loadWant int
	// netAccum accumulates the measured wire transit of the current
	// request/reply exchange (uplink sends plus satisfying replies);
	// awaitReply splits each wait interval into network and lock-wait
	// attribution with it.
	netAccum time.Duration
}

// shardConflict is one shard's conflict reply in a split probe.
type shardConflict struct {
	from  netsim.SiteID
	reply proto.ConflictReply
}

// shardLoad is one shard's load reply in a split load query.
type shardLoad struct {
	from  netsim.SiteID
	reply proto.LoadReply
}

// New returns a client site. inbox is this client's message queue;
// serverIn is its connection queue at the server. Peers must be set via
// SetPeers before Start when forward lists or shipping are enabled.
func New(env *sim.Env, cfg config.Config, id netsim.SiteID, net *netsim.Network,
	m *metrics.Collector, inbox, serverIn *sim.Mailbox[netsim.Message],
	gen txn.Source, loadShare bool) *Client {
	c := &Client{
		env:       env,
		cfg:       cfg,
		id:        id,
		net:       net,
		m:         m,
		inbox:     inbox,
		serverIn:  serverIn,
		peers:     make(map[netsim.SiteID]*sim.Mailbox[netsim.Message]),
		objects:   cache.New(cfg.ClientMemory, cfg.ClientDisk),
		localDisk: sim.NewResource(env, 1),
		slots:     sim.NewResource(env, cfg.ClientExecutors),
		atl:       &sched.ATL{Default: cfg.MeanLength},
		gen:       gen,
		loadShare: loadShare,
	}
	c.topo = shardmap.New(cfg.Sharding)
	c.shardIns = []*sim.Mailbox[netsim.Message]{serverIn}
	c.faulty = cfg.Faults.Enabled()
	c.rto = cfg.EffectiveRetryTimeout()
	if cfg.ClientExecutors > 1 {
		// Deliberately not Reserved: a client only ever locks the few
		// objects it caches, and a dense database-wide index per client
		// would dominate memory at large populations.
		c.localLocks = lockmgr.NewBlockingTable(env)
	}
	if cfg.UseLogging {
		c.log = wal.New(env, c.localDisk, cfg.DiskWrite)
		// Commit-time forces share the batching layer's window: the
		// force leader waits it out so concurrent committers join one
		// disk write (inert at the default window of zero).
		c.log.SetGroupWindow(cfg.BatchWindow)
	}
	return c
}

// ID returns the client's site id.
func (c *Client) ID() netsim.SiteID { return c.id }

// Cache exposes the object cache for metrics and audits.
func (c *Client) Cache() *cache.Cache { return c.objects }

// HasDeferredRecall reports whether a recall for obj is waiting for a
// local transaction to finish (a transitional state audits must allow).
func (c *Client) HasDeferredRecall(obj lockmgr.ObjectID) bool {
	return c.findDeferred(obj) >= 0
}

// Log exposes the client's write-ahead log (nil unless UseLogging).
func (c *Client) Log() *wal.Log { return c.log }

// SetCommitHook installs fn to observe every committed write as
// (object, new version). The invariant monitor uses it to verify that
// no committed update is ever lost.
func (c *Client) SetCommitHook(fn func(lockmgr.ObjectID, int64)) { c.onCommit = fn }

// SetTracer installs the per-run transaction tracer. Call before Start.
func (c *Client) SetTracer(tr *trace.Tracer) { c.tr = tr }

// AuditPending verifies request conservation: no transaction may still
// be waiting on a request more than grace past its deadline — by then
// the request must have been answered, retried to resolution, or
// abandoned by the deadline timeout.
func (c *Client) AuditPending(grace time.Duration) error {
	now := c.env.Now()
	for _, pt := range c.pending {
		if len(pt.waits) == 0 && !pt.wantLoad {
			continue
		}
		if now > pt.t.Deadline+grace {
			return fmt.Errorf("client %d: txn %d still waiting %v past its deadline",
				c.id, pt.t.ID, now-pt.t.Deadline)
		}
	}
	return nil
}

// ATL exposes the observed average transaction length.
func (c *Client) ATL() *sched.ATL { return c.atl }

// SetPeers installs the clients' inbox routing table. The map is shared
// by reference across all clients (it may include this client's own
// entry); sharing one table keeps per-client state O(1) at large
// populations. Self-sends are rejected in toPeer.
func (c *Client) SetPeers(peers map[netsim.SiteID]*sim.Mailbox[netsim.Message]) {
	c.peers = peers
}

// Start spawns the client's generator and dispatcher machines, and
// schedules the configured outage, if this client is its target.
func (c *Client) Start() {
	g := &genMachine{c: c}
	c.env.Spawn(&g.task, g)
	c.startDispatcher()
	if netsim.SiteID(c.cfg.OutageClient) == c.id && c.cfg.OutageDuration > 0 {
		c.env.At(c.cfg.OutageAt, c.beginOutage)
	}
}

// startDispatcher runs only the message dispatcher (tests submit
// transactions explicitly).
func (c *Client) startDispatcher() {
	d := &dispMachine{c: c}
	c.env.Spawn(&d.task, d)
}

// submitAsync runs the full submit path for t, starting at the current
// instant.
func (c *Client) submitAsync(t *txn.Transaction) {
	c.spawnTxn(t, nil, enOrigin, nil)
}

// beginOutage partitions the client and wipes its volatile state: the
// dispatcher stops draining messages until the outage ends, clean cache
// copies are lost (their locks release lazily via NotCached answers),
// and dirty copies survive only if the client-based recovery log holds
// them.
func (c *Client) beginOutage() {
	c.outageEnd = c.env.Now() + c.cfg.OutageDuration
	for _, e := range c.objects.Entries() {
		if e.Pinned() {
			continue // in a running transaction's memory image
		}
		if e.Dirty && c.log == nil {
			c.LostUpdates++
		}
		if e.Dirty && c.log != nil {
			continue // recovered from the WAL on restart
		}
		// Dropping a copy without telling the server is the lazy-release
		// path the protocol already supports: a later recall gets a
		// NotCached answer, and in-flight grants redeliver current data.
		c.objects.Recycle(c.objects.Remove(e.Obj))
	}
}

// Down reports whether the client is currently partitioned.
func (c *Client) Down() bool { return c.env.Now() < c.outageEnd }

// genMachine produces the transaction stream until the configured
// horizon, as a state machine with the same park points as the earlier
// generator process (one scheduler pass per arrival, even for
// already-due arrivals).
type genMachine struct {
	task sim.Task
	c    *Client
	pc   uint8
}

const (
	gsNext uint8 = iota
	gsArrived
)

func (g *genMachine) Resume() {
	c := g.c
	for {
		switch g.pc {
		case gsNext:
			next := c.gen.NextArrival()
			if next > c.cfg.Duration {
				g.task.Detach()
				return
			}
			g.pc = gsArrived
			g.task.SleepUntil(next)
			return
		default: // gsArrived
			if now := g.task.Now(); now < c.outageEnd {
				g.task.SleepUntil(c.outageEnd) // no submissions while down
				return
			}
			t := c.gen.Next()
			c.Tracked = append(c.Tracked, t)
			c.tr.Submitted(t, c.id, g.task.Now())
			c.spawnTxn(t, nil, enOrigin, nil)
			g.pc = gsNext
		}
	}
}

// dispMachine routes incoming messages. During an injected outage the
// messages queue in the inbox (plus at most one held in-hand) and drain
// only after the client restarts.
type dispMachine struct {
	task sim.Task
	c    *Client
	held netsim.Message
	hold bool
}

func (d *dispMachine) Resume() {
	c := d.c
	if d.hold {
		d.hold = false
		msg := d.held
		d.held = netsim.Message{}
		c.dispatchMsg(msg)
	}
	for {
		msg, ok := c.inbox.Recv(&d.task)
		if !ok {
			return
		}
		if d.task.Now() < c.outageEnd {
			d.held, d.hold = msg, true
			d.task.SleepUntil(c.outageEnd)
			return
		}
		c.dispatchMsg(msg)
	}
}

func (c *Client) dispatchMsg(msg netsim.Message) {
	c.curTransit = msg.DeliveredAt - msg.SentAt
	c.curFrom = msg.From
	switch pl := msg.Payload.(type) {
	case proto.ObjGrant:
		c.onGrant(pl)
	case proto.BatchGrant:
		// A batch-window coalesced ship: apply each member grant in
		// order, exactly as if it had arrived alone (they share the
		// message's transit for network attribution).
		for _, g := range pl.Grants {
			c.onGrant(g)
		}
	case proto.ConflictReply:
		c.onConflictReply(pl)
	case proto.DenyReply:
		c.onDeny(pl)
	case proto.Recall:
		c.onRecall(pl)
	case proto.BatchRecall:
		for _, r := range pl.Recalls {
			c.onRecall(r)
		}
	case proto.LoadReply:
		c.onLoadReply(pl)
	case proto.TxnShip:
		c.onTxnShip(pl)
	case proto.TxnResult:
		c.onTxnResult(pl)
	default:
		panic(fmt.Sprintf("client: unexpected payload %T", msg.Payload))
	}
}

// loadReport summarizes this client's load for piggybacking: the number
// of transactions waiting for an executor slot and the observed ATL.
func (c *Client) loadReport() proto.LoadReport {
	return proto.LoadReport{
		Client:   c.id,
		QueueLen: c.slots.QueueLen(),
		ATL:      c.atl.Mean(),
		Valid:    true,
	}
}

// measuring reports whether the warmup period is over and statistics
// should be recorded.
func (c *Client) measuring() bool { return c.env.Now() >= c.cfg.Warmup }

// toSite and toPeer send one message and return its wire transit for
// network attribution. toSite targets a shard site (always
// netsim.ServerSite in single-server topologies).
func (c *Client) toSite(site netsim.SiteID, kind netsim.Kind, size int, payload any) time.Duration {
	return c.net.Send(netsim.Message{
		Kind: kind, From: c.id, To: site, Size: size, Payload: payload,
	}, c.shardIns[shardmap.ShardIndex(site)])
}

func (c *Client) toPeer(to netsim.SiteID, kind netsim.Kind, size int, payload any) time.Duration {
	mb, ok := c.peers[to]
	if !ok || to == c.id {
		panic(fmt.Sprintf("client %d: no peer route to %d", c.id, to))
	}
	return c.net.Send(netsim.Message{
		Kind: kind, From: c.id, To: to, Size: size, Payload: payload,
	}, mb)
}
