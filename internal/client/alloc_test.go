package client

import (
	"testing"

	"siteselect/internal/lockmgr"
	"siteselect/internal/txn"
)

// TestFirmRoundBookkeepingZeroAlloc pins the client's converted
// per-transaction bookkeeping at zero allocations for a steady-state
// firm-request round: pending-record checkout from the pool, wait and
// waiter registration, the grant-arrival lookups, and release back to
// the pool all run on dense recycled stores. Outbound request payloads
// are excluded — they escape into the network by design.
func TestFirmRoundBookkeepingZeroAlloc(t *testing.T) {
	r := newRig(t, nil)
	defer r.env.Close()
	c := r.cl
	tx := &txn.Transaction{ID: 201}

	round := func() {
		pt := c.ensurePending(tx)
		pt.addWait(7, lockmgr.ModeShared, 0)
		c.addWaiter(7, pt)
		pt.addWait(8, lockmgr.ModeExclusive, 0)
		c.addWaiter(8, pt)
		// Grants arrive: the handler finds the pending record, clears
		// each wait, and unregisters the waiter.
		if c.findPending(tx.ID) != pt {
			panic("pending record lost")
		}
		if i := pt.findWait(7); i >= 0 {
			pt.removeWait(i)
			c.dropWaiter(7, pt)
		}
		if i := pt.findWait(8); i >= 0 {
			pt.removeWait(i)
			c.dropWaiter(8, pt)
		}
		c.releasePending(pt)
	}
	round() // warm the pool
	if n := testing.AllocsPerRun(500, round); n != 0 {
		t.Errorf("firm-round bookkeeping allocates %v per run, want 0", n)
	}
}
