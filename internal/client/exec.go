package client

import (
	"fmt"
	"sort"
	"time"

	"siteselect/internal/cache"
	"siteselect/internal/config"
	"siteselect/internal/loadshare"
	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
	"siteselect/internal/proto"
	"siteselect/internal/sim"
	"siteselect/internal/trace"
	"siteselect/internal/txn"
)

func boolArg(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// submit is the entry point of the load-sharing algorithm for a
// transaction initiated at this client (Section 4 pseudocode).
func (c *Client) submit(p *sim.Proc, t *txn.Transaction) {
	if c.loadShare && c.cfg.UseDecomposition && t.Decomposable {
		if c.tryDecompose(p, t) {
			return
		}
	}
	if c.loadShare && c.cfg.UseH1 {
		// H1 with a concurrent executor pool: n waiting transactions
		// drain k at a time, so the expected start delay is n·ATL/k.
		n := c.slots.QueueLen()
		atl := c.atl.Mean() / time.Duration(c.cfg.ClientExecutors)
		feasible := loadshare.H1Feasible(p.Now(), n, atl, t.Deadline)
		c.tr.Point(t.ID, c.id, trace.EvH1, 0, int64(n), boolArg(feasible), p.Now())
		if !feasible {
			c.m.H1Rejections++
			if c.shipViaQuery(p, t) {
				return
			}
		}
	}
	c.execute(p, t, nil, true)
}

// shipViaQuery handles the H1-infeasible branch: ask the server where
// the transaction's objects live and how loaded the candidates are, pick
// the most suitable site (H2), and ship. Returns false when the origin
// remains the best choice (the transaction then queues locally anyway).
func (c *Client) shipViaQuery(p *sim.Proc, t *txn.Transaction) bool {
	reply := c.loadQuery(p, t)
	if reply == nil {
		return false
	}
	params := loadshare.Params{
		Origin:         c.id,
		Now:            p.Now(),
		Deadline:       t.Deadline,
		Locations:      reply.Locations,
		Loads:          loadsBySite(reply.Loads),
		OriginQueueLen: c.slots.QueueLen(),
		OriginATL:      c.atl.Mean(),
		Executors:      c.cfg.ClientExecutors,
	}
	if c.tr.Enabled() {
		params.Trace = func(d loadshare.Decision) {
			c.tr.Point(t.ID, c.id, trace.EvH2, 0, int64(d.Target), boolArg(d.Ship), p.Now())
		}
	}
	d := loadshare.ChooseSite(params)
	if !d.Ship {
		return false
	}
	c.shipTxn(t, d.Target)
	return true
}

// loadQuery asks the server for object locations and candidate loads,
// blocking until the reply or the transaction's deadline. Under fault
// injection the query is retried with backoff: LoadQuery/LoadReply is
// an unreliable, idempotent exchange, so resending is always safe.
func (c *Client) loadQuery(p *sim.Proc, t *txn.Transaction) *proto.LoadReply {
	pt := c.ensurePending(t)
	pt.wantLoad = true
	pt.loadReply = nil
	pt.netAccum = 0
	send := func(attempt int) {
		pt.netAccum += c.toServer(netsim.KindLoadQuery, netsim.ControlBytes, proto.LoadQuery{
			Client:   c.id,
			Txn:      t.ID,
			Objs:     t.Objects(),
			Modes:    t.Modes(),
			Deadline: t.Deadline,
			Attempt:  attempt,
			Load:     c.loadReport(),
		})
	}
	send(0)
	ok := c.awaitReply(p, t, pt, true, func() bool { return pt.loadReply != nil }, send)
	pt.wantLoad = false
	if !ok {
		return nil
	}
	return pt.loadReply
}

// awaitReply waits for done on pt.sig until the transaction's deadline.
// In fault-free runs (rto == 0) it is exactly one bounded wait. Under
// fault injection it retransmits via resend on an exponentially
// backed-off timer (capped at 8x the base timeout), always bounded by
// the deadline, so a request or reply lost to the fault layer is
// recovered instead of hanging the transaction until its deadline.
//
// owns marks the call as running in the transaction's attributing
// context (a subtask must not mark its parent's trace): each completed
// wait closes into network + lock-wait via the transit accumulated in
// pt.netAccum, and each expired retransmission window closes into the
// retry bucket.
func (c *Client) awaitReply(p *sim.Proc, t *txn.Transaction, pt *pendingTxn, owns bool, done func() bool, resend func(attempt int)) bool {
	markWait := func() {
		if owns {
			c.tr.MarkWait(t.ID, c.id, p.Now(), pt.netAccum)
		}
		pt.netAccum = 0
	}
	if c.rto <= 0 {
		ok := p.WaitForTimeout(pt.sig, t.Deadline, done)
		markWait()
		return ok
	}
	rto := c.rto
	for attempt := 1; ; attempt++ {
		next := p.Now() + rto
		if next >= t.Deadline {
			ok := p.WaitForTimeout(pt.sig, t.Deadline, done)
			markWait()
			return ok
		}
		if p.WaitForTimeout(pt.sig, next, done) {
			markWait()
			return true
		}
		c.Retries++
		if owns {
			c.tr.MarkRetry(t.ID, c.id, p.Now(), attempt)
		}
		pt.netAccum = 0
		resend(attempt)
		if rto < 8*c.rto {
			rto *= 2
		}
	}
}

func loadsBySite(loads []proto.LoadReport) map[netsim.SiteID]proto.LoadReport {
	m := make(map[netsim.SiteID]proto.LoadReport, len(loads))
	for _, l := range loads {
		m[l.Client] = l
	}
	return m
}

// shipTxn sends a whole transaction to target for execution. It does
// not block: the target becomes the single writer of the transaction's
// status, and the TxnResult message back to the origin is informational
// ("the results of executing the transaction are communicated to the
// originating client").
func (c *Client) shipTxn(t *txn.Transaction, target netsim.SiteID) {
	c.ShippedOut++
	c.m.ShippedTxns++
	t.Shipped = true
	c.tr.Point(t.ID, c.id, trace.EvShippedTxn, 0, int64(target), 0, c.env.Now())
	c.toPeer(target, netsim.KindTxnShip, netsim.TxnShipBytes, proto.TxnShip{
		T: t, ReplyTo: c.id, Load: c.loadReport(),
	})
}

// tryDecompose implements Section 3.2: query the objects' locations,
// group the accesses by caching site, and run the groups as independent
// subtasks at those sites. All subtasks must meet the parent deadline
// for the transaction to succeed. Returns false when the transaction is
// not profitably decomposable (fewer than two groups or no location
// data), in which case the caller falls through to the normal path.
func (c *Client) tryDecompose(p *sim.Proc, t *txn.Transaction) bool {
	reply := c.loadQuery(p, t)
	if reply == nil || len(reply.Locations) == 0 {
		return false
	}
	partOf, siteOf := loadshare.GroupByLocation(c.id, t.Objects(), reply.Locations)
	subs := t.Decompose(partOf, c.cfg.MaxSubtasks)
	if subs == nil {
		return false
	}
	// Only worth the fan-out risk (every subtask must meet the parent
	// deadline) when each remote materialization covers enough data.
	for _, sub := range subs {
		if siteOf[sub.Key] != c.id && len(sub.Ops) < 2 {
			return false
		}
	}
	c.m.DecomposedTxns++
	c.tr.Point(t.ID, c.id, trace.EvDecomposed, 0, int64(len(subs)), 0, p.Now())
	results := make([]*shipWait, len(subs))
	for i, sub := range subs {
		c.m.SubtasksRun++
		w := &shipWait{sig: sim.NewSignal(c.env)}
		results[i] = w
		target := siteOf[sub.Key]
		if target == c.id || c.peers[target] == nil {
			// Local subtask (materialization at the origin).
			sub := sub
			c.env.Go(fmt.Sprintf("sub-%d-%d", t.ID, sub.Index), func(sp *sim.Proc) {
				committed := c.execute(sp, t, sub, false)
				w.done = true
				w.committed = committed
				w.sig.Broadcast()
			})
			continue
		}
		c.shipWaits[shipKey{id: t.ID, sub: sub.Index}] = w
		c.toPeer(target, netsim.KindTxnShip, netsim.TxnShipBytes, proto.TxnShip{
			T: t, Sub: sub, ReplyTo: c.id, Load: c.loadReport(),
		})
	}
	// Answer synthesis: every subtask must finish in time for the
	// parent to succeed (the Section 3.2 failure rule).
	grace := t.Deadline + c.cfg.MeanSlack
	for _, w := range results {
		p.WaitForTimeout(w.sig, grace, func() bool { return w.done })
	}
	c.tr.Mark(t.ID, c.id, trace.CompFanout, p.Now())
	for _, sub := range subs {
		delete(c.shipWaits, shipKey{id: t.ID, sub: sub.Index})
	}
	committed := p.Now() <= t.Deadline
	for _, w := range results {
		if !w.done || !w.committed {
			committed = false
		}
	}
	c.finishParent(t, committed)
	return true
}

func (c *Client) finishParent(t *txn.Transaction, committed bool) {
	if committed {
		t.Status = txn.StatusCommitted
	} else {
		t.Status = txn.StatusMissed
	}
	t.Finished = c.env.Now()
	t.ExecSite = c.id
	c.tr.Finish(t, c.id, c.env.Now())
}

// execute runs a transaction (or subtask) at this site: queue for an
// executor slot in deadline order, gather the objects, run, and commit.
// origin is true when this site is also the transaction's origin (the
// tentative/ship decisions of the load-sharing path only apply there).
// It reports whether the work committed by the deadline.
func (c *Client) execute(p *sim.Proc, t *txn.Transaction, sub *txn.Subtask, origin bool) bool {
	ops := t.Ops
	length := t.Length
	if sub != nil {
		ops = sub.Ops
		length = sub.Length
	}
	// Only the context that owns the transaction's status attributes its
	// trace: a subtask must not mark its parent's timeline.
	owns := sub == nil
	now := p.Now()
	slack := t.Deadline - now
	if slack <= 0 || !p.AcquireTimeout(c.slots, c.priorityOf(t), slack) {
		if owns {
			c.tr.Mark(t.ID, c.id, trace.CompQueue, p.Now())
		}
		return c.finish(p, t, sub, false)
	}
	defer c.slots.Release()
	// Whatever way this attempt ends, forward any migrations this
	// transaction came to own and answer recalls deferred on its pins.
	defer c.afterRelease(ops, t.ID)
	if owns {
		c.tr.Mark(t.ID, c.id, trace.CompQueue, p.Now())
		c.tr.Point(t.ID, c.id, trace.EvSlotAcquired, 0, 0, 0, p.Now())
	}
	if p.Now() > t.Deadline {
		return c.finish(p, t, sub, false)
	}
	t.Status = txn.StatusRunning
	start := p.Now()

	owner := lockmgr.OwnerID(t.ID)
	if c.localLocks != nil {
		ok := c.lockLocal(p, t, ops, owner)
		if owns {
			c.tr.Mark(t.ID, c.id, trace.CompLockWait, p.Now())
		}
		if !ok {
			c.localLocks.ReleaseAll(owner)
			return c.finish(p, t, sub, false)
		}
		defer c.localLocks.ReleaseAll(owner)
	}

	// Speculative processing (future-work extension): compute against
	// the locally present copies while the missing objects and upgrades
	// are in flight, and keep the overlapped share of the work if those
	// copies' versions validate once everything is pinned.
	specVersions, specFraction := c.speculationCandidates(ops)
	specStart := p.Now()

	entries, ok := c.materialize(p, t, ops, origin, owns)
	if !ok {
		return c.finish(p, t, sub, false)
	}
	if t.Shipped && origin {
		// The tentative round decided to ship this transaction away;
		// the target executes it and owns its status.
		return false
	}
	if p.Now() > t.Deadline {
		// Late already: abandon rather than burn the executor slot.
		for _, e := range entries {
			c.objects.Unpin(e)
		}
		return c.finish(p, t, sub, false)
	}

	if specVersions != nil {
		c.m.SpeculativeRuns++
		if c.speculationValid(specVersions) {
			c.m.SpeculationHits++
			// Only the share of the computation whose data was present
			// could run during the fetch.
			credit := time.Duration(float64(p.Now()-specStart) * specFraction)
			if credit > length {
				credit = length
			}
			length -= credit
		}
	}
	p.Sleep(length)

	// Commit: apply updates to the cached copies, logging each write,
	// then force the log tail (group commit) and release pins.
	var lastLSN int64
	for _, op := range ops {
		e := c.objects.Peek(op.Obj)
		if e == nil {
			panic(fmt.Sprintf("client %d: committed object %d not cached", c.id, op.Obj))
		}
		if op.Write {
			e.Version++
			e.Dirty = true
			if c.onCommit != nil {
				c.onCommit(op.Obj, e.Version)
			}
			if c.log != nil {
				lastLSN = c.log.Append(int64(t.ID), op.Obj, e.Version)
			}
			if c.cfg.WriteThrough && c.migrations[op.Obj] == nil {
				// Write-through ablation: push the update to the server
				// now (keeping the exclusive lock) instead of holding a
				// dirty copy until a callback.
				e.Dirty = false
				c.toServer(netsim.KindObjectReturn, netsim.ObjectBytes, proto.ObjReturn{
					Client: c.id, Obj: op.Obj, HasData: true, Version: e.Version,
					UpdateOnly: true, Epoch: c.epochs[op.Obj], Load: c.loadReport(),
				})
			}
		}
	}
	if c.log != nil && lastLSN > 0 {
		c.log.ForceTo(p, int64(t.ID), lastLSN)
	}
	for _, e := range entries {
		c.objects.Unpin(e)
	}
	c.atl.Observe(p.Now() - start)
	if owns {
		c.tr.Mark(t.ID, c.id, trace.CompExec, p.Now())
	}
	committed := p.Now() <= t.Deadline
	return c.finish(p, t, sub, committed)
}

// speculationCandidates decides what part of a transaction can start
// computing before its locks arrive: any access whose data is already in
// the cache (even in a weaker lock mode) can be processed speculatively
// while the misses and upgrades are in flight. It returns the versions
// the speculative computation is based on and the fraction of the
// access set they cover. A nil map means speculation does not apply —
// disabled, nothing missing (no wait to overlap), or nothing present
// (no data to compute against).
func (c *Client) speculationCandidates(ops []txn.Op) (map[lockmgr.ObjectID]int64, float64) {
	if !c.loadShare || !c.cfg.UseSpeculation {
		return nil, 0
	}
	present := make(map[lockmgr.ObjectID]int64, len(ops))
	missing := 0
	for _, op := range ops {
		e := c.objects.Peek(op.Obj)
		switch {
		case e == nil:
			missing++
		case modeSufficient(e.Mode, op.Mode()):
			present[op.Obj] = e.Version
		default:
			missing++ // upgrade in flight, but the data is at hand
			present[op.Obj] = e.Version
		}
	}
	if missing == 0 || len(present) == 0 {
		return nil, 0
	}
	return present, float64(len(present)) / float64(len(ops))
}

// speculationValid checks, after materialization, that every version the
// speculative computation was based on is still the current one.
func (c *Client) speculationValid(spec map[lockmgr.ObjectID]int64) bool {
	for obj, v := range spec {
		e := c.objects.Peek(obj)
		if e == nil || e.Version != v {
			return false
		}
	}
	return true
}

// priorityOf maps a transaction to its executor-queue priority: its
// deadline under the paper's ED policy, its arrival time under the FCFS
// baseline.
func (c *Client) priorityOf(t *txn.Transaction) float64 {
	if c.cfg.Scheduling == config.SchedFCFS {
		return t.Arrival.Seconds()
	}
	return t.Deadline.Seconds()
}

// lockLocal serializes concurrent local transactions over the same
// objects (only active when ClientExecutors > 1).
func (c *Client) lockLocal(p *sim.Proc, t *txn.Transaction, ops []txn.Op, owner lockmgr.OwnerID) bool {
	sorted := append([]txn.Op(nil), ops...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Obj < sorted[j].Obj })
	for _, op := range sorted {
		err := c.localLocks.LockWait(p, &lockmgr.Request{
			Obj: op.Obj, Owner: owner, Mode: op.Mode(), Deadline: t.Deadline,
		})
		if err != nil {
			return false
		}
	}
	return true
}

// materialize brings every object of the access set into the cache with
// a sufficient lock and pins it. Presence can be lost to callbacks while
// fetching, so it loops: (1) ensure presence, fetching misses from the
// server; (2) pin atomically; on any loss, refetch — until the deadline.
func (c *Client) materialize(p *sim.Proc, t *txn.Transaction, ops []txn.Op, origin, owns bool) ([]*cache.Entry, bool) {
	for attempt := 0; ; attempt++ {
		var missing []txn.Op
		for _, op := range ops {
			e := c.objects.Peek(op.Obj)
			sufficient := e != nil && modeSufficient(e.Mode, op.Mode())
			if attempt == 0 && c.measuring() {
				c.m.RecordCacheAccess(sufficient)
			}
			if !sufficient {
				missing = append(missing, op)
				continue
			}
			_, tier, evicted := c.objects.Lookup(op.Obj)
			c.returnEvicted(evicted)
			if tier == cache.TierDisk {
				c.chargeLocalDisk(p)
				if owns {
					c.tr.Mark(t.ID, c.id, trace.CompExec, p.Now())
				}
			}
		}
		if len(missing) == 0 {
			if entries, ok := c.pinAll(ops); ok {
				return entries, true
			}
			// Lost something between presence check and pinning (a
			// blocking disk-tier charge let a recall in). Refetch.
			c.m.Refetches++
			continue
		}
		if attempt > 0 {
			c.m.Refetches++
		}
		if p.Now() > t.Deadline {
			return nil, false
		}
		if !c.fetch(p, t, missing, attempt, origin, owns) {
			return nil, false
		}
		if t.Shipped && origin {
			return nil, true // shipped away mid-gather; caller checks t.Shipped
		}
	}
}

// pinAll pins the whole access set atomically (no blocking between
// checks). It fails if any object lost presence or mode.
func (c *Client) pinAll(ops []txn.Op) ([]*cache.Entry, bool) {
	entries := make([]*cache.Entry, 0, len(ops))
	for _, op := range ops {
		e := c.objects.Peek(op.Obj)
		if e == nil || !modeSufficient(e.Mode, op.Mode()) {
			for _, pinned := range entries {
				c.objects.Unpin(pinned)
			}
			return nil, false
		}
		c.objects.Pin(e)
		entries = append(entries, e)
	}
	return entries, true
}

func modeSufficient(have, need lockmgr.Mode) bool {
	return have == lockmgr.ModeExclusive || need == lockmgr.ModeShared && have == lockmgr.ModeShared
}

// fetch requests the missing objects from the server and waits for them.
// At the origin of a load-sharing client's first round it sends one
// tentative probe for the whole set; a conflict reply then triggers the
// H2 ship-or-stay decision. Otherwise objects are fetched one at a time
// (the paper's sequential request/response loop — a client keeps at most
// one firm request outstanding). Returns false when the transaction can
// no longer proceed here (deadline, denial) — or when it was shipped
// away (t.Shipped distinguishes that case).
func (c *Client) fetch(p *sim.Proc, t *txn.Transaction, missing []txn.Op, attempt int, origin, owns bool) bool {
	pt := c.ensurePending(t)
	defer c.releasePending(pt)

	if !(c.loadShare && c.cfg.UseH2 && origin && attempt == 0) {
		return c.fetchSequential(p, t, pt, missing, owns)
	}

	// Tentative probe: one message covering every missing object.
	objs := make([]lockmgr.ObjectID, len(missing))
	modes := make([]lockmgr.Mode, len(missing))
	now := p.Now()
	for i, op := range missing {
		objs[i] = op.Obj
		modes[i] = op.Mode()
		pt.want[op.Obj] = op.Mode()
		pt.sent[op.Obj] = now
		c.waiters[op.Obj] = append(c.waiters[op.Obj], pt)
	}
	pt.netAccum = 0
	sendProbe := func(attempt int) {
		pt.netAccum += c.toServer(netsim.KindObjectRequest, netsim.ControlBytes, proto.ProbeRequest{
			Client:   c.id,
			Txn:      t.ID,
			Objs:     objs,
			Modes:    modes,
			Deadline: t.Deadline,
			Attempt:  attempt,
			Load:     c.loadReport(),
		})
	}
	sendProbe(0)
	settled := func() bool {
		return len(pt.want) == 0 || pt.denied != 0 || pt.gotConflict
	}
	// A retried probe is idempotent at the server: already-granted locks
	// hit the lock table's re-entrant fast path and the objects ship
	// again over the reliable channel.
	if !c.awaitReply(p, t, pt, owns, settled, sendProbe) {
		return false
	}
	if pt.denied != 0 {
		if pt.denied == proto.DenyDeadlock {
			t.Status = txn.StatusAborted
			t.Finished = p.Now()
		}
		return false
	}
	if !pt.gotConflict {
		return true // everything granted
	}
	// Tentative round hit conflicts: decide where this transaction
	// should run (H2), then either ship it or commit to local
	// processing.
	pt.gotConflict = false
	conflicts := pt.conflicts
	loads := pt.loads
	dataCounts := make(map[netsim.SiteID]int, len(pt.dataCounts))
	for _, dc := range pt.dataCounts {
		dataCounts[dc.Site] = dc.Count
	}
	params := loadshare.Params{
		Origin:             c.id,
		Now:                p.Now(),
		Deadline:           t.Deadline,
		Conflicts:          conflicts,
		Loads:              loadsBySite(loads),
		OriginQueueLen:     c.slots.QueueLen(),
		OriginATL:          c.atl.Mean(),
		Executors:          c.cfg.ClientExecutors,
		DataCounts:         dataCounts,
		RequireImprovement: true,
		// Ship only to a site caching more of this transaction's data
		// than the origin currently does — otherwise the move trades
		// one blocked object for several lost cache hits.
		MinShipData: len(t.Ops) - len(missing) + 1,
	}
	if c.tr.Enabled() {
		params.Trace = func(d loadshare.Decision) {
			c.tr.Point(t.ID, c.id, trace.EvH2, 0, int64(d.Target), boolArg(d.Ship), p.Now())
		}
	}
	d := loadshare.ChooseSite(params)
	if d.Ship {
		c.shipTxn(t, d.Target)
		return true // t.Shipped signals the caller
	}
	// Stay local: one commit message asks for everything outstanding.
	// The tentative round granted nothing, so pt.want and the waiter
	// index still hold every missing object — no re-registration. The
	// response clock restarts here: the probe was site-selection
	// control traffic, and this is the firm object request Table 3
	// measures.
	now = p.Now()
	for _, op := range missing {
		pt.sent[op.Obj] = now
	}
	pt.netAccum = 0
	sendCommit := func(attempt int) {
		pt.netAccum += c.toServer(netsim.KindObjectRequest, netsim.ControlBytes, proto.CommitRequest{
			Client:   c.id,
			Txn:      t.ID,
			Deadline: t.Deadline,
			Objs:     objs,
			Modes:    modes,
			Attempt:  attempt,
			Load:     c.loadReport(),
		})
	}
	sendCommit(0)
	granted := func() bool { return len(pt.want) == 0 || pt.denied != 0 }
	if !c.awaitReply(p, t, pt, owns, granted, sendCommit) {
		return false
	}
	if pt.denied != 0 {
		if pt.denied == proto.DenyDeadlock {
			t.Status = txn.StatusAborted
			t.Finished = p.Now()
		}
		return false
	}
	return true
}

// fetchSequential fetches the missing objects one at a time: send a firm
// request, wait for the object (or a denial or the deadline), move on.
func (c *Client) fetchSequential(p *sim.Proc, t *txn.Transaction, pt *pendingTxn, missing []txn.Op, owns bool) bool {
	for _, op := range missing {
		if p.Now() > t.Deadline {
			return false
		}
		obj := op.Obj
		pt.want[obj] = op.Mode()
		pt.sent[obj] = p.Now()
		c.waiters[obj] = append(c.waiters[obj], pt)
		pt.netAccum = 0
		send := func(attempt int) {
			pt.netAccum += c.toServer(netsim.KindObjectRequest, netsim.ControlBytes, proto.ObjRequest{
				Client:   c.id,
				Txn:      t.ID,
				Obj:      obj,
				Mode:     op.Mode(),
				Deadline: t.Deadline,
				Attempt:  attempt,
				Load:     c.loadReport(),
			})
		}
		send(0)
		arrived := func() bool {
			_, waiting := pt.want[obj]
			return !waiting || pt.denied != 0
		}
		if !c.awaitReply(p, t, pt, owns, arrived, send) {
			return false
		}
		if pt.denied != 0 {
			if pt.denied == proto.DenyDeadlock {
				t.Status = txn.StatusAborted
				t.Finished = p.Now()
			}
			return false
		}
	}
	return true
}

func (c *Client) ensurePending(t *txn.Transaction) *pendingTxn {
	pt, ok := c.pending[t.ID]
	if !ok {
		pt = &pendingTxn{
			t:    t,
			want: make(map[lockmgr.ObjectID]lockmgr.Mode),
			sent: make(map[lockmgr.ObjectID]time.Duration),
			sig:  sim.NewSignal(c.env),
		}
		c.pending[t.ID] = pt
	}
	return pt
}

// releasePending unregisters the transaction's outstanding waits.
func (c *Client) releasePending(pt *pendingTxn) {
	for obj := range pt.want {
		c.dropWaiter(obj, pt)
		delete(pt.want, obj)
	}
	if !pt.wantLoad {
		delete(c.pending, pt.t.ID)
	}
}

func (c *Client) dropWaiter(obj lockmgr.ObjectID, pt *pendingTxn) {
	ws := c.waiters[obj]
	for i, w := range ws {
		if w == pt {
			c.waiters[obj] = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(c.waiters[obj]) == 0 {
		delete(c.waiters, obj)
	}
}

// finish records a terminal state for work executed here. For subtasks
// and shipped-in transactions it also reports the result to the origin.
func (c *Client) finish(p *sim.Proc, t *txn.Transaction, sub *txn.Subtask, committed bool) bool {
	now := p.Now()
	if sub == nil {
		if committed {
			t.Status = txn.StatusCommitted
		} else if t.Status != txn.StatusAborted {
			t.Status = txn.StatusMissed
		}
		t.Finished = now
		t.ExecSite = c.id
		c.tr.Finish(t, c.id, now)
		if t.Origin != c.id {
			c.toPeer(t.Origin, netsim.KindTxnResult, netsim.ResultBytes, proto.TxnResult{
				Txn: t.ID, SubIndex: -1, Committed: committed, ExecSite: c.id,
			})
		}
	} else if t.Origin != c.id {
		c.toPeer(t.Origin, netsim.KindTxnResult, netsim.ResultBytes, proto.TxnResult{
			Txn: t.ID, SubIndex: sub.Index, IsSub: true, Committed: committed, ExecSite: c.id,
		})
	}
	return committed
}

func (c *Client) chargeLocalDisk(p *sim.Proc) {
	p.Acquire(c.localDisk, 0)
	p.Sleep(c.cfg.DiskRead)
	c.localDisk.Release()
}
