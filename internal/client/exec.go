package client

import (
	"fmt"
	"slices"
	"time"

	"siteselect/internal/cache"
	"siteselect/internal/config"
	"siteselect/internal/loadshare"
	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
	"siteselect/internal/proto"
	"siteselect/internal/sim"
	"siteselect/internal/trace"
	"siteselect/internal/txn"
	"siteselect/internal/wal"
)

func boolArg(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// txnMachine runs one transaction (or subtask) lifecycle as an
// event-driven state machine: the Section 4 submit path (decomposition,
// H1 admission, H2 site selection) followed by execution — executor
// slot, local locks, materialization with tentative probes or
// sequential fetches, computation, commit and log force. Each state
// mirrors the corresponding stretch of the earlier blocking coroutine
// between two park points, so the event sequence is identical; the
// deferred unwinds of the coroutine (local-lock release, migration
// forwarding, slot release) become the explicit unwind() in LIFO order.
type txnMachine struct {
	task sim.Task
	c    *Client
	t    *txn.Transaction
	sub  *txn.Subtask
	// origin marks the transaction's originating site (the tentative
	// and ship decisions only apply there); owns marks the context that
	// owns the transaction's status and trace (sub == nil).
	origin bool
	owns   bool
	// reportTo collects a local decomposition subtask's result for the
	// parent's fanout wait.
	reportTo *shipWait
	pc       uint8

	// request/reply exchange state (the blocking awaitReply).
	pt        *pendingTxn
	sendKind  uint8
	awRTO     time.Duration
	awAttempt int
	awFinal   bool
	awPC      uint8
	wft       wftOp

	// probe/commit request vectors and the sequential-fetch cursor.
	objs    []lockmgr.ObjectID
	modes   []lockmgr.Mode
	seqIdx  int
	curObj  lockmgr.ObjectID
	curMode lockmgr.Mode

	// decomposition fanout.
	subs    []*txn.Subtask
	results []*shipWait
	waitIdx int
	grace   time.Duration

	// execution.
	ops          []txn.Op
	length       time.Duration
	start        time.Duration
	slotHeld     bool
	locksHeld    bool
	lockOps      []txn.Op
	lockReqs     []lockmgr.Request
	lockIdx      int
	lockStarted  bool
	lockOp       lockmgr.LockOp
	entries      []*cache.Entry
	spec         []specEntry
	specOn       bool
	specFraction float64
	specStart    time.Duration
	lastLSN      int64
	force        wal.ForceOp

	// materialization.
	attempt int
	missing []txn.Op
	scanIdx int
	diskPC  uint8
}

// Transaction machine states.
const (
	tsSubmit uint8 = iota
	tsH1
	tsShipArrive
	tsDecomposeQuery
	tsShipQuery
	tsFanoutWait
	tsExecBegin
	tsSlotWait
	tsSlotHeld
	tsLock
	tsMatBegin
	tsScan
	tsScanDone
	tsProbeWait
	tsCommitWait
	tsSeqSend
	tsSeqWait
	tsMaterialized
	tsRan
	tsForce
	tsCommitDone
	tsDone
)

// Entry modes for spawnTxn.
const (
	enOrigin    uint8 = iota // submitted at this site (full Section 4 path)
	enShipWhole              // whole transaction shipped in by a peer
	enShipSub                // decomposition subtask shipped in by a peer
	enLocalSub               // decomposition subtask run at the origin
)

// Request kinds for resend.
const (
	skLoad uint8 = iota
	skProbe
	skCommit
	skSeq
)

// Local-disk charge sub-states.
const (
	dcIdle uint8 = iota
	dcAcquire
	dcSleep
	dcRelease
)

// spawnTxn starts a transaction machine in the given entry mode,
// reusing a machine from the client's free list when one is available.
func (c *Client) spawnTxn(t *txn.Transaction, sub *txn.Subtask, entry uint8, reportTo *shipWait) {
	var m *txnMachine
	if n := len(c.txnFree); n > 0 {
		m = c.txnFree[n-1]
		c.txnFree[n-1] = nil
		c.txnFree = c.txnFree[:n-1]
	} else {
		m = &txnMachine{}
	}
	*m = txnMachine{
		c: c, t: t, sub: sub, reportTo: reportTo,
		objs: m.objs[:0], modes: m.modes[:0],
		subs: m.subs[:0], results: m.results[:0],
		lockOps: m.lockOps[:0], lockReqs: m.lockReqs[:0],
		entries: m.entries[:0], missing: m.missing[:0],
	}
	m.owns = sub == nil
	switch entry {
	case enOrigin:
		m.origin = true
		m.pc = tsSubmit
	case enShipWhole:
		m.pc = tsShipArrive
	default:
		m.pc = tsExecBegin
	}
	c.env.Spawn(&m.task, m)
}

func (m *txnMachine) Resume() {
	for m.pc != tsDone {
		if m.step() {
			return
		}
	}
	m.task.Detach()
	m.c.recycleTxn(m)
}

// recycleTxn clears a finished machine's pointer-bearing slices — to
// full capacity, since mid-run truncations leave stale pointers beyond
// the length — and returns it to the free list. The remaining fields
// are overwritten wholesale by the next spawnTxn.
func (c *Client) recycleTxn(m *txnMachine) {
	clear(m.subs[:cap(m.subs)])
	clear(m.results[:cap(m.results)])
	clear(m.entries[:cap(m.entries)])
	c.txnFree = append(c.txnFree, m)
}

// step advances the machine by one state; true means it parked.
func (m *txnMachine) step() bool {
	c, t := m.c, m.t
	switch m.pc {
	case tsSubmit:
		// Entry point of the load-sharing algorithm for a transaction
		// initiated at this client (Section 4 pseudocode).
		if c.loadShare && c.cfg.UseDecomposition && t.Decomposable {
			m.beginLoadQuery(tsDecomposeQuery)
			return false
		}
		m.pc = tsH1
	case tsH1:
		return m.stepH1()
	case tsShipArrive:
		// The target now owns the trace: the hop from the origin's ship
		// decision to here is network time.
		t.ExecSite = c.id
		c.tr.MarkShipArrived(t.ID, c.id, m.task.Now())
		m.pc = tsExecBegin
	case tsDecomposeQuery:
		done, ok := m.awaitStep()
		if !done {
			return true
		}
		m.pt.wantLoad = false
		var reply *proto.LoadReply
		var replyBuf proto.LoadReply
		if ok {
			// Copy the reply out before recycling the pending record; the
			// consumer runs synchronously in this step.
			replyBuf = m.pt.loadReply
			reply = &replyBuf
		}
		c.releasePending(m.pt)
		m.pt = nil
		if !m.tryDecompose(reply) {
			m.pc = tsH1
		}
	case tsShipQuery:
		done, ok := m.awaitStep()
		if !done {
			return true
		}
		m.pt.wantLoad = false
		var reply *proto.LoadReply
		var replyBuf proto.LoadReply
		if ok {
			replyBuf = m.pt.loadReply
			reply = &replyBuf
		}
		c.releasePending(m.pt)
		m.pt = nil
		if reply != nil && m.shipAfterQuery(reply) {
			m.pc = tsDone
			return false
		}
		m.pc = tsExecBegin
	case tsFanoutWait:
		return m.stepFanout()
	case tsExecBegin:
		return m.stepExecBegin()
	case tsSlotWait:
		if m.task.ResTimedOut() {
			if m.owns {
				c.tr.Mark(t.ID, c.id, trace.CompQueue, m.task.Now())
			}
			m.execDone(false)
			return false
		}
		m.pc = tsSlotHeld
	case tsSlotHeld:
		return m.stepSlotHeld()
	case tsLock:
		return m.stepLock()
	case tsMatBegin:
		m.spec, m.specOn, m.specFraction = c.speculationCandidates(m.ops, m.spec[:0])
		m.specStart = m.task.Now()
		m.attempt = 0
		m.missing = m.missing[:0]
		m.scanIdx = 0
		m.pc = tsScan
	case tsScan:
		return m.stepScan()
	case tsScanDone:
		return m.stepScanDone()
	case tsProbeWait:
		return m.stepProbeWait()
	case tsCommitWait:
		done, ok := m.awaitStep()
		if !done {
			return true
		}
		if !ok || m.denied() {
			m.fetchFail()
			return false
		}
		m.fetchOK()
	case tsSeqSend:
		return m.stepSeqSend()
	case tsSeqWait:
		done, ok := m.awaitStep()
		if !done {
			return true
		}
		if !ok || m.denied() {
			m.fetchFail()
			return false
		}
		m.seqIdx++
		m.pc = tsSeqSend
	case tsMaterialized:
		return m.stepMaterialized()
	case tsRan:
		m.stepCommit()
	case tsForce:
		if !m.force.Step(&m.task) {
			return true
		}
		m.pc = tsCommitDone
	case tsCommitDone:
		for _, e := range m.entries {
			c.objects.Unpin(e)
		}
		clear(m.entries)
		m.entries = m.entries[:0]
		now := m.task.Now()
		c.atl.Observe(now - m.start)
		if m.owns {
			c.tr.Mark(t.ID, c.id, trace.CompExec, now)
		}
		m.execDone(now <= t.Deadline)
	}
	return false
}

// beginLoadQuery starts a location/load query: register interest, send,
// and arm the reply wait. next is the state that consumes the reply.
func (m *txnMachine) beginLoadQuery(next uint8) {
	pt := m.c.ensurePending(m.t)
	m.pt = pt
	pt.wantLoad = true
	pt.hasLoad = false
	pt.loadReply = proto.LoadReply{}
	pt.netAccum = 0
	m.sendKind = skLoad
	m.resend(0)
	m.awaitArm()
	m.pc = next
}

// stepH1 applies the H1 admission heuristic with a concurrent executor
// pool: n waiting transactions drain k at a time, so the expected start
// delay is n·ATL/k. Infeasible transactions ask the server where their
// objects live and how loaded the candidates are (tsShipQuery).
func (m *txnMachine) stepH1() bool {
	c, t := m.c, m.t
	if c.loadShare && c.cfg.UseH1 {
		n := c.slots.QueueLen()
		atl := c.atl.Mean() / time.Duration(c.cfg.ClientExecutors)
		feasible := loadshare.H1Feasible(m.task.Now(), n, atl, t.Deadline)
		c.tr.Point(t.ID, c.id, trace.EvH1, 0, int64(n), boolArg(feasible), m.task.Now())
		if !feasible {
			c.m.H1Rejections++
			m.beginLoadQuery(tsShipQuery)
			return false
		}
	}
	m.pc = tsExecBegin
	return false
}

// shipAfterQuery is the H1-infeasible branch after the load reply: pick
// the most suitable site (H2) and ship. False means the origin remains
// the best choice (the transaction then queues locally anyway).
func (m *txnMachine) shipAfterQuery(reply *proto.LoadReply) bool {
	c, t := m.c, m.t
	if reply == nil {
		return false
	}
	now := m.task.Now()
	loads, _ := c.h2Scratch()
	for _, l := range reply.Loads {
		loads[l.Client] = l
	}
	params := loadshare.Params{
		Origin:         c.id,
		Now:            now,
		Deadline:       t.Deadline,
		Locations:      reply.Locations,
		Loads:          loads,
		OriginQueueLen: c.slots.QueueLen(),
		OriginATL:      c.atl.Mean(),
		Executors:      c.cfg.ClientExecutors,
	}
	if c.tr.Enabled() {
		params.Trace = func(d loadshare.Decision) {
			c.tr.Point(t.ID, c.id, trace.EvH2, 0, int64(d.Target), boolArg(d.Ship), now)
		}
	}
	d := loadshare.ChooseSite(params)
	if !d.Ship {
		return false
	}
	c.shipTxn(t, d.Target)
	return true
}

// tryDecompose implements Section 3.2 after the location reply: group
// the accesses by caching site and run the groups as independent
// subtasks at those sites. All subtasks must meet the parent deadline
// for the transaction to succeed. False means the transaction is not
// profitably decomposable and the caller falls through to H1.
func (m *txnMachine) tryDecompose(reply *proto.LoadReply) bool {
	c, t := m.c, m.t
	if reply == nil || len(reply.Locations) == 0 {
		return false
	}
	partOf, siteOf := loadshare.GroupByLocation(c.id, t.Objects(), reply.Locations)
	subs := t.Decompose(partOf, c.cfg.MaxSubtasks)
	if subs == nil {
		return false
	}
	// Only worth the fan-out risk (every subtask must meet the parent
	// deadline) when each remote materialization covers enough data.
	for _, sub := range subs {
		if siteOf[sub.Key] != c.id && len(sub.Ops) < 2 {
			return false
		}
	}
	c.m.DecomposedTxns++
	c.tr.Point(t.ID, c.id, trace.EvDecomposed, 0, int64(len(subs)), 0, m.task.Now())
	m.subs = subs
	if cap(m.results) >= len(subs) {
		m.results = m.results[:len(subs)]
	} else {
		m.results = make([]*shipWait, len(subs))
	}
	for i, sub := range subs {
		c.m.SubtasksRun++
		w := &shipWait{sig: sim.NewSignal(c.env)}
		m.results[i] = w
		target := siteOf[sub.Key]
		if target == c.id || c.peers[target] == nil {
			// Local subtask (materialization at the origin).
			c.spawnTxn(t, sub, enLocalSub, w)
			continue
		}
		c.addShipWait(shipKey{id: t.ID, sub: sub.Index}, w)
		c.toPeer(target, netsim.KindTxnShip, netsim.TxnShipBytes, proto.TxnShip{
			T: t, Sub: sub, ReplyTo: c.id, Load: c.loadReport(),
		})
	}
	// Answer synthesis: every subtask must finish in time for the
	// parent to succeed (the Section 3.2 failure rule).
	m.grace = t.Deadline + c.cfg.MeanSlack
	m.waitIdx = 0
	m.pc = tsFanoutWait
	return true
}

// stepFanout waits for every subtask result in turn, each bounded by
// the parent's grace deadline, then synthesizes the answer.
func (m *txnMachine) stepFanout() bool {
	c, t := m.c, m.t
	for m.waitIdx < len(m.results) {
		w := m.results[m.waitIdx]
		if !m.wft.armed {
			m.wft.arm(w.sig, m.grace)
		}
		done, _ := m.wft.step(&m.task, w.done)
		if !done {
			return true
		}
		m.waitIdx++
	}
	now := m.task.Now()
	c.tr.Mark(t.ID, c.id, trace.CompFanout, now)
	for _, sub := range m.subs {
		c.deleteShipWait(shipKey{id: t.ID, sub: sub.Index})
	}
	committed := now <= t.Deadline
	for _, w := range m.results {
		if !w.done || !w.committed {
			committed = false
		}
	}
	c.finishParent(t, committed)
	m.pc = tsDone
	return false
}

// stepExecBegin queues for an executor slot in deadline order.
func (m *txnMachine) stepExecBegin() bool {
	c, t := m.c, m.t
	m.ops, m.length = t.Ops, t.Length
	if m.sub != nil {
		m.ops, m.length = m.sub.Ops, m.sub.Length
	}
	now := m.task.Now()
	slack := t.Deadline - now
	if slack <= 0 {
		if m.owns {
			c.tr.Mark(t.ID, c.id, trace.CompQueue, now)
		}
		m.execDone(false)
		return false
	}
	switch m.task.AcquireTimeout(c.slots, c.priorityOf(t), slack) {
	case sim.AcquireGranted:
		m.pc = tsSlotHeld
		return false
	default:
		m.pc = tsSlotWait
		return true
	}
}

// stepSlotHeld runs the stretch from slot acquisition to the local-lock
// phase.
func (m *txnMachine) stepSlotHeld() bool {
	c, t := m.c, m.t
	m.slotHeld = true
	now := m.task.Now()
	if m.owns {
		c.tr.Mark(t.ID, c.id, trace.CompQueue, now)
		c.tr.Point(t.ID, c.id, trace.EvSlotAcquired, 0, 0, 0, now)
	}
	if now > t.Deadline {
		m.execDone(false)
		return false
	}
	t.Status = txn.StatusRunning
	m.start = now
	if c.localLocks != nil {
		// Serialize concurrent local transactions over the same objects
		// (only active when ClientExecutors > 1), in object order.
		m.lockOps = append(m.lockOps[:0], m.ops...)
		slices.SortFunc(m.lockOps, func(a, b txn.Op) int { return int(a.Obj) - int(b.Obj) })
		if cap(m.lockReqs) < len(m.lockOps) {
			m.lockReqs = make([]lockmgr.Request, len(m.lockOps))
		} else {
			m.lockReqs = m.lockReqs[:len(m.lockOps)]
		}
		m.lockIdx = 0
		m.lockStarted = false
		m.pc = tsLock
		return false
	}
	m.pc = tsMatBegin
	return false
}

// stepLock acquires the local locks one object at a time.
func (m *txnMachine) stepLock() bool {
	c, t := m.c, m.t
	owner := lockmgr.OwnerID(t.ID)
	for m.lockIdx < len(m.lockOps) {
		var done bool
		var err error
		if !m.lockStarted {
			op := m.lockOps[m.lockIdx]
			m.lockStarted = true
			req := &m.lockReqs[m.lockIdx]
			*req = lockmgr.Request{Obj: op.Obj, Owner: owner, Mode: op.Mode(), Deadline: t.Deadline}
			done, err = m.lockOp.Start(c.localLocks, &m.task, req)
		} else {
			done, err = m.lockOp.Step(&m.task)
		}
		if !done {
			return true
		}
		m.lockStarted = false
		if err != nil {
			if m.owns {
				c.tr.Mark(t.ID, c.id, trace.CompLockWait, m.task.Now())
			}
			c.localLocks.ReleaseAll(owner)
			m.execDone(false)
			return false
		}
		m.lockIdx++
	}
	if m.owns {
		c.tr.Mark(t.ID, c.id, trace.CompLockWait, m.task.Now())
	}
	m.locksHeld = true
	m.pc = tsMatBegin
	return false
}

// stepScan is the materialization presence scan: ensure every access is
// cached with a sufficient lock, charging local-disk time for copies
// that aged to the disk tier, and collect the misses.
func (m *txnMachine) stepScan() bool {
	c, t := m.c, m.t
	if m.diskPC != dcIdle {
		// Resuming mid-charge for ops[scanIdx].
		if !m.stepDiskCharge() {
			return true
		}
		if m.owns {
			c.tr.Mark(t.ID, c.id, trace.CompExec, m.task.Now())
		}
		m.scanIdx++
	}
	for m.scanIdx < len(m.ops) {
		op := m.ops[m.scanIdx]
		e := c.objects.Peek(op.Obj)
		sufficient := e != nil && modeSufficient(e.Mode, op.Mode())
		if m.attempt == 0 && c.measuring() {
			c.m.RecordCacheAccess(sufficient)
		}
		if !sufficient {
			m.missing = append(m.missing, op)
			m.scanIdx++
			continue
		}
		_, tier, evicted := c.objects.Lookup(op.Obj)
		c.returnEvicted(evicted)
		if tier == cache.TierDisk {
			m.diskPC = dcAcquire
			if !m.stepDiskCharge() {
				return true
			}
			if m.owns {
				c.tr.Mark(t.ID, c.id, trace.CompExec, m.task.Now())
			}
		}
		m.scanIdx++
	}
	m.pc = tsScanDone
	return false
}

// stepDiskCharge serializes on the local disk arm for one read; true
// means the charge completed.
func (m *txnMachine) stepDiskCharge() bool {
	c := m.c
	for {
		switch m.diskPC {
		case dcAcquire:
			m.diskPC = dcSleep
			if !m.task.Acquire(c.localDisk, 0) {
				return false
			}
		case dcSleep:
			m.diskPC = dcRelease
			m.task.Sleep(c.cfg.DiskRead)
			return false
		default: // dcRelease
			c.localDisk.Release()
			m.diskPC = dcIdle
			return true
		}
	}
}

// stepScanDone decides the materialization round's outcome: pin the
// full set atomically, or fetch the misses — until the deadline.
func (m *txnMachine) stepScanDone() bool {
	c, t := m.c, m.t
	if len(m.missing) == 0 {
		if c.pinAll(m.ops, &m.entries) {
			m.pc = tsMaterialized
			return false
		}
		// Lost something between presence check and pinning (a blocking
		// disk-tier charge let a recall in). Refetch.
		c.m.Refetches++
		m.nextAttempt()
		return false
	}
	if m.attempt > 0 {
		c.m.Refetches++
	}
	if m.task.Now() > t.Deadline {
		m.execDone(false)
		return false
	}
	m.beginFetch()
	return false
}

// nextAttempt restarts the materialization loop.
func (m *txnMachine) nextAttempt() {
	m.attempt++
	m.missing = m.missing[:0]
	m.scanIdx = 0
	m.pc = tsScan
}

// beginFetch requests the missing objects. At the origin of a
// load-sharing client's first round it sends one tentative probe for
// the whole set; otherwise objects are fetched one at a time (the
// paper's sequential request/response loop — a client keeps at most one
// firm request outstanding).
func (m *txnMachine) beginFetch() {
	c, t := m.c, m.t
	m.pt = c.ensurePending(t)
	if !(c.loadShare && c.cfg.UseH2 && m.origin && m.attempt == 0) {
		m.seqIdx = 0
		m.pc = tsSeqSend
		return
	}
	// Tentative probe: one message covering every missing object.
	pt := m.pt
	m.objs = m.objs[:0]
	m.modes = m.modes[:0]
	now := m.task.Now()
	for _, op := range m.missing {
		m.objs = append(m.objs, op.Obj)
		m.modes = append(m.modes, op.Mode())
		pt.addWait(op.Obj, op.Mode(), now)
		c.addWaiter(op.Obj, pt)
	}
	pt.netAccum = 0
	m.sendKind = skProbe
	// A retried probe is idempotent at the server: already-granted locks
	// hit the lock table's re-entrant fast path and the objects ship
	// again over the reliable channel.
	m.resend(0)
	m.awaitArm()
	m.pc = tsProbeWait
}

// denied resolves a denial reply; it reports true when the fetch must
// fail, recording an abort for deadlock refusals.
func (m *txnMachine) denied() bool {
	pt, t := m.pt, m.t
	if pt.denied == 0 {
		return false
	}
	if pt.denied == proto.DenyDeadlock {
		t.Status = txn.StatusAborted
		t.Finished = m.task.Now()
	}
	return true
}

// stepProbeWait consumes the tentative round's reply: everything
// granted, denied, or a conflict set that triggers the H2 ship-or-stay
// decision.
func (m *txnMachine) stepProbeWait() bool {
	c, t := m.c, m.t
	done, ok := m.awaitStep()
	if !done {
		return true
	}
	if !ok || m.denied() {
		m.fetchFail()
		return false
	}
	pt := m.pt
	if !pt.gotConflict {
		m.fetchOK() // everything granted
		return false
	}
	// Tentative round hit conflicts: decide where this transaction
	// should run (H2), then either ship it or commit to local
	// processing.
	pt.gotConflict = false
	loads, dataCounts := c.h2Scratch()
	for _, l := range pt.loads {
		loads[l.Client] = l
	}
	for _, dc := range pt.dataCounts {
		dataCounts[dc.Site] = dc.Count
	}
	now := m.task.Now()
	params := loadshare.Params{
		Origin:             c.id,
		Now:                now,
		Deadline:           t.Deadline,
		Conflicts:          pt.conflicts,
		Loads:              loads,
		OriginQueueLen:     c.slots.QueueLen(),
		OriginATL:          c.atl.Mean(),
		Executors:          c.cfg.ClientExecutors,
		DataCounts:         dataCounts,
		RequireImprovement: true,
		// Ship only to a site caching more of this transaction's data
		// than the origin currently does — otherwise the move trades
		// one blocked object for several lost cache hits.
		MinShipData: len(t.Ops) - len(m.missing) + 1,
	}
	if c.tr.Enabled() {
		params.Trace = func(d loadshare.Decision) {
			c.tr.Point(t.ID, c.id, trace.EvH2, 0, int64(d.Target), boolArg(d.Ship), now)
		}
	}
	d := loadshare.ChooseSite(params)
	if d.Ship {
		c.shipTxn(t, d.Target)
		m.fetchOK() // t.Shipped signals the outcome
		return false
	}
	// Stay local: one commit message asks for everything outstanding.
	// The tentative round granted nothing, so pt.waits and the waiter
	// index still hold every missing object — no re-registration. The
	// response clock restarts here: the probe was site-selection
	// control traffic, and this is the firm object request Table 3
	// measures.
	for i := range pt.waits {
		pt.waits[i].sent = now
	}
	pt.netAccum = 0
	m.sendKind = skCommit
	m.resend(0)
	m.awaitArm()
	m.pc = tsCommitWait
	return false
}

// stepSeqSend sends the next firm single-object request.
func (m *txnMachine) stepSeqSend() bool {
	c, t := m.c, m.t
	if m.seqIdx >= len(m.missing) {
		m.fetchOK()
		return false
	}
	if m.task.Now() > t.Deadline {
		m.fetchFail()
		return false
	}
	op := m.missing[m.seqIdx]
	pt := m.pt
	m.curObj, m.curMode = op.Obj, op.Mode()
	pt.addWait(m.curObj, m.curMode, m.task.Now())
	c.addWaiter(m.curObj, pt)
	pt.netAccum = 0
	m.sendKind = skSeq
	m.resend(0)
	m.awaitArm()
	m.pc = tsSeqWait
	return false
}

// fetchFail ends a fetch that cannot proceed here (deadline, denial):
// unregister the outstanding waits and fail the execution.
func (m *txnMachine) fetchFail() {
	m.c.releasePending(m.pt)
	m.pt = nil
	m.execDone(false)
}

// fetchOK ends a successful fetch round: back to the presence scan, or
// — when the H2 decision shipped the transaction away mid-gather — out
// of the execution entirely, with the unwind but no local finish (the
// target owns the status now).
func (m *txnMachine) fetchOK() {
	c, t := m.c, m.t
	c.releasePending(m.pt)
	m.pt = nil
	if t.Shipped && m.origin {
		m.unwind()
		m.reportResult(false)
		m.pc = tsDone
		return
	}
	m.nextAttempt()
}

// stepMaterialized applies the speculation credit and runs the
// computation.
func (m *txnMachine) stepMaterialized() bool {
	c, t := m.c, m.t
	now := m.task.Now()
	if now > t.Deadline {
		// Late already: abandon rather than burn the executor slot.
		for _, e := range m.entries {
			c.objects.Unpin(e)
		}
		clear(m.entries)
		m.entries = m.entries[:0]
		m.execDone(false)
		return false
	}
	length := m.length
	if m.specOn {
		c.m.SpeculativeRuns++
		if c.speculationValid(m.spec) {
			c.m.SpeculationHits++
			// Only the share of the computation whose data was present
			// could run during the fetch.
			credit := time.Duration(float64(now-m.specStart) * m.specFraction)
			if credit > length {
				credit = length
			}
			length -= credit
		}
	}
	m.pc = tsRan
	m.task.Sleep(length)
	return true
}

// stepCommit applies updates to the cached copies, logging each write;
// the log force (group commit) follows in tsForce.
func (m *txnMachine) stepCommit() {
	c, t := m.c, m.t
	m.lastLSN = 0
	for _, op := range m.ops {
		e := c.objects.Peek(op.Obj)
		if e == nil {
			panic(fmt.Sprintf("client %d: committed object %d not cached", c.id, op.Obj))
		}
		if op.Write {
			e.Version++
			e.Dirty = true
			if c.onCommit != nil {
				c.onCommit(op.Obj, e.Version)
			}
			if c.log != nil {
				m.lastLSN = c.log.Append(int64(t.ID), op.Obj, e.Version)
			}
			if c.cfg.WriteThrough && c.migrationOf(op.Obj) == nil {
				// Write-through ablation: push the update to the server
				// now (keeping the exclusive lock) instead of holding a
				// dirty copy until a callback.
				e.Dirty = false
				home := c.homeSite(op.Obj)
				c.toSite(home, netsim.KindObjectReturn, netsim.ObjectBytes, proto.ObjReturn{
					Client: c.id, Obj: op.Obj, HasData: true, Version: e.Version,
					UpdateOnly: true, Epoch: c.epochOf(op.Obj, home), Load: c.loadReport(),
				})
			}
		}
	}
	if c.log != nil && m.lastLSN > 0 {
		m.force.Init(c.log, int64(t.ID), m.lastLSN)
		m.pc = tsForce
		return
	}
	m.pc = tsCommitDone
}

// execDone records the execution's terminal state. finish runs before
// the unwind, exactly as the blocking coroutine's return value was
// evaluated before its defers.
func (m *txnMachine) execDone(committed bool) {
	m.c.finish(m.t, m.sub, committed)
	m.unwind()
	m.reportResult(committed)
	m.pc = tsDone
}

// unwind releases whatever the execution still holds, in the blocking
// coroutine's defer (LIFO) order: local locks, then migration
// forwarding and deferred recalls, then the executor slot.
func (m *txnMachine) unwind() {
	c, t := m.c, m.t
	if m.locksHeld {
		c.localLocks.ReleaseAll(lockmgr.OwnerID(t.ID))
		m.locksHeld = false
	}
	if m.slotHeld {
		// Whatever way this attempt ended, forward any migrations this
		// transaction came to own and answer recalls deferred on its
		// pins.
		c.afterRelease(m.ops, t.ID)
		c.slots.Release()
		m.slotHeld = false
	}
}

// reportResult hands a local subtask's outcome to the parent's fanout
// wait.
func (m *txnMachine) reportResult(committed bool) {
	if m.reportTo == nil {
		return
	}
	w := m.reportTo
	w.done = true
	w.committed = committed
	w.sig.Broadcast()
}

// wftOp mirrors Proc.WaitForTimeout for machines: wait until a
// caller-evaluated condition holds or an absolute deadline passes. The
// caller re-evaluates the condition at every resume and passes it in.
type wftOp struct {
	sig      *sim.Signal
	deadline time.Duration
	armed    bool
	waited   bool
}

func (w *wftOp) arm(sig *sim.Signal, deadline time.Duration) {
	w.sig, w.deadline, w.armed, w.waited = sig, deadline, true, false
}

// step advances the wait; done=false means the task parked. ok reports
// whether the condition held.
func (w *wftOp) step(t *sim.Task, cond bool) (done, ok bool) {
	if cond {
		w.armed = false
		return true, true
	}
	if w.waited && t.TimedOut() {
		w.armed = false
		return true, false
	}
	if t.Now() >= w.deadline {
		w.armed = false
		return true, false
	}
	w.waited = true
	t.WaitTimeout(w.sig, w.deadline-t.Now())
	return false, false
}

// Await sub-states.
const (
	awIdle uint8 = iota
	awWait
)

// awaitArm begins a reply wait (the blocking awaitReply), after the
// initial send.
func (m *txnMachine) awaitArm() {
	m.awRTO = m.c.rto
	m.awAttempt = 1
	m.awPC = awIdle
}

// awaitStep waits for the current exchange's condition until the
// transaction's deadline. In fault-free runs (rto == 0) it is exactly
// one bounded wait. Under fault injection it retransmits on an
// exponentially backed-off timer (capped at 8x the base timeout),
// always bounded by the deadline, so a request or reply lost to the
// fault layer is recovered instead of hanging the transaction until
// its deadline. Each completed wait closes into network + lock-wait
// attribution via pt.netAccum; each expired retransmission window
// closes into the retry bucket.
func (m *txnMachine) awaitStep() (done, ok bool) {
	c, t, pt := m.c, m.t, m.pt
	for {
		switch m.awPC {
		case awIdle:
			if c.rto <= 0 {
				m.awFinal = true
				m.wft.arm(pt.sig, t.Deadline)
			} else if next := m.task.Now() + m.awRTO; next >= t.Deadline {
				m.awFinal = true
				m.wft.arm(pt.sig, t.Deadline)
			} else {
				m.awFinal = false
				m.wft.arm(pt.sig, next)
			}
			m.awPC = awWait
		default: // awWait
			d, ok := m.wft.step(&m.task, m.awaitCond())
			if !d {
				return false, false
			}
			if ok || m.awFinal {
				if m.owns {
					c.tr.MarkWait(t.ID, c.id, m.task.Now(), pt.netAccum)
				}
				pt.netAccum = 0
				return true, ok
			}
			// Retransmission window expired.
			c.Retries++
			if m.owns {
				c.tr.MarkRetry(t.ID, c.id, m.task.Now(), m.awAttempt)
			}
			pt.netAccum = 0
			m.resend(m.awAttempt)
			m.awAttempt++
			if m.awRTO < 8*c.rto {
				m.awRTO *= 2
			}
			m.awPC = awIdle
		}
	}
}

// awaitCond evaluates the current exchange's completion predicate.
func (m *txnMachine) awaitCond() bool {
	pt := m.pt
	switch m.sendKind {
	case skLoad:
		return pt.hasLoad
	case skProbe:
		return len(pt.waits) == 0 || pt.denied != 0 || pt.gotConflict
	case skCommit:
		return len(pt.waits) == 0 || pt.denied != 0
	default: // skSeq
		return pt.findWait(m.curObj) < 0 || pt.denied != 0
	}
}

// resend (re)transmits the current exchange's request. Multi-server
// topologies split multi-object exchanges per shard (resendSharded);
// the single-server path below is untouched.
func (m *txnMachine) resend(attempt int) {
	c, t, pt := m.c, m.t, m.pt
	if c.multiShard {
		m.resendSharded(attempt)
		return
	}
	switch m.sendKind {
	case skLoad:
		pt.netAccum += c.toSite(netsim.ServerSite, netsim.KindLoadQuery, netsim.ControlBytes, proto.LoadQuery{
			Client:   c.id,
			Txn:      t.ID,
			Objs:     t.Objects(),
			Modes:    t.Modes(),
			Deadline: t.Deadline,
			Attempt:  attempt,
			Load:     c.loadReport(),
		})
	case skProbe:
		pt.netAccum += c.toSite(netsim.ServerSite, netsim.KindObjectRequest, netsim.ControlBytes, proto.ProbeRequest{
			Client:   c.id,
			Txn:      t.ID,
			Objs:     m.objs,
			Modes:    m.modes,
			Deadline: t.Deadline,
			Attempt:  attempt,
			Load:     c.loadReport(),
		})
	case skCommit:
		pt.netAccum += c.toSite(netsim.ServerSite, netsim.KindObjectRequest, netsim.ControlBytes, proto.CommitRequest{
			Client:   c.id,
			Txn:      t.ID,
			Deadline: t.Deadline,
			Objs:     m.objs,
			Modes:    m.modes,
			Attempt:  attempt,
			Load:     c.loadReport(),
		})
	default: // skSeq
		pt.netAccum += c.toSite(netsim.ServerSite, netsim.KindObjectRequest, netsim.ControlBytes, proto.ObjRequest{
			Client:   c.id,
			Txn:      t.ID,
			Obj:      m.curObj,
			Mode:     m.curMode,
			Deadline: t.Deadline,
			Attempt:  attempt,
			Load:     c.loadReport(),
		})
	}
}

// shipTxn sends a whole transaction to target for execution. It does
// not block: the target becomes the single writer of the transaction's
// status, and the TxnResult message back to the origin is informational
// ("the results of executing the transaction are communicated to the
// originating client").
func (c *Client) shipTxn(t *txn.Transaction, target netsim.SiteID) {
	c.ShippedOut++
	c.m.ShippedTxns++
	t.Shipped = true
	c.tr.Point(t.ID, c.id, trace.EvShippedTxn, 0, int64(target), 0, c.env.Now())
	c.toPeer(target, netsim.KindTxnShip, netsim.TxnShipBytes, proto.TxnShip{
		T: t, ReplyTo: c.id, Load: c.loadReport(),
	})
}

func (c *Client) finishParent(t *txn.Transaction, committed bool) {
	if committed {
		t.Status = txn.StatusCommitted
	} else {
		t.Status = txn.StatusMissed
	}
	t.Finished = c.env.Now()
	t.ExecSite = c.id
	c.tr.Finish(t, c.id, c.env.Now())
}

// specEntry records one version a speculative computation is based on.
type specEntry struct {
	obj lockmgr.ObjectID
	ver int64
}

// speculationCandidates decides what part of a transaction can start
// computing before its locks arrive: any access whose data is already in
// the cache (even in a weaker lock mode) can be processed speculatively
// while the misses and upgrades are in flight. It appends the versions
// the speculative computation is based on to buf (machine-owned
// scratch) and returns them, whether speculation applies, and the
// fraction of the access set they cover. Speculation does not apply
// when disabled, nothing is missing (no wait to overlap), or nothing is
// present (no data to compute against).
func (c *Client) speculationCandidates(ops []txn.Op, buf []specEntry) ([]specEntry, bool, float64) {
	if !c.loadShare || !c.cfg.UseSpeculation {
		return buf, false, 0
	}
	present := buf
	missing := 0
	for _, op := range ops {
		e := c.objects.Peek(op.Obj)
		switch {
		case e == nil:
			missing++
		case modeSufficient(e.Mode, op.Mode()):
			present = append(present, specEntry{obj: op.Obj, ver: e.Version})
		default:
			missing++ // upgrade in flight, but the data is at hand
			present = append(present, specEntry{obj: op.Obj, ver: e.Version})
		}
	}
	if missing == 0 || len(present) == 0 {
		return present, false, 0
	}
	return present, true, float64(len(present)) / float64(len(ops))
}

// speculationValid checks, after materialization, that every version the
// speculative computation was based on is still the current one.
func (c *Client) speculationValid(spec []specEntry) bool {
	for _, s := range spec {
		e := c.objects.Peek(s.obj)
		if e == nil || e.Version != s.ver {
			return false
		}
	}
	return true
}

// priorityOf maps a transaction to its executor-queue priority: its
// deadline under the paper's ED policy, its arrival time under the FCFS
// baseline.
func (c *Client) priorityOf(t *txn.Transaction) float64 {
	if c.cfg.Scheduling == config.SchedFCFS {
		return t.Arrival.Seconds()
	}
	return t.Deadline.Seconds()
}

// pinAll pins the whole access set atomically (no blocking between
// checks) into *buf, machine-owned scratch. It fails — leaving *buf
// empty and scrubbed — if any object lost presence or mode.
func (c *Client) pinAll(ops []txn.Op, buf *[]*cache.Entry) bool {
	entries := (*buf)[:0]
	for _, op := range ops {
		e := c.objects.Peek(op.Obj)
		if e == nil || !modeSufficient(e.Mode, op.Mode()) {
			for _, pinned := range entries {
				c.objects.Unpin(pinned)
			}
			clear(entries)
			*buf = entries[:0]
			return false
		}
		c.objects.Pin(e)
		entries = append(entries, e)
	}
	*buf = entries
	return true
}

func modeSufficient(have, need lockmgr.Mode) bool {
	return have == lockmgr.ModeExclusive || need == lockmgr.ModeShared && have == lockmgr.ModeShared
}

// ensurePending returns the transaction's pending record, reviving a
// recycled one (signal and slice capacities intact) when none exists.
func (c *Client) ensurePending(t *txn.Transaction) *pendingTxn {
	if pt := c.findPending(t.ID); pt != nil {
		return pt
	}
	var pt *pendingTxn
	if n := len(c.ptFree); n > 0 {
		pt = c.ptFree[n-1]
		c.ptFree[n-1] = nil
		c.ptFree = c.ptFree[:n-1]
	} else {
		pt = &pendingTxn{sig: sim.NewSignal(c.env)}
	}
	pt.t = t
	c.pending = append(c.pending, pt)
	return pt
}

// releasePending unregisters the transaction's outstanding waits and,
// unless a load query is still in flight, recycles the record.
func (c *Client) releasePending(pt *pendingTxn) {
	for i := range pt.waits {
		c.dropWaiter(pt.waits[i].obj, pt)
	}
	pt.waits = pt.waits[:0]
	if !pt.wantLoad {
		c.removePending(pt)
	}
}

// finish records a terminal state for work executed here. For subtasks
// and shipped-in transactions it also reports the result to the origin.
func (c *Client) finish(t *txn.Transaction, sub *txn.Subtask, committed bool) bool {
	now := c.env.Now()
	if sub == nil {
		if committed {
			t.Status = txn.StatusCommitted
		} else if t.Status != txn.StatusAborted {
			t.Status = txn.StatusMissed
		}
		t.Finished = now
		t.ExecSite = c.id
		c.tr.Finish(t, c.id, now)
		if t.Origin != c.id {
			c.toPeer(t.Origin, netsim.KindTxnResult, netsim.ResultBytes, proto.TxnResult{
				Txn: t.ID, SubIndex: -1, Committed: committed, ExecSite: c.id,
			})
		}
	} else if t.Origin != c.id {
		c.toPeer(t.Origin, netsim.KindTxnResult, netsim.ResultBytes, proto.TxnResult{
			Txn: t.ID, SubIndex: sub.Index, IsSub: true, Committed: committed, ExecSite: c.id,
		})
	}
	return committed
}
