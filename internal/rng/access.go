package rng

// AccessGen generates object identifiers for a client's accesses.
// LocalizedRW is the paper's pattern; Uniform and HotCold are the
// conventional baselines used in the robustness experiments.
type AccessGen interface {
	// Next returns the next object id.
	Next() int
	// NextSet returns n distinct object ids.
	NextSet(n int) []int
}

// Uniform draws objects uniformly over the database — no locality at
// all, the worst case for client caching.
type Uniform struct {
	dbSize  int
	stream  *Stream
	scratch dedup
}

// NewUniform returns a uniform access generator.
func NewUniform(stream *Stream, dbSize int) *Uniform {
	if dbSize <= 0 {
		panic("rng: Uniform needs dbSize > 0")
	}
	return &Uniform{dbSize: dbSize, stream: stream}
}

// Next returns a uniform object id.
func (g *Uniform) Next() int { return g.stream.Intn(g.dbSize) }

// NextSet returns n distinct uniform ids.
func (g *Uniform) NextSet(n int) []int { return g.scratch.distinct(g, g.dbSize, n) }

// HotCold sends a fixed fraction of accesses to a globally shared hot
// set at the front of the object space (the classic "hot spot" model —
// every client contends on the same hot objects).
type HotCold struct {
	dbSize  int
	hotSize int
	hotFrac float64
	stream  *Stream
	scratch dedup
}

// NewHotCold returns a hot/cold generator: hotFrac of accesses hit the
// first hotSize objects, the rest spread uniformly over the remainder.
func NewHotCold(stream *Stream, dbSize, hotSize int, hotFrac float64) *HotCold {
	if dbSize <= 0 || hotSize <= 0 || hotSize > dbSize {
		panic("rng: HotCold needs 0 < hotSize <= dbSize")
	}
	return &HotCold{dbSize: dbSize, hotSize: hotSize, hotFrac: hotFrac, stream: stream}
}

// Next returns the next object id.
func (g *HotCold) Next() int {
	if g.hotSize == g.dbSize || g.stream.Float64() < g.hotFrac {
		return g.stream.Intn(g.hotSize)
	}
	return g.hotSize + g.stream.Intn(g.dbSize-g.hotSize)
}

// NextSet returns n distinct ids.
func (g *HotCold) NextSet(n int) []int { return g.scratch.distinct(g, g.dbSize, n) }

// dedup is the reusable scratch behind NextSet: a result buffer plus,
// for large draws only, an epoch-stamped membership array. Access sets
// are small (Poisson around the configured mean), so membership is a
// linear scan over the accumulated ids up to smallDedup and the stamp
// array never materializes on the hot path — NextSet allocates nothing
// in steady state. The returned slice is owned by the generator and
// valid until its next NextSet call.
type dedup struct {
	out   []int
	stamp []uint32
	epoch uint32
}

// smallDedup is the set size below which duplicate checks linear-scan
// the output instead of touching the stamp array.
const smallDedup = 64

// distinct draws from gen until n distinct ids accumulate (clamped to
// the object space). The accept/reject decisions match the original
// map-based implementation exactly, so draw sequences are unchanged.
func (d *dedup) distinct(gen interface{ Next() int }, dbSize, n int) []int {
	if n > dbSize {
		n = dbSize
	}
	if cap(d.out) < n {
		d.out = make([]int, 0, n)
	}
	out := d.out[:0]
	if n <= smallDedup {
	small:
		for len(out) < n {
			id := gen.Next()
			for _, v := range out {
				if v == id {
					continue small
				}
			}
			out = append(out, id)
		}
		d.out = out
		return out
	}
	if len(d.stamp) < dbSize {
		d.stamp = make([]uint32, dbSize)
		d.epoch = 0
	}
	d.epoch++
	if d.epoch == 0 {
		clear(d.stamp)
		d.epoch = 1
	}
	for len(out) < n {
		id := gen.Next()
		if d.stamp[id] == d.epoch {
			continue
		}
		d.stamp[id] = d.epoch
		out = append(out, id)
	}
	d.out = out
	return out
}

// LocalizedRW generates object identifiers under the paper's Localized-RW
// pattern: a fixed fraction (75%) of a client's accesses fall uniformly in
// that client's hot region of the database, and the remainder (25%) fall
// in the rest of the database with Zipf-skewed popularity.
//
// Hot regions are contiguous, wrap around the object space, and are placed
// at offsets proportional to the client index. With region size held
// constant, growing the number of clients increases region overlap and
// therefore inter-client data contention — the driver behind the paper's
// cache-hit and blocking trends.
type LocalizedRW struct {
	dbSize     int
	regionBase int
	regionSize int
	localFrac  float64
	stream     *Stream
	zipf       *Zipf
	scratch    dedup
}

// LocalizedRWConfig configures a per-client access generator.
type LocalizedRWConfig struct {
	// DBSize is the number of objects in the database.
	DBSize int
	// ClientIndex and NumClients place this client's hot region.
	ClientIndex int
	NumClients  int
	// RegionSize is the number of objects in the hot region.
	RegionSize int
	// LocalFraction is the probability an access falls in the hot
	// region (the paper uses 0.75).
	LocalFraction float64
	// ZipfTheta is the skew of remote accesses (typical database skew
	// uses ~0.8–1.0).
	ZipfTheta float64
}

// NewLocalizedRW returns a generator for one client.
func NewLocalizedRW(stream *Stream, cfg LocalizedRWConfig) *LocalizedRW {
	if cfg.DBSize <= 0 || cfg.NumClients <= 0 {
		panic("rng: LocalizedRW needs positive DBSize and NumClients")
	}
	size := cfg.RegionSize
	if size <= 0 || size > cfg.DBSize {
		size = cfg.DBSize / 10
		if size == 0 {
			size = 1
		}
	}
	remote := cfg.DBSize - size
	var z *Zipf
	if remote > 0 {
		z = NewZipf(stream, cfg.ZipfTheta, remote)
	}
	return &LocalizedRW{
		dbSize:     cfg.DBSize,
		regionBase: (cfg.ClientIndex * cfg.DBSize / cfg.NumClients) % cfg.DBSize,
		regionSize: size,
		localFrac:  cfg.LocalFraction,
		stream:     stream,
		zipf:       z,
	}
}

// RegionBase returns the first object id of the hot region.
func (g *LocalizedRW) RegionBase() int { return g.regionBase }

// RegionSize returns the size of the hot region.
func (g *LocalizedRW) RegionSize() int { return g.regionSize }

// InRegion reports whether object id lies in this client's hot region
// (accounting for wraparound).
func (g *LocalizedRW) InRegion(id int) bool {
	off := (id - g.regionBase + g.dbSize) % g.dbSize
	return off < g.regionSize
}

// Next returns the next object id to access.
func (g *LocalizedRW) Next() int {
	if g.zipf == nil || g.stream.Float64() < g.localFrac {
		return (g.regionBase + g.stream.Intn(g.regionSize)) % g.dbSize
	}
	// Remote access: Zipf rank over the objects outside this client's
	// region, in global id order — object 0 is the globally hottest
	// remote object for every client whose region excludes it, which is
	// what makes distinct clients contend on the same popular objects.
	rank := g.zipf.Rank()
	wrap := g.regionBase + g.regionSize - g.dbSize
	if wrap > 0 {
		// Region occupies [regionBase, dbSize) and [0, wrap); the
		// remainder is [wrap, regionBase).
		return wrap + rank
	}
	// Remainder is [0, regionBase) then [regionBase+size, dbSize).
	if rank < g.regionBase {
		return rank
	}
	return rank + g.regionSize
}

// NextSet returns n distinct object ids. When n exceeds the database size
// it is clamped.
func (g *LocalizedRW) NextSet(n int) []int { return g.scratch.distinct(g, g.dbSize, n) }

var (
	_ AccessGen = (*LocalizedRW)(nil)
	_ AccessGen = (*Uniform)(nil)
	_ AccessGen = (*HotCold)(nil)
)

// ParkStreams releases the generator's stream state while the owning
// client idles (rng.Stream.Park; draw sequences unaffected).
func (g *Uniform) ParkStreams(maxReplay uint64) { g.stream.ParkBelow(maxReplay) }

// ParkStreams releases the generator's stream state while the owning
// client idles.
func (g *HotCold) ParkStreams(maxReplay uint64) { g.stream.ParkBelow(maxReplay) }

// ParkStreams releases the generator's stream state while the owning
// client idles. The Zipf sampler shares the same stream, so one park
// covers both.
func (g *LocalizedRW) ParkStreams(maxReplay uint64) { g.stream.ParkBelow(maxReplay) }
