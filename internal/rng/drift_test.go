package rng

import (
	"testing"
	"time"
)

func TestSkewedDriftFollowsClock(t *testing.T) {
	g := NewSkewed(NewStream(1), SkewedConfig{
		DBSize: 1000, HotSize: 50, HotFraction: 1.0,
		DriftEvery: 30 * time.Second, DriftStep: 100,
	})
	cases := map[time.Duration]int{
		0:                0,
		29 * time.Second: 0,
		30 * time.Second: 100,
		90 * time.Second: 300,
		5 * time.Minute:  0, // 10 periods * 100 wraps mod 1000
	}
	for now, want := range cases {
		g.Advance(now)
		if got := g.Base(); got != want {
			t.Errorf("Advance(%v): base = %d, want %d", now, got, want)
		}
	}
	// Advance is a pure function of now, not of call history.
	g.Advance(time.Minute)
	g.Advance(30 * time.Second)
	if got := g.Base(); got != 100 {
		t.Errorf("re-Advance(30s): base = %d, want 100", got)
	}
}

func TestSkewedHotWindowDraws(t *testing.T) {
	g := NewSkewed(NewStream(2), SkewedConfig{
		DBSize: 1000, HotSize: 50, HotFraction: 1.0,
		DriftEvery: 30 * time.Second, DriftStep: 975, // force mod wrap
	})
	g.Advance(30 * time.Second) // base 975; window wraps to [975,1000) U [0,25)
	for i := 0; i < 500; i++ {
		id := g.Next()
		if id >= 25 && id < 975 {
			t.Fatalf("draw %d: object %d outside the wrapped hot window", i, id)
		}
	}
}

func TestSkewedColdTraffic(t *testing.T) {
	// HotFraction 0: pure Zipf over the database; theta 0: uniform.
	for name, cfg := range map[string]SkewedConfig{
		"zipf":    {DBSize: 100, ZipfTheta: 0.9},
		"uniform": {DBSize: 100},
	} {
		g := NewSkewed(NewStream(3), cfg)
		seen := map[int]bool{}
		for i := 0; i < 2000; i++ {
			id := g.Next()
			if id < 0 || id >= 100 {
				t.Fatalf("%s: object %d out of range", name, id)
			}
			seen[id] = true
		}
		if len(seen) < 50 {
			t.Errorf("%s: only %d distinct objects in 2000 draws", name, len(seen))
		}
	}
}

func TestSkewedNextSetDistinct(t *testing.T) {
	g := NewSkewed(NewStream(4), SkewedConfig{DBSize: 100, ZipfTheta: 0.9, HotSize: 10, HotFraction: 0.8})
	ids := g.NextSet(20)
	if len(ids) != 20 {
		t.Fatalf("NextSet(20) returned %d ids", len(ids))
	}
	seen := map[int]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("NextSet returned duplicate object %d", id)
		}
		seen[id] = true
	}
}
