package rng

import (
	"testing"
	"time"
)

// TestParkReplayIdentical: a stream parked and resumed at arbitrary
// points must produce exactly the sequence an never-parked twin does —
// across every variate kind the simulator draws.
func TestParkReplayIdentical(t *testing.T) {
	draw := func(s *Stream, i int) any {
		switch i % 5 {
		case 0:
			return s.Float64()
		case 1:
			return s.Intn(1000)
		case 2:
			return s.Exp(3 * time.Second)
		case 3:
			return s.Poisson(4.5)
		default:
			return s.Perm(5)[0]
		}
	}
	ref := NewStream(42)
	var want []any
	for i := 0; i < 500; i++ {
		want = append(want, draw(ref, i))
	}

	parked := NewStream(42)
	for i := 0; i < 500; i++ {
		if i%7 == 3 {
			parked.Park()
			if !parked.Parked() {
				t.Fatal("Park did not release state")
			}
		}
		if got := draw(parked, i); got != want[i] {
			t.Fatalf("draw %d: parked stream produced %v, want %v", i, got, want[i])
		}
	}
}

// TestParkDerive: Derive consumes one parent draw; parking around it
// must not change the derived stream's identity.
func TestParkDerive(t *testing.T) {
	a := NewStream(7)
	da := a.Derive(3)

	b := NewStream(7)
	b.Park()
	db := b.Derive(3)

	for i := 0; i < 100; i++ {
		if x, y := da.Float64(), db.Float64(); x != y {
			t.Fatalf("derived draw %d diverged: %v vs %v", i, x, y)
		}
	}
}

// TestParkZipf: the theta>1 path hands the stream's rand.Rand to
// math/rand's Zipf; parking underneath it must stay transparent.
func TestParkZipf(t *testing.T) {
	a := NewZipf(NewStream(9), 1.2, 5000)
	b := NewZipf(NewStream(9), 1.2, 5000)
	bs := b.stream
	for i := 0; i < 300; i++ {
		if i%11 == 5 {
			bs.Park()
		}
		if x, y := a.Rank(), b.Rank(); x != y {
			t.Fatalf("zipf rank %d diverged: %d vs %d", i, x, y)
		}
	}
}

// TestNewStreamLazy: constructing a stream must not materialize the
// big generator state — unused streams stay at their 16-byte identity.
func TestNewStreamLazy(t *testing.T) {
	s := NewStream(1)
	if !s.Parked() {
		t.Fatal("fresh stream materialized state before first draw")
	}
	s.Float64()
	if s.Parked() {
		t.Fatal("draw did not materialize state")
	}
	if s.Draws() != 1 {
		t.Fatalf("Draws() = %d, want 1", s.Draws())
	}
}

// TestParkBelowBudget: park/wake churn is self-limiting — once a
// stream's cumulative replay work (draws plus a per-wake reseed
// charge) exceeds the budget, ParkBelow refuses and the stream stays
// resident. Draw sequences are unaffected either way.
func TestParkBelowBudget(t *testing.T) {
	s := NewStream(11)
	cycles := 0
	for i := 0; i < replayBudget; i++ {
		s.Float64() // wake (replays) and advance
		s.ParkBelow(1 << 20)
		if !s.Parked() {
			break
		}
		cycles++
	}
	if s.Parked() {
		t.Fatal("replay budget never tripped under sustained park/wake churn")
	}
	if cycles < 2 {
		t.Fatalf("budget tripped after %d cycles; the first parks should be allowed", cycles)
	}
	// An explicit Park is still honored — the budget only gates the
	// advisory ParkBelow.
	s.Park()
	if !s.Parked() {
		t.Fatal("explicit Park must still release state")
	}
}

// TestNextSetZeroAlloc pins the access-set hot path at zero
// allocations: the seen-set and result buffer are generator-owned
// scratch, not per-draw garbage.
func TestNextSetZeroAlloc(t *testing.T) {
	gens := map[string]AccessGen{
		"localized": NewLocalizedRW(NewStream(3), LocalizedRWConfig{
			DBSize: 2000, ClientIndex: 1, NumClients: 8, RegionSize: 200,
			LocalFraction: 0.75, ZipfTheta: 0.9,
		}),
		"uniform": NewUniform(NewStream(4), 2000),
		"hotcold": NewHotCold(NewStream(5), 2000, 100, 0.8),
		"skewed": NewSkewed(NewStream(6), SkewedConfig{
			DBSize: 2000, ZipfTheta: 0.9, HotSize: 100, HotFraction: 0.5,
		}),
	}
	for name, g := range gens {
		g.NextSet(8) // warm the scratch and materialize the stream
		if n := testing.AllocsPerRun(200, func() { g.NextSet(8) }); n != 0 {
			t.Errorf("%s: NextSet allocates %v per run, want 0", name, n)
		}
	}
}

// TestNextSetLargeDraw exercises the epoch-stamped path (> smallDedup)
// and its epoch-wrap reset.
func TestNextSetLargeDraw(t *testing.T) {
	g := NewUniform(NewStream(8), 500)
	for round := 0; round < 3; round++ {
		ids := g.NextSet(smallDedup + 40)
		if len(ids) != smallDedup+40 {
			t.Fatalf("round %d: got %d ids", round, len(ids))
		}
		seen := map[int]bool{}
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("round %d: duplicate id %d", round, id)
			}
			seen[id] = true
		}
	}
	// Force the epoch counter to wrap and make sure stale stamps are
	// cleared rather than misread as current.
	g.scratch.epoch = ^uint32(0)
	ids := g.NextSet(smallDedup + 1)
	seen := map[int]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatal("duplicate id after epoch wrap")
		}
		seen[id] = true
	}
}
