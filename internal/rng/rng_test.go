package rng

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestStreamDeterminism(t *testing.T) {
	a, b := NewStream(7), NewStream(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed streams diverged")
		}
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := NewStream(1)
	c1 := parent.Derive(1)
	c2 := parent.Derive(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("derived streams coincide on %d of 100 draws", same)
	}
}

func TestExpMean(t *testing.T) {
	s := NewStream(42)
	const n = 50000
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += s.Exp(10 * time.Second)
	}
	mean := sum / n
	if mean < 9700*time.Millisecond || mean > 10300*time.Millisecond {
		t.Fatalf("exp mean = %v, want ~10s", mean)
	}
}

func TestExpNonPositiveMean(t *testing.T) {
	s := NewStream(1)
	if d := s.Exp(0); d != 0 {
		t.Fatalf("Exp(0) = %v", d)
	}
	if d := s.Exp(-time.Second); d != 0 {
		t.Fatalf("Exp(<0) = %v", d)
	}
}

func TestExpMinFloor(t *testing.T) {
	s := NewStream(3)
	for i := 0; i < 1000; i++ {
		if d := s.ExpMin(time.Millisecond, 500*time.Microsecond); d < 500*time.Microsecond {
			t.Fatalf("ExpMin below floor: %v", d)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{0.5, 4, 50} {
		s := NewStream(9)
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += s.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonNonPositive(t *testing.T) {
	s := NewStream(1)
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestZipfSkew(t *testing.T) {
	s := NewStream(11)
	z := NewZipf(s, 0.9, 1000)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		r := z.Rank()
		if r < 0 || r >= 1000 {
			t.Fatalf("rank out of range: %d", r)
		}
		counts[r]++
	}
	if counts[0] <= counts[500] {
		t.Fatalf("Zipf not skewed: rank0=%d rank500=%d", counts[0], counts[500])
	}
	top10 := 0
	for i := 0; i < 10; i++ {
		top10 += counts[i]
	}
	if float64(top10)/n < 0.2 {
		t.Fatalf("top-10 mass = %v, want skewed > 0.2", float64(top10)/n)
	}
}

func TestLocalizedRWFractions(t *testing.T) {
	s := NewStream(5)
	g := NewLocalizedRW(s, LocalizedRWConfig{
		DBSize: 10000, ClientIndex: 3, NumClients: 20,
		RegionSize: 1000, LocalFraction: 0.75, ZipfTheta: 0.9,
	})
	const n = 50000
	local := 0
	for i := 0; i < n; i++ {
		id := g.Next()
		if id < 0 || id >= 10000 {
			t.Fatalf("object id out of range: %d", id)
		}
		if g.InRegion(id) {
			local++
		}
	}
	frac := float64(local) / n
	// Remote Zipf draws can also land... no: remote ids start at the
	// region end, so they never fall back inside the region. Expect ~0.75.
	if frac < 0.73 || frac > 0.77 {
		t.Fatalf("local fraction = %v, want ~0.75", frac)
	}
}

func TestLocalizedRWRegionPlacementWraps(t *testing.T) {
	s := NewStream(6)
	g := NewLocalizedRW(s, LocalizedRWConfig{
		DBSize: 100, ClientIndex: 19, NumClients: 20,
		RegionSize: 30, LocalFraction: 1.0, ZipfTheta: 0.9,
	})
	if g.RegionBase() != 95 {
		t.Fatalf("region base = %d, want 95", g.RegionBase())
	}
	for i := 0; i < 1000; i++ {
		id := g.Next()
		if !(id >= 95 || id < 25) {
			t.Fatalf("wrapped region produced id %d", id)
		}
	}
	if !g.InRegion(99) || !g.InRegion(0) || g.InRegion(30) {
		t.Fatal("InRegion wraparound incorrect")
	}
}

func TestLocalizedRWOverlapGrowsWithClients(t *testing.T) {
	// With fixed region size, neighbouring clients' regions overlap more
	// as the client count grows: spacing DB/N shrinks.
	mk := func(idx, n int) *LocalizedRW {
		return NewLocalizedRW(NewStream(1), LocalizedRWConfig{
			DBSize: 10000, ClientIndex: idx, NumClients: n,
			RegionSize: 1000, LocalFraction: 0.75, ZipfTheta: 0.9,
		})
	}
	overlap := func(a, b *LocalizedRW) int {
		n := 0
		for id := 0; id < 10000; id++ {
			if a.InRegion(id) && b.InRegion(id) {
				n++
			}
		}
		return n
	}
	few := overlap(mk(0, 10), mk(1, 10))
	many := overlap(mk(0, 100), mk(1, 100))
	if many <= few {
		t.Fatalf("overlap with 100 clients (%d) should exceed overlap with 10 (%d)", many, few)
	}
}

func TestNextSetDistinct(t *testing.T) {
	s := NewStream(8)
	g := NewLocalizedRW(s, LocalizedRWConfig{
		DBSize: 10000, ClientIndex: 0, NumClients: 10,
		RegionSize: 1000, LocalFraction: 0.75, ZipfTheta: 0.9,
	})
	set := g.NextSet(10)
	if len(set) != 10 {
		t.Fatalf("len = %d", len(set))
	}
	seen := map[int]struct{}{}
	for _, id := range set {
		if _, dup := seen[id]; dup {
			t.Fatalf("duplicate id %d in %v", id, set)
		}
		seen[id] = struct{}{}
	}
}

func TestNextSetClampsToDBSize(t *testing.T) {
	s := NewStream(8)
	g := NewLocalizedRW(s, LocalizedRWConfig{
		DBSize: 5, ClientIndex: 0, NumClients: 1,
		RegionSize: 5, LocalFraction: 1, ZipfTheta: 0.9,
	})
	if got := len(g.NextSet(50)); got != 5 {
		t.Fatalf("clamped set size = %d, want 5", got)
	}
}

// Property: every id from Next is in [0, DBSize) for arbitrary geometry.
func TestLocalizedRWRangeProperty(t *testing.T) {
	f := func(seed int64, idx, n uint8, size uint16) bool {
		clients := int(n%50) + 1
		db := int(size%5000) + 10
		g := NewLocalizedRW(NewStream(seed), LocalizedRWConfig{
			DBSize: db, ClientIndex: int(idx) % clients, NumClients: clients,
			RegionSize: db / 10, LocalFraction: 0.75, ZipfTheta: 0.9,
		})
		for i := 0; i < 200; i++ {
			if id := g.Next(); id < 0 || id >= db {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformRange(t *testing.T) {
	g := NewUniform(NewStream(4), 100)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		id := g.Next()
		if id < 0 || id >= 100 {
			t.Fatalf("id out of range: %d", id)
		}
		counts[id]++
	}
	for id, n := range counts {
		if n < 100 || n > 320 {
			t.Fatalf("uniformity broken at %d: %d draws", id, n)
		}
	}
	set := g.NextSet(10)
	if len(set) != 10 {
		t.Fatalf("set size = %d", len(set))
	}
}

func TestHotColdFractions(t *testing.T) {
	g := NewHotCold(NewStream(5), 1000, 50, 0.8)
	hot := 0
	const n = 50000
	for i := 0; i < n; i++ {
		id := g.Next()
		if id < 0 || id >= 1000 {
			t.Fatalf("id out of range: %d", id)
		}
		if id < 50 {
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.78 || frac > 0.82 {
		t.Fatalf("hot fraction = %v, want ~0.8", frac)
	}
}

func TestHotColdDegenerateAllHot(t *testing.T) {
	g := NewHotCold(NewStream(6), 10, 10, 0.5)
	for i := 0; i < 100; i++ {
		if id := g.Next(); id < 0 || id >= 10 {
			t.Fatalf("id out of range: %d", id)
		}
	}
}
