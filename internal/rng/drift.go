package rng

import "time"

// Skewed draws objects with Zipf-skewed global popularity and an
// optional drifting hot spot, the access model scenario workloads use
// for contention studies: a HotFraction of accesses fall uniformly in a
// hot window of HotSize objects whose base rotates by DriftStep every
// DriftEvery of simulated time, and the remainder are Zipf(theta) over
// the whole database (theta 0 = uniform).
//
// The generator is clocked externally: callers advance it to the
// current simulated time via Advance before drawing, so the drift
// schedule is a pure function of the simulated clock, never of
// wall-clock or draw counts.
type Skewed struct {
	dbSize  int
	hotSize int
	hotFrac float64
	every   time.Duration
	step    int

	stream *Stream
	zipf   *Zipf

	base    int // current hot-window base object id
	scratch dedup
}

// SkewedConfig parameterizes a Skewed generator.
type SkewedConfig struct {
	// DBSize is the number of objects in the database.
	DBSize int
	// ZipfTheta is the skew of cold accesses over the whole database
	// (0 = uniform).
	ZipfTheta float64
	// HotSize and HotFraction shape the hot window (HotFraction 0
	// disables it).
	HotSize     int
	HotFraction float64
	// DriftEvery and DriftStep rotate the hot window: every DriftEvery
	// of simulated time the window base advances by DriftStep objects
	// (DriftEvery 0 = static).
	DriftEvery time.Duration
	DriftStep  int
}

// NewSkewed returns a skewed access generator.
func NewSkewed(stream *Stream, cfg SkewedConfig) *Skewed {
	if cfg.DBSize <= 0 {
		panic("rng: Skewed needs DBSize > 0")
	}
	if cfg.HotFraction > 0 && (cfg.HotSize <= 0 || cfg.HotSize > cfg.DBSize) {
		panic("rng: Skewed needs 0 < HotSize <= DBSize when HotFraction is set")
	}
	g := &Skewed{
		dbSize:  cfg.DBSize,
		hotSize: cfg.HotSize,
		hotFrac: cfg.HotFraction,
		every:   cfg.DriftEvery,
		step:    cfg.DriftStep,
		stream:  stream,
	}
	if cfg.ZipfTheta > 0 {
		g.zipf = NewZipf(stream, cfg.ZipfTheta, cfg.DBSize)
	}
	return g
}

// Advance moves the drift schedule to simulated time now. The hot
// window's base is step * floor(now/every) mod dbSize — a deterministic
// function of now, so replaying the same arrival times reproduces the
// same windows.
func (g *Skewed) Advance(now time.Duration) {
	if g.every <= 0 {
		return
	}
	periods := int64(now / g.every)
	g.base = int((periods * int64(g.step)) % int64(g.dbSize))
}

// Base returns the current hot-window base (tests observe the drift).
func (g *Skewed) Base() int { return g.base }

// Next returns the next object id.
func (g *Skewed) Next() int {
	if g.hotFrac > 0 && g.stream.Float64() < g.hotFrac {
		return (g.base + g.stream.Intn(g.hotSize)) % g.dbSize
	}
	if g.zipf != nil {
		return g.zipf.Rank()
	}
	return g.stream.Intn(g.dbSize)
}

// NextSet returns n distinct object ids.
func (g *Skewed) NextSet(n int) []int { return g.scratch.distinct(g, g.dbSize, n) }

var _ AccessGen = (*Skewed)(nil)

// ParkStreams releases the generator's stream state while the owning
// client idles (the Zipf sampler shares the same stream).
func (g *Skewed) ParkStreams(maxReplay uint64) { g.stream.ParkBelow(maxReplay) }
