// Package rng provides seeded random streams and the access-pattern
// distributions used by the experiments: exponential durations, Poisson
// arrival processes, Zipf object popularity, and the paper's Localized-RW
// pattern (75% uniform over a per-client hot region, 25% Zipf over the
// rest of the database).
//
// Every component of the simulation draws from its own Stream so that
// adding or removing one consumer does not perturb the draws seen by
// another — a requirement for meaningful A/B comparisons between system
// configurations that share a workload seed.
package rng

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// Stream is a deterministic source of random variates.
//
// The persistent identity of a stream is just its (seed, draw-count)
// pair — 16 bytes. The ~4.9 KB lagged-Fibonacci state vector behind
// math/rand is materialized lazily from a shared pool on the first draw
// and can be released back at any time with Park; the next draw
// re-seeds a pooled vector and replays the recorded number of draws, so
// the variate sequence is bit-identical whether or not the stream was
// ever parked. This keeps idle per-client streams cache-resident at
// million-client scale without perturbing any experiment.
type Stream struct {
	r  *rand.Rand
	ps parkSrc
}

// NewStream returns a stream seeded with seed. No generator state is
// allocated until the first draw.
func NewStream(seed int64) *Stream {
	s := &Stream{}
	s.ps.seed = seed
	s.r = rand.New(&s.ps)
	return s
}

// sourcePool recycles the big math/rand state vectors across parked
// streams. Entries carry arbitrary state; materialize re-seeds before
// use.
var sourcePool = sync.Pool{
	New: func() any { return rand.NewSource(0).(rand.Source64) },
}

// parkSrc is the rand.Source64 behind a Stream: it counts draws and
// materializes the underlying source on demand. One underlying
// generator step is consumed per Int63 or Uint64 call, so the call
// count is exactly the replay distance.
type parkSrc struct {
	src  rand.Source64
	n    uint64
	seed int64
	// replayed accumulates the fast-forward work (in draw-equivalents)
	// paid across all re-materializations, charging reseedCost per wake
	// on top of the replayed draws. ParkBelow stops parking a stream
	// once this exceeds replayBudget, so a stream that keeps getting
	// woken by tail gaps in an otherwise busy arrival process caps its
	// lifetime CPU waste instead of paying the reseed+replay toll
	// forever. Sparse streams (the million-client tier) wake rarely and
	// never hit the budget.
	replayed uint64
}

// reseedCost is the draw-equivalent charge for re-seeding the ~4.9 KB
// state vector on wake (rngSource seeding runs ~3·607 seedrand steps).
const reseedCost = 2048

// replayBudget caps a stream's lifetime fast-forward work; past it the
// stream stays resident. ~131 K draw-equivalents is well under a
// millisecond of CPU.
const replayBudget = 1 << 17

func (p *parkSrc) materialize() {
	src := sourcePool.Get().(rand.Source64)
	src.Seed(p.seed)
	for i := uint64(0); i < p.n; i++ {
		src.Uint64()
	}
	p.src = src
	p.replayed += p.n + reseedCost
}

func (p *parkSrc) Int63() int64 {
	if p.src == nil {
		p.materialize()
	}
	p.n++
	return p.src.Int63()
}

func (p *parkSrc) Uint64() uint64 {
	if p.src == nil {
		p.materialize()
	}
	p.n++
	return p.src.Uint64()
}

func (p *parkSrc) Seed(seed int64) {
	p.seed = seed
	p.n = 0
	if p.src != nil {
		p.src.Seed(seed)
	}
}

// Park releases the stream's generator state vector to a shared pool,
// keeping only the seed and draw count. The next draw transparently
// re-seeds a pooled vector and fast-forwards, so parking never changes
// the sequence — it trades replay CPU for ~4.9 KB of resident memory.
// Callers should gate on Draws() to bound the replay cost.
func (s *Stream) Park() {
	if s.ps.src == nil {
		return
	}
	sourcePool.Put(s.ps.src)
	s.ps.src = nil
}

// ParkBelow parks the stream only when its replay distance is at most
// max draws, bounding the CPU paid to fast-forward on the next draw.
// It also refuses once the stream's cumulative replay work exceeds
// replayBudget, so park/wake churn is self-limiting: parking never
// changes the draw sequence, only where the CPU/memory trade lands.
func (s *Stream) ParkBelow(max uint64) {
	if s.ps.n <= max && s.ps.replayed+s.ps.n <= replayBudget {
		s.Park()
	}
}

// Parked reports whether the stream currently holds no generator state.
func (s *Stream) Parked() bool { return s.ps.src == nil }

// Draws returns the number of variates drawn so far — the replay
// distance a parked stream pays on its next draw.
func (s *Stream) Draws() uint64 { return s.ps.n }

// Derive returns a new independent stream whose seed combines the parent
// seed-derived state with tag. Use it to give each client or component its
// own stream from one experiment seed.
func (s *Stream) Derive(tag int64) *Stream {
	// SplitMix64-style mixing of the parent's next value with the tag.
	z := uint64(s.r.Int63()) ^ (uint64(tag) * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return NewStream(int64(z ^ (z >> 31)))
}

// Float64 returns a uniform variate in [0,1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform integer in [0,n).
func (s *Stream) Intn(n int) int { return s.r.Intn(n) }

// Exp returns an exponentially distributed duration with the given mean.
// A non-positive mean returns zero.
func (s *Stream) Exp(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(s.r.ExpFloat64() * float64(mean))
}

// ExpMin returns an exponential duration with the given mean, but never
// below floor. The paper's transaction lengths and deadlines are
// exponential; a small floor avoids degenerate zero-length work.
func (s *Stream) ExpMin(mean, floor time.Duration) time.Duration {
	d := s.Exp(mean)
	if d < floor {
		return floor
	}
	return d
}

// Poisson returns a Poisson-distributed count with the given mean, using
// inversion for small means and a normal approximation above 30.
func (s *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(s.r.NormFloat64()*math.Sqrt(mean) + mean))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= s.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0,n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Zipf draws ranks in [0,n) with P(k) proportional to 1/(k+1)^theta.
// Unlike math/rand's Zipf it supports the 0 < theta ≤ 1 exponents common
// in the database access-skew literature (e.g. the 80-20 rule at
// theta ≈ 0.86) by inverse-CDF sampling over a precomputed table.
type Zipf struct {
	stream *Stream
	z      *rand.Zipf
	cdf    []float64
}

// cdfCache memoizes Zipf CDF tables by (theta, n). Every client in every
// replication builds the same table (the paper's workloads share one
// theta and database size), and the O(n) math.Pow loop dominated sampler
// construction. The tables are immutable once published, so sharing one
// slice across samplers — including concurrently running experiment
// cells — is safe, and memoization returns bit-identical floats, so
// sampling is unchanged.
var cdfCache sync.Map // zipfKey -> []float64

type zipfKey struct {
	theta float64
	n     int
}

func zipfCDF(theta float64, n int) []float64 {
	key := zipfKey{theta: theta, n: n}
	if v, ok := cdfCache.Load(key); ok {
		return v.([]float64)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -theta)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	// A concurrent builder may have published first; use its table so
	// all samplers share one slice.
	if v, loaded := cdfCache.LoadOrStore(key, cdf); loaded {
		return v.([]float64)
	}
	return cdf
}

// NewZipf returns a Zipf sampler over n ranks with exponent theta > 0.
func NewZipf(stream *Stream, theta float64, n int) *Zipf {
	if n <= 0 {
		panic("rng: Zipf needs n > 0")
	}
	if theta <= 0 {
		panic("rng: Zipf needs theta > 0")
	}
	if theta > 1 {
		return &Zipf{stream: stream, z: rand.NewZipf(stream.r, theta, 1, uint64(n-1))}
	}
	return &Zipf{stream: stream, cdf: zipfCDF(theta, n)}
}

// Rank returns a rank in [0,n), with rank 0 the most popular.
func (z *Zipf) Rank() int {
	if z.z != nil {
		return int(z.z.Uint64())
	}
	u := z.stream.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
