package txn

import (
	"time"

	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
	"siteselect/internal/rng"
)

// WorkloadConfig shapes one client's transaction stream (Table 1).
type WorkloadConfig struct {
	// MeanInterArrival is the mean of the Poisson arrival process.
	MeanInterArrival time.Duration
	// MeanLength is the mean (exponential) prescribed execution time.
	MeanLength time.Duration
	// MinLength floors the exponential draw.
	MinLength time.Duration
	// MeanSlack is the mean deadline offset beyond the arrival time
	// (Table 1's "average transaction deadline"). Deadlines are set to
	// arrival + length + slack where slack is exponential with mean
	// MeanSlack − MeanLength, so an unobstructed transaction always
	// makes its deadline and every miss is system-induced (queueing,
	// blocking, or data-shipping delay).
	MeanSlack time.Duration
	// MinSlack floors the slack draw.
	MinSlack time.Duration
	// IndependentDeadlines draws the deadline offset independently of
	// the execution length (the literal reading of Table 1) instead of
	// the default arrival + length + slack.
	IndependentDeadlines bool
	// MeanObjects is the mean number of distinct objects accessed.
	MeanObjects int
	// UpdateFraction is the probability that an individual access is an
	// update (the paper's "percentage of updates").
	UpdateFraction float64
	// DecomposableFraction is the share of transactions that may be
	// decomposed (the paper uses 10%).
	DecomposableFraction float64
	// Access generates object ids (Localized-RW in the paper's
	// experiments; Uniform and HotCold for the robustness sweeps).
	Access rng.AccessGen
	// Arrivals, when non-nil, replaces the default closed-loop arrival
	// process (scenario workloads install phased open-loop, burst,
	// diurnal, and flash-crowd processes here). Nil preserves the
	// original draw sequence exactly.
	Arrivals ArrivalProcess
}

// Source produces a client's transaction stream; *Generator is the only
// implementation, but the interface keeps the client decoupled from how
// the stream is parameterized.
type Source interface {
	// NextArrival returns the absolute virtual time of the next
	// transaction.
	NextArrival() time.Duration
	// Next produces the transaction arriving at NextArrival and
	// advances the arrival process.
	Next() *Transaction
}

// Generator produces one client's transaction stream deterministically
// from its stream.
type Generator struct {
	cfg     WorkloadConfig
	stream  *rng.Stream
	origin  netsim.SiteID
	nextID  func() ID
	nextAt  time.Duration
	advance func(time.Duration)
}

// streamParker is implemented by access generators and arrival
// processes whose random streams can be parked between draws (see
// rng.Stream.Park). Parking is purely a memory optimization — the draw
// sequence is identical either way.
type streamParker interface{ ParkStreams(maxReplay uint64) }

// parkIdle is the simulated-time gap to the next arrival beyond which a
// client's streams are parked. Short think times (the paper's Figure-3
// configurations) never park, so the dense-state machinery costs those
// runs nothing; sparse open-loop swarms park between almost every pair
// of arrivals.
const parkIdle = 60 * time.Second

// maxReplayDraws bounds the fast-forward a parked stream pays when it
// next draws; streams past this are left resident.
const maxReplayDraws = 1 << 16

// maybePark releases the generator's stream states when the client is
// about to idle long enough for the memory to matter.
func (g *Generator) maybePark(arrival time.Duration) {
	if g.nextAt-arrival < parkIdle {
		return
	}
	g.stream.ParkBelow(maxReplayDraws)
	if p, ok := g.cfg.Access.(streamParker); ok {
		p.ParkStreams(maxReplayDraws)
	}
	if p, ok := g.cfg.Arrivals.(streamParker); ok {
		p.ParkStreams(maxReplayDraws)
	}
}

// NewGenerator returns a generator for origin. nextID must hand out
// run-unique transaction ids (shared across clients).
func NewGenerator(stream *rng.Stream, origin netsim.SiteID, cfg WorkloadConfig, nextID func() ID) *Generator {
	if cfg.MeanObjects <= 0 {
		cfg.MeanObjects = 10
	}
	if cfg.MinLength <= 0 {
		cfg.MinLength = 50 * time.Millisecond
	}
	if cfg.MinSlack <= 0 {
		cfg.MinSlack = time.Second
	}
	g := &Generator{cfg: cfg, stream: stream, origin: origin, nextID: nextID}
	if a, ok := cfg.Access.(interface{ Advance(time.Duration) }); ok {
		g.advance = a.Advance
	}
	if cfg.Arrivals != nil {
		g.nextAt = cfg.Arrivals.Next(0)
	} else {
		g.nextAt = stream.Exp(cfg.MeanInterArrival)
	}
	// A sparse arrival process leaves this client idle from the start
	// (at million-client scale most clients are); park until then.
	g.maybePark(0)
	return g
}

// NextArrival returns the absolute virtual time of the next transaction.
func (g *Generator) NextArrival() time.Duration { return g.nextAt }

// Next produces the transaction arriving at NextArrival and advances the
// arrival process.
func (g *Generator) Next() *Transaction {
	arrival := g.nextAt
	if g.cfg.Arrivals != nil {
		g.nextAt = g.cfg.Arrivals.Next(arrival)
	} else {
		g.nextAt += g.stream.Exp(g.cfg.MeanInterArrival)
	}
	if g.advance != nil {
		g.advance(arrival)
	}

	n := g.stream.Poisson(float64(g.cfg.MeanObjects))
	if n < 1 {
		n = 1
	}
	ids := g.cfg.Access.NextSet(n)
	ops := make([]Op, len(ids))
	for i, id := range ids {
		ops[i] = Op{
			Obj:   lockmgr.ObjectID(id),
			Write: g.stream.Float64() < g.cfg.UpdateFraction,
		}
	}
	length := g.stream.ExpMin(g.cfg.MeanLength, g.cfg.MinLength)
	var deadline time.Duration
	if g.cfg.IndependentDeadlines {
		deadline = arrival + g.stream.ExpMin(g.cfg.MeanSlack, g.cfg.MinSlack)
	} else {
		meanSlack := g.cfg.MeanSlack - g.cfg.MeanLength
		if meanSlack <= 0 {
			meanSlack = g.cfg.MeanSlack / 2
		}
		deadline = arrival + length + g.stream.ExpMin(meanSlack, g.cfg.MinSlack)
	}
	t := &Transaction{
		ID:           g.nextID(),
		Origin:       g.origin,
		Arrival:      arrival,
		Deadline:     deadline,
		Length:       length,
		Ops:          ops,
		Decomposable: g.stream.Float64() < g.cfg.DecomposableFraction,
		Status:       StatusPending,
		ExecSite:     g.origin,
	}
	// All of this transaction's draws are done; if the next arrival is
	// far off, shed the ~4.9 KB/stream generator state until then.
	g.maybePark(arrival)
	return t
}
