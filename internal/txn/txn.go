// Package txn models real-time database transactions: their access sets,
// timing constraints (arrival, execution length, deadline), lifecycle,
// and decomposition into independently executable subtasks.
package txn

import (
	"fmt"
	"time"

	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
)

// ID identifies a transaction uniquely within a run.
type ID int64

// Status is a transaction's lifecycle state.
type Status int

// Transaction lifecycle states.
const (
	// StatusPending means queued, not yet executing.
	StatusPending Status = iota + 1
	// StatusRunning means currently acquiring data or executing.
	StatusRunning
	// StatusCommitted means finished within its deadline.
	StatusCommitted
	// StatusMissed means the deadline passed before completion (dropped
	// from a queue, timed out waiting, or finished late).
	StatusMissed
	// StatusAborted means refused by deadlock detection or another
	// non-deadline failure.
	StatusAborted
)

// String returns a short state name.
func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusRunning:
		return "running"
	case StatusCommitted:
		return "committed"
	case StatusMissed:
		return "missed"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Op is one object access.
type Op struct {
	Obj   lockmgr.ObjectID
	Write bool
}

// Mode returns the lock mode the access requires.
func (o Op) Mode() lockmgr.Mode {
	if o.Write {
		return lockmgr.ModeExclusive
	}
	return lockmgr.ModeShared
}

// Transaction is a real-time transaction.
type Transaction struct {
	ID     ID
	Origin netsim.SiteID
	// Arrival is when the transaction was submitted at its origin.
	Arrival time.Duration
	// Deadline is the absolute completion deadline.
	Deadline time.Duration
	// Length is the prescribed execution time (the paper's "processing"
	// phase).
	Length time.Duration
	// Ops lists the distinct objects accessed and whether each is
	// updated.
	Ops []Op
	// Decomposable marks transactions whose object requests can be
	// disassembled and materialized independently (Section 3.2).
	Decomposable bool

	Status Status
	// ExecSite is where the transaction ran (its origin unless
	// shipped).
	ExecSite netsim.SiteID
	// Shipped marks transactions moved by the load-sharing algorithm.
	Shipped bool
	// Finished is when the transaction reached a terminal state.
	Finished time.Duration
}

// Objects returns the object ids accessed, in Ops order.
func (t *Transaction) Objects() []lockmgr.ObjectID {
	out := make([]lockmgr.ObjectID, len(t.Ops))
	for i, op := range t.Ops {
		out[i] = op.Obj
	}
	return out
}

// Modes returns the lock mode per op, aligned with Objects.
func (t *Transaction) Modes() []lockmgr.Mode {
	out := make([]lockmgr.Mode, len(t.Ops))
	for i, op := range t.Ops {
		out[i] = op.Mode()
	}
	return out
}

// IsUpdate reports whether any access writes.
func (t *Transaction) IsUpdate() bool {
	for _, op := range t.Ops {
		if op.Write {
			return true
		}
	}
	return false
}

// MissedAt reports whether the deadline has passed at now.
func (t *Transaction) MissedAt(now time.Duration) bool { return now > t.Deadline }

// Slack returns the remaining time until the deadline (negative when
// missed).
func (t *Transaction) Slack(now time.Duration) time.Duration { return t.Deadline - now }

// Terminal reports whether the transaction reached a final state.
func (t *Transaction) Terminal() bool {
	return t.Status == StatusCommitted || t.Status == StatusMissed || t.Status == StatusAborted
}

// Subtask is one independently executable piece of a decomposed
// transaction (Section 3.2): a subset of the object requests plus a
// proportional share of the processing.
type Subtask struct {
	Parent *Transaction
	Index  int
	// Key is the group key (from partOf) this subtask was built from,
	// so callers can map subtasks back to execution sites.
	Key    int
	Ops    []Op
	Length time.Duration
}

// Decompose splits the transaction into at most maxParts subtasks by
// grouping ops according to partOf, which maps each op index to a group
// key (in the system this is the site where the object is cached — "data
// fragmentation" style grouping). Processing time is divided
// proportionally to group size. A transaction that is not Decomposable,
// or whose ops all land in one group, yields nil.
func (t *Transaction) Decompose(partOf func(i int) int, maxParts int) []*Subtask {
	if !t.Decomposable || len(t.Ops) < 2 || maxParts < 2 {
		return nil
	}
	groups := make(map[int][]Op)
	var order []int
	for i, op := range t.Ops {
		k := partOf(i)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], op)
	}
	if len(order) < 2 {
		return nil
	}
	// Merge smallest groups into the first one when exceeding maxParts,
	// preserving the discovery order for determinism.
	for len(order) > maxParts {
		last := order[len(order)-1]
		order = order[:len(order)-1]
		groups[order[0]] = append(groups[order[0]], groups[last]...)
		delete(groups, last)
	}
	subs := make([]*Subtask, 0, len(order))
	for i, k := range order {
		ops := groups[k]
		length := time.Duration(float64(t.Length) * float64(len(ops)) / float64(len(t.Ops)))
		subs = append(subs, &Subtask{Parent: t, Index: i, Key: k, Ops: ops, Length: length})
	}
	return subs
}
