package txn

import (
	"testing"
	"time"

	"siteselect/internal/lockmgr"
	"siteselect/internal/rng"
)

func TestOpMode(t *testing.T) {
	if (Op{Write: true}).Mode() != lockmgr.ModeExclusive {
		t.Fatal("write op should need EL")
	}
	if (Op{}).Mode() != lockmgr.ModeShared {
		t.Fatal("read op should need SL")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusPending: "pending", StatusRunning: "running",
		StatusCommitted: "committed", StatusMissed: "missed",
		StatusAborted: "aborted", Status(42): "Status(42)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func sample() *Transaction {
	return &Transaction{
		ID:       1,
		Arrival:  10 * time.Second,
		Deadline: 30 * time.Second,
		Length:   8 * time.Second,
		Ops: []Op{
			{Obj: 1}, {Obj: 2, Write: true}, {Obj: 3}, {Obj: 4},
		},
		Decomposable: true,
	}
}

func TestAccessors(t *testing.T) {
	tx := sample()
	objs := tx.Objects()
	if len(objs) != 4 || objs[1] != 2 {
		t.Fatalf("Objects = %v", objs)
	}
	modes := tx.Modes()
	if modes[0] != lockmgr.ModeShared || modes[1] != lockmgr.ModeExclusive {
		t.Fatalf("Modes = %v", modes)
	}
	if !tx.IsUpdate() {
		t.Fatal("IsUpdate should be true")
	}
	tx.Ops[1].Write = false
	if tx.IsUpdate() {
		t.Fatal("IsUpdate should be false")
	}
}

func TestDeadlineHelpers(t *testing.T) {
	tx := sample()
	if tx.MissedAt(30 * time.Second) {
		t.Fatal("deadline instant is not missed")
	}
	if !tx.MissedAt(30*time.Second + 1) {
		t.Fatal("past deadline should be missed")
	}
	if tx.Slack(20*time.Second) != 10*time.Second {
		t.Fatalf("Slack = %v", tx.Slack(20*time.Second))
	}
	if tx.Terminal() {
		t.Fatal("pending is not terminal")
	}
	tx.Status = StatusCommitted
	if !tx.Terminal() {
		t.Fatal("committed is terminal")
	}
}

func TestDecomposeByGroup(t *testing.T) {
	tx := sample()
	// Ops 0,2 at site A (group 1); ops 1,3 at site B (group 2).
	subs := tx.Decompose(func(i int) int { return i%2 + 1 }, 4)
	if len(subs) != 2 {
		t.Fatalf("subtasks = %d, want 2", len(subs))
	}
	total := 0
	var length time.Duration
	for _, s := range subs {
		total += len(s.Ops)
		length += s.Length
		if s.Parent != tx {
			t.Fatal("parent not set")
		}
	}
	if total != 4 {
		t.Fatalf("ops across subtasks = %d", total)
	}
	if length != tx.Length {
		t.Fatalf("lengths sum to %v, want %v", length, tx.Length)
	}
}

func TestDecomposeSingleGroupNil(t *testing.T) {
	tx := sample()
	if subs := tx.Decompose(func(int) int { return 0 }, 4); subs != nil {
		t.Fatal("single group should not decompose")
	}
}

func TestDecomposeRespectsFlag(t *testing.T) {
	tx := sample()
	tx.Decomposable = false
	if subs := tx.Decompose(func(i int) int { return i }, 4); subs != nil {
		t.Fatal("non-decomposable transaction decomposed")
	}
}

func TestDecomposeMaxParts(t *testing.T) {
	tx := sample()
	subs := tx.Decompose(func(i int) int { return i }, 2) // 4 groups, cap 2
	if len(subs) != 2 {
		t.Fatalf("subtasks = %d, want 2 after merging", len(subs))
	}
	total := 0
	for _, s := range subs {
		total += len(s.Ops)
	}
	if total != 4 {
		t.Fatalf("ops lost in merge: %d", total)
	}
}

func newTestGen(update float64) *Generator {
	stream := rng.NewStream(1)
	access := rng.NewLocalizedRW(stream.Derive(9), rng.LocalizedRWConfig{
		DBSize: 10000, ClientIndex: 0, NumClients: 10,
		RegionSize: 1000, LocalFraction: 0.75, ZipfTheta: 0.9,
	})
	var id ID
	return NewGenerator(stream, 1, WorkloadConfig{
		MeanInterArrival:     10 * time.Second,
		MeanLength:           10 * time.Second,
		MeanSlack:            20 * time.Second,
		MeanObjects:          10,
		UpdateFraction:       update,
		DecomposableFraction: 0.1,
		Access:               access,
	}, func() ID { id++; return id })
}

func TestGeneratorArrivalsIncrease(t *testing.T) {
	g := newTestGen(0.05)
	last := time.Duration(-1)
	for i := 0; i < 100; i++ {
		at := g.NextArrival()
		if at < last {
			t.Fatalf("arrival went backwards: %v < %v", at, last)
		}
		tx := g.Next()
		if tx.Arrival != at {
			t.Fatalf("arrival mismatch: %v vs %v", tx.Arrival, at)
		}
		last = at
	}
}

func TestGeneratorShape(t *testing.T) {
	g := newTestGen(0.05)
	var nOps, nWrites, nDecomp int
	var sumLen, sumSlack, prev, sumIat time.Duration
	const n = 3000
	for i := 0; i < n; i++ {
		tx := g.Next()
		if len(tx.Ops) < 1 {
			t.Fatal("transaction with no ops")
		}
		if tx.Deadline <= tx.Arrival {
			t.Fatal("deadline before arrival")
		}
		if tx.ID == 0 {
			t.Fatal("id not assigned")
		}
		nOps += len(tx.Ops)
		for _, op := range tx.Ops {
			if op.Write {
				nWrites++
			}
		}
		if tx.Decomposable {
			nDecomp++
		}
		sumLen += tx.Length
		sumSlack += tx.Deadline - tx.Arrival
		sumIat += tx.Arrival - prev
		prev = tx.Arrival
	}
	if mean := float64(nOps) / n; mean < 9 || mean > 11 {
		t.Fatalf("mean ops = %v, want ~10", mean)
	}
	if frac := float64(nWrites) / float64(nOps); frac < 0.035 || frac > 0.065 {
		t.Fatalf("write fraction = %v, want ~0.05", frac)
	}
	if frac := float64(nDecomp) / n; frac < 0.06 || frac > 0.14 {
		t.Fatalf("decomposable fraction = %v, want ~0.1", frac)
	}
	if mean := sumLen / n; mean < 9*time.Second || mean > 11*time.Second {
		t.Fatalf("mean length = %v, want ~10s", mean)
	}
	if mean := sumSlack / n; mean < 19*time.Second || mean > 23*time.Second {
		t.Fatalf("mean slack = %v, want ~20s", mean)
	}
	if mean := sumIat / n; mean < 9*time.Second || mean > 11*time.Second {
		t.Fatalf("mean inter-arrival = %v, want ~10s", mean)
	}
}

func TestGeneratorDistinctOps(t *testing.T) {
	g := newTestGen(0.2)
	for i := 0; i < 200; i++ {
		tx := g.Next()
		seen := map[lockmgr.ObjectID]bool{}
		for _, op := range tx.Ops {
			if seen[op.Obj] {
				t.Fatalf("duplicate object %d in transaction", op.Obj)
			}
			seen[op.Obj] = true
		}
	}
}

func TestIndependentDeadlinePolicy(t *testing.T) {
	stream := rng.NewStream(2)
	access := rng.NewUniform(stream.Derive(9), 1000)
	var id ID
	g := NewGenerator(stream, 1, WorkloadConfig{
		MeanInterArrival:     10 * time.Second,
		MeanLength:           10 * time.Second,
		MeanSlack:            20 * time.Second,
		MeanObjects:          5,
		IndependentDeadlines: true,
		Access:               access,
	}, func() ID { id++; return id })
	// Under the independent policy some transactions must draw
	// deadlines shorter than their own length (impossible under the
	// default policy).
	impossible := 0
	for i := 0; i < 500; i++ {
		tx := g.Next()
		if tx.Deadline-tx.Arrival < tx.Length {
			impossible++
		}
	}
	if impossible == 0 {
		t.Fatal("independent deadlines never fell below the length")
	}
}
