package txn

import (
	"math"
	"testing"
	"time"

	"siteselect/internal/rng"
)

func drain(p ArrivalProcess, n int) []time.Duration {
	out := make([]time.Duration, n)
	prev := time.Duration(0)
	for i := range out {
		prev = p.Next(prev)
		out[i] = prev
	}
	return out
}

func TestClosedAndOpenLoopAdvance(t *testing.T) {
	for name, p := range map[string]ArrivalProcess{
		"closed": &ClosedLoop{Stream: rng.NewStream(1), Mean: time.Second},
		"open":   &OpenLoop{Stream: rng.NewStream(1), Rate: 2},
	} {
		prev := time.Duration(0)
		for i := 0; i < 1000; i++ {
			next := p.Next(prev)
			if next <= prev {
				t.Fatalf("%s: arrival %d did not advance: %v -> %v", name, i, prev, next)
			}
			prev = next
		}
	}
}

func TestOpenLoopRate(t *testing.T) {
	p := &OpenLoop{Stream: rng.NewStream(7), Rate: 4}
	arr := drain(p, 20000)
	got := float64(len(arr)) / arr[len(arr)-1].Seconds()
	if math.Abs(got-4) > 0.2 {
		t.Fatalf("open loop delivered %.2f arrivals/s, want ~4", got)
	}
}

func TestBurstsLandOnSchedule(t *testing.T) {
	p := &Bursts{Stream: rng.NewStream(1), Start: time.Minute, Size: 3, Every: 10 * time.Second}
	arr := drain(p, 9)
	for i, at := range arr {
		want := time.Minute + time.Duration(i/3)*10*time.Second
		if at != want {
			t.Fatalf("arrival %d at %v, want %v", i, at, want)
		}
	}
}

func TestBurstsSpreadStaysMonotonicInWindow(t *testing.T) {
	p := &Bursts{Stream: rng.NewStream(3), Start: 0, Size: 5, Every: 30 * time.Second, Spread: 4 * time.Second}
	arr := drain(p, 50)
	prev := time.Duration(-1)
	for i, at := range arr {
		if at < prev {
			t.Fatalf("arrival %d went backwards: %v after %v", i, at, prev)
		}
		burst := time.Duration(i/5) * 30 * time.Second
		if at < burst || at >= burst+4*time.Second {
			t.Fatalf("arrival %d at %v outside burst window [%v, %v)", i, at, burst, burst+4*time.Second)
		}
		prev = at
	}
}

func TestVariableRateMatchesConstantRate(t *testing.T) {
	// With RateAt == Peak every candidate survives, so the process is
	// plain Poisson at the peak rate.
	p := &VariableRate{Stream: rng.NewStream(11), Peak: 2, RateAt: func(time.Duration) float64 { return 2 }}
	arr := drain(p, 20000)
	got := float64(len(arr)) / arr[len(arr)-1].Seconds()
	if math.Abs(got-2) > 0.1 {
		t.Fatalf("thinned process delivered %.2f arrivals/s, want ~2", got)
	}
}

func TestDiurnalRateCurve(t *testing.T) {
	r := DiurnalRate(time.Minute, 0.1, 0.9, 2*time.Minute)
	cases := map[time.Duration]float64{
		time.Minute:     0.1, // trough at phase start
		2 * time.Minute: 0.9, // crest half a period in
		3 * time.Minute: 0.1, // back to trough
	}
	for at, want := range cases {
		if got := r(at); math.Abs(got-want) > 1e-9 {
			t.Errorf("rate(%v) = %v, want %v", at, got, want)
		}
	}
}

func TestFlashRateCurve(t *testing.T) {
	r := FlashRate(time.Minute, 0.1, 1.1, 10*time.Second)
	cases := map[time.Duration]float64{
		0:                             0.1, // before the phase: clamped to base
		time.Minute:                   0.1,
		time.Minute + 5*time.Second:   0.6, // halfway up the ramp
		time.Minute + 10*time.Second:  1.1,
		time.Minute + 100*time.Second: 1.1, // holds peak
	}
	for at, want := range cases {
		if got := r(at); math.Abs(got-want) > 1e-9 {
			t.Errorf("rate(%v) = %v, want %v", at, got, want)
		}
	}
	if got := FlashRate(0, 0.1, 1.1, 0)(0); got != 1.1 {
		t.Errorf("zero ramp should jump to peak, got %v", got)
	}
}

func TestPhasedArrivalsHandOff(t *testing.T) {
	// A slow closed loop for one minute, then a dense burst phase. The
	// hand-off must land exactly on the second phase's start even though
	// the first process would next fire far beyond it.
	p := &PhasedArrivals{Phases: []Phase{
		{Start: 0, End: time.Minute, Proc: &ClosedLoop{Stream: rng.NewStream(5), Mean: 40 * time.Second}},
		{Start: time.Minute, End: math.MaxInt64, Proc: &Bursts{Stream: rng.NewStream(6), Start: time.Minute, Size: 2, Every: 20 * time.Second}},
	}}
	var arr []time.Duration
	prev := time.Duration(0)
	for i := 0; i < 8; i++ {
		prev = p.Next(prev)
		arr = append(arr, prev)
	}
	seenSecond := false
	for i, at := range arr {
		if at >= time.Minute {
			seenSecond = true
			since := at - time.Minute
			if since%(20*time.Second) != 0 {
				t.Fatalf("arrival %d at %v is off the burst schedule", i, at)
			}
		} else if seenSecond {
			t.Fatalf("arrival %d at %v went back before the phase boundary", i, at)
		}
	}
	if !seenSecond {
		t.Fatal("schedule never advanced to the burst phase")
	}
	if arr[len(arr)-1] < time.Minute+20*time.Second {
		t.Fatalf("burst phase did not progress: last arrival %v", arr[len(arr)-1])
	}
}
