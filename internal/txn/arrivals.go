package txn

import (
	"math"
	"time"

	"siteselect/internal/rng"
)

// ArrivalProcess generates successive transaction arrival instants on
// the simulated clock. Next receives the previous arrival (zero before
// the first) and returns the next one; implementations must be
// deterministic functions of their own random stream so a workload is a
// pure function of its seed.
type ArrivalProcess interface {
	Next(prev time.Duration) time.Duration
}

// ClosedLoop is the paper's arrival process: exponential gaps with mean
// Mean (each client cycles think-time → transaction).
type ClosedLoop struct {
	Stream *rng.Stream
	Mean   time.Duration
}

// Next returns prev plus an exponential gap.
func (a *ClosedLoop) Next(prev time.Duration) time.Duration {
	return prev + a.Stream.Exp(a.Mean)
}

// ParkStreams releases the process's generator state while the client
// idles (see rng.Stream.Park — the draw sequence is unaffected).
func (a *ClosedLoop) ParkStreams(maxReplay uint64) { a.Stream.ParkBelow(maxReplay) }

// OpenLoop is an open-loop Poisson process at Rate arrivals per second:
// arrivals keep coming regardless of how far behind the system is.
type OpenLoop struct {
	Stream *rng.Stream
	Rate   float64
}

// Next returns prev plus an exponential gap with mean 1/Rate.
func (a *OpenLoop) Next(prev time.Duration) time.Duration {
	return prev + a.Stream.Exp(meanGap(a.Rate))
}

// ParkStreams releases the process's generator state while the client
// idles.
func (a *OpenLoop) ParkStreams(maxReplay uint64) { a.Stream.ParkBelow(maxReplay) }

// meanGap converts an arrival rate (per second) to the mean gap.
func meanGap(rate float64) time.Duration {
	return time.Duration(float64(time.Second) / rate)
}

// Bursts emits Size arrivals every Every, the k-th burst at
// Start + k*Every. With Spread > 0 each burst's arrivals are spread
// uniformly over the window [burst, burst+Spread) instead of landing on
// one instant; emission stays monotonic.
type Bursts struct {
	Stream *rng.Stream
	Start  time.Duration
	Size   int
	Every  time.Duration
	Spread time.Duration

	burst int64
	left  int
	last  time.Duration
}

// Next returns the next burst member's arrival.
func (a *Bursts) Next(prev time.Duration) time.Duration {
	if a.left == 0 {
		a.left = a.Size
		a.burst++
	}
	a.left--
	at := a.Start + time.Duration(a.burst-1)*a.Every
	if a.Spread > 0 {
		at += time.Duration(a.Stream.Float64() * float64(a.Spread))
	}
	if at < a.last {
		at = a.last // keep the stream of arrivals monotonic
	}
	a.last = at
	return at
}

// ParkStreams releases the process's generator state while the client
// idles.
func (a *Bursts) ParkStreams(maxReplay uint64) { a.Stream.ParkBelow(maxReplay) }

// VariableRate is a nonhomogeneous Poisson process sampled by Lewis-
// Shedler thinning: candidates arrive at the Peak rate and survive with
// probability RateAt(t)/Peak. RateAt must never exceed Peak.
type VariableRate struct {
	Stream *rng.Stream
	Peak   float64
	RateAt func(t time.Duration) float64
}

// Next returns the next accepted arrival after prev.
func (a *VariableRate) Next(prev time.Duration) time.Duration {
	t := prev
	for {
		t += a.Stream.Exp(meanGap(a.Peak))
		if a.Stream.Float64()*a.Peak <= a.RateAt(t) {
			return t
		}
	}
}

// ParkStreams releases the process's generator state while the client
// idles.
func (a *VariableRate) ParkStreams(maxReplay uint64) { a.Stream.ParkBelow(maxReplay) }

// DiurnalRate returns the raised-cosine day curve used by diurnal
// phases: trough at phase start, crest half a period later, repeating.
func DiurnalRate(start time.Duration, trough, peak float64, period time.Duration) func(time.Duration) float64 {
	return func(t time.Duration) float64 {
		x := float64(t-start) / float64(period)
		return trough + (peak-trough)*(1-math.Cos(2*math.Pi*x))/2
	}
}

// FlashRate returns the flash-crowd curve: base rate at phase start,
// ramping linearly to peak over ramp, then holding peak. A zero ramp
// jumps straight to peak.
func FlashRate(start time.Duration, base, peak float64, ramp time.Duration) func(time.Duration) float64 {
	return func(t time.Duration) float64 {
		if ramp <= 0 {
			return peak
		}
		f := float64(t-start) / float64(ramp)
		if f >= 1 {
			return peak
		}
		if f < 0 {
			f = 0
		}
		return base + (peak-base)*f
	}
}

// Phase is one segment of a phased arrival schedule: Proc generates
// arrivals while they fall in [Start, End).
type Phase struct {
	Start, End time.Duration
	Proc       ArrivalProcess
}

// PhasedArrivals chains arrival processes over consecutive time
// windows. When a phase's process produces an arrival at or beyond the
// phase end, the schedule advances to the next phase, restarting from
// that phase's start — so a quiet process never delays a later phase,
// and a hot one never bleeds into it. Arrivals beyond the last phase's
// end terminate generation at the configured horizon as usual.
type PhasedArrivals struct {
	Phases []Phase
	cur    int
}

// Next returns the next arrival after prev.
func (p *PhasedArrivals) Next(prev time.Duration) time.Duration {
	for {
		ph := p.Phases[p.cur]
		from := prev
		if from < ph.Start {
			from = ph.Start
		}
		t := ph.Proc.Next(from)
		last := p.cur == len(p.Phases)-1
		if t < ph.End || last {
			return t
		}
		p.cur++
		prev = ph.End
	}
}

// ParkStreams forwards to every phase's process: phases the schedule
// has not reached yet hold lazily-materialized streams anyway, and the
// current phase's stream replays on its next draw.
func (p *PhasedArrivals) ParkStreams(maxReplay uint64) {
	for _, ph := range p.Phases {
		if sp, ok := ph.Proc.(streamParker); ok {
			sp.ParkStreams(maxReplay)
		}
	}
}
