package sim

import "time"

// Machine is an event-driven simulation actor: the state-machine
// counterpart of a Proc. Where a process is a goroutine that blocks
// inside kernel primitives, a machine is resumed by a direct Resume
// call from the event loop — no goroutine, no stack, no channel
// handoff — and parks by arming exactly one wait through its embedded
// Task and returning from Resume.
//
// The contract mirrors a process around every park point:
//
//   - Resume runs model code until the machine either finishes
//     (Detach) or parks on exactly one primitive: a timer
//     (Task.Sleep/SleepUntil), a signal (Task.Wait/WaitTimeout,
//     Mailbox.Recv), or a resource (Task.Acquire/AcquireTimeout).
//   - After arming a park, Resume must return without touching model
//     state; the kernel calls Resume again when the wait completes.
//   - A machine must never arm two waits from one Resume, and must not
//     call Resume on itself.
//
// Machines and processes share the same wait queues, event kinds, and
// (at, seq) event ordering, so a model can convert one endpoint at a
// time while every golden stays byte-identical.
type Machine interface {
	Resume()
}

// MachineCloser is implemented by machines that need cleanup when the
// environment is closed mid-run (the machine analogue of a process's
// deferred teardown). Env.Close calls MachineClose on live machines in
// spawn order, after unlinking the machine from any wait queue.
type MachineCloser interface {
	MachineClose()
}

// Task is the kernel-side identity of a resumable actor. Every Proc
// embeds one, and every Machine implementation embeds one and passes
// it to Env.Spawn or Env.Adopt. It carries the intrusive wait records
// shared by the signal and resource queues, so parking is allocation
// free for machines exactly as it is for processes.
//
// All Task methods must be called from inside the owning machine's
// Resume (or, for the park-free accessors, from the model's
// single-threaded driving context).
type Task struct {
	env *Env
	m   Machine

	// slot is the task's index in the env's machine registry, or -1
	// for process-owned tasks (processes register as procs instead).
	slot int

	// wait and rwait are the intrusive wait-queue nodes; a parked task
	// sits in at most one queue.
	wait  signalWait
	rwait resWait
}

// Spawn registers m in the machine registry and schedules its first
// Resume at the current virtual time, after events already queued for
// this instant — the machine counterpart of Go.
func (e *Env) Spawn(t *Task, m Machine) {
	e.adopt(t, m)
	e.scheduleResume(e.now, t)
}

// Adopt registers m without scheduling a resume: the machine starts
// parked and runs only when something wakes it (typically a Mailbox
// Put after the machine was armed with Recv at attach time, or an
// explicit Signal). Use Spawn when the machine has startup work.
func (e *Env) Adopt(t *Task, m Machine) {
	e.adopt(t, m)
}

func (e *Env) adopt(t *Task, m Machine) {
	if e.closed {
		panic("sim: Spawn on closed Env")
	}
	if t.m != nil {
		panic("sim: task already attached")
	}
	t.env = e
	t.m = m
	t.wait.t = t
	t.rwait.t = t
	t.slot = len(e.tasks)
	e.tasks = append(e.tasks, t)
	e.liveTasks++
}

// Detach removes the machine from the registry; call it when the
// machine's work is done. The task must not be parked. A detached
// Task may be reused by a later Spawn/Adopt.
func (t *Task) Detach() {
	e := t.env
	if t.slot < 0 || t.slot >= len(e.tasks) || e.tasks[t.slot] != t {
		panic("sim: Detach of unattached task")
	}
	e.tasks[t.slot] = nil
	t.slot = -1
	t.m = nil
	e.liveTasks--
	if !e.closed && len(e.tasks) >= 64 && e.liveTasks*2 < len(e.tasks) {
		w := 0
		for _, q := range e.tasks {
			if q != nil {
				q.slot = w
				e.tasks[w] = q
				w++
			}
		}
		clear(e.tasks[w:])
		e.tasks = e.tasks[:w]
	}
}

// cancelWaits unlinks the task from any wait queue and cancels any
// pending timeout timer; Close uses it to tear down parked machines.
func (t *Task) cancelWaits() {
	if w := &t.wait; w.s != nil {
		w.s.unlink(w)
	}
	if t.wait.hasTimer {
		t.wait.timer.Cancel()
		t.wait.hasTimer = false
	}
	if w := &t.rwait; w.r != nil {
		w.r.waiters.remove(w)
		w.r = nil
	}
	if t.rwait.hasTimer {
		t.rwait.timer.Cancel()
		t.rwait.hasTimer = false
	}
}

// Env returns the task's environment.
func (t *Task) Env() *Env { return t.env }

// Now returns the current virtual time.
func (t *Task) Now() time.Duration { return t.env.now }

// Sleep parks the machine for d of virtual time, exactly like
// Proc.Sleep: a non-positive d resumes at the current instant, after
// events already scheduled for it. The caller must return from Resume.
func (t *Task) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.env.scheduleResume(t.env.now+d, t)
}

// SleepUntil parks the machine until absolute virtual time at (or the
// current instant if at is in the past), exactly like Proc.SleepUntil.
func (t *Task) SleepUntil(at time.Duration) {
	if at < t.env.now {
		at = t.env.now
	}
	t.env.scheduleResume(at, t)
}

// Wait parks the machine on s until it is fired or broadcast, exactly
// like Proc.Wait. The caller must return from Resume; as with
// processes, a wakeup is a hint and the predicate must be re-checked.
func (t *Task) Wait(s *Signal) {
	w := &t.wait
	w.timedOut = false
	w.hasTimer = false
	s.push(w)
}

// WaitTimeout parks the machine on s with a timeout, exactly like
// Proc.WaitTimeout: it reports true when the machine parked (return
// from Resume and check TimedOut on the next one) and false when
// d <= 0, which is an immediate timeout with no park.
func (t *Task) WaitTimeout(s *Signal, d time.Duration) bool {
	if d <= 0 {
		return false
	}
	w := &t.wait
	w.timedOut = false
	w.timer = s.env.scheduleTimeout(s.env.now+d, evSignalTimeout, t)
	w.hasTimer = true
	s.push(w)
	return true
}

// TimedOut reports whether the machine's last WaitTimeout park ended by
// timeout rather than a signal wakeup. Valid on the Resume following
// the park.
func (t *Task) TimedOut() bool { return t.wait.timedOut }

// Acquire obtains a unit of r or parks the machine in its priority
// queue, exactly like Proc.Acquire. It reports true when the unit was
// granted synchronously; false means the machine parked and holds the
// unit on the next Resume.
func (t *Task) Acquire(r *Resource, priority float64) bool {
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.grant()
		return true
	}
	w := &t.rwait
	w.priority = priority
	w.timedOut = false
	w.hasTimer = false
	w.r = r
	r.push(w)
	return false
}

// AcquireStatus is the outcome of Task.AcquireTimeout.
type AcquireStatus int8

const (
	// AcquireGranted: the unit is held; continue without parking.
	AcquireGranted AcquireStatus = iota
	// AcquireParked: the machine parked in the wait queue; on the next
	// Resume it holds the unit unless ResTimedOut reports true.
	AcquireParked
	// AcquireTimedOut: d was non-positive; no unit is held and the
	// machine did not park.
	AcquireTimedOut
)

// AcquireTimeout is Acquire with a timeout, exactly like
// Proc.AcquireTimeout: a synchronous grant, an immediate timeout when
// d <= 0, or a park whose outcome ResTimedOut reports on the next
// Resume.
func (t *Task) AcquireTimeout(r *Resource, priority float64, d time.Duration) AcquireStatus {
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.grant()
		return AcquireGranted
	}
	if d <= 0 {
		return AcquireTimedOut
	}
	w := &t.rwait
	w.priority = priority
	w.timedOut = false
	w.timer = r.env.scheduleTimeout(r.env.now+d, evResTimeout, t)
	w.hasTimer = true
	w.r = r
	r.push(w)
	return AcquireParked
}

// ResTimedOut reports whether the machine's last AcquireTimeout park
// expired before a unit was granted (in which case no unit is held).
// Valid on the Resume following the park.
func (t *Task) ResTimedOut() bool { return t.rwait.timedOut }
