package sim

import "time"

// Mailbox is an unbounded FIFO queue between processes. Put never blocks
// (and may be called from event callbacks, not just processes); Get blocks
// the calling process until an item is available.
type Mailbox[T any] struct {
	env   *Env
	items []T
	sig   *Signal
}

// NewMailbox returns an empty mailbox bound to env.
func NewMailbox[T any](env *Env) *Mailbox[T] {
	return &Mailbox[T]{env: env, sig: NewSignal(env)}
}

// Put appends v and wakes one waiting receiver, if any.
func (m *Mailbox[T]) Put(v T) {
	m.items = append(m.items, v)
	m.sig.Fire()
}

// Len returns the number of queued items.
func (m *Mailbox[T]) Len() int { return len(m.items) }

// TryGet removes and returns the head item without blocking. The second
// result is false when the mailbox is empty.
func (m *Mailbox[T]) TryGet() (T, bool) {
	var zero T
	if len(m.items) == 0 {
		return zero, false
	}
	v := m.items[0]
	m.items[0] = zero
	m.items = m.items[1:]
	return v, true
}

// Get blocks until an item is available and returns it.
func (m *Mailbox[T]) Get(p *Proc) T {
	for {
		if v, ok := m.TryGet(); ok {
			return v
		}
		p.Wait(m.sig)
	}
}

// GetTimeout is Get with a timeout; ok is false when d elapsed with the
// mailbox still empty.
func (m *Mailbox[T]) GetTimeout(p *Proc, d time.Duration) (v T, ok bool) {
	deadline := p.Now() + d
	for {
		if v, ok := m.TryGet(); ok {
			return v, true
		}
		remain := deadline - p.Now()
		if remain <= 0 {
			var zero T
			return zero, false
		}
		if !p.WaitTimeout(m.sig, remain) {
			if v, ok := m.TryGet(); ok {
				return v, true
			}
			var zero T
			return zero, false
		}
	}
}
