package sim

import "time"

// Mailbox is an unbounded FIFO queue between processes. Put never blocks
// (and may be called from event callbacks, not just processes); Get blocks
// the calling process until an item is available.
//
// Items live in a power-of-two ring buffer, so a steady-state
// Put/TryGet cycle allocates nothing and the backing array never grows
// past the high-water mark of queued items (the earlier slice-based
// implementation leaked backing-array growth on every Put/Get pair).
type Mailbox[T any] struct {
	env  *Env
	buf  []T // len(buf) is zero or a power of two
	head int
	n    int
	sig  Signal
}

// NewMailbox returns an empty mailbox bound to env.
func NewMailbox[T any](env *Env) *Mailbox[T] {
	return &Mailbox[T]{env: env, sig: Signal{env: env}}
}

// Put appends v and wakes one waiting receiver, if any.
func (m *Mailbox[T]) Put(v T) {
	if m.n == len(m.buf) {
		m.grow()
	}
	m.buf[(m.head+m.n)&(len(m.buf)-1)] = v
	m.n++
	m.sig.Fire()
}

func (m *Mailbox[T]) grow() {
	newCap := len(m.buf) * 2
	if newCap == 0 {
		newCap = 8
	}
	buf := make([]T, newCap)
	for i := 0; i < m.n; i++ {
		buf[i] = m.buf[(m.head+i)&(len(m.buf)-1)]
	}
	m.buf = buf
	m.head = 0
}

// Len returns the number of queued items.
func (m *Mailbox[T]) Len() int { return m.n }

// TryGet removes and returns the head item without blocking. The second
// result is false when the mailbox is empty.
func (m *Mailbox[T]) TryGet() (T, bool) {
	var zero T
	if m.n == 0 {
		return zero, false
	}
	i := m.head
	v := m.buf[i]
	m.buf[i] = zero
	m.head = (i + 1) & (len(m.buf) - 1)
	m.n--
	return v, true
}

// Recv removes and returns the head item for a state machine. When the
// mailbox is empty it parks the task on the mailbox's signal and
// reports ok=false: the machine must return from Resume, and the next
// Put resumes it. A resumed machine must call Recv again in a drain
// loop — one wakeup can cover several buffered items, matching the
// re-check loop inside the process-side Get.
func (m *Mailbox[T]) Recv(t *Task) (T, bool) {
	if v, ok := m.TryGet(); ok {
		return v, true
	}
	t.Wait(&m.sig)
	var zero T
	return zero, false
}

// Get blocks until an item is available and returns it.
func (m *Mailbox[T]) Get(p *Proc) T {
	for {
		if v, ok := m.TryGet(); ok {
			return v
		}
		p.Wait(&m.sig)
	}
}

// GetTimeout is Get with a timeout; ok is false when d elapsed with the
// mailbox still empty.
func (m *Mailbox[T]) GetTimeout(p *Proc, d time.Duration) (v T, ok bool) {
	deadline := p.Now() + d
	for {
		if v, ok := m.TryGet(); ok {
			return v, true
		}
		remain := deadline - p.Now()
		if remain <= 0 {
			var zero T
			return zero, false
		}
		if !p.WaitTimeout(&m.sig, remain) {
			if v, ok := m.TryGet(); ok {
				return v, true
			}
			var zero T
			return zero, false
		}
	}
}
