package sim

import "time"

// Resource models a server with a fixed number of identical units
// (capacity). Processes acquire a unit, hold it while they work, and
// release it. Waiters are served in priority order (lower value first;
// ties FIFO), which lets callers implement Earliest-Deadline-First service
// by passing the deadline as the priority.
type Resource struct {
	env     *Env
	cap     int
	inUse   int
	waiters resWaitQueue
	seq     int64

	// Grants counts successful acquisitions, for metrics and tests.
	Grants int64
	// BusyTime accumulates unit-seconds of utilization.
	BusyTime time.Duration

	lastChange time.Duration
}

// NewResource returns a resource with the given capacity. Capacity must be
// positive.
func NewResource(env *Env, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{env: env, cap: capacity}
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.cap }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting for a unit.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Utilization returns the mean fraction of capacity in use since the start
// of the simulation, sampled up to the current time.
func (r *Resource) Utilization() float64 {
	total := r.env.Now()
	if total <= 0 {
		return 0
	}
	busy := r.BusyTime + time.Duration(r.inUse)*(r.env.Now()-r.lastChange)
	return float64(busy) / float64(total) / float64(r.cap)
}

func (r *Resource) account() {
	now := r.env.Now()
	r.BusyTime += time.Duration(r.inUse) * (now - r.lastChange)
	r.lastChange = now
}

func (r *Resource) grant() {
	r.account()
	r.inUse++
	r.Grants++
}

// Acquire blocks until a unit is available, queueing behind waiters with
// lower priority values. Waiting is allocation free: the queue node is
// the process's embedded wait record.
func (p *Proc) Acquire(r *Resource, priority float64) {
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.grant()
		return
	}
	w := &p.task.rwait
	w.priority = priority
	w.timedOut = false
	w.hasTimer = false
	w.r = r
	r.push(w)
	p.block()
}

// AcquireTimeout is Acquire with a timeout; it reports true when the unit
// was obtained, false when d elapsed first (in which case no unit is
// held).
func (p *Proc) AcquireTimeout(r *Resource, priority float64, d time.Duration) bool {
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.grant()
		return true
	}
	if d <= 0 {
		return false
	}
	w := &p.task.rwait
	w.priority = priority
	w.timedOut = false
	w.timer = r.env.scheduleTimeout(r.env.now+d, evResTimeout, &p.task)
	w.hasTimer = true
	w.r = r
	r.push(w)
	p.block()
	return !w.timedOut
}

// Release returns one unit and hands it to the best-priority waiter, if
// any. Calling Release without holding a unit is a model bug and panics.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of idle resource")
	}
	r.account()
	r.inUse--
	r.grantNext()
}

func (r *Resource) grantNext() {
	for r.inUse < r.cap && len(r.waiters) > 0 {
		w := r.waiters.pop()
		if w.hasTimer {
			w.timer.Cancel()
			w.hasTimer = false
		}
		w.r = nil
		r.grant()
		r.env.scheduleResume(r.env.now, w.t)
	}
}

func (r *Resource) push(w *resWait) {
	r.seq++
	w.seq = r.seq
	r.waiters.push(w)
}

// resWait is a task's intrusive resource-queue node. Every Task embeds
// exactly one: a blocked task waits on at most one resource. Processes
// and state machines share the queue through their tasks.
type resWait struct {
	t        *Task
	r        *Resource // owning resource while queued, nil otherwise
	priority float64
	seq      int64
	index    int
	timedOut bool
	timer    Timer
	hasTimer bool
}

// resWaitQueue is a monomorphic binary min-heap ordered by (priority,
// seq), with index maintenance for O(log n) removal on timeout.
type resWaitQueue []*resWait

func (q resWaitQueue) less(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority < q[j].priority
	}
	return q[i].seq < q[j].seq
}

func (q resWaitQueue) swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q resWaitQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q resWaitQueue) down(i int) {
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && q.less(r, l) {
			m = r
		}
		if !q.less(m, i) {
			return
		}
		q.swap(i, m)
		i = m
	}
}

func (q *resWaitQueue) push(w *resWait) {
	w.index = len(*q)
	*q = append(*q, w)
	q.up(w.index)
}

func (q *resWaitQueue) pop() *resWait {
	h := *q
	n := len(h) - 1
	h.swap(0, n)
	w := h[n]
	h[n] = nil
	*q = h[:n]
	q.down(0)
	return w
}

// remove deletes w from the queue if it is still queued.
func (q *resWaitQueue) remove(w *resWait) {
	i := w.index
	h := *q
	if i < 0 || i >= len(h) || h[i] != w {
		return
	}
	n := len(h) - 1
	h.swap(i, n)
	h[n] = nil
	*q = h[:n]
	if i < n {
		q.down(i)
		q.up(i)
	}
}
