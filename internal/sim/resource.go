package sim

import (
	"container/heap"
	"time"
)

// Resource models a server with a fixed number of identical units
// (capacity). Processes acquire a unit, hold it while they work, and
// release it. Waiters are served in priority order (lower value first;
// ties FIFO), which lets callers implement Earliest-Deadline-First service
// by passing the deadline as the priority.
type Resource struct {
	env     *Env
	cap     int
	inUse   int
	waiters resWaitQueue
	seq     int64

	// Grants counts successful acquisitions, for metrics and tests.
	Grants int64
	// BusyTime accumulates unit-seconds of utilization.
	BusyTime time.Duration

	lastChange time.Duration
}

// NewResource returns a resource with the given capacity. Capacity must be
// positive.
func NewResource(env *Env, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{env: env, cap: capacity}
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.cap }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting for a unit.
func (r *Resource) QueueLen() int { return r.waiters.Len() }

// Utilization returns the mean fraction of capacity in use since the start
// of the simulation, sampled up to the current time.
func (r *Resource) Utilization() float64 {
	total := r.env.Now()
	if total <= 0 {
		return 0
	}
	busy := r.BusyTime + time.Duration(r.inUse)*(r.env.Now()-r.lastChange)
	return float64(busy) / float64(total) / float64(r.cap)
}

func (r *Resource) account() {
	now := r.env.Now()
	r.BusyTime += time.Duration(r.inUse) * (now - r.lastChange)
	r.lastChange = now
}

// Acquire blocks until a unit is available, queueing behind waiters with
// lower priority values.
func (p *Proc) Acquire(r *Resource, priority float64) {
	if r.inUse < r.cap && r.waiters.Len() == 0 {
		r.account()
		r.inUse++
		r.Grants++
		return
	}
	w := &resWait{p: p, priority: priority}
	r.push(w)
	p.block()
}

// AcquireTimeout is Acquire with a timeout; it reports true when the unit
// was obtained, false when d elapsed first (in which case no unit is
// held).
func (p *Proc) AcquireTimeout(r *Resource, priority float64, d time.Duration) bool {
	if r.inUse < r.cap && r.waiters.Len() == 0 {
		r.account()
		r.inUse++
		r.Grants++
		return true
	}
	if d <= 0 {
		return false
	}
	w := &resWait{p: p, priority: priority}
	w.timer = r.env.Schedule(d, func() {
		w.timedOut = true
		r.waiters.remove(w)
		r.env.dispatch(p)
	})
	r.push(w)
	p.block()
	return !w.timedOut
}

// Release returns one unit and hands it to the best-priority waiter, if
// any. Calling Release without holding a unit is a model bug and panics.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of idle resource")
	}
	r.account()
	r.inUse--
	r.grantNext()
}

func (r *Resource) grantNext() {
	for r.inUse < r.cap && r.waiters.Len() > 0 {
		w := heap.Pop(&r.waiters).(*resWait)
		if w.timer != nil {
			w.timer.Cancel()
		}
		r.account()
		r.inUse++
		r.Grants++
		r.env.Schedule(0, func() { r.env.dispatch(w.p) })
	}
}

func (r *Resource) push(w *resWait) {
	r.seq++
	w.seq = r.seq
	heap.Push(&r.waiters, w)
}

type resWait struct {
	p        *Proc
	priority float64
	seq      int64
	index    int
	timedOut bool
	timer    *Timer
}

type resWaitQueue []*resWait

func (q resWaitQueue) Len() int { return len(q) }

func (q resWaitQueue) Less(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority < q[j].priority
	}
	return q[i].seq < q[j].seq
}

func (q resWaitQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *resWaitQueue) Push(x any) {
	w := x.(*resWait)
	w.index = len(*q)
	*q = append(*q, w)
}

func (q *resWaitQueue) Pop() any {
	old := *q
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return w
}

func (q *resWaitQueue) remove(w *resWait) {
	if w.index >= 0 && w.index < q.Len() && (*q)[w.index] == w {
		heap.Remove(q, w.index)
	}
}
