package sim

import "time"

// The event queue is a concrete (monomorphic) 4-ary min-heap over small
// value entries, paired with a pool of event payload records addressed
// by index. Splitting the two keeps the parts the heap moves and
// compares — (time, sequence, index) — in 24 contiguous bytes, so sift
// operations never chase pointers, and lets fired or canceled events be
// recycled through a free list instead of becoming garbage. A 4-ary
// layout halves the tree depth of a binary heap, which matters because
// the simulation's queue is popped once per event executed.
//
// Determinism: ordering is exactly (at, seq), identical to the previous
// container/heap implementation, so event execution order — and
// therefore every golden file — is unchanged.

// eventKind discriminates the payload of a pooled event record. The
// non-func kinds are closure-free fast paths for the dominant event
// shapes; they let the steady-state loop run without allocating.
type eventKind uint8

const (
	// evFunc runs an arbitrary callback.
	evFunc eventKind = iota
	// evResume resumes a blocked task (Sleep, Signal wake, Resource
	// grant, machine spawn) — a goroutine handoff for processes, a
	// direct Machine.Resume call for state machines.
	evResume
	// evHook invokes an EventHook (e.g. netsim message delivery).
	evHook
	// evSignalTimeout expires a WaitTimeout.
	evSignalTimeout
	// evResTimeout expires an AcquireTimeout.
	evResTimeout
)

// eventRec is a pooled event payload. Records live in Env.pool and are
// addressed by heap-entry index; gen increments on every recycle so
// stale Timer handles can detect that their event is gone. freed marks
// records currently on the free list, which lets the pool-shrink pass
// trim trailing idle records after a burst drains.
type eventRec struct {
	kind     eventKind
	canceled bool
	freed    bool
	gen      uint32
	fn       func()
	task     *Task
	hook     EventHook
}

// heapEnt is one entry of the 4-ary min-heap: the comparison key plus
// the index of the payload record in Env.pool.
type heapEnt struct {
	at  time.Duration
	seq int64
	idx int32
}

func entLess(a, b heapEnt) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// minEventPool is the record count below which the pool is never
// trimmed; it keeps the shrink pass entirely off the steady-state path
// of small models and micro-benchmarks.
const minEventPool = 64

// allocEvent returns a free pool index, reusing recycled records first.
// Free-list entries can be stale (their record was trimmed away by
// shrinkPool); those are discarded lazily here.
func (e *Env) allocEvent() int32 {
	for n := len(e.free); n > 0; n = len(e.free) {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		if int(idx) < len(e.pool) {
			e.pool[idx].freed = false
			return idx
		}
	}
	e.pool = append(e.pool, eventRec{gen: e.genFloor})
	return int32(len(e.pool) - 1)
}

// recycle returns a record to the free list, dropping payload
// references and invalidating outstanding Timer handles. When the
// recycled record leaves the pool with an idle tail, the pool is
// trimmed so a drained burst does not hold its peak footprint forever.
func (e *Env) recycle(idx int32) {
	rec := &e.pool[idx]
	rec.gen++
	rec.fn = nil
	rec.task = nil
	rec.hook = nil
	rec.canceled = false
	rec.freed = true
	e.free = append(e.free, idx)
	if len(e.pool) > minEventPool && e.pool[len(e.pool)-1].freed {
		e.shrinkPool()
	}
}

// shrinkPool drops trailing idle records from the event pool. Records
// in the middle of the pool cannot move (live heap entries and Timer
// handles address them by index), so the policy is: trim the freed
// tail, lazily discard the free-list entries that pointed at it, and
// when a trim reclaims a meaningful chunk also give the backing arrays
// back to the allocator. Each call removes at least one record, so the
// total work is amortized by pool growth; genFloor keeps the gen
// counters of future records at that index ahead of any Timer handle
// issued before the trim.
func (e *Env) shrinkPool() {
	n := len(e.pool)
	for n > minEventPool && e.pool[n-1].freed {
		if g := e.pool[n-1].gen + 1; g > e.genFloor {
			e.genFloor = g
		}
		n--
	}
	trimmed := len(e.pool) - n
	if trimmed == 0 {
		return
	}
	e.pool = e.pool[:n]
	if trimmed < minEventPool {
		// Small trim: leave the stale free-list entries for allocEvent
		// to discard, keeping this call O(trimmed).
		return
	}
	w := 0
	for _, idx := range e.free {
		if int(idx) < n {
			e.free[w] = idx
			w++
		}
	}
	e.free = e.free[:w]
	if cap(e.free) >= 4*minEventPool && 4*len(e.free) < cap(e.free) {
		e.free = append(make([]int32, 0, 2*len(e.free)+minEventPool), e.free...)
	}
	if cap(e.pool) >= 4*minEventPool && 4*len(e.pool) < cap(e.pool) {
		e.pool = append(make([]eventRec, 0, 2*len(e.pool)+minEventPool), e.pool...)
	}
	if cap(e.events) >= 4*minEventPool && 4*len(e.events) < cap(e.events) {
		e.events = append(make([]heapEnt, 0, 2*len(e.events)+minEventPool), e.events...)
	}
}

func (e *Env) heapPush(ent heapEnt) {
	e.events = append(e.events, ent)
	// Sift up.
	h := e.events
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !entLess(ent, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ent
}

func (e *Env) heapPop() heapEnt {
	h := e.events
	top := h[0]
	n := len(h) - 1
	last := h[n]
	e.events = h[:n]
	if n > 0 {
		e.siftDown(last)
	}
	return top
}

// siftDown places ent, notionally at the root, into its final position.
func (e *Env) siftDown(ent heapEnt) {
	h := e.events
	n := len(h)
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if entLess(h[c], h[best]) {
				best = c
			}
		}
		if !entLess(h[best], ent) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = ent
}
