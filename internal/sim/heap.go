package sim

import "time"

// The event queue is a concrete (monomorphic) 4-ary min-heap over small
// value entries, paired with a pool of event payload records addressed
// by index. Splitting the two keeps the parts the heap moves and
// compares — (time, sequence, index) — in 24 contiguous bytes, so sift
// operations never chase pointers, and lets fired or canceled events be
// recycled through a free list instead of becoming garbage. A 4-ary
// layout halves the tree depth of a binary heap, which matters because
// the simulation's queue is popped once per event executed.
//
// Determinism: ordering is exactly (at, seq), identical to the previous
// container/heap implementation, so event execution order — and
// therefore every golden file — is unchanged.

// eventKind discriminates the payload of a pooled event record. The
// non-func kinds are closure-free fast paths for the dominant event
// shapes; they let the steady-state loop run without allocating.
type eventKind uint8

const (
	// evFunc runs an arbitrary callback.
	evFunc eventKind = iota
	// evDispatch resumes a blocked process (Sleep, Signal wake,
	// Resource grant).
	evDispatch
	// evHook invokes an EventHook (e.g. netsim message delivery).
	evHook
	// evSignalTimeout expires a Proc.WaitTimeout.
	evSignalTimeout
	// evResTimeout expires a Proc.AcquireTimeout.
	evResTimeout
)

// eventRec is a pooled event payload. Records live in Env.pool and are
// addressed by heap-entry index; gen increments on every recycle so
// stale Timer handles can detect that their event is gone.
type eventRec struct {
	kind     eventKind
	canceled bool
	gen      uint32
	fn       func()
	p        *Proc
	hook     EventHook
}

// heapEnt is one entry of the 4-ary min-heap: the comparison key plus
// the index of the payload record in Env.pool.
type heapEnt struct {
	at  time.Duration
	seq int64
	idx int32
}

func entLess(a, b heapEnt) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// allocEvent returns a free pool index, reusing recycled records first.
func (e *Env) allocEvent() int32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		return idx
	}
	e.pool = append(e.pool, eventRec{})
	return int32(len(e.pool) - 1)
}

// recycle returns a record to the free list, dropping payload
// references and invalidating outstanding Timer handles.
func (e *Env) recycle(idx int32) {
	rec := &e.pool[idx]
	rec.gen++
	rec.fn = nil
	rec.p = nil
	rec.hook = nil
	rec.canceled = false
	e.free = append(e.free, idx)
}

func (e *Env) heapPush(ent heapEnt) {
	e.events = append(e.events, ent)
	// Sift up.
	h := e.events
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !entLess(ent, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ent
}

func (e *Env) heapPop() heapEnt {
	h := e.events
	top := h[0]
	n := len(h) - 1
	last := h[n]
	e.events = h[:n]
	if n > 0 {
		e.siftDown(last)
	}
	return top
}

// siftDown places ent, notionally at the root, into its final position.
func (e *Env) siftDown(ent heapEnt) {
	h := e.events
	n := len(h)
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if entLess(h[c], h[best]) {
				best = c
			}
		}
		if !entLess(h[best], ent) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = ent
}
