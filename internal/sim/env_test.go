package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	env := NewEnv()
	var got []int
	env.Schedule(2*time.Second, func() { got = append(got, 2) })
	env.Schedule(1*time.Second, func() { got = append(got, 1) })
	env.Schedule(3*time.Second, func() { got = append(got, 3) })
	env.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if env.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", env.Now())
	}
}

func TestScheduleTieBreakFIFO(t *testing.T) {
	env := NewEnv()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		env.Schedule(time.Second, func() { got = append(got, i) })
	}
	env.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events ran out of order: %v", got)
		}
	}
}

func TestRunStopsAtUntil(t *testing.T) {
	env := NewEnv()
	fired := 0
	env.Schedule(1*time.Second, func() { fired++ })
	env.Schedule(5*time.Second, func() { fired++ })
	env.Run(2 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if env.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", env.Now())
	}
	env.Run(10 * time.Second)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestTimerCancel(t *testing.T) {
	env := NewEnv()
	fired := false
	tm := env.Schedule(time.Second, func() { fired = true })
	tm.Cancel()
	env.RunAll()
	if fired {
		t.Fatal("canceled timer fired")
	}
	if !tm.Stopped() {
		t.Fatal("canceled timer not Stopped")
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	env := NewEnv()
	env.Schedule(time.Second, func() {
		env.Schedule(-time.Minute, func() {
			if env.Now() != time.Second {
				t.Fatalf("negative delay ran at %v", env.Now())
			}
		})
	})
	env.RunAll()
}

func TestAtInPastPanics(t *testing.T) {
	env := NewEnv()
	env.Schedule(time.Second, func() {})
	env.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past did not panic")
		}
	}()
	env.At(0, func() {})
}

func TestProcSleep(t *testing.T) {
	env := NewEnv()
	var wake time.Duration
	env.Go("sleeper", func(p *Proc) {
		p.Sleep(3 * time.Second)
		wake = p.Now()
	})
	env.RunAll()
	if wake != 3*time.Second {
		t.Fatalf("woke at %v, want 3s", wake)
	}
	if env.Procs() != 0 {
		t.Fatalf("live procs = %d, want 0", env.Procs())
	}
}

func TestProcSleepUntil(t *testing.T) {
	env := NewEnv()
	var order []string
	env.Go("a", func(p *Proc) {
		p.SleepUntil(2 * time.Second)
		order = append(order, "a")
		p.SleepUntil(time.Second) // past: resumes immediately
		order = append(order, "a2")
	})
	env.Go("b", func(p *Proc) {
		p.Sleep(time.Second)
		order = append(order, "b")
	})
	env.RunAll()
	want := []string{"b", "a", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcSpawnsChild(t *testing.T) {
	env := NewEnv()
	var childRan bool
	env.Go("parent", func(p *Proc) {
		p.Go("child", func(c *Proc) {
			c.Sleep(time.Second)
			childRan = true
		})
		p.Sleep(2 * time.Second)
	})
	env.RunAll()
	if !childRan {
		t.Fatal("child did not run")
	}
}

func TestCloseUnblocksSleepers(t *testing.T) {
	env := NewEnv()
	cleanups := 0
	for i := 0; i < 5; i++ {
		env.Go("p", func(p *Proc) {
			defer func() { cleanups++ }()
			p.Sleep(time.Hour)
		})
	}
	env.Run(time.Second)
	if env.Procs() != 5 {
		t.Fatalf("live procs = %d, want 5", env.Procs())
	}
	env.Close()
	if env.Procs() != 0 {
		t.Fatalf("after Close live procs = %d, want 0", env.Procs())
	}
	if cleanups != 5 {
		t.Fatalf("cleanups = %d, want 5", cleanups)
	}
}

func TestCloseWithBlockingDefer(t *testing.T) {
	env := NewEnv()
	env.Go("p", func(p *Proc) {
		defer p.Sleep(time.Second) // blocking in defer during shutdown must not hang
		p.Sleep(time.Hour)
	})
	env.Run(time.Millisecond)
	env.Close()
	if env.Procs() != 0 {
		t.Fatal("proc leaked past Close")
	}
}

func TestSignalBroadcastWakesAll(t *testing.T) {
	env := NewEnv()
	sig := NewSignal(env)
	woken := 0
	for i := 0; i < 3; i++ {
		env.Go("w", func(p *Proc) {
			p.Wait(sig)
			woken++
		})
	}
	env.Go("caster", func(p *Proc) {
		p.Sleep(time.Second)
		sig.Broadcast()
	})
	env.RunAll()
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestSignalFireWakesOneFIFO(t *testing.T) {
	env := NewEnv()
	sig := NewSignal(env)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		env.Go("w", func(p *Proc) {
			p.Wait(sig)
			order = append(order, i)
		})
	}
	env.Go("firer", func(p *Proc) {
		p.Sleep(time.Second)
		sig.Fire()
		p.Sleep(time.Second)
		sig.Fire()
		p.Sleep(time.Second)
		sig.Fire()
	})
	env.RunAll()
	for i := range order {
		if order[i] != i {
			t.Fatalf("wake order = %v, want FIFO", order)
		}
	}
}

func TestWaitTimeout(t *testing.T) {
	env := NewEnv()
	sig := NewSignal(env)
	var gotSignal, gotTimeout bool
	env.Go("timeouter", func(p *Proc) {
		if p.WaitTimeout(sig, time.Second) {
			t.Error("expected timeout, got signal")
		}
		gotTimeout = true
	})
	env.Go("signaled", func(p *Proc) {
		p.Sleep(2 * time.Second) // waits after the broadcast below is scheduled
		if !p.WaitTimeout(sig, 10*time.Second) {
			t.Error("expected signal, got timeout")
		}
		gotSignal = true
	})
	env.Go("caster", func(p *Proc) {
		p.Sleep(3 * time.Second)
		sig.Broadcast()
	})
	env.RunAll()
	if !gotTimeout || !gotSignal {
		t.Fatalf("gotTimeout=%v gotSignal=%v", gotTimeout, gotSignal)
	}
	if sig.Waiters() != 0 {
		t.Fatalf("leftover waiters = %d", sig.Waiters())
	}
}

func TestWaitForTimeoutCondition(t *testing.T) {
	env := NewEnv()
	sig := NewSignal(env)
	ready := false
	var ok, ok2 bool
	env.Go("w", func(p *Proc) {
		ok = p.WaitForTimeout(sig, 5*time.Second, func() bool { return ready })
	})
	env.Go("w2", func(p *Proc) {
		ok2 = p.WaitForTimeout(sig, time.Second, func() bool { return ready })
	})
	env.Go("setter", func(p *Proc) {
		p.Sleep(2 * time.Second)
		ready = true
		sig.Broadcast()
	})
	env.RunAll()
	if !ok {
		t.Fatal("WaitForTimeout should have seen the condition")
	}
	if ok2 {
		t.Fatal("WaitForTimeout should have timed out before the condition")
	}
}

func TestResourceFIFOWithinPriority(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	var order []int
	env.Go("holder", func(p *Proc) {
		p.Acquire(r, 0)
		p.Sleep(time.Second)
		r.Release()
	})
	for i := 0; i < 3; i++ {
		i := i
		env.Go("w", func(p *Proc) {
			p.Sleep(time.Duration(i+1) * time.Millisecond)
			p.Acquire(r, 5)
			order = append(order, i)
			p.Sleep(time.Second)
			r.Release()
		})
	}
	env.RunAll()
	for i := range order {
		if order[i] != i {
			t.Fatalf("grant order = %v, want FIFO", order)
		}
	}
}

func TestResourcePriorityOrder(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	var order []float64
	env.Go("holder", func(p *Proc) {
		p.Acquire(r, 0)
		p.Sleep(time.Second)
		r.Release()
	})
	for _, pri := range []float64{3, 1, 2} {
		pri := pri
		env.Go("w", func(p *Proc) {
			p.Sleep(time.Millisecond)
			p.Acquire(r, pri)
			order = append(order, pri)
			p.Sleep(time.Second)
			r.Release()
		})
	}
	env.RunAll()
	want := []float64{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", order, want)
		}
	}
}

func TestResourceCapacity(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 2)
	maxInUse := 0
	for i := 0; i < 6; i++ {
		env.Go("w", func(p *Proc) {
			p.Acquire(r, 0)
			if r.InUse() > maxInUse {
				maxInUse = r.InUse()
			}
			p.Sleep(time.Second)
			r.Release()
		})
	}
	env.RunAll()
	if maxInUse != 2 {
		t.Fatalf("max in use = %d, want 2", maxInUse)
	}
	if r.Grants != 6 {
		t.Fatalf("grants = %d, want 6", r.Grants)
	}
}

func TestAcquireTimeout(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	var timedOut, acquired bool
	env.Go("holder", func(p *Proc) {
		p.Acquire(r, 0)
		p.Sleep(5 * time.Second)
		r.Release()
	})
	env.Go("short", func(p *Proc) {
		p.Sleep(time.Millisecond)
		timedOut = !p.AcquireTimeout(r, 0, time.Second)
	})
	env.Go("long", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		acquired = p.AcquireTimeout(r, 0, time.Minute)
		if acquired {
			r.Release()
		}
	})
	env.RunAll()
	if !timedOut {
		t.Fatal("short waiter should have timed out")
	}
	if !acquired {
		t.Fatal("long waiter should have acquired")
	}
	if r.InUse() != 0 {
		t.Fatalf("in use = %d after all released", r.InUse())
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release of idle resource did not panic")
		}
	}()
	r.Release()
}

func TestResourceUtilization(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	env.Go("w", func(p *Proc) {
		p.Acquire(r, 0)
		p.Sleep(time.Second)
		r.Release()
	})
	env.Run(2 * time.Second)
	if u := r.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestMailboxFIFO(t *testing.T) {
	env := NewEnv()
	mb := NewMailbox[int](env)
	var got []int
	env.Go("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Get(p))
		}
	})
	env.Go("send", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Second)
			mb.Put(i)
		}
	})
	env.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("recv order = %v", got)
		}
	}
}

func TestMailboxGetTimeout(t *testing.T) {
	env := NewEnv()
	mb := NewMailbox[string](env)
	var missed, hit bool
	env.Go("recv", func(p *Proc) {
		_, ok := mb.GetTimeout(p, time.Second)
		missed = !ok
		v, ok := mb.GetTimeout(p, 10*time.Second)
		hit = ok && v == "x"
	})
	env.Go("send", func(p *Proc) {
		p.Sleep(3 * time.Second)
		mb.Put("x")
	})
	env.RunAll()
	if !missed || !hit {
		t.Fatalf("missed=%v hit=%v", missed, hit)
	}
}

func TestMailboxPutFromEventCallback(t *testing.T) {
	env := NewEnv()
	mb := NewMailbox[int](env)
	var got int
	env.Go("recv", func(p *Proc) { got = mb.Get(p) })
	env.Schedule(time.Second, func() { mb.Put(42) })
	env.RunAll()
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
}

func TestMailboxTwoReceivers(t *testing.T) {
	env := NewEnv()
	mb := NewMailbox[int](env)
	sum := 0
	for i := 0; i < 2; i++ {
		env.Go("recv", func(p *Proc) { sum += mb.Get(p) })
	}
	env.Schedule(time.Second, func() { mb.Put(1) })
	env.Schedule(2*time.Second, func() { mb.Put(2) })
	env.RunAll()
	if sum != 3 {
		t.Fatalf("sum = %d, want 3", sum)
	}
	if env.Procs() != 0 {
		t.Fatalf("leaked receivers: %d", env.Procs())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		env := NewEnv()
		var trace []string
		r := NewResource(env, 2)
		sig := NewSignal(env)
		for i := 0; i < 10; i++ {
			i := i
			env.Go("p", func(p *Proc) {
				p.Sleep(time.Duration(i%3) * time.Second)
				p.Acquire(r, float64(i%4))
				trace = append(trace, p.Name()+string(rune('0'+i)))
				p.Sleep(time.Second)
				r.Release()
				sig.Broadcast()
			})
		}
		env.RunAll()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// Property: for any schedule of delays, events fire in nondecreasing time
// order and the clock never goes backwards.
func TestEventOrderProperty(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		env := NewEnv()
		var last time.Duration = -1
		ok := true
		for _, d := range delaysMs {
			env.Schedule(time.Duration(d)*time.Millisecond, func() {
				if env.Now() < last {
					ok = false
				}
				last = env.Now()
			})
		}
		env.RunAll()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a resource never exceeds its capacity and all waiters are
// eventually served for any mix of priorities and hold times.
func TestResourceInvariantProperty(t *testing.T) {
	f := func(prios []uint8, capacity uint8) bool {
		c := int(capacity%4) + 1
		env := NewEnv()
		r := NewResource(env, c)
		served := 0
		ok := true
		for _, pr := range prios {
			pr := pr
			env.Go("w", func(p *Proc) {
				p.Acquire(r, float64(pr))
				if r.InUse() > c {
					ok = false
				}
				p.Sleep(time.Duration(pr%5) * time.Millisecond)
				r.Release()
				served++
			})
		}
		env.RunAll()
		return ok && served == len(prios) && r.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireTimeoutImmediateGrant(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	ok := false
	env.Go("t", func(p *Proc) {
		ok = p.AcquireTimeout(r, 0, time.Second)
		if ok {
			r.Release()
		}
	})
	env.RunAll()
	if !ok {
		t.Fatal("free resource should grant immediately")
	}
	if env.Now() != 0 {
		t.Fatal("immediate grant took time")
	}
}

func TestAcquireTimeoutZeroBudgetFails(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	var got bool
	env.Go("holder", func(p *Proc) {
		p.Acquire(r, 0)
		p.Sleep(time.Hour)
		r.Release()
	})
	env.Go("t", func(p *Proc) {
		p.Sleep(time.Millisecond)
		got = p.AcquireTimeout(r, 0, 0)
	})
	env.Run(time.Second)
	if got {
		t.Fatal("zero-budget acquire of a busy resource succeeded")
	}
	env.Close()
}

func TestStepsCountAndProcs(t *testing.T) {
	env := NewEnv()
	env.Schedule(time.Second, func() {})
	env.Schedule(2*time.Second, func() {})
	env.RunAll()
	if env.Steps() != 2 {
		t.Fatalf("steps = %d", env.Steps())
	}
	if env.Procs() != 0 {
		t.Fatalf("procs = %d", env.Procs())
	}
}

func TestGoAfterClosePanics(t *testing.T) {
	env := NewEnv()
	env.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Go on closed Env did not panic")
		}
	}()
	env.Go("late", func(*Proc) {})
}

func TestWaitTimeoutZeroReturnsImmediately(t *testing.T) {
	env := NewEnv()
	sig := NewSignal(env)
	var got bool
	env.Go("t", func(p *Proc) {
		got = p.WaitTimeout(sig, 0)
	})
	env.RunAll()
	if got {
		t.Fatal("zero timeout should report timeout")
	}
}

func TestResourceCapacityPanics(t *testing.T) {
	env := NewEnv()
	defer func() {
		if recover() == nil {
			t.Fatal("zero-capacity resource accepted")
		}
	}()
	NewResource(env, 0)
}

func TestCloseTerminatesInSpawnOrder(t *testing.T) {
	// Close must tear processes down in spawn order, not map order:
	// teardown side effects (deferred cleanup, diagnostics) are part of
	// the reproducible-run contract.
	env := NewEnv()
	sig := NewSignal(env)
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		env.Go("waiter", func(p *Proc) {
			defer func() { order = append(order, i) }()
			p.Wait(sig)
		})
	}
	env.RunAll() // all procs start and block on the signal
	env.Close()
	if len(order) != 8 {
		t.Fatalf("Close tore down %d procs, want 8", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("Close teardown order = %v, want spawn order", order)
		}
	}
}
