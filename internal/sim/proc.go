package sim

import (
	"errors"
	"time"
)

// errStopped unwinds a process goroutine when the environment is closed.
var errStopped = errors.New("sim: process stopped")

// Proc is a simulation process: a goroutine scheduled cooperatively by the
// kernel. At most one process runs at any instant; a process runs until it
// blocks on a kernel primitive (Sleep, Wait, Acquire, mailbox Get) or
// returns.
//
// All Proc methods must be called from the process's own goroutine.
type Proc struct {
	env  *Env
	name string
	fn   func(p *Proc)

	// h is the single handoff channel: the kernel and the process
	// alternate strictly, each sending the execution token and then
	// receiving it back, so one unbuffered channel serves both
	// directions (resume and yield).
	h chan struct{}

	// slot is the process's index in the env's spawn-order registry,
	// or -1 while parked for reuse.
	slot int

	// stopping is set by Close before the stop resume is delivered so
	// that blocking calls made from deferred cleanup during unwinding
	// fail fast instead of deadlocking the kernel. stop tells the
	// goroutine to unwind (checked after every resume).
	stopping bool
	stop     bool

	// task carries the process's intrusive wait records for Signal and
	// Resource queues (a blocked process sits in at most one queue, so
	// embedding them makes waiting allocation free) and makes the
	// process a resumable kernel task like any state machine: wakeups
	// land on the task and Resume performs the goroutine handoff.
	task Task
}

// Resume implements Machine for processes: hand the execution token to
// the process goroutine and wait for it to block again or exit.
func (p *Proc) Resume() {
	p.h <- struct{}{}
	<-p.h
}

// Go spawns a new process running fn. The process starts at the current
// virtual time, after events already queued for this instant. The name is
// used in diagnostics only.
//
// Finished processes park their goroutine on the environment's free
// list, so in steady state Go reuses a goroutine and allocates nothing.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	if e.closed {
		panic("sim: Go on closed Env")
	}
	var p *Proc
	if n := len(e.freeProcs); n > 0 {
		p = e.freeProcs[n-1]
		e.freeProcs[n-1] = nil
		e.freeProcs = e.freeProcs[:n-1]
	} else {
		p = &Proc{env: e, h: make(chan struct{})}
		p.task.env = e
		p.task.m = p
		p.task.slot = -1
		p.task.wait.t = &p.task
		p.task.rwait.t = &p.task
		go p.loop()
	}
	p.name = name
	p.fn = fn
	p.stopping = false
	p.stop = false
	e.register(p)
	e.scheduleResume(e.now, &p.task)
	return p
}

// loop is the body of a process goroutine. Each iteration waits for the
// execution token, runs one spawned function, and then either parks the
// goroutine for reuse or exits (on stop or model panic).
func (p *Proc) loop() {
	e := p.env
	for {
		<-p.h
		if p.stop {
			// Stopped before the first dispatch (still registered) or
			// while parked on the free list (not registered).
			if p.slot >= 0 {
				e.unregister(p)
			}
			p.h <- struct{}{}
			return
		}
		r := p.run()
		// The kernel is blocked in dispatch (or Close) waiting for
		// this yield, so mutating the registry here is race-free.
		e.unregister(p)
		if r != nil && r != errStopped { //nolint:errorlint // sentinel identity
			p.h <- struct{}{}
			panic(r)
		}
		if r == errStopped { //nolint:errorlint // sentinel identity
			p.h <- struct{}{}
			return
		}
		p.fn = nil
		e.freeProcs = append(e.freeProcs, p)
		p.h <- struct{}{}
	}
}

// run executes the spawned function, converting a panic (including the
// errStopped unwind) into a return value.
func (p *Proc) run() (r any) {
	defer func() { r = recover() }()
	p.fn(p)
	return nil
}

// block yields control to the kernel and waits to be resumed. It panics
// with errStopped when the environment is shutting down.
func (p *Proc) block() {
	if p.stopping {
		panic(errStopped)
	}
	p.h <- struct{}{}
	<-p.h
	if p.stop {
		panic(errStopped)
	}
}

// Env returns the process's environment.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.env.now }

// Sleep suspends the process for d of virtual time. A non-positive d
// yields the processor for the current instant (other events scheduled now
// still run) and resumes immediately after.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.env.scheduleResume(p.env.now+d, &p.task)
	p.block()
}

// SleepUntil suspends the process until absolute virtual time t. If t is
// in the past it behaves like Sleep(0).
func (p *Proc) SleepUntil(t time.Duration) {
	if t < p.env.now {
		t = p.env.now
	}
	p.env.scheduleResume(t, &p.task)
	p.block()
}

// Go spawns a child process. It is shorthand for p.Env().Go.
func (p *Proc) Go(name string, fn func(p *Proc)) *Proc {
	return p.env.Go(name, fn)
}
