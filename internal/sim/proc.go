package sim

import (
	"errors"
	"time"
)

// errStopped unwinds a process goroutine when the environment is closed.
var errStopped = errors.New("sim: process stopped")

type resumeMsg struct {
	stop bool
}

// Proc is a simulation process: a goroutine scheduled cooperatively by the
// kernel. At most one process runs at any instant; a process runs until it
// blocks on a kernel primitive (Sleep, Wait, Acquire, mailbox Get) or
// returns.
//
// All Proc methods must be called from the process's own goroutine.
type Proc struct {
	env  *Env
	name string

	resume chan resumeMsg
	yield  chan struct{}

	// stopping is set by Close before the stop resume is delivered so
	// that blocking calls made from deferred cleanup during unwinding
	// fail fast instead of deadlocking the kernel.
	stopping bool
}

// Go spawns a new process running fn. The process starts at the current
// virtual time, after events already queued for this instant. The name is
// used in diagnostics only.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	if e.closed {
		panic("sim: Go on closed Env")
	}
	p := &Proc{
		env:    e,
		name:   name,
		resume: make(chan resumeMsg),
		yield:  make(chan struct{}),
	}
	e.procs[p] = struct{}{}
	go func() {
		defer func() {
			// The kernel is blocked in dispatch (or Close) waiting for
			// this yield, so mutating e.procs here is race-free.
			delete(e.procs, p)
			r := recover()
			p.yield <- struct{}{}
			if r != nil && r != errStopped { //nolint:errorlint // sentinel identity
				panic(r)
			}
		}()
		msg := <-p.resume
		if msg.stop {
			return
		}
		fn(p)
	}()
	e.Schedule(0, func() { e.dispatch(p) })
	return p
}

// dispatch hands control to p until it blocks again or exits.
func (e *Env) dispatch(p *Proc) {
	p.resume <- resumeMsg{}
	<-p.yield
}

// block yields control to the kernel and waits to be resumed. It panics
// with errStopped when the environment is shutting down.
func (p *Proc) block() {
	if p.stopping {
		panic(errStopped)
	}
	p.yield <- struct{}{}
	msg := <-p.resume
	if msg.stop {
		panic(errStopped)
	}
}

// Env returns the process's environment.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.env.now }

// Sleep suspends the process for d of virtual time. A non-positive d
// yields the processor for the current instant (other events scheduled now
// still run) and resumes immediately after.
func (p *Proc) Sleep(d time.Duration) {
	p.env.Schedule(d, func() { p.env.dispatch(p) })
	p.block()
}

// SleepUntil suspends the process until absolute virtual time t. If t is
// in the past it behaves like Sleep(0).
func (p *Proc) SleepUntil(t time.Duration) {
	if t < p.env.now {
		t = p.env.now
	}
	p.env.At(t, func() { p.env.dispatch(p) })
	p.block()
}

// Go spawns a child process. It is shorthand for p.Env().Go.
func (p *Proc) Go(name string, fn func(p *Proc)) *Proc {
	return p.env.Go(name, fn)
}
