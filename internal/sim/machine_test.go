package sim

import (
	"runtime"
	"testing"
	"time"
)

// The Machine path must behave exactly like the Proc path at every
// shared primitive: same wakeup order, same timeout semantics, same
// teardown discipline. These tests pin the contract; the model-level
// goldens pin the end-to-end equivalence.

type sleeperMachine struct {
	task  Task
	d     time.Duration
	ticks int
}

func (m *sleeperMachine) Resume() {
	m.ticks++
	m.task.Sleep(m.d)
}

func TestMachineSleepRepeats(t *testing.T) {
	env := NewEnv()
	m := &sleeperMachine{d: time.Millisecond}
	env.Spawn(&m.task, m)
	env.Run(10 * time.Millisecond)
	// Spawn resumes once at t=0, then once per elapsed millisecond.
	if m.ticks != 11 {
		t.Fatalf("machine resumed %d times, want 11", m.ticks)
	}
	if env.Machines() != 1 {
		t.Fatalf("Machines() = %d, want 1", env.Machines())
	}
	env.Close()
	if env.Machines() != 0 {
		t.Fatalf("Machines() after Close = %d, want 0", env.Machines())
	}
}

// logWaiter parks on a signal and logs its name each time it is woken,
// re-arming afterwards.
type logWaiter struct {
	task Task
	sig  *Signal
	log  *[]string
	name string
}

func (m *logWaiter) Resume() {
	*m.log = append(*m.log, m.name)
	m.task.Wait(m.sig)
}

// TestMachineSignalFIFOWithProcs interleaves processes and machines in
// one signal queue and checks that Fire serves them strictly in arming
// order, regardless of kind.
func TestMachineSignalFIFOWithProcs(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	sig := NewSignal(env)
	var log []string
	spawnProc := func(name string) {
		env.Go(name, func(p *Proc) {
			for {
				p.Wait(sig)
				log = append(log, name)
			}
		})
	}
	adoptMachine := func(name string) {
		m := &logWaiter{sig: sig, log: &log, name: name}
		env.Adopt(&m.task, m)
		m.task.Wait(sig)
	}
	// Machines arm at adopt time; processes arm at their t=0 dispatch.
	adoptMachine("m1")
	spawnProc("p1")
	adoptMachine("m2")
	spawnProc("p2")
	env.RunAll()
	want := []string{"m1", "m2", "p1", "p2"}
	for round := 0; round < 3; round++ {
		log = log[:0]
		for range want {
			sig.Fire()
		}
		env.RunAll()
		if len(log) != len(want) {
			t.Fatalf("round %d: woke %v, want %v", round, log, want)
		}
		for i := range want {
			if log[i] != want[i] {
				t.Fatalf("round %d: woke %v, want %v", round, log, want)
			}
		}
	}
}

// resLogger acquires a resource at adopt time and, once granted, logs
// its id and releases, handing the unit to the next waiter.
type resLogger struct {
	task Task
	r    *Resource
	log  *[]int
	id   int
}

func (m *resLogger) Resume() {
	*m.log = append(*m.log, m.id)
	m.r.Release()
}

// TestMachineResourcePriority checks machines queue by (priority, seq)
// exactly like processes.
func TestMachineResourcePriority(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	holder := &resLogger{r: r}
	env.Adopt(&holder.task, holder)
	if !holder.task.Acquire(r, 0) {
		t.Fatal("initial acquire should grant synchronously")
	}
	var log []int
	add := func(id int, prio float64) *resLogger {
		m := &resLogger{r: r, log: &log, id: id}
		env.Adopt(&m.task, m)
		if m.task.Acquire(r, prio) {
			t.Fatalf("waiter %d acquired a held resource", id)
		}
		return m
	}
	add(1, 3) // ties and priorities: expect 3 (prio 1), 2, 4 (prio 2 FIFO), 1
	add(2, 2)
	add(3, 1)
	add(4, 2)
	r.Release()
	env.RunAll()
	want := []int{3, 2, 4, 1}
	if len(log) != len(want) {
		t.Fatalf("grant order %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("grant order %v, want %v", log, want)
		}
	}
	env.Close()
}

type timeoutLogger struct {
	task Task
	log  *[]string
	name string
}

func (m *timeoutLogger) Resume() {
	if m.task.TimedOut() {
		*m.log = append(*m.log, m.name+":timeout")
	} else {
		*m.log = append(*m.log, m.name+":woken")
	}
}

func TestMachineWaitTimeout(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	sig := NewSignal(env)
	var log []string

	expire := &timeoutLogger{log: &log, name: "a"}
	env.Adopt(&expire.task, expire)
	if !expire.task.WaitTimeout(sig, 5*time.Millisecond) {
		t.Fatal("positive timeout should park")
	}
	env.Run(10 * time.Millisecond)
	if len(log) != 1 || log[0] != "a:timeout" {
		t.Fatalf("log %v, want [a:timeout]", log)
	}
	if sig.Waiters() != 0 {
		t.Fatalf("expired waiter still queued (%d)", sig.Waiters())
	}

	log = log[:0]
	woken := &timeoutLogger{log: &log, name: "b"}
	env.Adopt(&woken.task, woken)
	woken.task.WaitTimeout(sig, 5*time.Millisecond)
	sig.Fire()
	env.Run(20 * time.Millisecond)
	if len(log) != 1 || log[0] != "b:woken" {
		t.Fatalf("log %v, want [b:woken]", log)
	}

	// Non-positive timeout: immediate timeout, no park.
	if woken.task.WaitTimeout(sig, 0) {
		t.Fatal("WaitTimeout(0) parked, want immediate false")
	}
	if sig.Waiters() != 0 {
		t.Fatalf("WaitTimeout(0) left a queued waiter")
	}
}

type resTimeoutLogger struct {
	task Task
	log  *[]string
	name string
}

func (m *resTimeoutLogger) Resume() {
	if m.task.ResTimedOut() {
		*m.log = append(*m.log, m.name+":timeout")
	} else {
		*m.log = append(*m.log, m.name+":granted")
	}
}

func TestMachineAcquireTimeout(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	r := NewResource(env, 1)
	var log []string
	holder := &resTimeoutLogger{log: &log, name: "holder"}
	env.Adopt(&holder.task, holder)
	if holder.task.AcquireTimeout(r, 0, time.Second) != AcquireGranted {
		t.Fatal("free resource should grant synchronously")
	}

	late := &resTimeoutLogger{log: &log, name: "late"}
	env.Adopt(&late.task, late)
	if late.task.AcquireTimeout(r, 0, 0) != AcquireTimedOut {
		t.Fatal("d<=0 on a held resource should time out immediately")
	}

	parked := &resTimeoutLogger{log: &log, name: "parked"}
	env.Adopt(&parked.task, parked)
	if parked.task.AcquireTimeout(r, 0, 5*time.Millisecond) != AcquireParked {
		t.Fatal("held resource should park")
	}
	env.Run(10 * time.Millisecond)
	if len(log) != 1 || log[0] != "parked:timeout" {
		t.Fatalf("log %v, want [parked:timeout]", log)
	}
	if r.QueueLen() != 0 {
		t.Fatalf("expired waiter still queued (%d)", r.QueueLen())
	}

	log = log[:0]
	granted := &resTimeoutLogger{log: &log, name: "g"}
	env.Adopt(&granted.task, granted)
	granted.task.AcquireTimeout(r, 0, time.Hour)
	r.Release() // holder's unit
	env.RunAll()
	if len(log) != 1 || log[0] != "g:granted" {
		t.Fatalf("log %v, want [g:granted]", log)
	}
	r.Release()
}

// drainMachine drains its mailbox completely on every wakeup, the
// machine counterpart of a Get loop.
type drainMachine struct {
	task Task
	mb   *Mailbox[int]
	got  []int
}

func (m *drainMachine) Resume() {
	for {
		v, ok := m.mb.Recv(&m.task)
		if !ok {
			return
		}
		m.got = append(m.got, v)
	}
}

func TestMachineMailboxDrain(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	mb := NewMailbox[int](env)
	m := &drainMachine{mb: mb}
	env.Adopt(&m.task, m)
	if _, ok := mb.Recv(&m.task); ok {
		t.Fatal("Recv on empty mailbox should park")
	}
	// Three puts while parked: the first wakes the machine, one resume
	// event drains all three (Fire on a queue with one waiter wakes it
	// once; later Puts find an empty queue).
	mb.Put(1)
	mb.Put(2)
	mb.Put(3)
	steps := env.Steps()
	env.RunAll()
	if env.Steps()-steps != 1 {
		t.Fatalf("drain took %d events, want 1", env.Steps()-steps)
	}
	if len(m.got) != 3 || m.got[0] != 1 || m.got[1] != 2 || m.got[2] != 3 {
		t.Fatalf("drained %v, want [1 2 3]", m.got)
	}
	mb.Put(4)
	env.RunAll()
	if len(m.got) != 4 || m.got[3] != 4 {
		t.Fatalf("drained %v, want trailing 4", m.got)
	}
}

func TestMachineDetachAndReuse(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	m := &sleeperMachine{d: time.Millisecond}
	env.Spawn(&m.task, m)
	env.Step() // initial resume
	m.task.cancelWaits()
	// Simulate the machine finishing: detach, then reuse the task.
	m.task.Detach()
	if env.Machines() != 0 {
		t.Fatalf("Machines() after Detach = %d, want 0", env.Machines())
	}
	env.Spawn(&m.task, m)
	if env.Machines() != 1 {
		t.Fatalf("Machines() after re-Spawn = %d, want 1", env.Machines())
	}
}

func TestSpawnOnClosedEnvPanics(t *testing.T) {
	env := NewEnv()
	env.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Spawn on closed Env did not panic")
		}
	}()
	m := &sleeperMachine{}
	env.Spawn(&m.task, m)
}

// closerMachine records its MachineClose call; each variant parks on a
// different primitive so Close teardown covers timer, signal, mailbox,
// and resource waits.
type closerMachine struct {
	task Task
	name string
	log  *[]string
}

func (m *closerMachine) Resume()       {}
func (m *closerMachine) MachineClose() { *m.log = append(*m.log, m.name) }

// TestCloseDetachesMachinesInSpawnOrder is the machine mirror of
// TestCloseTerminatesInSpawnOrder: Close mid-run must tear down parked
// machines in spawn order whatever primitive each is parked on, empty
// the wait queues, and leave no goroutines behind.
func TestCloseDetachesMachinesInSpawnOrder(t *testing.T) {
	before := runtime.NumGoroutine()
	env := NewEnv()
	sig := NewSignal(env)
	mb := NewMailbox[int](env)
	res := NewResource(env, 1)
	var log []string

	adopt := func(name string) *closerMachine {
		m := &closerMachine{name: name, log: &log}
		env.Adopt(&m.task, m)
		return m
	}
	timer := adopt("timer")
	timer.task.Sleep(time.Hour)
	signal := adopt("signal")
	signal.task.Wait(sig)
	mail := adopt("mailbox")
	if _, ok := mb.Recv(&mail.task); ok {
		t.Fatal("Recv on empty mailbox should park")
	}
	holder := adopt("holder")
	if !holder.task.Acquire(res, 0) {
		t.Fatal("free resource should grant")
	}
	blocked := adopt("resource")
	if blocked.task.Acquire(res, 0) {
		t.Fatal("held resource should park")
	}
	withTimeout := adopt("restimeout")
	if withTimeout.task.AcquireTimeout(res, 0, time.Hour) != AcquireParked {
		t.Fatal("held resource should park")
	}

	env.Run(time.Minute) // mid-run: the hour timer is still pending
	env.Close()

	want := []string{"timer", "signal", "mailbox", "holder", "resource", "restimeout"}
	if len(log) != len(want) {
		t.Fatalf("MachineClose order %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("MachineClose order %v, want %v", log, want)
		}
	}
	if sig.Waiters() != 0 {
		t.Fatalf("signal still has %d waiters after Close", sig.Waiters())
	}
	if res.QueueLen() != 0 {
		t.Fatalf("resource still has %d waiters after Close", res.QueueLen())
	}
	if env.Machines() != 0 {
		t.Fatalf("Machines() after Close = %d, want 0", env.Machines())
	}
	// Machines run on the driving goroutine: none may exist before or
	// after teardown.
	for i := 0; i < 10 && runtime.NumGoroutine() > before; i++ {
		runtime.Gosched()
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines leaked: %d before, %d after Close", before, got)
	}
}

// TestCloseStopsProcsBeforeMachines pins the documented teardown order:
// processes (spawn order) first, then machines (spawn order).
func TestCloseStopsProcsBeforeMachines(t *testing.T) {
	env := NewEnv()
	sig := NewSignal(env)
	var log []string
	m := &closerMachine{name: "machine", log: &log}
	env.Adopt(&m.task, m)
	m.task.Wait(sig)
	env.Go("proc", func(p *Proc) {
		defer func() { log = append(log, "proc") }()
		p.Wait(sig)
	})
	env.RunAll()
	env.Close()
	if len(log) != 2 || log[0] != "proc" || log[1] != "machine" {
		t.Fatalf("teardown order %v, want [proc machine]", log)
	}
}

// TestEventPoolShrinksAfterBurst pins the satellite fix: after a burst
// of scheduled events drains, the event pool gives its burst-peak
// records back instead of holding them for the rest of the run.
func TestEventPoolShrinksAfterBurst(t *testing.T) {
	env := NewEnv()
	// One long-lived event at index 0 keeps the pool from emptying.
	keep := env.Schedule(time.Hour, func() {})
	const burst = 10000
	for i := 0; i < burst; i++ {
		env.Schedule(time.Duration(i)*time.Microsecond, func() {})
	}
	if len(env.pool) < burst {
		t.Fatalf("pool holds %d records during burst, want >= %d", len(env.pool), burst)
	}
	var stale Timer
	stale = env.Schedule(time.Duration(burst)*time.Microsecond, func() {})
	env.Run(time.Minute)
	if len(env.pool) > minEventPool {
		t.Fatalf("pool holds %d records after burst drained, want <= %d", len(env.pool), minEventPool)
	}
	if len(env.free) > minEventPool {
		t.Fatalf("free list holds %d entries after shrink, want <= %d", len(env.free), minEventPool)
	}
	// Handles into the trimmed region stay safe and read as stopped.
	if !stale.Stopped() {
		t.Fatal("stale timer into trimmed pool should report Stopped")
	}
	stale.Cancel() // must not panic or cancel anything live

	// Regrown records must not alias stale handles: schedule new events
	// and verify the old handle still cannot cancel them.
	var fired int
	for i := 0; i < burst; i++ {
		env.Schedule(time.Millisecond, func() { fired++ })
	}
	stale.Cancel()
	env.Run(2 * time.Hour)
	if fired != burst {
		t.Fatalf("stale handle canceled a regrown event: fired %d, want %d", fired, burst)
	}
	if keep.Stopped() != true {
		t.Fatal("long-lived event should have fired by now")
	}
	env.Close()
}

// TestEventPoolSteadyStateNoShrinkThrash checks the shrink pass stays
// off the steady-state path: a small recurring workload keeps its pool
// and never reallocates.
func TestEventPoolSteadyStateNoShrinkThrash(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	env.Go("sleeper", func(p *Proc) {
		for {
			p.Sleep(time.Millisecond)
		}
	})
	for i := 0; i < 64; i++ {
		env.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		env.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady state allocates %.1f objects/op with shrink policy, want 0", allocs)
	}
}

func TestMachineSleepNoAllocs(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	m := &sleeperMachine{d: time.Millisecond}
	env.Spawn(&m.task, m)
	for i := 0; i < 8; i++ {
		env.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		env.Step()
	})
	if allocs != 0 {
		t.Fatalf("machine sleep resume allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkMachineSleep measures the machine resume cycle that replaces
// the goroutine handoff of BenchmarkSleepPingPong: pop event, call
// Resume, schedule the next sleep.
func BenchmarkMachineSleep(b *testing.B) {
	env := NewEnv()
	m := &sleeperMachine{d: time.Millisecond}
	env.Spawn(&m.task, m)
	defer env.Close()
	for i := 0; i < 8; i++ {
		env.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Step()
	}
}

// BenchmarkMachineSignalWaitFire is the machine counterpart of
// BenchmarkSignalWaitFire: a parked machine, a fire, a direct resume.
func BenchmarkMachineSignalWaitFire(b *testing.B) {
	env := NewEnv()
	defer env.Close()
	sig := NewSignal(env)
	var log []string
	m := &logWaiter{sig: sig, log: &log, name: "w"}
	env.Adopt(&m.task, m)
	m.task.Wait(sig)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		log = log[:0]
		sig.Fire()
		env.RunAll()
	}
}

// BenchmarkMachineMailbox measures a Put waking a parked machine that
// drains it — the dominant cycle of every converted endpoint.
func BenchmarkMachineMailbox(b *testing.B) {
	env := NewEnv()
	defer env.Close()
	mb := NewMailbox[int](env)
	m := &drainMachine{mb: mb}
	env.Adopt(&m.task, m)
	mb.Recv(&m.task)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.got = m.got[:0]
		mb.Put(i)
		env.RunAll()
	}
}
