package sim

import (
	"testing"
	"time"
)

// The kernel promises an allocation-free steady state on its hot paths.
// These tests pin that promise down with AllocsPerRun so a regression
// (a closure creeping back into Sleep, the event pool losing its free
// list, the mailbox ring reverting to append) fails loudly.

func TestScheduleStepNoAllocs(t *testing.T) {
	env := NewEnv()
	fn := func() {}
	// Warm the event pool and heap so capacity growth is behind us.
	for i := 0; i < 8; i++ {
		env.Schedule(0, fn)
	}
	env.RunAll()
	allocs := testing.AllocsPerRun(1000, func() {
		env.Schedule(0, fn)
		env.Step()
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Step allocates %.1f objects/op, want 0", allocs)
	}
}

func TestSleepNoAllocs(t *testing.T) {
	env := NewEnv()
	env.Go("sleeper", func(p *Proc) {
		for {
			p.Sleep(time.Millisecond)
		}
	})
	defer env.Close()
	// Warm: initial dispatch plus a few sleep cycles.
	for i := 0; i < 8; i++ {
		env.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		env.Step()
	})
	if allocs != 0 {
		t.Fatalf("Sleep resume allocates %.1f objects/op, want 0", allocs)
	}
}

func TestMailboxPutTryGetNoAllocs(t *testing.T) {
	env := NewEnv()
	m := NewMailbox[int](env)
	// Warm the ring.
	for i := 0; i < 8; i++ {
		m.Put(i)
	}
	for {
		if _, ok := m.TryGet(); !ok {
			break
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		m.Put(1)
		m.TryGet()
	})
	if allocs != 0 {
		t.Fatalf("Mailbox Put+TryGet allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkSchedule measures the bare schedule-and-execute cycle: one
// pooled event through the 4-ary heap.
func BenchmarkSchedule(b *testing.B) {
	env := NewEnv()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Schedule(0, fn)
		env.Step()
	}
}

// BenchmarkSleepPingPong measures a full process handoff: the kernel
// resumes a sleeping process, which schedules its next sleep and yields
// back. This is the dominant cycle of every model process.
func BenchmarkSleepPingPong(b *testing.B) {
	env := NewEnv()
	env.Go("sleeper", func(p *Proc) {
		for {
			p.Sleep(time.Millisecond)
		}
	})
	defer env.Close()
	for i := 0; i < 8; i++ {
		env.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Step()
	}
}

// BenchmarkMailboxPutGet measures the non-blocking mailbox fast path.
func BenchmarkMailboxPutGet(b *testing.B) {
	env := NewEnv()
	m := NewMailbox[int](env)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put(i)
		m.TryGet()
	}
}

// BenchmarkSignalWaitFire measures a blocking receive: a process waits
// on a signal, the driver fires it, the kernel dispatches the wakeup.
func BenchmarkSignalWaitFire(b *testing.B) {
	env := NewEnv()
	sig := NewSignal(env)
	env.Go("waiter", func(p *Proc) {
		for {
			p.Wait(sig)
		}
	})
	defer env.Close()
	env.RunAll()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig.Fire()
		env.RunAll()
	}
}
