package sim

import "time"

// Signal is a condition-variable-like primitive. Processes wait on it;
// Broadcast wakes every current waiter and Fire wakes the longest-waiting
// one. Wakeups are scheduled at the current instant, so woken processes
// run after the waking event completes, in wait order.
//
// As with condition variables, a wakeup is a hint: callers should re-check
// their predicate in a loop (or use WaitFor).
//
// The waiter queue is an intrusive doubly-linked list of per-task
// wait records (Task.wait), so enqueueing is allocation free and
// removal — on wake or timeout — is O(1). Processes and state machines
// share the queue: a wakeup resumes either kind through its task.
type Signal struct {
	env        *Env
	head, tail *signalWait
	n          int
}

// signalWait is a task's intrusive signal-queue node. Every Task
// embeds exactly one: a blocked task waits on at most one signal.
type signalWait struct {
	t          *Task
	prev, next *signalWait
	s          *Signal // owning signal while queued, nil otherwise
	timedOut   bool
	timer      Timer
	hasTimer   bool
}

// NewSignal returns a signal bound to env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Wait blocks the process until the signal is fired or broadcast.
func (p *Proc) Wait(s *Signal) {
	w := &p.task.wait
	w.timedOut = false
	w.hasTimer = false
	s.push(w)
	p.block()
}

// WaitTimeout blocks until the signal wakes the process or d elapses. It
// reports true when woken by the signal and false on timeout.
func (p *Proc) WaitTimeout(s *Signal, d time.Duration) bool {
	if d <= 0 {
		return false
	}
	w := &p.task.wait
	w.timedOut = false
	w.timer = s.env.scheduleTimeout(s.env.now+d, evSignalTimeout, &p.task)
	w.hasTimer = true
	s.push(w)
	p.block()
	return !w.timedOut
}

// WaitFor blocks until cond() is true, re-checking each time the signal
// wakes it. cond is evaluated before the first wait, so a true condition
// never blocks.
func (p *Proc) WaitFor(s *Signal, cond func() bool) {
	for !cond() {
		p.Wait(s)
	}
}

// WaitForTimeout blocks until cond() is true or the deadline at absolute
// virtual time t passes. It reports true when the condition held.
func (p *Proc) WaitForTimeout(s *Signal, t time.Duration, cond func() bool) bool {
	for !cond() {
		if p.Now() >= t {
			return false
		}
		if !p.WaitTimeout(s, t-p.Now()) && !cond() {
			return false
		}
	}
	return true
}

// Fire wakes the longest-waiting process, if any.
func (s *Signal) Fire() {
	w := s.head
	if w == nil {
		return
	}
	s.unlink(w)
	s.wake(w)
}

// Broadcast wakes every process currently waiting.
func (s *Signal) Broadcast() {
	for w := s.head; w != nil; {
		next := w.next
		w.prev, w.next, w.s = nil, nil, nil
		s.wake(w)
		w = next
	}
	s.head, s.tail = nil, nil
	s.n = 0
}

// Waiters returns the number of processes currently waiting.
func (s *Signal) Waiters() int { return s.n }

func (s *Signal) wake(w *signalWait) {
	if w.hasTimer {
		w.timer.Cancel()
		w.hasTimer = false
	}
	s.env.scheduleResume(s.env.now, w.t)
}

func (s *Signal) push(w *signalWait) {
	w.s = s
	w.prev = s.tail
	w.next = nil
	if s.tail != nil {
		s.tail.next = w
	} else {
		s.head = w
	}
	s.tail = w
	s.n++
}

func (s *Signal) unlink(w *signalWait) {
	if w.prev != nil {
		w.prev.next = w.next
	} else {
		s.head = w.next
	}
	if w.next != nil {
		w.next.prev = w.prev
	} else {
		s.tail = w.prev
	}
	w.prev, w.next, w.s = nil, nil, nil
	s.n--
}
