package sim

import "time"

// Signal is a condition-variable-like primitive. Processes wait on it;
// Broadcast wakes every current waiter and Fire wakes the longest-waiting
// one. Wakeups are scheduled at the current instant, so woken processes
// run after the waking event completes, in wait order.
//
// As with condition variables, a wakeup is a hint: callers should re-check
// their predicate in a loop (or use WaitFor).
type Signal struct {
	env     *Env
	waiters []*signalWait
}

type signalWait struct {
	p        *Proc
	signaled bool
	timedOut bool
	timer    *Timer
}

// NewSignal returns a signal bound to env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Wait blocks the process until the signal is fired or broadcast.
func (p *Proc) Wait(s *Signal) {
	w := &signalWait{p: p}
	s.waiters = append(s.waiters, w)
	p.block()
}

// WaitTimeout blocks until the signal wakes the process or d elapses. It
// reports true when woken by the signal and false on timeout.
func (p *Proc) WaitTimeout(s *Signal, d time.Duration) bool {
	if d <= 0 {
		return false
	}
	w := &signalWait{p: p}
	w.timer = s.env.Schedule(d, func() {
		w.timedOut = true
		s.remove(w)
		s.env.dispatch(p)
	})
	s.waiters = append(s.waiters, w)
	p.block()
	return !w.timedOut
}

// WaitFor blocks until cond() is true, re-checking each time the signal
// wakes it. cond is evaluated before the first wait, so a true condition
// never blocks.
func (p *Proc) WaitFor(s *Signal, cond func() bool) {
	for !cond() {
		p.Wait(s)
	}
}

// WaitForTimeout blocks until cond() is true or the deadline at absolute
// virtual time t passes. It reports true when the condition held.
func (p *Proc) WaitForTimeout(s *Signal, t time.Duration, cond func() bool) bool {
	for !cond() {
		if p.Now() >= t {
			return false
		}
		if !p.WaitTimeout(s, t-p.Now()) && !cond() {
			return false
		}
	}
	return true
}

// Fire wakes the longest-waiting process, if any.
func (s *Signal) Fire() {
	if len(s.waiters) == 0 {
		return
	}
	w := s.waiters[0]
	s.waiters = s.waiters[1:]
	s.wake(w)
}

// Broadcast wakes every process currently waiting.
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		s.wake(w)
	}
}

// Waiters returns the number of processes currently waiting.
func (s *Signal) Waiters() int { return len(s.waiters) }

func (s *Signal) wake(w *signalWait) {
	w.signaled = true
	if w.timer != nil {
		w.timer.Cancel()
	}
	s.env.Schedule(0, func() { s.env.dispatch(w.p) })
}

func (s *Signal) remove(w *signalWait) {
	for i, q := range s.waiters {
		if q == w {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}
