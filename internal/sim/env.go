// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel.
//
// Virtual time is a time.Duration measured from the start of the
// simulation. All model concurrency is cooperative: processes are
// goroutines, but the kernel resumes exactly one of them at a time, so
// model code never needs locks and every run with the same inputs produces
// the same event order. Ties in the event queue are broken by scheduling
// sequence number, which makes the order fully reproducible.
//
// A typical model creates an Env, spawns processes with Go, and then calls
// Run. Processes block with Proc.Sleep, Signal waits, Resource acquisition,
// or Mailbox receives; they never block on raw Go channels themselves.
//
// Model code that needs to scale to very large populations uses state
// machines instead of processes: a Machine parks on the same primitives
// (timer, Signal, Resource, Mailbox) through an embedded Task and is
// resumed by a direct method call from the event loop, with no
// goroutine or channel handoff. Processes and machines share the same
// wait queues and event ordering, so they interoperate freely and a
// model can migrate one endpoint at a time.
//
// The kernel is built for a steady state that allocates nothing: event
// records are pooled and recycled through a free list, the queue is a
// monomorphic 4-ary heap (see heap.go), the dominant event shapes
// (process resume, hook delivery, wait timeouts) avoid closures
// entirely, and finished process goroutines are parked for reuse by the
// next Go call. See DESIGN.md "Kernel internals and performance".
package sim

import (
	"fmt"
	"time"
)

// Env is a simulation environment: a virtual clock and an event queue.
// An Env is not safe for concurrent use; it is driven from a single
// goroutine (the one calling Run/Step) and from the processes it resumes,
// which by construction never run at the same time.
type Env struct {
	now    time.Duration
	events []heapEnt  // 4-ary min-heap keyed by (at, seq)
	pool   []eventRec // event payloads, addressed by heapEnt.idx
	free   []int32    // recycled pool indices
	seq    int64

	// genFloor is the starting generation for records appended after a
	// pool trim; it stays ahead of every Timer handle issued for a
	// trimmed index so regrown records can never alias a stale handle.
	genFloor uint32

	// procs is the live-process registry in spawn order (nil holes mark
	// exited processes); Close walks it in order so teardown
	// diagnostics are reproducible. freeProcs parks goroutines of
	// finished processes for reuse by the next Go.
	procs     []*Proc
	live      int
	freeProcs []*Proc
	closed    bool

	// tasks is the live state-machine registry in spawn order (nil
	// holes mark detached machines), the machine counterpart of procs.
	tasks     []*Task
	liveTasks int

	// stepCount counts executed events, for introspection and tests.
	stepCount int64

	// stepHook, when set, runs after every executed event (invariant
	// monitoring). Nil in normal runs so Step stays allocation- and
	// call-free on the hot path.
	stepHook func()
}

// NewEnv returns an environment with the clock at zero and no pending
// events.
func NewEnv() *Env {
	return &Env{}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// Steps returns the number of events executed so far.
func (e *Env) Steps() int64 { return e.stepCount }

// Procs returns the number of live (spawned and not yet finished)
// processes.
func (e *Env) Procs() int { return e.live }

// Machines returns the number of live (spawned or adopted and not yet
// detached) state machines.
func (e *Env) Machines() int { return e.liveTasks }

// SetStepHook installs fn to run after every executed event, or removes
// the hook when fn is nil. The invariant monitor uses it to re-check
// model invariants continuously; the hook must not schedule events or
// block.
func (e *Env) SetStepHook(fn func()) { e.stepHook = fn }

// EventHook is a closure-free scheduled callback: ScheduleHook/AtHook
// queue the hook itself instead of a func(), so a long-lived object
// (e.g. a network with its own pending-delivery ring) can receive
// events with zero per-event allocation.
type EventHook interface {
	RunEvent()
}

// Timer is a handle to a scheduled event that can be canceled before it
// fires. The zero Timer is valid and permanently Stopped.
type Timer struct {
	env *Env
	idx int32
	gen uint32
}

// Cancel prevents the timer's event from firing. Canceling an already
// fired or already canceled timer is a no-op. (The index bound check
// covers handles whose record was trimmed by the pool-shrink pass.)
func (t Timer) Cancel() {
	if t.env == nil || int(t.idx) >= len(t.env.pool) {
		return
	}
	rec := &t.env.pool[t.idx]
	if rec.gen == t.gen {
		rec.canceled = true
	}
}

// Stopped reports whether the timer was canceled or has fired.
func (t Timer) Stopped() bool {
	if t.env == nil || int(t.idx) >= len(t.env.pool) {
		return true
	}
	rec := &t.env.pool[t.idx]
	return rec.gen != t.gen || rec.canceled
}

// post allocates a pooled event of the given kind at absolute time t
// and pushes it on the queue. The caller fills in the payload via the
// returned index. Scheduling in the past is a model error and panics.
func (e *Env) post(t time.Duration, kind eventKind) int32 {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	idx := e.allocEvent()
	e.pool[idx].kind = kind
	e.heapPush(heapEnt{at: t, seq: e.seq, idx: idx})
	return idx
}

// Schedule runs fn after delay of virtual time. A non-positive delay
// schedules fn at the current time, after all events already scheduled for
// the current time. The returned Timer may be used to cancel the event.
func (e *Env) Schedule(delay time.Duration, fn func()) Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t. Scheduling in the past is an
// error in the model and panics.
func (e *Env) At(t time.Duration, fn func()) Timer {
	idx := e.post(t, evFunc)
	e.pool[idx].fn = fn
	return Timer{env: e, idx: idx, gen: e.pool[idx].gen}
}

// ScheduleHook runs h.RunEvent after delay of virtual time, like
// Schedule but without a closure.
func (e *Env) ScheduleHook(delay time.Duration, h EventHook) Timer {
	if delay < 0 {
		delay = 0
	}
	return e.AtHook(e.now+delay, h)
}

// AtHook runs h.RunEvent at absolute virtual time t, like At but
// without a closure: the steady-state cost is one pooled event record.
func (e *Env) AtHook(t time.Duration, h EventHook) Timer {
	idx := e.post(t, evHook)
	e.pool[idx].hook = h
	return Timer{env: e, idx: idx, gen: e.pool[idx].gen}
}

// scheduleResume queues a closure-free resume of tk at absolute time
// t. It is the fast path under Sleep, Signal wakeups, Resource grants,
// and machine spawns.
func (e *Env) scheduleResume(t time.Duration, tk *Task) {
	idx := e.post(t, evResume)
	e.pool[idx].task = tk
}

// scheduleTimeout queues a closure-free timeout event for tk (kind
// evSignalTimeout or evResTimeout) and returns its cancellation handle.
func (e *Env) scheduleTimeout(t time.Duration, kind eventKind, tk *Task) Timer {
	idx := e.post(t, kind)
	e.pool[idx].task = tk
	return Timer{env: e, idx: idx, gen: e.pool[idx].gen}
}

// Step executes the single next event, advancing the clock to its time.
// It reports false when no events remain.
func (e *Env) Step() bool {
	for len(e.events) > 0 {
		ent := e.heapPop()
		rec := &e.pool[ent.idx]
		if rec.canceled {
			e.recycle(ent.idx)
			continue
		}
		e.now = ent.at
		e.stepCount++
		// Copy the payload out and recycle before running it: the
		// handler may schedule new events into the reused slot.
		kind := rec.kind
		fn, tk, hook := rec.fn, rec.task, rec.hook
		e.recycle(ent.idx)
		switch kind {
		case evResume:
			tk.m.Resume()
		case evFunc:
			fn()
		case evHook:
			hook.RunEvent()
		case evSignalTimeout:
			w := &tk.wait
			w.timedOut = true
			if w.s != nil {
				w.s.unlink(w)
			}
			tk.m.Resume()
		case evResTimeout:
			w := &tk.rwait
			w.timedOut = true
			if w.r != nil {
				w.r.waiters.remove(w)
				w.r = nil
			}
			tk.m.Resume()
		}
		if e.stepHook != nil {
			e.stepHook()
		}
		return true
	}
	return false
}

// Run executes events in order until the event queue is exhausted or the
// next event lies beyond until. The clock is left at until (or at the last
// executed event if the queue drained earlier than until and no later
// events exist).
func (e *Env) Run(until time.Duration) {
	for len(e.events) > 0 {
		next := e.events[0]
		if e.pool[next.idx].canceled {
			e.heapPop()
			e.recycle(next.idx)
			continue
		}
		if next.at > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll executes events until the queue is empty. Models with recurring
// generators never drain, so RunAll is mostly useful in tests.
func (e *Env) RunAll() {
	for e.Step() {
	}
}

// Close terminates every live process and then every live state
// machine, each in spawn order, so teardown diagnostics are
// reproducible. Each blocked process is resumed with a stop notice,
// unwinds via panic(errStopped) recovered by the kernel, and its
// goroutine exits; parked (reusable) goroutines are reaped too. Parked
// machines are unlinked from their wait queues, pending timeout timers
// are canceled, and machines implementing MachineCloser get their
// MachineClose hook. Close must be called from the driving goroutine
// (never from inside a process or machine). Closing an already closed
// environment is a no-op; after Close the environment must not be used
// otherwise.
func (e *Env) Close() {
	if e.closed {
		return
	}
	e.closed = true
	// closed=true disables registry compaction, so indices are stable
	// while we walk, and new procs cannot appear (Go panics).
	for i := 0; i < len(e.procs); i++ {
		p := e.procs[i]
		if p == nil {
			continue
		}
		p.stopping = true
		p.stop = true
		p.h <- struct{}{}
		<-p.h
	}
	e.procs = e.procs[:0]
	e.live = 0
	for _, p := range e.freeProcs {
		p.stop = true
		p.h <- struct{}{}
		<-p.h
	}
	e.freeProcs = e.freeProcs[:0]
	for i := 0; i < len(e.tasks); i++ {
		t := e.tasks[i]
		if t == nil {
			continue
		}
		t.cancelWaits()
		if c, ok := t.m.(MachineCloser); ok {
			c.MachineClose()
		}
		t.m = nil
		t.slot = -1
	}
	e.tasks = e.tasks[:0]
	e.liveTasks = 0
}

// register adds p to the spawn-order registry.
func (e *Env) register(p *Proc) {
	p.slot = len(e.procs)
	e.procs = append(e.procs, p)
	e.live++
}

// unregister removes p, leaving a nil hole to preserve spawn order, and
// compacts the registry when it is mostly holes. It runs on the
// process's goroutine while the kernel is blocked in dispatch (or
// Close), so access is race-free by construction.
func (e *Env) unregister(p *Proc) {
	e.procs[p.slot] = nil
	p.slot = -1
	e.live--
	if !e.closed && len(e.procs) >= 64 && e.live*2 < len(e.procs) {
		w := 0
		for _, q := range e.procs {
			if q != nil {
				q.slot = w
				e.procs[w] = q
				w++
			}
		}
		clear(e.procs[w:])
		e.procs = e.procs[:w]
	}
}
