// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel.
//
// Virtual time is a time.Duration measured from the start of the
// simulation. All model concurrency is cooperative: processes are
// goroutines, but the kernel resumes exactly one of them at a time, so
// model code never needs locks and every run with the same inputs produces
// the same event order. Ties in the event queue are broken by scheduling
// sequence number, which makes the order fully reproducible.
//
// A typical model creates an Env, spawns processes with Go, and then calls
// Run. Processes block with Proc.Sleep, Signal waits, Resource acquisition,
// or Mailbox receives; they never block on raw Go channels themselves.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Env is a simulation environment: a virtual clock and an event queue.
// An Env is not safe for concurrent use; it is driven from a single
// goroutine (the one calling Run/Step) and from the processes it resumes,
// which by construction never run at the same time.
type Env struct {
	now    time.Duration
	events eventHeap
	seq    int64
	procs  map[*Proc]struct{}
	closed bool

	// stepCount counts executed events, for introspection and tests.
	stepCount int64
}

// NewEnv returns an environment with the clock at zero and no pending
// events.
func NewEnv() *Env {
	return &Env{procs: make(map[*Proc]struct{})}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// Steps returns the number of events executed so far.
func (e *Env) Steps() int64 { return e.stepCount }

// Procs returns the number of live (spawned and not yet finished)
// processes.
func (e *Env) Procs() int { return len(e.procs) }

// Timer is a handle to a scheduled event that can be canceled before it
// fires.
type Timer struct {
	ev *event
}

// Cancel prevents the timer's event from firing. Canceling an already
// fired or already canceled timer is a no-op.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.canceled = true
	}
}

// Stopped reports whether the timer was canceled or has fired.
func (t *Timer) Stopped() bool { return t == nil || t.ev == nil || t.ev.canceled || t.ev.fired }

// Schedule runs fn after delay of virtual time. A non-positive delay
// schedules fn at the current time, after all events already scheduled for
// the current time. The returned Timer may be used to cancel the event.
func (e *Env) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t. Scheduling in the past is an
// error in the model and panics.
func (e *Env) At(t time.Duration, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// Step executes the single next event, advancing the clock to its time.
// It reports false when no events remain.
func (e *Env) Step() bool {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		ev.fired = true
		e.stepCount++
		ev.fn()
		return true
	}
	return false
}

// Run executes events in order until the event queue is exhausted or the
// next event lies beyond until. The clock is left at until (or at the last
// executed event if the queue drained earlier than until and no later
// events exist).
func (e *Env) Run(until time.Duration) {
	for e.events.Len() > 0 {
		next := e.events[0]
		if next.canceled {
			heap.Pop(&e.events)
			continue
		}
		if next.at > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll executes events until the queue is empty. Models with recurring
// generators never drain, so RunAll is mostly useful in tests.
func (e *Env) RunAll() {
	for e.Step() {
	}
}

// Close terminates every live process. Each blocked process is resumed
// with a stop notice, unwinds via panic(errStopped) recovered by the
// kernel, and its goroutine exits. Close must be called from the driving
// goroutine (never from inside a process). After Close the environment
// must not be used further.
func (e *Env) Close() {
	e.closed = true
	for {
		var p *Proc
		for q := range e.procs {
			p = q
			break
		}
		if p == nil {
			return
		}
		p.stopping = true
		p.resume <- resumeMsg{stop: true}
		<-p.yield
	}
}

// event is a queue entry.
type event struct {
	at       time.Duration
	seq      int64
	fn       func()
	canceled bool
	fired    bool
}

// eventHeap is a min-heap ordered by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
