package experiment

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"siteselect/internal/config"
	"siteselect/internal/metrics"
	"siteselect/internal/rtdbs"
)

func TestForEachRunsAllCells(t *testing.T) {
	for _, parallel := range []int{0, 1, 3, 16} {
		var ran [25]atomic.Int64
		err := forEach(parallel, len(ran), func(i int) error {
			ran[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Fatalf("parallel=%d: cell %d ran %d times", parallel, i, got)
			}
		}
	}
}

func TestForEachEmptyGrid(t *testing.T) {
	if err := forEach(4, 0, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestForEachErrorCancels exercises the pool's error path: one failing
// cell surfaces its error, dispatch of pending cells stops, and every
// worker goroutine exits before forEach returns.
func TestForEachErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	const n = 200
	goroutines := runtime.NumGoroutine()
	var started atomic.Int64
	err := forEach(4, n, func(i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// Workers stop claiming cells once a failure is flagged; only cells
	// already in flight finish. Far fewer than the full grid may start.
	if got := started.Load(); got >= n {
		t.Fatalf("all %d cells started despite early failure", got)
	}
	// forEach waits for its workers, so the goroutine count settles back
	// to the pre-call level (allow the runtime a moment to reap).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > goroutines && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > goroutines {
		t.Fatalf("goroutines leaked: %d before, %d after", goroutines, got)
	}
}

func TestForEachFirstErrorWins(t *testing.T) {
	// Every cell fails; exactly one error must surface and the call must
	// still return (no deadlock on the shared error slot).
	err := forEach(8, 50, func(i int) error { return fmt.Errorf("cell %d", i) })
	if err == nil || !strings.HasPrefix(err.Error(), "cell ") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunCellsProgressAndTiming(t *testing.T) {
	labels := []string{"a", "b", "c", "d", "e"}
	var (
		mu    sync.Mutex
		calls []metrics.CellDone
	)
	wall := &metrics.WallClock{}
	o := Options{
		Parallel: 3,
		Timing:   wall,
		Progress: func(c metrics.CellDone) {
			mu.Lock()
			calls = append(calls, c)
			mu.Unlock()
		},
	}
	out, err := runCells(o, labels, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if len(calls) != len(labels) {
		t.Fatalf("progress calls = %d", len(calls))
	}
	seen := map[string]bool{}
	for i, c := range calls {
		// The harness serializes the callback and counts completions, so
		// Done is the 1-based call order even though cells finish in any
		// order.
		if c.Done != i+1 || c.Total != len(labels) {
			t.Fatalf("call %d = %+v", i, c)
		}
		if c.Elapsed < 0 {
			t.Fatalf("negative elapsed: %+v", c)
		}
		seen[c.Label] = true
	}
	for _, l := range labels {
		if !seen[l] {
			t.Fatalf("label %q never reported", l)
		}
	}
	if s := wall.Stats(); s.Count != int64(len(labels)) {
		t.Fatalf("wall clock observed %d cells", s.Count)
	}
}

func TestRunCellsError(t *testing.T) {
	boom := errors.New("cell failed")
	out, err := runCells(Options{Parallel: 2}, []string{"a", "b", "c"}, func(i int) (int, error) {
		if i == 1 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) || out != nil {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

// TestFigureDeterministicAcrossWorkerCounts is the determinism
// regression test: the same sweep run serially and with eight workers
// must render byte-identical output, because every cell's seed is
// derived from the master seed and the cell coordinates alone.
func TestFigureDeterministicAcrossWorkerCounts(t *testing.T) {
	render := func(parallel int) (string, string) {
		f, err := RunFigure("Figure 3", 0.01, Options{
			Scale: 0.05, Seed: 42, Clients: []int{4, 6}, Reps: 2, Parallel: parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		var text, csv strings.Builder
		f.Render(&text)
		f.CSV(&csv)
		return text.String(), csv.String()
	}
	text1, csv1 := render(1)
	text8, csv8 := render(8)
	if text1 != text8 {
		t.Fatalf("rendered output differs across worker counts:\n-- parallel=1 --\n%s\n-- parallel=8 --\n%s", text1, text8)
	}
	if csv1 != csv8 {
		t.Fatalf("CSV differs across worker counts:\n-- parallel=1 --\n%s\n-- parallel=8 --\n%s", csv1, csv8)
	}
}

// Paired comparison invariant: the seed for a cell depends on the
// workload point, not the system under test, so CE/CS/LS at one point
// all see the same workload stream.
func TestCellSeedSharedAcrossSystems(t *testing.T) {
	o := Options{Seed: 9}.normalize()
	cs := o.csConfig(8, 0.05, 0)
	ce := o.ceConfig(8, 0.05, 0)
	if cs.Seed != ce.Seed {
		t.Fatalf("CS seed %d != CE seed %d at the same cell", cs.Seed, ce.Seed)
	}
	if other := o.csConfig(8, 0.05, 1); other.Seed == cs.Seed {
		t.Fatal("distinct replications share a seed")
	}
}

func TestRunReps(t *testing.T) {
	o := Options{Seed: 3, Reps: 3, Parallel: 2}
	cfg := Options{Scale: 0.05, Seed: 3}.normalize().csConfig(4, 0.05, 0)
	seen := make(map[int64]bool)
	var mu sync.Mutex
	results, err := RunReps(o, cfg, func(c config.Config) (*rtdbs.Result, error) {
		mu.Lock()
		seen[c.Seed] = true
		mu.Unlock()
		return RunCS(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || len(seen) != 3 {
		t.Fatalf("results=%d distinct seeds=%d", len(results), len(seen))
	}
	for i, r := range results {
		if r == nil || r.M.Submitted == 0 {
			t.Fatalf("rep %d empty result", i)
		}
	}
}
