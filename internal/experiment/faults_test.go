package experiment

import (
	"strings"
	"testing"
)

// TestFaultMatrixParallelDeterminism is the metamorphic determinism
// check for fault injection at the experiment level: the same master
// seed and fault schedule must render byte-identically whether the
// cells run sequentially or across eight workers. The invariant
// monitor rides along on every cell, so the matrix also exercises the
// continuous checks under drops and partitions.
func TestFaultMatrixParallelDeterminism(t *testing.T) {
	render := func(parallel int) string {
		opts := Options{
			Scale: 0.05, Seed: 9, Reps: 2,
			Parallel: parallel, CheckInvariants: true,
		}
		fm, err := RunFaultMatrix(5, 0.2, opts)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		fm.Render(&sb)
		return sb.String()
	}
	seq, par := render(1), render(8)
	if seq != par {
		t.Fatalf("fault matrix differs across worker counts:\n--- parallel=1 ---\n%s--- parallel=8 ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "drop 0%") || !strings.Contains(seq, "partition 30s") {
		t.Fatalf("matrix rows missing:\n%s", seq)
	}
}

// TestOutageStudyFaultVariants pins the generalized outage table: the
// legacy three rows keep their names and order (goldens depend on
// them), followed by the two fault-layer partition variants.
func TestOutageStudyFaultVariants(t *testing.T) {
	s, err := RunOutageStudy(4, 0.2, Options{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"no fault",
		"outage, no log",
		"outage, client WAL",
		"partition, no wipe",
		"server partition",
	}
	if len(s.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(s.Rows), len(want))
	}
	for i, w := range want {
		if s.Rows[i].Name != w {
			t.Fatalf("row %d = %q, want %q", i, s.Rows[i].Name, w)
		}
	}
	var sb strings.Builder
	s.Render(&sb)
	if !strings.Contains(sb.String(), "server partition") {
		t.Fatalf("render output:\n%s", sb.String())
	}
}
