package experiment

import (
	"fmt"
	"io"
	"strings"

	"siteselect/internal/rtdbs"
	"siteselect/internal/trace"
)

// TraceSummary is the aggregate miss-cause table for one figure's
// workload: the two client-server systems re-run with tracing enabled
// across the client sweep, every missed transaction classified by the
// dominant component of its slack attribution. The centralized system is
// untraced (its requests never leave the server, so there is nothing to
// attribute), so it has no column. Counts are summed over replications —
// a miss census, not a mean.
type TraceSummary struct {
	ID             string
	UpdateFraction float64
	Reps           int
	Clients        []int
	// CS and LS hold one aggregated table per entry of Clients.
	CS []trace.MissTable
	LS []trace.MissTable
}

// RunTraceSummary reproduces one figure's sweep with tracing enabled on
// the CS and LS systems and aggregates the per-run miss-cause tables.
// Cells share the figure's seed derivation (the system is not part of
// the cell coordinates), so the workload stream at each (clients, rep)
// point is identical to the untraced figure cell — tracing is
// zero-perturbation, only the bookkeeping differs.
func RunTraceSummary(id string, update float64, opts Options) (*TraceSummary, error) {
	opts = opts.normalize()
	ts := &TraceSummary{
		ID:             id,
		UpdateFraction: update,
		Reps:           opts.Reps,
		Clients:        opts.Clients,
		CS:             make([]trace.MissTable, len(opts.Clients)),
		LS:             make([]trace.MissTable, len(opts.Clients)),
	}
	sysNames := []string{"CS", "LS"}
	type cell struct{ pi, sys, rep int }
	var cells []cell
	var labels []string
	for pi, n := range opts.Clients {
		for si, s := range sysNames {
			for r := 0; r < opts.Reps; r++ {
				cells = append(cells, cell{pi, si, r})
				labels = append(labels, fmt.Sprintf("%s trace %s n=%d rep=%d", id, s, n, r))
			}
		}
	}
	tables, err := runCells(opts, labels, func(i int) (*trace.MissTable, error) {
		c := cells[i]
		n := opts.Clients[c.pi]
		cfg := opts.csConfig(n, update, c.rep)
		cfg.Trace = true
		var res *rtdbs.Result
		var err error
		if c.sys == 0 {
			res, err = RunCS(cfg)
		} else {
			res, err = RunLS(cfg)
		}
		if err != nil {
			return nil, fmt.Errorf("%s trace summary: %s with %d clients (rep %d): %w",
				id, sysNames[c.sys], n, c.rep, err)
		}
		return res.MissCauses, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		if c.sys == 0 {
			ts.CS[c.pi].Add(tables[i])
		} else {
			ts.LS[c.pi].Add(tables[i])
		}
	}
	return ts, nil
}

// Render writes the summary as an aligned text table: one row per
// (clients, system) pair, with the total missed count and the count per
// dominant cause.
func (ts *TraceSummary) Render(w io.Writer) {
	fmt.Fprintf(w, "%s trace summary — missed transactions by dominant cause (%g%% updates)\n",
		ts.ID, ts.UpdateFraction*100)
	if ts.Reps > 1 {
		fmt.Fprintf(w, "(counts summed over %d replications)\n", ts.Reps)
	}
	fmt.Fprintf(w, "%-8s %-7s %7s", "Clients", "System", "Missed")
	for c := trace.Component(0); c < trace.NumComponents; c++ {
		fmt.Fprintf(w, " %10s", c.String())
	}
	fmt.Fprintln(w)
	row := func(n int, sys string, m *trace.MissTable) {
		fmt.Fprintf(w, "%-8d %-7s %7d", n, sys, m.Missed)
		for c := trace.Component(0); c < trace.NumComponents; c++ {
			fmt.Fprintf(w, " %10d", m.ByCause[c])
		}
		fmt.Fprintln(w)
	}
	for pi, n := range ts.Clients {
		row(n, "CS", &ts.CS[pi])
		row(n, "LS", &ts.LS[pi])
	}
}

// CSV writes the summary as comma-separated values, one row per
// (clients, system) pair.
func (ts *TraceSummary) CSV(w io.Writer) {
	fmt.Fprint(w, "clients,system,missed")
	for c := trace.Component(0); c < trace.NumComponents; c++ {
		fmt.Fprintf(w, ",%s", strings.ReplaceAll(c.String(), "-", "_"))
	}
	fmt.Fprintln(w)
	row := func(n int, sys string, m *trace.MissTable) {
		fmt.Fprintf(w, "%d,%s,%d", n, sys, m.Missed)
		for c := trace.Component(0); c < trace.NumComponents; c++ {
			fmt.Fprintf(w, ",%d", m.ByCause[c])
		}
		fmt.Fprintln(w)
	}
	for pi, n := range ts.Clients {
		row(n, "CS", &ts.CS[pi])
		row(n, "LS", &ts.LS[pi])
	}
}
