package experiment

import (
	"fmt"
	"io"
	"time"

	"siteselect/internal/config"
	"siteselect/internal/forward"
)

// AblationRow compares the LS-CS-RTDBS with one design choice changed.
type AblationRow struct {
	Name        string
	SuccessRate float64
	CacheHit    float64
	Shipped     int64
	Decomposed  int64
	Migrations  int64
	ELResponse  time.Duration
}

// Ablation holds a family of LS variants at a fixed workload point.
type Ablation struct {
	Title   string
	Clients int
	Update  float64
	Rows    []AblationRow
}

// Render writes the ablation as an aligned text table.
func (a *Ablation) Render(w io.Writer) {
	fmt.Fprintf(w, "%s (%d clients, %g%% updates)\n", a.Title, a.Clients, a.Update*100)
	fmt.Fprintf(w, "%-22s %9s %9s %8s %8s %8s %10s\n",
		"Variant", "Success", "CacheHit", "Shipped", "Decomp", "Migr", "EL resp")
	for _, r := range a.Rows {
		fmt.Fprintf(w, "%-22s %8.1f%% %8.1f%% %8d %8d %8d %10s\n",
			r.Name, r.SuccessRate, r.CacheHit, r.Shipped, r.Decomposed, r.Migrations,
			r.ELResponse.Round(time.Millisecond))
	}
}

func (a *Ablation) addRun(name string, cfg config.Config) error {
	res, err := RunLS(cfg)
	if err != nil {
		return fmt.Errorf("ablation %q: %w", name, err)
	}
	a.Rows = append(a.Rows, AblationRow{
		Name:        name,
		SuccessRate: res.SuccessRate(),
		CacheHit:    res.CacheHitRate(),
		Shipped:     res.M.ShippedTxns,
		Decomposed:  res.M.DecomposedTxns,
		Migrations:  res.MigrationsStarted,
		ELResponse:  res.M.ExclusiveResponse.Mean(),
	})
	return nil
}

// RunHeuristicAblation isolates the contribution of each load-sharing
// technique: all off (equals basic CS), each alone, and all on.
func RunHeuristicAblation(clients int, update float64, opts Options) (*Ablation, error) {
	opts = opts.normalize()
	a := &Ablation{Title: "Load-sharing technique ablation", Clients: clients, Update: update}
	off := func(cfg *config.Config) {
		cfg.UseH1 = false
		cfg.UseH2 = false
		cfg.UseDecomposition = false
		cfg.UseForwardLists = false
	}
	variants := []struct {
		name string
		mod  func(*config.Config)
	}{
		{"all-off (=CS)", func(c *config.Config) { off(c) }},
		{"H1 only", func(c *config.Config) { off(c); c.UseH1 = true }},
		{"H2 only", func(c *config.Config) { off(c); c.UseH2 = true }},
		{"decomposition only", func(c *config.Config) { off(c); c.UseDecomposition = true }},
		{"forward lists only", func(c *config.Config) { off(c); c.UseForwardLists = true }},
		{"all-on (=LS)", func(*config.Config) {}},
	}
	for _, v := range variants {
		cfg := opts.csConfig(clients, update)
		v.mod(&cfg)
		if err := a.addRun(v.name, cfg); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// RunWindowAblation sweeps the forward-list collection window.
func RunWindowAblation(clients int, update float64, opts Options) (*Ablation, error) {
	opts = opts.normalize()
	a := &Ablation{Title: "Collection window ablation", Clients: clients, Update: update}
	for _, w := range []time.Duration{0, 100 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second} {
		cfg := opts.csConfig(clients, update)
		cfg.CollectionWindow = w
		if err := a.addRun(fmt.Sprintf("window=%v", w), cfg); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// RunDowngradeAblation compares the modified callback scheme (EL→SL
// downgrade) against plain full-release callbacks.
func RunDowngradeAblation(clients int, update float64, opts Options) (*Ablation, error) {
	opts = opts.normalize()
	a := &Ablation{Title: "Callback downgrade ablation", Clients: clients, Update: update}
	for _, on := range []bool{true, false} {
		cfg := opts.csConfig(clients, update)
		cfg.UseDowngrade = on
		name := "downgrade on"
		if !on {
			name = "downgrade off"
		}
		if err := a.addRun(name, cfg); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// PatternRow compares the three systems under one access pattern.
type PatternRow struct {
	Pattern config.AccessPattern
	CE      float64
	CS      float64
	LS      float64
	CSHit   float64
	LSHit   float64
}

// PatternSweep is the access-pattern robustness experiment: the paper
// evaluates only Localized-RW; this sweep shows how the architectural
// ordering fares when locality is removed (Uniform) or concentrated on
// a shared hot set (HotCold).
type PatternSweep struct {
	Clients int
	Update  float64
	Rows    []PatternRow
}

// RunPatternSweep runs all three systems under each access pattern.
func RunPatternSweep(clients int, update float64, opts Options) (*PatternSweep, error) {
	opts = opts.normalize()
	sweep := &PatternSweep{Clients: clients, Update: update}
	for _, pat := range []config.AccessPattern{
		config.PatternLocalizedRW, config.PatternUniform, config.PatternHotCold,
	} {
		ceCfg := opts.ceConfig(clients, update)
		ceCfg.Pattern = pat
		ce, err := RunCE(ceCfg)
		if err != nil {
			return nil, fmt.Errorf("pattern %v: CE: %w", pat, err)
		}
		csCfg := opts.csConfig(clients, update)
		csCfg.Pattern = pat
		cs, err := RunCS(csCfg)
		if err != nil {
			return nil, fmt.Errorf("pattern %v: CS: %w", pat, err)
		}
		ls, err := RunLS(csCfg)
		if err != nil {
			return nil, fmt.Errorf("pattern %v: LS: %w", pat, err)
		}
		sweep.Rows = append(sweep.Rows, PatternRow{
			Pattern: pat,
			CE:      ce.SuccessRate(),
			CS:      cs.SuccessRate(),
			LS:      ls.SuccessRate(),
			CSHit:   cs.CacheHitRate(),
			LSHit:   ls.CacheHitRate(),
		})
	}
	return sweep, nil
}

// Render writes the pattern sweep as an aligned text table.
func (s *PatternSweep) Render(w io.Writer) {
	fmt.Fprintf(w, "Access-pattern robustness (%d clients, %g%% updates)\n", s.Clients, s.Update*100)
	fmt.Fprintf(w, "%-14s %9s %9s %9s %9s %9s\n", "Pattern", "CE", "CS", "LS", "CS hit", "LS hit")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-14s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
			r.Pattern, r.CE, r.CS, r.LS, r.CSHit, r.LSHit)
	}
}

// ProtocolCounts reproduces the Figure 1 / Figure 2 message-count
// comparison for n requests on one object.
type ProtocolCounts struct {
	N        int
	TwoPL    int
	Callback int
	Grouped  int
}

// RunProtocolCounts evaluates the closed forms behind Figures 1 and 2.
func RunProtocolCounts(ns []int) []ProtocolCounts {
	out := make([]ProtocolCounts, 0, len(ns))
	for _, n := range ns {
		out = append(out, ProtocolCounts{
			N:        n,
			TwoPL:    forward.Messages2PL(n),
			Callback: forward.MessagesCallback(n),
			Grouped:  forward.MessagesGrouped(n),
		})
	}
	return out
}

// RenderProtocolCounts writes the Figure 1/2 comparison.
func RenderProtocolCounts(w io.Writer, counts []ProtocolCounts) {
	fmt.Fprintln(w, "Figures 1–2 — Messages to serve n lock requests on one object")
	fmt.Fprintf(w, "%-8s %10s %14s %14s\n", "n", "2PL (3n)", "Callback (4n)", "Grouped (2n+1)")
	for _, c := range counts {
		fmt.Fprintf(w, "%-8d %10d %14d %14d\n", c.N, c.TwoPL, c.Callback, c.Grouped)
	}
	fmt.Fprintln(w, "\nWorked example (one object moving Client A -> Client B):")
	fmt.Fprintln(w, "Figure 1 (callback locking):")
	for _, line := range forward.FigureScenarioCallback() {
		fmt.Fprintf(w, "  %s\n", line)
	}
	fmt.Fprintln(w, "Figure 2 (lock grouping):")
	for _, line := range forward.FigureScenarioGrouped() {
		fmt.Fprintf(w, "  %s\n", line)
	}
}

// RunWriteThroughAblation quantifies the paper's implicit write-back
// choice: clients retaining dirty copies until a callback versus pushing
// every committed update to the server immediately.
func RunWriteThroughAblation(clients int, update float64, opts Options) (*Ablation, error) {
	opts = opts.normalize()
	a := &Ablation{Title: "Write-back vs write-through ablation", Clients: clients, Update: update}
	for _, through := range []bool{false, true} {
		cfg := opts.csConfig(clients, update)
		cfg.WriteThrough = through
		name := "write-back (paper)"
		if through {
			name = "write-through"
		}
		if err := a.addRun(name, cfg); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// RunLoggingAblation charges client-based write-ahead logging (the
// recovery scheme of the framework the paper builds on) against the
// cost-free baseline the paper evaluates.
func RunLoggingAblation(clients int, update float64, opts Options) (*Ablation, error) {
	opts = opts.normalize()
	a := &Ablation{Title: "Client-based logging ablation", Clients: clients, Update: update}
	for _, logging := range []bool{false, true} {
		cfg := opts.csConfig(clients, update)
		cfg.UseLogging = logging
		name := "no logging (paper)"
		if logging {
			name = "client WAL + group commit"
		}
		if err := a.addRun(name, cfg); err != nil {
			return nil, err
		}
	}
	return a, nil
}
