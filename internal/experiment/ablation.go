package experiment

import (
	"fmt"
	"io"
	"time"

	"siteselect/internal/config"
	"siteselect/internal/forward"
	"siteselect/internal/rtdbs"
	"siteselect/internal/stats"
)

// AblationRow compares the LS-CS-RTDBS with one design choice changed.
// Rates are means over the replications; counters are rounded means.
type AblationRow struct {
	Name        string
	SuccessRate float64
	SuccessCI   float64 // 95% half-width, zero for a single replication
	CacheHit    float64
	Shipped     int64
	Decomposed  int64
	Migrations  int64
	ELResponse  time.Duration
}

// Ablation holds a family of LS variants at a fixed workload point.
type Ablation struct {
	Title   string
	Clients int
	Update  float64
	Reps    int
	Rows    []AblationRow
}

// Render writes the ablation as an aligned text table, with a ± 95% CI
// success column when the ablation aggregates replications.
func (a *Ablation) Render(w io.Writer) {
	fmt.Fprintf(w, "%s (%d clients, %g%% updates)\n", a.Title, a.Clients, a.Update*100)
	if a.Reps > 1 {
		fmt.Fprintf(w, "(success mean ± 95%% CI over %d replications)\n", a.Reps)
		fmt.Fprintf(w, "%-22s %14s %9s %8s %8s %8s %10s\n",
			"Variant", "Success", "CacheHit", "Shipped", "Decomp", "Migr", "EL resp")
		for _, r := range a.Rows {
			fmt.Fprintf(w, "%-22s %13s%% %8.1f%% %8d %8d %8d %10s\n",
				r.Name, fmt.Sprintf("%.1f ± %.1f", r.SuccessRate, r.SuccessCI),
				r.CacheHit, r.Shipped, r.Decomposed, r.Migrations,
				r.ELResponse.Round(time.Millisecond))
		}
		return
	}
	fmt.Fprintf(w, "%-22s %9s %9s %8s %8s %8s %10s\n",
		"Variant", "Success", "CacheHit", "Shipped", "Decomp", "Migr", "EL resp")
	for _, r := range a.Rows {
		fmt.Fprintf(w, "%-22s %8.1f%% %8.1f%% %8d %8d %8d %10s\n",
			r.Name, r.SuccessRate, r.CacheHit, r.Shipped, r.Decomposed, r.Migrations,
			r.ELResponse.Round(time.Millisecond))
	}
}

// variant is one configuration mutation an ablation compares.
type variant struct {
	name string
	mod  func(*config.Config)
}

// runVariants runs every (variant, replication) cell of an LS ablation
// concurrently and aggregates per variant.
func runVariants(title string, clients int, update float64, opts Options, variants []variant) (*Ablation, error) {
	opts = opts.normalize()
	a := &Ablation{Title: title, Clients: clients, Update: update, Reps: opts.Reps}
	type cell struct{ vi, rep int }
	var cells []cell
	var labels []string
	for vi, v := range variants {
		for r := 0; r < opts.Reps; r++ {
			cells = append(cells, cell{vi, r})
			labels = append(labels, fmt.Sprintf("%s %q rep=%d", title, v.name, r))
		}
	}
	results, err := runCells(opts, labels, func(i int) (*rtdbs.Result, error) {
		c := cells[i]
		cfg := opts.csConfig(clients, update, c.rep)
		variants[c.vi].mod(&cfg)
		res, err := RunLS(cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation %q: %w", variants[c.vi].name, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for vi, v := range variants {
		var success, hit stats.Sample
		var shipped, decomposed, migrations []int64
		var elResp []time.Duration
		for i, c := range cells {
			if c.vi != vi {
				continue
			}
			res := results[i]
			success.Add(res.SuccessRate())
			hit.Add(res.CacheHitRate())
			shipped = append(shipped, res.M.ShippedTxns)
			decomposed = append(decomposed, res.M.DecomposedTxns)
			migrations = append(migrations, res.MigrationsStarted)
			elResp = append(elResp, res.M.ExclusiveResponse.Mean())
		}
		a.Rows = append(a.Rows, AblationRow{
			Name:        v.name,
			SuccessRate: success.Mean(),
			SuccessCI:   success.CI95(),
			CacheHit:    hit.Mean(),
			Shipped:     meanRound(shipped),
			Decomposed:  meanRound(decomposed),
			Migrations:  meanRound(migrations),
			ELResponse:  meanDuration(elResp),
		})
	}
	return a, nil
}

// RunHeuristicAblation isolates the contribution of each load-sharing
// technique: all off (equals basic CS), each alone, and all on.
func RunHeuristicAblation(clients int, update float64, opts Options) (*Ablation, error) {
	off := func(cfg *config.Config) {
		cfg.UseH1 = false
		cfg.UseH2 = false
		cfg.UseDecomposition = false
		cfg.UseForwardLists = false
	}
	return runVariants("Load-sharing technique ablation", clients, update, opts, []variant{
		{"all-off (=CS)", func(c *config.Config) { off(c) }},
		{"H1 only", func(c *config.Config) { off(c); c.UseH1 = true }},
		{"H2 only", func(c *config.Config) { off(c); c.UseH2 = true }},
		{"decomposition only", func(c *config.Config) { off(c); c.UseDecomposition = true }},
		{"forward lists only", func(c *config.Config) { off(c); c.UseForwardLists = true }},
		{"all-on (=LS)", func(*config.Config) {}},
	})
}

// RunWindowAblation sweeps the forward-list collection window.
func RunWindowAblation(clients int, update float64, opts Options) (*Ablation, error) {
	var variants []variant
	for _, w := range []time.Duration{0, 100 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second} {
		w := w
		variants = append(variants, variant{
			name: fmt.Sprintf("window=%v", w),
			mod:  func(c *config.Config) { c.CollectionWindow = w },
		})
	}
	return runVariants("Collection window ablation", clients, update, opts, variants)
}

// RunDowngradeAblation compares the modified callback scheme (EL→SL
// downgrade) against plain full-release callbacks.
func RunDowngradeAblation(clients int, update float64, opts Options) (*Ablation, error) {
	return runVariants("Callback downgrade ablation", clients, update, opts, []variant{
		{"downgrade on", func(c *config.Config) { c.UseDowngrade = true }},
		{"downgrade off", func(c *config.Config) { c.UseDowngrade = false }},
	})
}

// RunWriteThroughAblation quantifies the paper's implicit write-back
// choice: clients retaining dirty copies until a callback versus pushing
// every committed update to the server immediately.
func RunWriteThroughAblation(clients int, update float64, opts Options) (*Ablation, error) {
	return runVariants("Write-back vs write-through ablation", clients, update, opts, []variant{
		{"write-back (paper)", func(c *config.Config) { c.WriteThrough = false }},
		{"write-through", func(c *config.Config) { c.WriteThrough = true }},
	})
}

// RunLoggingAblation charges client-based write-ahead logging (the
// recovery scheme of the framework the paper builds on) against the
// cost-free baseline the paper evaluates.
func RunLoggingAblation(clients int, update float64, opts Options) (*Ablation, error) {
	return runVariants("Client-based logging ablation", clients, update, opts, []variant{
		{"no logging (paper)", func(c *config.Config) { c.UseLogging = false }},
		{"client WAL + group commit", func(c *config.Config) { c.UseLogging = true }},
	})
}

// PatternRow compares the three systems under one access pattern.
type PatternRow struct {
	Pattern config.AccessPattern
	CE      float64
	CS      float64
	LS      float64
	CSHit   float64
	LSHit   float64
}

// PatternSweep is the access-pattern robustness experiment: the paper
// evaluates only Localized-RW; this sweep shows how the architectural
// ordering fares when locality is removed (Uniform) or concentrated on
// a shared hot set (HotCold).
type PatternSweep struct {
	Clients int
	Update  float64
	Rows    []PatternRow
}

// RunPatternSweep runs all three systems under each access pattern,
// every cell concurrently; rates are means over the replications.
func RunPatternSweep(clients int, update float64, opts Options) (*PatternSweep, error) {
	opts = opts.normalize()
	sweep := &PatternSweep{Clients: clients, Update: update}
	patterns := []config.AccessPattern{
		config.PatternLocalizedRW, config.PatternUniform, config.PatternHotCold,
	}
	type cellResult struct {
		rate, hit float64
	}
	type cell struct{ pi, sys, rep int }
	var cells []cell
	var labels []string
	for pi, pat := range patterns {
		for si, s := range figureSystems {
			for r := 0; r < opts.Reps; r++ {
				cells = append(cells, cell{pi, si, r})
				labels = append(labels, fmt.Sprintf("patterns %v %s rep=%d", pat, s.name, r))
			}
		}
	}
	results, err := runCells(opts, labels, func(i int) (cellResult, error) {
		c := cells[i]
		s := figureSystems[c.sys]
		var cfg config.Config
		if s.central {
			cfg = opts.ceConfig(clients, update, c.rep)
		} else {
			cfg = opts.csConfig(clients, update, c.rep)
		}
		cfg.Pattern = patterns[c.pi]
		res, err := s.run(cfg)
		if err != nil {
			return cellResult{}, fmt.Errorf("pattern %v: %s: %w", patterns[c.pi], s.name, err)
		}
		return cellResult{rate: res.SuccessRate(), hit: res.CacheHitRate()}, nil
	})
	if err != nil {
		return nil, err
	}
	agg := make([][3]struct{ rate, hit stats.Sample }, len(patterns))
	for i, c := range cells {
		agg[c.pi][c.sys].rate.Add(results[i].rate)
		agg[c.pi][c.sys].hit.Add(results[i].hit)
	}
	for pi, pat := range patterns {
		sweep.Rows = append(sweep.Rows, PatternRow{
			Pattern: pat,
			CE:      agg[pi][0].rate.Mean(),
			CS:      agg[pi][1].rate.Mean(),
			LS:      agg[pi][2].rate.Mean(),
			CSHit:   agg[pi][1].hit.Mean(),
			LSHit:   agg[pi][2].hit.Mean(),
		})
	}
	return sweep, nil
}

// Render writes the pattern sweep as an aligned text table.
func (s *PatternSweep) Render(w io.Writer) {
	fmt.Fprintf(w, "Access-pattern robustness (%d clients, %g%% updates)\n", s.Clients, s.Update*100)
	fmt.Fprintf(w, "%-14s %9s %9s %9s %9s %9s\n", "Pattern", "CE", "CS", "LS", "CS hit", "LS hit")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-14s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
			r.Pattern, r.CE, r.CS, r.LS, r.CSHit, r.LSHit)
	}
}

// ProtocolCounts reproduces the Figure 1 / Figure 2 message-count
// comparison for n requests on one object.
type ProtocolCounts struct {
	N        int
	TwoPL    int
	Callback int
	Grouped  int
}

// RunProtocolCounts evaluates the closed forms behind Figures 1 and 2.
func RunProtocolCounts(ns []int) []ProtocolCounts {
	out := make([]ProtocolCounts, 0, len(ns))
	for _, n := range ns {
		out = append(out, ProtocolCounts{
			N:        n,
			TwoPL:    forward.Messages2PL(n),
			Callback: forward.MessagesCallback(n),
			Grouped:  forward.MessagesGrouped(n),
		})
	}
	return out
}

// RenderProtocolCounts writes the Figure 1/2 comparison.
func RenderProtocolCounts(w io.Writer, counts []ProtocolCounts) {
	fmt.Fprintln(w, "Figures 1–2 — Messages to serve n lock requests on one object")
	fmt.Fprintf(w, "%-8s %10s %14s %14s\n", "n", "2PL (3n)", "Callback (4n)", "Grouped (2n+1)")
	for _, c := range counts {
		fmt.Fprintf(w, "%-8d %10d %14d %14d\n", c.N, c.TwoPL, c.Callback, c.Grouped)
	}
	fmt.Fprintln(w, "\nWorked example (one object moving Client A -> Client B):")
	fmt.Fprintln(w, "Figure 1 (callback locking):")
	for _, line := range forward.FigureScenarioCallback() {
		fmt.Fprintf(w, "  %s\n", line)
	}
	fmt.Fprintln(w, "Figure 2 (lock grouping):")
	for _, line := range forward.FigureScenarioGrouped() {
		fmt.Fprintf(w, "  %s\n", line)
	}
}
