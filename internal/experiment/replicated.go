package experiment

import (
	"fmt"
	"io"

	"siteselect/internal/stats"
)

// ReplicatedPoint aggregates one figure x-position over several seeds.
type ReplicatedPoint struct {
	Clients int
	CE      stats.Sample
	CS      stats.Sample
	LS      stats.Sample
}

// ReplicatedFigure is a Figure 3/4/5 reproduction averaged over seeds,
// with ~95% confidence half-widths.
type ReplicatedFigure struct {
	ID             string
	UpdateFraction float64
	Reps           int
	Points         []ReplicatedPoint
}

// RunReplicatedFigure runs the figure reps times with consecutive seeds
// starting at opts.Seed and aggregates per point.
func RunReplicatedFigure(id string, update float64, opts Options, reps int) (*ReplicatedFigure, error) {
	opts = opts.normalize()
	if reps < 1 {
		reps = 1
	}
	rf := &ReplicatedFigure{ID: id, UpdateFraction: update, Reps: reps}
	rf.Points = make([]ReplicatedPoint, len(opts.Clients))
	for i, n := range opts.Clients {
		rf.Points[i].Clients = n
	}
	for rep := 0; rep < reps; rep++ {
		o := opts
		o.Seed = opts.Seed + int64(rep)
		f, err := RunFigure(id, update, o)
		if err != nil {
			return nil, fmt.Errorf("replica %d: %w", rep, err)
		}
		for i, p := range f.Points {
			rf.Points[i].CE.Add(p.CE)
			rf.Points[i].CS.Add(p.CS)
			rf.Points[i].LS.Add(p.LS)
		}
	}
	return rf, nil
}

// Render writes the replicated figure with mean ± 95% CI columns.
func (rf *ReplicatedFigure) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — success %% over %d seeds (mean ± 95%% CI)\n", rf.ID, rf.Reps)
	fmt.Fprintf(w, "%-10s %18s %18s %18s\n", "Clients", "CE-RTDBS", "CS-RTDBS", "LS-CS-RTDBS")
	cell := func(s stats.Sample) string {
		return fmt.Sprintf("%6.1f ± %4.1f", s.Mean(), s.CI95())
	}
	for _, p := range rf.Points {
		fmt.Fprintf(w, "%-10d %18s %18s %18s\n", p.Clients, cell(p.CE), cell(p.CS), cell(p.LS))
	}
}

// CSV writes the replicated figure with mean and CI columns.
func (rf *ReplicatedFigure) CSV(w io.Writer) {
	fmt.Fprintln(w, "clients,ce_mean,ce_ci,cs_mean,cs_ci,ls_mean,ls_ci")
	for _, p := range rf.Points {
		fmt.Fprintf(w, "%d,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f\n",
			p.Clients, p.CE.Mean(), p.CE.CI95(), p.CS.Mean(), p.CS.CI95(),
			p.LS.Mean(), p.LS.CI95())
	}
}
