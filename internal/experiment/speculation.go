package experiment

import (
	"fmt"
	"io"

	"siteselect/internal/stats"
)

// SpecRow compares the load-sharing system with and without speculative
// processing at one operating point. Rates are means over replications;
// the counters are rounded means.
type SpecRow struct {
	Clients  int
	Update   float64
	LS       float64
	LSSpec   float64
	Runs     int64
	Hits     int64
	HitRatio float64
}

// SpeculationStudy is the second future-work extension: overlap a
// transaction's computation with its in-flight lock upgrades and keep
// the work when the versions validate.
type SpeculationStudy struct {
	Rows []SpecRow
}

// RunSpeculationStudy sweeps client counts at a write-heavy mix (the
// regime where upgrades — and therefore speculation opportunities —
// exist), every cell concurrently.
func RunSpeculationStudy(opts Options) (*SpeculationStudy, error) {
	opts = opts.normalize()
	out := &SpeculationStudy{}
	updates := []float64{0.05, 0.20}
	type cellResult struct {
		rate       float64
		runs, hits int64
	}
	type cell struct{ ui, ni, spec, rep int }
	var cells []cell
	var labels []string
	for ui, update := range updates {
		for ni, n := range opts.Clients {
			for spec := 0; spec < 2; spec++ {
				for r := 0; r < opts.Reps; r++ {
					cells = append(cells, cell{ui, ni, spec, r})
					labels = append(labels, fmt.Sprintf("speculation n=%d u=%g spec=%d rep=%d", n, update, spec, r))
				}
			}
		}
	}
	results, err := runCells(opts, labels, func(i int) (cellResult, error) {
		c := cells[i]
		n := opts.Clients[c.ni]
		cfg := opts.csConfig(n, updates[c.ui], c.rep)
		cfg.UseSpeculation = c.spec == 1
		res, err := RunLS(cfg)
		if err != nil {
			return cellResult{}, fmt.Errorf("speculation: %d clients (spec=%v): %w", n, c.spec == 1, err)
		}
		return cellResult{
			rate: res.SuccessRate(),
			runs: res.M.SpeculativeRuns,
			hits: res.M.SpeculationHits,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for ui, update := range updates {
		for ni, n := range opts.Clients {
			var base, spec stats.Sample
			var runs, hits []int64
			for i, c := range cells {
				if c.ui != ui || c.ni != ni {
					continue
				}
				if c.spec == 0 {
					base.Add(results[i].rate)
					continue
				}
				spec.Add(results[i].rate)
				runs = append(runs, results[i].runs)
				hits = append(hits, results[i].hits)
			}
			row := SpecRow{
				Clients: n,
				Update:  update,
				LS:      base.Mean(),
				LSSpec:  spec.Mean(),
				Runs:    meanRound(runs),
				Hits:    meanRound(hits),
			}
			if row.Runs > 0 {
				row.HitRatio = float64(row.Hits) / float64(row.Runs)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Render writes the study as an aligned text table.
func (s *SpeculationStudy) Render(w io.Writer) {
	fmt.Fprintln(w, "Speculative processing study (LS-CS-RTDBS, upgrades overlapped with computation)")
	fmt.Fprintf(w, "%-8s %-9s %10s %12s %10s %10s %10s\n",
		"Clients", "Updates", "LS", "LS+spec", "Spec runs", "Validated", "Hit ratio")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-8d %-9s %9.1f%% %11.1f%% %10d %10d %9.1f%%\n",
			r.Clients, fmt.Sprintf("%g%%", r.Update*100), r.LS, r.LSSpec, r.Runs, r.Hits, 100*r.HitRatio)
	}
}
