package experiment

import (
	"fmt"
	"io"
)

// SpecRow compares the load-sharing system with and without speculative
// processing at one operating point.
type SpecRow struct {
	Clients  int
	Update   float64
	LS       float64
	LSSpec   float64
	Runs     int64
	Hits     int64
	HitRatio float64
}

// SpeculationStudy is the second future-work extension: overlap a
// transaction's computation with its in-flight lock upgrades and keep
// the work when the versions validate.
type SpeculationStudy struct {
	Rows []SpecRow
}

// RunSpeculationStudy sweeps client counts at a write-heavy mix (the
// regime where upgrades — and therefore speculation opportunities —
// exist).
func RunSpeculationStudy(opts Options) (*SpeculationStudy, error) {
	opts = opts.normalize()
	out := &SpeculationStudy{}
	for _, update := range []float64{0.05, 0.20} {
		for _, n := range opts.Clients {
			base, err := RunLS(opts.csConfig(n, update))
			if err != nil {
				return nil, fmt.Errorf("speculation: base %d clients: %w", n, err)
			}
			cfg := opts.csConfig(n, update)
			cfg.UseSpeculation = true
			spec, err := RunLS(cfg)
			if err != nil {
				return nil, fmt.Errorf("speculation: spec %d clients: %w", n, err)
			}
			row := SpecRow{
				Clients: n,
				Update:  update,
				LS:      base.SuccessRate(),
				LSSpec:  spec.SuccessRate(),
				Runs:    spec.M.SpeculativeRuns,
				Hits:    spec.M.SpeculationHits,
			}
			if row.Runs > 0 {
				row.HitRatio = float64(row.Hits) / float64(row.Runs)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Render writes the study as an aligned text table.
func (s *SpeculationStudy) Render(w io.Writer) {
	fmt.Fprintln(w, "Speculative processing study (LS-CS-RTDBS, upgrades overlapped with computation)")
	fmt.Fprintf(w, "%-8s %-9s %10s %12s %10s %10s %10s\n",
		"Clients", "Updates", "LS", "LS+spec", "Spec runs", "Validated", "Hit ratio")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-8d %-9s %9.1f%% %11.1f%% %10d %10d %9.1f%%\n",
			r.Clients, fmt.Sprintf("%g%%", r.Update*100), r.LS, r.LSSpec, r.Runs, r.Hits, 100*r.HitRatio)
	}
}
