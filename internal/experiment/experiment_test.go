package experiment

import (
	"strings"
	"testing"
	"time"
)

// tinyOpts keeps experiment tests fast: short runs, two small client
// counts.
var tinyOpts = Options{Scale: 0.05, Seed: 1, Clients: []int{4, 8}}

func TestRunFigureShape(t *testing.T) {
	f, err := RunFigure("Figure T", 0.05, tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != 2 {
		t.Fatalf("points = %d", len(f.Points))
	}
	for _, p := range f.Points {
		for _, v := range []float64{p.CE, p.CS, p.LS} {
			if v < 0 || v > 100 {
				t.Fatalf("rate out of range: %+v", p)
			}
		}
	}
	var sb strings.Builder
	f.Render(&sb)
	if !strings.Contains(sb.String(), "Figure T") || !strings.Contains(sb.String(), "LS-CS-RTDBS") {
		t.Fatalf("render output:\n%s", sb.String())
	}
	sb.Reset()
	f.CSV(&sb)
	if !strings.HasPrefix(sb.String(), "clients,ce,cs,ls\n") {
		t.Fatalf("csv output:\n%s", sb.String())
	}
	if got := strings.Count(sb.String(), "\n"); got != 3 {
		t.Fatalf("csv lines = %d", got)
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	if o.Scale != 1 || o.Seed != 1 || len(o.Clients) != len(DefaultClients) {
		t.Fatalf("normalized = %+v", o)
	}
	o = Options{Scale: 5}.normalize()
	if o.Scale != 1 {
		t.Fatalf("out-of-range scale kept: %v", o.Scale)
	}
}

func TestProtocolCounts(t *testing.T) {
	counts := RunProtocolCounts([]int{1, 2, 10})
	want := []ProtocolCounts{
		{N: 1, TwoPL: 3, Callback: 4, Grouped: 3},
		{N: 2, TwoPL: 6, Callback: 8, Grouped: 5},
		{N: 10, TwoPL: 30, Callback: 40, Grouped: 21},
	}
	for i, c := range counts {
		if c != want[i] {
			t.Fatalf("counts[%d] = %+v, want %+v", i, c, want[i])
		}
	}
	var sb strings.Builder
	RenderProtocolCounts(&sb, counts)
	if !strings.Contains(sb.String(), "Figure 1") || !strings.Contains(sb.String(), "7 messages") {
		// The worked example lists 7 numbered messages; just check the
		// section headers rendered.
		if !strings.Contains(sb.String(), "callback locking") {
			t.Fatalf("render output:\n%s", sb.String())
		}
	}
}

func TestHeuristicAblationRuns(t *testing.T) {
	a, err := RunHeuristicAblation(6, 0.20, Options{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 6 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	if a.Rows[0].Name != "all-off (=CS)" || a.Rows[5].Name != "all-on (=LS)" {
		t.Fatalf("row names: %q ... %q", a.Rows[0].Name, a.Rows[5].Name)
	}
	var sb strings.Builder
	a.Render(&sb)
	if !strings.Contains(sb.String(), "H2 only") {
		t.Fatalf("render output:\n%s", sb.String())
	}
}

func TestWindowAblationRuns(t *testing.T) {
	a, err := RunWindowAblation(6, 0.20, Options{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 4 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
}

func TestDowngradeAblationRuns(t *testing.T) {
	a, err := RunDowngradeAblation(6, 0.20, Options{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 2 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
}

func TestTable4Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("table 4 runs 100 clients")
	}
	tbl, err := RunTable4(Options{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.CSRequests == 0 || tbl.LSRequests == 0 {
		t.Fatalf("request counts = %d/%d", tbl.CSRequests, tbl.LSRequests)
	}
	var sb strings.Builder
	tbl.Render(&sb)
	if !strings.Contains(sb.String(), "Forward Lists") {
		t.Fatalf("render output:\n%s", sb.String())
	}
}

func TestTables2And3Run(t *testing.T) {
	if testing.Short() {
		t.Skip("tables sweep to 100 clients")
	}
	opts := Options{Scale: 0.05, Seed: 1}
	t2, err := RunTable2(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 3 {
		t.Fatalf("table2 rows = %d", len(t2.Rows))
	}
	t3, err := RunTable3(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 3 {
		t.Fatalf("table3 rows = %d", len(t3.Rows))
	}
	for _, r := range t3.Rows {
		if r.CSShared <= 0 || r.CSShared > 10*time.Second {
			t.Fatalf("suspicious SL response %v", r.CSShared)
		}
	}
	var sb strings.Builder
	t2.Render(&sb)
	t3.Render(&sb)
	if !strings.Contains(sb.String(), "Cache Hit Rates") || !strings.Contains(sb.String(), "Response Times") {
		t.Fatalf("render output:\n%s", sb.String())
	}
}

func TestPatternSweepRuns(t *testing.T) {
	ps, err := RunPatternSweep(6, 0.10, Options{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Rows) != 3 {
		t.Fatalf("rows = %d", len(ps.Rows))
	}
	var sb strings.Builder
	ps.Render(&sb)
	for _, want := range []string{"localized-rw", "uniform", "hot-cold"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("missing %q in:\n%s", want, sb.String())
		}
	}
}

func TestCCComparisonRuns(t *testing.T) {
	cc, err := RunCCComparison(Options{Scale: 0.05, Seed: 1, Clients: []int{6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cc.Rows) != 2 { // one client count x two update mixes
		t.Fatalf("rows = %d", len(cc.Rows))
	}
	var sb strings.Builder
	cc.Render(&sb)
	if !strings.Contains(sb.String(), "2PL") || !strings.Contains(sb.String(), "OCC") {
		t.Fatalf("render output:\n%s", sb.String())
	}
}

func TestSpeculationStudyRuns(t *testing.T) {
	ss, err := RunSpeculationStudy(Options{Scale: 0.05, Seed: 1, Clients: []int{6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Rows) != 2 {
		t.Fatalf("rows = %d", len(ss.Rows))
	}
	var sb strings.Builder
	ss.Render(&sb)
	if !strings.Contains(sb.String(), "LS+spec") {
		t.Fatalf("render output:\n%s", sb.String())
	}
}

func TestReplicatedFigure(t *testing.T) {
	rf, err := RunFigure("Figure R", 0.05, Options{Scale: 0.05, Seed: 1, Clients: []int{4}, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rf.Reps != 3 || len(rf.Points) != 1 {
		t.Fatalf("shape = %d reps, %d points", rf.Reps, len(rf.Points))
	}
	var sb strings.Builder
	rf.Render(&sb)
	if !strings.Contains(sb.String(), "±") {
		t.Fatalf("render output:\n%s", sb.String())
	}
	sb.Reset()
	rf.CSV(&sb)
	if !strings.HasPrefix(sb.String(), "clients,ce_mean") {
		t.Fatalf("csv output:\n%s", sb.String())
	}
}

func TestTableCSVHeaders(t *testing.T) {
	var sb strings.Builder
	(&Table2{Rows: []Table2Row{{Clients: 20}}}).CSV(&sb)
	if !strings.HasPrefix(sb.String(), "clients,cs_1") {
		t.Fatalf("table2 csv: %s", sb.String())
	}
	sb.Reset()
	(&Table3{Rows: []Table3Row{{N: 20}}}).CSV(&sb)
	if !strings.HasPrefix(sb.String(), "clients,cs_sl") {
		t.Fatalf("table3 csv: %s", sb.String())
	}
	sb.Reset()
	(&Table4{}).CSV(&sb)
	if !strings.Contains(sb.String(), "forward_list_hops") {
		t.Fatalf("table4 csv: %s", sb.String())
	}
}

func TestBatchSweepRuns(t *testing.T) {
	windows := []time.Duration{0, 100 * time.Millisecond}
	bs, err := RunBatchSweep(windows, 6, 0.20, Options{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(bs.Rows) != 2 {
		t.Fatalf("rows = %d", len(bs.Rows))
	}
	if bs.Rows[0].Window != 0 || bs.Rows[0].Flushes != 0 || bs.Rows[0].Batched != 0 {
		t.Fatalf("unbatched baseline recorded flushes: %+v", bs.Rows[0])
	}
	if bs.Rows[1].Flushes == 0 {
		t.Fatalf("windowed row recorded no flushes: %+v", bs.Rows[1])
	}
	for _, r := range bs.Rows {
		if r.Success < 0 || r.Success > 100 {
			t.Fatalf("success out of range: %+v", r)
		}
		if r.LockWaitShare < 0 || r.LockWaitShare > 1 {
			t.Fatalf("lock-wait share out of range: %+v", r)
		}
	}
	var sb strings.Builder
	bs.Render(&sb)
	if !strings.Contains(sb.String(), "Batch-window sweep") || !strings.Contains(sb.String(), "lock-wait") {
		t.Fatalf("render:\n%s", sb.String())
	}
	sb.Reset()
	bs.CSV(&sb)
	if !strings.HasPrefix(sb.String(), "window_ms,success") {
		t.Fatalf("csv:\n%s", sb.String())
	}
	if got := strings.Count(sb.String(), "\n"); got != 3 {
		t.Fatalf("csv lines = %d", got)
	}
}

func TestOutageStudyRuns(t *testing.T) {
	os, err := RunOutageStudy(6, 0.20, Options{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(os.Rows) != 5 {
		t.Fatalf("rows = %d", len(os.Rows))
	}
	if os.Rows[2].Forces == 0 {
		t.Fatal("WAL variant recorded no forces")
	}
	var sb strings.Builder
	os.Render(&sb)
	if !strings.Contains(sb.String(), "client WAL") {
		t.Fatalf("render:\n%s", sb.String())
	}
}

func TestSensitivityRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps 40-80 clients")
	}
	sv, err := RunSensitivity(Options{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sv.Rows) != 4 {
		t.Fatalf("rows = %d", len(sv.Rows))
	}
	var sb strings.Builder
	sv.Render(&sb)
	if !strings.Contains(sb.String(), "crossover") {
		t.Fatalf("render:\n%s", sb.String())
	}
}

func TestPolicyStudyRuns(t *testing.T) {
	ps, err := RunPolicyStudy(6, 0.20, Options{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Rows) != 4 {
		t.Fatalf("rows = %d", len(ps.Rows))
	}
	var sb strings.Builder
	ps.Render(&sb)
	if !strings.Contains(sb.String(), "FCFS") {
		t.Fatalf("render:\n%s", sb.String())
	}
}
