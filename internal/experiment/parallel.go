package experiment

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"siteselect/internal/config"
	"siteselect/internal/metrics"
	"siteselect/internal/rtdbs"
)

// This file is the parallel experiment harness: a bounded worker pool
// that fans the independent simulation cells of an experiment grid
// across goroutines. Every cell runs a self-contained simulator seeded
// by config.CellSeed, so results are a pure function of the master seed
// and the cell coordinates — bit-identical regardless of worker count
// or completion order. Aggregation happens after the pool drains, in
// cell-enumeration order, which keeps floating-point summation
// deterministic too.

// forEach runs do(i) for every i in [0,n) on a pool of at most parallel
// workers and returns the first error. After an error no new cells are
// dispatched; in-flight cells run to completion and every worker exits
// before forEach returns, so a failing cell cancels the grid cleanly
// with no goroutine leak.
func forEach(parallel, n int, do func(int) error) error {
	if n <= 0 {
		return nil
	}
	if parallel <= 0 {
		parallel = 1
	}
	if parallel > n {
		parallel = n
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		wg      sync.WaitGroup
		errOnce sync.Once
		err     error
	)
	next.Store(-1)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if e := do(i); e != nil {
					errOnce.Do(func() { err = e })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return err
}

// runCells runs one labelled cell per index on the bounded pool and
// returns the results in cell order. It times every cell's wall clock,
// feeds the optional metrics.WallClock accumulator, and serializes the
// optional progress callback.
func runCells[T any](o Options, labels []string, run func(int) (T, error)) ([]T, error) {
	out := make([]T, len(labels))
	var (
		mu   sync.Mutex
		done int
	)
	err := forEach(o.Parallel, len(labels), func(i int) error {
		start := time.Now()
		v, err := run(i)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		out[i] = v
		if o.Timing != nil {
			o.Timing.Observe(elapsed)
		}
		if o.Progress != nil {
			mu.Lock()
			done++
			o.Progress(metrics.CellDone{
				Label:   labels[i],
				Elapsed: elapsed,
				Done:    done,
				Total:   len(labels),
			})
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunReps runs one fixed system configuration Reps times — one cell per
// replication, each with a seed derived from opts.Seed and the config's
// workload point — on the worker pool, and returns the per-replication
// results in replication order. The caller's run closure receives the
// reseeded config; everything else in cfg is untouched (no scaling).
func RunReps(opts Options, cfg config.Config, run func(config.Config) (*rtdbs.Result, error)) ([]*rtdbs.Result, error) {
	opts = opts.normalize()
	labels := make([]string, opts.Reps)
	for r := range labels {
		labels[r] = fmt.Sprintf("n=%d u=%g rep=%d", cfg.NumClients, cfg.UpdateFraction, r)
	}
	return runCells(opts, labels, func(i int) (*rtdbs.Result, error) {
		c := cfg
		c.Seed = opts.cellSeed(cfg.NumClients, cfg.UpdateFraction, i)
		return run(c)
	})
}

// cellSeed derives the seed for the simulation cell at one workload
// point. The system or variant under test is deliberately not part of
// the coordinates: all systems compared at one (clients, update, rep)
// point share the workload stream, preserving paired A/B comparisons.
func (o Options) cellSeed(clients int, update float64, rep int) int64 {
	return config.CellSeed(o.Seed, int64(clients), config.UpdateCoord(update), int64(rep))
}

// meanRound returns the mean of int64 counts over replications, rounded
// to the nearest integer.
func meanRound(counts []int64) int64 {
	if len(counts) == 0 {
		return 0
	}
	var sum int64
	for _, c := range counts {
		sum += c
	}
	return (sum + int64(len(counts))/2) / int64(len(counts))
}

// meanDuration returns the mean of durations over replications.
func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}
