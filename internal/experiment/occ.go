package experiment

import (
	"fmt"
	"io"

	"siteselect/internal/rtdbs"
)

// CCRow compares pessimistic (2PL) and optimistic (OCC) concurrency
// control on the centralized system at one operating point.
type CCRow struct {
	Clients      int
	Update       float64
	PL           float64 // 2PL success %
	OCC          float64 // OCC success %
	Restarts     int64
	ConflictRate float64 // validation conflicts / validations
}

// CCComparison is the concurrency-control study the paper defers to
// future work: strict 2PL versus backward-validation OCC on the
// centralized real-time database.
type CCComparison struct {
	Rows []CCRow
}

// RunCCComparison sweeps client counts at two update mixes.
func RunCCComparison(opts Options) (*CCComparison, error) {
	opts = opts.normalize()
	out := &CCComparison{}
	for _, update := range []float64{0.01, 0.20} {
		for _, n := range opts.Clients {
			plCfg := opts.ceConfig(n, update)
			pl, err := RunCE(plCfg)
			if err != nil {
				return nil, fmt.Errorf("cc: 2PL %d clients: %w", n, err)
			}
			occCfg := opts.ceConfig(n, update)
			oc, err := rtdbs.NewCentralizedOCC(occCfg)
			if err != nil {
				return nil, fmt.Errorf("cc: OCC %d clients: %w", n, err)
			}
			res, err := oc.Run()
			if err != nil {
				return nil, fmt.Errorf("cc: OCC %d clients: %w", n, err)
			}
			row := CCRow{
				Clients:  n,
				Update:   update,
				PL:       pl.SuccessRate(),
				OCC:      res.SuccessRate(),
				Restarts: oc.Restarts,
			}
			if v := oc.Validator(); v.Validations > 0 {
				row.ConflictRate = float64(v.Conflicts) / float64(v.Validations)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Render writes the comparison as an aligned text table.
func (c *CCComparison) Render(w io.Writer) {
	fmt.Fprintln(w, "Concurrency-control study (centralized system): strict 2PL vs backward-validation OCC")
	fmt.Fprintf(w, "%-8s %-9s %10s %10s %10s %12s\n",
		"Clients", "Updates", "2PL", "OCC", "Restarts", "Conflict rate")
	for _, r := range c.Rows {
		fmt.Fprintf(w, "%-8d %-9s %9.1f%% %9.1f%% %10d %11.2f%%\n",
			r.Clients, fmt.Sprintf("%g%%", r.Update*100), r.PL, r.OCC, r.Restarts, 100*r.ConflictRate)
	}
}
