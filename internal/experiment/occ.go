package experiment

import (
	"fmt"
	"io"

	"siteselect/internal/rtdbs"
	"siteselect/internal/stats"
)

// CCRow compares pessimistic (2PL) and optimistic (OCC) concurrency
// control on the centralized system at one operating point. Rates are
// means over replications; restarts are rounded means.
type CCRow struct {
	Clients      int
	Update       float64
	PL           float64 // 2PL success %
	OCC          float64 // OCC success %
	Restarts     int64
	ConflictRate float64 // validation conflicts / validations
}

// CCComparison is the concurrency-control study the paper defers to
// future work: strict 2PL versus backward-validation OCC on the
// centralized real-time database.
type CCComparison struct {
	Rows []CCRow
}

// RunCCComparison sweeps client counts at two update mixes, every cell
// concurrently.
func RunCCComparison(opts Options) (*CCComparison, error) {
	opts = opts.normalize()
	out := &CCComparison{}
	updates := []float64{0.01, 0.20}
	type cellResult struct {
		rate         float64
		restarts     int64
		conflictRate float64
	}
	type cell struct{ ui, ni, sys, rep int } // sys: 0=2PL 1=OCC
	var cells []cell
	var labels []string
	for ui, update := range updates {
		for ni, n := range opts.Clients {
			for sys, name := range []string{"2PL", "OCC"} {
				for r := 0; r < opts.Reps; r++ {
					cells = append(cells, cell{ui, ni, sys, r})
					labels = append(labels, fmt.Sprintf("cc %s n=%d u=%g rep=%d", name, n, update, r))
				}
			}
		}
	}
	results, err := runCells(opts, labels, func(i int) (cellResult, error) {
		c := cells[i]
		n := opts.Clients[c.ni]
		cfg := opts.ceConfig(n, updates[c.ui], c.rep)
		if c.sys == 0 {
			res, err := RunCE(cfg)
			if err != nil {
				return cellResult{}, fmt.Errorf("cc: 2PL %d clients: %w", n, err)
			}
			return cellResult{rate: res.SuccessRate()}, nil
		}
		oc, err := rtdbs.NewCentralizedOCC(cfg)
		if err != nil {
			return cellResult{}, fmt.Errorf("cc: OCC %d clients: %w", n, err)
		}
		res, err := oc.Run()
		if err != nil {
			return cellResult{}, fmt.Errorf("cc: OCC %d clients: %w", n, err)
		}
		r := cellResult{rate: res.SuccessRate(), restarts: oc.Restarts}
		if v := oc.Validator(); v.Validations > 0 {
			r.conflictRate = float64(v.Conflicts) / float64(v.Validations)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for ui, update := range updates {
		for ni, n := range opts.Clients {
			var pl, occ, conflict stats.Sample
			var restarts []int64
			for i, c := range cells {
				if c.ui != ui || c.ni != ni {
					continue
				}
				if c.sys == 0 {
					pl.Add(results[i].rate)
					continue
				}
				occ.Add(results[i].rate)
				conflict.Add(results[i].conflictRate)
				restarts = append(restarts, results[i].restarts)
			}
			out.Rows = append(out.Rows, CCRow{
				Clients:      n,
				Update:       update,
				PL:           pl.Mean(),
				OCC:          occ.Mean(),
				Restarts:     meanRound(restarts),
				ConflictRate: conflict.Mean(),
			})
		}
	}
	return out, nil
}

// Render writes the comparison as an aligned text table.
func (c *CCComparison) Render(w io.Writer) {
	fmt.Fprintln(w, "Concurrency-control study (centralized system): strict 2PL vs backward-validation OCC")
	fmt.Fprintf(w, "%-8s %-9s %10s %10s %10s %12s\n",
		"Clients", "Updates", "2PL", "OCC", "Restarts", "Conflict rate")
	for _, r := range c.Rows {
		fmt.Fprintf(w, "%-8d %-9s %9.1f%% %9.1f%% %10d %11.2f%%\n",
			r.Clients, fmt.Sprintf("%g%%", r.Update*100), r.PL, r.OCC, r.Restarts, 100*r.ConflictRate)
	}
}
