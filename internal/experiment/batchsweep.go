package experiment

import (
	"fmt"
	"io"
	"time"

	"siteselect/internal/stats"
	"siteselect/internal/trace"
)

// DefaultBatchWindows is the window sweep of the batching study: off,
// a window well under the request round-trip, and one that coalesces a
// substantial share of concurrent requests while staying far below the
// 20 s mean slack.
var DefaultBatchWindows = []time.Duration{0, 250 * time.Millisecond, time.Second}

// BatchSweepRow is one window position of a batch-window sweep.
type BatchSweepRow struct {
	Window time.Duration
	// Success is the mean deadline-success percentage (95% CI half-width
	// in SuccessCI when Reps > 1).
	Success   float64
	SuccessCI float64
	// Missed and LockWait are a miss census summed over replications:
	// missed transactions, and the subset whose slack attribution is
	// dominated by lock-wait. LockWaitShare is their ratio.
	Missed        int64
	LockWait      int64
	LockWaitShare float64
	// Messages is the mean total LAN message count per run — batching
	// coalesces ships and recalls, so it should fall as Window grows.
	Messages float64
	// Flushes and Batched are per-run means of the server's batch
	// counters: window closes, and requests that shared a window with at
	// least one other request.
	Flushes float64
	Batched float64
}

// BatchSweep is the batching study: the client-server system re-run at
// fixed load across a sweep of Config.BatchWindow values, traced so
// every missed transaction is classified by dominant slack component.
// Window 0 is the unbatched baseline; the sweep shows the lock-wait
// miss share and the message count falling as the server grants each
// window's compatible requests together.
type BatchSweep struct {
	Clients        int
	UpdateFraction float64
	Reps           int
	Rows           []BatchSweepRow
}

// RunBatchSweep runs the client-server system at the given client count
// and update mix once per window (times Reps). Cell seeds derive from
// (clients, update, rep) only, so every window position sees the same
// workload stream — the window is the sole variable.
func RunBatchSweep(windows []time.Duration, clients int, update float64, opts Options) (*BatchSweep, error) {
	opts = opts.normalize()
	if len(windows) == 0 {
		windows = DefaultBatchWindows
	}
	bs := &BatchSweep{Clients: clients, UpdateFraction: update, Reps: opts.Reps}
	type cell struct{ wi, rep int }
	var cells []cell
	var labels []string
	for wi, w := range windows {
		for r := 0; r < opts.Reps; r++ {
			cells = append(cells, cell{wi, r})
			labels = append(labels, fmt.Sprintf("batch-sweep CS n=%d w=%v rep=%d", clients, w, r))
		}
	}
	type obs struct {
		success          float64
		missed, lockWait int64
		messages         int64
		flushes, batched int64
	}
	results, err := runCells(opts, labels, func(i int) (obs, error) {
		c := cells[i]
		wopts := opts
		wopts.BatchWindow = windows[c.wi]
		cfg := wopts.csConfig(clients, update, c.rep)
		cfg.Trace = true
		res, err := RunCS(cfg)
		if err != nil {
			return obs{}, fmt.Errorf("batch sweep: window %v (rep %d): %w", windows[c.wi], c.rep, err)
		}
		o := obs{
			success:  res.SuccessRate(),
			messages: res.TotalMessages,
			flushes:  res.BatchFlushes,
			batched:  res.BatchedRequests,
		}
		if res.MissCauses != nil {
			o.missed = res.MissCauses.Missed
			o.lockWait = res.MissCauses.ByCause[trace.CompLockWait]
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	agg := make([]struct {
		success, messages, flushes, batched stats.Sample
		missed, lockWait                    int64
	}, len(windows))
	for i, c := range cells {
		o := results[i]
		agg[c.wi].success.Add(o.success)
		agg[c.wi].messages.Add(float64(o.messages))
		agg[c.wi].flushes.Add(float64(o.flushes))
		agg[c.wi].batched.Add(float64(o.batched))
		agg[c.wi].missed += o.missed
		agg[c.wi].lockWait += o.lockWait
	}
	for wi, w := range windows {
		a := &agg[wi]
		row := BatchSweepRow{
			Window:    w,
			Success:   a.success.Mean(),
			SuccessCI: a.success.CI95(),
			Missed:    a.missed,
			LockWait:  a.lockWait,
			Messages:  a.messages.Mean(),
			Flushes:   a.flushes.Mean(),
			Batched:   a.batched.Mean(),
		}
		if a.missed > 0 {
			row.LockWaitShare = float64(a.lockWait) / float64(a.missed)
		}
		bs.Rows = append(bs.Rows, row)
	}
	return bs, nil
}

// Render writes the sweep as an aligned text table.
func (bs *BatchSweep) Render(w io.Writer) {
	fmt.Fprintf(w, "Batch-window sweep — CS-RTDBS, %d clients, %g%% updates\n",
		bs.Clients, bs.UpdateFraction*100)
	if bs.Reps > 1 {
		fmt.Fprintf(w, "(success/messages are means over %d replications; the miss census is summed)\n", bs.Reps)
	}
	fmt.Fprintf(w, "%-10s %12s %8s %10s %12s %12s %10s %10s\n",
		"Window", "Success", "Missed", "lock-wait", "lw-share", "Messages", "Flushes", "Batched")
	for _, r := range bs.Rows {
		success := fmt.Sprintf("%.1f%%", r.Success)
		if bs.Reps > 1 {
			success = fmt.Sprintf("%.1f ± %.1f", r.Success, r.SuccessCI)
		}
		fmt.Fprintf(w, "%-10v %12s %8d %10d %11.1f%% %12.0f %10.0f %10.0f\n",
			r.Window, success, r.Missed, r.LockWait, 100*r.LockWaitShare,
			r.Messages, r.Flushes, r.Batched)
	}
}

// CSV writes the sweep as comma-separated values.
func (bs *BatchSweep) CSV(w io.Writer) {
	fmt.Fprintln(w, "window_ms,success,success_ci,missed,lock_wait,lock_wait_share,messages,flushes,batched")
	for _, r := range bs.Rows {
		fmt.Fprintf(w, "%g,%.2f,%.2f,%d,%d,%.4f,%.1f,%.1f,%.1f\n",
			float64(r.Window)/float64(time.Millisecond), r.Success, r.SuccessCI,
			r.Missed, r.LockWait, r.LockWaitShare, r.Messages, r.Flushes, r.Batched)
	}
}
