// Package experiment defines one runner per table and figure of the
// paper's evaluation (Section 5), plus the ablations of the design
// choices, and renders the results in the same rows and series the paper
// reports.
package experiment

import (
	"fmt"
	"io"
	"time"

	"siteselect/internal/config"
	"siteselect/internal/netsim"
	"siteselect/internal/plot"
	"siteselect/internal/rtdbs"
)

// DefaultClients is the client-count sweep of Figures 3–5.
var DefaultClients = []int{20, 40, 60, 80, 100}

// Options tune a run of an experiment.
type Options struct {
	// Scale shrinks run length (1 = the full 30-minute virtual runs).
	Scale float64
	// Seed drives all random streams.
	Seed int64
	// Clients overrides the client sweep for figures.
	Clients []int
}

func (o Options) normalize() Options {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Clients) == 0 {
		o.Clients = DefaultClients
	}
	return o
}

func (o Options) csConfig(n int, update float64) config.Config {
	cfg := config.Default(n, update).Scale(o.Scale)
	cfg.Seed = o.Seed
	return cfg
}

func (o Options) ceConfig(n int, update float64) config.Config {
	cfg := config.DefaultCentralized(n, update).Scale(o.Scale)
	cfg.Seed = o.Seed
	return cfg
}

// RunCE runs the centralized system.
func RunCE(cfg config.Config) (*rtdbs.Result, error) {
	ce, err := rtdbs.NewCentralized(cfg)
	if err != nil {
		return nil, err
	}
	return ce.Run()
}

// RunCS runs the basic client-server system.
func RunCS(cfg config.Config) (*rtdbs.Result, error) {
	cs, err := rtdbs.NewClientServer(cfg)
	if err != nil {
		return nil, err
	}
	return cs.Run()
}

// RunLS runs the load-sharing client-server system.
func RunLS(cfg config.Config) (*rtdbs.Result, error) {
	ls, err := rtdbs.NewLoadSharing(cfg)
	if err != nil {
		return nil, err
	}
	return ls.Run()
}

// FigurePoint is one x-position of a Figure 3/4/5 plot.
type FigurePoint struct {
	Clients int
	CE      float64
	CS      float64
	LS      float64
}

// Figure is a reproduction of one of Figures 3–5: percentage of
// transactions completed within their deadlines vs number of clients.
type Figure struct {
	ID             string
	Title          string
	UpdateFraction float64
	Points         []FigurePoint
}

// RunFigure reproduces Figure 3 (update=0.01), Figure 4 (0.05) or
// Figure 5 (0.20).
func RunFigure(id string, update float64, opts Options) (*Figure, error) {
	opts = opts.normalize()
	f := &Figure{
		ID:             id,
		Title:          fmt.Sprintf("Percentage of Transactions Completed Within Their Deadlines (%g%% updates)", update*100),
		UpdateFraction: update,
	}
	for _, n := range opts.Clients {
		ce, err := RunCE(opts.ceConfig(n, update))
		if err != nil {
			return nil, fmt.Errorf("experiment %s: CE with %d clients: %w", id, n, err)
		}
		cs, err := RunCS(opts.csConfig(n, update))
		if err != nil {
			return nil, fmt.Errorf("experiment %s: CS with %d clients: %w", id, n, err)
		}
		ls, err := RunLS(opts.csConfig(n, update))
		if err != nil {
			return nil, fmt.Errorf("experiment %s: LS with %d clients: %w", id, n, err)
		}
		f.Points = append(f.Points, FigurePoint{
			Clients: n,
			CE:      ce.SuccessRate(),
			CS:      cs.SuccessRate(),
			LS:      ls.SuccessRate(),
		})
	}
	return f, nil
}

// Render writes the figure as an aligned text table.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "%-10s %12s %12s %12s\n", "Clients", "CE-RTDBS", "CS-RTDBS", "LS-CS-RTDBS")
	for _, p := range f.Points {
		fmt.Fprintf(w, "%-10d %11.1f%% %11.1f%% %11.1f%%\n", p.Clients, p.CE, p.CS, p.LS)
	}
}

// CSV writes the figure as comma-separated values.
func (f *Figure) CSV(w io.Writer) {
	fmt.Fprintln(w, "clients,ce,cs,ls")
	for _, p := range f.Points {
		fmt.Fprintf(w, "%d,%.2f,%.2f,%.2f\n", p.Clients, p.CE, p.CS, p.LS)
	}
}

// Table2Row holds the cache hit rates for one client count across the
// three update mixes (paper Table 2).
type Table2Row struct {
	Clients int
	CS      [3]float64 // 1%, 5%, 20%
	LS      [3]float64
}

// Table2 reproduces "Average Cache Hit Rates in the CS-RTDBS and
// LS-CS-RTDBS".
type Table2 struct {
	Rows []Table2Row
}

// Table2Updates are the update mixes of Table 2's columns.
var Table2Updates = [3]float64{0.01, 0.05, 0.20}

// Table2Clients are the client counts of Table 2's rows.
var Table2Clients = []int{20, 60, 100}

// RunTable2 reproduces Table 2.
func RunTable2(opts Options) (*Table2, error) {
	opts = opts.normalize()
	t := &Table2{}
	for _, n := range Table2Clients {
		row := Table2Row{Clients: n}
		for i, upd := range Table2Updates {
			cs, err := RunCS(opts.csConfig(n, upd))
			if err != nil {
				return nil, fmt.Errorf("table2: CS %d clients %g%%: %w", n, upd*100, err)
			}
			ls, err := RunLS(opts.csConfig(n, upd))
			if err != nil {
				return nil, fmt.Errorf("table2: LS %d clients %g%%: %w", n, upd*100, err)
			}
			row.CS[i] = cs.CacheHitRate()
			row.LS[i] = ls.CacheHitRate()
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Render writes Table 2 as an aligned text table.
func (t *Table2) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 2 — Average Cache Hit Rates in the CS-RTDBS and LS-CS-RTDBS")
	fmt.Fprintf(w, "%-10s | %8s %8s %8s | %8s %8s %8s\n",
		"Clients", "CS 1%", "CS 5%", "CS 20%", "LS 1%", "LS 5%", "LS 20%")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-10d | %7.2f%% %7.2f%% %7.2f%% | %7.2f%% %7.2f%% %7.2f%%\n",
			r.Clients, r.CS[0], r.CS[1], r.CS[2], r.LS[0], r.LS[1], r.LS[2])
	}
}

// Table3Row holds mean object response times (seconds) by lock mode for
// one client count (paper Table 3; 1% updates).
type Table3Row struct {
	N                     int
	CSShared, CSExclusive time.Duration
	LSShared, LSExclusive time.Duration
}

// Table3 reproduces "Average Object Response Times for 1% updates".
type Table3 struct {
	Rows []Table3Row
}

// RunTable3 reproduces Table 3.
func RunTable3(opts Options) (*Table3, error) {
	opts = opts.normalize()
	t := &Table3{}
	for _, n := range Table2Clients {
		cs, err := RunCS(opts.csConfig(n, 0.01))
		if err != nil {
			return nil, fmt.Errorf("table3: CS %d clients: %w", n, err)
		}
		ls, err := RunLS(opts.csConfig(n, 0.01))
		if err != nil {
			return nil, fmt.Errorf("table3: LS %d clients: %w", n, err)
		}
		t.Rows = append(t.Rows, Table3Row{
			N:           n,
			CSShared:    cs.M.SharedResponse.Mean(),
			CSExclusive: cs.M.ExclusiveResponse.Mean(),
			LSShared:    ls.M.SharedResponse.Mean(),
			LSExclusive: ls.M.ExclusiveResponse.Mean(),
		})
	}
	return t, nil
}

// Render writes Table 3 as an aligned text table (values in seconds).
func (t *Table3) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 3 — Average Object Response Times (in seconds) for 1% updates")
	fmt.Fprintf(w, "%-10s | %10s %10s | %10s %10s\n",
		"Clients", "CS SL", "CS EL", "LS SL", "LS EL")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-10d | %10.3f %10.3f | %10.3f %10.3f\n",
			r.N, r.CSShared.Seconds(), r.CSExclusive.Seconds(),
			r.LSShared.Seconds(), r.LSExclusive.Seconds())
	}
}

// Table4 reproduces "Number of Messages Passed in the CS-RTDBSs (100
// Clients, 1% updates)".
type Table4 struct {
	CSRequests, LSRequests int64
	CSShipped, LSShipped   int64
	LSForwarded            int64
	CSRecalls, LSRecalls   int64
	CSReturns, LSReturns   int64
	CSMessages, LSMessages int64
	CSElapsed, LSElapsed   time.Duration
}

// RunTable4 reproduces Table 4 at 100 clients and 1% updates.
func RunTable4(opts Options) (*Table4, error) {
	opts = opts.normalize()
	cs, err := RunCS(opts.csConfig(100, 0.01))
	if err != nil {
		return nil, fmt.Errorf("table4: CS: %w", err)
	}
	ls, err := RunLS(opts.csConfig(100, 0.01))
	if err != nil {
		return nil, fmt.Errorf("table4: LS: %w", err)
	}
	req := func(r *rtdbs.Result) int64 {
		return r.Messages[netsim.KindObjectRequest].Count
	}
	t := &Table4{
		CSRequests:  req(cs),
		LSRequests:  req(ls),
		CSShipped:   cs.Messages[netsim.KindObjectShip].Count,
		LSShipped:   ls.Messages[netsim.KindObjectShip].Count,
		LSForwarded: ls.Messages[netsim.KindClientForward].Count,
		CSRecalls:   cs.Messages[netsim.KindRecall].Count,
		LSRecalls:   ls.Messages[netsim.KindRecall].Count,
		CSReturns:   cs.Messages[netsim.KindObjectReturn].Count,
		LSReturns:   ls.Messages[netsim.KindObjectReturn].Count,
		CSMessages:  cs.TotalMessages,
		LSMessages:  ls.TotalMessages,
		CSElapsed:   cs.Elapsed,
		LSElapsed:   ls.Elapsed,
	}
	return t, nil
}

// Render writes Table 4 as an aligned text table.
func (t *Table4) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 4 — Number of Messages Passed in the CS-RTDBSs (100 Clients, 1% updates)")
	fmt.Fprintf(w, "%-55s %12s %12s\n", "", "CS-RTDBS", "LS-CS-RTDBS")
	rows := []struct {
		label  string
		cs, ls int64
		csOnly bool
	}{
		{"Object Request Messages (client to server)", t.CSRequests, t.LSRequests, false},
		{"Objects Sent (server to client)", t.CSShipped, t.LSShipped, false},
		{"Object Requests Satisfied Using Forward Lists (c2c)", 0, t.LSForwarded, true},
		{"Objects Recall Messages (server to client)", t.CSRecalls, t.LSRecalls, false},
		{"Objects Returned (client to server)", t.CSReturns, t.LSReturns, false},
		{"All Messages", t.CSMessages, t.LSMessages, false},
	}
	for _, r := range rows {
		if r.csOnly {
			fmt.Fprintf(w, "%-55s %12s %12d\n", r.label, "-", r.ls)
			continue
		}
		fmt.Fprintf(w, "%-55s %12d %12d\n", r.label, r.cs, r.ls)
	}
}

// Chart converts the figure to a plottable line chart (success % on a
// 0–100 axis against client count).
func (f *Figure) Chart() *plot.Chart {
	c := &plot.Chart{
		Title:  f.ID + " — " + f.Title,
		XLabel: "Number of clients",
		YLabel: "Transactions completed within deadline (%)",
		YMin:   0,
		YMax:   100,
	}
	ce := plot.Series{Name: "CE-RTDBS"}
	cs := plot.Series{Name: "CS-RTDBS"}
	ls := plot.Series{Name: "LS-CS-RTDBS"}
	for _, p := range f.Points {
		c.X = append(c.X, float64(p.Clients))
		ce.Y = append(ce.Y, p.CE)
		cs.Y = append(cs.Y, p.CS)
		ls.Y = append(ls.Y, p.LS)
	}
	c.Series = []plot.Series{ce, cs, ls}
	return c
}

// CSV writes Table 2 as comma-separated values.
func (t *Table2) CSV(w io.Writer) {
	fmt.Fprintln(w, "clients,cs_1,cs_5,cs_20,ls_1,ls_5,ls_20")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%d,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f\n",
			r.Clients, r.CS[0], r.CS[1], r.CS[2], r.LS[0], r.LS[1], r.LS[2])
	}
}

// CSV writes Table 3 as comma-separated values (seconds).
func (t *Table3) CSV(w io.Writer) {
	fmt.Fprintln(w, "clients,cs_sl,cs_el,ls_sl,ls_el")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%d,%.4f,%.4f,%.4f,%.4f\n",
			r.N, r.CSShared.Seconds(), r.CSExclusive.Seconds(),
			r.LSShared.Seconds(), r.LSExclusive.Seconds())
	}
}

// CSV writes Table 4 as comma-separated values.
func (t *Table4) CSV(w io.Writer) {
	fmt.Fprintln(w, "row,cs,ls")
	fmt.Fprintf(w, "object_requests,%d,%d\n", t.CSRequests, t.LSRequests)
	fmt.Fprintf(w, "objects_sent,%d,%d\n", t.CSShipped, t.LSShipped)
	fmt.Fprintf(w, "forward_list_hops,0,%d\n", t.LSForwarded)
	fmt.Fprintf(w, "recalls,%d,%d\n", t.CSRecalls, t.LSRecalls)
	fmt.Fprintf(w, "returns,%d,%d\n", t.CSReturns, t.LSReturns)
	fmt.Fprintf(w, "all_messages,%d,%d\n", t.CSMessages, t.LSMessages)
}
