// Package experiment defines one runner per table and figure of the
// paper's evaluation (Section 5), plus the ablations of the design
// choices, and renders the results in the same rows and series the paper
// reports.
//
// Every runner fans its simulation cells — each (system, client count,
// update mix, replication) combination — across a bounded worker pool
// (Options.Parallel). Each cell is seeded independently via
// config.CellSeed, so a grid's aggregated results depend only on the
// master seed, never on worker count or completion order, and
// replications (Options.Reps) are aggregated into means with 95%
// confidence half-widths.
package experiment

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"siteselect/internal/config"
	"siteselect/internal/metrics"
	"siteselect/internal/netsim"
	"siteselect/internal/plot"
	"siteselect/internal/rtdbs"
	"siteselect/internal/stats"
)

// DefaultClients is the client-count sweep of Figures 3–5.
var DefaultClients = []int{20, 40, 60, 80, 100}

// Options tune a run of an experiment.
type Options struct {
	// Scale shrinks run length (1 = the full 30-minute virtual runs).
	Scale float64
	// Seed is the master seed; every cell's seed is derived from it and
	// the cell coordinates (see config.CellSeed).
	Seed int64
	// Clients overrides the client sweep for figures.
	Clients []int
	// Parallel bounds the worker pool fanning cells out
	// (0 = runtime.GOMAXPROCS(0)). Results are identical for any value.
	Parallel int
	// Reps replicates every cell over derived per-replication seeds and
	// aggregates the results as mean + 95% CI (0 or 1 = single run).
	Reps int
	// BatchWindow sets Config.BatchWindow on every client-server cell:
	// the server collects firm requests for this long and resolves each
	// batch in one pass (0 = unbatched, byte-identical behavior). The
	// centralized system has no server request path, so its cells are
	// unaffected.
	BatchWindow time.Duration
	// CheckInvariants attaches the continuous invariant monitor to every
	// cell of the fault studies (it re-audits the model after each
	// kernel event, so it is meant for the test tier, not full-scale
	// runs). It never changes results, only fails runs that violate an
	// invariant.
	CheckInvariants bool
	// Progress, when non-nil, is called (serialized) after each cell
	// completes, with per-cell wall-clock timing.
	Progress metrics.ProgressFunc
	// Timing, when non-nil, accumulates per-cell wall-clock timings.
	Timing *metrics.WallClock
}

func (o Options) normalize() Options {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	o.Seed = config.NormalizeSeed(o.Seed)
	if len(o.Clients) == 0 {
		o.Clients = DefaultClients
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.Reps < 1 {
		o.Reps = 1
	}
	return o
}

func (o Options) csConfig(n int, update float64, rep int) config.Config {
	cfg := config.Default(n, update).Scale(o.Scale)
	cfg.Seed = o.cellSeed(n, update, rep)
	cfg.BatchWindow = o.BatchWindow
	return cfg
}

func (o Options) ceConfig(n int, update float64, rep int) config.Config {
	cfg := config.DefaultCentralized(n, update).Scale(o.Scale)
	cfg.Seed = o.cellSeed(n, update, rep)
	return cfg
}

// RunCE runs the centralized system.
func RunCE(cfg config.Config) (*rtdbs.Result, error) {
	ce, err := rtdbs.NewCentralized(cfg)
	if err != nil {
		return nil, err
	}
	return ce.Run()
}

// RunCS runs the basic client-server system.
func RunCS(cfg config.Config) (*rtdbs.Result, error) {
	cs, err := rtdbs.NewClientServer(cfg)
	if err != nil {
		return nil, err
	}
	return cs.Run()
}

// RunLS runs the load-sharing client-server system.
func RunLS(cfg config.Config) (*rtdbs.Result, error) {
	ls, err := rtdbs.NewLoadSharing(cfg)
	if err != nil {
		return nil, err
	}
	return ls.Run()
}

// figureSystems enumerates the three systems of Figures 3–5 in series
// order.
var figureSystems = []struct {
	name    string
	central bool
	run     func(config.Config) (*rtdbs.Result, error)
}{
	{"CE", true, RunCE},
	{"CS", false, RunCS},
	{"LS", false, RunLS},
}

// FigurePoint is one x-position of a Figure 3/4/5 plot.
type FigurePoint struct {
	Clients int
	// CE, CS and LS are success percentages — means over the
	// replications when Reps > 1.
	CE float64
	CS float64
	LS float64
	// CECI, CSCI and LSCI are 95% confidence half-widths (zero for a
	// single replication).
	CECI float64
	CSCI float64
	LSCI float64
}

// Figure is a reproduction of one of Figures 3–5: percentage of
// transactions completed within their deadlines vs number of clients.
type Figure struct {
	ID             string
	Title          string
	UpdateFraction float64
	Reps           int
	Points         []FigurePoint
}

// RunFigure reproduces Figure 3 (update=0.01), Figure 4 (0.05) or
// Figure 5 (0.20). All cells of the sweep run concurrently on the
// worker pool.
func RunFigure(id string, update float64, opts Options) (*Figure, error) {
	opts = opts.normalize()
	f := &Figure{
		ID:             id,
		Title:          fmt.Sprintf("Percentage of Transactions Completed Within Their Deadlines (%g%% updates)", update*100),
		UpdateFraction: update,
		Reps:           opts.Reps,
	}
	type cell struct{ pi, sys, rep int }
	var cells []cell
	var labels []string
	for pi, n := range opts.Clients {
		for si, s := range figureSystems {
			for r := 0; r < opts.Reps; r++ {
				cells = append(cells, cell{pi, si, r})
				labels = append(labels, fmt.Sprintf("%s %s n=%d rep=%d", id, s.name, n, r))
			}
		}
	}
	rates, err := runCells(opts, labels, func(i int) (float64, error) {
		c := cells[i]
		n := opts.Clients[c.pi]
		s := figureSystems[c.sys]
		var cfg config.Config
		if s.central {
			cfg = opts.ceConfig(n, update, c.rep)
		} else {
			cfg = opts.csConfig(n, update, c.rep)
		}
		res, err := s.run(cfg)
		if err != nil {
			return 0, fmt.Errorf("experiment %s: %s with %d clients (rep %d): %w", id, s.name, n, c.rep, err)
		}
		return res.SuccessRate(), nil
	})
	if err != nil {
		return nil, err
	}
	agg := make([][3]stats.Sample, len(opts.Clients))
	for i, c := range cells {
		agg[c.pi][c.sys].Add(rates[i])
	}
	for pi, n := range opts.Clients {
		f.Points = append(f.Points, FigurePoint{
			Clients: n,
			CE:      agg[pi][0].Mean(),
			CS:      agg[pi][1].Mean(),
			LS:      agg[pi][2].Mean(),
			CECI:    agg[pi][0].CI95(),
			CSCI:    agg[pi][1].CI95(),
			LSCI:    agg[pi][2].CI95(),
		})
	}
	return f, nil
}

// Render writes the figure as an aligned text table, with ± 95% CI
// columns when the figure aggregates replications.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title)
	if f.Reps > 1 {
		fmt.Fprintf(w, "(mean ± 95%% CI over %d replications)\n", f.Reps)
		fmt.Fprintf(w, "%-10s %18s %18s %18s\n", "Clients", "CE-RTDBS", "CS-RTDBS", "LS-CS-RTDBS")
		for _, p := range f.Points {
			cell := func(m, ci float64) string { return fmt.Sprintf("%6.1f ± %4.1f", m, ci) }
			fmt.Fprintf(w, "%-10d %18s %18s %18s\n",
				p.Clients, cell(p.CE, p.CECI), cell(p.CS, p.CSCI), cell(p.LS, p.LSCI))
		}
		return
	}
	fmt.Fprintf(w, "%-10s %12s %12s %12s\n", "Clients", "CE-RTDBS", "CS-RTDBS", "LS-CS-RTDBS")
	for _, p := range f.Points {
		fmt.Fprintf(w, "%-10d %11.1f%% %11.1f%% %11.1f%%\n", p.Clients, p.CE, p.CS, p.LS)
	}
}

// CSV writes the figure as comma-separated values; replicated figures
// carry a 95% CI column per series.
func (f *Figure) CSV(w io.Writer) {
	if f.Reps > 1 {
		fmt.Fprintln(w, "clients,ce_mean,ce_ci,cs_mean,cs_ci,ls_mean,ls_ci")
		for _, p := range f.Points {
			fmt.Fprintf(w, "%d,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f\n",
				p.Clients, p.CE, p.CECI, p.CS, p.CSCI, p.LS, p.LSCI)
		}
		return
	}
	fmt.Fprintln(w, "clients,ce,cs,ls")
	for _, p := range f.Points {
		fmt.Fprintf(w, "%d,%.2f,%.2f,%.2f\n", p.Clients, p.CE, p.CS, p.LS)
	}
}

// Table2Row holds the cache hit rates for one client count across the
// three update mixes (paper Table 2), with 95% CI half-widths when the
// table aggregates replications.
type Table2Row struct {
	Clients int
	CS      [3]float64 // 1%, 5%, 20%
	LS      [3]float64
	CSCI    [3]float64
	LSCI    [3]float64
}

// Table2 reproduces "Average Cache Hit Rates in the CS-RTDBS and
// LS-CS-RTDBS".
type Table2 struct {
	Reps int
	Rows []Table2Row
}

// Table2Updates are the update mixes of Table 2's columns.
var Table2Updates = [3]float64{0.01, 0.05, 0.20}

// Table2Clients are the client counts of Table 2's rows.
var Table2Clients = []int{20, 60, 100}

// RunTable2 reproduces Table 2. All cells run concurrently.
func RunTable2(opts Options) (*Table2, error) {
	opts = opts.normalize()
	t := &Table2{Reps: opts.Reps}
	type cell struct{ ri, ui, sys, rep int } // sys: 0=CS 1=LS
	var cells []cell
	var labels []string
	for ri, n := range Table2Clients {
		for ui := range Table2Updates {
			for sys, name := range []string{"CS", "LS"} {
				for r := 0; r < opts.Reps; r++ {
					cells = append(cells, cell{ri, ui, sys, r})
					labels = append(labels, fmt.Sprintf("table2 %s n=%d u=%g rep=%d", name, n, Table2Updates[ui], r))
				}
			}
		}
	}
	rates, err := runCells(opts, labels, func(i int) (float64, error) {
		c := cells[i]
		n := Table2Clients[c.ri]
		upd := Table2Updates[c.ui]
		cfg := opts.csConfig(n, upd, c.rep)
		var res *rtdbs.Result
		var err error
		if c.sys == 0 {
			res, err = RunCS(cfg)
		} else {
			res, err = RunLS(cfg)
		}
		if err != nil {
			return 0, fmt.Errorf("table2: %d clients %g%% (rep %d): %w", n, upd*100, c.rep, err)
		}
		return res.CacheHitRate(), nil
	})
	if err != nil {
		return nil, err
	}
	agg := make([][3][2]stats.Sample, len(Table2Clients))
	for i, c := range cells {
		agg[c.ri][c.ui][c.sys].Add(rates[i])
	}
	for ri, n := range Table2Clients {
		row := Table2Row{Clients: n}
		for ui := range Table2Updates {
			row.CS[ui] = agg[ri][ui][0].Mean()
			row.LS[ui] = agg[ri][ui][1].Mean()
			row.CSCI[ui] = agg[ri][ui][0].CI95()
			row.LSCI[ui] = agg[ri][ui][1].CI95()
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Render writes Table 2 as an aligned text table, with ± 95% CI cells
// when the table aggregates replications.
func (t *Table2) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 2 — Average Cache Hit Rates in the CS-RTDBS and LS-CS-RTDBS")
	if t.Reps > 1 {
		fmt.Fprintf(w, "(mean ± 95%% CI over %d replications)\n", t.Reps)
		fmt.Fprintf(w, "%-10s | %13s %13s %13s | %13s %13s %13s\n",
			"Clients", "CS 1%", "CS 5%", "CS 20%", "LS 1%", "LS 5%", "LS 20%")
		cell := func(m, ci float64) string { return fmt.Sprintf("%5.2f ± %4.2f%%", m, ci) }
		for _, r := range t.Rows {
			fmt.Fprintf(w, "%-10d | %13s %13s %13s | %13s %13s %13s\n",
				r.Clients,
				cell(r.CS[0], r.CSCI[0]), cell(r.CS[1], r.CSCI[1]), cell(r.CS[2], r.CSCI[2]),
				cell(r.LS[0], r.LSCI[0]), cell(r.LS[1], r.LSCI[1]), cell(r.LS[2], r.LSCI[2]))
		}
		return
	}
	fmt.Fprintf(w, "%-10s | %8s %8s %8s | %8s %8s %8s\n",
		"Clients", "CS 1%", "CS 5%", "CS 20%", "LS 1%", "LS 5%", "LS 20%")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-10d | %7.2f%% %7.2f%% %7.2f%% | %7.2f%% %7.2f%% %7.2f%%\n",
			r.Clients, r.CS[0], r.CS[1], r.CS[2], r.LS[0], r.LS[1], r.LS[2])
	}
}

// Table3Row holds mean object response times (seconds) by lock mode for
// one client count (paper Table 3; 1% updates), with 95% CI half-widths
// when the table aggregates replications.
type Table3Row struct {
	N                         int
	CSShared, CSExclusive     time.Duration
	LSShared, LSExclusive     time.Duration
	CSSharedCI, CSExclusiveCI time.Duration
	LSSharedCI, LSExclusiveCI time.Duration
}

// Table3 reproduces "Average Object Response Times for 1% updates".
type Table3 struct {
	Reps int
	Rows []Table3Row
}

// RunTable3 reproduces Table 3. All cells run concurrently.
func RunTable3(opts Options) (*Table3, error) {
	opts = opts.normalize()
	t := &Table3{Reps: opts.Reps}
	type cell struct{ ri, sys, rep int } // sys: 0=CS 1=LS
	var cells []cell
	var labels []string
	for ri, n := range Table2Clients {
		for sys, name := range []string{"CS", "LS"} {
			for r := 0; r < opts.Reps; r++ {
				cells = append(cells, cell{ri, sys, r})
				labels = append(labels, fmt.Sprintf("table3 %s n=%d rep=%d", name, n, r))
			}
		}
	}
	responses, err := runCells(opts, labels, func(i int) ([2]time.Duration, error) {
		c := cells[i]
		n := Table2Clients[c.ri]
		cfg := opts.csConfig(n, 0.01, c.rep)
		var res *rtdbs.Result
		var err error
		if c.sys == 0 {
			res, err = RunCS(cfg)
		} else {
			res, err = RunLS(cfg)
		}
		if err != nil {
			return [2]time.Duration{}, fmt.Errorf("table3: %d clients (rep %d): %w", n, c.rep, err)
		}
		return [2]time.Duration{res.M.SharedResponse.Mean(), res.M.ExclusiveResponse.Mean()}, nil
	})
	if err != nil {
		return nil, err
	}
	// agg[row][sys][mode] in seconds.
	agg := make([][2][2]stats.Sample, len(Table2Clients))
	for i, c := range cells {
		agg[c.ri][c.sys][0].Add(responses[i][0].Seconds())
		agg[c.ri][c.sys][1].Add(responses[i][1].Seconds())
	}
	sec := func(v float64) time.Duration { return time.Duration(v * float64(time.Second)) }
	for ri, n := range Table2Clients {
		t.Rows = append(t.Rows, Table3Row{
			N:             n,
			CSShared:      sec(agg[ri][0][0].Mean()),
			CSExclusive:   sec(agg[ri][0][1].Mean()),
			LSShared:      sec(agg[ri][1][0].Mean()),
			LSExclusive:   sec(agg[ri][1][1].Mean()),
			CSSharedCI:    sec(agg[ri][0][0].CI95()),
			CSExclusiveCI: sec(agg[ri][0][1].CI95()),
			LSSharedCI:    sec(agg[ri][1][0].CI95()),
			LSExclusiveCI: sec(agg[ri][1][1].CI95()),
		})
	}
	return t, nil
}

// Render writes Table 3 as an aligned text table (values in seconds),
// with ± 95% CI cells when the table aggregates replications.
func (t *Table3) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 3 — Average Object Response Times (in seconds) for 1% updates")
	if t.Reps > 1 {
		fmt.Fprintf(w, "(mean ± 95%% CI over %d replications)\n", t.Reps)
		fmt.Fprintf(w, "%-10s | %15s %15s | %15s %15s\n",
			"Clients", "CS SL", "CS EL", "LS SL", "LS EL")
		cell := func(m, ci time.Duration) string {
			return fmt.Sprintf("%.3f ± %.3f", m.Seconds(), ci.Seconds())
		}
		for _, r := range t.Rows {
			fmt.Fprintf(w, "%-10d | %15s %15s | %15s %15s\n",
				r.N, cell(r.CSShared, r.CSSharedCI), cell(r.CSExclusive, r.CSExclusiveCI),
				cell(r.LSShared, r.LSSharedCI), cell(r.LSExclusive, r.LSExclusiveCI))
		}
		return
	}
	fmt.Fprintf(w, "%-10s | %10s %10s | %10s %10s\n",
		"Clients", "CS SL", "CS EL", "LS SL", "LS EL")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-10d | %10.3f %10.3f | %10.3f %10.3f\n",
			r.N, r.CSShared.Seconds(), r.CSExclusive.Seconds(),
			r.LSShared.Seconds(), r.LSExclusive.Seconds())
	}
}

// Table4 reproduces "Number of Messages Passed in the CS-RTDBSs (100
// Clients, 1% updates)". Its cells are raw protocol counters, so it
// always reports a single replication (rep 0), but its two system runs
// still execute concurrently.
type Table4 struct {
	CSRequests, LSRequests int64
	CSShipped, LSShipped   int64
	LSForwarded            int64
	CSRecalls, LSRecalls   int64
	CSReturns, LSReturns   int64
	CSMessages, LSMessages int64
	CSElapsed, LSElapsed   time.Duration
}

// RunTable4 reproduces Table 4 at 100 clients and 1% updates.
func RunTable4(opts Options) (*Table4, error) {
	opts = opts.normalize()
	labels := []string{"table4 CS n=100", "table4 LS n=100"}
	results, err := runCells(opts, labels, func(i int) (*rtdbs.Result, error) {
		cfg := opts.csConfig(100, 0.01, 0)
		if i == 0 {
			res, err := RunCS(cfg)
			if err != nil {
				return nil, fmt.Errorf("table4: CS: %w", err)
			}
			return res, nil
		}
		res, err := RunLS(cfg)
		if err != nil {
			return nil, fmt.Errorf("table4: LS: %w", err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	cs, ls := results[0], results[1]
	req := func(r *rtdbs.Result) int64 {
		return r.Messages[netsim.KindObjectRequest].Count
	}
	t := &Table4{
		CSRequests:  req(cs),
		LSRequests:  req(ls),
		CSShipped:   cs.Messages[netsim.KindObjectShip].Count,
		LSShipped:   ls.Messages[netsim.KindObjectShip].Count,
		LSForwarded: ls.Messages[netsim.KindClientForward].Count,
		CSRecalls:   cs.Messages[netsim.KindRecall].Count,
		LSRecalls:   ls.Messages[netsim.KindRecall].Count,
		CSReturns:   cs.Messages[netsim.KindObjectReturn].Count,
		LSReturns:   ls.Messages[netsim.KindObjectReturn].Count,
		CSMessages:  cs.TotalMessages,
		LSMessages:  ls.TotalMessages,
		CSElapsed:   cs.Elapsed,
		LSElapsed:   ls.Elapsed,
	}
	return t, nil
}

// Render writes Table 4 as an aligned text table.
func (t *Table4) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 4 — Number of Messages Passed in the CS-RTDBSs (100 Clients, 1% updates)")
	fmt.Fprintf(w, "%-55s %12s %12s\n", "", "CS-RTDBS", "LS-CS-RTDBS")
	rows := []struct {
		label  string
		cs, ls int64
		csOnly bool
	}{
		{"Object Request Messages (client to server)", t.CSRequests, t.LSRequests, false},
		{"Objects Sent (server to client)", t.CSShipped, t.LSShipped, false},
		{"Object Requests Satisfied Using Forward Lists (c2c)", 0, t.LSForwarded, true},
		{"Objects Recall Messages (server to client)", t.CSRecalls, t.LSRecalls, false},
		{"Objects Returned (client to server)", t.CSReturns, t.LSReturns, false},
		{"All Messages", t.CSMessages, t.LSMessages, false},
	}
	for _, r := range rows {
		if r.csOnly {
			fmt.Fprintf(w, "%-55s %12s %12d\n", r.label, "-", r.ls)
			continue
		}
		fmt.Fprintf(w, "%-55s %12d %12d\n", r.label, r.cs, r.ls)
	}
}

// Chart converts the figure to a plottable line chart (success % on a
// 0–100 axis against client count). Replicated figures carry 95% CI
// half-widths drawn as error bars.
func (f *Figure) Chart() *plot.Chart {
	c := &plot.Chart{
		Title:  f.ID + " — " + f.Title,
		XLabel: "Number of clients",
		YLabel: "Transactions completed within deadline (%)",
		YMin:   0,
		YMax:   100,
	}
	ce := plot.Series{Name: "CE-RTDBS"}
	cs := plot.Series{Name: "CS-RTDBS"}
	ls := plot.Series{Name: "LS-CS-RTDBS"}
	for _, p := range f.Points {
		c.X = append(c.X, float64(p.Clients))
		ce.Y = append(ce.Y, p.CE)
		cs.Y = append(cs.Y, p.CS)
		ls.Y = append(ls.Y, p.LS)
		if f.Reps > 1 {
			ce.CI = append(ce.CI, p.CECI)
			cs.CI = append(cs.CI, p.CSCI)
			ls.CI = append(ls.CI, p.LSCI)
		}
	}
	c.Series = []plot.Series{ce, cs, ls}
	return c
}

// CSV writes Table 2 as comma-separated values; replicated tables carry
// a 95% CI column per cell.
func (t *Table2) CSV(w io.Writer) {
	if t.Reps > 1 {
		fmt.Fprintln(w, "clients,cs_1,cs_1_ci,cs_5,cs_5_ci,cs_20,cs_20_ci,ls_1,ls_1_ci,ls_5,ls_5_ci,ls_20,ls_20_ci")
		for _, r := range t.Rows {
			fmt.Fprintf(w, "%d,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f\n",
				r.Clients,
				r.CS[0], r.CSCI[0], r.CS[1], r.CSCI[1], r.CS[2], r.CSCI[2],
				r.LS[0], r.LSCI[0], r.LS[1], r.LSCI[1], r.LS[2], r.LSCI[2])
		}
		return
	}
	fmt.Fprintln(w, "clients,cs_1,cs_5,cs_20,ls_1,ls_5,ls_20")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%d,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f\n",
			r.Clients, r.CS[0], r.CS[1], r.CS[2], r.LS[0], r.LS[1], r.LS[2])
	}
}

// CSV writes Table 3 as comma-separated values (seconds); replicated
// tables carry a 95% CI column per cell.
func (t *Table3) CSV(w io.Writer) {
	if t.Reps > 1 {
		fmt.Fprintln(w, "clients,cs_sl,cs_sl_ci,cs_el,cs_el_ci,ls_sl,ls_sl_ci,ls_el,ls_el_ci")
		for _, r := range t.Rows {
			fmt.Fprintf(w, "%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
				r.N, r.CSShared.Seconds(), r.CSSharedCI.Seconds(),
				r.CSExclusive.Seconds(), r.CSExclusiveCI.Seconds(),
				r.LSShared.Seconds(), r.LSSharedCI.Seconds(),
				r.LSExclusive.Seconds(), r.LSExclusiveCI.Seconds())
		}
		return
	}
	fmt.Fprintln(w, "clients,cs_sl,cs_el,ls_sl,ls_el")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%d,%.4f,%.4f,%.4f,%.4f\n",
			r.N, r.CSShared.Seconds(), r.CSExclusive.Seconds(),
			r.LSShared.Seconds(), r.LSExclusive.Seconds())
	}
}

// CSV writes Table 4 as comma-separated values.
func (t *Table4) CSV(w io.Writer) {
	fmt.Fprintln(w, "row,cs,ls")
	fmt.Fprintf(w, "object_requests,%d,%d\n", t.CSRequests, t.LSRequests)
	fmt.Fprintf(w, "objects_sent,%d,%d\n", t.CSShipped, t.LSShipped)
	fmt.Fprintf(w, "forward_list_hops,0,%d\n", t.LSForwarded)
	fmt.Fprintf(w, "recalls,%d,%d\n", t.CSRecalls, t.LSRecalls)
	fmt.Fprintf(w, "returns,%d,%d\n", t.CSReturns, t.LSReturns)
	fmt.Fprintf(w, "all_messages,%d,%d\n", t.CSMessages, t.LSMessages)
}
