package experiment

import (
	"fmt"
	"io"
	"time"

	"siteselect/internal/config"
	"siteselect/internal/stats"
)

// DefaultShardCounts is the shard sweep of the topology study: the
// single-server baseline and three multi-shard points.
var DefaultShardCounts = []int{1, 2, 4, 8}

// ShardSweepRow is one shard-count position of a shard sweep, with the
// static-placement and adaptive-replication variants side by side.
type ShardSweepRow struct {
	Servers int
	// Static and Adaptive are mean deadline-success percentages (95% CI
	// half-widths alongside when Reps > 1). At one server the adaptive
	// variant degenerates to the static one.
	Static     float64
	StaticCI   float64
	Adaptive   float64
	AdaptiveCI float64
	// StaticMsgs and AdaptiveMsgs are mean total LAN message counts per
	// run — replica coherence traffic shows up as the difference.
	StaticMsgs   float64
	AdaptiveMsgs float64
	// Installed, Shed and Forwarded are per-run means of the adaptive
	// variant's replication counters.
	Installed float64
	Shed      float64
	Forwarded float64
}

// ShardSweep is the topology study: the load-sharing system re-run at
// fixed load across a sweep of server shard counts, under a
// drifting-Zipf hot spot, once with the bare object partition (static)
// and once with heat-driven read replication (adaptive).
type ShardSweep struct {
	Clients        int
	UpdateFraction float64
	Reps           int
	Rows           []ShardSweepRow
}

// shardConfig builds one sweep cell. The seed derives from (clients,
// update, rep) only, so every shard count and placement mode sees the
// same workload stream — the topology is the sole variable. The access
// generator concentrates most reads on a hot window that slides several
// times over the run, so objects heat up and cool down no matter where
// the partition put them.
func shardConfig(opts Options, clients int, update float64, rep, servers int, adaptive bool) config.Config {
	cfg := opts.csConfig(clients, update, rep)
	// Think times short enough that the hot shard saturates under the
	// static partition while total demand stays inside the cluster's
	// capacity, and deadlines tight enough that hot-shard queueing shows
	// up as misses — the regime where placement is the deciding factor.
	cfg.MeanInterArrival = 5 * time.Second
	cfg.MeanSlack = 2 * time.Second
	hot := cfg.DBSize / 500
	// Block-cyclic partition as wide as the hot window: the whole window
	// lands on one or two shards, and each drift moves that load to
	// another shard — the drifting imbalance the adaptive variant should
	// erase and the static partition cannot.
	cfg.Sharding.Block = hot
	cfg.Workload = &config.WorkloadSpec{Classes: []config.ClientClass{{
		Name:                 "drift",
		Count:                clients,
		UpdateFraction:       update,
		DecomposableFraction: cfg.DecomposableFraction,
		Phases: []config.ArrivalPhase{{
			Kind:             config.ArrivalClosed,
			MeanInterArrival: cfg.MeanInterArrival,
		}},
		Access: &config.AccessSpec{
			Kind:        config.AccessSkewed,
			ZipfTheta:   1.1,
			HotSize:     hot,
			HotFraction: 0.8,
			DriftEvery:  cfg.Duration / 6,
			DriftStep:   hot * 2,
		},
	}}}
	cfg.Sharding.Servers = servers
	if adaptive && servers > 1 {
		cfg.Sharding.ReplicateHot = 3
		cfg.Sharding.HeatWindow = cfg.Duration / 8
		cfg.Sharding.ShedBelow = 1
	}
	return cfg
}

// RunShardSweep runs the load-sharing system at the given client count
// and update mix once per (shard count, placement mode) cell (times
// Reps). Cell seeds derive from (clients, update, rep) only, so the
// whole sweep replays one workload against every topology.
func RunShardSweep(shards []int, clients int, update float64, opts Options) (*ShardSweep, error) {
	opts = opts.normalize()
	if len(shards) == 0 {
		shards = DefaultShardCounts
	}
	ss := &ShardSweep{Clients: clients, UpdateFraction: update, Reps: opts.Reps}
	type cell struct {
		si, rep  int
		adaptive bool
	}
	var cells []cell
	var labels []string
	for si, m := range shards {
		for _, adaptive := range []bool{false, true} {
			mode := "static"
			if adaptive {
				mode = "adaptive"
			}
			for r := 0; r < opts.Reps; r++ {
				cells = append(cells, cell{si, r, adaptive})
				labels = append(labels, fmt.Sprintf("shard-sweep LS n=%d m=%d %s rep=%d", clients, m, mode, r))
			}
		}
	}
	type obs struct {
		success                    float64
		messages                   int64
		installed, shed, forwarded int64
	}
	results, err := runCells(opts, labels, func(i int) (obs, error) {
		c := cells[i]
		cfg := shardConfig(opts, clients, update, c.rep, shards[c.si], c.adaptive)
		res, err := RunLS(cfg)
		if err != nil {
			return obs{}, fmt.Errorf("shard sweep: %d shards (rep %d): %w", shards[c.si], c.rep, err)
		}
		return obs{
			success:   res.SuccessRate(),
			messages:  res.TotalMessages,
			installed: res.ReplicasInstalled,
			shed:      res.ReplicasShed,
			forwarded: res.RequestsForwarded,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	agg := make([]struct {
		success, messages          [2]stats.Sample // [static, adaptive]
		installed, shed, forwarded stats.Sample
	}, len(shards))
	for i, c := range cells {
		o := results[i]
		mi := 0
		if c.adaptive {
			mi = 1
		}
		agg[c.si].success[mi].Add(o.success)
		agg[c.si].messages[mi].Add(float64(o.messages))
		if c.adaptive {
			agg[c.si].installed.Add(float64(o.installed))
			agg[c.si].shed.Add(float64(o.shed))
			agg[c.si].forwarded.Add(float64(o.forwarded))
		}
	}
	for si, m := range shards {
		a := &agg[si]
		ss.Rows = append(ss.Rows, ShardSweepRow{
			Servers:      m,
			Static:       a.success[0].Mean(),
			StaticCI:     a.success[0].CI95(),
			Adaptive:     a.success[1].Mean(),
			AdaptiveCI:   a.success[1].CI95(),
			StaticMsgs:   a.messages[0].Mean(),
			AdaptiveMsgs: a.messages[1].Mean(),
			Installed:    a.installed.Mean(),
			Shed:         a.shed.Mean(),
			Forwarded:    a.forwarded.Mean(),
		})
	}
	return ss, nil
}

// Render writes the sweep as an aligned text table.
func (ss *ShardSweep) Render(w io.Writer) {
	fmt.Fprintf(w, "Shard-count sweep — LS-CS-RTDBS, %d clients, %g%% updates, drifting-Zipf hot spot\n",
		ss.Clients, ss.UpdateFraction*100)
	if ss.Reps > 1 {
		fmt.Fprintf(w, "(success/messages are means over %d replications)\n", ss.Reps)
	}
	fmt.Fprintf(w, "%-8s %14s %14s %12s %12s %10s %8s %10s\n",
		"Shards", "Static", "Adaptive", "StaticMsgs", "AdaptMsgs", "Installed", "Shed", "Forwarded")
	for _, r := range ss.Rows {
		static := fmt.Sprintf("%.1f%%", r.Static)
		adaptive := fmt.Sprintf("%.1f%%", r.Adaptive)
		if ss.Reps > 1 {
			static = fmt.Sprintf("%.1f ± %.1f", r.Static, r.StaticCI)
			adaptive = fmt.Sprintf("%.1f ± %.1f", r.Adaptive, r.AdaptiveCI)
		}
		fmt.Fprintf(w, "%-8d %14s %14s %12.0f %12.0f %10.1f %8.1f %10.1f\n",
			r.Servers, static, adaptive, r.StaticMsgs, r.AdaptiveMsgs,
			r.Installed, r.Shed, r.Forwarded)
	}
}

// CSV writes the sweep as comma-separated values.
func (ss *ShardSweep) CSV(w io.Writer) {
	fmt.Fprintln(w, "shards,static,static_ci,adaptive,adaptive_ci,static_msgs,adaptive_msgs,installed,shed,forwarded")
	for _, r := range ss.Rows {
		fmt.Fprintf(w, "%d,%.2f,%.2f,%.2f,%.2f,%.1f,%.1f,%.1f,%.1f,%.1f\n",
			r.Servers, r.Static, r.StaticCI, r.Adaptive, r.AdaptiveCI,
			r.StaticMsgs, r.AdaptiveMsgs, r.Installed, r.Shed, r.Forwarded)
	}
}
