package experiment

import (
	"fmt"
	"io"
	"time"

	"siteselect/internal/config"
	"siteselect/internal/rtdbs"
	"siteselect/internal/stats"
)

// OutageRow is one fault-injection measurement. The success rate is a
// mean over replications; the counters are rounded means.
type OutageRow struct {
	Name        string
	SuccessRate float64
	SuccessCI   float64
	LostUpdates int64
	Forces      int64
}

// OutageStudy injects a client outage (partition plus volatile-state
// loss) mid-run and measures the durability difference client-based
// logging makes, alongside the cluster-wide real-time cost. Two
// fault-layer variants ride along for comparison: the same one-minute
// window as a pure network partition (state intact, reliable channel
// retransmits through the cut) on a client and on the server itself.
type OutageStudy struct {
	Clients int
	Update  float64
	Reps    int
	Rows    []OutageRow
}

// RunOutageStudy runs baseline / outage-without-log / outage-with-log
// plus the two fault-layer partition variants, every cell concurrently.
// The first three rows are the legacy outage table and keep their names
// and order (regression goldens pin them).
func RunOutageStudy(clients int, update float64, opts Options) (*OutageStudy, error) {
	opts = opts.normalize()
	study := &OutageStudy{Clients: clients, Update: update, Reps: opts.Reps}
	variants := []struct {
		name      string
		outage    bool
		logging   bool
		partition int // fault-layer cut: -1 none, else the site to isolate
	}{
		{"no fault", false, false, -1},
		{"outage, no log", true, false, -1},
		{"outage, client WAL", true, true, -1},
		{"partition, no wipe", false, false, 1},
		{"server partition", false, false, 0},
	}
	type cellResult struct {
		rate        float64
		lostUpdates int64
		forces      int64
	}
	type cell struct{ vi, rep int }
	var cells []cell
	var labels []string
	for vi, v := range variants {
		for r := 0; r < opts.Reps; r++ {
			cells = append(cells, cell{vi, r})
			labels = append(labels, fmt.Sprintf("outage %q rep=%d", v.name, r))
		}
	}
	results, err := runCells(opts, labels, func(i int) (cellResult, error) {
		c := cells[i]
		v := variants[c.vi]
		cfg := opts.csConfig(clients, update, c.rep)
		cfg.UseLogging = v.logging
		cfg.CheckInvariants = opts.CheckInvariants
		if v.outage {
			cfg.OutageClient = 1
			cfg.OutageAt = cfg.Warmup + (cfg.Duration-cfg.Warmup)/2
			cfg.OutageDuration = time.Minute
		}
		if v.partition >= 0 {
			// The fault-layer twin of the outage window: same midpoint,
			// same length, but a pure network cut — no state is wiped.
			cfg.Faults.PartitionSite = v.partition
			cfg.Faults.PartitionAt = cfg.Warmup + (cfg.Duration-cfg.Warmup)/2
			cfg.Faults.PartitionDuration = time.Minute
		}
		ls, err := rtdbs.NewLoadSharing(cfg)
		if err != nil {
			return cellResult{}, fmt.Errorf("outage %q: %w", v.name, err)
		}
		res, err := ls.Run()
		if err != nil {
			return cellResult{}, fmt.Errorf("outage %q: %w", v.name, err)
		}
		out := cellResult{rate: res.SuccessRate()}
		for _, cl := range ls.Clients() {
			out.lostUpdates += cl.LostUpdates
			if l := cl.Log(); l != nil {
				out.forces += l.Forces
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for vi, v := range variants {
		var success stats.Sample
		var lost, forces []int64
		for i, c := range cells {
			if c.vi != vi {
				continue
			}
			success.Add(results[i].rate)
			lost = append(lost, results[i].lostUpdates)
			forces = append(forces, results[i].forces)
		}
		study.Rows = append(study.Rows, OutageRow{
			Name:        v.name,
			SuccessRate: success.Mean(),
			SuccessCI:   success.CI95(),
			LostUpdates: meanRound(lost),
			Forces:      meanRound(forces),
		})
	}
	return study, nil
}

// Render writes the study as an aligned text table.
func (s *OutageStudy) Render(w io.Writer) {
	fmt.Fprintf(w, "Client outage fault injection (%d clients, %g%% updates, 1-minute outage)\n",
		s.Clients, s.Update*100)
	if s.Reps > 1 {
		fmt.Fprintf(w, "(success mean ± 95%% CI over %d replications)\n", s.Reps)
		fmt.Fprintf(w, "%-22s %14s %12s %12s\n", "Variant", "Success", "Lost updates", "Log forces")
		for _, r := range s.Rows {
			fmt.Fprintf(w, "%-22s %13s%% %12d %12d\n",
				r.Name, fmt.Sprintf("%.1f ± %.1f", r.SuccessRate, r.SuccessCI),
				r.LostUpdates, r.Forces)
		}
		return
	}
	fmt.Fprintf(w, "%-22s %9s %12s %12s\n", "Variant", "Success", "Lost updates", "Log forces")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-22s %8.1f%% %12d %12d\n", r.Name, r.SuccessRate, r.LostUpdates, r.Forces)
	}
}

// FaultMatrixRow is one scenario of the fault matrix: the success rate
// (mean over replications) plus rounded-mean fault and recovery
// counters.
type FaultMatrixRow struct {
	Name           string
	SuccessRate    float64
	SuccessCI      float64
	Retries        int64
	Dropped        int64
	PartitionDrops int64
	Retransmits    int64
}

// FaultMatrix measures the load-sharing system's resilience to
// deterministic fault injection: success rate versus message-drop rate
// and versus partition length.
type FaultMatrix struct {
	Clients int
	Update  float64
	Reps    int
	Rows    []FaultMatrixRow
}

// faultMatrixDropRates is the drop-rate axis (the first entry is the
// clean baseline).
var faultMatrixDropRates = []float64{0, 0.02, 0.05, 0.10}

// faultMatrixPartitions is the partition-length axis: client 1 is cut
// off the LAN for this long, a quarter of the way into the measured
// window. Lengths scale with Options.Scale like every other duration.
var faultMatrixPartitions = []time.Duration{
	30 * time.Second, time.Minute, 2 * time.Minute,
}

// RunFaultMatrix runs the LS system across the drop-rate sweep and the
// partition-length sweep, every cell concurrently. Each cell's fault
// schedule derives deterministically from its cell seed, so the matrix
// is byte-identical for any worker count.
func RunFaultMatrix(clients int, update float64, opts Options) (*FaultMatrix, error) {
	opts = opts.normalize()
	type scenario struct {
		name string
		drop float64
		cut  time.Duration // unscaled partition length; 0 = none
	}
	var scens []scenario
	for _, dr := range faultMatrixDropRates {
		scens = append(scens, scenario{fmt.Sprintf("drop %g%%", dr*100), dr, 0})
	}
	for _, pd := range faultMatrixPartitions {
		scens = append(scens, scenario{fmt.Sprintf("partition %v", pd), 0, pd})
	}
	study := &FaultMatrix{Clients: clients, Update: update, Reps: opts.Reps}
	type cellResult struct {
		rate                                float64
		retries, dropped, partDrops, rexmit int64
	}
	type cell struct{ si, rep int }
	var cells []cell
	var labels []string
	for si, s := range scens {
		for r := 0; r < opts.Reps; r++ {
			cells = append(cells, cell{si, r})
			labels = append(labels, fmt.Sprintf("faults %q rep=%d", s.name, r))
		}
	}
	results, err := runCells(opts, labels, func(i int) (cellResult, error) {
		c := cells[i]
		s := scens[c.si]
		cfg := opts.csConfig(clients, update, c.rep)
		cfg.CheckInvariants = opts.CheckInvariants
		cfg.Faults.DropRate = s.drop
		if s.cut > 0 {
			cfg.Faults.PartitionSite = 1
			cfg.Faults.PartitionAt = cfg.Warmup + (cfg.Duration-cfg.Warmup)/4
			cfg.Faults.PartitionDuration = time.Duration(float64(s.cut) * opts.Scale)
		}
		res, err := RunLS(cfg)
		if err != nil {
			return cellResult{}, fmt.Errorf("faults %q: %w", s.name, err)
		}
		return cellResult{
			rate:      res.SuccessRate(),
			retries:   res.Retries,
			dropped:   res.Faults.Dropped,
			partDrops: res.Faults.PartitionDrops,
			rexmit:    res.Faults.Retransmits,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for si, s := range scens {
		var success stats.Sample
		var retries, dropped, partDrops, rexmit []int64
		for i, c := range cells {
			if c.si != si {
				continue
			}
			success.Add(results[i].rate)
			retries = append(retries, results[i].retries)
			dropped = append(dropped, results[i].dropped)
			partDrops = append(partDrops, results[i].partDrops)
			rexmit = append(rexmit, results[i].rexmit)
		}
		study.Rows = append(study.Rows, FaultMatrixRow{
			Name:           s.name,
			SuccessRate:    success.Mean(),
			SuccessCI:      success.CI95(),
			Retries:        meanRound(retries),
			Dropped:        meanRound(dropped),
			PartitionDrops: meanRound(partDrops),
			Retransmits:    meanRound(rexmit),
		})
	}
	return study, nil
}

// Render writes the fault matrix as an aligned text table.
func (s *FaultMatrix) Render(w io.Writer) {
	fmt.Fprintf(w, "Fault-injection matrix on LS (%d clients, %g%% updates)\n",
		s.Clients, s.Update*100)
	if s.Reps > 1 {
		fmt.Fprintf(w, "(success mean ± 95%% CI over %d replications; counters are rounded means)\n", s.Reps)
	}
	fmt.Fprintf(w, "%-18s %14s %9s %9s %10s %12s\n",
		"Scenario", "Success", "Retries", "Dropped", "Cut drops", "Retransmits")
	for _, r := range s.Rows {
		succ := fmt.Sprintf("%.1f", r.SuccessRate)
		if s.Reps > 1 {
			succ = fmt.Sprintf("%.1f ± %.1f", r.SuccessRate, r.SuccessCI)
		}
		fmt.Fprintf(w, "%-18s %13s%% %9d %9d %10d %12d\n",
			r.Name, succ, r.Retries, r.Dropped, r.PartitionDrops, r.Retransmits)
	}
}

// SensitivityRow measures the CE-vs-LS ordering at one value of the
// calibration knob.
type SensitivityRow struct {
	OpCPU     time.Duration
	CE40      float64
	CE60      float64
	CE80      float64
	LS60      float64
	Crossover string
}

// Sensitivity sweeps ServerOpCPU — the single calibrated cost — and
// reports how the centralized system's collapse point moves, making the
// calibration choice (and deviation D1 in EXPERIMENTS.md) explicit.
type Sensitivity struct {
	Rows []SensitivityRow
}

// sensitivityOps are the swept values of the calibrated per-operation
// server CPU cost.
var sensitivityOps = []time.Duration{
	8 * time.Millisecond, 12 * time.Millisecond,
	16 * time.Millisecond, 20 * time.Millisecond,
}

// RunSensitivity sweeps the server per-operation CPU cost, every cell
// concurrently; rates are means over the replications.
func RunSensitivity(opts Options) (*Sensitivity, error) {
	opts = opts.normalize()
	out := &Sensitivity{}
	ceClients := []int{40, 60, 80}
	// Slots 0..2 are CE at 40/60/80 clients; slot 3 is LS at 60.
	type cell struct{ oi, slot, rep int }
	var cells []cell
	var labels []string
	for oi, op := range sensitivityOps {
		for slot := 0; slot < 4; slot++ {
			for r := 0; r < opts.Reps; r++ {
				cells = append(cells, cell{oi, slot, r})
				labels = append(labels, fmt.Sprintf("sensitivity op=%v slot=%d rep=%d", op, slot, r))
			}
		}
	}
	rates, err := runCells(opts, labels, func(i int) (float64, error) {
		c := cells[i]
		op := sensitivityOps[c.oi]
		if c.slot < 3 {
			n := ceClients[c.slot]
			cfg := opts.ceConfig(n, 0.01, c.rep)
			cfg.ServerOpCPU = op
			res, err := RunCE(cfg)
			if err != nil {
				return 0, fmt.Errorf("sensitivity CE %v/%d: %w", op, n, err)
			}
			return res.SuccessRate(), nil
		}
		cfg := opts.csConfig(60, 0.01, c.rep)
		cfg.ServerOpCPU = op
		res, err := RunLS(cfg)
		if err != nil {
			return 0, fmt.Errorf("sensitivity LS %v: %w", op, err)
		}
		return res.SuccessRate(), nil
	})
	if err != nil {
		return nil, err
	}
	agg := make([][4]stats.Sample, len(sensitivityOps))
	for i, c := range cells {
		agg[c.oi][c.slot].Add(rates[i])
	}
	for oi, op := range sensitivityOps {
		row := SensitivityRow{
			OpCPU: op,
			CE40:  agg[oi][0].Mean(),
			CE60:  agg[oi][1].Mean(),
			CE80:  agg[oi][2].Mean(),
			LS60:  agg[oi][3].Mean(),
		}
		switch {
		case row.CE40 < row.LS60:
			row.Crossover = "<=40 clients"
		case row.CE60 < row.LS60:
			row.Crossover = "40-60 clients"
		case row.CE80 < row.LS60:
			row.Crossover = "60-80 clients"
		default:
			row.Crossover = ">80 clients"
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render writes the sensitivity sweep as an aligned text table.
func (s *Sensitivity) Render(w io.Writer) {
	fmt.Fprintln(w, "Calibration sensitivity: CE collapse position vs ServerOpCPU (1% updates)")
	fmt.Fprintf(w, "%-10s %9s %9s %9s %9s %16s\n",
		"OpCPU", "CE@40", "CE@60", "CE@80", "LS@60", "CE<LS crossover")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-10v %8.1f%% %8.1f%% %8.1f%% %8.1f%% %16s\n",
			r.OpCPU, r.CE40, r.CE60, r.CE80, r.LS60, r.Crossover)
	}
}

// PolicyRow compares a scheduling/deadline/topology variant.
type PolicyRow struct {
	Name string
	CE   float64
	CS   float64
	LS   float64
}

// PolicyStudy exercises the design-space knobs the paper fixes: EDF vs
// FCFS executor scheduling, length-dependent vs independent deadlines,
// and shared-bus vs switched interconnect.
type PolicyStudy struct {
	Clients int
	Update  float64
	Rows    []PolicyRow
}

// RunPolicyStudy runs the three systems under each policy variant,
// every cell concurrently; rates are means over the replications.
func RunPolicyStudy(clients int, update float64, opts Options) (*PolicyStudy, error) {
	opts = opts.normalize()
	study := &PolicyStudy{Clients: clients, Update: update}
	variants := []variant{
		{"baseline (EDF, bus)", func(*config.Config) {}},
		{"FCFS scheduling", func(c *config.Config) { c.Scheduling = config.SchedFCFS }},
		{"independent deadlines", func(c *config.Config) { c.Deadlines = config.DeadlineIndependent }},
		{"switched network", func(c *config.Config) { c.Topology = config.TopologySwitched }},
	}
	type cell struct{ vi, sys, rep int }
	var cells []cell
	var labels []string
	for vi, v := range variants {
		for si, s := range figureSystems {
			for r := 0; r < opts.Reps; r++ {
				cells = append(cells, cell{vi, si, r})
				labels = append(labels, fmt.Sprintf("policy %q %s rep=%d", v.name, s.name, r))
			}
		}
	}
	rates, err := runCells(opts, labels, func(i int) (float64, error) {
		c := cells[i]
		s := figureSystems[c.sys]
		var cfg config.Config
		if s.central {
			cfg = opts.ceConfig(clients, update, c.rep)
		} else {
			cfg = opts.csConfig(clients, update, c.rep)
		}
		variants[c.vi].mod(&cfg)
		res, err := s.run(cfg)
		if err != nil {
			return 0, fmt.Errorf("policy %q %s: %w", variants[c.vi].name, s.name, err)
		}
		return res.SuccessRate(), nil
	})
	if err != nil {
		return nil, err
	}
	agg := make([][3]stats.Sample, len(variants))
	for i, c := range cells {
		agg[c.vi][c.sys].Add(rates[i])
	}
	for vi, v := range variants {
		study.Rows = append(study.Rows, PolicyRow{
			Name: v.name,
			CE:   agg[vi][0].Mean(),
			CS:   agg[vi][1].Mean(),
			LS:   agg[vi][2].Mean(),
		})
	}
	return study, nil
}

// Render writes the policy study as an aligned text table.
func (s *PolicyStudy) Render(w io.Writer) {
	fmt.Fprintf(w, "Policy study (%d clients, %g%% updates)\n", s.Clients, s.Update*100)
	fmt.Fprintf(w, "%-24s %9s %9s %9s\n", "Variant", "CE", "CS", "LS")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-24s %8.1f%% %8.1f%% %8.1f%%\n", r.Name, r.CE, r.CS, r.LS)
	}
}
