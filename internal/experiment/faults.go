package experiment

import (
	"fmt"
	"io"
	"time"

	"siteselect/internal/config"
	"siteselect/internal/rtdbs"
	"siteselect/internal/stats"
)

// OutageRow is one fault-injection measurement. The success rate is a
// mean over replications; the counters are rounded means.
type OutageRow struct {
	Name        string
	SuccessRate float64
	SuccessCI   float64
	LostUpdates int64
	Forces      int64
}

// OutageStudy injects a client outage (partition plus volatile-state
// loss) mid-run and measures the durability difference client-based
// logging makes, alongside the cluster-wide real-time cost.
type OutageStudy struct {
	Clients int
	Update  float64
	Reps    int
	Rows    []OutageRow
}

// RunOutageStudy runs baseline / outage-without-log / outage-with-log,
// every cell concurrently.
func RunOutageStudy(clients int, update float64, opts Options) (*OutageStudy, error) {
	opts = opts.normalize()
	study := &OutageStudy{Clients: clients, Update: update, Reps: opts.Reps}
	variants := []struct {
		name    string
		outage  bool
		logging bool
	}{
		{"no fault", false, false},
		{"outage, no log", true, false},
		{"outage, client WAL", true, true},
	}
	type cellResult struct {
		rate        float64
		lostUpdates int64
		forces      int64
	}
	type cell struct{ vi, rep int }
	var cells []cell
	var labels []string
	for vi, v := range variants {
		for r := 0; r < opts.Reps; r++ {
			cells = append(cells, cell{vi, r})
			labels = append(labels, fmt.Sprintf("outage %q rep=%d", v.name, r))
		}
	}
	results, err := runCells(opts, labels, func(i int) (cellResult, error) {
		c := cells[i]
		v := variants[c.vi]
		cfg := opts.csConfig(clients, update, c.rep)
		cfg.UseLogging = v.logging
		if v.outage {
			cfg.OutageClient = 1
			cfg.OutageAt = cfg.Warmup + (cfg.Duration-cfg.Warmup)/2
			cfg.OutageDuration = time.Minute
		}
		ls, err := rtdbs.NewLoadSharing(cfg)
		if err != nil {
			return cellResult{}, fmt.Errorf("outage %q: %w", v.name, err)
		}
		res, err := ls.Run()
		if err != nil {
			return cellResult{}, fmt.Errorf("outage %q: %w", v.name, err)
		}
		out := cellResult{rate: res.SuccessRate()}
		for _, cl := range ls.Clients() {
			out.lostUpdates += cl.LostUpdates
			if l := cl.Log(); l != nil {
				out.forces += l.Forces
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for vi, v := range variants {
		var success stats.Sample
		var lost, forces []int64
		for i, c := range cells {
			if c.vi != vi {
				continue
			}
			success.Add(results[i].rate)
			lost = append(lost, results[i].lostUpdates)
			forces = append(forces, results[i].forces)
		}
		study.Rows = append(study.Rows, OutageRow{
			Name:        v.name,
			SuccessRate: success.Mean(),
			SuccessCI:   success.CI95(),
			LostUpdates: meanRound(lost),
			Forces:      meanRound(forces),
		})
	}
	return study, nil
}

// Render writes the study as an aligned text table.
func (s *OutageStudy) Render(w io.Writer) {
	fmt.Fprintf(w, "Client outage fault injection (%d clients, %g%% updates, 1-minute outage)\n",
		s.Clients, s.Update*100)
	if s.Reps > 1 {
		fmt.Fprintf(w, "(success mean ± 95%% CI over %d replications)\n", s.Reps)
		fmt.Fprintf(w, "%-22s %14s %12s %12s\n", "Variant", "Success", "Lost updates", "Log forces")
		for _, r := range s.Rows {
			fmt.Fprintf(w, "%-22s %13s%% %12d %12d\n",
				r.Name, fmt.Sprintf("%.1f ± %.1f", r.SuccessRate, r.SuccessCI),
				r.LostUpdates, r.Forces)
		}
		return
	}
	fmt.Fprintf(w, "%-22s %9s %12s %12s\n", "Variant", "Success", "Lost updates", "Log forces")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-22s %8.1f%% %12d %12d\n", r.Name, r.SuccessRate, r.LostUpdates, r.Forces)
	}
}

// SensitivityRow measures the CE-vs-LS ordering at one value of the
// calibration knob.
type SensitivityRow struct {
	OpCPU     time.Duration
	CE40      float64
	CE60      float64
	CE80      float64
	LS60      float64
	Crossover string
}

// Sensitivity sweeps ServerOpCPU — the single calibrated cost — and
// reports how the centralized system's collapse point moves, making the
// calibration choice (and deviation D1 in EXPERIMENTS.md) explicit.
type Sensitivity struct {
	Rows []SensitivityRow
}

// sensitivityOps are the swept values of the calibrated per-operation
// server CPU cost.
var sensitivityOps = []time.Duration{
	8 * time.Millisecond, 12 * time.Millisecond,
	16 * time.Millisecond, 20 * time.Millisecond,
}

// RunSensitivity sweeps the server per-operation CPU cost, every cell
// concurrently; rates are means over the replications.
func RunSensitivity(opts Options) (*Sensitivity, error) {
	opts = opts.normalize()
	out := &Sensitivity{}
	ceClients := []int{40, 60, 80}
	// Slots 0..2 are CE at 40/60/80 clients; slot 3 is LS at 60.
	type cell struct{ oi, slot, rep int }
	var cells []cell
	var labels []string
	for oi, op := range sensitivityOps {
		for slot := 0; slot < 4; slot++ {
			for r := 0; r < opts.Reps; r++ {
				cells = append(cells, cell{oi, slot, r})
				labels = append(labels, fmt.Sprintf("sensitivity op=%v slot=%d rep=%d", op, slot, r))
			}
		}
	}
	rates, err := runCells(opts, labels, func(i int) (float64, error) {
		c := cells[i]
		op := sensitivityOps[c.oi]
		if c.slot < 3 {
			n := ceClients[c.slot]
			cfg := opts.ceConfig(n, 0.01, c.rep)
			cfg.ServerOpCPU = op
			res, err := RunCE(cfg)
			if err != nil {
				return 0, fmt.Errorf("sensitivity CE %v/%d: %w", op, n, err)
			}
			return res.SuccessRate(), nil
		}
		cfg := opts.csConfig(60, 0.01, c.rep)
		cfg.ServerOpCPU = op
		res, err := RunLS(cfg)
		if err != nil {
			return 0, fmt.Errorf("sensitivity LS %v: %w", op, err)
		}
		return res.SuccessRate(), nil
	})
	if err != nil {
		return nil, err
	}
	agg := make([][4]stats.Sample, len(sensitivityOps))
	for i, c := range cells {
		agg[c.oi][c.slot].Add(rates[i])
	}
	for oi, op := range sensitivityOps {
		row := SensitivityRow{
			OpCPU: op,
			CE40:  agg[oi][0].Mean(),
			CE60:  agg[oi][1].Mean(),
			CE80:  agg[oi][2].Mean(),
			LS60:  agg[oi][3].Mean(),
		}
		switch {
		case row.CE40 < row.LS60:
			row.Crossover = "<=40 clients"
		case row.CE60 < row.LS60:
			row.Crossover = "40-60 clients"
		case row.CE80 < row.LS60:
			row.Crossover = "60-80 clients"
		default:
			row.Crossover = ">80 clients"
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render writes the sensitivity sweep as an aligned text table.
func (s *Sensitivity) Render(w io.Writer) {
	fmt.Fprintln(w, "Calibration sensitivity: CE collapse position vs ServerOpCPU (1% updates)")
	fmt.Fprintf(w, "%-10s %9s %9s %9s %9s %16s\n",
		"OpCPU", "CE@40", "CE@60", "CE@80", "LS@60", "CE<LS crossover")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-10v %8.1f%% %8.1f%% %8.1f%% %8.1f%% %16s\n",
			r.OpCPU, r.CE40, r.CE60, r.CE80, r.LS60, r.Crossover)
	}
}

// PolicyRow compares a scheduling/deadline/topology variant.
type PolicyRow struct {
	Name string
	CE   float64
	CS   float64
	LS   float64
}

// PolicyStudy exercises the design-space knobs the paper fixes: EDF vs
// FCFS executor scheduling, length-dependent vs independent deadlines,
// and shared-bus vs switched interconnect.
type PolicyStudy struct {
	Clients int
	Update  float64
	Rows    []PolicyRow
}

// RunPolicyStudy runs the three systems under each policy variant,
// every cell concurrently; rates are means over the replications.
func RunPolicyStudy(clients int, update float64, opts Options) (*PolicyStudy, error) {
	opts = opts.normalize()
	study := &PolicyStudy{Clients: clients, Update: update}
	variants := []variant{
		{"baseline (EDF, bus)", func(*config.Config) {}},
		{"FCFS scheduling", func(c *config.Config) { c.Scheduling = config.SchedFCFS }},
		{"independent deadlines", func(c *config.Config) { c.Deadlines = config.DeadlineIndependent }},
		{"switched network", func(c *config.Config) { c.Topology = config.TopologySwitched }},
	}
	type cell struct{ vi, sys, rep int }
	var cells []cell
	var labels []string
	for vi, v := range variants {
		for si, s := range figureSystems {
			for r := 0; r < opts.Reps; r++ {
				cells = append(cells, cell{vi, si, r})
				labels = append(labels, fmt.Sprintf("policy %q %s rep=%d", v.name, s.name, r))
			}
		}
	}
	rates, err := runCells(opts, labels, func(i int) (float64, error) {
		c := cells[i]
		s := figureSystems[c.sys]
		var cfg config.Config
		if s.central {
			cfg = opts.ceConfig(clients, update, c.rep)
		} else {
			cfg = opts.csConfig(clients, update, c.rep)
		}
		variants[c.vi].mod(&cfg)
		res, err := s.run(cfg)
		if err != nil {
			return 0, fmt.Errorf("policy %q %s: %w", variants[c.vi].name, s.name, err)
		}
		return res.SuccessRate(), nil
	})
	if err != nil {
		return nil, err
	}
	agg := make([][3]stats.Sample, len(variants))
	for i, c := range cells {
		agg[c.vi][c.sys].Add(rates[i])
	}
	for vi, v := range variants {
		study.Rows = append(study.Rows, PolicyRow{
			Name: v.name,
			CE:   agg[vi][0].Mean(),
			CS:   agg[vi][1].Mean(),
			LS:   agg[vi][2].Mean(),
		})
	}
	return study, nil
}

// Render writes the policy study as an aligned text table.
func (s *PolicyStudy) Render(w io.Writer) {
	fmt.Fprintf(w, "Policy study (%d clients, %g%% updates)\n", s.Clients, s.Update*100)
	fmt.Fprintf(w, "%-24s %9s %9s %9s\n", "Variant", "CE", "CS", "LS")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-24s %8.1f%% %8.1f%% %8.1f%%\n", r.Name, r.CE, r.CS, r.LS)
	}
}
