package experiment

import (
	"fmt"
	"io"
	"time"

	"siteselect/internal/config"
	"siteselect/internal/rtdbs"
)

// OutageRow is one fault-injection measurement.
type OutageRow struct {
	Name        string
	SuccessRate float64
	LostUpdates int64
	Forces      int64
}

// OutageStudy injects a client outage (partition plus volatile-state
// loss) mid-run and measures the durability difference client-based
// logging makes, alongside the cluster-wide real-time cost.
type OutageStudy struct {
	Clients int
	Update  float64
	Rows    []OutageRow
}

// RunOutageStudy runs baseline / outage-without-log / outage-with-log.
func RunOutageStudy(clients int, update float64, opts Options) (*OutageStudy, error) {
	opts = opts.normalize()
	study := &OutageStudy{Clients: clients, Update: update}
	variants := []struct {
		name    string
		outage  bool
		logging bool
	}{
		{"no fault", false, false},
		{"outage, no log", true, false},
		{"outage, client WAL", true, true},
	}
	for _, v := range variants {
		cfg := opts.csConfig(clients, update)
		cfg.UseLogging = v.logging
		if v.outage {
			cfg.OutageClient = 1
			cfg.OutageAt = cfg.Warmup + (cfg.Duration-cfg.Warmup)/2
			cfg.OutageDuration = time.Minute
		}
		ls, err := rtdbs.NewLoadSharing(cfg)
		if err != nil {
			return nil, fmt.Errorf("outage %q: %w", v.name, err)
		}
		res, err := ls.Run()
		if err != nil {
			return nil, fmt.Errorf("outage %q: %w", v.name, err)
		}
		row := OutageRow{Name: v.name, SuccessRate: res.SuccessRate()}
		for _, cl := range ls.Clients() {
			row.LostUpdates += cl.LostUpdates
			if l := cl.Log(); l != nil {
				row.Forces += l.Forces
			}
		}
		study.Rows = append(study.Rows, row)
	}
	return study, nil
}

// Render writes the study as an aligned text table.
func (s *OutageStudy) Render(w io.Writer) {
	fmt.Fprintf(w, "Client outage fault injection (%d clients, %g%% updates, 1-minute outage)\n",
		s.Clients, s.Update*100)
	fmt.Fprintf(w, "%-22s %9s %12s %12s\n", "Variant", "Success", "Lost updates", "Log forces")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-22s %8.1f%% %12d %12d\n", r.Name, r.SuccessRate, r.LostUpdates, r.Forces)
	}
}

// SensitivityRow measures the CE-vs-LS ordering at one value of the
// calibration knob.
type SensitivityRow struct {
	OpCPU     time.Duration
	CE40      float64
	CE60      float64
	CE80      float64
	LS60      float64
	Crossover string
}

// Sensitivity sweeps ServerOpCPU — the single calibrated cost — and
// reports how the centralized system's collapse point moves, making the
// calibration choice (and deviation D1 in EXPERIMENTS.md) explicit.
type Sensitivity struct {
	Rows []SensitivityRow
}

// RunSensitivity sweeps the server per-operation CPU cost.
func RunSensitivity(opts Options) (*Sensitivity, error) {
	opts = opts.normalize()
	out := &Sensitivity{}
	for _, op := range []time.Duration{
		8 * time.Millisecond, 12 * time.Millisecond,
		16 * time.Millisecond, 20 * time.Millisecond,
	} {
		row := SensitivityRow{OpCPU: op}
		ce := map[int]float64{}
		for _, n := range []int{40, 60, 80} {
			cfg := opts.ceConfig(n, 0.01)
			cfg.ServerOpCPU = op
			res, err := RunCE(cfg)
			if err != nil {
				return nil, fmt.Errorf("sensitivity CE %v/%d: %w", op, n, err)
			}
			ce[n] = res.SuccessRate()
		}
		row.CE40, row.CE60, row.CE80 = ce[40], ce[60], ce[80]
		lsCfg := opts.csConfig(60, 0.01)
		lsCfg.ServerOpCPU = op
		ls, err := RunLS(lsCfg)
		if err != nil {
			return nil, fmt.Errorf("sensitivity LS %v: %w", op, err)
		}
		row.LS60 = ls.SuccessRate()
		switch {
		case ce[40] < row.LS60:
			row.Crossover = "<=40 clients"
		case ce[60] < row.LS60:
			row.Crossover = "40-60 clients"
		case ce[80] < row.LS60:
			row.Crossover = "60-80 clients"
		default:
			row.Crossover = ">80 clients"
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render writes the sensitivity sweep as an aligned text table.
func (s *Sensitivity) Render(w io.Writer) {
	fmt.Fprintln(w, "Calibration sensitivity: CE collapse position vs ServerOpCPU (1% updates)")
	fmt.Fprintf(w, "%-10s %9s %9s %9s %9s %16s\n",
		"OpCPU", "CE@40", "CE@60", "CE@80", "LS@60", "CE<LS crossover")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-10v %8.1f%% %8.1f%% %8.1f%% %8.1f%% %16s\n",
			r.OpCPU, r.CE40, r.CE60, r.CE80, r.LS60, r.Crossover)
	}
}

// PolicyRow compares a scheduling/deadline/topology variant.
type PolicyRow struct {
	Name string
	CE   float64
	CS   float64
	LS   float64
}

// PolicyStudy exercises the design-space knobs the paper fixes: EDF vs
// FCFS executor scheduling, length-dependent vs independent deadlines,
// and shared-bus vs switched interconnect.
type PolicyStudy struct {
	Clients int
	Update  float64
	Rows    []PolicyRow
}

// RunPolicyStudy runs the three systems under each policy variant.
func RunPolicyStudy(clients int, update float64, opts Options) (*PolicyStudy, error) {
	opts = opts.normalize()
	study := &PolicyStudy{Clients: clients, Update: update}
	variants := []struct {
		name string
		mod  func(*config.Config)
	}{
		{"baseline (EDF, bus)", func(*config.Config) {}},
		{"FCFS scheduling", func(c *config.Config) { c.Scheduling = config.SchedFCFS }},
		{"independent deadlines", func(c *config.Config) { c.Deadlines = config.DeadlineIndependent }},
		{"switched network", func(c *config.Config) { c.Topology = config.TopologySwitched }},
	}
	for _, v := range variants {
		ceCfg := opts.ceConfig(clients, update)
		v.mod(&ceCfg)
		ce, err := RunCE(ceCfg)
		if err != nil {
			return nil, fmt.Errorf("policy %q CE: %w", v.name, err)
		}
		csCfg := opts.csConfig(clients, update)
		v.mod(&csCfg)
		cs, err := RunCS(csCfg)
		if err != nil {
			return nil, fmt.Errorf("policy %q CS: %w", v.name, err)
		}
		ls, err := RunLS(csCfg)
		if err != nil {
			return nil, fmt.Errorf("policy %q LS: %w", v.name, err)
		}
		study.Rows = append(study.Rows, PolicyRow{
			Name: v.name, CE: ce.SuccessRate(), CS: cs.SuccessRate(), LS: ls.SuccessRate(),
		})
	}
	return study, nil
}

// Render writes the policy study as an aligned text table.
func (s *PolicyStudy) Render(w io.Writer) {
	fmt.Fprintf(w, "Policy study (%d clients, %g%% updates)\n", s.Clients, s.Update*100)
	fmt.Fprintf(w, "%-24s %9s %9s %9s\n", "Variant", "CE", "CS", "LS")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-24s %8.1f%% %8.1f%% %8.1f%%\n", r.Name, r.CE, r.CS, r.LS)
	}
}
