// Package sched implements the Earliest-Deadline-First transaction
// scheduling used at every site (Section 2): the transaction with the
// earliest deadline has the highest priority, and transactions whose
// deadlines have already passed are dropped rather than processed. It
// also tracks the observed average transaction length (ATL) each client
// feeds into heuristic H1.
package sched

import (
	"container/heap"
	"time"

	"siteselect/internal/txn"
)

// EDFQueue is a deadline-ordered priority queue of transactions.
type EDFQueue struct {
	items edfHeap
	seq   int64
}

// NewEDFQueue returns an empty queue.
func NewEDFQueue() *EDFQueue { return &EDFQueue{} }

// Len returns the number of queued transactions.
func (q *EDFQueue) Len() int { return q.items.Len() }

// Push enqueues t.
func (q *EDFQueue) Push(t *txn.Transaction) {
	q.seq++
	heap.Push(&q.items, &edfItem{t: t, seq: q.seq})
}

// Peek returns the earliest-deadline transaction without removing it, or
// nil when empty.
func (q *EDFQueue) Peek() *txn.Transaction {
	if q.items.Len() == 0 {
		return nil
	}
	return q.items[0].t
}

// Pop removes and returns the earliest-deadline transaction, or nil when
// empty.
func (q *EDFQueue) Pop() *txn.Transaction {
	if q.items.Len() == 0 {
		return nil
	}
	return heap.Pop(&q.items).(*edfItem).t
}

// PopReady removes and returns the earliest-deadline transaction whose
// deadline has not passed at now. Transactions found to have missed their
// deadlines are removed and returned in missed (the ED policy's "tasks
// that have missed their deadlines are not processed at all").
func (q *EDFQueue) PopReady(now time.Duration) (ready *txn.Transaction, missed []*txn.Transaction) {
	for q.items.Len() > 0 {
		t := heap.Pop(&q.items).(*edfItem).t
		if t.MissedAt(now) {
			missed = append(missed, t)
			continue
		}
		return t, missed
	}
	return nil, missed
}

// DropMissed removes every transaction whose deadline passed at now.
func (q *EDFQueue) DropMissed(now time.Duration) []*txn.Transaction {
	var missed []*txn.Transaction
	kept := make([]*edfItem, 0, q.items.Len())
	for _, it := range q.items {
		if it.t.MissedAt(now) {
			missed = append(missed, it.t)
		} else {
			// heap.Init below only touches the indexes of items it
			// swaps; the compaction must reassign every survivor's.
			it.index = len(kept)
			kept = append(kept, it)
		}
	}
	if len(missed) > 0 {
		q.items = kept
		heap.Init(&q.items)
	}
	return missed
}

type edfItem struct {
	t     *txn.Transaction
	seq   int64
	index int
}

type edfHeap []*edfItem

func (h edfHeap) Len() int { return len(h) }

func (h edfHeap) Less(i, j int) bool {
	if h[i].t.Deadline != h[j].t.Deadline {
		return h[i].t.Deadline < h[j].t.Deadline
	}
	return h[i].seq < h[j].seq
}

func (h edfHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *edfHeap) Push(x any) {
	it := x.(*edfItem)
	it.index = len(*h)
	*h = append(*h, it)
}

func (h *edfHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// ATL tracks the observed average length of completed transactions at a
// site — the execution-time estimate heuristic H1 substitutes for true
// knowledge of task lengths.
type ATL struct {
	count int64
	total time.Duration
	// Default is returned before any observation (a site that has
	// completed nothing assumes this much per transaction).
	Default time.Duration
}

// Observe records one completed transaction's elapsed processing time.
func (a *ATL) Observe(d time.Duration) {
	a.count++
	a.total += d
}

// Mean returns the observed average, or Default with no observations.
func (a *ATL) Mean() time.Duration {
	if a.count == 0 {
		return a.Default
	}
	return a.total / time.Duration(a.count)
}

// Count returns the number of observations.
func (a *ATL) Count() int64 { return a.count }

// FeasibleH1 evaluates heuristic H1: with n transactions ahead of T in
// the priority queue and mean length atl, T has a reasonable chance of
// completing at this site iff now + n·atl ≤ deadline.
func FeasibleH1(now time.Duration, n int, atl time.Duration, deadline time.Duration) bool {
	return now+time.Duration(n)*atl <= deadline
}
