package sched

import (
	"testing"
	"testing/quick"
	"time"

	"siteselect/internal/txn"
)

func tx(id int64, deadline time.Duration) *txn.Transaction {
	return &txn.Transaction{ID: txn.ID(id), Deadline: deadline, Status: txn.StatusPending}
}

func TestEDFOrder(t *testing.T) {
	q := NewEDFQueue()
	q.Push(tx(1, 30*time.Second))
	q.Push(tx(2, 10*time.Second))
	q.Push(tx(3, 20*time.Second))
	want := []txn.ID{2, 3, 1}
	for _, id := range want {
		got := q.Pop()
		if got == nil || got.ID != id {
			t.Fatalf("pop = %v, want %d", got, id)
		}
	}
	if q.Pop() != nil {
		t.Fatal("pop of empty queue should be nil")
	}
}

func TestEDFTieFIFO(t *testing.T) {
	q := NewEDFQueue()
	for i := int64(1); i <= 5; i++ {
		q.Push(tx(i, time.Second))
	}
	for i := int64(1); i <= 5; i++ {
		if got := q.Pop(); got.ID != txn.ID(i) {
			t.Fatalf("tie order broken: got %d want %d", got.ID, i)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	q := NewEDFQueue()
	if q.Peek() != nil {
		t.Fatal("peek of empty should be nil")
	}
	q.Push(tx(1, time.Second))
	if q.Peek().ID != 1 || q.Len() != 1 {
		t.Fatal("peek misbehaved")
	}
}

func TestPopReadySkipsMissed(t *testing.T) {
	q := NewEDFQueue()
	q.Push(tx(1, 5*time.Second))
	q.Push(tx(2, 15*time.Second))
	q.Push(tx(3, 25*time.Second))
	ready, missed := q.PopReady(10 * time.Second)
	if ready == nil || ready.ID != 2 {
		t.Fatalf("ready = %v, want id 2", ready)
	}
	if len(missed) != 1 || missed[0].ID != 1 {
		t.Fatalf("missed = %v", missed)
	}
	ready, missed = q.PopReady(100 * time.Second)
	if ready != nil || len(missed) != 1 || missed[0].ID != 3 {
		t.Fatalf("second PopReady: ready=%v missed=%v", ready, missed)
	}
}

func TestDropMissed(t *testing.T) {
	q := NewEDFQueue()
	for i := int64(1); i <= 6; i++ {
		q.Push(tx(i, time.Duration(i)*time.Second))
	}
	missed := q.DropMissed(3 * time.Second) // ids 1,2 missed (deadline < now), 3 at limit survives
	if len(missed) != 2 {
		t.Fatalf("missed = %d, want 2", len(missed))
	}
	if q.Len() != 4 {
		t.Fatalf("remaining = %d, want 4", q.Len())
	}
	if got := q.Pop(); got.ID != 3 {
		t.Fatalf("head after drop = %d, want 3", got.ID)
	}
}

func TestATL(t *testing.T) {
	a := &ATL{Default: 10 * time.Second}
	if a.Mean() != 10*time.Second {
		t.Fatalf("default mean = %v", a.Mean())
	}
	a.Observe(4 * time.Second)
	a.Observe(8 * time.Second)
	if a.Mean() != 6*time.Second {
		t.Fatalf("mean = %v, want 6s", a.Mean())
	}
	if a.Count() != 2 {
		t.Fatalf("count = %d", a.Count())
	}
}

func TestFeasibleH1(t *testing.T) {
	now := 100 * time.Second
	atl := 10 * time.Second
	if !FeasibleH1(now, 2, atl, 120*time.Second) {
		t.Fatal("exactly-feasible case should pass (<=)")
	}
	if FeasibleH1(now, 3, atl, 120*time.Second) {
		t.Fatal("infeasible case should fail")
	}
	if !FeasibleH1(now, 0, atl, now) {
		t.Fatal("empty queue with deadline=now should pass")
	}
}

// DropMissed filters the backing slice in place and re-heapifies; after
// a partial removal the survivors must still satisfy the heap property
// (parent ≤ child under the (deadline, seq) order) and pop in EDF order.
func TestDropMissedPreservesHeapProperty(t *testing.T) {
	q := NewEDFQueue()
	// Interleave survivors and victims so the removal punches holes in
	// the middle of the heap slice, not just at the top.
	deadlines := []time.Duration{9, 2, 7, 2, 9, 4, 7, 1, 4, 8, 3, 8}
	for i, d := range deadlines {
		q.Push(tx(int64(i+1), d*time.Second))
	}
	missed := q.DropMissed(5 * time.Second) // deadlines 1..4 missed
	if len(missed) != 6 {
		t.Fatalf("missed = %d, want 6", len(missed))
	}
	for _, m := range missed {
		if m.Deadline >= 5*time.Second {
			t.Fatalf("txn %d (deadline %v) wrongly dropped", m.ID, m.Deadline)
		}
	}
	// Direct heap-invariant check on the retained items.
	for i := 1; i < q.items.Len(); i++ {
		parent := (i - 1) / 2
		if q.items.Less(i, parent) {
			t.Fatalf("heap property violated: item %d < parent %d", i, parent)
		}
	}
	// And the observable consequence: pops come out in EDF order.
	last := time.Duration(-1)
	for q.Len() > 0 {
		got := q.Pop()
		if got.Deadline < last {
			t.Fatalf("pop order broken after DropMissed: %v after %v", got.Deadline, last)
		}
		last = got.Deadline
	}
}

// PopReady under an equal-deadline tie: the missed transactions are
// accounted in submission (seq) order, and the first live transaction
// returned is the earliest-pushed among the tied survivors.
func TestPopReadyEqualDeadlineTies(t *testing.T) {
	q := NewEDFQueue()
	// Three transactions tied at a deadline that has passed, then two
	// tied at a live deadline.
	for i := int64(1); i <= 3; i++ {
		q.Push(tx(i, 5*time.Second))
	}
	q.Push(tx(4, 20*time.Second))
	q.Push(tx(5, 20*time.Second))
	ready, missed := q.PopReady(10 * time.Second)
	if ready == nil || ready.ID != 4 {
		t.Fatalf("ready = %v, want id 4 (seq order among ties)", ready)
	}
	if len(missed) != 3 {
		t.Fatalf("missed = %d, want 3", len(missed))
	}
	for i, m := range missed {
		if m.ID != txn.ID(i+1) {
			t.Fatalf("missed[%d] = %d, want %d (seq order)", i, m.ID, i+1)
		}
	}
	// A deadline exactly equal to now is not missed (MissedAt is <),
	// so the remaining tied transaction pops as ready at its deadline.
	ready, missed = q.PopReady(20 * time.Second)
	if ready == nil || ready.ID != 5 || len(missed) != 0 {
		t.Fatalf("at-deadline pop = %v missed=%v, want id 5 and none missed", ready, missed)
	}
	if q.Len() != 0 {
		t.Fatalf("queue should be empty, len = %d", q.Len())
	}
}

// Property: Pop always returns nondecreasing deadlines.
func TestEDFHeapProperty(t *testing.T) {
	f := func(deadlines []uint16) bool {
		q := NewEDFQueue()
		for i, d := range deadlines {
			q.Push(tx(int64(i), time.Duration(d)*time.Millisecond))
		}
		last := time.Duration(-1)
		for q.Len() > 0 {
			got := q.Pop()
			if got.Deadline < last {
				return false
			}
			last = got.Deadline
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// DropMissed compacts the backing slice and re-heapifies; every
// surviving item's cached heap index must equal its slice position
// afterwards. heap.Init only repairs the indexes of items it happens to
// swap, so the compaction itself must reassign them — this drops from
// the middle of the heap slice and checks all survivors.
func TestDropMissedReassignsIndexes(t *testing.T) {
	q := NewEDFQueue()
	// Push order chosen so the missed deadlines (10,20,30s) occupy a
	// prefix whose removal leaves a slice heap.Init barely reshuffles.
	for _, d := range []time.Duration{50, 10, 60, 20, 70, 30, 40} {
		q.Push(tx(int64(d/time.Second), d*time.Second))
	}
	missed := q.DropMissed(35 * time.Second)
	if len(missed) != 3 {
		t.Fatalf("missed = %d, want 3", len(missed))
	}
	for i, it := range q.items {
		if it.index != i {
			t.Errorf("item %d (deadline %v): cached index %d, want %d", i, it.t.Deadline, it.index, i)
		}
	}
}
