// Package scenario implements the .rts declarative scenario format: a
// line-oriented DSL that describes a complete simulated workload — the
// system under test, heterogeneous client classes with phased arrival
// processes (closed-loop, open-loop Poisson, bursts, diurnal curves,
// flash crowds), access skew with hot-spot drift, fault injection — and
// the scalar assertions its run must satisfy.
//
// A scenario file compiles onto the existing config.Config workload
// layer (config.WorkloadSpec) without touching the deterministic seed
// derivation: the run seed is config.CellSeed keyed by the scenario
// name, and each arrival phase draws from its own per-client derived
// stream, so every scenario is a pure function of its text.
//
// The grammar (one construct per line, # comments, blocks braced):
//
//	scenario NAME
//	system ce|ce-occ|cs|ls
//	seed INT
//	config { KEY VALUE ... }
//	clients NAME COUNT {
//	    KEY VALUE ...
//	    arrivals { phase KIND [KEY VALUE ...] ... }
//	    access { KEY VALUE ... }
//	}
//	faults { KEY VALUE ... }
//	expect { METRIC [ARG] OP VALUE [tol VALUE] ... }
//
// See EXPERIMENTS.md "Writing a scenario" for the full stanza
// reference and a worked example.
package scenario

import (
	"fmt"
	"time"
)

// ValueKind classifies a parsed literal.
type ValueKind int

// Value kinds.
const (
	// ValInt is a 64-bit integer literal ("42").
	ValInt ValueKind = iota + 1
	// ValFloat is a floating-point literal ("0.75", "1e-3").
	ValFloat
	// ValDur is a Go duration literal ("500ms", "1m30s").
	ValDur
	// ValWord is a bare word ("true", "skewed", "lock-wait").
	ValWord
)

// Value is one parsed literal. Exactly the field selected by Kind is
// meaningful; the printer renders each kind so that reparsing yields an
// identical Value (the parse → print → parse round-trip the fuzz
// target checks).
type Value struct {
	Kind  ValueKind
	Int   int64
	Float float64
	Dur   time.Duration
	Word  string
}

// String renders the value in its canonical reparseable form.
func (v Value) String() string {
	switch v.Kind {
	case ValInt:
		return fmt.Sprintf("%d", v.Int)
	case ValFloat:
		return formatFloat(v.Float)
	case ValDur:
		return v.Dur.String()
	default:
		return v.Word
	}
}

// Setting is one "key value" line inside a block.
type Setting struct {
	Line int
	Key  string
	Val  Value
}

// PhaseStanza is one "phase KIND key value ..." line of an arrivals
// block.
type PhaseStanza struct {
	Line   int
	Kind   string
	Params []Setting
}

// Block is a brace-delimited list of settings (config, faults, access).
type Block struct {
	Line     int
	Settings []Setting
}

// ClientsStanza declares one client class: "clients NAME COUNT { ... }".
type ClientsStanza struct {
	Line  int
	Name  string
	Count int64
	// Settings holds the class workload parameters in file order.
	Settings []Setting
	// Arrivals holds the phase lines (nil when the block is absent).
	Arrivals []PhaseStanza
	// HasArrivals distinguishes an empty arrivals block from none.
	HasArrivals bool
	// Access is the class access block (nil when absent).
	Access *Block
}

// ExpectStanza is one assertion line: "METRIC [ARG] OP VALUE [tol V]".
type ExpectStanza struct {
	Line   int
	Metric string
	Arg    string
	Op     string
	Value  Value
	Tol    *Value
}

// Scenario is the parsed form of one .rts file.
type Scenario struct {
	// File is the name Parse was given, used in diagnostics.
	File string

	Name     string
	NameLine int

	System     string
	SystemLine int

	Seed     int64
	SeedLine int

	Config  *Block
	Classes []ClientsStanza
	Faults  *Block
	// Replication configures the sharded server's replica placement
	// (nil when the block is absent).
	Replication *Block
	Expects     []ExpectStanza
	// HasExpect distinguishes an empty expect block from none.
	HasExpect  bool
	ExpectLine int
}

// Population is the total client count across every clients stanza —
// what the compiled Config.NumClients will be.
func (s *Scenario) Population() int {
	total := 0
	for _, cl := range s.Classes {
		total += int(cl.Count)
	}
	return total
}

// posError is a diagnostic tied to a file position and stanza.
func (s *Scenario) errf(line int, stanza, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s: %s", s.File, line, stanza, fmt.Sprintf(format, args...))
}
