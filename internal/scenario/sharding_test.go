package scenario

import "testing"

// serversOf returns the scenario's configured shard count (zero when
// unset — the single-server topology).
func serversOf(s *Scenario) int {
	if s.Config == nil {
		return 0
	}
	n := 0
	for _, set := range s.Config.Settings {
		if set.Key == "servers" {
			if v, ok := set.Val.AsInt(); ok {
				n = int(v)
			}
		}
	}
	return n
}

// TestCorpusSingleShard is the sharding differential harness: every
// everyday corpus scenario that was pinned against the single-server
// topology reruns with an explicit "servers 1" setting injected, and
// each report must stay byte-identical to scenarios/golden/. Since
// every request now flows through the topology routing layer
// unconditionally, this pins the equivalence claim of the sharding
// layer — one shard is not "sharding disabled upstream" but the
// topology's single-server path producing the exact event sequence of
// the pre-sharding server. (Scenarios that set servers > 1 pin sharded
// goldens through TestCorpusGoldens instead.)
func TestCorpusSingleShard(t *testing.T) {
	var scens []*Scenario
	for _, s := range loadCorpus(t) {
		if serversOf(s) > 1 || s.Replication != nil {
			continue
		}
		setConfig(s, "servers", Value{Kind: ValInt, Int: 1})
		scens = append(scens, s)
	}
	if len(scens) < 10 {
		t.Fatalf("only %d single-server scenarios selected, want at least 10", len(scens))
	}
	reports, err := RunAll(scens, 8)
	if err != nil {
		t.Fatalf("running corpus at servers 1: %v", err)
	}
	for _, r := range reports {
		checkGolden(t, r)
	}
}

// TestReplicationGrammar pins the replication block's lowering onto the
// sharding topology: adaptive tuning keys and repeatable static
// placements.
func TestReplicationGrammar(t *testing.T) {
	src := `scenario rep-grammar
config {
  duration 4m
  servers 4
}
clients web 2 {
}
replication {
  hot 3
  window 90s
  shed-below 2
  replica 0:1
  replica 9:2
}
`
	s, err := Parse("rep-grammar.rts", src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	sh := c.Config.Sharding
	if sh.Servers != 4 || sh.ReplicateHot != 3 || sh.ShedBelow != 2 {
		t.Fatalf("topology = %+v, want servers 4, hot 3, shed-below 2", sh)
	}
	if sh.HeatWindow.Seconds() != 90 {
		t.Fatalf("HeatWindow = %v, want 90s", sh.HeatWindow)
	}
	if len(sh.Replicas) != 2 || sh.Replicas[0] != 1 || sh.Replicas[9] != 2 {
		t.Fatalf("Replicas = %v, want {0:1, 9:2}", sh.Replicas)
	}
}
