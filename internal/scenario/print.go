package scenario

import (
	"fmt"
	"strings"
)

// Format renders the scenario in canonical form: fixed stanza order
// (scenario, system, seed, config, clients, faults, replication,
// expect), two-space indent per block level. Parsing the output yields an AST identical to
// s up to line numbers — the round-trip FuzzScenarioParse checks.
func Format(s *Scenario) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s\n", s.Name)
	if s.SystemLine != 0 {
		fmt.Fprintf(&b, "system %s\n", s.System)
	}
	if s.SeedLine != 0 {
		fmt.Fprintf(&b, "seed %d\n", s.Seed)
	}
	if s.Config != nil {
		formatBlock(&b, "config", s.Config, "")
	}
	for _, cl := range s.Classes {
		fmt.Fprintf(&b, "clients %s %d {\n", cl.Name, cl.Count)
		for _, set := range cl.Settings {
			fmt.Fprintf(&b, "  %s %s\n", set.Key, set.Val)
		}
		if cl.HasArrivals {
			b.WriteString("  arrivals {\n")
			for _, ph := range cl.Arrivals {
				fmt.Fprintf(&b, "    phase %s", ph.Kind)
				for _, par := range ph.Params {
					fmt.Fprintf(&b, " %s %s", par.Key, par.Val)
				}
				b.WriteString("\n")
			}
			b.WriteString("  }\n")
		}
		if cl.Access != nil {
			formatBlock(&b, "access", cl.Access, "  ")
		}
		b.WriteString("}\n")
	}
	if s.Faults != nil {
		formatBlock(&b, "faults", s.Faults, "")
	}
	if s.Replication != nil {
		formatBlock(&b, "replication", s.Replication, "")
	}
	if s.HasExpect {
		b.WriteString("expect {\n")
		for _, ex := range s.Expects {
			fmt.Fprintf(&b, "  %s", ex.Metric)
			if ex.Arg != "" {
				fmt.Fprintf(&b, " %s", ex.Arg)
			}
			fmt.Fprintf(&b, " %s %s", ex.Op, ex.Value)
			if ex.Tol != nil {
				fmt.Fprintf(&b, " tol %s", ex.Tol)
			}
			b.WriteString("\n")
		}
		b.WriteString("}\n")
	}
	return b.String()
}

func formatBlock(b *strings.Builder, name string, blk *Block, indent string) {
	fmt.Fprintf(b, "%s%s {\n", indent, name)
	for _, set := range blk.Settings {
		fmt.Fprintf(b, "%s  %s %s\n", indent, set.Key, set.Val)
	}
	fmt.Fprintf(b, "%s}\n", indent)
}
