package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the scenario corpus goldens")

const corpusDir = "../../scenarios"

func loadCorpus(t *testing.T) []*Scenario {
	t.Helper()
	scens, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	if len(scens) < 10 {
		t.Fatalf("corpus has %d scenarios, want at least 10", len(scens))
	}
	return scens
}

func runCorpus(t *testing.T, parallel int) []*Report {
	t.Helper()
	reports, err := RunAll(loadCorpus(t), parallel)
	if err != nil {
		t.Fatalf("running corpus: %v", err)
	}
	return reports
}

// TestCorpusGoldens runs every committed scenario and pins each report
// byte for byte against scenarios/golden/<name>.golden; go test
// -run TestCorpusGoldens -update ./internal/scenario rewrites them.
// The reports embed the expect verdicts, so a golden match also means
// every scenario's assertions held.
func TestCorpusGoldens(t *testing.T) {
	for _, r := range runCorpus(t, 8) {
		name := r.Compiled.Scenario.Name
		got := r.Format()
		path := filepath.Join(corpusDir, "golden", name+".golden")
		if *update {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatalf("updating %s: %v", path, err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to create)", name, err)
		}
		if got != string(want) {
			t.Errorf("%s: report differs from %s\n--- got ---\n%s--- want ---\n%s", name, path, got, want)
		}
		if !r.Passed() {
			t.Errorf("%s: scenario failed its expectations", name)
		}
	}
}

// TestCorpusDeterminism reruns the corpus at different worker counts
// and again at the same count: every report must be byte-identical.
// Scenario seeds are derived from scenario names alone, so neither
// batch order nor scheduling may leak into results.
func TestCorpusDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("rerunning the corpus three times is not -short work")
	}
	base := runCorpus(t, 1)
	for _, parallel := range []int{8, 8} {
		other := runCorpus(t, parallel)
		for i, r := range base {
			if got, want := other[i].Format(), r.Format(); got != want {
				t.Errorf("%s: -parallel %d report differs from -parallel 1\n--- got ---\n%s--- want ---\n%s",
					r.Compiled.Scenario.Name, parallel, got, want)
			}
		}
	}
}
