package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the scenario corpus goldens")

const corpusDir = "../../scenarios"

// loadCorpus loads the everyday corpus: every committed scenario below
// ScaleFloor clients. Scale-tier scenarios are covered by
// TestCorpusScale instead.
func loadCorpus(t *testing.T) []*Scenario {
	t.Helper()
	scens, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	everyday, _ := SplitScale(scens)
	if len(everyday) < 10 {
		t.Fatalf("corpus has %d everyday scenarios, want at least 10", len(everyday))
	}
	return everyday
}

func runCorpus(t *testing.T, parallel int) []*Report {
	t.Helper()
	reports, err := RunAll(loadCorpus(t), parallel)
	if err != nil {
		t.Fatalf("running corpus: %v", err)
	}
	return reports
}

// checkGolden pins one report byte for byte against
// scenarios/golden/<name>.golden, rewriting it under -update.
func checkGolden(t *testing.T, r *Report) {
	t.Helper()
	name := r.Compiled.Scenario.Name
	got := r.Format()
	path := filepath.Join(corpusDir, "golden", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("updating %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s: %v (run with -update to create)", name, err)
	}
	if got != string(want) {
		t.Errorf("%s: report differs from %s\n--- got ---\n%s--- want ---\n%s", name, path, got, want)
	}
	if !r.Passed() {
		t.Errorf("%s: scenario failed its expectations", name)
	}
}

// TestCorpusGoldens runs every committed everyday scenario and pins each
// report byte for byte against scenarios/golden/<name>.golden; go test
// ./internal/scenario -run TestCorpusGoldens -update rewrites them.
// The reports embed the expect verdicts, so a golden match also means
// every scenario's assertions held.
func TestCorpusGoldens(t *testing.T) {
	for _, r := range runCorpus(t, 8) {
		checkGolden(t, r)
	}
}

// TestCorpusScale runs the scale-tier scenarios (population >=
// ScaleFloor) with the same golden pinning as TestCorpusGoldens. The
// big one simulates a million clients — minutes of wall clock and tens
// of gigabytes of heap — so the test is opt-in: set RTS_SCALE=1 (or
// pass -update, which is already a deliberate full-corpus rebuild) to
// run it.
func TestCorpusScale(t *testing.T) {
	if os.Getenv("RTS_SCALE") == "" && !*update {
		t.Skip("set RTS_SCALE=1 (or -update) to run the scale-tier scenarios; scale_1m needs tens of GB and minutes of wall clock")
	}
	scens, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	_, scale := SplitScale(scens)
	if len(scale) == 0 {
		t.Fatal("no scale-tier scenarios in corpus")
	}
	reports, err := RunAll(scale, 1)
	if err != nil {
		t.Fatalf("running scale tier: %v", err)
	}
	for _, r := range reports {
		checkGolden(t, r)
	}
}

// TestCorpusDeterminism reruns the corpus at different worker counts
// and again at the same count: every report must be byte-identical.
// Scenario seeds are derived from scenario names alone, so neither
// batch order nor scheduling may leak into results.
func TestCorpusDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("rerunning the corpus three times is not -short work")
	}
	base := runCorpus(t, 1)
	for _, parallel := range []int{8, 8} {
		other := runCorpus(t, parallel)
		for i, r := range base {
			if got, want := other[i].Format(), r.Format(); got != want {
				t.Errorf("%s: -parallel %d report differs from -parallel 1\n--- got ---\n%s--- want ---\n%s",
					r.Compiled.Scenario.Name, parallel, got, want)
			}
		}
	}
}
