package scenario

import (
	"math"
	"strconv"
	"strings"
	"time"
)

// parseValue classifies one token. The order — integer, float,
// duration, word — and the canonical printer in formatFloat are
// designed as a pair: printing any Value and reclassifying the text
// yields the same Value, which is the round-trip property the fuzz
// target enforces.
func parseValue(tok string) Value {
	if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return Value{Kind: ValInt, Int: n}
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		// NaN and infinities have no reparseable canonical form;
		// keep them as words.
		if !math.IsNaN(f) && !math.IsInf(f, 0) {
			return Value{Kind: ValFloat, Float: f}
		}
	} else if d, err := time.ParseDuration(tok); err == nil {
		return Value{Kind: ValDur, Dur: d}
	}
	return Value{Kind: ValWord, Word: tok}
}

// formatFloat renders a float so that parseValue classifies the text as
// the same float again: shortest round-trip form, with ".0" appended
// when the form would otherwise read as an integer.
func formatFloat(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// AsDuration converts the value to a duration; integers and floats are
// read as seconds. ok is false for words.
func (v Value) AsDuration() (time.Duration, bool) {
	switch v.Kind {
	case ValDur:
		return v.Dur, true
	case ValInt:
		return time.Duration(v.Int) * time.Second, true
	case ValFloat:
		return time.Duration(v.Float * float64(time.Second)), true
	default:
		return 0, false
	}
}

// AsFloat converts the value to a float; ok is false for words and
// durations.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case ValFloat:
		return v.Float, true
	case ValInt:
		return float64(v.Int), true
	default:
		return 0, false
	}
}

// AsInt converts the value to an integer; ok is false unless the value
// is an integer literal.
func (v Value) AsInt() (int64, bool) {
	if v.Kind == ValInt {
		return v.Int, true
	}
	return 0, false
}
