package scenario

import (
	"testing"
	"time"
)

// setConfig appends a config setting to the scenario, overriding any
// earlier occurrence of the same key (applyConfig applies settings in
// order, so the appended one wins).
func setConfig(s *Scenario, key string, val Value) {
	if s.Config == nil {
		s.Config = &Block{}
	}
	s.Config.Settings = append(s.Config.Settings, Setting{Key: key, Val: val})
}

// batchWindowOf returns the scenario's configured batch window (zero
// when unset).
func batchWindowOf(s *Scenario) time.Duration {
	if s.Config == nil {
		return 0
	}
	var w time.Duration
	for _, set := range s.Config.Settings {
		if set.Key == "batch-window" {
			if d, ok := set.Val.AsDuration(); ok {
				w = d
			}
		}
	}
	return w
}

// TestCorpusBatchWindowZero is the window-0 half of the differential
// harness: every everyday corpus scenario whose golden was pinned
// without batching reruns with an explicit "batch-window 0" setting
// injected, and each report must stay byte-identical to
// scenarios/golden/. Since every firm request now flows through
// batch.Scheduler.Add unconditionally, this pins the equivalence claim
// of the batching layer — a zero window is not "batching disabled
// upstream" but the scheduler's inline path producing the exact event
// sequence of the unbatched server. (Scenarios that set a positive
// window pin windowed goldens through TestCorpusGoldens instead; the
// scale tier is covered by TestCorpusScale.)
func TestCorpusBatchWindowZero(t *testing.T) {
	var scens []*Scenario
	for _, s := range loadCorpus(t) {
		if batchWindowOf(s) != 0 {
			continue
		}
		setConfig(s, "batch-window", Value{Kind: ValDur, Dur: 0})
		scens = append(scens, s)
	}
	reports, err := RunAll(scens, 8)
	if err != nil {
		t.Fatalf("running corpus at batch-window 0: %v", err)
	}
	for _, r := range reports {
		checkGolden(t, r)
	}
}

// TestCorpusBatchWindowed is the window>0 half of the differential
// harness: the small everyday scenarios — including the lossy
// fault-injection ones — rerun with a positive batch window and the
// continuous invariant monitor attached, which re-checks batch
// request conservation, lock-table consistency, client request
// conservation, and (when traced) the attribution identity at every
// simulation step. Client-server scenarios also run traced so the
// batch-wait sub-bucket feeds the attribution identity check. Any
// lost, duplicated, or incompatibly granted request surfaces as a run
// error here.
func TestCorpusBatchWindowed(t *testing.T) {
	var scens []*Scenario
	for _, s := range loadCorpus(t) {
		if s.Population() > 100 {
			// The monitor audits every event; keep this to the small
			// scenarios (drops scale_smoke's ten thousand clients).
			continue
		}
		setConfig(s, "batch-window", Value{Kind: ValDur, Dur: 50 * time.Millisecond})
		setConfig(s, "invariants", Value{Kind: ValWord, Word: "true"})
		if s.System == "cs" || s.System == "ls" {
			setConfig(s, "trace", Value{Kind: ValWord, Word: "true"})
		}
		scens = append(scens, s)
	}
	if len(scens) < 10 {
		t.Fatalf("only %d small scenarios selected, want at least 10", len(scens))
	}
	var faulted bool
	for _, s := range scens {
		if s.Faults != nil {
			faulted = true
		}
	}
	if !faulted {
		t.Fatal("no lossy fault-injection scenario in the windowed selection")
	}
	if _, err := RunAll(scens, 8); err != nil {
		t.Fatalf("windowed corpus run violated an invariant: %v", err)
	}
}

// TestCorpusBatchWindowedDeterminism pins that a windowed run is as
// deterministic as an unbatched one: the same scenarios at the same
// window produce byte-identical reports at different worker counts.
func TestCorpusBatchWindowedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("rerunning the corpus twice is not -short work")
	}
	run := func(parallel int) []*Report {
		var scens []*Scenario
		for _, s := range loadCorpus(t) {
			if s.Population() > 100 {
				continue
			}
			setConfig(s, "batch-window", Value{Kind: ValDur, Dur: 50 * time.Millisecond})
			scens = append(scens, s)
		}
		reports, err := RunAll(scens, parallel)
		if err != nil {
			t.Fatalf("windowed corpus run: %v", err)
		}
		return reports
	}
	base := run(1)
	other := run(8)
	for i, r := range base {
		if got, want := other[i].Format(), r.Format(); got != want {
			t.Errorf("%s: -parallel 8 windowed report differs from -parallel 1\n--- got ---\n%s--- want ---\n%s",
				r.Compiled.Scenario.Name, got, want)
		}
	}
}
