package scenario

import (
	"strconv"
	"strings"
	"time"

	"siteselect/internal/config"
)

// Systems a scenario can run. The default is the basic client-server
// system; ce and ce-occ are the centralized variants (which have no
// miss-cause tracing), ls is the load-sharing system.
const (
	SystemCE    = "ce"
	SystemCEOCC = "ce-occ"
	SystemCS    = "cs"
	SystemLS    = "ls"
)

// nameCoord hashes the scenario name into a seed coordinate (FNV-1a),
// so every scenario draws from its own deterministic seed cell no
// matter what file it lives in or what order a batch runs it in.
func nameCoord(name string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int64(h & (1<<63 - 1))
}

// Compiled is the runnable form of a scenario: the lowered Config plus
// the resolved system name.
type Compiled struct {
	Scenario *Scenario
	System   string
	Config   config.Config
}

// Compile lowers the parsed scenario onto a config.Config: base Table 1
// defaults for the chosen system, run-level overrides from the config
// block, one config.ClientClass per clients stanza, fault injection
// from the faults block. The run seed is CellSeed(seed, hash(name)), so
// renaming a scenario reseeds it and nothing else does. Every
// diagnostic names the offending file:line and stanza.
func Compile(s *Scenario) (*Compiled, error) {
	system := s.System
	if system == "" {
		system = SystemCS
	}
	switch system {
	case SystemCE, SystemCEOCC, SystemCS, SystemLS:
	default:
		return nil, s.errf(s.SystemLine, "system", "unknown system %q (want ce, ce-occ, cs, or ls)", system)
	}

	if len(s.Classes) == 0 {
		return nil, s.errf(s.NameLine, "scenario", "needs at least one clients stanza")
	}
	total := s.Population()

	var cfg config.Config
	if system == SystemCE || system == SystemCEOCC {
		cfg = config.DefaultCentralized(total, 0.20)
	} else {
		cfg = config.Default(total, 0.20)
	}
	cfg.Duration = 0 // scenarios must set their horizon explicitly
	cfg.Warmup = 0

	if s.Config != nil {
		for _, set := range s.Config.Settings {
			if err := s.applyConfig(&cfg, set); err != nil {
				return nil, err
			}
		}
	}
	if cfg.Duration <= 0 {
		line := s.NameLine
		if s.Config != nil {
			line = s.Config.Line
		}
		return nil, s.errf(line, "config", "scenario must set a positive duration")
	}

	w := &config.WorkloadSpec{}
	for _, cl := range s.Classes {
		class, err := s.compileClass(cfg, cl)
		if err != nil {
			return nil, err
		}
		w.Classes = append(w.Classes, class)
	}
	cfg.Workload = w

	if s.Faults != nil {
		for _, set := range s.Faults.Settings {
			if err := s.applyFault(&cfg.Faults, set); err != nil {
				return nil, err
			}
		}
	}

	if s.Replication != nil {
		for _, set := range s.Replication.Settings {
			if err := s.applyReplication(&cfg.Sharding, set); err != nil {
				return nil, err
			}
		}
	}

	for _, ex := range s.Expects {
		if err := s.checkExpect(system, &cfg, ex); err != nil {
			return nil, err
		}
	}

	cfg.Seed = config.CellSeed(config.NormalizeSeed(s.Seed), nameCoord(s.Name))

	if err := cfg.Validate(); err != nil {
		return nil, s.errf(s.NameLine, "scenario", "invalid compiled config: %v", err)
	}
	return &Compiled{Scenario: s, System: system, Config: cfg}, nil
}

// value coercion helpers; each names the stanza and key on mismatch.

func (s *Scenario) wantDur(stanza string, set Setting) (time.Duration, error) {
	d, ok := set.Val.AsDuration()
	if !ok {
		return 0, s.errf(set.Line, stanza, "%s wants a duration, got %q", set.Key, set.Val)
	}
	return d, nil
}

func (s *Scenario) wantFloat(stanza string, set Setting) (float64, error) {
	f, ok := set.Val.AsFloat()
	if !ok {
		return 0, s.errf(set.Line, stanza, "%s wants a number, got %q", set.Key, set.Val)
	}
	return f, nil
}

func (s *Scenario) wantInt(stanza string, set Setting) (int, error) {
	n, ok := set.Val.AsInt()
	if !ok {
		return 0, s.errf(set.Line, stanza, "%s wants an integer, got %q", set.Key, set.Val)
	}
	return int(n), nil
}

func (s *Scenario) wantBool(stanza string, set Setting) (bool, error) {
	if set.Val.Kind == ValWord {
		switch set.Val.Word {
		case "true", "on":
			return true, nil
		case "false", "off":
			return false, nil
		}
	}
	return false, s.errf(set.Line, stanza, "%s wants true or false, got %q", set.Key, set.Val)
}

// applyConfig lowers one config-block setting onto the Config.
func (s *Scenario) applyConfig(cfg *config.Config, set Setting) error {
	const st = "config"
	var err error
	switch set.Key {
	case "duration":
		cfg.Duration, err = s.wantDur(st, set)
	case "warmup":
		cfg.Warmup, err = s.wantDur(st, set)
	case "drain":
		cfg.Drain, err = s.wantDur(st, set)
	case "db":
		cfg.DBSize, err = s.wantInt(st, set)
	case "server-memory":
		cfg.ServerMemory, err = s.wantInt(st, set)
	case "client-memory":
		cfg.ClientMemory, err = s.wantInt(st, set)
	case "client-disk":
		cfg.ClientDisk, err = s.wantInt(st, set)
	case "interarrival":
		cfg.MeanInterArrival, err = s.wantDur(st, set)
	case "length":
		cfg.MeanLength, err = s.wantDur(st, set)
	case "slack":
		cfg.MeanSlack, err = s.wantDur(st, set)
	case "objects":
		cfg.MeanObjects, err = s.wantInt(st, set)
	case "updates":
		cfg.UpdateFraction, err = s.wantFloat(st, set)
	case "decomposable":
		cfg.DecomposableFraction, err = s.wantFloat(st, set)
	case "pattern":
		switch set.Val.Word {
		case "uniform":
			cfg.Pattern = config.PatternUniform
		case "localized-rw":
			cfg.Pattern = config.PatternLocalizedRW
		case "hot-cold":
			cfg.Pattern = config.PatternHotCold
		default:
			err = s.errf(set.Line, st, "pattern wants uniform, localized-rw, or hot-cold, got %q", set.Val)
		}
	case "hot-size":
		cfg.HotRegionSize, err = s.wantInt(st, set)
	case "local-fraction":
		cfg.LocalFraction, err = s.wantFloat(st, set)
	case "zipf-theta":
		cfg.ZipfTheta, err = s.wantFloat(st, set)
	case "scheduling":
		switch set.Val.Word {
		case "edf":
			cfg.Scheduling = config.SchedEDF
		case "fcfs":
			cfg.Scheduling = config.SchedFCFS
		default:
			err = s.errf(set.Line, st, "scheduling wants edf or fcfs, got %q", set.Val)
		}
	case "deadlines":
		switch set.Val.Word {
		case "slack":
			cfg.Deadlines = config.DeadlineLengthPlusSlack
		case "independent":
			cfg.Deadlines = config.DeadlineIndependent
		default:
			err = s.errf(set.Line, st, "deadlines wants slack or independent, got %q", set.Val)
		}
	case "threads":
		cfg.ServerThreads, err = s.wantInt(st, set)
	case "executors":
		cfg.ClientExecutors, err = s.wantInt(st, set)
	case "net-latency":
		cfg.NetLatency, err = s.wantDur(st, set)
	case "net-bandwidth":
		cfg.NetBandwidthBps, err = s.wantFloat(st, set)
	case "topology":
		switch set.Val.Word {
		case "shared-bus":
			cfg.Topology = config.TopologySharedBus
		case "switched":
			cfg.Topology = config.TopologySwitched
		default:
			err = s.errf(set.Line, st, "topology wants shared-bus or switched, got %q", set.Val)
		}
	case "disk-read":
		cfg.DiskRead, err = s.wantDur(st, set)
	case "disk-write":
		cfg.DiskWrite, err = s.wantDur(st, set)
	case "server-op-cpu":
		cfg.ServerOpCPU, err = s.wantDur(st, set)
	case "collection-window":
		cfg.CollectionWindow, err = s.wantDur(st, set)
	case "batch-window":
		cfg.BatchWindow, err = s.wantDur(st, set)
	case "max-subtasks":
		cfg.MaxSubtasks, err = s.wantInt(st, set)
	case "retry-timeout":
		cfg.RetryTimeout, err = s.wantDur(st, set)
	case "trace":
		cfg.Trace, err = s.wantBool(st, set)
	case "invariants":
		cfg.CheckInvariants, err = s.wantBool(st, set)
	case "logging":
		cfg.UseLogging, err = s.wantBool(st, set)
	case "write-through":
		cfg.WriteThrough, err = s.wantBool(st, set)
	case "speculation":
		cfg.UseSpeculation, err = s.wantBool(st, set)
	case "servers":
		cfg.Sharding.Servers, err = s.wantInt(st, set)
	case "shard-block":
		cfg.Sharding.Block, err = s.wantInt(st, set)
	default:
		err = s.errf(set.Line, st, "unknown config key %q", set.Key)
	}
	return err
}

// compileClass lowers one clients stanza onto a config.ClientClass.
func (s *Scenario) compileClass(cfg config.Config, cl ClientsStanza) (config.ClientClass, error) {
	const st = "clients"
	class := config.ClientClass{
		Name:  cl.Name,
		Count: int(cl.Count),
		// Class fractions are literal in the workload layer; seed them
		// with the run-level values so omitting the keys inherits.
		UpdateFraction:       cfg.UpdateFraction,
		DecomposableFraction: cfg.DecomposableFraction,
	}
	interarrival := cfg.MeanInterArrival
	var err error
	for _, set := range cl.Settings {
		switch set.Key {
		case "length":
			class.MeanLength, err = s.wantDur(st, set)
		case "slack":
			class.MeanSlack, err = s.wantDur(st, set)
		case "objects":
			class.MeanObjects, err = s.wantInt(st, set)
		case "updates":
			class.UpdateFraction, err = s.wantFloat(st, set)
		case "decomposable":
			class.DecomposableFraction, err = s.wantFloat(st, set)
		case "interarrival":
			interarrival, err = s.wantDur(st, set)
		default:
			err = s.errf(set.Line, st, "unknown clients key %q in class %s", set.Key, cl.Name)
		}
		if err != nil {
			return class, err
		}
	}
	if !cl.HasArrivals || len(cl.Arrivals) == 0 {
		// No arrivals block: the paper's closed loop for the whole run.
		class.Phases = []config.ArrivalPhase{{
			Kind:             config.ArrivalClosed,
			MeanInterArrival: interarrival,
		}}
	} else {
		for _, ph := range cl.Arrivals {
			phase, err := s.compilePhase(ph, interarrival)
			if err != nil {
				return class, err
			}
			class.Phases = append(class.Phases, phase)
		}
	}
	if cl.Access != nil {
		spec, err := s.compileAccess(cl.Access)
		if err != nil {
			return class, err
		}
		class.Access = spec
	}
	return class, nil
}

// compilePhase lowers one phase line.
func (s *Scenario) compilePhase(ph PhaseStanza, interarrival time.Duration) (config.ArrivalPhase, error) {
	const st = "arrivals"
	out := config.ArrivalPhase{}
	switch ph.Kind {
	case "closed":
		out.Kind = config.ArrivalClosed
		out.MeanInterArrival = interarrival
	case "open":
		out.Kind = config.ArrivalOpen
	case "burst":
		out.Kind = config.ArrivalBurst
	case "diurnal":
		out.Kind = config.ArrivalDiurnal
	case "flash":
		out.Kind = config.ArrivalFlash
	default:
		return out, s.errf(ph.Line, st, "unknown phase kind %q (want closed, open, burst, diurnal, or flash)", ph.Kind)
	}
	var err error
	for _, par := range ph.Params {
		switch {
		case par.Key == "duration":
			out.Duration, err = s.wantDur(st, par)
		case par.Key == "interarrival" && ph.Kind == "closed":
			out.MeanInterArrival, err = s.wantDur(st, par)
		case par.Key == "rate" && (ph.Kind == "open" || ph.Kind == "diurnal" || ph.Kind == "flash"):
			out.Rate, err = s.wantFloat(st, par)
		case par.Key == "peak" && (ph.Kind == "diurnal" || ph.Kind == "flash"):
			out.Peak, err = s.wantFloat(st, par)
		case par.Key == "period" && ph.Kind == "diurnal":
			out.Period, err = s.wantDur(st, par)
		case par.Key == "ramp" && ph.Kind == "flash":
			out.Ramp, err = s.wantDur(st, par)
		case par.Key == "size" && ph.Kind == "burst":
			out.BurstSize, err = s.wantInt(st, par)
		case par.Key == "every" && ph.Kind == "burst":
			out.BurstEvery, err = s.wantDur(st, par)
		case par.Key == "spread" && ph.Kind == "burst":
			out.BurstSpread, err = s.wantDur(st, par)
		default:
			err = s.errf(par.Line, st, "phase %s does not take key %q", ph.Kind, par.Key)
		}
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// compileAccess lowers one access block.
func (s *Scenario) compileAccess(blk *Block) (*config.AccessSpec, error) {
	const st = "access"
	spec := &config.AccessSpec{}
	var err error
	for _, set := range blk.Settings {
		switch set.Key {
		case "pattern":
			switch set.Val.Word {
			case "default":
				spec.Kind = config.AccessDefault
			case "uniform":
				spec.Kind = config.AccessUniform
			case "localized-rw":
				spec.Kind = config.AccessLocalized
			case "hot-cold":
				spec.Kind = config.AccessHotCold
			case "skewed":
				spec.Kind = config.AccessSkewed
			default:
				err = s.errf(set.Line, st, "pattern wants default, uniform, localized-rw, hot-cold, or skewed, got %q", set.Val)
			}
		case "zipf-theta":
			spec.ZipfTheta, err = s.wantFloat(st, set)
		case "hot-size":
			spec.HotSize, err = s.wantInt(st, set)
		case "hot-fraction":
			spec.HotFraction, err = s.wantFloat(st, set)
		case "drift-every":
			spec.DriftEvery, err = s.wantDur(st, set)
		case "drift-step":
			spec.DriftStep, err = s.wantInt(st, set)
		default:
			err = s.errf(set.Line, st, "unknown access key %q", set.Key)
		}
		if err != nil {
			return nil, err
		}
	}
	return spec, nil
}

// applyFault lowers one faults-block setting.
func (s *Scenario) applyFault(f *config.FaultSpec, set Setting) error {
	const st = "faults"
	var err error
	switch set.Key {
	case "drop":
		f.DropRate, err = s.wantFloat(st, set)
	case "dup":
		f.DupRate, err = s.wantFloat(st, set)
	case "spike-rate":
		f.SpikeRate, err = s.wantFloat(st, set)
	case "spike-latency":
		f.SpikeLatency, err = s.wantDur(st, set)
	case "partition-site":
		f.PartitionSite, err = s.wantInt(st, set)
	case "partition-shard":
		f.PartitionShard, err = s.wantInt(st, set)
	case "partition-at":
		f.PartitionAt, err = s.wantDur(st, set)
	case "partition-duration":
		f.PartitionDuration, err = s.wantDur(st, set)
	default:
		err = s.errf(set.Line, st, "unknown faults key %q", set.Key)
	}
	return err
}

// applyReplication lowers one replication-block setting onto the
// sharding topology. The block tunes adaptive replication (hot, window,
// shed-below) and pins static placements (replica OBJ:SHARD, repeatable).
func (s *Scenario) applyReplication(t *config.Topology, set Setting) error {
	const st = "replication"
	var err error
	switch set.Key {
	case "hot":
		t.ReplicateHot, err = s.wantInt(st, set)
	case "window":
		t.HeatWindow, err = s.wantDur(st, set)
	case "shed-below":
		t.ShedBelow, err = s.wantInt(st, set)
	case "replica":
		obj, shard, ok := splitReplica(set.Val)
		if !ok {
			return s.errf(set.Line, st, "replica wants OBJ:SHARD (two non-negative integers), got %q", set.Val)
		}
		if t.Replicas == nil {
			t.Replicas = make(map[int]int)
		}
		t.Replicas[obj] = shard
	default:
		err = s.errf(set.Line, st, "unknown replication key %q", set.Key)
	}
	return err
}

// splitReplica parses a "OBJ:SHARD" placement value.
func splitReplica(v Value) (obj, shard int, ok bool) {
	if v.Kind != ValWord {
		return 0, 0, false
	}
	a, b, found := strings.Cut(v.Word, ":")
	if !found {
		return 0, 0, false
	}
	o, err1 := strconv.Atoi(a)
	sh, err2 := strconv.Atoi(b)
	if err1 != nil || err2 != nil || o < 0 || sh < 0 {
		return 0, 0, false
	}
	return o, sh, true
}

// scalarMetrics are the argument-less expect metrics.
var scalarMetrics = map[string]bool{
	"success_rate": true, "cache_hit_rate": true,
	"submitted": true, "committed": true, "missed": true, "aborted": true,
	"total_messages": true, "total_bytes": true, "net_utilization": true,
	"retries": true, "forward_hops": true, "exec_spread": true,
	"replicas_installed": true, "replicas_shed": true, "requests_forwarded": true,
}

// messageKinds are the valid "messages KIND" arguments, matching
// netsim's Kind names.
var messageKinds = map[string]bool{
	"ObjectRequest": true, "ObjectShip": true, "Recall": true,
	"ObjectReturn": true, "ClientForward": true, "LockReply": true,
	"TxnShip": true, "TxnResult": true, "LoadQuery": true,
	"LoadReply": true, "TxnSubmit": true, "UserResult": true,
}

// missCauses are the valid "miss_share CAUSE" arguments, matching the
// trace layer's component names.
var missCauses = map[string]bool{
	"queue": true, "lock-wait": true, "network": true,
	"exec": true, "retry": true, "fanout": true,
}

// faultFields are the valid "faults FIELD" arguments.
var faultFields = map[string]bool{
	"dropped": true, "duplicated": true, "spiked": true,
	"retransmits": true, "partition-drops": true,
}

// checkExpect validates one assertion at compile time, and switches on
// whatever instrumentation it needs (miss_share forces tracing, which
// only the client-server systems wire up).
func (s *Scenario) checkExpect(system string, cfg *config.Config, ex ExpectStanza) error {
	const st = "expect"
	switch {
	case scalarMetrics[ex.Metric]:
		if ex.Arg != "" {
			return s.errf(ex.Line, st, "%s takes no argument, got %q", ex.Metric, ex.Arg)
		}
	case ex.Metric == "messages":
		if !messageKinds[ex.Arg] {
			return s.errf(ex.Line, st, "messages wants a kind argument (e.g. ObjectRequest), got %q", ex.Arg)
		}
	case ex.Metric == "miss_share":
		if !missCauses[ex.Arg] {
			return s.errf(ex.Line, st, "miss_share wants a cause argument (queue, lock-wait, network, exec, retry, fanout), got %q", ex.Arg)
		}
		if system != SystemCS && system != SystemLS {
			return s.errf(ex.Line, st, "miss_share needs miss-cause tracing, which only systems cs and ls record (got %s)", system)
		}
		cfg.Trace = true
	case ex.Metric == "faults":
		if !faultFields[ex.Arg] {
			return s.errf(ex.Line, st, "faults wants a counter argument (dropped, duplicated, spiked, retransmits, partition-drops), got %q", ex.Arg)
		}
	default:
		return s.errf(ex.Line, st, "unknown metric %q", ex.Metric)
	}
	if _, ok := ex.Value.AsFloat(); !ok {
		return s.errf(ex.Line, st, "assertion value must be numeric, got %q", ex.Value)
	}
	if ex.Tol != nil {
		if _, ok := ex.Tol.AsFloat(); !ok {
			return s.errf(ex.Line, st, "tolerance must be numeric, got %q", ex.Tol)
		}
	}
	return nil
}
