package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// clearLines zeroes every position field so round-trip comparisons see
// only semantics, not where stanzas happened to sit in the file.
func clearLines(s *Scenario) {
	s.NameLine, s.SystemLine, s.SeedLine, s.ExpectLine = 0, 0, 0, 0
	clearBlock := func(b *Block) {
		if b == nil {
			return
		}
		b.Line = 0
		for i := range b.Settings {
			b.Settings[i].Line = 0
		}
	}
	clearBlock(s.Config)
	clearBlock(s.Faults)
	clearBlock(s.Replication)
	for ci := range s.Classes {
		cl := &s.Classes[ci]
		cl.Line = 0
		for i := range cl.Settings {
			cl.Settings[i].Line = 0
		}
		for pi := range cl.Arrivals {
			cl.Arrivals[pi].Line = 0
			for i := range cl.Arrivals[pi].Params {
				cl.Arrivals[pi].Params[i].Line = 0
			}
		}
		clearBlock(cl.Access)
	}
	for i := range s.Expects {
		s.Expects[i].Line = 0
	}
}

// FuzzScenarioParse checks the parser's two contracts on arbitrary
// input: it never panics, and any input it accepts round-trips — the
// canonical Format output reparses to the identical AST (up to line
// numbers) and reprinting is a fixed point.
func FuzzScenarioParse(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join(corpusDir, "*.rts"))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("scenario x\nseed -3\nclients a 2 {\n  arrivals {\n    phase open rate 1e-3 duration 90s\n  }\n}\n")
	f.Add("scenario x\nexpect {\n  messages ObjectShip >= 5 tol 0.5\n  miss_share queue ~ 0.5 tol 0.5\n}\n")
	f.Add("scenario x\nconfig {\n  a 5.\n  b nan\n  c 1e400\n  d 0x1p-2\n  e -1h2m3.5s\n}\n")

	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse("fuzz.rts", src)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		out := Format(s)
		s2, err := Parse("fuzz.rts", out)
		if err != nil {
			t.Fatalf("canonical output failed to reparse: %v\n--- output ---\n%s", err, out)
		}
		if out2 := Format(s2); out2 != out {
			t.Fatalf("Format is not a fixed point\n--- first ---\n%s--- second ---\n%s", out, out2)
		}
		clearLines(s)
		clearLines(s2)
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round-trip changed the AST\n--- input ---\n%s--- canonical ---\n%s\n%#v\nvs\n%#v", src, out, s, s2)
		}
	})
}
