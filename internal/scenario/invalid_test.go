package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// TestInvalidScenarios drives every file under testdata/invalid through
// the parse → compile pipeline. Each file's first line declares the
// diagnostic it must provoke ("# want: substring"); on top of that
// substring every error must carry a file:line position, so a user is
// always pointed at the offending line and stanza.
func TestInvalidScenarios(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "invalid", "*.rts"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no invalid-case files found")
	}
	posRE := regexp.MustCompile(`\.rts:\d+: `)
	for _, path := range paths {
		path := path
		t.Run(strings.TrimSuffix(filepath.Base(path), ".rts"), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			first, _, _ := strings.Cut(string(src), "\n")
			want, ok := strings.CutPrefix(first, "# want: ")
			if !ok {
				t.Fatalf("%s must start with a \"# want: substring\" line", path)
			}
			s, err := Parse(path, string(src))
			if err == nil {
				_, err = Compile(s)
			}
			if err == nil {
				t.Fatalf("scenario unexpectedly parsed and compiled; want error containing %q", want)
			}
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q does not contain %q", err, want)
			}
			if !posRE.MatchString(err.Error()) {
				t.Errorf("error %q does not name a file:line position", err)
			}
		})
	}
}

// TestCorpusRoundTrips pins the parse → Format → parse round-trip on
// the real corpus files (the fuzz target checks the same property on
// arbitrary inputs).
func TestCorpusRoundTrips(t *testing.T) {
	for _, s := range loadCorpus(t) {
		out := Format(s)
		s2, err := Parse(s.File, out)
		if err != nil {
			t.Fatalf("%s: canonical output failed to reparse: %v", s.Name, err)
		}
		if got := Format(s2); got != out {
			t.Errorf("%s: Format is not a fixed point\n--- got ---\n%s--- want ---\n%s", s.Name, got, out)
		}
		clearLines(s)
		clearLines(s2)
		if !reflect.DeepEqual(s, s2) {
			t.Errorf("%s: round-trip changed the AST", s.Name)
		}
	}
}
