package scenario

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"siteselect/internal/netsim"
	"siteselect/internal/rtdbs"
	"siteselect/internal/trace"
)

// Check is the outcome of one expect assertion.
type Check struct {
	Stanza ExpectStanza
	Got    float64
	Pass   bool
}

// Report is the outcome of one scenario run: the compiled form, the raw
// simulation result, and the evaluated assertions. Its Format output is
// what the golden corpus pins down.
type Report struct {
	Compiled *Compiled
	Result   *rtdbs.Result
	Checks   []Check
}

// Passed reports whether every assertion held.
func (r *Report) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Run compiles and runs the scenario and evaluates its assertions.
func Run(s *Scenario) (*Report, error) {
	c, err := Compile(s)
	if err != nil {
		return nil, err
	}
	res, err := func() (*rtdbs.Result, error) {
		switch c.System {
		case SystemCE:
			sys, err := rtdbs.NewCentralized(c.Config)
			if err != nil {
				return nil, err
			}
			return sys.Run()
		case SystemCEOCC:
			sys, err := rtdbs.NewCentralizedOCC(c.Config)
			if err != nil {
				return nil, err
			}
			return sys.Run()
		case SystemLS:
			sys, err := rtdbs.NewLoadSharing(c.Config)
			if err != nil {
				return nil, err
			}
			return sys.Run()
		default: // SystemCS (Compile rejects anything else)
			sys, err := rtdbs.NewClientServer(c.Config)
			if err != nil {
				return nil, err
			}
			return sys.Run()
		}
	}()
	if err != nil {
		return nil, s.errf(s.NameLine, "scenario", "run failed: %v", err)
	}
	rep := &Report{Compiled: c, Result: res}
	for _, ex := range s.Expects {
		got := metricValue(res, ex)
		rep.Checks = append(rep.Checks, Check{Stanza: ex, Got: got, Pass: holds(ex, got)})
	}
	return rep, nil
}

// metricValue reads one assertion's observed value off the result.
// Compile validated the metric and argument names.
func metricValue(res *rtdbs.Result, ex ExpectStanza) float64 {
	switch ex.Metric {
	case "success_rate":
		return res.SuccessRate()
	case "cache_hit_rate":
		return res.CacheHitRate()
	case "submitted":
		return float64(res.M.Submitted)
	case "committed":
		return float64(res.M.Committed)
	case "missed":
		return float64(res.M.Missed)
	case "aborted":
		return float64(res.M.Aborted)
	case "total_messages":
		return float64(res.TotalMessages)
	case "total_bytes":
		return float64(res.TotalBytes)
	case "net_utilization":
		return res.NetUtilization
	case "retries":
		return float64(res.Retries)
	case "forward_hops":
		return float64(res.ForwardHops)
	case "exec_spread":
		return res.ExecSpread()
	case "replicas_installed":
		return float64(res.ReplicasInstalled)
	case "replicas_shed":
		return float64(res.ReplicasShed)
	case "requests_forwarded":
		return float64(res.RequestsForwarded)
	case "messages":
		for k := range res.Messages {
			if k.String() == ex.Arg {
				return float64(res.Messages[k].Count)
			}
		}
		return 0
	case "miss_share":
		if res.MissCauses == nil {
			return 0
		}
		for c := trace.Component(0); c < trace.NumComponents; c++ {
			if c.String() == ex.Arg {
				return res.MissCauses.Share(c)
			}
		}
		return 0
	case "faults":
		switch ex.Arg {
		case "dropped":
			return float64(res.Faults.Dropped)
		case "duplicated":
			return float64(res.Faults.Duplicated)
		case "spiked":
			return float64(res.Faults.Spiked)
		case "retransmits":
			return float64(res.Faults.Retransmits)
		default: // partition-drops
			return float64(res.Faults.PartitionDrops)
		}
	}
	return 0
}

// holds evaluates one assertion against its observed value.
func holds(ex ExpectStanza, got float64) bool {
	want, _ := ex.Value.AsFloat()
	tol := 0.0
	if ex.Tol != nil {
		tol, _ = ex.Tol.AsFloat()
	}
	switch ex.Op {
	case ">=":
		return got >= want
	case "<=":
		return got <= want
	default: // "==" and "~": equal within the (possibly zero) tolerance
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff <= tol
	}
}

// Format renders the report deterministically — the scenario's golden
// file. Every field is a pure function of the simulation result, so
// two runs of the same scenario text are byte-identical.
func (r *Report) Format() string {
	s, c, res := r.Compiled.Scenario, r.Compiled, r.Result
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s\n", s.Name)
	fmt.Fprintf(&b, "system %s\n", c.System)
	fmt.Fprintf(&b, "seed %d\n", c.Config.Seed)
	fmt.Fprintf(&b, "clients %d", c.Config.NumClients)
	for i, cl := range c.Config.Workload.Classes {
		sep := " ("
		if i > 0 {
			sep = ", "
		}
		fmt.Fprintf(&b, "%s%s x%d", sep, cl.Name, cl.Count)
	}
	b.WriteString(")\n")
	fmt.Fprintf(&b, "elapsed %s\n", res.Elapsed)
	fmt.Fprintf(&b, "submitted %d\n", res.M.Submitted)
	fmt.Fprintf(&b, "committed %d\n", res.M.Committed)
	fmt.Fprintf(&b, "missed %d\n", res.M.Missed)
	fmt.Fprintf(&b, "aborted %d\n", res.M.Aborted)
	fmt.Fprintf(&b, "success_rate %.2f%%\n", res.SuccessRate())
	fmt.Fprintf(&b, "cache_hit_rate %.2f%%\n", res.CacheHitRate())
	fmt.Fprintf(&b, "total_messages %d\n", res.TotalMessages)
	fmt.Fprintf(&b, "total_bytes %d\n", res.TotalBytes)
	fmt.Fprintf(&b, "net_utilization %.4f\n", res.NetUtilization)
	fmt.Fprintf(&b, "retries %d\n", res.Retries)
	fmt.Fprintf(&b, "forward_hops %d\n", res.ForwardHops)
	fmt.Fprintf(&b, "exec_spread %.4f\n", res.ExecSpread())
	if res.Config.Sharding.Enabled() {
		fmt.Fprintf(&b, "sharding servers %d replicas-installed %d replicas-shed %d forwarded %d\n",
			res.Config.Sharding.NumServers(), res.ReplicasInstalled,
			res.ReplicasShed, res.RequestsForwarded)
	}
	if res.Faults != (netsim.FaultStats{}) {
		fmt.Fprintf(&b, "faults dropped %d duplicated %d spiked %d retransmits %d partition-drops %d\n",
			res.Faults.Dropped, res.Faults.Duplicated, res.Faults.Spiked,
			res.Faults.Retransmits, res.Faults.PartitionDrops)
	}
	b.WriteString("messages:\n")
	for _, k := range []netsim.Kind{
		netsim.KindObjectRequest, netsim.KindObjectShip, netsim.KindRecall,
		netsim.KindObjectReturn, netsim.KindClientForward, netsim.KindLockReply,
		netsim.KindTxnShip, netsim.KindTxnResult, netsim.KindLoadQuery,
		netsim.KindLoadReply, netsim.KindTxnSubmit, netsim.KindUserResult,
	} {
		st := res.Messages[k]
		fmt.Fprintf(&b, "  %-13s %d msgs %d bytes\n", k, st.Count, st.Bytes)
	}
	if res.MissCauses != nil {
		fmt.Fprintf(&b, "miss_causes %d:\n", res.MissCauses.Missed)
		for cp := trace.Component(0); cp < trace.NumComponents; cp++ {
			fmt.Fprintf(&b, "  %-9s %d\n", cp, res.MissCauses.ByCause[cp])
		}
	}
	if len(r.Checks) > 0 {
		b.WriteString("expect:\n")
		for _, ch := range r.Checks {
			verdict := "PASS"
			if !ch.Pass {
				verdict = "FAIL"
			}
			ex := ch.Stanza
			fmt.Fprintf(&b, "  %s %s", verdict, ex.Metric)
			if ex.Arg != "" {
				fmt.Fprintf(&b, " %s", ex.Arg)
			}
			fmt.Fprintf(&b, " %s %s", ex.Op, ex.Value)
			if ex.Tol != nil {
				fmt.Fprintf(&b, " tol %s", ex.Tol)
			}
			fmt.Fprintf(&b, " (got %s)\n", formatGot(ch.Got))
		}
	}
	verdict := "PASS"
	if !r.Passed() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "result %s\n", verdict)
	return b.String()
}

// formatGot renders an observed metric: integers exactly, fractions
// with fixed precision.
func formatGot(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4f", v)
}

// ScaleFloor is the population at or above which a scenario belongs to
// the scale tier: its golden is pinned in the corpus like the rest, but
// running it takes minutes and tens of gigabytes, so everyday corpus
// runs (go test, CI, rtbench -scenario-dir) skip it unless explicitly
// asked for.
const ScaleFloor = 100_000

// SplitScale partitions scenarios into the everyday corpus and the
// scale tier, preserving input order within each batch.
func SplitScale(scens []*Scenario) (everyday, scale []*Scenario) {
	for _, s := range scens {
		if s.Population() >= ScaleFloor {
			scale = append(scale, s)
		} else {
			everyday = append(everyday, s)
		}
	}
	return everyday, scale
}

// LoadDir loads every .rts file directly under dir, sorted by name.
func LoadDir(dir string) ([]*Scenario, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.rts"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("scenario: no .rts files in %s", dir)
	}
	out := make([]*Scenario, 0, len(paths))
	for _, p := range paths {
		s, err := Load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// RunAll runs the scenarios on parallel workers and returns their
// reports in input order (a failed scenario leaves a nil report and
// contributes to the joined error). Scenario seeds depend only on the
// scenario name, so batch order and worker count cannot change any
// result.
func RunAll(scens []*Scenario, parallel int) ([]*Report, error) {
	if parallel < 1 {
		parallel = 1
	}
	if parallel > len(scens) {
		parallel = len(scens)
	}
	reports := make([]*Report, len(scens))
	errs := make([]error, len(scens))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				reports[i], errs[i] = Run(scens[i])
			}
		}()
	}
	for i := range scens {
		next <- i
	}
	close(next)
	wg.Wait()
	return reports, errors.Join(errs...)
}

// WriteReports writes each report's Format output to dir as
// <scenario-name>.golden, creating dir if needed.
func WriteReports(reports []*Report, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range reports {
		if r == nil {
			continue
		}
		path := filepath.Join(dir, r.Compiled.Scenario.Name+".golden")
		if err := os.WriteFile(path, []byte(r.Format()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
