package scenario

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// line is one tokenized source line.
type line struct {
	num  int
	toks []string
}

// scan tokenizes the source: one entry per non-blank line, '#' starting
// a comment, tokens separated by whitespace. Braces must stand alone as
// tokens ("config {", "}").
func scan(src string) []line {
	var out []line
	for i, raw := range strings.Split(src, "\n") {
		if j := strings.IndexByte(raw, '#'); j >= 0 {
			raw = raw[:j]
		}
		toks := strings.Fields(raw)
		if len(toks) == 0 {
			continue
		}
		out = append(out, line{num: i + 1, toks: toks})
	}
	return out
}

// parser walks the scanned lines.
type parser struct {
	file  string
	lines []line
	pos   int
}

// Load reads and parses one .rts file.
func Load(path string) (*Scenario, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(path, string(src))
}

// Parse parses scenario source. file names the source in diagnostics;
// every error is of the form "file:line: stanza: message".
func Parse(file, src string) (*Scenario, error) {
	p := &parser{file: file, lines: scan(src)}
	return p.scenario()
}

func (p *parser) errf(num int, stanza, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s: %s", p.file, num, stanza, fmt.Sprintf(format, args...))
}

// next returns the next line without consuming it; ok is false at EOF.
func (p *parser) next() (line, bool) {
	if p.pos >= len(p.lines) {
		return line{}, false
	}
	return p.lines[p.pos], true
}

func (p *parser) advance() { p.pos++ }

// lastLine is the line number errors about unexpected EOF point at.
func (p *parser) lastLine() int {
	if len(p.lines) == 0 {
		return 1
	}
	return p.lines[len(p.lines)-1].num
}

// word checks that tok can stand as a bare name in the grammar.
func validWord(tok string) bool { return tok != "{" && tok != "}" }

func (p *parser) scenario() (*Scenario, error) {
	s := &Scenario{File: p.file}

	first, ok := p.next()
	if !ok {
		return nil, p.errf(1, "scenario", "empty input: expected a scenario NAME line")
	}
	if first.toks[0] != "scenario" {
		return nil, p.errf(first.num, "scenario", "file must start with a scenario NAME line, got %q", first.toks[0])
	}
	if len(first.toks) != 2 || !validWord(first.toks[1]) {
		return nil, p.errf(first.num, "scenario", "want exactly one name: scenario NAME")
	}
	s.Name, s.NameLine = first.toks[1], first.num
	p.advance()

	for {
		ln, ok := p.next()
		if !ok {
			return s, nil
		}
		p.advance()
		var err error
		switch ln.toks[0] {
		case "scenario":
			err = p.errf(ln.num, "scenario", "duplicate scenario line (first on line %d)", s.NameLine)
		case "system":
			err = p.system(s, ln)
		case "seed":
			err = p.seed(s, ln)
		case "config":
			err = p.block(ln, "config", &s.Config)
		case "clients":
			err = p.clients(s, ln)
		case "faults":
			err = p.block(ln, "faults", &s.Faults)
		case "replication":
			err = p.block(ln, "replication", &s.Replication)
		case "expect":
			err = p.expect(s, ln)
		case "}":
			err = p.errf(ln.num, "scenario", "unmatched closing brace")
		default:
			err = p.errf(ln.num, "scenario", "unknown directive %q (want system, seed, config, clients, faults, replication, or expect)", ln.toks[0])
		}
		if err != nil {
			return nil, err
		}
	}
}

func (p *parser) system(s *Scenario, ln line) error {
	if s.SystemLine != 0 {
		return p.errf(ln.num, "system", "duplicate system line (first on line %d)", s.SystemLine)
	}
	if len(ln.toks) != 2 || !validWord(ln.toks[1]) {
		return p.errf(ln.num, "system", "want exactly one name: system ce|ce-occ|cs|ls")
	}
	s.System, s.SystemLine = ln.toks[1], ln.num
	return nil
}

func (p *parser) seed(s *Scenario, ln line) error {
	if s.SeedLine != 0 {
		return p.errf(ln.num, "seed", "duplicate seed line (first on line %d)", s.SeedLine)
	}
	if len(ln.toks) != 2 {
		return p.errf(ln.num, "seed", "want exactly one value: seed INT")
	}
	n, err := strconv.ParseInt(ln.toks[1], 10, 64)
	if err != nil {
		return p.errf(ln.num, "seed", "%q is not an integer", ln.toks[1])
	}
	s.Seed, s.SeedLine = n, ln.num
	return nil
}

// openBlock checks a "NAME {" header line.
func (p *parser) openBlock(ln line, stanza string) error {
	if len(ln.toks) != 2 || ln.toks[1] != "{" {
		return p.errf(ln.num, stanza, "want %s { opening a block", stanza)
	}
	return nil
}

// block parses a settings-only block (config, faults) into *dst,
// rejecting a second block of the same stanza.
func (p *parser) block(ln line, stanza string, dst **Block) error {
	if *dst != nil {
		return p.errf(ln.num, stanza, "duplicate %s block (first on line %d)", stanza, (*dst).Line)
	}
	if err := p.openBlock(ln, stanza); err != nil {
		return err
	}
	b := &Block{Line: ln.num, Settings: []Setting{}}
	for {
		body, ok := p.next()
		if !ok {
			return p.errf(p.lastLine(), stanza, "missing closing brace for block opened on line %d", ln.num)
		}
		p.advance()
		if body.toks[0] == "}" {
			if len(body.toks) != 1 {
				return p.errf(body.num, stanza, "closing brace must stand alone")
			}
			*dst = b
			return nil
		}
		set, err := p.setting(body, stanza)
		if err != nil {
			return err
		}
		b.Settings = append(b.Settings, set)
	}
}

// setting parses one "key value" line.
func (p *parser) setting(ln line, stanza string) (Setting, error) {
	if len(ln.toks) != 2 || !validWord(ln.toks[0]) || !validWord(ln.toks[1]) {
		return Setting{}, p.errf(ln.num, stanza, "want a key value pair, got %d token(s)", len(ln.toks))
	}
	return Setting{Line: ln.num, Key: ln.toks[0], Val: parseValue(ln.toks[1])}, nil
}

func (p *parser) clients(s *Scenario, ln line) error {
	if len(ln.toks) != 4 || ln.toks[3] != "{" {
		return p.errf(ln.num, "clients", "want clients NAME COUNT { opening a block")
	}
	if !validWord(ln.toks[1]) {
		return p.errf(ln.num, "clients", "invalid class name %q", ln.toks[1])
	}
	count, err := strconv.ParseInt(ln.toks[2], 10, 64)
	if err != nil || count <= 0 {
		return p.errf(ln.num, "clients", "count %q must be a positive integer", ln.toks[2])
	}
	cl := ClientsStanza{Line: ln.num, Name: ln.toks[1], Count: count, Settings: []Setting{}}
	for {
		body, ok := p.next()
		if !ok {
			return p.errf(p.lastLine(), "clients", "missing closing brace for clients %s opened on line %d", cl.Name, ln.num)
		}
		p.advance()
		switch body.toks[0] {
		case "}":
			if len(body.toks) != 1 {
				return p.errf(body.num, "clients", "closing brace must stand alone")
			}
			s.Classes = append(s.Classes, cl)
			return nil
		case "arrivals":
			if cl.HasArrivals {
				return p.errf(body.num, "arrivals", "duplicate arrivals block in clients %s", cl.Name)
			}
			if err := p.openBlock(body, "arrivals"); err != nil {
				return err
			}
			phases, err := p.arrivals(body.num)
			if err != nil {
				return err
			}
			cl.Arrivals, cl.HasArrivals = phases, true
		case "access":
			if cl.Access != nil {
				return p.errf(body.num, "access", "duplicate access block in clients %s", cl.Name)
			}
			if err := p.openBlock(body, "access"); err != nil {
				return err
			}
			blk, err := p.innerBlock(body.num, "access")
			if err != nil {
				return err
			}
			cl.Access = blk
		default:
			set, err := p.setting(body, "clients")
			if err != nil {
				return err
			}
			cl.Settings = append(cl.Settings, set)
		}
	}
}

// innerBlock parses a settings block whose header line was consumed.
func (p *parser) innerBlock(open int, stanza string) (*Block, error) {
	b := &Block{Line: open, Settings: []Setting{}}
	for {
		body, ok := p.next()
		if !ok {
			return nil, p.errf(p.lastLine(), stanza, "missing closing brace for block opened on line %d", open)
		}
		p.advance()
		if body.toks[0] == "}" {
			if len(body.toks) != 1 {
				return nil, p.errf(body.num, stanza, "closing brace must stand alone")
			}
			return b, nil
		}
		set, err := p.setting(body, stanza)
		if err != nil {
			return nil, err
		}
		b.Settings = append(b.Settings, set)
	}
}

// arrivals parses the body of an arrivals block: phase lines only.
func (p *parser) arrivals(open int) ([]PhaseStanza, error) {
	phases := []PhaseStanza{}
	for {
		body, ok := p.next()
		if !ok {
			return nil, p.errf(p.lastLine(), "arrivals", "missing closing brace for block opened on line %d", open)
		}
		p.advance()
		if body.toks[0] == "}" {
			if len(body.toks) != 1 {
				return nil, p.errf(body.num, "arrivals", "closing brace must stand alone")
			}
			return phases, nil
		}
		if body.toks[0] != "phase" {
			return nil, p.errf(body.num, "arrivals", "want phase KIND [key value ...], got %q", body.toks[0])
		}
		if len(body.toks) < 2 || !validWord(body.toks[1]) {
			return nil, p.errf(body.num, "arrivals", "phase needs a kind: phase closed|open|burst|diurnal|flash")
		}
		rest := body.toks[2:]
		if len(rest)%2 != 0 {
			return nil, p.errf(body.num, "arrivals", "phase %s: parameters must come in key value pairs", body.toks[1])
		}
		ph := PhaseStanza{Line: body.num, Kind: body.toks[1], Params: []Setting{}}
		for i := 0; i < len(rest); i += 2 {
			if !validWord(rest[i]) || !validWord(rest[i+1]) {
				return nil, p.errf(body.num, "arrivals", "phase %s: braces cannot appear in parameters", body.toks[1])
			}
			ph.Params = append(ph.Params, Setting{Line: body.num, Key: rest[i], Val: parseValue(rest[i+1])})
		}
		phases = append(phases, ph)
	}
}

// expectOps is the assertion operator set.
var expectOps = map[string]bool{">=": true, "<=": true, "==": true, "~": true}

func (p *parser) expect(s *Scenario, ln line) error {
	if s.HasExpect {
		return p.errf(ln.num, "expect", "duplicate expect block (first on line %d)", s.ExpectLine)
	}
	if err := p.openBlock(ln, "expect"); err != nil {
		return err
	}
	s.HasExpect, s.ExpectLine = true, ln.num
	s.Expects = []ExpectStanza{}
	for {
		body, ok := p.next()
		if !ok {
			return p.errf(p.lastLine(), "expect", "missing closing brace for block opened on line %d", ln.num)
		}
		p.advance()
		if body.toks[0] == "}" {
			if len(body.toks) != 1 {
				return p.errf(body.num, "expect", "closing brace must stand alone")
			}
			return nil
		}
		ex, err := p.expectLine(body)
		if err != nil {
			return err
		}
		s.Expects = append(s.Expects, ex)
	}
}

// expectLine parses "METRIC [ARG] OP VALUE [tol VALUE]".
func (p *parser) expectLine(ln line) (ExpectStanza, error) {
	fail := func(format string, args ...any) (ExpectStanza, error) {
		return ExpectStanza{}, p.errf(ln.num, "expect", format, args...)
	}
	toks := ln.toks
	if !validWord(toks[0]) {
		return fail("metric name cannot be a brace")
	}
	ex := ExpectStanza{Line: ln.num, Metric: toks[0]}
	rest := toks[1:]
	if len(rest) > 0 && !expectOps[rest[0]] {
		if !validWord(rest[0]) {
			return fail("metric argument cannot be a brace")
		}
		ex.Arg = rest[0]
		rest = rest[1:]
	}
	if len(rest) < 2 {
		return fail("want METRIC [ARG] OP VALUE, with OP one of >= <= == ~")
	}
	if !expectOps[rest[0]] {
		return fail("unknown operator %q (want >= <= == or ~)", rest[0])
	}
	ex.Op = rest[0]
	if !validWord(rest[1]) {
		return fail("assertion value cannot be a brace")
	}
	ex.Value = parseValue(rest[1])
	rest = rest[2:]
	switch {
	case len(rest) == 0:
	case len(rest) == 2 && rest[0] == "tol":
		if !validWord(rest[1]) {
			return fail("tolerance value cannot be a brace")
		}
		tol := parseValue(rest[1])
		ex.Tol = &tol
	default:
		return fail("trailing tokens after assertion (only tol VALUE may follow)")
	}
	if ex.Op == "~" && ex.Tol == nil {
		return fail("operator ~ needs a tol VALUE")
	}
	if ex.Op != "~" && ex.Op != "==" && ex.Tol != nil {
		return fail("tol only applies to == and ~ assertions")
	}
	return ex, nil
}
