// Package proto defines the message payloads exchanged between the
// database server and client sites in the client-server configurations:
// object/lock requests and grants, recalls and returns, conflict-location
// replies, load queries, and transaction shipping envelopes. Every
// client-originated payload carries a piggybacked load report, which is
// how the server maintains its load table without extra messages
// (Section 4).
package proto

import (
	"time"

	"siteselect/internal/forward"
	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
	"siteselect/internal/txn"
)

// LoadReport is a client's piggybacked load summary: its ready-queue
// length and observed average transaction length (the inputs to H1).
type LoadReport struct {
	Client   netsim.SiteID
	QueueLen int
	ATL      time.Duration
	Valid    bool
}

// EstimatedWait returns the H1-style queueing estimate n·ATL.
func (l LoadReport) EstimatedWait() time.Duration {
	return time.Duration(l.QueueLen) * l.ATL
}

// ObjRequest asks the server for one object/lock on behalf of a
// transaction. Clients fetch missing objects one at a time (the paper's
// sequential request/response loop whose round trip Table 3 measures),
// so a client has at most one firm request outstanding.
type ObjRequest struct {
	Client   netsim.SiteID
	Txn      txn.ID
	Obj      lockmgr.ObjectID
	Mode     lockmgr.Mode
	Deadline time.Duration
	// Attempt sequence-numbers retransmissions of this request (0 = the
	// first send). The server serves duplicates idempotently from its
	// lock-table state; the attempt number distinguishes retries in
	// traces.
	Attempt int
	Load    LoadReport
}

// ProbeRequest is the load-sharing client's tentative all-or-nothing
// round (Section 4): one message asking whether every listed object is
// grantable right now. The server either grants and ships them all, or
// ships nothing and answers with a ConflictReply naming the conflicting
// objects' locations.
type ProbeRequest struct {
	Client   netsim.SiteID
	Txn      txn.ID
	Objs     []lockmgr.ObjectID
	Modes    []lockmgr.Mode
	Deadline time.Duration
	// Attempt sequence-numbers retransmissions (see ObjRequest.Attempt).
	Attempt int
	Load    LoadReport
}

// CommitRequest is the single follow-up message of the load-sharing
// path: "the transaction will be processed locally — ship the objects
// over as soon as possible". It converts an earlier tentative batch into
// firm requests.
type CommitRequest struct {
	Client   netsim.SiteID
	Txn      txn.ID
	Deadline time.Duration
	Objs     []lockmgr.ObjectID
	Modes    []lockmgr.Mode
	// Attempt sequence-numbers retransmissions (see ObjRequest.Attempt).
	Attempt int
	Load    LoadReport
}

// ObjGrant delivers an object and its lock to a client. It is the
// payload of both KindObjectShip (server to client) and
// KindClientForward (client to client along a forward list).
type ObjGrant struct {
	Obj     lockmgr.ObjectID
	Mode    lockmgr.Mode
	Version int64
	Txn     txn.ID
	// Epoch is the target's release epoch as last seen by the server.
	// The client drops any grant whose epoch does not match its own —
	// such a grant was sent before the server processed a release and
	// refers to a registration that no longer exists.
	Epoch int64
	// Fwd is the remaining forward list the recipient must honour at
	// commit (nil outside migrations).
	Fwd *forward.List
}

// BatchGrant carries every grant the server coalesced for one
// destination at a batch-window close (Config.BatchWindow > 0): one
// KindObjectShip message, sized as the sum of its member grants, in
// place of len(Grants) separate ships. The client applies each member
// exactly as if it had arrived alone, in order.
type BatchGrant struct {
	Grants []ObjGrant
}

// ObjConflict reports an object's conflicting holders (or, for an object
// mid-migration, the last client on its forward list — the paper's
// location-reporting rule).
type ObjConflict struct {
	Obj     lockmgr.ObjectID
	Holders []netsim.SiteID
}

// SiteCount reports how many of a transaction's objects a site caches.
type SiteCount struct {
	Site  netsim.SiteID
	Count int
}

// ConflictReply answers a tentative batch that could not be granted in
// full: nothing was shipped; here is where the conflicting objects are.
// DataCounts tells the client how much of the whole access set each
// candidate holder caches — the "significant percentage of a
// transaction's required data is already cached at another site"
// condition of Section 3.1.
type ConflictReply struct {
	Txn        txn.ID
	Conflicts  []ObjConflict
	Loads      []LoadReport
	DataCounts []SiteCount
}

// DenyReason explains a refused request.
type DenyReason int

// Deny reasons.
const (
	// DenyDeadlock means wait-for-graph cycle refusal.
	DenyDeadlock DenyReason = iota + 1
	// DenyExpired means the requesting transaction's deadline had
	// already passed at the server.
	DenyExpired
)

// DenyReply refuses one request.
type DenyReply struct {
	Txn    txn.ID
	Obj    lockmgr.ObjectID
	Reason DenyReason
}

// Recall is a server-to-client lock callback. When DowngradeToShared is
// set the holder may keep the object with an SL instead of giving it up
// entirely (the paper's modified callback scheme). HolderMode is the
// mode the server's table records for the target at send time — a
// client whose cached state does not match it knows the recall refers
// to a grant still on the wire and must defer rather than answer for
// the wrong lock.
type Recall struct {
	Obj               lockmgr.ObjectID
	DowngradeToShared bool
	HolderMode        lockmgr.Mode
}

// BatchRecall coalesces the callbacks issued to one holder at a
// batch-window close (Config.BatchWindow > 0) into one KindRecall
// message sized as the sum of its members.
type BatchRecall struct {
	Recalls []Recall
}

// ReplicaInstall ships a read replica of an object from its home shard
// to another server shard (multi-server topologies only). The receiving
// shard serves shared-mode requests for Obj at Version until the home
// shard recalls the replica (a writer arrived) or the replica shard
// sheds it for coldness. Carried on KindObjectShip: it is an object
// transfer, just shard-to-shard.
type ReplicaInstall struct {
	Obj     lockmgr.ObjectID
	Version int64
}

// ObjReturn answers a recall (or voluntarily returns a dirty eviction).
type ObjReturn struct {
	Client netsim.SiteID
	Obj    lockmgr.ObjectID
	// HasData marks returns carrying a modified object.
	HasData bool
	Version int64
	// Downgraded means the client kept an SL copy.
	Downgraded bool
	// NotCached means the client had silently dropped the clean object
	// and only releases the lock.
	NotCached bool
	// UpdateOnly pushes committed data to the server without touching
	// the lock (the write-through ablation); the client keeps its EL.
	UpdateOnly bool
	// Migration marks the final hop of an exclusive forward list.
	Migration bool
	// RunComplete marks the end of a parallel read run: every member
	// received its copy, so the server may recall them normally again
	// (the paper's "the object is returned to the server" — for a
	// read-only run only the acknowledgement needs to travel).
	RunComplete bool
	// RetainedSL lists the chain clients that kept clean shared copies
	// (legal because no exclusive entry followed them); the server
	// registers these SLs so its lock table matches the caches.
	RetainedSL []netsim.SiteID
	// Epoch is the sender's release epoch for Obj after this return
	// takes effect; the server stamps it into future grants so stale
	// in-flight grants can be recognized.
	Epoch int64
	Load  LoadReport
}

// LoadQuery asks for the locations of a transaction's objects and the
// loads of candidate sites (the H1-failed path of the load-sharing
// algorithm).
type LoadQuery struct {
	Client   netsim.SiteID
	Txn      txn.ID
	Objs     []lockmgr.ObjectID
	Modes    []lockmgr.Mode
	Deadline time.Duration
	// Attempt sequence-numbers retransmissions (see ObjRequest.Attempt).
	Attempt int
	Load    LoadReport
}

// LoadReply answers a LoadQuery.
type LoadReply struct {
	Txn       txn.ID
	Locations []ObjConflict
	Loads     []LoadReport
}

// TxnShip moves a transaction (or one subtask of a decomposed
// transaction) to another client site for execution.
type TxnShip struct {
	T *txn.Transaction
	// Sub is non-nil when shipping a subtask.
	Sub *txn.Subtask
	// ReplyTo receives the TxnResult.
	ReplyTo netsim.SiteID
	Load    LoadReport
}

// TxnResult reports a shipped transaction's (or subtask's) outcome to
// its origin.
type TxnResult struct {
	Txn       txn.ID
	SubIndex  int
	IsSub     bool
	Committed bool
	ExecSite  netsim.SiteID
}

// TxnSubmit carries a whole transaction from a terminal to the
// centralized server.
type TxnSubmit struct {
	T *txn.Transaction
}

// UserResult returns a centralized transaction's outcome to its
// terminal.
type UserResult struct {
	Txn       txn.ID
	Committed bool
}
