package pagefile

import (
	"testing"
	"testing/quick"
	"time"

	"siteselect/internal/sim"
)

func run(t *testing.T, fn func(p *sim.Proc)) *sim.Env {
	t.Helper()
	env := sim.NewEnv()
	done := false
	env.Go("test", func(p *sim.Proc) {
		fn(p)
		done = true
	})
	env.RunAll()
	if !done {
		t.Fatal("test process did not finish (deadlock?)")
	}
	return env
}

func TestDiskReadWriteRoundTrip(t *testing.T) {
	env := sim.NewEnv()
	d := NewDisk(env, 10, DefaultDiskConfig())
	ok := false
	env.Go("t", func(p *sim.Proc) {
		out := make([]byte, PageSize)
		in := make([]byte, PageSize)
		for i := range in {
			in[i] = byte(i)
		}
		if err := d.Write(p, 3, in); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := d.Read(p, 3, out); err != nil {
			t.Errorf("read: %v", err)
		}
		for i := range in {
			if out[i] != in[i] {
				t.Errorf("byte %d = %d, want %d", i, out[i], in[i])
				break
			}
		}
		ok = true
	})
	env.RunAll()
	if !ok {
		t.Fatal("did not complete")
	}
	if d.Reads != 1 || d.Writes != 1 {
		t.Fatalf("reads=%d writes=%d", d.Reads, d.Writes)
	}
	if env.Now() != 24*time.Millisecond {
		t.Fatalf("elapsed = %v, want 24ms", env.Now())
	}
}

func TestDiskUnwrittenPageReadsZero(t *testing.T) {
	run(t, func(p *sim.Proc) {
		d := NewDisk(p.Env(), 4, DefaultDiskConfig())
		buf := make([]byte, PageSize)
		buf[0] = 0xFF
		if err := d.Read(p, 0, buf); err != nil {
			t.Errorf("read: %v", err)
		}
		if buf[0] != 0 {
			t.Error("unwritten page not zeroed")
		}
	})
}

func TestDiskOutOfRange(t *testing.T) {
	run(t, func(p *sim.Proc) {
		d := NewDisk(p.Env(), 4, DefaultDiskConfig())
		buf := make([]byte, PageSize)
		if err := d.Read(p, 4, buf); err == nil {
			t.Error("read past end did not fail")
		}
		if err := d.Write(p, -1, buf); err == nil {
			t.Error("negative write did not fail")
		}
	})
}

func TestDiskSerializesRequests(t *testing.T) {
	env := sim.NewEnv()
	d := NewDisk(env, 10, DiskConfig{ReadTime: 10 * time.Millisecond, WriteTime: 10 * time.Millisecond})
	finished := 0
	for i := 0; i < 3; i++ {
		i := i
		env.Go("r", func(p *sim.Proc) {
			buf := make([]byte, PageSize)
			if err := d.Read(p, PageID(i), buf); err != nil {
				t.Errorf("read: %v", err)
			}
			finished++
		})
	}
	env.RunAll()
	if finished != 3 {
		t.Fatalf("finished = %d", finished)
	}
	if env.Now() != 30*time.Millisecond {
		t.Fatalf("3 serialized reads took %v, want 30ms", env.Now())
	}
}

func TestBufferHitIsFree(t *testing.T) {
	env := sim.NewEnv()
	d := NewDisk(env, 10, DiskConfig{ReadTime: 10 * time.Millisecond, WriteTime: 10 * time.Millisecond})
	bp := NewBufferPool(env, d, 4)
	env.Go("t", func(p *sim.Proc) {
		f, err := bp.Get(p, 1)
		if err != nil {
			t.Errorf("get: %v", err)
		}
		bp.Unpin(f, false)
		before := p.Now()
		f, err = bp.Get(p, 1)
		if err != nil {
			t.Errorf("get: %v", err)
		}
		if p.Now() != before {
			t.Error("buffer hit took time")
		}
		bp.Unpin(f, false)
	})
	env.RunAll()
	if bp.Hits != 1 || bp.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", bp.Hits, bp.Misses)
	}
	if bp.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", bp.HitRate())
	}
}

func TestLRUEviction(t *testing.T) {
	env := sim.NewEnv()
	d := NewDisk(env, 10, DefaultDiskConfig())
	bp := NewBufferPool(env, d, 2)
	env.Go("t", func(p *sim.Proc) {
		for _, id := range []PageID{0, 1} {
			f, _ := bp.Get(p, id)
			bp.Unpin(f, false)
		}
		// Touch 0 so 1 becomes LRU.
		f, _ := bp.Get(p, 0)
		bp.Unpin(f, false)
		// Loading 2 must evict 1, not 0.
		f, _ = bp.Get(p, 2)
		bp.Unpin(f, false)
		if !bp.Contains(0) || bp.Contains(1) || !bp.Contains(2) {
			t.Errorf("residency after eviction: 0=%v 1=%v 2=%v",
				bp.Contains(0), bp.Contains(1), bp.Contains(2))
		}
	})
	env.RunAll()
	if bp.Evictions != 1 {
		t.Fatalf("evictions = %d", bp.Evictions)
	}
}

func TestDirtyWriteBackOnEviction(t *testing.T) {
	env := sim.NewEnv()
	d := NewDisk(env, 10, DefaultDiskConfig())
	bp := NewBufferPool(env, d, 1)
	env.Go("t", func(p *sim.Proc) {
		f, _ := bp.Get(p, 5)
		f.Data[0] = 0xAB
		bp.Unpin(f, true)
		// Evict page 5 by loading another page.
		f, _ = bp.Get(p, 6)
		bp.Unpin(f, false)
		// Re-read 5 from disk: modification must have survived.
		f, _ = bp.Get(p, 5)
		if f.Data[0] != 0xAB {
			t.Error("dirty page lost on eviction")
		}
		bp.Unpin(f, false)
	})
	env.RunAll()
	if bp.DirtyWrites != 1 {
		t.Fatalf("dirty writes = %d", bp.DirtyWrites)
	}
	if d.Writes != 1 {
		t.Fatalf("disk writes = %d", d.Writes)
	}
}

func TestAllPinnedBlocksUntilUnpin(t *testing.T) {
	env := sim.NewEnv()
	d := NewDisk(env, 10, DefaultDiskConfig())
	bp := NewBufferPool(env, d, 1)
	var f0 *Frame
	gotAt := time.Duration(-1)
	env.Go("holder", func(p *sim.Proc) {
		f0, _ = bp.Get(p, 0)
		p.Sleep(time.Second)
		bp.Unpin(f0, false)
	})
	env.Go("waiter", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		f, err := bp.Get(p, 1)
		if err != nil {
			t.Errorf("get: %v", err)
			return
		}
		gotAt = p.Now()
		bp.Unpin(f, false)
	})
	env.RunAll()
	if gotAt < time.Second {
		t.Fatalf("waiter got frame at %v, before holder unpinned", gotAt)
	}
}

func TestConcurrentGetSingleRead(t *testing.T) {
	env := sim.NewEnv()
	d := NewDisk(env, 10, DefaultDiskConfig())
	bp := NewBufferPool(env, d, 4)
	done := 0
	for i := 0; i < 5; i++ {
		env.Go("g", func(p *sim.Proc) {
			f, err := bp.Get(p, 7)
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			bp.Unpin(f, false)
			done++
		})
	}
	env.RunAll()
	if done != 5 {
		t.Fatalf("done = %d", done)
	}
	if d.Reads != 1 {
		t.Fatalf("disk reads = %d, want 1 (shared load)", d.Reads)
	}
	if bp.Misses != 1 || bp.Hits != 4 {
		t.Fatalf("hits=%d misses=%d", bp.Hits, bp.Misses)
	}
}

func TestFlushAll(t *testing.T) {
	env := sim.NewEnv()
	d := NewDisk(env, 10, DefaultDiskConfig())
	bp := NewBufferPool(env, d, 4)
	env.Go("t", func(p *sim.Proc) {
		for _, id := range []PageID{1, 2, 3} {
			f, _ := bp.Get(p, id)
			f.Data[0] = byte(id)
			bp.Unpin(f, true)
		}
		if err := bp.FlushAll(p); err != nil {
			t.Errorf("flush: %v", err)
		}
	})
	env.RunAll()
	if d.Writes != 3 {
		t.Fatalf("disk writes = %d, want 3", d.Writes)
	}
}

func TestFlushAllIdempotent(t *testing.T) {
	env := sim.NewEnv()
	d := NewDisk(env, 10, DefaultDiskConfig())
	bp := NewBufferPool(env, d, 4)
	env.Go("t", func(p *sim.Proc) {
		f, _ := bp.Get(p, 1)
		f.Data[0] = 1
		bp.Unpin(f, true)
		_ = bp.FlushAll(p)
		_ = bp.FlushAll(p)
	})
	env.RunAll()
	if d.Writes != 1 {
		t.Fatalf("disk writes = %d, want 1", d.Writes)
	}
}

func TestUnpinUnderflowPanics(t *testing.T) {
	env := sim.NewEnv()
	d := NewDisk(env, 4, DefaultDiskConfig())
	bp := NewBufferPool(env, d, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("double Unpin did not panic")
		}
	}()
	bp.Unpin(&Frame{}, false)
}

// Property: after any sequence of writes through the pool followed by a
// flush, reading each page directly from disk returns the last value
// written through the pool (write-back preserves data).
func TestWriteBackConsistencyProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		env := sim.NewEnv()
		d := NewDisk(env, 8, DiskConfig{ReadTime: time.Millisecond, WriteTime: time.Millisecond})
		bp := NewBufferPool(env, d, 3)
		want := map[PageID]byte{}
		pass := true
		env.Go("t", func(p *sim.Proc) {
			for i, op := range ops {
				id := PageID(op % 8)
				fr, err := bp.Get(p, id)
				if err != nil {
					pass = false
					return
				}
				v := byte(i + 1)
				fr.Data[0] = v
				want[id] = v
				bp.Unpin(fr, true)
			}
			if err := bp.FlushAll(p); err != nil {
				pass = false
				return
			}
			buf := make([]byte, PageSize)
			for id, v := range want {
				if err := d.Read(p, id, buf); err != nil || buf[0] != v {
					pass = false
					return
				}
			}
		})
		env.RunAll()
		return pass
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPutInstallsWithoutRead(t *testing.T) {
	env := sim.NewEnv()
	d := NewDisk(env, 10, DefaultDiskConfig())
	bp := NewBufferPool(env, d, 2)
	env.Go("t", func(p *sim.Proc) {
		data := make([]byte, PageSize)
		data[0] = 0x42
		if err := bp.Put(p, 3, data); err != nil {
			t.Errorf("put: %v", err)
		}
		// No disk read happened; the page is resident and dirty.
		if d.Reads != 0 {
			t.Errorf("Put read from disk: %d reads", d.Reads)
		}
		f, err := bp.Get(p, 3)
		if err != nil {
			t.Errorf("get: %v", err)
			return
		}
		if f.Data[0] != 0x42 {
			t.Error("Put data lost")
		}
		if !f.Dirty() {
			t.Error("Put page not dirty")
		}
		bp.Unpin(f, false)
	})
	env.RunAll()
}

func TestPutOverwritesResidentPage(t *testing.T) {
	env := sim.NewEnv()
	d := NewDisk(env, 10, DefaultDiskConfig())
	bp := NewBufferPool(env, d, 2)
	env.Go("t", func(p *sim.Proc) {
		f, _ := bp.Get(p, 1)
		f.Data[0] = 1
		bp.Unpin(f, true)
		data := make([]byte, PageSize)
		data[0] = 9
		if err := bp.Put(p, 1, data); err != nil {
			t.Errorf("put: %v", err)
		}
		f, _ = bp.Get(p, 1)
		if f.Data[0] != 9 {
			t.Errorf("resident overwrite lost: %d", f.Data[0])
		}
		bp.Unpin(f, false)
	})
	env.RunAll()
}

func TestPutRejectsBadPage(t *testing.T) {
	env := sim.NewEnv()
	d := NewDisk(env, 4, DefaultDiskConfig())
	bp := NewBufferPool(env, d, 2)
	env.Go("t", func(p *sim.Proc) {
		if err := bp.Put(p, 99, make([]byte, PageSize)); err == nil {
			t.Error("out-of-range Put accepted")
		}
	})
	env.RunAll()
}

func TestDiskResourceShared(t *testing.T) {
	env := sim.NewEnv()
	d := NewDisk(env, 4, DiskConfig{ReadTime: 10 * time.Millisecond, WriteTime: 10 * time.Millisecond})
	var t2 time.Duration
	env.Go("a", func(p *sim.Proc) {
		buf := make([]byte, PageSize)
		_ = d.Read(p, 0, buf)
	})
	env.Go("b", func(p *sim.Proc) {
		// Co-located work on the same spindle waits behind the read.
		p.Acquire(d.Resource(), 0)
		p.Sleep(5 * time.Millisecond)
		d.Resource().Release()
		t2 = p.Now()
	})
	env.RunAll()
	if t2 != 15*time.Millisecond {
		t.Fatalf("shared-arm work finished at %v, want 15ms", t2)
	}
}
