package pagefile

import "siteselect/internal/sim"

// State-machine counterparts of the blocking pool and disk operations.
// Each op mirrors its blocking twin line by line — same counter order,
// same park points, same retry loops — so a Machine caller produces
// exactly the event sequence a Proc caller would. The blocking methods
// stay for process-based models; both kinds share the pool.

// ioOp is a resumable disk access (Disk.Read / Disk.Write for tasks):
// acquire the arm, hold it for the access time, release, count, copy.
type ioOp struct {
	d     *Disk
	id    PageID
	buf   []byte
	write bool
	pc    uint8
}

const (
	ioAcquire uint8 = iota
	ioSleep
	ioFinish
)

func (o *ioOp) start(d *Disk, write bool, id PageID, buf []byte) {
	o.d, o.id, o.buf, o.write, o.pc = d, id, buf, write, ioAcquire
}

// step advances the access; false means the task parked and step must
// run again on the next resume.
func (o *ioOp) step(t *sim.Task) bool {
	for {
		switch o.pc {
		case ioAcquire:
			o.pc = ioSleep
			if !t.Acquire(o.d.arm, 0) {
				return false
			}
		case ioSleep:
			o.pc = ioFinish
			if o.write {
				t.Sleep(o.d.cfg.WriteTime)
			} else {
				t.Sleep(o.d.cfg.ReadTime)
			}
			return false
		default: // ioFinish
			d := o.d
			d.arm.Release()
			if o.write {
				d.Writes++
				if d.pages[o.id] == nil {
					d.pages[o.id] = make([]byte, PageSize)
				}
				copy(d.pages[o.id], o.buf)
			} else {
				d.Reads++
				if d.pages[o.id] == nil {
					clear(o.buf)
				} else {
					copy(o.buf, d.pages[o.id])
				}
			}
			o.buf = nil
			return true
		}
	}
}

// allocAction is what allocateTask decided; it mirrors the blocking
// allocate's three outcomes.
type allocAction uint8

const (
	// allocReady: frame claimed, no write-back needed.
	allocReady allocAction = iota
	// allocWriteback: frame claimed; the victim write-back was started
	// in the caller's ioOp and must be stepped to completion.
	allocWriteback
	// allocWaitFree: every frame is pinned; the task parked on the
	// pool's free signal and must retry the lookup after resuming.
	allocWaitFree
)

// allocateTask is allocate for machine callers; identical decisions and
// counter order, with the blocking write-back handed to io.
func (bp *BufferPool) allocateTask(t *sim.Task, io *ioOp, id PageID) (*Frame, allocAction) {
	if bp.allocated < bp.cap {
		f := bp.newFrame(id)
		bp.frames[id] = f
		return f, allocReady
	}
	vf := bp.lruBack
	if vf == nil {
		t.Wait(bp.free)
		return nil, allocWaitFree
	}
	vid := vf.id
	bp.lruRemove(vf)
	bp.Evictions++
	delete(bp.frames, vid)
	wasDirty := vf.dirty
	vf.id = id
	vf.pins = 1
	vf.dirty = false
	vf.loading = true
	bp.frames[id] = vf
	if wasDirty {
		bp.DirtyWrites++
		io.start(bp.disk, true, vid, vf.Data)
		return vf, allocWriteback
	}
	return vf, allocReady
}

// GetOp is the state-machine counterpart of BufferPool.Get: a resumable
// pin-with-read. Init it, then call Step from every Resume until it
// reports done; the pinned frame is then available from Frame.
type GetOp struct {
	bp *BufferPool
	id PageID
	f  *Frame
	io ioOp
	pc uint8
}

const (
	gpLookup uint8 = iota
	gpEvictWrite
	gpMiss
	gpRead
)

// Init arms the op to pin page id from bp.
func (g *GetOp) Init(bp *BufferPool, id PageID) {
	g.bp, g.id, g.f, g.pc = bp, id, nil, gpLookup
}

// Frame returns the pinned frame after Step reported done.
func (g *GetOp) Frame() *Frame { return g.f }

// Step advances the pin; false means the task parked and Step must run
// again on the next resume.
func (g *GetOp) Step(t *sim.Task) (bool, error) {
	bp := g.bp
	for {
		switch g.pc {
		case gpLookup:
			if err := bp.disk.check(g.id); err != nil {
				return true, err
			}
			if f, ok := bp.frames[g.id]; ok {
				if f.loading {
					t.Wait(f.loaded)
					return false, nil // frame may be re-keyed; recheck
				}
				bp.Hits++
				bp.pin(f)
				g.f = f
				return true, nil
			}
			f, act := bp.allocateTask(t, &g.io, g.id)
			if act == allocWaitFree {
				return false, nil // lost a race while parked; retry lookup
			}
			g.f = f
			if act == allocWriteback {
				g.pc = gpEvictWrite
			} else {
				g.pc = gpMiss
			}
		case gpEvictWrite:
			if !g.io.step(t) {
				return false, nil
			}
			g.pc = gpMiss
		case gpMiss:
			bp.Misses++
			g.io.start(bp.disk, false, g.id, g.f.Data)
			g.pc = gpRead
		default: // gpRead
			if !g.io.step(t) {
				return false, nil
			}
			g.f.loading = false
			g.f.loaded.Broadcast()
			return true, nil
		}
	}
}

// PutOp is the state-machine counterpart of BufferPool.Put: install
// data as page id without reading the old contents, evicting (and
// possibly writing back) a victim when the pool is full.
type PutOp struct {
	bp   *BufferPool
	id   PageID
	data []byte
	f    *Frame
	io   ioOp
	pc   uint8
}

const (
	ppLookup uint8 = iota
	ppEvictWrite
	ppInstall
)

// Init arms the op to install data as page id in bp. The data slice is
// read when the install completes, so it must stay valid until Step
// reports done.
func (o *PutOp) Init(bp *BufferPool, id PageID, data []byte) {
	o.bp, o.id, o.data, o.f, o.pc = bp, id, data, nil, ppLookup
}

// Step advances the install; false means the task parked and Step must
// run again on the next resume.
func (o *PutOp) Step(t *sim.Task) (bool, error) {
	bp := o.bp
	for {
		switch o.pc {
		case ppLookup:
			if err := bp.disk.check(o.id); err != nil {
				return true, err
			}
			if f, ok := bp.frames[o.id]; ok {
				if f.loading {
					t.Wait(f.loaded)
					return false, nil
				}
				copy(f.Data, o.data)
				f.dirty = true
				bp.touch(f)
				o.data = nil
				return true, nil
			}
			f, act := bp.allocateTask(t, &o.io, o.id)
			if act == allocWaitFree {
				return false, nil
			}
			o.f = f
			if act == allocWriteback {
				o.pc = ppEvictWrite
			} else {
				o.pc = ppInstall
			}
		case ppEvictWrite:
			if !o.io.step(t) {
				return false, nil
			}
			o.pc = ppInstall
		default: // ppInstall
			f := o.f
			copy(f.Data, o.data)
			f.dirty = true
			f.loading = false
			f.loaded.Broadcast()
			bp.Unpin(f, true)
			o.data = nil
			return true, nil
		}
	}
}

// MultiGetOp pins a whole batch of pages through the pool in sequence,
// unpinning each frame as soon as its read lands. It is the read half
// of a batched object ship (Config.BatchWindow > 0): one machine walks
// every page a destination's coalesced grants need, so requests for the
// same page in one batch share a single disk read — the first pin
// faults the page in, later pins hit the frame (or park on its loading
// signal), and the pool's LRU keeps it resident across the walk.
type MultiGetOp struct {
	bp    *BufferPool
	pages []PageID
	idx   int
	inGet bool
	get   GetOp
}

// Init arms the op to pin each page of pages from bp, in order. The
// pages slice is read as the op advances, so it must stay valid until
// Step reports done.
func (o *MultiGetOp) Init(bp *BufferPool, pages []PageID) {
	o.bp, o.pages, o.idx, o.inGet = bp, pages, 0, false
}

// Step advances the walk; false means the task parked and Step must run
// again on the next resume. When it reports done every page has been
// read through the pool (and unpinned again).
func (o *MultiGetOp) Step(t *sim.Task) (bool, error) {
	for o.idx < len(o.pages) {
		if !o.inGet {
			o.get.Init(o.bp, o.pages[o.idx])
			o.inGet = true
		}
		done, err := o.get.Step(t)
		if !done {
			return false, nil
		}
		if err != nil {
			return true, err
		}
		o.bp.Unpin(o.get.Frame(), false)
		o.inGet = false
		o.idx++
	}
	o.pages = nil
	return true, nil
}
