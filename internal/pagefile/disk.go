// Package pagefile reimplements the MiniRel Paged-File (PF) layer the
// paper builds its databases on: a file of uniquely numbered fixed-size
// pages accessed through a buffer pool with LRU replacement and dirty
// write-back. The backing store is a simulated disk whose accesses are
// serialized and charged a configurable latency, so buffer hits are free
// and misses queue on the device — the asymmetry that throttles the
// centralized server in the paper's experiments.
package pagefile

import (
	"fmt"
	"time"

	"siteselect/internal/sim"
)

// PageSize is the paper's page/object size in bytes.
const PageSize = 2048

// PageID numbers pages within a file, starting at zero.
type PageID int

// DiskConfig sets the device's timing.
type DiskConfig struct {
	ReadTime  time.Duration
	WriteTime time.Duration
}

// DefaultDiskConfig approximates a late-90s SCSI disk: ~12 ms per random
// page access.
func DefaultDiskConfig() DiskConfig {
	return DiskConfig{ReadTime: 12 * time.Millisecond, WriteTime: 12 * time.Millisecond}
}

// Disk is a simulated block device holding numPages pages. Requests are
// serialized (single actuator) in deadline-agnostic FIFO order.
type Disk struct {
	env   *sim.Env
	cfg   DiskConfig
	arm   *sim.Resource
	pages [][]byte

	// Reads and Writes count completed operations.
	Reads  int64
	Writes int64
}

// NewDisk returns a disk with numPages zero-filled pages.
func NewDisk(env *sim.Env, numPages int, cfg DiskConfig) *Disk {
	if numPages <= 0 {
		panic("pagefile: disk needs at least one page")
	}
	return &Disk{
		env:   env,
		cfg:   cfg,
		arm:   sim.NewResource(env, 1),
		pages: make([][]byte, numPages),
	}
}

// NumPages returns the capacity of the disk in pages.
func (d *Disk) NumPages() int { return len(d.pages) }

// Utilization returns the fraction of time the device has been busy.
func (d *Disk) Utilization() float64 { return d.arm.Utilization() }

// QueueLen returns the number of requests waiting for the device.
func (d *Disk) QueueLen() int { return d.arm.QueueLen() }

// Resource exposes the device arm so co-located work (e.g. a write-ahead
// log sharing the spindle) contends with page I/O.
func (d *Disk) Resource() *sim.Resource { return d.arm }

func (d *Disk) check(id PageID) error {
	if int(id) < 0 || int(id) >= len(d.pages) {
		return fmt.Errorf("pagefile: page %d out of range [0,%d)", id, len(d.pages))
	}
	return nil
}

// Read copies page id into buf (which must be PageSize bytes), charging
// the device time. Pages never written read as zeroes.
func (d *Disk) Read(p *sim.Proc, id PageID, buf []byte) error {
	if err := d.check(id); err != nil {
		return err
	}
	p.Acquire(d.arm, 0)
	p.Sleep(d.cfg.ReadTime)
	d.arm.Release()
	d.Reads++
	if d.pages[id] == nil {
		for i := range buf {
			buf[i] = 0
		}
	} else {
		copy(buf, d.pages[id])
	}
	return nil
}

// Write stores data (PageSize bytes) as page id, charging the device
// time.
func (d *Disk) Write(p *sim.Proc, id PageID, data []byte) error {
	if err := d.check(id); err != nil {
		return err
	}
	p.Acquire(d.arm, 0)
	p.Sleep(d.cfg.WriteTime)
	d.arm.Release()
	d.Writes++
	if d.pages[id] == nil {
		d.pages[id] = make([]byte, PageSize)
	}
	copy(d.pages[id], data)
	return nil
}
