package pagefile

import (
	"fmt"

	"siteselect/internal/sim"
)

// Frame is a buffer-pool slot holding one page. Callers pin a frame with
// BufferPool.Get, read or modify Data, and release it with Unpin.
type Frame struct {
	id      PageID
	Data    []byte
	pins    int
	dirty   bool
	loading bool
	loaded  *sim.Signal
	// Intrusive LRU links: the frame is its own list node, so pin/unpin
	// cycles and evictions allocate nothing.
	prev, next *Frame
	inLRU      bool
}

// ID returns the page held by the frame.
func (f *Frame) ID() PageID { return f.id }

// Dirty reports whether the frame has unwritten modifications.
func (f *Frame) Dirty() bool { return f.dirty }

// Pins returns the current pin count.
func (f *Frame) Pins() int { return f.pins }

// BufferPool caches pages of a Disk in a fixed number of frames with LRU
// replacement. Dirty pages are written back when evicted or flushed.
// All blocking methods take the calling process.
type BufferPool struct {
	env    *sim.Env
	disk   *Disk
	cap    int
	frames map[PageID]*Frame
	// slab and arena back the pool's frames: all Frame structs and all
	// page bytes live in two contiguous allocations carved out on first
	// use, instead of one struct + one 2 KB Data slice per frame. The
	// pool's working set stays cache-adjacent and the GC sees two
	// objects where it saw 2·capacity.
	slab      []Frame
	arena     []byte
	allocated int
	// lruFront/lruBack hold unpinned frames; front = most recent.
	lruFront, lruBack *Frame
	free              *sim.Signal

	// Hits and Misses count Get outcomes.
	Hits   int64
	Misses int64
	// Evictions counts frames replaced; DirtyWrites counts write-backs.
	Evictions   int64
	DirtyWrites int64
}

// NewBufferPool returns a pool of capacity frames over disk.
func NewBufferPool(env *sim.Env, disk *Disk, capacity int) *BufferPool {
	if capacity <= 0 {
		panic("pagefile: buffer pool capacity must be positive")
	}
	return &BufferPool{
		env:    env,
		disk:   disk,
		cap:    capacity,
		frames: make(map[PageID]*Frame, capacity),
		free:   sim.NewSignal(env),
	}
}

// Capacity returns the number of frames.
func (bp *BufferPool) Capacity() int { return bp.cap }

// newFrame carves the next frame slot (and its page bytes) out of the
// pool's slab, pinned and loading. Callers must have checked
// bp.allocated < bp.cap.
func (bp *BufferPool) newFrame(id PageID) *Frame {
	if bp.slab == nil {
		bp.slab = make([]Frame, bp.cap)
		bp.arena = make([]byte, bp.cap*PageSize)
	}
	f := &bp.slab[bp.allocated]
	off := bp.allocated * PageSize
	f.Data = bp.arena[off : off+PageSize : off+PageSize]
	bp.allocated++
	f.id = id
	f.pins = 1
	f.loading = true
	f.loaded = sim.NewSignal(bp.env)
	return f
}

// Resident returns the number of pages currently buffered.
func (bp *BufferPool) Resident() int { return len(bp.frames) }

// Contains reports whether page id is resident (pinned or not), without
// touching LRU state.
func (bp *BufferPool) Contains(id PageID) bool {
	f, ok := bp.frames[id]
	return ok && !f.loading
}

func (bp *BufferPool) lruPushFront(f *Frame) {
	f.prev = nil
	f.next = bp.lruFront
	if bp.lruFront != nil {
		bp.lruFront.prev = f
	} else {
		bp.lruBack = f
	}
	bp.lruFront = f
	f.inLRU = true
}

func (bp *BufferPool) lruRemove(f *Frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		bp.lruFront = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		bp.lruBack = f.prev
	}
	f.prev, f.next = nil, nil
	f.inLRU = false
}

// Get pins page id, reading it from disk on a miss, and returns its
// frame. Concurrent getters of a loading page wait for the single read.
// Get blocks when every frame is pinned until one is unpinned.
func (bp *BufferPool) Get(p *sim.Proc, id PageID) (*Frame, error) {
	if err := bp.disk.check(id); err != nil {
		return nil, err
	}
	for {
		if f, ok := bp.frames[id]; ok {
			if f.loading {
				p.Wait(f.loaded)
				continue // frame may have been evicted or re-keyed; recheck
			}
			bp.Hits++
			bp.pin(f)
			return f, nil
		}
		f, err := bp.allocate(p, id)
		if err != nil {
			return nil, err
		}
		if f == nil {
			continue // lost a race while blocked; retry lookup
		}
		bp.Misses++
		if err := bp.disk.Read(p, id, f.Data); err != nil {
			// Cannot happen after the range check, but unwind safely.
			f.loading = false
			delete(bp.frames, id)
			f.loaded.Broadcast()
			bp.free.Broadcast()
			return nil, err
		}
		f.loading = false
		f.loaded.Broadcast()
		return f, nil
	}
}

// allocate finds a frame for id, evicting the LRU unpinned page if the
// pool is full (writing it back first when dirty). It returns a pinned,
// loading frame, or nil if the caller must retry because it blocked and
// the world changed.
func (bp *BufferPool) allocate(p *sim.Proc, id PageID) (*Frame, error) {
	if bp.allocated < bp.cap {
		f := bp.newFrame(id)
		bp.frames[id] = f
		return f, nil
	}
	vf := bp.lruBack
	if vf == nil {
		// Every frame is pinned: wait for an Unpin, then retry from Get
		// so the page-resident check runs again.
		p.Wait(bp.free)
		return nil, nil
	}
	vid := vf.id
	bp.lruRemove(vf)
	bp.Evictions++

	// Re-key the victim frame in place: it is unpinned, so it is not
	// loading and its loaded signal has no waiters — the frame, its data
	// buffer, and its signal are all safe to reuse. Marking it loading
	// first makes other getters of id wait rather than double-read; the
	// write-back and read below block, so the map must already reflect
	// the claim.
	delete(bp.frames, vid)
	wasDirty := vf.dirty
	vf.id = id
	vf.pins = 1
	vf.dirty = false
	vf.loading = true
	bp.frames[id] = vf
	if wasDirty {
		bp.DirtyWrites++
		if err := bp.disk.Write(p, vid, vf.Data); err != nil {
			return nil, fmt.Errorf("pagefile: evicting page %d: %w", vid, err)
		}
	}
	return vf, nil
}

// touch moves an unpinned frame to the most-recently-used position.
func (bp *BufferPool) touch(f *Frame) {
	if f.inLRU && bp.lruFront != f {
		bp.lruRemove(f)
		bp.lruPushFront(f)
	}
}

func (bp *BufferPool) pin(f *Frame) {
	f.pins++
	if f.inLRU {
		bp.lruRemove(f)
	}
}

// Unpin releases one pin on frame f, marking it dirty when the caller
// modified it. When the pin count reaches zero the frame becomes
// evictable (most-recently-used position).
func (bp *BufferPool) Unpin(f *Frame, dirty bool) {
	if f.pins <= 0 {
		panic("pagefile: Unpin of unpinned frame")
	}
	if dirty {
		f.dirty = true
	}
	f.pins--
	if f.pins == 0 {
		bp.lruPushFront(f)
		bp.free.Broadcast()
	}
}

// Put installs data as the current contents of page id without reading
// the old contents from disk (used when a client returns a modified
// object: the server has the authoritative new copy in hand). The page
// becomes resident and dirty; eviction writes it back. Put may block
// evicting a dirty victim.
func (bp *BufferPool) Put(p *sim.Proc, id PageID, data []byte) error {
	if err := bp.disk.check(id); err != nil {
		return err
	}
	for {
		if f, ok := bp.frames[id]; ok {
			if f.loading {
				p.Wait(f.loaded)
				continue
			}
			copy(f.Data, data)
			f.dirty = true
			bp.touch(f)
			return nil
		}
		f, err := bp.allocate(p, id)
		if err != nil {
			return err
		}
		if f == nil {
			continue
		}
		copy(f.Data, data)
		f.dirty = true
		f.loading = false
		f.loaded.Broadcast()
		bp.Unpin(f, true)
		return nil
	}
}

// FlushAll writes every dirty resident page back to disk. Pinned frames
// are flushed too (their in-memory state remains valid).
func (bp *BufferPool) FlushAll(p *sim.Proc) error {
	// Deterministic order: walk ids ascending.
	ids := make([]PageID, 0, len(bp.frames))
	for id := range bp.frames {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		f := bp.frames[id]
		if f.loading || !f.dirty {
			continue
		}
		bp.DirtyWrites++
		if err := bp.disk.Write(p, id, f.Data); err != nil {
			return fmt.Errorf("pagefile: flushing page %d: %w", id, err)
		}
		f.dirty = false
	}
	return nil
}

// HitRate returns the fraction of Get calls served without disk I/O.
func (bp *BufferPool) HitRate() float64 {
	total := bp.Hits + bp.Misses
	if total == 0 {
		return 0
	}
	return float64(bp.Hits) / float64(total)
}
