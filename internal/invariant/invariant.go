// Package invariant implements a continuous invariant monitor for
// simulation runs: a set of named checks re-evaluated after every
// executed kernel event (via sim.Env.SetStepHook), promoting the
// end-of-run audits scattered through the test suite into properties
// that hold at every step. A violation is recorded with the step count
// and virtual time at which it first appeared, which is the event that
// introduced it — far tighter localization than an end-of-run audit.
//
// The monitor is off by default: attaching it installs the step hook,
// so fault-free golden runs and kernel benchmarks never pay for it.
// Checking every event can be quadratic in model size, so Every
// subsamples the event stream; determinism of the simulation makes even
// a subsampled schedule exactly reproducible.
package invariant

import (
	"fmt"
	"sort"

	"siteselect/internal/lockmgr"
	"siteselect/internal/sim"
)

// Check is one named invariant. Fn returns nil while the invariant
// holds.
type Check struct {
	Name string
	Fn   func() error
}

// Monitor runs a check suite against a simulation.
type Monitor struct {
	env    *sim.Env
	checks []Check
	every  int64
	count  int64

	failed error
}

// New returns a monitor over env evaluating the checks every `every`
// executed events (1 = every event; values < 1 are clamped to 1).
func New(env *sim.Env, every int, checks ...Check) *Monitor {
	if every < 1 {
		every = 1
	}
	return &Monitor{env: env, checks: checks, every: int64(every)}
}

// Attach installs the monitor's step hook. Detach with env.SetStepHook(nil).
func (m *Monitor) Attach() {
	m.env.SetStepHook(m.onStep)
}

// onStep is the per-event hook body.
func (m *Monitor) onStep() {
	if m.failed != nil {
		return // keep the first violation; later ones are fallout
	}
	m.count++
	if m.count%m.every != 0 {
		return
	}
	for _, c := range m.checks {
		if err := c.Fn(); err != nil {
			m.failed = fmt.Errorf("invariant %q violated at step %d (t=%v): %w",
				c.Name, m.env.Steps(), m.env.Now(), err)
			return
		}
	}
}

// Err returns the first recorded violation, or nil.
func (m *Monitor) Err() error { return m.failed }

// Final evaluates every check once more (regardless of the sampling
// interval) and returns the first violation, including any recorded
// earlier during the run.
func (m *Monitor) Final() error {
	if m.failed != nil {
		return m.failed
	}
	for _, c := range m.checks {
		if err := c.Fn(); err != nil {
			return fmt.Errorf("invariant %q violated at end of run (t=%v): %w",
				c.Name, m.env.Now(), err)
		}
	}
	return nil
}

// Committed tracks the highest committed version per object, fed by the
// clients' commit hooks, and verifies at end of run that no committed
// update was lost: for every object some surviving copy (server page,
// client cache, or recovery log) must carry at least that version.
type Committed struct {
	max map[lockmgr.ObjectID]int64
}

// NewCommitted returns an empty tracker.
func NewCommitted() *Committed {
	return &Committed{max: make(map[lockmgr.ObjectID]int64)}
}

// Observe records a committed write of version v to obj.
func (t *Committed) Observe(obj lockmgr.ObjectID, v int64) {
	if v > t.max[obj] {
		t.max[obj] = v
	}
}

// Objects returns the tracked objects in ascending order.
func (t *Committed) Objects() []lockmgr.ObjectID {
	objs := make([]lockmgr.ObjectID, 0, len(t.max))
	for obj := range t.max {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	return objs
}

// Verify checks every tracked object against current, which must return
// the highest version any surviving copy of the object carries.
func (t *Committed) Verify(current func(lockmgr.ObjectID) int64) error {
	for _, obj := range t.Objects() {
		want := t.max[obj]
		if got := current(obj); got < want {
			return fmt.Errorf("invariant: committed update lost on object %d: committed version %d, best surviving copy %d",
				obj, want, got)
		}
	}
	return nil
}
